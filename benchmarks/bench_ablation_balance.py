"""Ablation — sensitivity of the results to the soft:hard error mix.

The paper's dataset is roughly balanced between soft and hard *errors*
(inferred from its 43% SBIST-invocation reduction at 86% soft
accuracy).  Physical transient:permanent fault rates vary by orders of
magnitude across deployments, so this ablation sweeps the soft share
of the error dataset and reports how the headline speedups move:

* more soft errors  -> pred-comb's type prediction matters more;
* more hard errors  -> pred-location-only's ordering matters more.
"""

import numpy as np

from repro.analysis import evaluate_campaign
from repro.faults.campaign import CampaignResult
from repro.faults.models import ErrorType


def _reweighted(campaign, soft_share: float, rng) -> CampaignResult:
    soft = [r for r in campaign.records if r.error_type is ErrorType.SOFT]
    hard = [r for r in campaign.records if r.error_type is ErrorType.HARD]
    if soft_share >= 0.5:
        keep_hard = int(len(soft) * (1 - soft_share) / soft_share)
        idx = rng.choice(len(hard), size=min(keep_hard, len(hard)), replace=False)
        records = soft + [hard[i] for i in sorted(idx)]
    else:
        keep_soft = int(len(hard) * soft_share / (1 - soft_share))
        idx = rng.choice(len(soft), size=min(keep_soft, len(soft)), replace=False)
        records = [soft[i] for i in sorted(idx)] + hard
    return CampaignResult(
        config=campaign.config, records=records, injected=campaign.injected,
        golden_cycles=campaign.golden_cycles, sampled_flops=campaign.sampled_flops)


def test_balance_sensitivity(benchmark, campaign, report):
    rng = np.random.default_rng(0)
    lines = ["Ablation — soft share of the error dataset vs headline speedups",
             "  soft%   pred-loc vs base-manifest   pred-comb vs base-manifest"]
    speedups = {}
    for share in (0.2, 0.35, 0.5, 0.65, 0.8):
        sub = _reweighted(campaign, share, rng)
        ev = evaluate_campaign(sub, seed=0)
        loc = ev.speedup("pred-location-only", "base-manifest")
        comb = ev.speedup("pred-comb", "base-manifest")
        speedups[share] = (loc, comb)
        lines.append(f"  {share:4.0%}   {loc:26.0%}   {comb:26.0%}")

    benchmark.pedantic(evaluate_campaign,
                       args=(_reweighted(campaign, 0.5, rng),),
                       rounds=1, iterations=1)

    # Location-only gains grow as hard errors dominate (order matters
    # only when there is a stuck-at to find).
    assert speedups[0.2][0] > speedups[0.8][0]
    # pred-comb stays the winner across the whole sweep.
    for loc, comb in speedups.values():
        assert comb > loc
        assert comb > 0.15
    report("ablation_balance", "\n".join(lines))
