"""Ablation — relaxing the 100% STL coverage assumption (footnote 5).

The paper assumes every STL catches every stuck-at in its unit.  With
partial coverage a hard fault can survive the full SBIST pass, get
misclassified as soft, and trigger restart-and-recur loops.  This
ablation sweeps coverage and confirms (a) LERT degrades gracefully and
(b) the predictor's advantage over the baselines survives.
"""

from repro.analysis import evaluate_campaign


def test_coverage_sweep(benchmark, campaign, report):
    lines = ["Ablation — STL stuck-at coverage",
             "  coverage   base-ascending LERT   pred-comb LERT   speedup"]
    speedups = {}
    for coverage in (1.0, 0.9, 0.7, 0.5):
        ev = evaluate_campaign(campaign, seed=0, coverage=coverage)
        base = ev.strategies["base-ascending"].mean_lert
        comb = ev.strategies["pred-comb"].mean_lert
        speedups[coverage] = ev.speedup("pred-comb", "base-ascending")
        lines.append(f"  {coverage:7.0%}   {base:19,.0f}   {comb:14,.0f}"
                     f"   {speedups[coverage]:7.0%}")

    benchmark.pedantic(evaluate_campaign, args=(campaign,),
                       kwargs={"seed": 0, "coverage": 0.7},
                       rounds=1, iterations=1)

    # The predictor's win survives imperfect test libraries.
    for coverage, speedup in speedups.items():
        assert speedup > 0.25, f"speedup collapsed at coverage={coverage}"
    report("ablation_coverage", "\n".join(lines))
