"""Ablation (paper Section VII) — static vs dynamic prediction table.

The paper argues a branch-predictor-style dynamically updated table is
unlikely to beat static training because errors are rare, so history
accumulates too slowly.  This ablation replays the test errors as a
field-lifetime sequence: the dynamic predictor re-trains its entry
after every diagnosed error.  The expected outcome is parity (or a
marginal edge) — supporting the paper's choice of a static table.
"""

from repro.analysis.crossval import kfold
from repro.core import DynamicPredictor, train_predictor, type_accuracy
from repro.faults.models import ErrorType


def _online_accuracy(train, test):
    """Replay test errors in order, updating the dynamic table after
    each one (the diagnosis reveals the ground truth)."""
    dynamic = DynamicPredictor.train(train)
    correct = total = 0
    for record in test:
        total += 1
        if dynamic.predict_record(record).error_type is record.error_type:
            correct += 1
        dynamic.update(record)
    return correct / total if total else 0.0


def test_dynamic_vs_static(benchmark, campaign, report):
    records = campaign.records
    static_acc = []
    dynamic_acc = []
    folds = list(kfold(records, k=5, seed=0))
    for train, test in folds:
        static = train_predictor(train)
        static_acc.append(type_accuracy(static, test)["overall"])
        dynamic_acc.append(_online_accuracy(train, test))

    def _run():
        return _online_accuracy(*folds[0])

    benchmark.pedantic(_run, rounds=1, iterations=1)

    static_mean = sum(static_acc) / len(static_acc)
    dynamic_mean = sum(dynamic_acc) / len(dynamic_acc)
    # The paper's argument: dynamic updates must not be dramatically
    # better; an edge below ~10 points supports the static choice.
    assert dynamic_mean > static_mean - 0.05
    assert dynamic_mean - static_mean < 0.15

    n_soft = sum(1 for r in records if r.error_type is ErrorType.SOFT)
    report("ablation_dynamic", "\n".join([
        "Ablation — static vs dynamic prediction table (Section VII)",
        f"  static  type accuracy: {static_mean:.1%}",
        f"  dynamic type accuracy: {dynamic_mean:.1%} "
        f"(online updates over {len(records)} errors, {n_soft} soft)",
        f"  delta: {dynamic_mean - static_mean:+.1%} — "
        "consistent with the paper's case for a static table",
    ]))
