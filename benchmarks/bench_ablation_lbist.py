"""Ablation — prediction-constrained LBIST vs SBIST (Section III).

The paper evaluates SBIST but notes the predictor equally serves LBIST
by constraining the scan search to the predicted units' chains.  This
ablation diagnoses the campaign's hard errors with both engines, in
default order vs predicted order.
"""

import numpy as np

from repro.analysis.crossval import kfold
from repro.bist import LbistEngine, SbistEngine, StlModel
from repro.core import train_predictor
from repro.faults.models import ErrorType


def _mean_cycles(engine, orders_and_faults):
    total = 0
    for order, faulty in orders_and_faults:
        total += engine.run(order, faulty).cycles
    return total / len(orders_and_faults)


def test_lbist_benefits_from_prediction(benchmark, campaign, report):
    rng = np.random.default_rng(0)
    train, test = next(iter(kfold(campaign.records, k=5, seed=0)))
    predictor = train_predictor(train)
    hard = [r for r in test if r.error_type is ErrorType.HARD]

    stl = StlModel()
    sbist = SbistEngine(stl, rng)
    lbist = LbistEngine()
    default_order = tuple(stl.units)

    cases_default = [(default_order, r.coarse_unit) for r in hard]
    cases_pred = [
        (sbist.complete_order(predictor.predict_record(r).units), r.coarse_unit)
        for r in hard
    ]

    results = {
        "SBIST default order": _mean_cycles(sbist, cases_default),
        "SBIST predicted order": _mean_cycles(sbist, cases_pred),
        "LBIST default order": _mean_cycles(lbist, cases_default),
        "LBIST predicted order": _mean_cycles(lbist, cases_pred),
    }
    benchmark.pedantic(_mean_cycles, args=(lbist, cases_pred),
                       rounds=1, iterations=1)

    assert results["SBIST predicted order"] < results["SBIST default order"]
    assert results["LBIST predicted order"] < results["LBIST default order"]

    lines = ["Ablation — the predictor speeds up both diagnostics "
             f"({len(hard)} hard errors)"]
    for name, cycles in results.items():
        lines.append(f"  {name:24s} {cycles:12,.0f} cycles/diagnosis")
    sb = 1 - results["SBIST predicted order"] / results["SBIST default order"]
    lb = 1 - results["LBIST predicted order"] / results["LBIST default order"]
    lines.append(f"  prediction saves {sb:.0%} (SBIST) / {lb:.0%} (LBIST)")
    report("ablation_lbist", "\n".join(lines))
