"""The headline claim — system availability increased by 42-65%.

The paper equates availability gain with the relative LERT reduction
(unavailability is linear in reaction time at realistic error rates).
This bench turns the Figure 11/14 LERT numbers into availability via
:class:`repro.reaction.AvailabilityModel` and checks the paper's
42-65% window against the best baseline.
"""

from repro.analysis import evaluate_campaign
from repro.reaction import AvailabilityModel


def test_availability_headline(benchmark, campaign, report):
    coarse = evaluate_campaign(campaign, seed=0)
    fine = evaluate_campaign(campaign, fine=True, seed=0)
    model = AvailabilityModel(errors_per_gigacycle=10.0)

    def _improvements():
        out = {}
        for label, ev in (("7 units", coarse), ("13 units", fine)):
            best_base = min(
                ev.strategies[n].mean_lert
                for n in ("base-random", "base-ascending", "base-manifest"))
            comb = ev.strategies["pred-comb"].mean_lert
            out[label] = (best_base, comb, model.improvement(best_base, comb))
        return out

    improvements = benchmark(_improvements)

    lines = ["Headline — availability increase from error correlation "
             "prediction (paper: 42-65%)"]
    for label, (base, comb, gain) in improvements.items():
        lines.append(
            f"  {label:9s} best-baseline LERT {base:12,.0f} -> pred-comb "
            f"{comb:12,.0f}   availability gain {gain:.0%}")
        lines.append(
            f"            availability {model.availability(base):.6%} -> "
            f"{model.availability(comb):.6%} "
            f"({model.nines(base):.1f} -> {model.nines(comb):.1f} nines of "
            "reaction uptime)")
        # The paper's 42-65% window, with slack for our substrate.
        assert 0.35 <= gain <= 0.80, label
    report("headline_availability", "\n".join(lines))
