"""Campaign-engine scaling benchmarks (framework performance).

Times the sharded fault-injection engine at 1/2/4/8 workers on one
stratified campaign and prints the speedup table, plus the golden-trace
``memory_at`` reconstruction hot path (checkpoint+bisect vs the naive
full-log replay it replaced), plus the liveness-pruning speedup
(pruned vs un-pruned engine on the same schedule, digests asserted
bit-identical), plus the batch-vectorised engine against the pruned
scalar engine (a batch-size sweep and a deep-pool headline config).

Results are asserted bit-identical across worker counts, so these
benches double as an integration check of the determinism contract.
On a single-core container the speedup degenerates to process-pool
overhead; the table still prints so the trajectory is recorded.

Timings land in ``results/BENCH_<scale>.json`` via the conftest hook;
the pruning and batch sweeps additionally *append* timestamped entries
to the repo-root ``BENCH_campaign.json`` so the campaign-throughput
trajectory is tracked across PRs instead of being overwritten.
"""

from __future__ import annotations

import dataclasses
import os
import random
import time
from pathlib import Path

import pytest

from repro.faults import CampaignConfig, GoldenTrace, cext_available, run_campaign
from repro.faults.golden import MEMORY_CHECKPOINT_EVERY
from repro.workloads import KERNELS

#: Repo-root perf-trajectory artifact (committed, diffed across PRs).
ROOT_BENCH_JSON = Path(__file__).parent.parent / "BENCH_campaign.json"


def append_bench_entry(kind: str, payload: dict,
                       path: Path = ROOT_BENCH_JSON) -> dict:
    """Append one timestamped entry to the root trajectory artifact.

    Delegates to :mod:`repro.benchlog`, the shared guarded reader /
    writer for the mixed-schema history file (legacy schema-1
    single-payload files are absorbed as the first entry so history
    survives the format change).  Returns the entry written.
    """
    from repro.benchlog import append_entry

    return append_entry(path, kind, payload)

#: A campaign sized so one measurement run is seconds, not minutes:
#: two benchmarks at a moderate sampling fraction.
SCALING_CONFIG = CampaignConfig(
    benchmarks=("ttsprk", "puwmod"),
    soft_per_flop=1,
    hard_per_flop=1,
    flop_fraction=0.10,
    max_observe=1000,
)

WORKER_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def serial_reference():
    """The workers=1 result every parallel run must reproduce."""
    return run_campaign(SCALING_CONFIG, workers=1)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_campaign_scaling(benchmark, workers, serial_reference):
    benchmark.group = "campaign-scaling"
    benchmark.name = f"campaign_workers_{workers}"
    result = benchmark.pedantic(
        run_campaign, args=(SCALING_CONFIG,),
        kwargs={"workers": workers}, rounds=1, iterations=1)
    assert result.records == serial_reference.records
    assert result.injected == serial_reference.injected


def test_scaling_speedup_table(report):
    """One explicit wall-clock sweep with the speedup table artifact."""
    rows = []
    base = None
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        result = run_campaign(SCALING_CONFIG, workers=workers)
        elapsed = time.perf_counter() - start
        if base is None:
            base = elapsed
        rows.append((workers, elapsed, base / elapsed, result.meta["n_shards"]))
    lines = [f"Campaign scaling — sharded engine, host cores={os.cpu_count()}"]
    lines += [f"  workers={w}  wall={t:7.2f}s  speedup={s:4.2f}x  shards={n}"
              for w, t, s, n in rows]
    report("campaign_scaling", "\n".join(lines))
    assert rows[0][2] == 1.0


@pytest.mark.parametrize("prune", (True, False), ids=("pruned", "unpruned"))
def test_campaign_pruning(benchmark, prune, serial_reference):
    """Pruned vs un-pruned engine on the same schedule, workers=1."""
    benchmark.group = "campaign-pruning"
    benchmark.name = f"campaign_{'pruned' if prune else 'unpruned'}"
    config = dataclasses.replace(SCALING_CONFIG, prune=prune)
    result = benchmark.pedantic(
        run_campaign, args=(config,), kwargs={"workers": 1},
        rounds=1, iterations=1)
    # pruning must be behaviour-preserving, bit for bit
    assert result.records == serial_reference.records
    assert result.injected == serial_reference.injected


def test_pruning_speedup_report(report):
    """Quick-campaign pruning sweep; writes the root BENCH_campaign.json.

    workers=1 so the number is pure engine throughput, best-of-3 with
    the golden traces pre-warmed so neither side pays simulation or
    cache-load cost.
    """
    config = CampaignConfig.quick()
    config_off = dataclasses.replace(config, prune=False)
    run_campaign(config, workers=1)  # warm the in-process golden cache

    def best_of(cfg, rounds=3):
        times, result = [], None
        for _ in range(rounds):
            start = time.perf_counter()
            result = run_campaign(cfg, workers=1)
            times.append(time.perf_counter() - start)
        return min(times), result

    t_on, on = best_of(config)
    t_off, off = best_of(config_off)
    assert on.digest() == off.digest()  # behaviour-preserving
    n = on.n_injected
    pruning = on.meta["pruning"]
    pruned = pruning["soft_pruned"] + pruning["hard_pruned"]
    deferred = pruning["soft_deferred"] + pruning["hard_deferred"]
    collapsible = pruning["equiv_classes"] + pruning["equiv_hits"]
    payload = {
        "config": "quick",
        "workers": 1,
        "injections": n,
        "injections_per_s": {
            "pruned": round(n / t_on, 1),
            "unpruned": round(n / t_off, 1),
        },
        "speedup": round(t_off / t_on, 2),
        "pruned_fraction": round(pruned / n, 4),
        "deferred_fraction": round(deferred / n, 4),
        # Raw counters: the old derived-only ratio rendered as a
        # meaningless 0.0 whenever the quick schedule produced no
        # collapsible pair, hiding whether the stage even ran.
        "equiv_classes": pruning["equiv_classes"],
        "equiv_hits": pruning["equiv_hits"],
        "equivalence_collapse_ratio": round(
            pruning["equiv_hits"] / collapsible, 4) if collapsible else None,
        "cycles_saved": pruning["cycles_saved"],
        "sim_cycles_pruned": pruning["sim_cycles"],
        "sim_cycles_unpruned": off.meta["pruning"]["sim_cycles"],
        "digest": on.digest(),
    }
    append_bench_entry("pruning", payload)
    report("campaign_pruning", "\n".join([
        "Liveness pruning — quick campaign, workers=1 (best of 3)",
        f"  unpruned  wall={t_off:6.3f}s  {n / t_off:8.0f} inj/s",
        f"  pruned    wall={t_on:6.3f}s  {n / t_on:8.0f} inj/s  "
        f"speedup={t_off / t_on:4.2f}x",
        f"  masked w/o sim: {pruned}/{n} ({pruned / n:.1%})  "
        f"deferred: {deferred}  equiv: {pruning['equiv_classes']} classes, "
        f"{pruning['equiv_hits']} collapsed",
        f"  cycles: {pruning['sim_cycles']} simulated vs "
        f"{off.meta['pruning']['sim_cycles']} unpruned "
        f"({pruning['cycles_saved']} saved)",
        f"  appended to {ROOT_BENCH_JSON.name}",
    ]))
    assert on.records == off.records


#: Batch-size sweep config: one benchmark, enough faults (~7.5k) that
#: the vectorised kernel amortises its per-call dispatch cost, small
#: enough that the 5-row sweep stays under a minute.
BATCH_SWEEP_CONFIG = CampaignConfig(
    benchmarks=("ttsprk",),
    soft_per_flop=8,
    hard_per_flop=1,
    flop_fraction=0.35,
    max_observe=2000,
)

#: Headline config: the full soft-heavy pool on one benchmark (~43k
#: faults), where lane occupancy stays high for thousands of kernel
#: iterations — the batch engine's best case.
BATCH_HEADLINE_CONFIG = CampaignConfig(
    benchmarks=("ttsprk",),
    soft_per_flop=16,
    hard_per_flop=2,
    flop_fraction=1.0,
)

BATCH_SIZES = (1, 16, 64, 256)


def test_batch_speedup_report(report):
    """Batch-vs-scalar engine sweep; appends to the root BENCH_campaign.json.

    Two entries: a ``batch_sweep`` over batch sizes 1/16/64/256 on a
    medium campaign (this is also the CI regression-gate baseline: the
    gate compares the batch/scalar *ratio*, which normalises host
    speed), and a ``batch_headline`` measurement on the deep soft-heavy
    pool with a large lane count (interleaved numpy/cext rounds; the
    kernel ratio is the median per-round pair ratio).  Both entries
    carry one
    row per kernel backend (numpy and, where the extension builds,
    cext); digests are asserted bit-identical between every row and
    the scalar engine.
    """
    run_campaign(BATCH_SWEEP_CONFIG, workers=1)  # warm golden caches
    kernels = ("numpy", "cext") if cext_available() else ("numpy",)

    def timed(cfg, **kwargs):
        start = time.perf_counter()
        result = run_campaign(cfg, workers=1, **kwargs)
        return time.perf_counter() - start, result

    t_scalar, scalar = timed(BATCH_SWEEP_CONFIG)
    n = scalar.n_injected
    rows = {k: {} for k in kernels}
    for kernel in kernels:
        for size in BATCH_SIZES:
            t_b, batched = timed(BATCH_SWEEP_CONFIG, batch=size,
                                 kernel=kernel)
            assert batched.digest() == scalar.digest()
            assert batched.meta["pruning"] == scalar.meta["pruning"]
            rows[kernel][str(size)] = round(n / t_b, 1)
    per_s = {"scalar": round(n / t_scalar, 1), "batch": rows["numpy"]}
    if "cext" in rows:
        per_s["batch_cext"] = rows["cext"]
    sweep_entry = {
        "config": {"benchmarks": ["ttsprk"], "soft_per_flop": 8,
                   "hard_per_flop": 1, "flop_fraction": 0.35,
                   "max_observe": 2000},
        "workers": 1,
        "injections": n,
        "injections_per_s": per_s,
        "best_batch_speedup": round(
            max(rows["numpy"].values()) / (n / t_scalar), 2),
        "digest": scalar.digest(),
    }
    if "cext" in rows:
        sweep_entry["best_cext_speedup"] = round(
            max(rows["cext"].values()) / (n / t_scalar), 2)
    append_bench_entry("batch_sweep", sweep_entry)

    run_campaign(BATCH_HEADLINE_CONFIG, workers=1, batch=2048)  # warm golden
    t_hs, head_scalar = timed(BATCH_HEADLINE_CONFIG)
    hn = head_scalar.n_injected
    # Interleaved (numpy, cext) rounds: host frequency drifts over
    # process lifetime, and a one-shot pair can swing the kernel ratio
    # >20% depending on which run lands on the fast early slot.  Each
    # round times both kernels back-to-back under the same host
    # conditions; throughputs report the best round per kernel, while
    # the kernel-vs-kernel ratio is the *median of per-round pair
    # ratios* — pairing within a round cancels the drift that
    # independent bests do not.
    t_hb = t_hc = float("inf")
    pair_ratios = []
    for _ in range(3):
        t_b, head_batch = timed(BATCH_HEADLINE_CONFIG, batch=2048,
                                kernel="numpy")
        assert head_batch.digest() == head_scalar.digest()
        t_hb = min(t_hb, t_b)
        if cext_available():
            t_c, head_cext = timed(BATCH_HEADLINE_CONFIG, batch=2048,
                                   kernel="cext")
            assert head_cext.digest() == head_scalar.digest()
            t_hc = min(t_hc, t_c)
            pair_ratios.append(t_b / t_c)
    pair_ratios.sort()
    head_per_s = {
        "scalar_pruned": round(hn / t_hs, 1),
        "batch": round(hn / t_hb, 1),
    }
    head_entry = {
        "config": {"benchmarks": ["ttsprk"], "soft_per_flop": 16,
                   "hard_per_flop": 2, "flop_fraction": 1.0,
                   "max_observe": None},
        "workers": 1,
        "batch": 2048,
        "injections": hn,
        "injections_per_s": head_per_s,
        "speedup": round(t_hs / t_hb, 2),
        "digest": head_scalar.digest(),
    }
    if cext_available():
        head_per_s["batch_cext"] = round(hn / t_hc, 1)
        head_entry["cext_speedup"] = round(t_hs / t_hc, 2)
        head_entry["cext_vs_numpy_batch"] = round(
            pair_ratios[len(pair_ratios) // 2], 2)
    append_bench_entry("batch_headline", head_entry)
    lines = ["Batch engine vs pruned scalar — workers=1",
             f"  sweep ({n} injections): scalar {n / t_scalar:8.0f} inj/s"]
    for kernel in kernels:
        lines += [f"    {kernel}:batch={s:<4d} {rows[kernel][str(s)]:8.0f} "
                  f"inj/s  ({rows[kernel][str(s)] / (n / t_scalar):4.2f}x)"
                  for s in BATCH_SIZES]
    lines += [f"  headline ({hn} injections, batch=2048): "
              f"scalar {hn / t_hs:8.0f} inj/s, numpy {hn / t_hb:8.0f} inj/s "
              f"({t_hs / t_hb:4.2f}x)"]
    if cext_available():
        lines += [f"    cext {hn / t_hc:8.0f} inj/s ({t_hs / t_hc:4.2f}x "
                  f"scalar, {pair_ratios[len(pair_ratios) // 2]:4.2f}x "
                  f"numpy batch, median of {len(pair_ratios)} "
                  f"interleaved pairs)"]
    lines += [f"  appended to {ROOT_BENCH_JSON.name}"]
    report("campaign_batch", "\n".join(lines))


THREAD_COUNTS = (1, 2, 4, 8)


def test_cstep_threads_report(report):
    """Multithreaded drive loop + shard-executor sweep; appends a
    ``cstep_threads`` entry to the root BENCH_campaign.json.

    Rows: drive-loop threads 1/2/4/8 at workers=1 (pure kernel
    scaling), then executor process-vs-thread at workers=2.  The
    headline multithread ratio follows the PR 7 methodology —
    interleaved (threads=1, threads=4) rounds, median of per-round
    pair ratios — so it normalises host-frequency drift, and the host
    core count is recorded alongside: on a single-core runner the
    honest ratio is ~1.0 and the entry says so.  Every row's digest is
    asserted identical to the single-thread run.
    """
    if not cext_available():
        pytest.skip("compiled kernel unavailable")
    run_campaign(BATCH_SWEEP_CONFIG, workers=1, batch=256,
                 kernel="cext", threads=1)  # warm goldens + build
    cores = os.cpu_count() or 1

    def timed(**kwargs):
        start = time.perf_counter()
        result = run_campaign(BATCH_SWEEP_CONFIG, batch=256,
                              kernel="cext", **kwargs)
        return time.perf_counter() - start, result

    t_ref, ref = timed(workers=1, threads=1)
    n = ref.n_injected
    thread_rows = {"1": round(n / t_ref, 1)}
    for threads in THREAD_COUNTS[1:]:
        t_n, r = timed(workers=1, threads=threads)
        assert r.digest() == ref.digest()
        assert r.meta["pruning"] == ref.meta["pruning"]
        thread_rows[str(threads)] = round(n / t_n, 1)

    # Interleaved rounds for the headline threads=4 ratio.
    pair_ratios = []
    for _ in range(3):
        t_1, r1 = timed(workers=1, threads=1)
        t_4, r4 = timed(workers=1, threads=4)
        assert r1.digest() == ref.digest() and r4.digest() == ref.digest()
        pair_ratios.append(t_1 / t_4)
    pair_ratios.sort()
    ratio = round(pair_ratios[len(pair_ratios) // 2], 2)

    executor_rows = {}
    for executor in ("process", "thread"):
        t_e, r = timed(workers=2, threads=2, executor=executor)
        assert r.digest() == ref.digest()
        executor_rows[executor] = round(n / t_e, 1)

    append_bench_entry("cstep_threads", {
        "config": {"benchmarks": ["ttsprk"], "soft_per_flop": 8,
                   "hard_per_flop": 1, "flop_fraction": 0.35,
                   "max_observe": 2000},
        "batch": 256,
        "host_cores": cores,
        "injections": n,
        "injections_per_s": {
            "threads": thread_rows,
            "workers2_executor": executor_rows,
        },
        "threads4_vs_threads1": ratio,
        "digest": ref.digest(),
    })
    lines = [f"Multithreaded cext drive — batch=256, host cores={cores}"]
    lines += [f"  threads={t}  {thread_rows[str(t)]:8.0f} inj/s  "
              f"({thread_rows[str(t)] / thread_rows['1']:4.2f}x)"
              for t in THREAD_COUNTS]
    lines += [f"  threads=4 vs 1: {ratio:4.2f}x "
              f"(median of {len(pair_ratios)} interleaved pairs)"]
    lines += [f"  workers=2 executor={e}: {v:8.0f} inj/s"
              for e, v in executor_rows.items()]
    lines += [f"  appended to {ROOT_BENCH_JSON.name}"]
    report("campaign_cstep_threads", "\n".join(lines))


def test_memory_at_checkpointed(benchmark):
    """The optimised reconstruction on a dense write log."""
    golden = _write_heavy_golden()
    benchmark.group = "memory-reconstruction"
    cycles = list(range(0, golden.n_cycles, 11))

    def reconstruct_sweep():
        for cycle in cycles:
            golden.memory_at(cycle)

    benchmark(reconstruct_sweep)


def test_memory_at_naive_baseline(benchmark):
    """The seed's full-log replay, kept as the comparison baseline."""
    golden = _write_heavy_golden()
    benchmark.group = "memory-reconstruction"
    cycles = list(range(0, golden.n_cycles, 11))

    def naive_sweep():
        for cycle in cycles:
            words = list(golden._initial_words)
            for when, idx, value in golden.write_log:
                if when >= cycle:
                    break
                words[idx] = value

    benchmark(naive_sweep)


def _write_heavy_golden() -> GoldenTrace:
    """A golden trace carrying a dense synthetic write log.

    The AutoBench-style kernels keep almost everything in registers, so
    their logs are tiny; a memory-heavy workload writing a few words
    per cycle is the case the checkpointing exists for.
    """
    golden = GoldenTrace(KERNELS["ttsprk"])
    rnd = random.Random(1)
    log = [
        (cycle, rnd.randrange(golden.mem_words), rnd.randrange(1 << 32))
        for cycle in range(golden.n_cycles)
        for _ in range(4)
    ]
    golden.reindex_write_log(log)
    return golden
