"""Campaign-engine scaling benchmarks (framework performance).

Times the sharded fault-injection engine at 1/2/4/8 workers on one
stratified campaign and prints the speedup table, plus the golden-trace
``memory_at`` reconstruction hot path (checkpoint+bisect vs the naive
full-log replay it replaced).

Results are asserted bit-identical across worker counts, so these
benches double as an integration check of the determinism contract.
On a single-core container the speedup degenerates to process-pool
overhead; the table still prints so the trajectory is recorded.

Timings land in ``results/BENCH_<scale>.json`` via the conftest hook.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.faults import CampaignConfig, GoldenTrace, run_campaign
from repro.faults.golden import MEMORY_CHECKPOINT_EVERY
from repro.workloads import KERNELS

#: A campaign sized so one measurement run is seconds, not minutes:
#: two benchmarks at a moderate sampling fraction.
SCALING_CONFIG = CampaignConfig(
    benchmarks=("ttsprk", "puwmod"),
    soft_per_flop=1,
    hard_per_flop=1,
    flop_fraction=0.10,
    max_observe=1000,
)

WORKER_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def serial_reference():
    """The workers=1 result every parallel run must reproduce."""
    return run_campaign(SCALING_CONFIG, workers=1)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_campaign_scaling(benchmark, workers, serial_reference):
    benchmark.group = "campaign-scaling"
    benchmark.name = f"campaign_workers_{workers}"
    result = benchmark.pedantic(
        run_campaign, args=(SCALING_CONFIG,),
        kwargs={"workers": workers}, rounds=1, iterations=1)
    assert result.records == serial_reference.records
    assert result.injected == serial_reference.injected


def test_scaling_speedup_table(report):
    """One explicit wall-clock sweep with the speedup table artifact."""
    rows = []
    base = None
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        result = run_campaign(SCALING_CONFIG, workers=workers)
        elapsed = time.perf_counter() - start
        if base is None:
            base = elapsed
        rows.append((workers, elapsed, base / elapsed, result.meta["n_shards"]))
    lines = [f"Campaign scaling — sharded engine, host cores={os.cpu_count()}"]
    lines += [f"  workers={w}  wall={t:7.2f}s  speedup={s:4.2f}x  shards={n}"
              for w, t, s, n in rows]
    report("campaign_scaling", "\n".join(lines))
    assert rows[0][2] == 1.0


def test_memory_at_checkpointed(benchmark):
    """The optimised reconstruction on a dense write log."""
    golden = _write_heavy_golden()
    benchmark.group = "memory-reconstruction"
    cycles = list(range(0, golden.n_cycles, 11))

    def reconstruct_sweep():
        for cycle in cycles:
            golden.memory_at(cycle)

    benchmark(reconstruct_sweep)


def test_memory_at_naive_baseline(benchmark):
    """The seed's full-log replay, kept as the comparison baseline."""
    golden = _write_heavy_golden()
    benchmark.group = "memory-reconstruction"
    cycles = list(range(0, golden.n_cycles, 11))

    def naive_sweep():
        for cycle in cycles:
            words = list(golden._initial_words)
            for when, idx, value in golden.write_log:
                if when >= cycle:
                    break
                words[idx] = value

    benchmark(naive_sweep)


def _write_heavy_golden() -> GoldenTrace:
    """A golden trace carrying a dense synthetic write log.

    The AutoBench-style kernels keep almost everything in registers, so
    their logs are tiny; a memory-heavy workload writing a few words
    per cycle is the case the checkpointing exists for.
    """
    golden = GoldenTrace(KERNELS["ttsprk"])
    rnd = random.Random(1)
    log = [
        (cycle, rnd.randrange(golden.mem_words), rnd.randrange(1 << 32))
        for cycle in range(golden.n_cycles)
        for _ in range(4)
    ]
    golden.reindex_write_log(log)
    return golden
