"""Simulator throughput micro-benchmarks (framework performance).

These are genuine pytest-benchmark timings of the hot paths that set
the campaign's wall-clock cost: the flip-flop-level CPU step, the
lockstep compare, the golden-trace build (both tiers), one differential
injection, and the batch-vectorised engine against the scalar engine
on an identical fault pool.
"""

import pytest
import numpy as np

from repro.cpu import Cpu, FlopRef, Memory
from repro.cpu.memory import InputStream
from repro.faults import (
    ArchTrace,
    BatchInjectionEngine,
    Fault,
    FaultKind,
    GoldenTrace,
    InjectionEngine,
    cext_available,
    cext_build_error,
)
from repro.lockstep import LockstepChecker, expand_ports
from repro.workloads import KERNELS, build


def _fresh_cpu():
    program, stimulus = build(KERNELS["ttsprk"])
    return Cpu(Memory.from_program(program, size_words=2048),
               InputStream(stimulus.values), entry=program.entry)


def test_cpu_step_throughput(benchmark):
    cpu = _fresh_cpu()

    def run_block():
        for _ in range(1000):
            cpu.step()
        if cpu.halted:
            cpu.reset()

    benchmark(run_block)


def test_snapshot_throughput(benchmark):
    cpu = _fresh_cpu()
    cpu.run(100)
    benchmark(cpu.snapshot)


def test_lockstep_compare_throughput(benchmark):
    cpu = _fresh_cpu()
    out = cpu.port_state()
    checker = LockstepChecker()

    def compare_block():
        for _ in range(1000):
            checker.compare(out, out)

    benchmark(compare_block)


def test_port_expansion_throughput(benchmark):
    cpu = _fresh_cpu()
    cpu.run(100)
    out = cpu.port_state()

    def expand_block():
        for _ in range(1000):
            expand_ports(out)

    benchmark(expand_block)


def test_golden_trace_build(benchmark):
    benchmark.pedantic(GoldenTrace, args=(KERNELS["ttsprk"],),
                       rounds=2, iterations=1)


def test_arch_trace_build(benchmark):
    """Tier-1 (architectural) golden production.

    Compare against ``test_golden_trace_build``: the ISA-level replay
    is roughly an order of magnitude cheaper than the flop-accurate
    trace (measured ~6-12x across kernels), which is what makes the
    per-worker cross-check of every tier-2 trace affordable.
    """
    trace = benchmark.pedantic(ArchTrace, args=(KERNELS["ttsprk"],),
                               rounds=5, iterations=1)
    assert trace.n_steps > 0


def test_golden_trace_cache_load(benchmark, tmp_path):
    GoldenTrace.cached(KERNELS["ttsprk"], cache_dir=tmp_path)  # populate

    def load():
        return GoldenTrace.cached(KERNELS["ttsprk"], cache_dir=tmp_path)

    trace = benchmark(load)
    assert trace.n_cycles > 0


def test_injection_throughput(benchmark):
    golden = GoldenTrace(KERNELS["ttsprk"])
    engine = InjectionEngine(golden, max_observe=2000)
    rng = np.random.default_rng(0)
    from repro.cpu.units import all_flops
    flops = all_flops()
    faults = [
        Fault(flops[int(rng.integers(len(flops)))],
              [FaultKind.SOFT, FaultKind.STUCK0, FaultKind.STUCK1][int(rng.integers(3))],
              int(rng.integers(golden.n_cycles - 1)))
        for _ in range(50)
    ]

    def inject_block():
        return sum(1 for f in faults if engine.inject(f) is not None)

    manifested = benchmark(inject_block)
    assert 0 < manifested <= len(faults)


def _fault_pool(golden: GoldenTrace, count: int) -> list[Fault]:
    """A reproducible mixed soft/stuck fault pool over all flops."""
    from repro.cpu.units import all_flops

    rng = np.random.default_rng(0)
    flops = all_flops()
    kinds = (FaultKind.SOFT, FaultKind.STUCK0, FaultKind.STUCK1)
    return [
        Fault(flops[int(rng.integers(len(flops)))],
              kinds[int(rng.integers(3))],
              int(rng.integers(golden.n_cycles - 1)))
        for _ in range(count)
    ]


@pytest.mark.parametrize(
    "batch,kernel",
    ((0, None), (1, "numpy"), (16, "numpy"), (64, "numpy"), (256, "numpy"),
     (64, "cext"), (256, "cext")),
    ids=("scalar", "b1", "b16", "b64", "b256", "b64-cext", "b256-cext"))
def test_batch_engine_throughput(benchmark, batch, kernel):
    """Scalar vs batch engine on one 2000-fault pool, outcomes asserted.

    ``batch=0`` is the scalar :class:`InjectionEngine` row every batch
    row is compared against (same group, so pytest-benchmark prints the
    relative speedups directly).  The batch rows pin their kernel
    backend explicitly; the cext rows skip on hosts where the compiled
    kernel is unavailable.
    """
    if kernel == "cext" and not cext_available():
        pytest.skip(f"compiled kernel unavailable: {cext_build_error()}")
    golden = GoldenTrace.cached(KERNELS["ttsprk"])
    faults = _fault_pool(golden, 2000)
    benchmark.group = "batch-vs-scalar-injection"

    if batch == 0:
        def run():
            engine = InjectionEngine(golden, max_observe=2000)
            return [engine.inject(f) for f in faults]
    else:
        def run():
            engine = BatchInjectionEngine(golden, max_observe=2000,
                                          batch=batch, kernel=kernel)
            return engine.inject_all(faults)

    outcomes = benchmark.pedantic(run, rounds=2, iterations=1)
    # Any engine/batch size/kernel must produce the identical outcome list.
    scalar_engine = InjectionEngine(golden, max_observe=2000)
    assert outcomes == [scalar_engine.inject(f) for f in faults]
