"""Fault-fuzz mode benchmarks: DMR vs voted TMR vs dynamic lockstep.

Times one small-but-real fuzz batch (generated programs, real pipeline
runs, real checker) per comparison regime so the cost of the voter path
and the mode-schedule gating is tracked across PRs:

- ``dmr-locked`` — the baseline two-core always-compared regime.
- ``tmr-locked`` — the voted triple; the overhead over DMR is the
  VotingChecker (vote + attribution) since only one core is simulated.
- ``dmr-dynamic`` — split/locked window schedules at 40% duty; cheaper
  comparisons but a shadow ground-truth check per cycle.

Every timed run also asserts the worker-count-invariant digest contract
so a benchmark run doubles as a determinism smoke at this scale.
"""

import pytest

from repro.verify.faultfuzz import run_faultfuzz

SCALE = dict(programs=20, seed=7, faults_per_program=2)

REGIMES = {
    "dmr-locked": dict(cores=2),
    "tmr-locked": dict(cores=3),
    "dmr-dynamic": dict(cores=2, lockstep_mode="dynamic", duty=0.4),
}


@pytest.mark.parametrize("regime", REGIMES, ids=REGIMES)
def test_faultfuzz_regime_throughput(benchmark, regime):
    benchmark.group = "faultfuzz-modes"
    kwargs = REGIMES[regime]

    report = benchmark.pedantic(
        lambda: run_faultfuzz(**SCALE, **kwargs), rounds=2, iterations=1)

    assert report.outcomes, "fuzz batch sampled no manifest faults"
    assert report.digest() == run_faultfuzz(
        **SCALE, workers=2, **kwargs).digest()
    if kwargs.get("cores") == 3:
        attribution = report.attribution()
        assert attribution is not None and attribution["wrong"] == 0
    if kwargs.get("lockstep_mode") == "dynamic":
        assert any(d < 1.0 for d in report.mode_duty.values())
