"""Figure 11 — average LERT per error, five models, 7 CPU units.

Paper reference shape:
    ordering: pred-comb < pred-location-only < best baseline, with
    pred-comb 65%/64%/39% faster than base-manifest / base-ascending /
    pred-location-only, and pred-location-only 43%/40% faster than
    base-manifest / base-ascending.  Average tested units drop from
    ~4 (baselines) to ~2 (location) to ~1 (combined).

The ordering and the pred-comb factors reproduce; the location-only
margin over the baselines is smaller here because our balanced error
mix spends more of every model's LERT on (order-insensitive) soft
errors — see EXPERIMENTS.md and the balance ablation.
"""

from repro.analysis import evaluate_campaign
from repro.analysis.reports import render_fig11


def test_fig11(benchmark, campaign, report):
    ev = benchmark.pedantic(evaluate_campaign, args=(campaign,),
                            rounds=1, iterations=1)
    s = ev.strategies

    # Who wins: strict paper ordering of the five models.
    assert s["pred-comb"].mean_lert < s["pred-location-only"].mean_lert
    for base in ("base-random", "base-ascending", "base-manifest"):
        assert s["pred-location-only"].mean_lert < s[base].mean_lert

    # Rough factors: pred-comb halves the best baseline's LERT.
    assert ev.speedup("pred-comb", "base-manifest") > 0.40
    assert ev.speedup("pred-comb", "base-ascending") > 0.40
    assert ev.speedup("pred-comb", "pred-location-only") > 0.25

    # Tested-unit annotations: combined model tests ~1-2 units.
    assert s["pred-comb"].mean_tested_units < 2.5
    assert s["pred-comb"].mean_tested_units < s["pred-location-only"].mean_tested_units

    report("fig11_lert_7units", render_fig11(ev))
