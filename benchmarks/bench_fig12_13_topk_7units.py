"""Figures 12/13 — predicting fewer CPU units (7-unit organisation).

Paper reference shape:
    Fig 12: location accuracy ~70% at K=1, ~85% at K=2, ~95% at K=3,
    ~99% beyond; Fig 13: LERT tracks accuracy, sweet spot K=3..4 with
    60-63% speedup over base-ascending, saturating afterwards.
    Storage drops to ~1.5-2 KB at the sweet spot.
"""

from repro.analysis import topk_sweep
from repro.analysis.reports import render_topk


def test_fig12_13(benchmark, campaign, report):
    sweep = benchmark.pedantic(topk_sweep, args=(campaign,),
                               kwargs={"ks": list(range(1, 8))},
                               rounds=1, iterations=1)

    accs = [sweep[k].location_accuracy for k in range(1, 8)]
    # Fig 12 shape: monotone saturating curve reaching ~100%.
    assert all(b >= a - 1e-9 for a, b in zip(accs, accs[1:]))
    assert accs[0] > 0.4
    assert accs[2] > accs[0]
    assert accs[-1] == 1.0

    # Fig 13 shape: LERT saturates; full-K no better than the knee by much.
    lerts = [sweep[k].strategies["pred-comb"].mean_lert for k in range(1, 8)]
    assert lerts[-1] <= lerts[0] * 1.05
    knee = min(range(7), key=lambda i: lerts[i])
    assert knee <= 5, "sweet spot must come before predicting every unit"

    # Truncated tables are smaller (Fig 13 discussion).
    assert sweep[3].table_bytes < sweep[7].table_bytes

    report("fig12_13_topk_7units", render_topk(sweep))
