"""Figure 14 — average LERT per error with the 13-unit organisation.

Paper reference shape: breaking the DPU into seven sub-units improves
every informed model (base-ascending most, by ~62%; prediction models
by 40-45% vs their coarse versions); pred-comb stays the overall
winner with speedups of 64%/42%/34% vs base-manifest/base-ascending/
pred-location-only.
"""

from repro.analysis import evaluate_campaign
from repro.analysis.reports import render_fig11


def test_fig14(benchmark, campaign, report):
    coarse = evaluate_campaign(campaign, seed=0)
    fine = benchmark.pedantic(evaluate_campaign, args=(campaign,),
                              kwargs={"fine": True, "seed": 0},
                              rounds=1, iterations=1)
    s = fine.strategies

    # pred-comb still wins under the fine organisation.
    assert s["pred-comb"].mean_lert == min(x.mean_lert for x in s.values())
    assert fine.speedup("pred-comb", "base-manifest") > 0.3
    assert fine.speedup("pred-comb", "pred-location-only") > 0.15

    # Finer granularity improves the informed models vs coarse.
    for model in ("base-ascending", "pred-location-only", "pred-comb"):
        assert (s[model].mean_lert
                < coarse.strategies[model].mean_lert), model

    gains = {
        model: 1.0 - s[model].mean_lert / coarse.strategies[model].mean_lert
        for model in ("base-ascending", "base-manifest",
                      "pred-location-only", "pred-comb")
    }
    lines = [render_fig11(fine, fine=True), "",
             "  improvement vs the 7-unit organisation:"]
    lines += [f"    {m:20s} {g:+.0%}" for m, g in gains.items()]
    report("fig14_lert_13units", "\n".join(lines))
