"""Figures 15/16 — predicting fewer units, 13-unit organisation.

Paper reference shape:
    Fig 15: accuracy starts much lower than the coarse case (~42% at
    K=1, vs ~70% with 7 units), needs ~7 units to pass 95%, flat after
    8; Fig 16: sweet spot at K=7..8 with 36-39% speedup over
    base-ascending.
"""

from repro.analysis import topk_sweep
from repro.analysis.reports import render_topk


def test_fig15_16(benchmark, campaign, report):
    fine = benchmark.pedantic(topk_sweep, args=(campaign,),
                              kwargs={"fine": True,
                                      "ks": list(range(1, 14))},
                              rounds=1, iterations=1)
    coarse = topk_sweep(campaign, ks=[1])

    accs = [fine[k].location_accuracy for k in range(1, 14)]
    assert all(b >= a - 1e-9 for a, b in zip(accs, accs[1:]))
    assert accs[-1] == 1.0
    # K=1 accuracy drops under the finer organisation (Fig 15 vs Fig 12).
    assert accs[0] < coarse[1].location_accuracy

    lerts = [fine[k].strategies["pred-comb"].mean_lert for k in range(1, 14)]
    knee = min(range(13), key=lambda i: lerts[i])
    assert lerts[-1] <= lerts[0]
    assert knee >= 2, "fine organisation needs more predicted units than coarse"

    report("fig15_16_topk_13units", render_topk(fine, fine=True))
