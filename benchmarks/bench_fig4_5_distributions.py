"""Figures 4 and 5 — per-unit diverged-SC-set signature distributions.

Paper reference values:
    Fig 4 (hard): average cross-unit BC ~0.39 (min/median/max units shown)
    Fig 5 (soft): average cross-unit BC ~0.32
    Section III-B: hard errors diverge ~54% more SCs than soft at the
    same flops; hard-vs-soft BC per unit spans 0.3..0.95, average ~0.6.

Lower BC = more distinguishable signatures.  Our small core yields
*more* distinguishable signatures (lower BC) than the R5 — fewer flops
share each output path — which only strengthens the phenomenon.
"""

from repro.analysis.reports import render_fig4_5
from repro.core import SignatureStats, average_bc, average_type_bc
from repro.faults import ErrorType, diverged_set_size_ratio


def test_fig4_hard_distributions(benchmark, campaign, report):
    stats = benchmark(SignatureStats.from_records, campaign.records)
    bc = average_bc(stats, campaign.records, ErrorType.HARD)
    assert 0.0 < bc < 0.7, "unit signatures must be distinguishable"
    report("fig4_hard_distributions",
           render_fig4_5(campaign.records, ErrorType.HARD))


def test_fig5_soft_distributions(benchmark, campaign, report):
    stats = SignatureStats.from_records(campaign.records)
    bc = benchmark.pedantic(average_bc,
                            args=(stats, campaign.records, ErrorType.SOFT),
                            rounds=1, iterations=1)
    assert 0.0 < bc < 0.7
    report("fig5_soft_distributions",
           render_fig4_5(campaign.records, ErrorType.SOFT))


def test_hard_spreads_wider_than_soft(benchmark, campaign, report):
    """Section III-B: the type-prediction signal."""
    ratio = benchmark(diverged_set_size_ratio, campaign)
    assert ratio > 1.0, "hard errors must diverge more SCs (paper: 1.54x)"
    stats = SignatureStats.from_records(campaign.records)
    type_bc = average_type_bc(stats, campaign.records)
    assert 0.0 < type_bc < 1.0
    report("sec3b_type_signal", "\n".join([
        "Section III-B — error type signal",
        f"  hard/soft mean diverged-SC-count ratio: {ratio:.2f} (paper: 1.54)",
        f"  average hard-vs-soft BC per unit:       {type_bc:.2f} (paper: ~0.6)",
    ]))
