"""Section V-B — keeping the prediction table on-chip vs off-chip.

Paper reference values: the off-chip table (100-cycle access) costs
only ~0.05% extra LERT vs on-chip (2-cycle access) for both prediction
models, because table accesses are one-per-error while STLs/restarts
run for thousands to hundreds of thousands of cycles.  Table storage:
~3.2 KB for 1201 22-bit entries.
"""

from repro.analysis import evaluate_campaign


def test_onoffchip(benchmark, campaign, report):
    on = evaluate_campaign(campaign, seed=0)
    off = benchmark.pedantic(evaluate_campaign, args=(campaign,),
                             kwargs={"seed": 0, "off_chip": True},
                             rounds=1, iterations=1)
    lines = ["Section V-B — prediction table placement"]
    for model in ("pred-location-only", "pred-comb"):
        a = on.strategies[model].mean_lert
        b = off.strategies[model].mean_lert
        overhead = b / a - 1.0
        assert overhead >= 0.0
        assert overhead < 0.005, "off-chip penalty must be negligible (paper: 0.05%)"
        lines.append(f"  {model:20s} on-chip {a:12,.0f}  off-chip {b:12,.0f}"
                     f"  (+{overhead:.3%})")
    entry_bits = 22  # 7 units x 3 bits + 1 type bit, as in the paper
    lines.append(f"  table storage: {on.table_bytes:,.0f} bytes for "
                 f"{on.n_diverged_sets + 1} entries of {entry_bits} bits "
                 "(paper: ~3.2 KB for 1201 entries)")
    report("sec5b_onoffchip", "\n".join(lines))
