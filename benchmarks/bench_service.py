"""Resumable-campaign service benchmarks (framework performance).

Two questions the service layer (DESIGN.md §5.16) must answer with
numbers rather than vibes:

* **ledger overhead** — how much slower is the checkpointed runner
  (one fsync'd atomic commit per shard) than the monolithic in-memory
  engine on the same campaign with the same chunking?  The digests are
  asserted bit-identical, so this is pure durability cost.
* **lookup latency** — once trained, how fast does the HTTP
  ``/predict`` path answer a DSR-signature query, serially and under
  concurrent load?  The paper's pitch is a sub-millisecond table
  lookup replacing a full SBIST sweep; the served path should stay in
  the low-millisecond range including HTTP framing.

Both land as a timestamped ``service_bench`` entry in the repo-root
``BENCH_campaign.json`` trajectory via :mod:`repro.benchlog`.
"""

from __future__ import annotations

import statistics
import threading
import time

from repro.faults import CampaignConfig, run_campaign
from repro.faults.service import (
    CampaignLedger,
    CampaignService,
    ServiceClient,
    run_resumable_campaign,
    start_service,
)

from bench_campaign_scaling import append_bench_entry, ROOT_BENCH_JSON

#: Small enough to finish in seconds, large enough that the ledger's
#: per-shard commit cost is measured over a real number of shards.
SERVICE_CONFIG = CampaignConfig(
    benchmarks=("ttsprk",),
    soft_per_flop=2,
    hard_per_flop=1,
    flop_fraction=0.10,
    max_observe=1000,
)
SERVICE_CHUNK = 8

LOOKUP_ROUNDS = 200
CONCURRENT_CLIENTS = 16
LOOKUPS_PER_CLIENT = 25


def test_service_overhead_and_lookup_latency(tmp_path, report):
    run_campaign(SERVICE_CONFIG, workers=1)  # warm the golden cache

    def timed(fn, *args, **kwargs):
        start = time.perf_counter()
        out = fn(*args, **kwargs)
        return time.perf_counter() - start, out

    t_mono, mono = timed(run_campaign, SERVICE_CONFIG, workers=1,
                         chunk_flops=SERVICE_CHUNK)
    t_ledger, ledgered = timed(
        run_resumable_campaign, SERVICE_CONFIG,
        ledger_dir=tmp_path / "ledger", workers=1,
        chunk_flops=SERVICE_CHUNK)
    assert ledgered.digest() == mono.digest()  # durability is free of drift
    n = mono.n_injected
    n_shards = ledgered.meta["n_shards"]

    ledger = CampaignLedger(tmp_path / "ledger", SERVICE_CONFIG,
                            chunk_flops=SERVICE_CHUNK)
    service = CampaignService(ledger, top_k=3)
    handle = start_service(service)
    try:
        client = ServiceClient(handle.base_url)
        signatures = sorted(
            {rec.diverged for rec in mono.records if rec.diverged},
            key=sorted)[:8] or [frozenset()]

        # Serial latency: median over LOOKUP_ROUNDS round-robin queries.
        client.predict(signatures[0])  # force training before timing
        laps = []
        for i in range(LOOKUP_ROUNDS):
            dsr = signatures[i % len(signatures)]
            start = time.perf_counter()
            client.predict(dsr)
            laps.append(time.perf_counter() - start)
        p50 = statistics.median(laps)
        p99 = sorted(laps)[int(len(laps) * 0.99)]

        # Concurrent throughput: N clients hammering /predict at once.
        errors = []

        def hammer():
            local = ServiceClient(handle.base_url)
            try:
                for i in range(LOOKUPS_PER_CLIENT):
                    local.predict(signatures[i % len(signatures)])
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [threading.Thread(target=hammer)
                   for _ in range(CONCURRENT_CLIENTS)]
        t_conc, _ = timed(lambda: ([t.start() for t in threads],
                                   [t.join() for t in threads]))
        assert not errors
        total_lookups = CONCURRENT_CLIENTS * LOOKUPS_PER_CLIENT
    finally:
        handle.stop()

    entry = {
        "config": {"benchmarks": ["ttsprk"], "soft_per_flop": 2,
                   "hard_per_flop": 1, "flop_fraction": 0.10,
                   "max_observe": 1000},
        "chunk_flops": SERVICE_CHUNK,
        "n_shards": n_shards,
        "injections": n,
        "wall_s": {"monolithic": round(t_mono, 3),
                   "ledger": round(t_ledger, 3)},
        "ledger_overhead": round(t_ledger / t_mono, 3),
        "commit_cost_ms": round((t_ledger - t_mono) / n_shards * 1e3, 3),
        "predict_ms": {"p50": round(p50 * 1e3, 3),
                       "p99": round(p99 * 1e3, 3)},
        "predict_per_s_concurrent": round(total_lookups / t_conc, 1),
        "concurrent_clients": CONCURRENT_CLIENTS,
        "digest": mono.digest(),
    }
    append_bench_entry("service_bench", entry)
    report("service_bench", "\n".join([
        "Resumable campaign service — ledger overhead + lookup latency",
        f"  campaign ({n} injections, {n_shards} shards of "
        f"{SERVICE_CHUNK} flops):",
        f"    monolithic  wall={t_mono:6.3f}s",
        f"    ledgered    wall={t_ledger:6.3f}s  "
        f"(x{t_ledger / t_mono:4.2f}, "
        f"{(t_ledger - t_mono) / n_shards * 1e3:5.2f} ms/commit)",
        f"  /predict latency over HTTP ({LOOKUP_ROUNDS} serial queries): "
        f"p50={p50 * 1e3:5.2f} ms  p99={p99 * 1e3:5.2f} ms",
        f"  concurrent: {total_lookups} lookups from "
        f"{CONCURRENT_CLIENTS} clients in {t_conc:5.2f}s "
        f"({total_lookups / t_conc:7.0f} lookups/s)",
        f"  appended to {ROOT_BENCH_JSON.name}",
    ]))
