"""Table I — fault injection statistics.

Paper reference values ([min, mean, max] over CPU units):
    Soft Error Manifestation Rate  [0.2%, 5%, 27%]
    Hard Error Manifestation Rate  [3%, 40%, 88%]
    Soft Error Manifestation Time  [2, 700, 80k] cycles
    Hard Error Manifestation Time  [2, 1800, 130k] cycles

Our SR5 core is far denser in output-port-adjacent state than a
Cortex-R5 (no FPU/ETM/debug bulk), so absolute rates run higher and
times shorter; the shapes that matter — wide per-unit spread, heavy-
tailed times — hold (see EXPERIMENTS.md).
"""

from repro.analysis.reports import render_table1
from repro.faults.stats import table1


def test_table1(benchmark, campaign, report):
    rows = benchmark(table1, campaign)
    assert set(rows) == {
        "Soft Error Manifestation Rate", "Hard Error Manifestation Rate",
        "Soft Error Manifestation Time", "Hard Error Manifestation Time",
    }
    for spread in rows.values():
        assert spread.minimum <= spread.mean <= spread.maximum
    report("table1_manifestation", render_table1(campaign))
