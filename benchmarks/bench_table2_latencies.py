"""Table II — latencies used in the reaction models.

Paper reference values:
    Prediction Table Access Time  2 (on-chip) / 100 (off-chip) cycles
    STL Latency Range             [25k, 170k, 700k] cycles
    Restart Latency Range         [2k, 10k, 36k] cycles

The STL model is calibrated against the paper's range from the SR5
unit flop counts; restart latencies are measured from the kernels'
golden runs plus the reset penalty.
"""

from repro.analysis.reports import render_table2
from repro.bist import StlModel
from repro.core import OFF_CHIP_ACCESS_CYCLES, ON_CHIP_ACCESS_CYCLES
from repro.reaction import build_context


def test_table2(benchmark, campaign, report):
    stl = benchmark(StlModel)
    lo, mean, hi = stl.spread()
    assert 20_000 <= lo <= 60_000
    assert 120_000 <= mean <= 250_000
    assert 400_000 <= hi <= 800_000
    assert (ON_CHIP_ACCESS_CYCLES, OFF_CHIP_ACCESS_CYCLES) == (2, 100)

    ctx = build_context(campaign)
    restarts = sorted(ctx.restart_cycles.values())
    assert restarts[0] > 1_000  # same order of magnitude as the paper's 2k min
    report("table2_latencies", render_table2(ctx.restart_cycles))
