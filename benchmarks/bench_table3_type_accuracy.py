"""Table III — error type prediction accuracy of pred-comb.

Paper reference values:
    Soft 86%, Hard 49%, Overall 67%; unnecessary SBIST invocations
    reduced by ~43% thanks to correctly-predicted soft errors.

Shape to hold: soft accuracy well above hard accuracy (soft errors
concentrate in soft-dominated DSR sets), overall above chance, and a
large SBIST-invocation reduction.
"""

from repro.analysis import evaluate_campaign
from repro.analysis.reports import render_table3


def test_table3(benchmark, campaign, report):
    ev = benchmark.pedantic(evaluate_campaign, args=(campaign,),
                            rounds=1, iterations=1)
    acc = ev.type_accuracy
    assert acc["soft"] > acc["hard"], "paper shape: soft >> hard accuracy"
    assert acc["overall"] > 0.5
    assert 0.0 < ev.sbist_reduction < 1.0
    assert ev.sbist_reduction > 0.2
    report("table3_type_accuracy", render_table3(ev))
