"""Table IV — area and power overhead of the predictor hardware.

Paper reference values (32 nm, Synopsys flow):
    vs dual-CPU Cortex-R5 lockstep:  0.6% area, 1.8% power
    vs a single Cortex-R5 CPU:       1.4% area, 4.2% power

Our gate-equivalent model prices the same structures (DSR, address
mapping, PTAR; the table lives in existing ECC memory) against an
R5-class core budget, and additionally against the simulated SR5
core's own gate estimate for an honest small-core ratio.
"""

from repro.analysis import evaluate_campaign
from repro.analysis.reports import render_table4
from repro.hw import predictor_netlist, summarize, table4


def test_table4(benchmark, campaign, report):
    ev = evaluate_campaign(campaign, seed=0)
    ptar_bits = max(11, ev.n_diverged_sets.bit_length())
    rows = benchmark(table4, ev.n_diverged_sets, 11, "r5")
    dual, single = rows

    # Paper magnitudes: sub-1% area / ~2% power vs the dual-core design.
    assert dual.area_overhead < 0.01
    assert dual.power_overhead < 0.03
    assert single.area_overhead < 0.02
    assert single.power_overhead < 0.06
    # Single-CPU overheads are roughly double the dual-CPU ones.
    assert 1.7 < single.area_overhead / dual.area_overhead < 2.3

    predictor = summarize(predictor_netlist(ev.n_diverged_sets, ptar_bits))
    extra = (f"\n  predictor logic: {predictor.gate_equivalents:,.0f} NAND2-eq "
             f"({predictor.area_um2:,.0f} um^2 at 32nm-class density)")
    report("table4_overhead", render_table4(ev.n_diverged_sets, 11) + extra)
