"""Shared campaign fixtures for the benchmark harness.

All paper tables/figures are regenerated from ONE fault-injection
campaign (cached on disk under ``.campaign_cache`` keyed by config +
schema version), mirroring the paper's single 10M-injection dataset.
Set ``REPRO_BENCH_SCALE=full`` for the exhaustive every-flop campaign,
or ``quick`` for a seconds-scale smoke run; the default takes a couple
of minutes on first use and is cached afterwards.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.faults import CampaignConfig, cached_campaign

RESULTS_DIR = Path(__file__).parent / "results"
CACHE_DIR = Path(__file__).parent.parent / ".campaign_cache"


def _config() -> CampaignConfig:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale == "quick":
        return CampaignConfig.quick()
    if scale == "full":
        return CampaignConfig.full()
    return CampaignConfig.default()


@pytest.fixture(scope="session")
def campaign():
    """The shared fault-injection campaign (disk-cached)."""
    return cached_campaign(_config(), cache_dir=CACHE_DIR, progress=True)


@pytest.fixture(scope="session")
def report():
    """Persist a rendered paper artifact and echo it to the terminal."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _report
