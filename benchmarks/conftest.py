"""Shared campaign fixtures for the benchmark harness.

All paper tables/figures are regenerated from ONE fault-injection
campaign (cached on disk under ``.campaign_cache`` keyed by config +
schema version), mirroring the paper's single 10M-injection dataset.
Set ``REPRO_BENCH_SCALE=full`` for the exhaustive every-flop campaign,
or ``quick`` for a seconds-scale smoke run; the default takes a couple
of minutes on first use and is cached afterwards.

``--workers N`` (or ``REPRO_BENCH_WORKERS=N``) fans the campaign out
over N processes; ``0`` uses every core.  Results — and therefore the
cache key — are identical for any worker count.

Every benchmark session also writes its timings to
``results/BENCH_<scale>.json`` (machine-readable pytest-benchmark
stats) so successive PRs can track the performance trajectory; pass
``--benchmark-json=PATH`` for the full raw dump instead.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.faults import CampaignConfig, cached_campaign

RESULTS_DIR = Path(__file__).parent / "results"
CACHE_DIR = Path(__file__).parent.parent / ".campaign_cache"


def pytest_addoption(parser):
    parser.addoption(
        "--workers", action="store", type=int, metavar="N",
        default=int(os.environ.get("REPRO_BENCH_WORKERS", "1")),
        help="worker processes for the shared injection campaign "
             "(0 = all cores); results are identical for any value")


def _scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "default")


def _config() -> CampaignConfig:
    scale = _scale()
    if scale == "quick":
        return CampaignConfig.quick()
    if scale == "full":
        return CampaignConfig.full()
    return CampaignConfig.default()


@pytest.fixture(scope="session")
def campaign_workers(request) -> int:
    """Worker-process count for campaign execution."""
    return request.config.getoption("--workers")


@pytest.fixture(scope="session")
def campaign(campaign_workers):
    """The shared fault-injection campaign (disk-cached)."""
    return cached_campaign(_config(), cache_dir=CACHE_DIR, progress=True,
                           workers=campaign_workers)


@pytest.fixture(scope="session")
def report():
    """Persist a rendered paper artifact and echo it to the terminal."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _report


@pytest.hookimpl(trylast=True)
def pytest_sessionfinish(session, exitstatus):
    """Dump this session's benchmark stats to ``results/BENCH_<scale>.json``.

    A compact, stable summary (mean/stddev/rounds per benchmark) meant
    to be diffed across PRs; complements ``--benchmark-json``'s full
    raw dump.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    entries = []
    for bench in bench_session.benchmarks:
        try:
            data = bench.as_dict(include_data=False, stats=True)
        except Exception:
            continue
        stats = data.get("stats", {})
        entries.append({
            "name": data.get("name"),
            "fullname": data.get("fullname"),
            "group": data.get("group"),
            "stats": {key: stats.get(key)
                      for key in ("min", "max", "mean", "stddev", "median",
                                  "rounds", "iterations", "ops")},
        })
    if not entries:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "scale": _scale(),
        "workers": session.config.getoption("--workers", default=1),
        "benchmarks": sorted(entries, key=lambda e: e["fullname"] or ""),
    }
    out = RESULTS_DIR / f"BENCH_{_scale()}.json"
    out.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    print(f"\n[bench] wrote machine-readable stats to {out}")
