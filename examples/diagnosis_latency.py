"""Error reaction time study: the paper's headline evaluation.

Trains and cross-validates the predictor against the three baselines,
reporting average LERT per error (Figures 11/14), type prediction
accuracy (Table III), and the effect of predicting fewer units
(Figures 12/13) — a compressed version of the benchmark harness, for
interactive exploration.

Run:  python examples/diagnosis_latency.py [--fine] [--scale quick|default]
"""

import argparse

from repro.analysis import evaluate_campaign, topk_sweep
from repro.analysis.reports import render_fig11, render_table3, render_topk
from repro.faults import CampaignConfig, cached_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fine", action="store_true",
                        help="use the 13-unit CPU organisation (Section V-D)")
    parser.add_argument("--scale", choices=("quick", "default"), default="quick")
    args = parser.parse_args()

    config = (CampaignConfig.quick() if args.scale == "quick"
              else CampaignConfig.default())
    campaign = cached_campaign(config, cache_dir=".campaign_cache")
    print(f"campaign: {campaign.n_errors} errors from "
          f"{campaign.n_injected} injections\n")

    evaluation = evaluate_campaign(campaign, fine=args.fine)
    print(render_fig11(evaluation, fine=args.fine))
    print()
    print(render_table3(evaluation))
    print()

    n_units = 13 if args.fine else 7
    ks = sorted(set([1, 2, 3, 4, n_units // 2 + 1, n_units]))
    sweep = topk_sweep(campaign, fine=args.fine, ks=[k for k in ks if k <= n_units])
    print(render_topk(sweep, fine=args.fine))

    print("\nPrediction table placement (Section V-B):")
    off = evaluate_campaign(campaign, fine=args.fine, off_chip=True)
    for model in ("pred-location-only", "pred-comb"):
        on_lert = evaluation.strategies[model].mean_lert
        off_lert = off.strategies[model].mean_lert
        print(f"  {model:20s} on-chip {on_lert:12,.0f}  off-chip {off_lert:12,.0f}"
              f"  (+{(off_lert / on_lert - 1):.3%})")


if __name__ == "__main__":
    main()
