"""Fault-injection characterisation study (the paper's Section IV).

Runs a configurable campaign over the AutoBench-style kernels, then
prints the manifestation statistics (Table I), the diverged-SC-set
inventory, and the per-unit signature similarity (Bhattacharyya)
analysis behind Figures 4 and 5.

Run:  python examples/fault_injection_study.py [--scale quick|default]
"""

import argparse
from collections import Counter

from repro.analysis.reports import render_fig4_5, render_table1
from repro.core import SignatureStats, average_type_bc, type_bc_per_unit
from repro.faults import (
    CampaignConfig,
    ErrorType,
    cached_campaign,
    diverged_set_size_ratio,
    mean_detection_time,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("quick", "default"), default="quick",
                        help="campaign size (quick: seconds, default: ~2 min)")
    args = parser.parse_args()

    config = (CampaignConfig.quick() if args.scale == "quick"
              else CampaignConfig.default())
    campaign = cached_campaign(config, cache_dir=".campaign_cache")

    print(render_table1(campaign))
    print(f"\nMean error detection time: {mean_detection_time(campaign):.0f} cycles")

    by_unit = Counter(r.coarse_unit for r in campaign.records)
    print("\nErrors by originating unit:")
    for unit, count in by_unit.most_common():
        print(f"  {unit:5s} {count:6d}")

    sets = {r.diverged for r in campaign.records}
    print(f"\nDistinct diverged SC sets: {len(sets)} (paper: ~1200 at 10M injections)")
    print(f"Hard errors diverge {diverged_set_size_ratio(campaign):.2f}x more SCs "
          "than soft errors at detection (paper: 1.54x)")

    print()
    print(render_fig4_5(campaign.records, ErrorType.HARD))
    print()
    print(render_fig4_5(campaign.records, ErrorType.SOFT))

    stats = SignatureStats.from_records(campaign.records)
    per_unit = type_bc_per_unit(stats, campaign.records)
    print("\nHard-vs-soft signature similarity per unit (Section III-B):")
    for unit, bc in sorted(per_unit.items(), key=lambda kv: kv[1]):
        print(f"  BC({unit:5s}) = {bc:.2f}")
    print(f"  average: {average_type_bc(stats, campaign.records):.2f} (paper: ~0.6)")


if __name__ == "__main__":
    main()
