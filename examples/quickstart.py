"""Quickstart: run a dual-core lockstep pair, inject a fault, and let
the error correlation predictor tell you what happened.

Run:  python examples/quickstart.py
"""

from repro.bist import SbistEngine, StlModel
from repro.core import train_predictor
from repro.cpu.memory import InputStream
from repro.faults import CampaignConfig, cached_campaign
from repro.lockstep import SIGNAL_CATEGORIES, DmrLockstep
from repro.workloads import KERNELS, build

import numpy as np


def main() -> None:
    # 1. Train the static predictor from a (cached) injection campaign.
    print("== training the error correlation predictor ==")
    campaign = cached_campaign(CampaignConfig.quick(), cache_dir=".campaign_cache")
    predictor = train_predictor(campaign.records)
    print(f"   campaign: {campaign.n_injected} injections, "
          f"{campaign.n_errors} manifested errors")
    print(f"   prediction table: {len(predictor.table)} entries, "
          f"{predictor.table.size_bytes:.0f} bytes, "
          f"PTAR width {predictor.table.mapper.ptar_bits} bits")

    # 2. Bring up a dual-core lockstep processor on an automotive kernel.
    print("\n== running tooth-to-spark in dual-core lockstep ==")
    program, stimulus = build(KERNELS["ttsprk"])
    dmr = DmrLockstep(program, InputStream(stimulus.values))
    for _ in range(150):
        dmr.step()
    print(f"   {dmr.cycle} fault-free cycles, outputs identical")

    # 3. Upset flip-flops in the redundant core until one manifests —
    #    many transients are architecturally masked, just like on real
    #    silicon, so keep striking different bits.
    attempts = 0
    for bit in (12, 22, 27, 5, 30):
        dmr.core_b.if_ir ^= 1 << bit
        attempts += 1
        for _ in range(400):
            if dmr.step():
                break
        if dmr.error.error:
            break
    state = dmr.error
    print(f"   {attempts} transient(s) injected ({attempts - 1} masked) -> "
          f"error detected at cycle {state.error_cycle}")
    diverged = sorted(state.diverged)
    names = [SIGNAL_CATEGORIES[i].name for i in diverged]
    print(f"   diverged signal categories (DSR): {names}")

    # 4. Ask the predictor where the fault likely is, and what it is.
    prediction = predictor.predict(state.diverged)
    print("\n== prediction ==")
    print(f"   predicted error type : {prediction.error_type.value}")
    print(f"   predicted unit order : {' > '.join(prediction.units)}")
    if prediction.from_default:
        print("   (DSR never seen in training: fail-safe default entry)")

    # 5. Drive the SBIST diagnostic in the predicted order.
    engine = SbistEngine(StlModel(), np.random.default_rng(0))
    order = engine.complete_order(prediction.units)
    outcome = engine.run(order, faulty_unit=None)  # transient: no stuck-at
    print("\n== diagnosis ==")
    print(f"   SBIST ran {outcome.tested_units} STLs "
          f"({outcome.cycles:,} cycles), no hard fault found")
    print("   -> soft error: reset both cores and restart the task")
    dmr.reset(program)
    final = dmr.run(5000)
    print(f"   restarted run completed without error: {not final.error}")


if __name__ == "__main__":
    main()
