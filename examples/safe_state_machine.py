"""The safety-critical system controller end to end (paper Figure 2).

Drives a dual-core lockstep task through transient upsets and a real
stuck-at, showing the safe-state machine's transitions, the hard
deadline check, and the availability gained by prediction.

Run:  python examples/safe_state_machine.py
"""

from repro.core import train_predictor
from repro.faults import CampaignConfig, cached_campaign
from repro.reaction import AvailabilityModel, SystemController, SystemState
from repro.workloads import KERNELS


def crash_course(controller: SystemController, label: str,
                 true_fault_unit: str | None, stuck: bool) -> None:
    print(f"\n== {label} ==")
    for _ in range(200):
        controller.processor.step()
    core = controller.processor.core_b
    if stuck:
        core.imc_addr |= 1  # will be re-asserted by physics; one hit is
        # enough here because the checker latches on first divergence
    else:
        core.imc_addr ^= 1
    state = controller.run_until_error_or_done()
    print(f"   state: {state.value} at cycle "
          f"{controller.processor.checker.state.error_cycle}")
    entry = controller.handle_error(true_fault_unit=true_fault_unit)
    print(f"   predicted: {entry.predicted_type.value}, "
          f"unit order {' > '.join(entry.predicted_units[:3])}...")
    print(f"   reaction: {entry.reaction_cycles:,} cycles -> "
          f"{controller.state.value}")


def main() -> None:
    campaign = cached_campaign(CampaignConfig.quick(), cache_dir=".campaign_cache")
    predictor = train_predictor(campaign.records)

    # Generous hard deadline: full SBIST + restart + margin.
    controller = SystemController(KERNELS["a2time"], predictor,
                                  deadline_cycles=3_000_000)

    crash_course(controller, "transient upset", true_fault_unit=None,
                 stuck=False)
    if controller.state is not SystemState.FAILED:
        final = controller.run_until_error_or_done()
        print(f"   task restarted and completed: {final.value}")

        crash_course(controller, "permanent fault (stuck-at in the IMC)",
                     true_fault_unit="IMC", stuck=True)
        if controller.state is SystemState.RESTARTING:
            # Predicted soft: the stuck-at recurs; second error is taken
            # as hard per the paper's retry rule.
            for _ in range(200):
                controller.processor.step()
            controller.processor.core_b.imc_addr ^= 1
            controller.run_until_error_or_done()
            entry = controller.handle_error(true_fault_unit="IMC")
            print(f"   recurred -> diagnosed hard: {entry.diagnosed_hard}, "
                  f"state {controller.state.value}")
    print(f"\nfinal system state: {controller.state.value} "
          f"({len(controller.log)} errors handled)")

    # Availability accounting over the handled errors.
    model = AvailabilityModel(errors_per_gigacycle=10)
    mean_reaction = (sum(e.reaction_cycles for e in controller.log)
                     / len(controller.log))
    print(f"mean reaction time: {mean_reaction:,.0f} cycles")
    print(f"availability at 10 errors/Gcycle: "
          f"{model.availability(mean_reaction):.5%} "
          f"({model.nines(mean_reaction):.1f} nines)")


if __name__ == "__main__":
    main()
