"""Triple-core lockstep with prediction-gated forward recovery.

In TMR the voter identifies the erring core, so a *predicted-soft*
error can be healed by forward recovery — re-syncing the erring core
from an agreeing one — without restarting the real-time task.  A
predicted-hard error instead goes to full diagnosis.  This example
exercises both paths and compares their reaction costs.

Run:  python examples/tmr_forward_recovery.py
"""

import numpy as np

from repro.bist import SbistEngine, StlModel
from repro.core import train_predictor
from repro.cpu.memory import InputStream
from repro.faults import CampaignConfig, ErrorType, cached_campaign
from repro.lockstep import TmrLockstep
from repro.workloads import KERNELS, build


def main() -> None:
    campaign = cached_campaign(CampaignConfig.quick(), cache_dir=".campaign_cache")
    predictor = train_predictor(campaign.records)

    program, stimulus = build(KERNELS["rspeed"])
    tmr = TmrLockstep(program, InputStream(stimulus.values))
    print("== triple-core lockstep: road-speed kernel ==")

    # --- transient upset in core 1 -------------------------------------
    for _ in range(120):
        tmr.step()
    tmr.cores[1].if_pc ^= 8
    state = tmr.run(6000)
    assert state.error
    print(f"\nerror at cycle {state.error_cycle}; voter blames core "
          f"{state.erring_cpu}")
    prediction = predictor.predict(state.diverged)
    print(f"predicted type: {prediction.error_type.value}; "
          f"unit order: {' > '.join(prediction.units[:3])}...")

    if prediction.error_type is ErrorType.SOFT:
        recovered = tmr.forward_recover()
        print(f"-> forward recovery: core {recovered} re-synced from a "
              "majority core; task continues WITHOUT restart")
    else:
        print("-> predicted hard: core would be taken offline for SBIST")
        engine = SbistEngine(StlModel(), np.random.default_rng(0))
        outcome = engine.run(engine.complete_order(prediction.units), None)
        print(f"   SBIST found nothing after {outcome.cycles:,} cycles; "
              "treating as soft after all")
        recovered = tmr.forward_recover()
        print(f"   core {recovered} re-synced")

    final = tmr.run(20_000)
    print(f"\nrun completed: error={final.error}, "
          f"all cores halted={all(c.halted for c in tmr.cores)}")
    outs = [core.io_out for core in tmr.cores]
    print(f"final actuator outputs agree across cores: {len(set(outs)) == 1}")

    # --- cost comparison ------------------------------------------------
    stl = StlModel()
    print("\n== reaction cost comparison (cycles) ==")
    print(f"  DMR worst case (full SBIST):        {stl.total_latency():>10,}")
    print(f"  TMR forward recovery (state copy):  {len(tmr.cores[0].snapshot()) * 2:>10,}")
    print("  The voter's erring-CPU id plus the type prediction turn a "
          "full diagnostic into a state copy.")


if __name__ == "__main__":
    main()
