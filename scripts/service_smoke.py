#!/usr/bin/env python
"""End-to-end crash-recovery smoke for the campaign service.

Drives the real CLI surface (``python -m repro serve`` / ``work``)
through the full outage matrix the unit suite can only approximate
in-process:

1. compute the serial in-memory reference digest for the quick
   campaign;
2. start a server, run a worker over the lease HTTP API and SIGKILL
   the worker mid-campaign (uncommitted lease dies with it);
3. SIGKILL the *server* too, restart it on the same ledger directory;
4. run a fresh worker to completion and assert the served digest —
   and a direct ledger replay — are bit-identical to the reference.

Exits non-zero (with the server/worker logs on stderr) on any
mismatch; CI uploads the ledger directory as an artifact when that
happens.  Runs in ~30 s locally: ``PYTHONPATH=src python
scripts/service_smoke.py``.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.faults import CampaignConfig  # noqa: E402
from repro.faults.parallel import execute_campaign  # noqa: E402
from repro.faults.service import ServiceClient  # noqa: E402
from repro.faults.service.runner import ledger_digest  # noqa: E402
from repro.faults.service.ledger import CampaignLedger  # noqa: E402

SCALE = "quick"
CHUNK_FLOPS = 12  # quick campaign: 108 flops -> 9 shards
POLL_S = 0.1
STARTUP_TIMEOUT_S = 30


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn(args: list[str], log_path: Path) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    log = open(log_path, "ab")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        cwd=REPO, env=env, stdout=log, stderr=subprocess.STDOUT)


def wait_for_server(client: ServiceClient) -> dict:
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    while time.monotonic() < deadline:
        try:
            return client.status()
        except (ConnectionError, OSError):
            time.sleep(POLL_S)
    raise SystemExit("server never came up")


def wait_for_commits(client: ServiceClient, at_least: int) -> int:
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        committed = client.status()["progress"]["committed"]
        if committed >= at_least:
            return committed
        time.sleep(POLL_S)
    raise SystemExit(f"never reached {at_least} committed shards")


def main() -> int:
    config = CampaignConfig.quick()
    print(f"[smoke] serial reference for {SCALE} campaign...", flush=True)
    reference = execute_campaign(config, workers=1)
    print(f"[smoke] reference digest {reference.digest()[:16]}... "
          f"({reference.n_injected} injections)", flush=True)

    # Optional argv[1]: working directory (CI passes one so the ledger
    # can be uploaded as an artifact on failure).
    if len(sys.argv) > 1:
        workdir = Path(sys.argv[1])
        workdir.mkdir(parents=True, exist_ok=True)
    else:
        workdir = Path(tempfile.mkdtemp(prefix="service_smoke_"))
    ledger_dir = workdir / "ledger"
    server_log = workdir / "server.log"
    worker_log = workdir / "worker.log"
    print(f"[smoke] ledger at {ledger_dir}", flush=True)
    port = free_port()
    url = f"http://127.0.0.1:{port}"
    serve_args = ["serve", "--scale", SCALE, "--ledger", str(ledger_dir),
                  "--port", str(port), "--chunk-flops", str(CHUNK_FLOPS),
                  "--lease-ttl", "5"]

    server = spawn(serve_args, server_log)
    worker = None
    try:
        client = ServiceClient(url)
        status = wait_for_server(client)
        n_shards = status["progress"]["n_shards"]
        print(f"[smoke] server up: {n_shards} shards planned", flush=True)
        assert n_shards >= 3, f"need >=3 shards to kill mid-run: {n_shards}"

        # Cap the doomed worker below the shard count so it can never
        # finish the campaign before the SIGKILL lands, however fast
        # the host is — the kill is then always mid-campaign.
        worker = spawn(["work", "--url", url, "--worker", "doomed",
                        "--max-shards", str(n_shards - 2)], worker_log)
        committed = wait_for_commits(client, at_least=2)
        if worker.poll() is None:
            worker.send_signal(signal.SIGKILL)
        worker.wait()
        print(f"[smoke] SIGKILLed worker after {committed} commits",
              flush=True)
        assert committed < n_shards, "campaign finished before the kill"

        server.send_signal(signal.SIGKILL)
        server.wait()
        print("[smoke] SIGKILLed server; restarting on same ledger",
              flush=True)
        server = spawn(serve_args, server_log)
        status = wait_for_server(client)
        resumed = status["progress"]["committed"]
        print(f"[smoke] server resumed with {resumed} committed shards",
              flush=True)
        assert resumed >= 2, f"commits lost across SIGKILL: {resumed}"
        assert not status["progress"]["complete"]

        worker = spawn(["work", "--url", url, "--worker", "finisher"],
                       worker_log)
        wait_for_commits(client, at_least=n_shards)
        worker.wait(timeout=60)

        status = client.status()
        assert status["progress"]["complete"], status
        served = status["digest"]
        replayed = ledger_digest(
            CampaignLedger(ledger_dir, config, chunk_flops=CHUNK_FLOPS))
        print(f"[smoke] served digest   {served[:16]}...", flush=True)
        print(f"[smoke] replayed digest {replayed[:16]}...", flush=True)
        assert served == reference.digest(), \
            "served digest != serial reference"
        assert replayed == reference.digest(), \
            "ledger replay digest != serial reference"

        prediction = client.predict(frozenset())
        assert prediction["units"], prediction
        print(f"[smoke] /predict OK: empty DSR -> {prediction['units']} "
              f"({prediction['error_type']})", flush=True)
        print("[smoke] PASS: crash-recovery digest matches serial reference",
              flush=True)
        return 0
    except BaseException:
        for name, path in (("server", server_log), ("worker", worker_log)):
            if path.exists():
                sys.stderr.write(f"--- {name} log ---\n")
                sys.stderr.write(path.read_text(errors="replace"))
        raise
    finally:
        for proc in (worker, server):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()
        # Leave the ledger in place for CI artifact upload on failure.
        print(f"[smoke] ledger preserved at {ledger_dir}", flush=True)


if __name__ == "__main__":
    sys.exit(main())
