"""Build hooks: the optional compiled batch-step kernel.

``pip install -e .`` compiles ``repro.faults._cstep._cstep`` from the
single C translation unit below; the extension is *optional* — any
build failure (no compiler, broken headers) is swallowed and the
install completes with the pure-numpy kernel as the runtime fallback
(see repro/faults/kernels.py).  The dev flow without an install
(``PYTHONPATH=src``) doesn't need this file at all: the ``_cstep``
package auto-builds into a user cache with the system cc on first use.
"""
import sys

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext

# The drive loop dispatches lane slices to a persistent pthread pool;
# -pthread must reach both the compile and the link step (MSVC's CRT
# is always thread-capable, so Windows needs no flag).
_THREAD_FLAGS = [] if sys.platform == "win32" else ["-pthread"]


class optional_build_ext(build_ext):
    """build_ext that degrades to a warning instead of failing the install."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # no compiler / missing headers
            self._warn(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        print(f"WARNING: building the optional _cstep extension failed "
              f"({exc}); the numpy kernel will be used instead.")


setup(
    ext_modules=[
        Extension(
            "repro.faults._cstep._cstep",
            sources=["src/repro/faults/_cstep/_cstepmodule.c"],
            extra_compile_args=_THREAD_FLAGS,
            extra_link_args=_THREAD_FLAGS,
            optional=True,
        ),
    ],
    cmdclass={"build_ext": optional_build_ext},
)
