"""repro: a reproduction of *Error Correlation Prediction in Lockstep
Processors for Safety-critical Systems* (Ozer et al., MICRO 2018).

The package layers, bottom-up:

* :mod:`repro.cpu` — a flip-flop-accurate 32-bit safety core (SR5)
  whose every sequential bit belongs to one of the paper's CPU units;
* :mod:`repro.lockstep` — 62-signal-category checkers, DMR and TMR;
* :mod:`repro.workloads` — eight AutoBench-style automotive kernels;
* :mod:`repro.faults` — soft/stuck-at injection campaigns over golden
  traces;
* :mod:`repro.core` — the paper's contribution: diverged-SC-set
  signatures, Bhattacharyya analysis, and the static error
  correlation predictor (DSR -> PTAR -> prediction table);
* :mod:`repro.bist` / :mod:`repro.reaction` — SBIST/LBIST diagnostics
  and the five LERT reaction models;
* :mod:`repro.analysis` — cross-validated evaluation and paper-shaped
  reports;
* :mod:`repro.hw` — the gate-level area/power model behind Table IV.

Quickstart::

    from repro.faults import CampaignConfig, run_campaign
    from repro.analysis import evaluate_campaign

    campaign = run_campaign(CampaignConfig.quick())
    result = evaluate_campaign(campaign)
    print(result.strategies["pred-comb"].mean_lert)
"""

from importlib.metadata import PackageNotFoundError, version

try:
    __version__ = version("repro")
except PackageNotFoundError:  # running from a source tree
    __version__ = "1.0.0"

__all__ = ["__version__"]
