"""Evaluation pipeline: cross-validation, orchestration and reports."""

from .crossval import kfold, train_test_split
from .evaluation import (
    BASELINE_NAMES,
    MODEL_NAMES,
    EvaluationResult,
    evaluate_campaign,
    split_errors_by_benchmark,
    topk_sweep,
)

__all__ = [
    "kfold", "train_test_split",
    "BASELINE_NAMES", "MODEL_NAMES", "EvaluationResult",
    "evaluate_campaign", "split_errors_by_benchmark", "topk_sweep",
]
