"""Random-sampling 5-fold cross-validation over the error dataset.

The paper splits the logged error data into training and test bins by
random sampling with 5-fold cross-validation (Figure 7): each fold's
predictor is trained on the other four folds and evaluated on its own.
"""

from __future__ import annotations

from typing import Iterator, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def kfold(items: Sequence[T], k: int = 5,
          seed: int = 0) -> Iterator[tuple[list[T], list[T]]]:
    """Yield ``(train, test)`` splits over shuffled ``items``.

    Every item appears in exactly one test fold; folds differ in size
    by at most one.
    """
    if k < 2:
        raise ValueError("k-fold cross validation needs k >= 2")
    n = len(items)
    if n < k:
        raise ValueError(f"cannot make {k} folds from {n} items")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    for i in range(k):
        test_idx = set(int(j) for j in folds[i])
        train = [items[j] for j in range(n) if j not in test_idx]
        test = [items[int(j)] for j in folds[i]]
        yield train, test


def train_test_split(items: Sequence[T], test_fraction: float = 0.2,
                     seed: int = 0) -> tuple[list[T], list[T]]:
    """A single random split (for examples and quick experiments)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(items))
    n_test = max(1, int(round(test_fraction * len(items))))
    test_idx = set(int(i) for i in order[:n_test])
    train = [items[i] for i in range(len(items)) if i not in test_idx]
    test = [items[int(i)] for i in order[:n_test]]
    return train, test
