"""End-to-end evaluation orchestration (the paper's Figure 7 pipeline).

Given a fault-injection campaign, this module performs the 5-fold
cross-validated training/evaluation of the baselines and prediction
models and aggregates the quantities reported in the paper's figures:
average LERT per error, average tested units, prediction accuracies,
and SBIST invocation reductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.predictor import (
    ErrorCorrelationPredictor,
    location_accuracy,
    train_predictor,
    type_accuracy,
)
from ..faults.campaign import CampaignResult
from ..faults.models import ErrorRecord
from ..reaction.context import ReactionContext, build_context
from ..reaction.lert import StrategyResult, evaluate_strategy, merge_results
from ..reaction.strategies import (
    PredCombined,
    PredLocationOnly,
    ReactionStrategy,
    baseline_strategies,
)
from .crossval import kfold

BASELINE_NAMES = ("base-random", "base-ascending", "base-manifest")
MODEL_NAMES = BASELINE_NAMES + ("pred-location-only", "pred-comb")


@dataclass
class EvaluationResult:
    """Cross-validated evaluation of all five models.

    Attributes:
        strategies: model name -> aggregated LERT statistics.
        location_accuracy: P(faulty unit in predicted list), hard errors.
        type_accuracy: soft/hard/overall type prediction accuracy.
        n_diverged_sets: distinct diverged SC sets in the full dataset.
        table_bytes: prediction table storage (worst-case entry width).
        sbist_reduction: fraction of SBIST invocations avoided by
            pred-comb relative to pred-location-only.
    """

    strategies: dict[str, StrategyResult] = field(default_factory=dict)
    location_accuracy: float = 0.0
    type_accuracy: dict[str, float] = field(default_factory=dict)
    n_diverged_sets: int = 0
    table_bytes: float = 0.0
    sbist_reduction: float = 0.0

    def speedup(self, model: str, reference: str) -> float:
        """Fractional LERT reduction of ``model`` vs ``reference``."""
        return self.strategies[model].speedup_vs(self.strategies[reference])


def evaluate_campaign(result: CampaignResult, fine: bool = False,
                      top_k: int | None = None, k_folds: int = 5,
                      seed: int = 0, off_chip: bool = False,
                      coverage: float = 1.0,
                      extra_models: dict[str, "type[ReactionStrategy]"] | None = None,
                      ) -> EvaluationResult:
    """Run the full cross-validated evaluation on a campaign.

    Args:
        result: the fault-injection campaign output.
        fine: evaluate on the 13-unit taxonomy (paper Section V-D).
        top_k: truncate predictions to the top-K units (Section V-C);
            None predicts the full order (Figure 11 configuration).
        k_folds: cross-validation folds (paper: 5).
        seed: fold shuffling and random-order seed.
        off_chip: place the prediction table off-chip (Section V-B).
        coverage: STL stuck-at coverage (1.0 = the paper's assumption).
    """
    records = result.records
    ctx = build_context(result, fine=fine, seed=seed, coverage=coverage)

    per_model: dict[str, list[StrategyResult]] = {}
    loc_parts: list[tuple[float, int]] = []
    type_parts: list[tuple[dict[str, float], int]] = []
    table_bytes = 0.0
    invocations = {"pred-location-only": 0.0, "pred-comb": 0.0}

    for train, test in kfold(records, k=k_folds, seed=seed):
        predictor = train_predictor(train, fine=fine, top_k=top_k)
        if off_chip:
            predictor = ErrorCorrelationPredictor(
                predictor.table.placed(off_chip=True), fine)
        table_bytes = max(table_bytes, predictor.table.size_bytes)

        models: list[ReactionStrategy] = list(baseline_strategies())
        models.append(PredLocationOnly(predictor))
        models.append(PredCombined(predictor))
        if extra_models:
            for _name, factory in extra_models.items():
                models.append(factory(predictor))  # type: ignore[call-arg]

        for model in models:
            fold_result = evaluate_strategy(model, test, ctx)
            per_model.setdefault(model.name, []).append(fold_result)
            if model.name in invocations:
                invocations[model.name] += (
                    fold_result.sbist_invocation_rate * fold_result.n_errors)

        loc_parts.append((location_accuracy(predictor, test), len(test)))
        type_parts.append((type_accuracy(predictor, test), len(test)))

    n_total = sum(n for _, n in loc_parts)
    loc_acc = sum(a * n for a, n in loc_parts) / n_total if n_total else 0.0
    type_acc = {
        key: sum(part[key] * n for part, n in type_parts) / n_total if n_total else 0.0
        for key in ("soft", "hard", "overall")
    }
    loc_inv = invocations["pred-location-only"]
    reduction = 1.0 - invocations["pred-comb"] / loc_inv if loc_inv else 0.0

    return EvaluationResult(
        strategies={name: merge_results(parts) for name, parts in per_model.items()},
        location_accuracy=loc_acc,
        type_accuracy=type_acc,
        n_diverged_sets=len({r.diverged for r in records}),
        table_bytes=table_bytes,
        sbist_reduction=reduction,
    )


def topk_sweep(result: CampaignResult, fine: bool = False,
               k_folds: int = 5, seed: int = 0,
               ks: list[int] | None = None) -> dict[int, EvaluationResult]:
    """Evaluate pred-comb for every top-K width (Figures 12/13/15/16)."""
    n_units = len(build_context(result, fine=fine).stl.units)
    ks = ks if ks is not None else list(range(1, n_units + 1))
    return {
        k: evaluate_campaign(result, fine=fine, top_k=k, k_folds=k_folds, seed=seed)
        for k in ks
    }


def split_errors_by_benchmark(records: list[ErrorRecord]) -> dict[str, list[ErrorRecord]]:
    """Group an error dataset by originating benchmark."""
    grouped: dict[str, list[ErrorRecord]] = {}
    for record in records:
        grouped.setdefault(record.benchmark, []).append(record)
    return grouped
