"""ASCII figure renderers.

The benchmark harness reports series as rows (see
:mod:`repro.analysis.reports`); this module additionally draws the
paper's figures as terminal bar/line charts so the *shapes* — the bar
ordering of Figure 11, the saturating accuracy curves of Figures
12/15, the per-unit histograms of Figures 4/5 — are visible at a
glance without a plotting stack.
"""

from __future__ import annotations

from ..core.signatures import SignatureStats
from ..faults.models import ErrorRecord, ErrorType
from .evaluation import MODEL_NAMES, EvaluationResult

_BAR = "█"
_HALF = "▌"


def hbar_chart(rows: list[tuple[str, float]], width: int = 44,
               fmt: str = "{:,.0f}") -> str:
    """Horizontal bars scaled to the maximum value."""
    if not rows:
        return "(no data)"
    peak = max(value for _, value in rows) or 1.0
    label_w = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        n = value / peak * width
        bar = _BAR * int(n) + (_HALF if n - int(n) >= 0.5 else "")
        lines.append(f"  {label:<{label_w}} {bar:<{width}} {fmt.format(value)}")
    return "\n".join(lines)


def line_chart(xs: list[float], ys: list[float], height: int = 10,
               x_label: str = "K", y_label: str = "value") -> str:
    """A coarse scatter/line chart on a character grid."""
    if not xs or len(xs) != len(ys):
        raise ValueError("xs and ys must be equal-length and non-empty")
    lo, hi = min(ys), max(ys)
    span = (hi - lo) or 1.0
    grid = [[" "] * len(xs) for _ in range(height)]
    for col, y in enumerate(ys):
        row = int((y - lo) / span * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = [f"  {y_label} (top={hi:g}, bottom={lo:g})"]
    lines += ["  |" + "".join(row) for row in grid]
    lines.append("  +" + "-" * len(xs))
    lines.append("   " + "".join(str(int(x) % 10) for x in xs) + f"   ({x_label})")
    return "\n".join(lines)


def figure11_chart(ev: EvaluationResult, fine: bool = False) -> str:
    """Figure 11/14 as a bar chart of mean LERT per model."""
    rows = [(name, ev.strategies[name].mean_lert) for name in MODEL_NAMES]
    title = "Fig 14" if fine else "Fig 11"
    return (f"{title} — average LERT per error (cycles)\n"
            + hbar_chart(rows))


def topk_chart(sweep: dict[int, EvaluationResult], fine: bool = False) -> str:
    """Figures 12/15 (accuracy) and 13/16 (LERT) as line charts."""
    ks = sorted(sweep)
    acc = [sweep[k].location_accuracy * 100 for k in ks]
    lert = [sweep[k].strategies["pred-comb"].mean_lert for k in ks]
    figs = "Figs 15/16" if fine else "Figs 12/13"
    return "\n".join([
        f"{figs} — top-K sweep",
        line_chart([float(k) for k in ks], acc, y_label="location accuracy %"),
        "",
        line_chart([float(k) for k in ks], lert, y_label="avg LERT (cycles)"),
    ])


def signature_histogram(records: list[ErrorRecord], unit: str,
                        error_type: ErrorType, fine: bool = False,
                        top: int = 10) -> str:
    """One panel of Figure 4/5: a unit's diverged-SC-set histogram."""
    stats = SignatureStats.from_records(records, fine=fine)
    dist = stats.unit_distribution(unit, error_type, records)
    ranked = sorted(dist.items(), key=lambda kv: -kv[1])[:top]
    rows = [
        ("{" + ",".join(str(i) for i in sorted(key)) + "}", prob)
        for key, prob in ranked
    ]
    label = "hard" if error_type is ErrorType.HARD else "soft"
    return (f"P(diverged SC set | {label} fault in {unit}) — top {len(rows)} sets\n"
            + hbar_chart(rows, fmt="{:.3f}"))
