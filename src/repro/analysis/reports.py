"""Text renderers that regenerate the paper's tables and figures.

Every renderer returns a plain-text block with the same rows/series
the paper reports, so the benchmark harness can print paper-shaped
output next to the measured numbers.
"""

from __future__ import annotations

from ..bist.stl import StlModel
from ..core.bhattacharyya import average_bc, bc_extremes, cross_unit_bc
from ..core.signatures import SignatureStats
from ..faults.campaign import CampaignResult
from ..faults.models import ErrorRecord, ErrorType
from ..faults.stats import table1
from ..hw.costs import table4
from .evaluation import EvaluationResult, MODEL_NAMES


def render_table1(result: CampaignResult) -> str:
    """Table I: manifestation rates and times, [min, mean, max]."""
    lines = ["Table I — fault injection statistics ([min, mean, max] over units)"]
    rows = table1(result)
    for name, spread in rows.items():
        fmt = "{:.1%}" if "Rate" in name else "{:.0f} cyc"
        lines.append(f"  {name:32s} {spread.as_row(fmt)}")
    lines.append(f"  Total injected: {result.n_injected}, manifested errors: "
                 f"{result.n_errors} ({result.n_errors / max(1, result.n_injected):.1%})")
    return "\n".join(lines)


def render_table2(restart_cycles: dict[str, int]) -> str:
    """Table II: model latencies (table access, STL range, restart range)."""
    stl7 = StlModel(fine=False)
    stl13 = StlModel(fine=True)
    lo7, mean7, hi7 = stl7.spread()
    lo13, mean13, hi13 = stl13.spread()
    restarts = sorted(restart_cycles.values())
    mean_r = sum(restarts) / len(restarts) if restarts else 0
    lines = [
        "Table II — latencies used in the models (cycles)",
        "  Prediction Table Access Time     2 (on-chip) / 100 (off-chip)",
        f"  STL Latency Range (7 units)      [{lo7}, {mean7:.0f}, {hi7}]",
        f"  STL Latency Range (13 units)     [{lo13}, {mean13:.0f}, {hi13}]",
    ]
    if restarts:
        lines.append(
            f"  Restart Latency Range            [{restarts[0]}, {mean_r:.0f}, {restarts[-1]}]")
    return "\n".join(lines)


def _render_distribution(stats: SignatureStats, records: list[ErrorRecord],
                         unit: str, etype: ErrorType, top: int = 6) -> str:
    dist = stats.unit_distribution(unit, etype, records)
    ranked = sorted(dist.items(), key=lambda kv: -kv[1])[:top]
    parts = [f"set{{{','.join(str(i) for i in sorted(key))}}}={p:.2f}"
             for key, p in ranked]
    return f"    {unit:10s} " + "  ".join(parts)


def render_fig4_5(records: list[ErrorRecord], etype: ErrorType,
                  fine: bool = False) -> str:
    """Figures 4/5: per-unit diverged-SC-set distributions + BCs."""
    stats = SignatureStats.from_records(records, fine=fine)
    label = "hard" if etype is ErrorType.HARD else "soft"
    fig = "Fig 4" if etype is ErrorType.HARD else "Fig 5"
    bcs = cross_unit_bc(stats, records, etype)
    lo, mid, hi = bc_extremes(stats, records, etype)
    lines = [f"{fig} — {label} error distributions "
             f"(min/median/max cross-unit BC units)"]
    for unit in (lo, mid, hi):
        lines.append(f"  BC({unit}) = {bcs[unit]:.2f}")
        lines.append(_render_distribution(stats, records, unit, etype))
    lines.append(f"  Average cross-unit BC over all units: "
                 f"{average_bc(stats, records, etype):.2f}")
    return "\n".join(lines)


def render_fig11(ev: EvaluationResult, fine: bool = False) -> str:
    """Figures 11/14: average LERT per error for all five models."""
    n_units = 13 if fine else 7
    fig = "Fig 14" if fine else "Fig 11"
    lines = [f"{fig} — average LERT per error, {n_units} CPU units"]
    for name in MODEL_NAMES:
        s = ev.strategies[name]
        lines.append(f"  {name:20s} tested={s.mean_tested_units:4.1f}  "
                     f"LERT={s.mean_lert:12,.0f} cycles")
    lines.append(
        "  speedups: pred-comb vs base-manifest "
        f"{ev.speedup('pred-comb', 'base-manifest'):.0%}, "
        "vs base-ascending "
        f"{ev.speedup('pred-comb', 'base-ascending'):.0%}, "
        "vs pred-location-only "
        f"{ev.speedup('pred-comb', 'pred-location-only'):.0%}")
    lines.append(
        "  pred-location-only vs base-manifest "
        f"{ev.speedup('pred-location-only', 'base-manifest'):.0%}, "
        "vs base-ascending "
        f"{ev.speedup('pred-location-only', 'base-ascending'):.0%}")
    return "\n".join(lines)


def render_table3(ev: EvaluationResult) -> str:
    """Table III: error type prediction accuracy for pred-comb."""
    acc = ev.type_accuracy
    return "\n".join([
        "Table III — error type prediction accuracy (pred-comb)",
        f"  Soft     {acc['soft']:.0%}",
        f"  Hard     {acc['hard']:.0%}",
        f"  Overall  {acc['overall']:.0%}",
        f"  SBIST invocations avoided vs pred-location-only: "
        f"{ev.sbist_reduction:.0%}",
    ])


def render_topk(sweep: dict[int, EvaluationResult], fine: bool = False) -> str:
    """Figures 12/13 (or 15/16): accuracy and LERT vs predicted units."""
    figs = "Figs 15/16" if fine else "Figs 12/13"
    n_units = 13 if fine else 7
    lines = [f"{figs} — pred-comb with top-K predicted units ({n_units}-unit config)",
             "  K   loc.accuracy   avg LERT        speedup vs base-ascending"]
    for k in sorted(sweep):
        ev = sweep[k]
        lines.append(
            f"  {k:<3d} {ev.location_accuracy:12.0%}   "
            f"{ev.strategies['pred-comb'].mean_lert:12,.0f}   "
            f"{ev.speedup('pred-comb', 'base-ascending'):.0%}")
    return "\n".join(lines)


def render_table4(n_entries: int, ptar_bits: int) -> str:
    """Table IV: predictor area and power overhead."""
    lines = ["Table IV — area and power overhead of the predictor"]
    for basis in ("r5", "sr5"):
        label = "R5-class gate budget" if basis == "r5" else "simulated SR5 core"
        lines.append(f"  basis: {label}")
        for row in table4(n_entries=n_entries, ptar_bits=ptar_bits, core=basis):
            lines.append(f"    vs {row.reference:35s} area {row.area_overhead:6.2%}"
                         f"   power {row.power_overhead:6.2%}")
    return "\n".join(lines)
