"""Reading and appending the ``BENCH_campaign.json`` perf trajectory.

The repo-root trajectory file is append-only across PRs, which means
it permanently contains *mixed-schema* rows: schema-1 single-payload
pruning dicts absorbed at the format change, early schema-2 rows
without timestamps, batch rows from before the kernel knob existed
(no ``batch_cext``), and so on.  Consumers (the CI throughput gates,
benchmark baselines) must therefore never index blindly into the
newest row shape — this module is the guarded loader they share.

``latest_entry`` walks the history newest-first and returns the first
row of the requested kind that actually carries the required keys,
skipping — not crashing on — older rows that predate a knob.
"""

from __future__ import annotations

import json
import time
import warnings
from pathlib import Path

#: Supported top-level container schema versions.
KNOWN_SCHEMAS = (1, 2)
CURRENT_SCHEMA = 2


def load_entries(path: str | Path) -> list[dict]:
    """Load every history entry from a trajectory file.

    Handles all committed formats: the schema-2 container
    ``{"schema": 2, "entries": [...]}`` and the legacy schema-1 file
    that held a single pruning payload (absorbed as one entry).  A
    future container schema raises — silently misreading a newer
    format is how gates pass vacuously — while unreadable files warn
    and return no history (the gates then fall back to measuring
    without a baseline rather than failing the build on a corrupt
    artifact).
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        warnings.warn(f"unreadable bench history {path}: {exc}",
                      RuntimeWarning, stacklevel=2)
        return []
    if not isinstance(payload, dict):
        warnings.warn(f"bench history {path} is not a JSON object",
                      RuntimeWarning, stacklevel=2)
        return []
    if isinstance(payload.get("entries"), list):
        schema = payload.get("schema")
        if schema not in KNOWN_SCHEMAS:
            raise ValueError(
                f"bench history {path} has unsupported schema {schema!r} "
                f"(known: {KNOWN_SCHEMAS})")
        return [entry for entry in payload["entries"]
                if isinstance(entry, dict)]
    # Legacy schema-1: one pruning payload, no container.
    return [{"kind": "pruning", "timestamp": None, **payload}]


def has_keys(entry: dict, required: tuple[str, ...]) -> bool:
    """True when every dotted key path resolves inside ``entry``.

    ``"injections_per_s.batch.256"`` checks
    ``entry["injections_per_s"]["batch"]["256"]`` without raising.
    """
    for dotted in required:
        node = entry
        for part in dotted.split("."):
            if not isinstance(node, dict) or part not in node:
                return False
            node = node[part]
    return True


def latest_entry(path: str | Path, kind: str,
                 require: tuple[str, ...] = ()) -> dict | None:
    """Newest entry of ``kind`` carrying all ``require`` key paths.

    Older rows written before a knob existed (e.g. ``batch_sweep``
    rows without ``injections_per_s.batch_cext``) are skipped instead
    of KeyError-ing, so mixed-schema history files stay loadable
    forever.  Returns None when no row qualifies.
    """
    for entry in reversed(load_entries(path)):
        if entry.get("kind") == kind and has_keys(entry, require):
            return entry
    return None


def append_entry(path: str | Path, kind: str, payload: dict) -> dict:
    """Append one timestamped entry, migrating legacy files in place.

    Returns the entry written.  The container is always rewritten at
    :data:`CURRENT_SCHEMA` with the full (possibly migrated) history.
    """
    path = Path(path)
    entries = load_entries(path)
    entry = {
        "kind": kind,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        **payload,
    }
    entries.append(entry)
    path.write_text(json.dumps(
        {"schema": CURRENT_SCHEMA, "entries": entries}, indent=2) + "\n")
    return entry
