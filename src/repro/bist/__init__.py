"""Built-in self-test substrates: STL latency model, SBIST and LBIST."""

from .lbist import LbistConfig, LbistEngine
from .sbist import SbistEngine, SbistOutcome
from .stl import STL_BASE_CYCLES, STL_CYCLES_PER_FLOP15, StlModel

__all__ = [
    "LbistConfig", "LbistEngine",
    "SbistEngine", "SbistOutcome",
    "STL_BASE_CYCLES", "STL_CYCLES_PER_FLOP15", "StlModel",
]
