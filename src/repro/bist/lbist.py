"""A logic BIST (LBIST) model — the paper's alternative diagnostic.

LBIST drives pseudo-random patterns through per-unit scan chains and
compares compacted signatures (MISR) against golden values.  The paper
focuses its evaluation on SBIST but notes the predictor equally lets
LBIST *constrain the test search space to the scan chains of the
predicted units*.  This model makes that concrete so the ablation
bench can compare both diagnostics.

Latency model: a unit's scan test costs ``patterns * (chain_length +
1)`` shift cycles, where the chain length is the unit's flop count
divided over ``n_chains`` parallel chains.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.units import unit_flop_counts
from .sbist import SbistOutcome


@dataclass(frozen=True)
class LbistConfig:
    """LBIST structural parameters."""

    n_chains: int = 8
    patterns_per_unit: int = 512


class LbistEngine:
    """Scan-chain diagnostic constrained (or not) by a predicted order."""

    def __init__(self, fine: bool = False, config: LbistConfig | None = None):
        self.fine = fine
        self.config = config if config is not None else LbistConfig()
        counts = unit_flop_counts(fine=fine)
        cfg = self.config
        self.latencies: dict[str, int] = {
            unit: cfg.patterns_per_unit * (max(1, -(-flops // cfg.n_chains)) + 1)
            for unit, flops in counts.items()
        }

    def latency(self, unit: str) -> int:
        """Scan test time for one unit in cycles."""
        return self.latencies[unit]

    def run(self, order: tuple[str, ...], faulty_unit: str | None) -> SbistOutcome:
        """Scan-test units in order until the faulty one is caught.

        Stuck-at coverage of full-scan LBIST is taken as 100%, like
        the paper's STL assumption.
        """
        cycles = 0
        for tested, unit in enumerate(order, start=1):
            cycles += self.latency(unit)
            if unit == faulty_unit:
                return SbistOutcome(True, unit, cycles, tested)
        return SbistOutcome(False, None, cycles, len(order))
