"""The SBIST diagnostic engine.

Runs the per-unit STLs in a given order until a hard fault is found or
every unit has been tested.  Both lockstepped cores execute the STLs
concurrently (each core tests itself; the checker is bypassed during
diagnosis), so one unit's latency is paid once regardless of core
count — the DMR/MMR difference the paper describes affects *which*
cores run the STLs, not the cycle count per unit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .stl import StlModel


@dataclass(frozen=True)
class SbistOutcome:
    """Result of one SBIST invocation.

    Attributes:
        found: True when a hard fault was located.
        faulty_unit: the unit the STL flagged (None when nothing found).
        cycles: total STL execution cycles spent.
        tested_units: number of STLs run.
    """

    found: bool
    faulty_unit: str | None
    cycles: int
    tested_units: int


class SbistEngine:
    """Deterministic SBIST run over an ordered unit list."""

    def __init__(self, stl: StlModel, rng: np.random.Generator | None = None):
        self.stl = stl
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def run(self, order: tuple[str, ...], faulty_unit: str | None) -> SbistOutcome:
        """Test units in ``order``; stop when the faulty unit is caught.

        ``faulty_unit`` is the ground-truth location of a hard fault
        (None for a soft error, which no STL can find).  A unit's STL
        catches a fault in that unit with probability ``stl.coverage``
        (1.0 by default, per the paper's assumption).
        """
        cycles = 0
        for tested, unit in enumerate(order, start=1):
            cycles += self.stl.latency(unit)
            if unit == faulty_unit:
                caught = self.stl.coverage >= 1.0 or self.rng.random() < self.stl.coverage
                if caught:
                    return SbistOutcome(True, unit, cycles, tested)
        return SbistOutcome(False, None, cycles, len(order))

    def complete_order(self, prefix: tuple[str, ...]) -> tuple[str, ...]:
        """Append the untested units to a truncated predicted order.

        The paper tests the remaining units in *random* order when a
        top-K prediction misses, deliberately not granting truncated
        predictors the benefit of a tuned tail order (Section V-C).
        """
        rest = [u for u in self.stl.units if u not in prefix]
        if not rest:
            return prefix
        perm = self.rng.permutation(len(rest))
        return prefix + tuple(rest[i] for i in perm)
