"""Software test library (STL) latency model.

SBIST diagnoses hard faults by running one software test library per
CPU unit.  The paper measures real STL execution times and reports
only their range — [min, mean, max] = [25k, 170k, 700k] cycles
(Table II) — with latency growing with unit complexity.

We model an STL's latency as ``base + c * flops^1.5``: test length
grows superlinearly with unit state because both the pattern count and
the per-pattern propagation work grow with structure size.  With the
SR5 unit sizes this lands almost exactly on the paper's range for the
7-unit organisation, and the fine 13-unit split automatically yields
shorter sub-STLs whose *sum* exceeds the parent DPU STL slightly (test
setup overhead), matching the paper's observation that finer
granularity shortens diagnosis.
"""

from __future__ import annotations

from ..cpu.units import COARSE_UNITS, FINE_UNITS, unit_flop_counts

#: Fixed per-STL harness overhead in cycles.
STL_BASE_CYCLES = 5_000
#: Scale factor calibrated against the paper's Table II range.
STL_CYCLES_PER_FLOP15 = 26.0


class StlModel:
    """Per-unit STL latencies for one taxonomy, with 100% coverage.

    The 100% stuck-at coverage assumption matches the paper's footnote
    5; an optional ``coverage`` below 1.0 supports the coverage
    ablation (a missed fault turns a hard error into an apparent soft
    one, forcing the restart path).
    """

    def __init__(self, fine: bool = False, coverage: float = 1.0):
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")
        self.fine = fine
        self.coverage = coverage
        counts = unit_flop_counts(fine=fine)
        self.latencies: dict[str, int] = {
            unit: int(STL_BASE_CYCLES + STL_CYCLES_PER_FLOP15 * flops ** 1.5)
            for unit, flops in counts.items()
        }

    @property
    def units(self) -> tuple[str, ...]:
        """Units in canonical order for this taxonomy."""
        return tuple(FINE_UNITS) if self.fine else tuple(COARSE_UNITS)

    def latency(self, unit: str) -> int:
        """STL execution time for one unit in cycles."""
        return self.latencies[unit]

    def total_latency(self) -> int:
        """Run-to-completion cost: every unit's STL."""
        return sum(self.latencies.values())

    def ascending_order(self) -> tuple[str, ...]:
        """Units sorted by increasing STL latency (base-ascending)."""
        return tuple(sorted(self.units, key=self.latency))

    def spread(self) -> tuple[int, float, int]:
        """[min, mean, max] latency over units, like Table II."""
        values = list(self.latencies.values())
        return min(values), sum(values) / len(values), max(values)
