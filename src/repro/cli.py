"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``campaign``  — run (or load) a fault-injection campaign; print Table I;
  ``--resume`` runs through the durable ledger so a killed run restarts
  where it stopped, bit-identical to an uninterrupted run.
* ``serve``     — campaign-as-a-service: shard leasing for remote
  workers plus low-latency DSR -> (type, unit, Top-K SBIST) prediction
  lookups over an asyncio HTTP API (503 + Retry-After while training).
* ``work``      — lease-execute-commit worker loop against a server.
* ``evaluate``  — cross-validated evaluation; print Figure 11/14 and
  Table III (``--fine`` for the 13-unit organisation, ``--top-k`` to
  truncate predictions, ``--off-chip`` for DRAM table placement).
* ``figures``   — ASCII charts of Figures 11-16.
* ``overhead``  — the Table IV area/power model.
* ``run``       — execute one workload kernel and print its outputs.
* ``fuzz``      — differential co-simulation fuzz of the pipeline
  against the ISA reference model (mismatches shrink to ``.s`` repros);
  ``--inject`` switches to fuzz-under-fault-injection (per-fault
  detection latency / masked / escape classification), ``--adapt``
  turns on coverage-directed template reweighting.
* ``mutate``    — mutation-test the verification stack: plant ALU /
  branch / checker bugs, measure programs-to-kill, emit
  ``BENCH_mutation.json``.
* ``disasm``    — disassemble a workload kernel.
* ``kernels``   — list the available workloads.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from .analysis import evaluate_campaign, topk_sweep
from .analysis.figures import figure11_chart, topk_chart
from .analysis.reports import (
    render_fig11,
    render_table1,
    render_table3,
    render_table4,
)
from .faults import (EXECUTOR_CHOICES, KERNEL_CHOICES, CampaignConfig,
                     cached_campaign)
from .workloads import KERNELS, get_workload, run_kernel

_SCALES = {
    "quick": CampaignConfig.quick,
    "default": CampaignConfig.default,
    "full": CampaignConfig.full,
}


def _add_campaign_args(parser: argparse.ArgumentParser,
                       resumable: bool = False) -> None:
    parser.add_argument("--scale", choices=sorted(_SCALES), default="default",
                        help="campaign size preset")
    parser.add_argument("--cache", default=".campaign_cache",
                        help="campaign cache directory")
    if resumable:
        parser.add_argument("--resume", action="store_true",
                            help="run through the durable campaign ledger: "
                                 "a killed run restarted with the same "
                                 "arguments continues from its committed "
                                 "shards, with a digest bit-identical to an "
                                 "uninterrupted run")
        parser.add_argument("--ledger", default=".campaign_ledger",
                            metavar="DIR",
                            help="ledger root directory (with --resume)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for the injection campaign "
                             "(0 = all cores); results are identical for "
                             "any value")
    parser.add_argument("--no-prune", action="store_true",
                        help="disable liveness pruning (zero-sim masking, "
                             "deferred starts, dynamic equivalence); records "
                             "are bit-identical either way — this is an "
                             "escape hatch / benchmarking baseline")
    parser.add_argument("--batch", type=int, default=None, metavar="N",
                        help="run the vectorised injection engine with N "
                             "fault lanes per numpy op (e.g. 256); records "
                             "are bit-identical to the scalar engine for "
                             "any value")
    parser.add_argument("--kernel", choices=KERNEL_CHOICES, default=None,
                        help="step backend for the vectorised engine: "
                             "'cext' (compiled, error if unavailable), "
                             "'numpy', or 'auto' (default: compiled when "
                             "available); records are bit-identical for "
                             "any backend")
    parser.add_argument("--executor", choices=EXECUTOR_CHOICES, default=None,
                        help="shard fan-out backend with --workers > 1: "
                             "'process' (default; pool of worker "
                             "processes) or 'thread' (in-process workers "
                             "sharing one golden cache — effective with "
                             "the GIL-releasing compiled kernel); results "
                             "are bit-identical for either")
    parser.add_argument("--cstep-threads", type=int, default=None,
                        metavar="N", dest="cstep_threads",
                        help="threads for the compiled kernel's drive "
                             "loop (default: $REPRO_CSTEP_THREADS, else "
                             "min(cores, lanes/16)); results are "
                             "bit-identical for any value")


def _cli_config(args: argparse.Namespace) -> CampaignConfig:
    config = _SCALES[args.scale]()
    if getattr(args, "no_prune", False):
        config = dataclasses.replace(config, prune=False)
    return config


def _load_campaign(args: argparse.Namespace):
    config = _cli_config(args)
    if getattr(args, "resume", False):
        from .faults.service import run_resumable_campaign

        return run_resumable_campaign(
            config, ledger_dir=args.ledger, progress=True,
            workers=args.workers, batch=getattr(args, "batch", None),
            kernel=getattr(args, "kernel", None),
            executor=getattr(args, "executor", None),
            threads=getattr(args, "cstep_threads", None))
    return cached_campaign(config, cache_dir=args.cache,
                           progress=True, workers=args.workers,
                           batch=getattr(args, "batch", None),
                           kernel=getattr(args, "kernel", None),
                           executor=getattr(args, "executor", None),
                           threads=getattr(args, "cstep_threads", None))


def cmd_campaign(args: argparse.Namespace) -> int:
    campaign = _load_campaign(args)
    if campaign.meta.get("resumed_shards"):
        print(f"resumed: {campaign.meta['resumed_shards']}/"
              f"{campaign.meta['n_shards']} shards were already committed")
    print(render_table1(campaign))
    pruning = campaign.meta.get("pruning")
    if pruning and not campaign.config.prune:
        print(f"\npruning disabled: {pruning.get('sim_cycles', 0)} cycles "
              f"simulated")
    elif pruning:
        pruned = pruning.get("soft_pruned", 0) + pruning.get("hard_pruned", 0)
        deferred = (pruning.get("soft_deferred", 0)
                    + pruning.get("hard_deferred", 0))
        print(f"\npruning: {pruned} masked without simulation, "
              f"{deferred} deferred starts, "
              f"{pruning.get('equiv_classes', 0)} equivalence classes "
              f"({pruning.get('equiv_hits', 0)} collapsed), "
              f"{pruning.get('cycles_saved', 0)} cycles saved vs "
              f"{pruning.get('sim_cycles', 0)} simulated")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    campaign = _load_campaign(args)
    ev = evaluate_campaign(campaign, fine=args.fine, top_k=args.top_k,
                           off_chip=args.off_chip)
    print(render_fig11(ev, fine=args.fine))
    print()
    print(render_table3(ev))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    campaign = _load_campaign(args)
    ev = evaluate_campaign(campaign, fine=args.fine)
    print(figure11_chart(ev, fine=args.fine))
    print()
    n_units = 13 if args.fine else 7
    sweep = topk_sweep(campaign, fine=args.fine,
                       ks=list(range(1, n_units + 1)))
    print(topk_chart(sweep, fine=args.fine))
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    print(render_table4(n_entries=args.entries, ptar_bits=args.ptar_bits))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    workload = get_workload(args.kernel)
    result = run_kernel(workload, seed=args.seed)
    print(f"{workload.name}: {workload.description}")
    print(f"cycles: {result.cycles}, halted: {result.halted}, "
          f"exception: {result.exception}")
    print(f"outputs ({len(result.outputs)}): {result.outputs}")
    reference = workload.reference(workload.stimulus(args.seed))
    print(f"matches reference model: {result.outputs == reference}")
    return 0 if result.outputs == reference else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    if args.inject:
        return _cmd_fuzz_inject(args)
    from .verify import run_fuzz

    kwargs = {}
    if args.artifacts is not None:
        # Explicit directory beats the REPRO_FUZZ_ARTIFACTS env default.
        kwargs["artifacts_dir"] = args.artifacts
    report = run_fuzz(
        programs=args.programs,
        seed=args.seed,
        max_cycles=args.max_cycles,
        do_shrink=not args.no_shrink,
        adapt=args.adapt,
        progress=True,
        **kwargs,
    )
    print(report.coverage.report())
    print(f"wall time: {report.wall_seconds:.1f}s"
          + (f"  (hung both: {report.hung_both})" if report.hung_both else "")
          + (f"  (unsupported: {report.unsupported})"
             if report.unsupported else ""))
    if report.failures:
        print(f"\n{len(report.failures)} MISMATCH(ES):")
        for failure in report.failures:
            print(f"  seed {failure.seed!r} "
                  f"({failure.instructions} instructions"
                  + (f", artifact {failure.artifact}" if failure.artifact
                     else "") + ")")
            for mismatch in failure.mismatches:
                print(f"    {mismatch}")
        return 1
    print(f"OK: {report.programs} programs, zero pipeline-vs-reference "
          f"mismatches")
    return 0


def _cmd_fuzz_inject(args: argparse.Namespace) -> int:
    from .verify.faultfuzz import run_faultfuzz

    report = run_faultfuzz(
        programs=args.programs,
        seed=args.seed,
        faults_per_program=args.faults,
        max_cycles=args.max_cycles,
        workers=args.workers,
        cores=args.cores,
        lockstep_mode=args.lockstep_mode,
        duty=args.duty,
        progress=True,
    )
    print(report.report())
    print(f"wall time: {report.wall_seconds:.1f}s  (workers: "
          f"{report.meta['workers']})")
    return 0


def cmd_mutate(args: argparse.Namespace) -> int:
    from .verify.mutation import default_mutants, run_mutation, write_report

    mutants = None
    if args.kinds:
        kinds = tuple(args.kinds.split(","))
        mutants = tuple(m for m in default_mutants() if m.kind in kinds)
        if not mutants:
            print(f"no mutants of kind(s) {args.kinds!r}")
            return 1
    if args.sample:
        mutants = (mutants if mutants is not None else default_mutants())
        mutants = mutants[:args.sample]
    report = run_mutation(
        seed=args.seed,
        max_programs=args.programs,
        checker_programs=args.checker_programs,
        mutants=mutants,
        progress=True,
    )
    print(report.report())
    if args.out:
        path = write_report(report, args.out)
        print(f"wrote {path}")
    failed = []
    rate = report.kill_rate(("alu", "branch"))
    if rate < args.min_kill_rate:
        failed.append(f"alu/branch kill rate {100 * rate:.1f}% below "
                      f"{100 * args.min_kill_rate:.1f}%")
    chk_rate = report.kill_rate(("checker",))
    if chk_rate < args.min_checker_kill_rate:
        failed.append(f"checker kill rate {100 * chk_rate:.1f}% below "
                      f"{100 * args.min_checker_kill_rate:.1f}%")
    if report.undocumented_survivors:
        failed.append("undocumented survivors: " + ", ".join(
            r["name"] for r in report.undocumented_survivors))
    if failed:
        print("MUTATION GATE FAILED: " + "; ".join(failed))
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .faults.service import CampaignLedger, CampaignService
    from .faults.service.http import serve_forever

    config = _cli_config(args)
    ledger = CampaignLedger(args.ledger, config,
                            chunk_flops=args.chunk_flops)
    service = CampaignService(ledger, fine=args.fine, top_k=args.top_k,
                              lease_ttl=args.lease_ttl)
    serve_forever(service, args.host, args.port)
    return 0


def cmd_work(args: argparse.Namespace) -> int:
    from .faults.service import run_worker

    done = run_worker(args.url, worker_id=args.worker,
                      batch=args.batch, kernel=args.kernel,
                      threads=args.cstep_threads,
                      ttl=args.ttl, max_shards=args.max_shards or None,
                      progress=True)
    print(f"worker {args.worker}: committed {done} shard(s)")
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    from .cpu.assembler import assemble
    from .cpu.disassembler import disassemble

    workload = get_workload(args.kernel)
    program = assemble(workload.source)
    print(disassemble(program.words))
    return 0


def cmd_kernels(args: argparse.Namespace) -> int:
    for name, workload in KERNELS.items():
        print(f"  {name:8s} {workload.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Error correlation prediction for lockstep processors "
                    "(MICRO 2018 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("campaign", help="run/load a fault-injection campaign")
    _add_campaign_args(p, resumable=True)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("evaluate", help="cross-validated LERT evaluation")
    _add_campaign_args(p)
    p.add_argument("--fine", action="store_true", help="13-unit organisation")
    p.add_argument("--top-k", type=int, default=None,
                   help="truncate predictions to the top K units")
    p.add_argument("--off-chip", action="store_true",
                   help="place the prediction table off-chip (100-cycle access)")
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("figures", help="ASCII charts of Figures 11-16")
    _add_campaign_args(p)
    p.add_argument("--fine", action="store_true")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("overhead", help="Table IV area/power model")
    p.add_argument("--entries", type=int, default=1200)
    p.add_argument("--ptar-bits", type=int, default=11)
    p.set_defaults(func=cmd_overhead)

    p = sub.add_parser("run", help="run one workload kernel")
    p.add_argument("kernel", choices=sorted(KERNELS))
    p.add_argument("--seed", type=int, default=20180615)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "fuzz", help="differential co-simulation fuzz vs the ISA model")
    p.add_argument("--programs", type=int, default=200, metavar="N",
                   help="number of random programs to co-simulate")
    p.add_argument("--seed", type=int, default=0,
                   help="session seed (program i derives from 'seed:i')")
    p.add_argument("--max-cycles", type=int, default=30_000, metavar="C",
                   help="pipeline cycle budget per program")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip delta-debugging of mismatching programs")
    p.add_argument("--artifacts", default=None, metavar="DIR",
                   help="directory for shrunken .s failure artifacts "
                        "(default: $REPRO_FUZZ_ARTIFACTS, else "
                        "fuzz_artifacts/)")
    p.add_argument("--adapt", action="store_true",
                   help="coverage-directed generation: reweight templates "
                        "toward under-hit event bins between batches")
    p.add_argument("--inject", action="store_true",
                   help="fuzz under fault injection: perturb one core of a "
                        "redundant group per program and classify every "
                        "fault as detected / masked / escape / hung")
    p.add_argument("--faults", type=int, default=3, metavar="K",
                   help="faults injected per program (with --inject)")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="worker processes for --inject (0 = all cores); "
                        "digest is identical for any value")
    p.add_argument("--cores", type=int, default=2, choices=(2, 3),
                   help="redundant group size for --inject: 2 = DMR pair, "
                        "3 = voted TMR triple through the VotingChecker "
                        "(adds erring-CPU attribution + vote-vs-golden "
                        "classification)")
    p.add_argument("--lockstep-mode", choices=("locked", "dynamic"),
                   default="locked", dest="lockstep_mode",
                   help="comparison regime for --inject: 'locked' compares "
                        "every cycle; 'dynamic' gates comparison on a "
                        "seeded split/locked window schedule and reports "
                        "masked-window detection delays")
    p.add_argument("--duty", type=float, default=1.0, metavar="F",
                   help="target comparison duty cycle in (0, 1] for "
                        "--lockstep-mode dynamic (1.0 = always locked)")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "mutate", help="mutation-test the fuzzer and the lockstep checker")
    p.add_argument("--seed", type=int, default=0,
                   help="fuzz session seed used against every mutant")
    p.add_argument("--programs", type=int, default=200, metavar="N",
                   help="cosim program budget per ALU/branch mutant")
    p.add_argument("--checker-programs", type=int, default=200, metavar="N",
                   help="fault-fuzz program budget per checker mutant")
    p.add_argument("--sample", type=int, default=0, metavar="K",
                   help="only run the first K mutants of the pool (CI smoke)")
    p.add_argument("--kinds", default="", metavar="K1,K2",
                   help="only run mutants of these kinds "
                        "(comma-separated from alu,branch,checker)")
    p.add_argument("--min-kill-rate", type=float, default=0.9,
                   help="fail unless this fraction of ALU/branch mutants die")
    p.add_argument("--min-checker-kill-rate", type=float, default=1.0,
                   dest="min_checker_kill_rate",
                   help="fail unless this fraction of checker mutants die "
                        "under the TMR fault-fuzz engine (default 1.0: the "
                        "voter path leaves no room for documented escapes)")
    p.add_argument("--out", default="BENCH_mutation.json", metavar="FILE",
                   help="detection-strength report path ('' to skip)")
    p.set_defaults(func=cmd_mutate)

    p = sub.add_parser(
        "serve", help="serve a campaign ledger + prediction table over HTTP")
    p.add_argument("--scale", choices=sorted(_SCALES), default="default",
                   help="campaign size preset the ledger is keyed by")
    p.add_argument("--ledger", default=".campaign_ledger", metavar="DIR",
                   help="ledger root directory")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8322,
                   help="listen port (0 = ephemeral)")
    p.add_argument("--chunk-flops", type=int, default=None, metavar="N",
                   help="flops per shard when creating a fresh ledger "
                        "(an existing ledger's plan always wins)")
    p.add_argument("--lease-ttl", type=float, default=60.0, metavar="S",
                   help="seconds before an uncommitted shard lease is "
                        "reclaimed from a dead worker")
    p.add_argument("--fine", action="store_true",
                   help="serve the 13-unit prediction table")
    p.add_argument("--top-k", type=int, default=None,
                   help="truncate served predictions to the top K units")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "work", help="lease-execute-commit worker loop against a server")
    p.add_argument("--url", required=True, metavar="URL",
                   help="campaign service base URL (http://host:port)")
    p.add_argument("--worker", default="worker", metavar="ID",
                   help="worker identity reported in leases")
    p.add_argument("--batch", type=int, default=None, metavar="N",
                   help="vectorised-engine lane count (as in campaign)")
    p.add_argument("--kernel", choices=KERNEL_CHOICES, default=None,
                   help="step backend for the vectorised engine")
    p.add_argument("--cstep-threads", type=int, default=None, metavar="N",
                   dest="cstep_threads",
                   help="compiled-kernel drive-loop threads (as in campaign)")
    p.add_argument("--ttl", type=float, default=None, metavar="S",
                   help="requested lease TTL per shard")
    p.add_argument("--max-shards", type=int, default=0, metavar="K",
                   help="stop after K commits (0 = run to completion)")
    p.set_defaults(func=cmd_work)

    p = sub.add_parser("disasm", help="disassemble a workload kernel")
    p.add_argument("kernel", choices=sorted(KERNELS))
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("kernels", help="list available workloads")
    p.set_defaults(func=cmd_kernels)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
