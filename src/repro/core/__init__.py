"""The paper's contribution: lockstep error correlation prediction."""

from .bhattacharyya import (
    average_bc,
    average_type_bc,
    bc_extremes,
    bhattacharyya,
    cross_unit_bc,
    type_bc_per_unit,
)
from .divergence import DivergenceStatusRegister, PredictionTableAddressRegister
from .predictor import (
    DynamicPredictor,
    ErrorCorrelationPredictor,
    Prediction,
    default_unit_order,
    location_accuracy,
    train_predictor,
    type_accuracy,
)
from .signatures import DivergedSet, SignatureStats
from .table import (
    OFF_CHIP_ACCESS_CYCLES,
    ON_CHIP_ACCESS_CYCLES,
    TABLE_PAYLOAD_SCHEMA,
    AddressMapper,
    PredictionTable,
    TableEntry,
    build_default_entry,
    rank_units,
    table_from_payload,
    table_to_payload,
    type_bit,
)

__all__ = [
    "average_bc", "average_type_bc", "bc_extremes", "bhattacharyya",
    "cross_unit_bc", "type_bc_per_unit",
    "DivergenceStatusRegister", "PredictionTableAddressRegister",
    "DynamicPredictor", "ErrorCorrelationPredictor", "Prediction",
    "default_unit_order", "location_accuracy", "train_predictor", "type_accuracy",
    "DivergedSet", "SignatureStats",
    "OFF_CHIP_ACCESS_CYCLES", "ON_CHIP_ACCESS_CYCLES",
    "TABLE_PAYLOAD_SCHEMA",
    "AddressMapper", "PredictionTable", "TableEntry",
    "build_default_entry", "rank_units",
    "table_from_payload", "table_to_payload", "type_bit",
]
