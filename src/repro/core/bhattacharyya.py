"""Bhattacharyya coefficient analysis of unit signatures.

The paper quantifies the similarity of two diverged-SC-set probability
distributions with the Bhattacharyya coefficient (BC):

    BC(p, q) = sum_i sqrt(p_i * q_i)

BC = 0 means disjoint support (perfectly distinguishable signatures),
BC = 1 means identical distributions.  The paper reports an average
cross-unit BC of ~0.39 for hard errors and ~0.32 for soft errors, and
an average hard-vs-soft BC of ~0.6 at the same unit.
"""

from __future__ import annotations

import math
import statistics

from ..faults.models import ErrorRecord, ErrorType
from .signatures import DivergedSet, SignatureStats


def bhattacharyya(p: dict[DivergedSet, float], q: dict[DivergedSet, float]) -> float:
    """BC between two discrete distributions over diverged SC sets."""
    if not p or not q:
        return 0.0
    support = p.keys() & q.keys()
    return sum(math.sqrt(p[key] * q[key]) for key in support)


def cross_unit_bc(stats: SignatureStats, records: list[ErrorRecord],
                  error_type: ErrorType) -> dict[str, float]:
    """Average BC of each unit's signature against every other unit.

    A low value means the unit's error manifestations are unlike other
    units' — i.e. its origin is predictable from the DSR (Figs 4/5).
    """
    units = [u for u in stats.unit_totals if stats.unit_totals[u]]
    dists = {
        u: stats.unit_distribution(u, error_type=error_type, records=records)
        for u in units
    }
    units = [u for u in units if dists[u]]
    result: dict[str, float] = {}
    for unit in units:
        others = [bhattacharyya(dists[unit], dists[other])
                  for other in units if other != unit]
        result[unit] = sum(others) / len(others) if others else 0.0
    return result


def average_bc(stats: SignatureStats, records: list[ErrorRecord],
               error_type: ErrorType) -> float:
    """Mean cross-unit BC over all units (paper: ~0.39 hard, ~0.32 soft)."""
    values = list(cross_unit_bc(stats, records, error_type).values())
    return sum(values) / len(values) if values else 0.0


def bc_extremes(stats: SignatureStats, records: list[ErrorRecord],
                error_type: ErrorType) -> tuple[str, str, str]:
    """Units with minimum, median and maximum cross-unit BC.

    These are the three units the paper plots in Figures 4 and 5.
    """
    bcs = cross_unit_bc(stats, records, error_type)
    if not bcs:
        raise ValueError("no units with errors of this type")
    ranked = sorted(bcs, key=bcs.get)
    return ranked[0], ranked[len(ranked) // 2], ranked[-1]


def type_bc_per_unit(stats: SignatureStats,
                     records: list[ErrorRecord]) -> dict[str, float]:
    """BC between a unit's hard and soft signatures (Section III-B).

    High values (e.g. the paper's 0.95 for the Data Processing Unit)
    mean the error type is hard to tell apart from the DSR for faults
    in that unit; low values (0.3 for Instruction Memory Control) mean
    the type is predictable.
    """
    result: dict[str, float] = {}
    for unit in stats.unit_totals:
        hard = stats.unit_distribution(unit, ErrorType.HARD, records)
        soft = stats.unit_distribution(unit, ErrorType.SOFT, records)
        if hard and soft:
            result[unit] = bhattacharyya(hard, soft)
    return result


def average_type_bc(stats: SignatureStats, records: list[ErrorRecord]) -> float:
    """Mean hard-vs-soft BC over units (paper: ~0.6)."""
    values = list(type_bc_per_unit(stats, records).values())
    return sum(values) / len(values) if values else 0.0


def median_of(values: list[float]) -> float:
    """Convenience wrapper (re-exported for report code)."""
    return statistics.median(values) if values else 0.0
