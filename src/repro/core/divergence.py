"""Hardware-level view of the prediction front-end registers.

This module models the predictor's sequential logic exactly as drawn
in the paper's Figure 6: the per-SC OR-reduction outputs set bits in
the Divergence Status Register, and the address-mapping logic loads
the Prediction Table Address Register when the error signal fires.
The behavioural classes here are what the gate-level cost model in
:mod:`repro.hw` prices.
"""

from __future__ import annotations

from ..cpu.core import NUM_SCS
from ..lockstep.categories import diverged_set
from .table import AddressMapper


class DivergenceStatusRegister:
    """The T-bit DSR: one sticky bit per signal category.

    Bits are set by the SC OR-reduction trees and hold until the error
    handler clears them — capturing the diverged SC set of the
    detection cycle (and, if the system is not stopped immediately,
    accumulating any further divergence, which is why the handler reads
    it right away).
    """

    def __init__(self, n_bits: int = NUM_SCS):
        self.n_bits = n_bits
        self.value = 0

    def reset(self) -> None:
        """Clear all divergence bits."""
        self.value = 0

    def capture(self, outputs_a: tuple[int, ...], outputs_b: tuple[int, ...]) -> int:
        """OR the per-SC comparison of one cycle into the register."""
        for idx in diverged_set(outputs_a, outputs_b):
            self.value |= 1 << idx
        return self.value

    @property
    def as_set(self) -> frozenset[int]:
        """The diverged SC set currently latched."""
        return frozenset(i for i in range(self.n_bits) if (self.value >> i) & 1)


class PredictionTableAddressRegister:
    """The PTAR: the DSR compressed through the address mapping logic.

    The error handler software reads this register (like an exception
    vector) and indexes the prediction table with it.
    """

    def __init__(self, mapper: AddressMapper):
        self.mapper = mapper
        self.value = mapper.default_index

    def load(self, dsr: DivergenceStatusRegister) -> int:
        """Map the latched DSR into a table address."""
        self.value = self.mapper.map(dsr.as_set)
        return self.value

    @property
    def bits(self) -> int:
        """Register width (paper: 11 bits for ~1200 sets)."""
        return self.mapper.ptar_bits
