"""The static lockstep error correlation predictor.

Training (paper Section IV-C.2): over the training errors, build per-
diverged-SC-set histograms of originating units and of error types;
normalise into probability scores; populate the prediction table with
units in descending score order plus the majority type bit.

Prediction: on a lockstep error, the DSR value addresses the table via
the PTAR; the entry yields the SBIST unit test order and the type hint.
A never-observed DSR hits the catch-all entry: hard error, default
order — so a cold predictor degrades exactly to the baseline and never
compromises safety.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.units import COARSE_UNITS, FINE_UNITS
from ..faults.models import ErrorRecord, ErrorType
from .signatures import DivergedSet, SignatureStats
from .table import (
    PredictionTable,
    TableEntry,
    build_default_entry,
    rank_units,
    type_bit,
)


@dataclass(frozen=True)
class Prediction:
    """The predictor's answer for one detected error."""

    units: tuple[str, ...]
    error_type: ErrorType
    #: True when the DSR was never seen in training (catch-all entry).
    from_default: bool


def default_unit_order(fine: bool) -> tuple[str, ...]:
    """The canonical (documentation) order of CPU units."""
    return tuple(FINE_UNITS) if fine else tuple(COARSE_UNITS)


class ErrorCorrelationPredictor:
    """Static predictor over a trained :class:`PredictionTable`."""

    def __init__(self, table: PredictionTable, fine: bool):
        self.table = table
        self.fine = fine

    @property
    def access_cycles(self) -> int:
        """Prediction table access latency (placement-dependent)."""
        return self.table.access_cycles

    def predict(self, diverged: DivergedSet) -> Prediction:
        """Predict unit order and error type from a diverged SC set."""
        index = self.table.mapper.map(diverged)
        if index >= len(self.table.entries):
            entry = self.table.default_entry
            from_default = True
        else:
            entry = self.table.entries[index]
            from_default = False
        etype = ErrorType.HARD if entry.predict_hard else ErrorType.SOFT
        return Prediction(units=entry.units, error_type=etype,
                          from_default=from_default)

    def predict_record(self, record: ErrorRecord) -> Prediction:
        """Convenience: predict from an error record's DSR."""
        return self.predict(record.diverged)


def train_predictor(records: list[ErrorRecord], fine: bool = False,
                    top_k: int | None = None,
                    stats: SignatureStats | None = None) -> ErrorCorrelationPredictor:
    """Train a static predictor from an error dataset.

    Args:
        records: training errors (from the fault-injection campaign).
        fine: use the 13-unit taxonomy instead of the coarse 7-unit one.
        top_k: store only the K most likely units per entry (paper
            Section V-C); None stores the full unit order.
        stats: pre-computed signature statistics, if available.
    """
    stats = stats if stats is not None else SignatureStats.from_records(records, fine)
    order = default_unit_order(fine)
    entries: list[tuple[DivergedSet, TableEntry]] = []
    for key in stats.diverged_sets:
        scores = stats.set_probabilities(key)
        entry = TableEntry(
            units=rank_units(scores, order, top_k),
            predict_hard=type_bit(stats.type_probabilities(key)),
        )
        entries.append((key, entry))
    table = PredictionTable(
        entries=entries,
        default_entry=build_default_entry(order, top_k),
        n_units=len(order),
    )
    return ErrorCorrelationPredictor(table, fine)


class DynamicPredictor(ErrorCorrelationPredictor):
    """A dynamic variant that updates its table from field feedback.

    The paper's Discussion (Section VII) notes that the table *could*
    be updated with error history, branch-predictor style, but argues
    errors are too rare for history to beat static training.  This
    class implements that variant for the ablation study: after each
    diagnosed error, :meth:`update` folds the confirmed (unit, type)
    back into the histograms and re-ranks the affected entry.
    """

    def __init__(self, table: PredictionTable, fine: bool,
                 stats: SignatureStats, top_k: int | None):
        super().__init__(table, fine)
        self._stats = stats
        self._top_k = top_k

    @classmethod
    def train(cls, records: list[ErrorRecord], fine: bool = False,
              top_k: int | None = None) -> "DynamicPredictor":
        """Train like the static predictor but keep histograms live."""
        stats = SignatureStats.from_records(records, fine)
        static = train_predictor(records, fine, top_k, stats=stats)
        return cls(static.table, fine, stats, top_k)

    def update(self, record: ErrorRecord) -> None:
        """Fold one diagnosed error back into the prediction table."""
        self._stats.add(record)
        key = record.diverged
        order = default_unit_order(self.fine)
        entry = TableEntry(
            units=rank_units(self._stats.set_probabilities(key), order, self._top_k),
            predict_hard=type_bit(self._stats.type_probabilities(key)),
        )
        index = self.table.mapper.map(key)
        if index >= len(self.table.entries):
            # A genuinely new DSR value: grow the table (hardware would
            # need a spare entry pool; the ablation allows it).
            self.table.mapper._index[key] = len(self.table.entries)
            self.table.mapper.default_index += 1
            self.table.entries.append(entry)
        else:
            self.table.entries[index] = entry


def location_accuracy(predictor: ErrorCorrelationPredictor,
                      records: list[ErrorRecord]) -> float:
    """P(faulty unit is in the predicted unit list) over hard errors.

    This is the paper's location prediction accuracy (Figs 12 and 15):
    the probability of finding the faulty unit among the predicted
    units, evaluated on errors whose ground truth is hard (location
    only matters when a stuck-at is actually present).
    """
    hard = [r for r in records if r.error_type is ErrorType.HARD]
    if not hard:
        return 0.0
    hits = sum(
        1 for r in hard
        if r.unit_for(predictor.fine) in predictor.predict_record(r).units
    )
    return hits / len(hard)


def type_accuracy(predictor: ErrorCorrelationPredictor,
                  records: list[ErrorRecord]) -> dict[str, float]:
    """Soft/hard/overall type prediction accuracy (paper Table III)."""
    correct = {ErrorType.SOFT: 0, ErrorType.HARD: 0}
    totals = {ErrorType.SOFT: 0, ErrorType.HARD: 0}
    for record in records:
        truth = record.error_type
        totals[truth] += 1
        if predictor.predict_record(record).error_type is truth:
            correct[truth] += 1
    overall_total = sum(totals.values())
    overall_correct = sum(correct.values())
    return {
        "soft": correct[ErrorType.SOFT] / totals[ErrorType.SOFT] if totals[ErrorType.SOFT] else 0.0,
        "hard": correct[ErrorType.HARD] / totals[ErrorType.HARD] if totals[ErrorType.HARD] else 0.0,
        "overall": overall_correct / overall_total if overall_total else 0.0,
    }
