"""Diverged-SC-set signature statistics.

The heart of the paper's observation (Section III-A): for each CPU
unit, the histogram of diverged signal-category sets — collected over
all errors whose fault originated in that unit — forms a *signature*.
If signatures differ between units, the error's origin is predictable
from the DSR alone; if soft and hard signatures differ, so is its type.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..faults.models import ErrorRecord, ErrorType

#: A diverged SC set is a frozen set of SC indices (DSR bit positions).
DivergedSet = frozenset


@dataclass
class SignatureStats:
    """Histograms over diverged SC sets, per unit and per error type.

    Attributes:
        fine: whether units follow the 13-unit taxonomy.
        set_unit_counts: diverged set -> unit -> error count.
        set_type_counts: diverged set -> error type -> count.
        unit_totals: unit -> total errors.
    """

    fine: bool = False
    set_unit_counts: dict[DivergedSet, Counter] = field(default_factory=dict)
    set_type_counts: dict[DivergedSet, Counter] = field(default_factory=dict)
    unit_totals: Counter = field(default_factory=Counter)

    @classmethod
    def from_records(cls, records: list[ErrorRecord], fine: bool = False) -> "SignatureStats":
        """Accumulate signature statistics from an error dataset."""
        stats = cls(fine=fine)
        for record in records:
            stats.add(record)
        return stats

    def add(self, record: ErrorRecord) -> None:
        """Add one error to the histograms."""
        key = record.diverged
        unit = record.unit_for(self.fine)
        self.set_unit_counts.setdefault(key, Counter())[unit] += 1
        self.set_type_counts.setdefault(key, Counter())[record.error_type] += 1
        self.unit_totals[unit] += 1

    # -- distributions --------------------------------------------------------

    @property
    def diverged_sets(self) -> list[DivergedSet]:
        """All distinct diverged SC sets, in a canonical order."""
        return sorted(self.set_unit_counts, key=lambda s: (len(s), sorted(s)))

    def n_sets(self) -> int:
        """Number of distinct diverged SC sets (paper: ~1200)."""
        return len(self.set_unit_counts)

    def unit_distribution(self, unit: str,
                          error_type: ErrorType | None = None,
                          records: list[ErrorRecord] | None = None,
                          ) -> dict[DivergedSet, float]:
        """P(diverged set | fault in ``unit`` [, error type]).

        This is the per-unit probability distribution plotted in the
        paper's Figures 4 and 5.  When ``error_type`` is given the
        distribution is restricted to that class, which requires the
        originating records (pass ``records``); otherwise it is
        computed from the accumulated histograms.
        """
        if error_type is None:
            counts = {
                key: units[unit]
                for key, units in self.set_unit_counts.items()
                if units[unit]
            }
        else:
            if records is None:
                raise ValueError("per-type distributions need the error records")
            counts = Counter(
                r.diverged for r in records
                if r.unit_for(self.fine) == unit and r.error_type is error_type
            )
        total = sum(counts.values())
        if not total:
            return {}
        return {key: count / total for key, count in counts.items()}

    def set_probabilities(self, key: DivergedSet) -> dict[str, float]:
        """P(unit | diverged set): the per-entry location scores (Fig 10a)."""
        units = self.set_unit_counts.get(key)
        if not units:
            return {}
        total = sum(units.values())
        return {unit: count / total for unit, count in units.items()}

    def type_probabilities(self, key: DivergedSet) -> dict[ErrorType, float]:
        """P(error type | diverged set): the per-entry type scores."""
        types = self.set_type_counts.get(key)
        if not types:
            return {}
        total = sum(types.values())
        return {etype: count / total for etype, count in types.items()}
