"""The prediction table and its hardware-facing registers.

Architecture (paper Fig. 6 and Fig. 10b):

* the checker's per-SC OR-reduction trees feed a T-bit **Divergence
  Status Register (DSR)** — one bit per signal category;
* an **address mapping** compresses the observed DSR values into a
  dense index (the paper sees ~1200 distinct diverged SC sets, so an
  11-bit **Prediction Table Address Register (PTAR)** suffices);
* each table entry stores the predicted CPU units in descending score
  order (3 bits per unit in the 7-unit organisation) plus one error
  type bit; a final default entry catches never-observed DSR values
  and predicts *hard* with the default unit order (fail-safe).

The table contents are static: they are computed once from training
data and never change in the field, so the table can live in ECC-
protected off-chip memory (Section V-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..faults.models import ErrorType
from .signatures import DivergedSet

#: Prediction-table access latency in cycles, by placement (Table II).
ON_CHIP_ACCESS_CYCLES = 2
OFF_CHIP_ACCESS_CYCLES = 100


@dataclass(frozen=True)
class TableEntry:
    """One prediction table entry.

    Attributes:
        units: predicted CPU units, most likely first (possibly
            truncated to the top-K).
        predict_hard: the 1-bit error type prediction.
    """

    units: tuple[str, ...]
    predict_hard: bool


class AddressMapper:
    """DSR -> PTAR mapping over the observed diverged SC sets.

    Unobserved DSR values map to the default index (the last entry),
    mirroring the paper's extra catch-all entry.
    """

    def __init__(self, keys: list[DivergedSet]):
        self._index: dict[DivergedSet, int] = {k: i for i, k in enumerate(keys)}
        self.default_index = len(keys)

    def __len__(self) -> int:
        return len(self._index)

    def map(self, key: DivergedSet) -> int:
        """PTAR value for a diverged SC set."""
        return self._index.get(key, self.default_index)

    @property
    def ptar_bits(self) -> int:
        """Width of the PTAR register (11 bits for ~1200 sets)."""
        return max(1, math.ceil(math.log2(self.default_index + 1)))


class PredictionTable:
    """The static prediction table plus its address mapper."""

    def __init__(self, entries: list[tuple[DivergedSet, TableEntry]],
                 default_entry: TableEntry, n_units: int,
                 access_cycles: int = ON_CHIP_ACCESS_CYCLES):
        self.mapper = AddressMapper([key for key, _ in entries])
        self.entries: list[TableEntry] = [entry for _, entry in entries]
        self.default_entry = default_entry
        self.n_units = n_units
        self.access_cycles = access_cycles

    def __len__(self) -> int:
        """Number of entries including the default entry."""
        return len(self.entries) + 1

    def lookup(self, key: DivergedSet) -> TableEntry:
        """Read the entry for a diverged SC set (default if unobserved)."""
        index = self.mapper.map(key)
        if index >= len(self.entries):
            return self.default_entry
        return self.entries[index]

    # -- storage accounting (Section V-B / V-C) ----------------------------

    @property
    def unit_id_bits(self) -> int:
        """Bits per unit identifier (3 for 7 units, 4 for 13)."""
        return max(1, math.ceil(math.log2(self.n_units)))

    @property
    def entry_bits(self) -> int:
        """Worst-case entry width: location slots plus the type bit."""
        slots = max((len(e.units) for e in self.entries), default=0)
        slots = max(slots, len(self.default_entry.units))
        return slots * self.unit_id_bits + 1

    @property
    def size_bytes(self) -> float:
        """Total table storage in bytes (paper: ~3.2 KB for 7 units)."""
        return len(self) * self.entry_bits / 8

    def placed(self, off_chip: bool) -> "PredictionTable":
        """A copy of this table with the given placement latency."""
        clone = PredictionTable.__new__(PredictionTable)
        clone.mapper = self.mapper
        clone.entries = self.entries
        clone.default_entry = self.default_entry
        clone.n_units = self.n_units
        clone.access_cycles = (
            OFF_CHIP_ACCESS_CYCLES if off_chip else ON_CHIP_ACCESS_CYCLES)
        return clone


#: Table wire-payload schema tag (bump on incompatible shape changes).
TABLE_PAYLOAD_SCHEMA = 1


def table_to_payload(table: PredictionTable, fine: bool) -> dict:
    """Serialise a trained table into a JSON-able payload.

    The payload carries the address mapping (diverged SC sets in PTAR
    order) alongside the entries, so a client can rebuild the complete
    lookup structure — the campaign service ships this from ``GET
    /table`` to fleet clients that want local lookups.
    """
    keys = sorted(table.mapper._index, key=table.mapper.map)
    return {
        "schema": TABLE_PAYLOAD_SCHEMA,
        "fine": bool(fine),
        "n_units": table.n_units,
        "access_cycles": table.access_cycles,
        "entries": [
            {"dsr": sorted(key),
             "units": list(entry.units),
             "hard": entry.predict_hard}
            for key, entry in zip(keys, table.entries)
        ],
        "default": {"units": list(table.default_entry.units),
                    "hard": table.default_entry.predict_hard},
    }


def table_from_payload(payload: dict) -> tuple[PredictionTable, bool]:
    """Rebuild ``(table, fine)`` from :func:`table_to_payload` output.

    Round-trips exactly: lookups (including the default fall-through
    for unobserved DSR values) match the original table entry for
    entry, which is what lets an HTTP-served table answer identically
    to one trained offline.
    """
    if payload.get("schema") != TABLE_PAYLOAD_SCHEMA:
        raise ValueError(
            f"unsupported table payload schema {payload.get('schema')!r} "
            f"(expected {TABLE_PAYLOAD_SCHEMA})")
    entries = [
        (frozenset(int(sc) for sc in row["dsr"]),
         TableEntry(units=tuple(row["units"]), predict_hard=bool(row["hard"])))
        for row in payload["entries"]
    ]
    default = TableEntry(units=tuple(payload["default"]["units"]),
                         predict_hard=bool(payload["default"]["hard"]))
    table = PredictionTable(entries, default, n_units=int(payload["n_units"]),
                            access_cycles=int(payload["access_cycles"]))
    return table, bool(payload["fine"])


def rank_units(scores: dict[str, float], default_order: tuple[str, ...],
               top_k: int | None) -> tuple[str, ...]:
    """Rank units by descending score; complete with the default order.

    Units with non-zero scores come first (descending, ties broken by
    the default order for determinism), then the remaining units in
    default order — so the full list always prescribes a complete test
    order, and a ``top_k`` of the unit count is identical to the full
    prediction.  ``top_k`` truncates the list to K slots.
    """
    order_index = {u: i for i, u in enumerate(default_order)}
    scored = sorted(
        (u for u in scores if scores[u] > 0),
        key=lambda u: (-scores[u], order_index.get(u, len(order_index))),
    )
    rest = [u for u in default_order if u not in scored]
    full = tuple(scored + rest)
    return full if top_k is None else full[:top_k]


def build_default_entry(default_order: tuple[str, ...],
                        top_k: int | None) -> TableEntry:
    """The fail-safe catch-all entry: hard error, default unit order."""
    units = default_order if top_k is None else default_order[:top_k]
    return TableEntry(units=tuple(units), predict_hard=True)


def type_bit(type_probs: dict[ErrorType, float]) -> bool:
    """The entry's error type bit: 1 (hard) when hard is more likely.

    Ties predict hard — the conservative direction, since a predicted-
    hard error always runs the full diagnostic.
    """
    hard = type_probs.get(ErrorType.HARD, 0.0)
    soft = type_probs.get(ErrorType.SOFT, 0.0)
    return hard >= soft
