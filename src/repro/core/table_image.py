"""Binary memory image of the prediction table.

The paper keeps the prediction table in ECC-protected (off-chip)
memory rather than dedicated hardware.  This module packs a trained
:class:`~repro.core.table.PredictionTable` into the exact bit-level
image the error handler software would read — fixed-width entries of
``slots * unit_id_bits + 1`` bits, PTAR-indexed, the catch-all default
entry last — and unpacks it again, so the storage numbers quoted in
Section V-B correspond to real bytes.

Layout per entry (LSB first)::

    [0]                 error type bit (1 = hard)
    [1 .. slots*B]      unit ids, most likely first, B bits each;
                        the all-ones id pads unused slots
"""

from __future__ import annotations

from dataclasses import dataclass

from .predictor import ErrorCorrelationPredictor, default_unit_order
from .table import PredictionTable, TableEntry


@dataclass(frozen=True)
class TableImage:
    """A packed prediction table.

    Attributes:
        data: the raw bytes.
        n_entries: entry count including the default entry.
        slots: unit slots per entry.
        unit_bits: bits per unit id.
        fine: taxonomy of the unit id space.
    """

    data: bytes
    n_entries: int
    slots: int
    unit_bits: int
    fine: bool

    @property
    def entry_bits(self) -> int:
        """Fixed entry width in bits."""
        return self.slots * self.unit_bits + 1

    def __len__(self) -> int:
        return len(self.data)


def pack_table(predictor: ErrorCorrelationPredictor) -> TableImage:
    """Serialise a trained predictor's table into its memory image."""
    table = predictor.table
    units = default_unit_order(predictor.fine)
    unit_index = {u: i for i, u in enumerate(units)}
    unit_bits = table.unit_id_bits
    pad = (1 << unit_bits) - 1
    slots = max(
        [len(e.units) for e in table.entries] + [len(table.default_entry.units)]
    )
    entry_bits = slots * unit_bits + 1

    bits = 0
    position = 0
    for entry in list(table.entries) + [table.default_entry]:
        word = 1 if entry.predict_hard else 0
        for slot in range(slots):
            if slot < len(entry.units):
                uid = unit_index[entry.units[slot]]
            else:
                uid = pad
            word |= uid << (1 + slot * unit_bits)
        bits |= word << position
        position += entry_bits

    n_entries = len(table.entries) + 1
    n_bytes = (n_entries * entry_bits + 7) // 8
    return TableImage(
        data=bits.to_bytes(n_bytes, "little"),
        n_entries=n_entries,
        slots=slots,
        unit_bits=unit_bits,
        fine=predictor.fine,
    )


def unpack_entry(image: TableImage, index: int) -> TableEntry:
    """Read one entry back out of the packed image."""
    if not 0 <= index < image.n_entries:
        raise IndexError(f"entry {index} out of range (0..{image.n_entries - 1})")
    bits = int.from_bytes(image.data, "little")
    entry_bits = image.entry_bits
    word = (bits >> (index * entry_bits)) & ((1 << entry_bits) - 1)
    predict_hard = bool(word & 1)
    units = default_unit_order(image.fine)
    pad = (1 << image.unit_bits) - 1
    decoded = []
    for slot in range(image.slots):
        uid = (word >> (1 + slot * image.unit_bits)) & pad
        if uid == pad:
            break
        decoded.append(units[uid])
    return TableEntry(units=tuple(decoded), predict_hard=predict_hard)


def unpack_table(image: TableImage,
                 mapper_keys: list[frozenset]) -> PredictionTable:
    """Rebuild a full :class:`PredictionTable` from an image.

    ``mapper_keys`` are the diverged SC sets in PTAR order (the
    address-mapping contents, which live in hardware, not in the
    table image).
    """
    if len(mapper_keys) != image.n_entries - 1:
        raise ValueError("mapper key count must match non-default entries")
    entries = [
        (key, unpack_entry(image, i)) for i, key in enumerate(mapper_keys)
    ]
    default = unpack_entry(image, image.n_entries - 1)
    n_units = len(default_unit_order(image.fine))
    return PredictionTable(entries, default, n_units=n_units)
