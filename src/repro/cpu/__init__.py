"""Flip-flop-accurate SR5 CPU substrate: ISA, assembler, core, memory."""

from .assembler import Assembler, AssemblerError, Program, assemble
from .core import NUM_PORTS, NUM_SCS, Cpu
from .isa import Instruction, Op, decode
from .memory import InputStream, Memory
from .units import (
    COARSE_UNITS,
    FINE_UNITS,
    REGISTRY,
    TOTAL_FLOPS,
    FlopRef,
    all_flops,
    coarse_unit,
    flops_of_unit,
    unit_flop_counts,
)

__all__ = [
    "Assembler", "AssemblerError", "Program", "assemble",
    "Cpu", "NUM_PORTS", "NUM_SCS",
    "Instruction", "Op", "decode",
    "InputStream", "Memory",
    "COARSE_UNITS", "FINE_UNITS", "REGISTRY", "TOTAL_FLOPS",
    "FlopRef", "all_flops", "coarse_unit", "flops_of_unit", "unit_flop_counts",
]
