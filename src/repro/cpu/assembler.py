"""Two-pass assembler for the SR5 ISA.

The assembler accepts a conventional assembly dialect::

    ; comment                  # comment
    .org 0x20                  ; set location counter (byte address)
    .word 1, 2, 3              ; emit literal words
    .space 8                   ; reserve 8 zeroed words
    label:
        addi  r1, r0, 42
        ld    r2, 4(r3)        ; loads/stores use offset(base)
        beq   r1, r2, label
        jal   lr, subroutine
        lui   r4, 0x1234
        out   r1, 0            ; write r1 to output port 0
        halt

Register names are ``r0``..``r15`` plus the aliases ``zero``, ``sp``
and ``lr``.  Immediates may be decimal, hex (``0x``) or a label name
(branches and JAL take label targets and the assembler computes the
relative word offset).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .isa import (
    ALU_RI_OPS,
    ALU_RR_OPS,
    BRANCH_OPS,
    NUM_REGS,
    REG_ALIASES,
    Instruction,
    Op,
)


class AssemblerError(ValueError):
    """Raised on any syntax or semantic error, with line information."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


@dataclass
class Program:
    """An assembled program image.

    Attributes:
        words: dense memory image, word-indexed from address 0.
        symbols: label name to byte address.
        entry: byte address of the first instruction (label ``_start``
            when present, otherwise 0).
    """

    words: list[int]
    symbols: dict[str, int] = field(default_factory=dict)
    entry: int = 0

    def __len__(self) -> int:
        return len(self.words)


_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


def _parse_reg(token: str, lineno: int) -> int:
    token = token.lower()
    if token in REG_ALIASES:
        return REG_ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        idx = int(token[1:])
        if 0 <= idx < NUM_REGS:
            return idx
    raise AssemblerError(lineno, f"bad register {token!r}")


def _parse_int(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(lineno, f"bad integer {token!r}") from None


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self) -> None:
        self._symbols: dict[str, int] = {}

    def assemble(self, source: str) -> Program:
        """Assemble ``source`` and return the program image."""
        lines = self._tokenize(source)
        self._symbols = {}
        self._layout(lines)
        image = self._emit(lines)
        entry = self._symbols.get("_start", 0)
        return Program(words=image, symbols=dict(self._symbols), entry=entry)

    # -- pass 0: tokenization ------------------------------------------------

    @staticmethod
    def _tokenize(source: str) -> list[tuple[int, str]]:
        out = []
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw.split(";")[0].split("#")[0].strip()
            if line:
                out.append((lineno, line))
        return out

    # -- pass 1: symbol layout -----------------------------------------------

    def _layout(self, lines: list[tuple[int, str]]) -> None:
        addr = 0
        for lineno, line in lines:
            while ":" in line:
                label, _, line = line.partition(":")
                label = label.strip()
                if not label.isidentifier() and not label.startswith("_"):
                    raise AssemblerError(lineno, f"bad label {label!r}")
                if label in self._symbols:
                    raise AssemblerError(lineno, f"duplicate label {label!r}")
                self._symbols[label] = addr
                line = line.strip()
            if not line:
                continue
            addr = self._advance(addr, line, lineno)

    def _advance(self, addr: int, line: str, lineno: int) -> int:
        mnemonic = line.split()[0].lower()
        if mnemonic == ".org":
            target = _parse_int(line.split()[1], lineno)
            if target < addr:
                raise AssemblerError(lineno, ".org may not move backwards")
            if target % 4:
                raise AssemblerError(lineno, ".org must be word aligned")
            return target
        if mnemonic == ".word":
            count = len(line[len(".word"):].split(","))
            return addr + 4 * count
        if mnemonic == ".space":
            return addr + 4 * _parse_int(line.split()[1], lineno)
        return addr + 4

    # -- pass 2: emission ----------------------------------------------------

    def _emit(self, lines: list[tuple[int, str]]) -> list[int]:
        image: dict[int, int] = {}
        addr = 0
        for lineno, line in lines:
            while ":" in line:
                _, _, line = line.partition(":")
                line = line.strip()
            if not line:
                continue
            mnemonic = line.split()[0].lower()
            if mnemonic == ".org":
                addr = _parse_int(line.split()[1], lineno)
                continue
            if mnemonic == ".word":
                for tok in line[len(".word"):].split(","):
                    image[addr // 4] = self._resolve_value(tok.strip(), lineno) & 0xFFFFFFFF
                    addr += 4
                continue
            if mnemonic == ".space":
                for _ in range(_parse_int(line.split()[1], lineno)):
                    image[addr // 4] = 0
                    addr += 4
                continue
            instr = self._parse_instruction(line, addr, lineno)
            image[addr // 4] = instr.encode()
            addr += 4
        size = max(image) + 1 if image else 0
        return [image.get(i, 0) for i in range(size)]

    def _resolve_value(self, token: str, lineno: int) -> int:
        if token in self._symbols:
            return self._symbols[token]
        return _parse_int(token, lineno)

    def _resolve_offset(self, token: str, pc_next: int, lineno: int) -> int:
        """Branch/JAL offset in words relative to the next instruction."""
        if token in self._symbols:
            return (self._symbols[token] - pc_next) // 4
        return _parse_int(token, lineno)

    def _parse_instruction(self, line: str, addr: int, lineno: int) -> Instruction:
        parts = line.replace(",", " ").split()
        mnemonic = parts[0].upper()
        args = parts[1:]
        try:
            op = Op[mnemonic]
        except KeyError:
            raise AssemblerError(lineno, f"unknown mnemonic {mnemonic!r}") from None

        def want(n: int) -> None:
            if len(args) != n:
                raise AssemblerError(lineno, f"{mnemonic} takes {n} operands, got {len(args)}")

        if op in ALU_RR_OPS:
            want(3)
            return Instruction(op, rd=_parse_reg(args[0], lineno),
                               ra=_parse_reg(args[1], lineno), rb=_parse_reg(args[2], lineno))
        if op in ALU_RI_OPS:
            want(3)
            return Instruction(op, rd=_parse_reg(args[0], lineno),
                               ra=_parse_reg(args[1], lineno),
                               imm=self._resolve_value(args[2], lineno))
        if op == Op.LUI:
            want(2)
            return Instruction(op, rd=_parse_reg(args[0], lineno),
                               imm=self._resolve_value(args[1], lineno))
        if op in (Op.LD, Op.LDB):
            want(2)
            base, off = self._parse_mem(args[1], lineno)
            return Instruction(op, rd=_parse_reg(args[0], lineno), ra=base, imm=off)
        if op in (Op.ST, Op.STB):
            want(2)
            base, off = self._parse_mem(args[1], lineno)
            return Instruction(op, rb=_parse_reg(args[0], lineno), ra=base, imm=off)
        if op in BRANCH_OPS:
            want(3)
            return Instruction(op, ra=_parse_reg(args[0], lineno),
                               rb=_parse_reg(args[1], lineno),
                               imm=self._resolve_offset(args[2], addr + 4, lineno))
        if op == Op.JAL:
            want(2)
            return Instruction(op, rd=_parse_reg(args[0], lineno),
                               imm=self._resolve_offset(args[1], addr + 4, lineno))
        if op == Op.JALR:
            want(3)
            return Instruction(op, rd=_parse_reg(args[0], lineno),
                               ra=_parse_reg(args[1], lineno),
                               imm=self._resolve_value(args[2], lineno))
        if op == Op.IN:
            want(2)
            return Instruction(op, rd=_parse_reg(args[0], lineno),
                               imm=self._resolve_value(args[1], lineno))
        if op in (Op.OUT, Op.CSRW):
            want(2)
            return Instruction(op, rb=_parse_reg(args[0], lineno),
                               imm=self._resolve_value(args[1], lineno))
        if op == Op.CSRR:
            want(2)
            return Instruction(op, rd=_parse_reg(args[0], lineno),
                               imm=self._resolve_value(args[1], lineno))
        if op in (Op.NOP, Op.HALT):
            want(0)
            return Instruction(op)
        raise AssemblerError(lineno, f"unhandled mnemonic {mnemonic!r}")

    def _parse_mem(self, token: str, lineno: int) -> tuple[int, int]:
        match = _MEM_RE.match(token)
        if not match:
            raise AssemblerError(lineno, f"bad memory operand {token!r}; expected off(reg)")
        off = self._resolve_value(match.group(1), lineno)
        base = _parse_reg(match.group(2), lineno)
        return base, off


def assemble(source: str) -> Program:
    """Module-level convenience wrapper around :class:`Assembler`."""
    return Assembler().assemble(source)
