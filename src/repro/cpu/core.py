"""Flip-flop-accurate model of the SR5 safety core.

The core is a three-stage-execution, five-slot pipeline::

    IF1 (IMC fetch) -> IF2 (decode latch) -> DX (decode/execute) -> MW
    (memory/writeback, with a one-entry draining store buffer)

Every sequential element is an instance attribute named after its
:class:`repro.cpu.units.RegSpec`, so faults can be injected into any
individual flip-flop and snapshots are exact microarchitectural state.

Cycle semantics: ``step()`` first derives the output port view from the
*current* flip-flop state, then computes the next state.  A transient
fault flips a bit before a cycle's ``step``; a stuck-at fault forces a
bit before *every* ``step``.

``step()`` returns the *compact* port tuple (:meth:`Cpu.port_state`):
the :data:`NUM_PORTS` underlying interface registers with only their
SC-visible bits kept.  Masked-port equality is bijective with equality
of the expanded 62-signal-category vector (every SC is a fixed bit
field of exactly one port entry), so lockstep comparison can run on the
compact tuple and expand to signal categories only at a divergence —
see :func:`repro.lockstep.categories.expand_ports`.
"""

from __future__ import annotations

from operator import itemgetter

from .isa import (
    CAUSE_BKPT,
    CAUSE_ILLEGAL,
    CAUSE_IRQ,
    CAUSE_MISALIGNED,
    CAUSE_MPU,
    CAUSE_WATCH,
    CSR_READ_REG,
    CSR_WRITE_REG,
    EXC_VECTOR,
    STATUS_CNT_EN,
    VALID_OPCODES,
    Op,
)
from .memory import InputStream, Memory
from .units import REGISTRY

MASK32 = 0xFFFFFFFF

_SNAP_NAMES: tuple[str, ...] = tuple(spec.name for spec in REGISTRY)
#: C-level bulk fetch of every flip-flop attribute, in REGISTRY order.
_SNAP_GET = itemgetter(*_SNAP_NAMES)
_RF_NAMES: tuple[str, ...] = ("rf0",) + tuple(f"rf{i}" for i in range(1, 16))
_BTB_TAG = ("btb_tag0", "btb_tag1", "btb_tag2", "btb_tag3")
_BTB_TGT = ("btb_tgt0", "btb_tgt1", "btb_tgt2", "btb_tgt3")
_MPU_BASE = ("mpu_base0", "mpu_base1", "mpu_base2", "mpu_base3")
_MPU_LIMIT = ("mpu_limit0", "mpu_limit1", "mpu_limit2", "mpu_limit3")

#: CSRW targets: csr number -> (register, width mask).  The table lives
#: in :mod:`repro.cpu.isa` (:data:`CSR_WRITE_REG`) so the batched fault
#: simulator shares it; the alias keeps the core's historical name.
_CSR_WRITE: dict[int, tuple[str, int]] = dict(CSR_WRITE_REG)

# lsu_op encodings (3-bit register field).
_LSU_NONE, _LSU_LD, _LSU_LDB, _LSU_ST, _LSU_STB, _LSU_IN, _LSU_OUT = range(7)

_OP_LD, _OP_LDB, _OP_ST, _OP_STB = int(Op.LD), int(Op.LDB), int(Op.ST), int(Op.STB)
_OP_LUI, _OP_JAL, _OP_JALR = int(Op.LUI), int(Op.JAL), int(Op.JALR)
_OP_IN, _OP_OUT, _OP_CSRR, _OP_CSRW = int(Op.IN), int(Op.OUT), int(Op.CSRR), int(Op.CSRW)
_OP_NOP, _OP_HALT = int(Op.NOP), int(Op.HALT)
_OP_MUL, _OP_MULH = int(Op.MUL), int(Op.MULH)

#: Number of signal categories on the output port boundary (paper: 62).
NUM_SCS = 62

#: Number of entries in the compact port tuple (:meth:`Cpu.port_state`).
NUM_PORTS = 18


def _signed(value: int) -> int:
    """32-bit unsigned to Python signed."""
    return value - 0x100000000 if value & 0x80000000 else value


class AccessTracer(dict):
    """Instance-``__dict__`` replacement recording per-cycle def/use sets.

    ``step()`` routes every flip-flop access through ``d[...]``
    subscripts on ``self.__dict__``; swapping the instance dict for
    this subclass therefore observes exactly the registers a cycle
    read and wrote, with *zero* change to ``step()`` itself — when no
    tracer is attached the hot path still runs on a plain dict.

    Semantics (what the liveness pruner needs):

    * ``reads`` records *stale* reads only — a key read **before** any
      write to it in the armed window.  A read after a same-cycle
      write observes freshly computed state, so the old value was
      provably dead and must not count as a use.
    * ``writes`` records every key written.  A read-modify-write
      (``|=``/``^=``/increment) loads the old value first, so it lands
      in ``reads`` *and* ``writes`` — it can never masquerade as a
      killing overwrite.

    Attribute access (``self.mem``, ``setattr``) uses CPython's
    concrete-dict fast path and bypasses the overrides; only
    subscripted access is traced, which is exactly the flip-flop
    traffic inside ``step()``.
    """

    __slots__ = ("reads", "writes")

    def __init__(self, base: dict):
        super().__init__(base)
        self.reads: set[str] = set()
        self.writes: set[str] = set()

    def arm(self) -> None:
        """Clear both sets; call immediately before the traced step."""
        self.reads.clear()
        self.writes.clear()

    def __getitem__(self, key):
        if key not in self.writes:
            self.reads.add(key)
        return dict.__getitem__(self, key)

    def __setitem__(self, key, value) -> None:
        self.writes.add(key)
        dict.__setitem__(self, key, value)


class Cpu:
    """One SR5 core attached to a memory and a replicated input stream."""

    def __init__(self, memory: Memory, stimulus: InputStream | None = None,
                 entry: int = 0):
        self.mem = memory
        self.stim = stimulus if stimulus is not None else InputStream()
        self.rf0 = 0  # hardwired zero, not a flip-flop
        #: Optional observer called as ``hook(pc, value, rd, wen)`` once
        #: per retired instruction (mirrors the ret_* trace port).  Not
        #: part of the flip-flop state: survives reset/snapshot/restore.
        self.retire_hook = None
        self.reset(entry)

    def reset(self, entry: int = 0) -> None:
        """Bring every flip-flop to its deterministic reset value.

        Lockstep operation requires main and redundant cores to hold an
        identical microarchitectural state out of reset (Section II of
        the paper), which this guarantees by construction.
        """
        for spec in REGISTRY:
            setattr(self, spec.name, 0)
        self.pc = entry & MASK32

    # -- state capture ---------------------------------------------------

    def snapshot(self) -> tuple[int, ...]:
        """Full flip-flop state in canonical :data:`REGISTRY` order."""
        return _SNAP_GET(self.__dict__)

    def restore(self, state: tuple[int, ...]) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        self.__dict__.update(zip(_SNAP_NAMES, state))

    # -- access tracing (golden generation only) -------------------------

    def start_access_trace(self) -> AccessTracer:
        """Swap in an :class:`AccessTracer` as this core's ``__dict__``.

        Used only while recording a golden trace; injection-path cores
        never call this, so ``step()`` keeps its plain-dict speed.
        """
        tracer = AccessTracer(self.__dict__)
        self.__dict__ = tracer
        return tracer

    def stop_access_trace(self) -> None:
        """Restore an untraced plain ``__dict__`` (idempotent)."""
        current = self.__dict__
        if isinstance(current, AccessTracer):
            self.__dict__ = dict(current)

    # -- output ports ------------------------------------------------------

    def outputs(self) -> tuple[int, ...]:
        """The 62-signal-category output port vector for this cycle.

        Only genuine interface registers are visible at the sphere
        boundary, mirroring a real DCLS integration: the instruction
        and data bus interfaces, the unified external bus monitor, the
        peripheral I/O port, the ETM-style trace port, and two event
        lines.  Wide buses are split into byte or nibble SCs, which is
        how the paper reaches 62 categories on the Cortex-R5.
        """
        d = self.__dict__
        ia = d["imc_addr"]; da = d["dmc_addr"]; dw = d["dmc_wdata"]
        ba = d["bus_addr"]; bd = d["bus_data"]; io = d["io_out"]
        rp = d["ret_pc"]; rv = d["ret_val"]
        return (
            ia & 0xFF, (ia >> 8) & 0xFF, (ia >> 16) & 0xFF, (ia >> 24) & 0xFF,
            d["imc_valid"],
            d["imc_pred"],
            da & 0xF, (da >> 4) & 0xF, (da >> 8) & 0xF, (da >> 12) & 0xF,
            (da >> 16) & 0xF, (da >> 20) & 0xF, (da >> 24) & 0xF, (da >> 28) & 0xF,
            dw & 0xF, (dw >> 4) & 0xF, (dw >> 8) & 0xF, (dw >> 12) & 0xF,
            (dw >> 16) & 0xF, (dw >> 20) & 0xF, (dw >> 24) & 0xF, (dw >> 28) & 0xF,
            d["dmc_ctrl"],
            d["dmc_strb"],
            ba & 0xFF, (ba >> 8) & 0xFF, (ba >> 16) & 0xFF, (ba >> 24) & 0xFF,
            bd & 0xF, (bd >> 4) & 0xF, (bd >> 8) & 0xF, (bd >> 12) & 0xF,
            (bd >> 16) & 0xF, (bd >> 20) & 0xF, (bd >> 24) & 0xF, (bd >> 28) & 0xF,
            d["bus_ctrl"],
            io & 0xF, (io >> 4) & 0xF, (io >> 8) & 0xF, (io >> 12) & 0xF,
            (io >> 16) & 0xF, (io >> 20) & 0xF, (io >> 24) & 0xF, (io >> 28) & 0xF,
            d["io_out_v"],
            rp & 0xFF, (rp >> 8) & 0xFF, (rp >> 16) & 0xFF, (rp >> 24) & 0xFF,
            rv & 0xF, (rv >> 4) & 0xF, (rv >> 8) & 0xF, (rv >> 12) & 0xF,
            (rv >> 16) & 0xF, (rv >> 20) & 0xF, (rv >> 24) & 0xF, (rv >> 28) & 0xF,
            d["ret_rd"],
            d["ret_valid"],
            (d["status"] & 1) | (d["halted"] << 1),
            d["br_taken"] | (d["br_valid"] << 1),
        )

    def port_state(self) -> tuple[int, ...]:
        """The compact output port tuple: :data:`NUM_PORTS` masked registers.

        Each entry is one underlying interface register with only its
        SC-visible bits kept (``status`` keeps bit 0 only; every other
        port register is fully visible at the sphere boundary).  The
        expansion of this tuple through
        :func:`repro.lockstep.categories.expand_ports` is bit-for-bit
        the 62-SC vector of :meth:`outputs`, and because every signal
        category is a fixed bit field of exactly one entry here,
        compact-tuple equality is equivalent to SC-tuple equality.
        ``step()`` returns this cheap view; expand it only on
        divergence.
        """
        d = self.__dict__
        return (
            d["imc_addr"], d["imc_valid"], d["imc_pred"],
            d["dmc_addr"], d["dmc_wdata"], d["dmc_ctrl"], d["dmc_strb"],
            d["bus_addr"], d["bus_data"], d["bus_ctrl"],
            d["io_out"], d["io_out_v"],
            d["ret_pc"], d["ret_val"], d["ret_rd"], d["ret_valid"],
            (d["status"] & 1) | (d["halted"] << 1),
            d["br_taken"] | (d["br_valid"] << 1),
        )

    def arch_state(self) -> dict[str, int]:
        """The ISA-visible architectural state, keyed by ISA-level names.

        Used by the differential co-simulation layer
        (:mod:`repro.verify`) to compare the pipeline against the
        single-step reference model: architectural registers, flags,
        every software-writable CSR, the replicated-input cursor and
        the halt flag.  Deliberately excludes anything
        microarchitectural or timing-dependent (``pc`` fetch-ahead
        state, pipeline latches, BTB, interface registers, ``cyc``).
        """
        d = self.__dict__
        state = {f"r{i}": d[f"rf{i}"] for i in range(1, 16)}
        for key in ("flags", "sflags", "status", "cause", "epc", "scratch",
                    "cnt_branch", "cnt_mem", "dbg_bkpt0", "dbg_bkpt1",
                    "dbg_watch0", "dbg_ctrl", "irq_mask", "irq_pending",
                    "mpu_ctrl", "io_in", "io_in_idx", "halted"):
            state[key] = d[key]
        for i in range(4):
            state[f"mpu_base{i}"] = d[_MPU_BASE[i]]
            state[f"mpu_limit{i}"] = d[_MPU_LIMIT[i]]
        return state

    def pending_store(self) -> tuple[int, int, bool] | None:
        """The undrained store-buffer entry, or None.

        A store retired just before HALT stays in the one-entry store
        buffer forever; the *effective* architectural memory image is
        the shared memory with this write applied.
        """
        if self.sb_valid:
            return (self.sb_addr, self.sb_data, bool(self.sb_op))
        return None

    # -- one clock cycle -----------------------------------------------------

    def step(self) -> tuple[int, ...]:
        """Advance one clock; returns this cycle's compact port tuple.

        The return value is :meth:`port_state` of the pre-step state,
        inlined here because this is the simulator's innermost loop.
        """
        d = self.__dict__
        out = (
            d["imc_addr"], d["imc_valid"], d["imc_pred"],
            d["dmc_addr"], d["dmc_wdata"], d["dmc_ctrl"], d["dmc_strb"],
            d["bus_addr"], d["bus_data"], d["bus_ctrl"],
            d["io_out"], d["io_out_v"],
            d["ret_pc"], d["ret_val"], d["ret_rd"], d["ret_valid"],
            (d["status"] & 1) | (d["halted"] << 1),
            d["br_taken"] | (d["br_valid"] << 1),
        )
        if d["halted"]:
            return out
        mem = self.mem

        # ------------------ MW stage (older instruction) ------------------
        # The store buffer registers are only read here, so drains and
        # refills update them in place (no next-state temporaries).
        lsu_valid = d["lsu_valid"]
        sb_valid = d["sb_valid"]
        mw_valid = d["mw_valid"]
        d_read = d_write = False
        d_addr = d_waddr = 0
        d_wdata = 0
        load_data = 0
        d_byte_w = d_byte_r = False

        if lsu_valid or sb_valid:
            lsu_op = d["lsu_op"]; lsu_addr = d["lsu_addr"]
            sb_addr = d["sb_addr"]; sb_data = d["sb_data"]; sb_op = d["sb_op"]
            if lsu_valid:
                if lsu_op == _LSU_LD or lsu_op == _LSU_LDB:
                    if sb_valid and ((sb_addr ^ lsu_addr) & ~3) & MASK32 == 0:
                        # Drain the store buffer ahead of the aliasing load.
                        if sb_op:
                            mem.write_byte(sb_addr, sb_data)
                        else:
                            mem.write_word(sb_addr, sb_data)
                        d_write = True
                        d_waddr = sb_addr
                        d_wdata = sb_data
                        d_byte_w = bool(sb_op)
                        d["sb_valid"] = 0
                    if lsu_op == _LSU_LD:
                        load_data = mem.read_word(lsu_addr)
                    else:
                        load_data = mem.read_byte(lsu_addr)
                        d_byte_r = True
                    d_read = True
                    d_addr = lsu_addr
                elif lsu_op == _LSU_ST or lsu_op == _LSU_STB:
                    if sb_valid:
                        if sb_op:
                            mem.write_byte(sb_addr, sb_data)
                        else:
                            mem.write_word(sb_addr, sb_data)
                        d_write = True
                        d_waddr = sb_addr
                        d_wdata = sb_data
                        d_byte_w = bool(sb_op)
                    d["sb_addr"] = lsu_addr
                    d["sb_data"] = d["lsu_wdata"]
                    d["sb_op"] = 1 if lsu_op == _LSU_STB else 0
                    d["sb_valid"] = 1
                elif lsu_op == _LSU_IN:
                    load_data = self.stim.sample(d["io_in_idx"])
                    d["io_in"] = load_data
                    d["io_in_idx"] = (d["io_in_idx"] + 1) & 0xFFFF
                elif lsu_op == _LSU_OUT:
                    # The strobe toggles per OUT event so back-to-back writes
                    # of the same value remain observable at the port.
                    d["io_out"] = d["lsu_wdata"]
                    d["io_out_v"] ^= 1
            else:
                if sb_op:
                    mem.write_byte(sb_addr, sb_data)
                else:
                    mem.write_word(sb_addr, sb_data)
                d_write = True
                d_waddr = sb_addr
                d_wdata = sb_data
                d_byte_w = bool(sb_op)
                d["sb_valid"] = 0

        # Data memory controller interface registers.
        if d_read or d_write:
            d["dmc_addr"] = d_addr if d_read else d_waddr
            if d_write:
                d["dmc_wdata"] = d_wdata
            if d_read:
                d["dmc_rdata"] = load_data
            d["dmc_ctrl"] = (1 if d_read else 0) | (2 if d_write else 0) | 8
            prim_addr = d_addr if d_read else d_waddr
            prim_byte = d_byte_r if d_read else d_byte_w
            d["dmc_strb"] = (1 << (prim_addr & 3)) if prim_byte else 0xF
        else:
            # Unconditional clears: a fault-flipped bit in either
            # register must wash out next cycle, exactly as before.
            d["dmc_ctrl"] = 0
            d["dmc_strb"] = 0

        # Writeback and retire/trace port.
        bypass_rd = -1
        bypass_val = 0
        if mw_valid:
            value = load_data if d["mw_isload"] else d["mw_val"]
            if d["mw_wen"]:
                rd = d["mw_rd"]
                if rd:
                    d[_RF_NAMES[rd]] = value
                bypass_rd = rd
                bypass_val = value
            d["ret_pc"] = d["mw_pc"]
            d["ret_val"] = value
            d["ret_rd"] = d["mw_rd"]
            d["ret_valid"] = 1
            hook = d["retire_hook"]
            if hook is not None:
                hook(d["mw_pc"], value, d["mw_rd"], d["mw_wen"])
        else:
            d["ret_valid"] = 0

        # ------------------ DX stage ------------------
        if_valid = d["if_valid"]; if_pc = d["if_pc"]
        stall = False
        redirect = -1           # -1: no redirect
        halt_now = False

        n_mw_valid = 0
        n_lsu_valid = 0
        n_lsu_op = _LSU_NONE
        n_mw_wen = 0
        n_mw_isload = 0
        n_mw_rd = 0
        n_mw_val = 0
        n_br_valid = 0

        if if_valid:
            word = d["if_ir"]
            opnum = (word >> 26) & 0x3F
            seq_next = (if_pc + 4) & MASK32
            fetched_next = d["if_ptgt"] if d["if_pred"] else seq_next
            actual_next = seq_next

            exc_code = -1
            # Interrupts are auto-masked while the exception flag is set,
            # as on any real core (the handler would otherwise re-enter).
            if d["irq_pending"] & d["irq_mask"] and not d["status"] & 1:
                exc_code = CAUSE_IRQ
            elif d["dbg_ctrl"] & 3:
                ctrl = d["dbg_ctrl"]
                if (ctrl & 1 and if_pc == d["dbg_bkpt0"]) or \
                        (ctrl & 2 and if_pc == d["dbg_bkpt1"]):
                    exc_code = CAUSE_BKPT
            if exc_code < 0 and opnum not in VALID_OPCODES:
                exc_code = CAUSE_ILLEGAL

            if exc_code >= 0:
                d["cause"] = exc_code
                d["epc"] = if_pc
                d["status"] |= 1
                d["sflags"] = d["flags"]
                redirect = EXC_VECTOR
            else:
                rd = (word >> 22) & 0xF
                ra = (word >> 18) & 0xF
                rb = (word >> 14) & 0xF
                imm = (word & 0x1FFF) - (word & 0x2000)
                ra_val = bypass_val if ra == bypass_rd and ra else d[_RF_NAMES[ra]]
                rb_val = bypass_val if rb == bypass_rd and rb else d[_RF_NAMES[rb]]

                if 1 <= opnum <= 23 and opnum != _OP_MUL and opnum != _OP_MULH:
                    # Single-cycle ALU (register-register and immediate).
                    if opnum >= 16:
                        rb_val = imm & MASK32
                    res, carry, ovf = _alu(opnum, ra_val, rb_val)
                    n = (res >> 31) & 1
                    z = 1 if res == 0 else 0
                    d["flags"] = (n << 3) | (z << 2) | (carry << 1) | ovf
                    n_mw_valid = 1
                    n_mw_wen = 1
                    n_mw_rd = rd
                    n_mw_val = res
                elif opnum == _OP_MUL or opnum == _OP_MULH:
                    if not d["mul_pending"]:
                        d["mul_a"] = ra_val
                        d["mul_b"] = rb_val
                        d["mul_pending"] = 1
                        stall = True
                    else:
                        prod = d["mul_a"] * d["mul_b"]
                        res = (prod & MASK32) if opnum == _OP_MUL else ((prod >> 32) & MASK32)
                        d["mul_pending"] = 0
                        n = (res >> 31) & 1
                        z = 1 if res == 0 else 0
                        d["flags"] = (n << 3) | (z << 2)
                        n_mw_valid = 1
                        n_mw_wen = 1
                        n_mw_rd = rd
                        n_mw_val = res
                elif opnum == _OP_LUI:
                    n_mw_valid = 1
                    n_mw_wen = 1
                    n_mw_rd = rd
                    n_mw_val = (word & 0xFFFF) << 16
                elif _OP_LD <= opnum <= _OP_STB:
                    addr = (ra_val + imm) & MASK32
                    fault_code = -1
                    if (opnum == _OP_LD or opnum == _OP_ST) and addr & 3:
                        fault_code = CAUSE_MISALIGNED
                    elif d["dbg_ctrl"] & 4 and addr == d["dbg_watch0"]:
                        fault_code = CAUSE_WATCH
                    elif d["mpu_ctrl"]:
                        mc = d["mpu_ctrl"]
                        for region in range(4):
                            bits = (mc >> (2 * region)) & 3
                            if bits == 3 and \
                                    d[_MPU_BASE[region]] <= addr < d[_MPU_LIMIT[region]]:
                                fault_code = CAUSE_MPU
                                break
                    if fault_code >= 0:
                        d["cause"] = fault_code
                        d["epc"] = if_pc
                        d["status"] |= 1
                        d["sflags"] = d["flags"]
                        redirect = EXC_VECTOR
                    else:
                        if d["status"] & STATUS_CNT_EN:
                            d["cnt_mem"] = (d["cnt_mem"] + 1) & MASK32
                        n_lsu_valid = 1
                        d["lsu_addr"] = addr
                        if opnum == _OP_LD:
                            n_lsu_op = _LSU_LD
                        elif opnum == _OP_LDB:
                            n_lsu_op = _LSU_LDB
                        elif opnum == _OP_ST:
                            n_lsu_op = _LSU_ST
                            d["lsu_wdata"] = rb_val
                        else:
                            n_lsu_op = _LSU_STB
                            d["lsu_wdata"] = rb_val
                        is_load = opnum == _OP_LD or opnum == _OP_LDB
                        n_mw_valid = 1
                        n_mw_wen = 1 if is_load else 0
                        n_mw_isload = 1 if is_load else 0
                        n_mw_rd = rd
                        n_mw_val = addr
                elif 40 <= opnum <= 45:
                    if d["status"] & STATUS_CNT_EN:
                        d["cnt_branch"] = (d["cnt_branch"] + 1) & MASK32
                    taken = _branch_taken(opnum, ra_val, rb_val)
                    target = (seq_next + ((imm << 2) & MASK32)) & MASK32
                    d["br_target"] = target
                    d["br_taken"] = 1 if taken else 0
                    n_br_valid = 1
                    if taken:
                        actual_next = target
                        idx = (if_pc >> 2) & 3
                        d[_BTB_TAG[idx]] = if_pc
                        d[_BTB_TGT[idx]] = target
                        d["btb_v"] |= 1 << idx
                    elif d["if_pred"]:
                        idx = (if_pc >> 2) & 3
                        if d[_BTB_TAG[idx]] == if_pc:
                            d["btb_v"] &= ~(1 << idx) & 0xF
                    n_mw_valid = 1
                elif opnum == _OP_JAL or opnum == _OP_JALR:
                    if opnum == _OP_JAL:
                        off = (word & 0x1FFFF) - (word & 0x20000)
                        target = (seq_next + ((off << 2) & MASK32)) & MASK32
                    else:
                        target = (ra_val + imm) & MASK32 & ~3
                    actual_next = target
                    d["br_target"] = target
                    d["br_taken"] = 1
                    n_br_valid = 1
                    idx = (if_pc >> 2) & 3
                    d[_BTB_TAG[idx]] = if_pc
                    d[_BTB_TGT[idx]] = target
                    d["btb_v"] |= 1 << idx
                    n_mw_valid = 1
                    n_mw_wen = 1
                    n_mw_rd = rd
                    n_mw_val = seq_next
                elif opnum == _OP_IN:
                    n_lsu_valid = 1
                    n_lsu_op = _LSU_IN
                    d["lsu_addr"] = imm & MASK32
                    n_mw_valid = 1
                    n_mw_wen = 1
                    n_mw_isload = 1
                    n_mw_rd = rd
                elif opnum == _OP_OUT:
                    n_lsu_valid = 1
                    n_lsu_op = _LSU_OUT
                    d["lsu_addr"] = imm & MASK32
                    d["lsu_wdata"] = rb_val
                    n_mw_valid = 1
                elif opnum == _OP_CSRR:
                    n_mw_valid = 1
                    n_mw_wen = 1
                    n_mw_rd = rd
                    n_mw_val = self._csr_read(imm)
                elif opnum == _OP_CSRW:
                    target = _CSR_WRITE.get(imm)
                    if target is not None:
                        d[target[0]] = rb_val & target[1]
                    n_mw_valid = 1
                elif opnum == _OP_NOP:
                    n_mw_valid = 1
                elif opnum == _OP_HALT:
                    halt_now = True

                if not stall and not halt_now and redirect < 0 and actual_next != fetched_next:
                    redirect = actual_next

            if not stall:
                n_mw_pc = if_pc
            else:
                n_mw_pc = d["mw_pc"]
        else:
            n_mw_pc = d["mw_pc"]

        if not stall:
            d["mw_valid"] = n_mw_valid
            d["mw_wen"] = n_mw_wen
            d["mw_isload"] = n_mw_isload
            d["mw_rd"] = n_mw_rd
            d["mw_val"] = n_mw_val
            d["mw_pc"] = n_mw_pc
            d["lsu_valid"] = n_lsu_valid
            d["lsu_op"] = n_lsu_op
        else:
            d["mw_valid"] = 0
            d["lsu_valid"] = 0
            d["lsu_op"] = _LSU_NONE
        d["br_valid"] = n_br_valid

        # ------------------ IF stages ------------------
        fetch_active = False
        fetch_word = 0
        pc = d["pc"]
        if halt_now:
            d["halted"] = 1
            d["if_valid"] = 0
            d["imc_valid"] = 0
            d["imc_pred"] = 0
        elif redirect >= 0:
            d["pc"] = redirect
            d["if_valid"] = 0
            d["if_pred"] = 0
            d["imc_valid"] = 0
            d["imc_pred"] = 0
        elif not stall:
            # IF2: move the prefetch buffer into the decode latch.
            d["if_ir"] = d["imc_data"]
            d["if_pc"] = d["imc_addr"]
            d["if_valid"] = d["imc_valid"]
            d["if_pred"] = d["imc_pred"]
            d["if_ptgt"] = d["imc_ptgt"]
            # IF1: fetch at pc, with BTB next-fetch prediction.
            fetch_word = mem.read_word(pc)
            fetch_active = True
            d["imc_addr"] = pc
            d["imc_data"] = fetch_word
            d["imc_valid"] = 1
            idx = (pc >> 2) & 3
            if (d["btb_v"] >> idx) & 1 and d[_BTB_TAG[idx]] == pc:
                tgt = d[_BTB_TGT[idx]]
                d["pc"] = tgt
                d["imc_pred"] = 1
                d["imc_ptgt"] = tgt
            else:
                d["pc"] = (pc + 4) & MASK32
                d["imc_pred"] = 0

        # ------------------ BIU external bus view ------------------
        if d_read or d_write:
            d["bus_addr"] = d_addr if d_read else d_waddr
            d["bus_data"] = load_data if d_read else d_wdata
            d["bus_ctrl"] = 3 if d_write else 2
        elif fetch_active:
            d["bus_addr"] = pc
            d["bus_data"] = fetch_word
            d["bus_ctrl"] = 1
        else:
            d["bus_ctrl"] = 0

        d["cyc"] = (d["cyc"] + 1) & MASK32
        return out

    def _csr_read(self, num: int) -> int:
        """Read a control/status register by number (table-driven)."""
        name = CSR_READ_REG.get(num)
        return getattr(self, name) if name is not None else 0

    # -- convenience -----------------------------------------------------

    def run(self, max_cycles: int = 1_000_000) -> int:
        """Free-run until HALT or the cycle bound; returns cycles used."""
        for cycle in range(max_cycles):
            if self.halted:
                return cycle
            self.step()
        return max_cycles

    def reg(self, index: int) -> int:
        """Architectural register read (for tests and examples)."""
        if index == 0:
            return 0
        return getattr(self, _RF_NAMES[index])


def _alu(opnum: int, a: int, b: int) -> tuple[int, int, int]:
    """Single-cycle ALU: returns ``(result, carry, overflow)``."""
    if opnum == 1 or opnum == 16:       # ADD / ADDI
        full = a + b
        res = full & MASK32
        carry = 1 if full > MASK32 else 0
        ovf = 1 if (~(a ^ b) & (a ^ res)) & 0x80000000 else 0
        return res, carry, ovf
    if opnum == 2:                      # SUB
        full = a - b
        res = full & MASK32
        carry = 1 if a >= b else 0
        ovf = 1 if ((a ^ b) & (a ^ res)) & 0x80000000 else 0
        return res, carry, ovf
    if opnum == 3 or opnum == 17:       # AND / ANDI
        return a & b, 0, 0
    if opnum == 4 or opnum == 18:       # OR / ORI
        return a | b, 0, 0
    if opnum == 5 or opnum == 19:       # XOR / XORI
        return a ^ b, 0, 0
    if opnum == 6 or opnum == 20:       # SHL / SHLI
        return (a << (b & 31)) & MASK32, 0, 0
    if opnum == 7 or opnum == 21:       # SHR / SHRI
        return (a >> (b & 31)) & MASK32, 0, 0
    if opnum == 8 or opnum == 22:       # SRA / SRAI
        return (_signed(a) >> (b & 31)) & MASK32, 0, 0
    if opnum == 9 or opnum == 23:       # SLT / SLTI
        return (1 if _signed(a) < _signed(b) else 0), 0, 0
    if opnum == 10:                     # SLTU
        return (1 if a < b else 0), 0, 0
    return 0, 0, 0                      # NOP-class


def _branch_taken(opnum: int, a: int, b: int) -> bool:
    """Evaluate a conditional branch."""
    if opnum == 40:                     # BEQ
        return a == b
    if opnum == 41:                     # BNE
        return a != b
    if opnum == 42:                     # BLT
        return _signed(a) < _signed(b)
    if opnum == 43:                     # BGE
        return _signed(a) >= _signed(b)
    if opnum == 44:                     # BLTU
        return a < b
    return a >= b                       # BGEU
