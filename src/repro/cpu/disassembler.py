"""Disassembler for the SR5 ISA.

Produces assembly text that the :mod:`repro.cpu.assembler` accepts
back (modulo labels: branch targets are emitted as numeric offsets),
which gives the test suite an encode → disassemble → reassemble
round-trip oracle and makes fault-injection logs human-readable.
"""

from __future__ import annotations

from .isa import (
    ALU_RI_OPS,
    ALU_RR_OPS,
    BRANCH_OPS,
    Instruction,
    Op,
    decode,
    is_legal,
)

_REG_NAMES = tuple(f"r{i}" for i in range(16))


def disassemble_word(word: int) -> str:
    """One machine word to one assembly line.

    Only *canonical* encodings render as instructions — a word whose
    unused fields carry stray bits (usually a data table entry that
    happens to alias a legal opcode) renders as ``.word 0x...``, so
    listings of mixed code/data images always reassemble bit-exactly.
    """
    if not is_legal(word):
        return f".word {word:#010x}"
    instr = decode(word)
    if _canonical(instr).encode() != word:
        return f".word {word:#010x}"
    return format_instruction(instr)


def _canonical(instr: Instruction) -> Instruction:
    """The instruction with every field the printed form omits zeroed."""
    op = instr.op
    if op in ALU_RR_OPS:
        return Instruction(op, rd=instr.rd, ra=instr.ra, rb=instr.rb)
    if op in ALU_RI_OPS:
        return Instruction(op, rd=instr.rd, ra=instr.ra, imm=instr.imm)
    if op in (Op.LUI, Op.JAL, Op.IN, Op.CSRR):
        return Instruction(op, rd=instr.rd, imm=instr.imm)
    if op in (Op.LD, Op.LDB):
        return Instruction(op, rd=instr.rd, ra=instr.ra, imm=instr.imm)
    if op in (Op.ST, Op.STB):
        return Instruction(op, ra=instr.ra, rb=instr.rb, imm=instr.imm)
    if op in BRANCH_OPS:
        return Instruction(op, ra=instr.ra, rb=instr.rb, imm=instr.imm)
    if op == Op.JALR:
        return Instruction(op, rd=instr.rd, ra=instr.ra, imm=instr.imm)
    if op in (Op.OUT, Op.CSRW):
        return Instruction(op, rb=instr.rb, imm=instr.imm)
    return Instruction(op)  # NOP / HALT


def format_instruction(instr: Instruction) -> str:
    """Render a decoded instruction in assembler syntax."""
    op = instr.op
    mnem = op.name.lower()
    rd, ra, rb = (_REG_NAMES[instr.rd], _REG_NAMES[instr.ra], _REG_NAMES[instr.rb])
    if op in ALU_RR_OPS:
        return f"{mnem} {rd}, {ra}, {rb}"
    if op in ALU_RI_OPS:
        return f"{mnem} {rd}, {ra}, {instr.imm}"
    if op == Op.LUI:
        return f"{mnem} {rd}, {instr.imm:#x}"
    if op in (Op.LD, Op.LDB):
        return f"{mnem} {rd}, {instr.imm}({ra})"
    if op in (Op.ST, Op.STB):
        return f"{mnem} {rb}, {instr.imm}({ra})"
    if op in BRANCH_OPS:
        return f"{mnem} {ra}, {rb}, {instr.imm}"
    if op == Op.JAL:
        return f"{mnem} {rd}, {instr.imm}"
    if op == Op.JALR:
        return f"{mnem} {rd}, {ra}, {instr.imm}"
    if op == Op.IN:
        return f"{mnem} {rd}, {instr.imm}"
    if op in (Op.OUT, Op.CSRW):
        return f"{mnem} {rb}, {instr.imm}"
    if op == Op.CSRR:
        return f"{mnem} {rd}, {instr.imm}"
    return mnem  # NOP / HALT


def disassemble(words: list[int], base_addr: int = 0) -> str:
    """List a memory image: one ``addr: word  text`` line per word."""
    lines = []
    for i, word in enumerate(words):
        addr = base_addr + 4 * i
        lines.append(f"{addr:#06x}: {word:08x}  {disassemble_word(word)}")
    return "\n".join(lines)
