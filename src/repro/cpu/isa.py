"""Instruction set architecture of the simulated safety core.

The simulated CPU implements a small 32-bit RISC ISA ("SR5" -- *Safety
RISC 5-stage-class*).  It is deliberately not binary-compatible with any
commercial architecture; what matters for the reproduction is that real
programs execute through real pipeline logic so that injected faults
propagate microarchitecturally.

Encoding (32-bit fixed width)::

    [31:26] opcode
    [25:22] rd
    [21:18] ra
    [17:14] rb
    [13:0]  imm14 (signed two's complement)

Special formats:

* ``LUI rd, imm16`` keeps ``imm16`` in bits ``[15:0]``.
* ``JAL rd, imm18`` keeps a signed *word* offset in bits ``[17:0]``.
* Branches use ``ra``/``rb`` as comparands and ``imm14`` as a signed
  word offset relative to the instruction after the branch.
* ``IN rd, port`` / ``OUT rb, port`` keep the port number in ``imm14``.
* ``CSRR rd, csr`` / ``CSRW rb, csr`` keep the CSR number in ``imm14``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

WORD_MASK = 0xFFFFFFFF
WORD_BITS = 32


class Op(enum.IntEnum):
    """Opcode space of the SR5 ISA."""

    NOP = 0
    # Register-register ALU operations.
    ADD = 1
    SUB = 2
    AND = 3
    OR = 4
    XOR = 5
    SHL = 6
    SHR = 7
    SRA = 8
    SLT = 9
    SLTU = 10
    MUL = 11
    MULH = 12
    # Register-immediate ALU operations.
    ADDI = 16
    ANDI = 17
    ORI = 18
    XORI = 19
    SHLI = 20
    SHRI = 21
    SRAI = 22
    SLTI = 23
    LUI = 24
    # Memory operations.
    LD = 32
    LDB = 33
    ST = 34
    STB = 35
    # Control flow.
    BEQ = 40
    BNE = 41
    BLT = 42
    BGE = 43
    BLTU = 44
    BGEU = 45
    JAL = 46
    JALR = 47
    # I/O and system.
    IN = 52
    OUT = 53
    CSRR = 54
    CSRW = 55
    HALT = 63


#: ALU register-register opcodes.
ALU_RR_OPS = frozenset(
    {Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.SRA,
     Op.SLT, Op.SLTU, Op.MUL, Op.MULH}
)
#: ALU register-immediate opcodes.
ALU_RI_OPS = frozenset(
    {Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SHLI, Op.SHRI, Op.SRAI, Op.SLTI}
)
#: Conditional branch opcodes.
BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU})
#: Memory access opcodes.
MEM_OPS = frozenset({Op.LD, Op.LDB, Op.ST, Op.STB})

#: Valid opcode numbers; anything else decodes as an illegal instruction.
VALID_OPCODES = frozenset(int(op) for op in Op)

# -- table-driven step semantics ---------------------------------------------
#
# The pipeline's DX dispatch is a pure function of the 6-bit opcode
# field.  These dense tables expose that dispatch as *data* so that
# consumers which cannot branch per instruction — the batched
# structure-of-arrays fault simulator gathers them per lane — agree
# with ``Cpu.step()`` by construction instead of by parallel
# re-implementation.  ``core.py`` builds its own dispatch from the same
# tables.

#: Execution classes of the DX stage (values are arbitrary but stable).
CLS_ILLEGAL = 0
CLS_NOP = 1
CLS_ALU = 2      # single-cycle ALU, register or immediate operand
CLS_MUL = 3      # two-cycle multiplier (MUL/MULH)
CLS_LUI = 4
CLS_MEM = 5      # LD/LDB/ST/STB
CLS_BRANCH = 6   # conditional branches
CLS_JAL = 7
CLS_JALR = 8
CLS_IN = 9
CLS_OUT = 10
CLS_CSRR = 11
CLS_CSRW = 12
CLS_HALT = 13


def _op_class(opnum: int) -> int:
    if opnum not in VALID_OPCODES:
        return CLS_ILLEGAL
    if opnum == Op.NOP:
        return CLS_NOP
    if opnum in (Op.MUL, Op.MULH):
        return CLS_MUL
    if 1 <= opnum <= 23:
        return CLS_ALU
    return {
        int(Op.LUI): CLS_LUI,
        int(Op.LD): CLS_MEM, int(Op.LDB): CLS_MEM,
        int(Op.ST): CLS_MEM, int(Op.STB): CLS_MEM,
        int(Op.BEQ): CLS_BRANCH, int(Op.BNE): CLS_BRANCH,
        int(Op.BLT): CLS_BRANCH, int(Op.BGE): CLS_BRANCH,
        int(Op.BLTU): CLS_BRANCH, int(Op.BGEU): CLS_BRANCH,
        int(Op.JAL): CLS_JAL, int(Op.JALR): CLS_JALR,
        int(Op.IN): CLS_IN, int(Op.OUT): CLS_OUT,
        int(Op.CSRR): CLS_CSRR, int(Op.CSRW): CLS_CSRW,
        int(Op.HALT): CLS_HALT,
    }[opnum]


#: opcode -> execution class, dense over the 6-bit opcode space.
OPCODE_CLASS: tuple[int, ...] = tuple(_op_class(n) for n in range(64))

#: opcode -> 1 when the opcode carries a valid instruction.
OPCODE_VALID: tuple[int, ...] = tuple(
    1 if n in VALID_OPCODES else 0 for n in range(64))

#: opcode -> 1 when an ALU-class opcode substitutes ``imm`` for ``rb``.
OPCODE_ALU_IMM: tuple[int, ...] = tuple(
    1 if (16 <= n <= 23) else 0 for n in range(64))

#: Control and status register numbers readable via CSRR/CSRW.
CSR_CYCLE = 0
CSR_STATUS = 1
CSR_SCRATCH = 2
CSR_FLAGS = 3
CSR_CAUSE = 4
CSR_EPC = 5
CSR_CNT_BRANCH = 6
CSR_CNT_MEM = 7
CSR_DBG_BKPT0 = 8
CSR_DBG_BKPT1 = 9
CSR_DBG_WATCH0 = 10
CSR_DBG_CTRL = 11
CSR_IRQ_MASK = 12
CSR_IRQ_PENDING = 13
CSR_MPU_BASE0 = 14   # .. CSR_MPU_BASE0+3
CSR_MPU_LIMIT0 = 18  # .. CSR_MPU_LIMIT0+3
CSR_MPU_CTRL = 22

#: STATUS register bit enabling the performance counters.
STATUS_CNT_EN = 0x80

#: CSRW-writable registers: csr number -> (core register name, width mask).
#: ``STATUS``/``SCRATCH`` are listed too; every entry is a plain masked
#: assignment in the DX stage.  (``status`` writes keep 8 bits.)
CSR_WRITE_REG: dict[int, tuple[str, int]] = {
    CSR_STATUS: ("status", 0xFF),
    CSR_SCRATCH: ("scratch", WORD_MASK),
    CSR_DBG_BKPT0: ("dbg_bkpt0", WORD_MASK),
    CSR_DBG_BKPT1: ("dbg_bkpt1", WORD_MASK),
    CSR_DBG_WATCH0: ("dbg_watch0", WORD_MASK),
    CSR_DBG_CTRL: ("dbg_ctrl", 0xF),
    CSR_IRQ_MASK: ("irq_mask", 0xFF),
    CSR_IRQ_PENDING: ("irq_pending", 0xFF),
    CSR_MPU_CTRL: ("mpu_ctrl", 0xFF),
    **{CSR_MPU_BASE0 + i: (f"mpu_base{i}", WORD_MASK) for i in range(4)},
    **{CSR_MPU_LIMIT0 + i: (f"mpu_limit{i}", WORD_MASK) for i in range(4)},
}

#: CSRR-readable registers: csr number -> core register name.  Reads of
#: unmapped numbers return 0.
CSR_READ_REG: dict[int, str] = {
    CSR_CYCLE: "cyc",
    CSR_STATUS: "status",
    CSR_SCRATCH: "scratch",
    CSR_FLAGS: "flags",
    CSR_CAUSE: "cause",
    CSR_EPC: "epc",
    CSR_CNT_BRANCH: "cnt_branch",
    CSR_CNT_MEM: "cnt_mem",
    **{num: reg for num, (reg, _mask) in CSR_WRITE_REG.items()
       if num not in (CSR_STATUS, CSR_SCRATCH)},
    # status/scratch read back through their own entries above.
}

#: Exception cause codes recorded in the SCU.
CAUSE_NONE = 0
CAUSE_ILLEGAL = 1
CAUSE_MISALIGNED = 2
CAUSE_MPU = 3
CAUSE_BKPT = 4
CAUSE_WATCH = 5
CAUSE_IRQ = 6

#: Exception vector address (byte address of the handler).
EXC_VECTOR = 0x8

NUM_REGS = 16
REG_ALIASES = {"zero": 0, "sp": 14, "lr": 15}


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded (field overflow)."""


def to_signed(value: int, bits: int) -> int:
    """Interpret ``value`` (unsigned, ``bits`` wide) as two's complement."""
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def to_unsigned(value: int, bits: int) -> int:
    """Encode a signed ``value`` into an unsigned ``bits``-wide field."""
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise EncodingError(f"immediate {value} does not fit in {bits} bits")
    return value & ((1 << bits) - 1)


@dataclass(frozen=True)
class Instruction:
    """A decoded SR5 instruction."""

    op: Op
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0

    def encode(self) -> int:
        """Return the 32-bit machine word for this instruction."""
        for name, reg in (("rd", self.rd), ("ra", self.ra), ("rb", self.rb)):
            if not 0 <= reg < NUM_REGS:
                raise EncodingError(f"{name}={reg} out of range")
        word = (int(self.op) << 26) | (self.rd << 22) | (self.ra << 18) | (self.rb << 14)
        if self.op == Op.LUI:
            if not 0 <= self.imm <= 0xFFFF:
                raise EncodingError(f"LUI immediate {self.imm} out of range")
            # imm16 overlaps the ra/rb fields deliberately.
            word = (int(self.op) << 26) | (self.rd << 22) | (self.imm & 0xFFFF)
        elif self.op == Op.JAL:
            word = (int(self.op) << 26) | (self.rd << 22) | to_unsigned(self.imm, 18)
        else:
            word |= to_unsigned(self.imm, 14)
        return word


def decode(word: int) -> Instruction:
    """Decode a 32-bit machine word into an :class:`Instruction`.

    Illegal opcodes decode to an ``Instruction`` whose ``op`` attribute
    is unavailable; callers must first check :func:`is_legal`.
    """
    opnum = (word >> 26) & 0x3F
    op = Op(opnum)
    rd = (word >> 22) & 0xF
    if op == Op.LUI:
        return Instruction(op, rd=rd, imm=word & 0xFFFF)
    if op == Op.JAL:
        return Instruction(op, rd=rd, imm=to_signed(word & 0x3FFFF, 18))
    ra = (word >> 18) & 0xF
    rb = (word >> 14) & 0xF
    imm = to_signed(word & 0x3FFF, 14)
    return Instruction(op, rd=rd, ra=ra, rb=rb, imm=imm)


def is_legal(word: int) -> bool:
    """Return True when ``word`` carries a valid opcode."""
    return ((word >> 26) & 0x3F) in VALID_OPCODES
