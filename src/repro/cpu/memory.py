"""Shared memory and input stimulus models.

In CPU-level lockstepping the caches and memory sit *outside* the
sphere of replication (they carry their own ECC protection), so memory
is modelled as a plain word-addressable store shared by the lockstepped
cores.  Inputs to the sphere are replicated: every core reads the same
deterministic stimulus stream through its own BIU index register.
"""

from __future__ import annotations

from ..cpu.assembler import Program

DEFAULT_MEM_WORDS = 1 << 14  # 64 KiB


class MemoryError_(Exception):
    """Raised on out-of-range physical accesses."""


class Memory:
    """A flat word-addressable memory with byte sub-access.

    Word addresses are byte addresses divided by four; byte accesses
    assume little-endian packing.
    """

    __slots__ = ("words", "size")

    def __init__(self, size_words: int = DEFAULT_MEM_WORDS):
        self.size = size_words
        self.words = [0] * size_words

    @classmethod
    def from_program(cls, program: Program, size_words: int = DEFAULT_MEM_WORDS) -> "Memory":
        """Create a memory initialised with an assembled program image."""
        if len(program.words) > size_words:
            raise MemoryError_("program does not fit in memory")
        mem = cls(size_words)
        mem.words[: len(program.words)] = program.words
        return mem

    def copy(self) -> "Memory":
        """Deep copy (used to give a faulty core its own memory image)."""
        clone = Memory.__new__(Memory)
        clone.size = self.size
        clone.words = list(self.words)
        return clone

    # The hot paths below intentionally avoid bounds checks beyond a
    # wrap mask: a fault-corrupted address must not crash the simulator,
    # it must behave like a bus access that wraps the small physical
    # address space (common for simple SoC address decoders).

    def read_word(self, byte_addr: int) -> int:
        """Read the aligned word containing ``byte_addr``."""
        return self.words[(byte_addr >> 2) % self.size]

    def write_word(self, byte_addr: int, value: int) -> None:
        """Write an aligned word."""
        self.words[(byte_addr >> 2) % self.size] = value & 0xFFFFFFFF

    def read_byte(self, byte_addr: int) -> int:
        """Read one byte (little-endian lane select)."""
        word = self.words[(byte_addr >> 2) % self.size]
        return (word >> ((byte_addr & 3) * 8)) & 0xFF

    def write_byte(self, byte_addr: int, value: int) -> None:
        """Write one byte, read-modify-write on the containing word."""
        idx = (byte_addr >> 2) % self.size
        shift = (byte_addr & 3) * 8
        word = self.words[idx]
        self.words[idx] = (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)


class InputStream:
    """Deterministic replicated input stimulus for ``IN`` instructions.

    The stream is indexed by the core's BIU ``io_in_idx`` register; a
    fault that corrupts the index makes the core sample the wrong
    stimulus word, exactly as a corrupted bus transfer counter would.
    Reads beyond the end wrap around, so the stream behaves like a
    periodic sensor.
    """

    __slots__ = ("values",)

    def __init__(self, values: list[int] | None = None):
        self.values = [v & 0xFFFFFFFF for v in (values or [0])]
        if not self.values:
            self.values = [0]

    def sample(self, index: int) -> int:
        """Return the stimulus word at ``index`` (wrapping)."""
        return self.values[index % len(self.values)]
