"""CPU logical unit taxonomy and the flip-flop registry.

The paper organises the Arm Cortex-R5 into seven coarse logical units
(Fig. 8) and, for the fine-granularity study (Section V-D), splits the
Data Processing Unit into seven sub-units for a 13-unit organisation.
We mirror both taxonomies for the simulated SR5 core.

Every sequential element (flip-flop) in the core belongs to exactly one
fine unit; coarse units are obtained by folding the seven DPU sub-units
back into ``DPU``.  Faults are addressed as ``FlopRef(reg, bit)`` where
``reg`` names a multi-bit register from :data:`REGISTRY`.
"""

from __future__ import annotations

from dataclasses import dataclass

# -- coarse (7-unit) taxonomy, mirroring the paper's Fig. 8 ------------------

PFU = "PFU"    # Prefetch Unit: program counter, branch target buffer
DPU = "DPU"    # Data Processing Unit: decode, register file, execute
LSU = "LSU"    # Load/Store Unit: request registers, store buffer
BIU = "BIU"    # Bus Interface Unit: external bus + I/O port registers
IMC = "IMC"    # Instruction Memory Controller: fetch interface
DMC = "DMC"    # Data Memory Controller: data-side interface
SCU = "SCU"    # System Control Unit: status, exceptions, counters

COARSE_UNITS: tuple[str, ...] = (PFU, DPU, LSU, BIU, IMC, DMC, SCU)

# -- fine (13-unit) taxonomy: DPU split into seven sub-units -----------------

DPU_DEC = "DPU.DEC"      # decode input latch
DPU_RF = "DPU.RF"        # architectural register file
DPU_EX = "DPU.EX"        # execute/writeback pipeline latch
DPU_MUL = "DPU.MUL"      # multiplier operand pipeline
DPU_FLAGS = "DPU.FLAGS"  # condition flags
DPU_BR = "DPU.BR"        # branch resolution status registers
DPU_RET = "DPU.RET"      # retire/trace port registers

DPU_SUBUNITS: tuple[str, ...] = (
    DPU_DEC, DPU_RF, DPU_EX, DPU_MUL, DPU_FLAGS, DPU_BR, DPU_RET,
)

FINE_UNITS: tuple[str, ...] = (PFU, LSU, BIU, IMC, DMC, SCU) + DPU_SUBUNITS


def coarse_unit(fine: str) -> str:
    """Map a fine unit name to its coarse (7-unit) parent."""
    return DPU if fine.startswith("DPU.") else fine


@dataclass(frozen=True)
class RegSpec:
    """One multi-bit register of the core.

    Attributes:
        name: attribute name on :class:`repro.cpu.core.Cpu` (register
            file entries use the synthetic names ``rf1`` .. ``rf15``).
        width: number of flip-flops.
        unit: owning fine unit.
        full_write: True when every write site in the core rewrites the
            whole register from freshly computed inputs (a plain
            assignment).  Registers with any read-modify-write site
            (``|=``/``&=``/``^=`` or increments) are flagged False: a
            write to them may merge stale bits, so the liveness pruner
            treats such a write as a *use* of the old value rather than
            a kill.  Mis-flagging a register True is still sound for
            RMW sites, because an RMW reads the old value and the
            recorded read blocks the kill — the flag is belt-and-braces
            for hypothetical partial writes that bypass a read.
    """

    name: str
    width: int
    unit: str
    full_write: bool = True


#: Full flip-flop inventory of the core, in canonical snapshot order.
#: ``Cpu.snapshot()`` returns values in exactly this order.
REGISTRY: tuple[RegSpec, ...] = (
    # PFU: program counter and a 4-entry direct-mapped branch target buffer.
    RegSpec("pc", 32, PFU),
    RegSpec("btb_tag0", 32, PFU), RegSpec("btb_tag1", 32, PFU),
    RegSpec("btb_tag2", 32, PFU), RegSpec("btb_tag3", 32, PFU),
    RegSpec("btb_tgt0", 32, PFU), RegSpec("btb_tgt1", 32, PFU),
    RegSpec("btb_tgt2", 32, PFU), RegSpec("btb_tgt3", 32, PFU),
    RegSpec("btb_v", 4, PFU, full_write=False),  # per-entry |= / &= updates
    # IMC: fetch interface (registered fetch address + prefetch buffer).
    RegSpec("imc_addr", 32, IMC),
    RegSpec("imc_data", 32, IMC),
    RegSpec("imc_valid", 1, IMC),
    RegSpec("imc_pred", 1, IMC),
    RegSpec("imc_ptgt", 32, IMC),
    # DPU.DEC: decode input latch.
    RegSpec("if_ir", 32, DPU_DEC),
    RegSpec("if_pc", 32, DPU_DEC),
    RegSpec("if_valid", 1, DPU_DEC),
    RegSpec("if_pred", 1, DPU_DEC),
    RegSpec("if_ptgt", 32, DPU_DEC),
    # DPU.RF: architectural register file (r0 is hardwired zero).
    *(RegSpec(f"rf{i}", 32, DPU_RF) for i in range(1, 16)),
    # DPU.EX: execute -> memory/writeback pipeline latch.
    RegSpec("mw_val", 32, DPU_EX),
    RegSpec("mw_pc", 32, DPU_EX),
    RegSpec("mw_rd", 4, DPU_EX),
    RegSpec("mw_wen", 1, DPU_EX),
    RegSpec("mw_valid", 1, DPU_EX),
    RegSpec("mw_isload", 1, DPU_EX),
    # DPU.MUL: two-cycle multiplier operand pipeline.
    RegSpec("mul_a", 32, DPU_MUL),
    RegSpec("mul_b", 32, DPU_MUL),
    RegSpec("mul_pending", 1, DPU_MUL),
    # DPU.FLAGS: NZCV condition flags plus the exception-shadow copy.
    RegSpec("flags", 4, DPU_FLAGS),
    RegSpec("sflags", 4, DPU_FLAGS),
    # DPU.BR: branch resolution status (feeds the branch-status ports).
    RegSpec("br_target", 32, DPU_BR),
    RegSpec("br_taken", 1, DPU_BR),
    RegSpec("br_valid", 1, DPU_BR),
    # DPU.RET: retire/trace port registers.
    RegSpec("ret_pc", 32, DPU_RET),
    RegSpec("ret_val", 32, DPU_RET),
    RegSpec("ret_rd", 4, DPU_RET),
    RegSpec("ret_valid", 1, DPU_RET),
    # LSU: registered memory request plus a single-entry store buffer.
    RegSpec("lsu_addr", 32, LSU),
    RegSpec("lsu_wdata", 32, LSU),
    RegSpec("lsu_op", 3, LSU),
    RegSpec("lsu_valid", 1, LSU),
    RegSpec("sb_addr", 32, LSU),
    RegSpec("sb_data", 32, LSU),
    RegSpec("sb_valid", 1, LSU),
    RegSpec("sb_op", 1, LSU),
    # DMC: data-side interface registers plus the memory protection unit
    # (configured off at reset, programmable through CSRs).
    RegSpec("dmc_addr", 32, DMC),
    RegSpec("dmc_wdata", 32, DMC),
    RegSpec("dmc_rdata", 32, DMC),
    RegSpec("dmc_ctrl", 4, DMC),
    RegSpec("dmc_strb", 4, DMC),
    RegSpec("mpu_base0", 32, DMC), RegSpec("mpu_base1", 32, DMC),
    RegSpec("mpu_base2", 32, DMC), RegSpec("mpu_base3", 32, DMC),
    RegSpec("mpu_limit0", 32, DMC), RegSpec("mpu_limit1", 32, DMC),
    RegSpec("mpu_limit2", 32, DMC), RegSpec("mpu_limit3", 32, DMC),
    RegSpec("mpu_ctrl", 8, DMC),
    # BIU: unified external bus view and I/O port registers.
    RegSpec("bus_addr", 32, BIU),
    RegSpec("bus_data", 32, BIU),
    RegSpec("bus_ctrl", 4, BIU),
    RegSpec("io_out", 32, BIU),
    RegSpec("io_out_v", 1, BIU, full_write=False),  # strobe toggles (^=)
    RegSpec("io_in", 32, BIU),
    RegSpec("io_in_idx", 16, BIU),
    # SCU: status, exception state, scratch, cycle counter, and the
    # debug/interrupt/performance-monitor blocks (off at reset).
    RegSpec("status", 8, SCU, full_write=False),  # exception entry sets bit 0 (|=)
    RegSpec("cause", 4, SCU),
    RegSpec("epc", 32, SCU),
    RegSpec("scratch", 32, SCU),
    RegSpec("cyc", 32, SCU, full_write=False),  # free-running increment
    RegSpec("halted", 1, SCU),
    RegSpec("dbg_bkpt0", 32, SCU),
    RegSpec("dbg_bkpt1", 32, SCU),
    RegSpec("dbg_watch0", 32, SCU),
    RegSpec("dbg_ctrl", 4, SCU),
    RegSpec("irq_mask", 8, SCU),
    RegSpec("irq_pending", 8, SCU),
    RegSpec("cnt_branch", 32, SCU, full_write=False),  # event-count increment
    RegSpec("cnt_mem", 32, SCU, full_write=False),     # event-count increment
)

#: Register name -> index in the canonical snapshot order.
REG_INDEX: dict[str, int] = {spec.name: i for i, spec in enumerate(REGISTRY)}

#: Register name -> spec.
REG_BY_NAME: dict[str, RegSpec] = {spec.name: spec for spec in REGISTRY}

#: uint64 words needed for a one-bit-per-register liveness mask row.
MASK_WORDS: int = (len(REGISTRY) + 63) // 64


def pack_register_mask(names) -> int:
    """Fold register names into one Python-int bitmask (REGISTRY order).

    Unknown names (non-flop attributes like ``mem`` or ``retire_hook``)
    are ignored, so the golden-trace access tracer can feed raw key
    sets straight in.
    """
    mask = 0
    index = REG_INDEX
    for name in names:
        i = index.get(name)
        if i is not None:
            mask |= 1 << i
    return mask


#: Bitmask (as :func:`pack_register_mask`) of registers whose writes
#: always replace the whole register.
FULL_WRITE_MASK: int = pack_register_mask(
    spec.name for spec in REGISTRY if spec.full_write)


@dataclass(frozen=True, order=True)
class FlopRef:
    """Address of a single flip-flop: register name plus bit position."""

    reg: str
    bit: int

    def __post_init__(self) -> None:
        spec = REG_BY_NAME.get(self.reg)
        if spec is None:
            raise ValueError(f"unknown register {self.reg!r}")
        if not 0 <= self.bit < spec.width:
            raise ValueError(f"bit {self.bit} out of range for {self.reg} (width {spec.width})")

    @property
    def unit(self) -> str:
        """Owning fine unit."""
        return REG_BY_NAME[self.reg].unit

    @property
    def coarse(self) -> str:
        """Owning coarse (7-taxonomy) unit."""
        return coarse_unit(self.unit)


def all_flops() -> list[FlopRef]:
    """Enumerate every flip-flop in the core in canonical order."""
    return [FlopRef(spec.name, bit) for spec in REGISTRY for bit in range(spec.width)]


def flops_of_unit(unit: str, fine: bool = False) -> list[FlopRef]:
    """Enumerate the flip-flops owned by ``unit``.

    Args:
        unit: a coarse unit name (default) or fine unit name.
        fine: when True, ``unit`` is interpreted against the 13-unit
            taxonomy; otherwise against the coarse 7-unit taxonomy.
    """
    if fine:
        return [f for f in all_flops() if f.unit == unit]
    return [f for f in all_flops() if f.coarse == unit]


def unit_flop_counts(fine: bool = False) -> dict[str, int]:
    """Number of flip-flops per unit for the chosen taxonomy."""
    units = FINE_UNITS if fine else COARSE_UNITS
    counts = {u: 0 for u in units}
    for spec in REGISTRY:
        key = spec.unit if fine else coarse_unit(spec.unit)
        counts[key] += spec.width
    return counts


TOTAL_FLOPS = sum(spec.width for spec in REGISTRY)
