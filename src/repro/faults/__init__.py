"""Fault models, golden traces, differential injection and campaigns."""

from .arch import ArchTrace, TieredGolden, peek_cached_n_cycles
from .batch import BatchInjectionEngine
from .campaign import (
    CampaignConfig,
    CampaignResult,
    cached_campaign,
    records_digest,
    run_campaign,
    sample_flops,
    schedule_faults,
)
from .golden import (
    CAMPAIGN_MEM_WORDS,
    GOLDEN_CACHE_ENV,
    GoldenTrace,
    LoggingMemory,
    golden_cache_dir,
)
from .injector import InjectionEngine, PruneStats
from .kernels import (
    KERNEL_BREAKEVEN_LANES,
    KERNEL_CHOICES,
    KERNEL_ENV,
    THREADS_ENV,
    breakeven_lanes,
    cext_available,
    cext_build_error,
    resolve_kernel,
    resolve_threads,
)
from .parallel import (
    EXECUTOR_CHOICES,
    Shard,
    plan_shards,
    resolve_chunk,
    resolve_executor,
    resolve_workers,
    sampling_rng,
    schedule_rng,
)
from .models import ErrorRecord, ErrorType, Fault, FaultKind, error_type_of
from .stats import (
    Spread,
    diverged_set_size_ratio,
    manifestation_rates,
    manifestation_times,
    mean_detection_time,
    overall_manifestation_rate,
    rate_spread,
    table1,
    time_spread,
)

__all__ = [
    "ArchTrace", "TieredGolden", "peek_cached_n_cycles",
    "BatchInjectionEngine",
    "CampaignConfig", "CampaignResult", "cached_campaign", "records_digest",
    "run_campaign", "sample_flops", "schedule_faults",
    "CAMPAIGN_MEM_WORDS", "GOLDEN_CACHE_ENV", "GoldenTrace", "LoggingMemory",
    "golden_cache_dir",
    "InjectionEngine", "PruneStats",
    "KERNEL_BREAKEVEN_LANES", "KERNEL_CHOICES", "KERNEL_ENV", "THREADS_ENV",
    "breakeven_lanes", "cext_available", "cext_build_error",
    "resolve_kernel", "resolve_threads",
    "EXECUTOR_CHOICES", "Shard", "plan_shards", "resolve_chunk",
    "resolve_executor", "resolve_workers",
    "sampling_rng", "schedule_rng",
    "ErrorRecord", "ErrorType", "Fault", "FaultKind", "error_type_of",
    "Spread", "diverged_set_size_ratio", "manifestation_rates",
    "manifestation_times", "mean_detection_time", "overall_manifestation_rate",
    "rate_spread", "table1", "time_spread",
]
