"""Loader for the compiled fused batch-step kernel.

Two ways the extension can be present:

* **Installed build** — ``pip install -e .`` compiles
  ``_cstepmodule.c`` via setuptools and drops ``_cstep.*.so`` next to
  this file; a plain relative import finds it.
* **In-tree auto-build** — the repo's dev/CI flow is ``PYTHONPATH=src``
  with no install step, so when the import misses we compile the one
  translation unit ourselves with the system C compiler into a
  per-user cache directory keyed by a hash of the source and the
  interpreter version, then load it with ``ExtensionFileLoader``.
  The cc invocation is a single command with no new Python deps, and
  the cache means every later process (including campaign pool
  workers) loads the ``.so`` without recompiling.

Both paths are best-effort: any failure (no compiler, sandboxed
filesystem, exotic platform) leaves :data:`MODULE` as ``None`` and
:data:`BUILD_ERROR` holding the reason, and the engine falls back to
the numpy kernel.  Set ``REPRO_CSTEP_BUILD=0`` to skip the auto-build
(used by the CI fallback leg to prove the pure-Python path).
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import os
import subprocess
import sys
import sysconfig
from pathlib import Path

#: The loaded extension module, or None when unavailable.
MODULE = None
#: Human-readable reason MODULE is None (for `--kernel cext` errors).
BUILD_ERROR: str | None = None

_SOURCE = Path(__file__).with_name("_cstepmodule.c")


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_CSTEP_CACHE")
    if env:
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return Path(base) / "repro_cstep"


def _build() -> object:
    """Compile _cstepmodule.c with the system cc and import the result."""
    source = _SOURCE.read_bytes()
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    tag = hashlib.sha256(
        source + f"|py{sys.version_info[:2]}|{suffix}".encode()
    ).hexdigest()[:20]
    cache = _cache_dir()
    built = cache / f"_cstep_{tag}{suffix}"
    if not built.exists():
        cache.mkdir(parents=True, exist_ok=True)
        cc = os.environ.get("CC", "cc")
        include = sysconfig.get_paths()["include"]
        tmp = built.with_name(f".{built.name}.{os.getpid()}.tmp")
        cmd = [cc, "-O3", "-shared", "-fPIC", f"-I{include}",
               "-o", str(tmp), str(_SOURCE)]
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120)
            if proc.returncode != 0:
                raise RuntimeError(
                    f"{' '.join(cmd)} failed:\n{proc.stderr.strip()}")
            # Atomic publish: concurrent pool workers racing the build
            # each replace with an identical artifact.
            os.replace(tmp, built)
        finally:
            if tmp.exists():
                tmp.unlink()
    loader = importlib.machinery.ExtensionFileLoader("_cstep", str(built))
    spec = importlib.util.spec_from_file_location(
        "_cstep", str(built), loader=loader)
    mod = importlib.util.module_from_spec(spec)
    loader.exec_module(mod)
    return mod


def _load() -> None:
    global MODULE, BUILD_ERROR
    try:
        from . import _cstep as mod  # installed via setup.py build_ext
        MODULE = mod
        return
    except ImportError:
        pass
    if os.environ.get("REPRO_CSTEP_BUILD", "1") == "0":
        BUILD_ERROR = "auto-build disabled by REPRO_CSTEP_BUILD=0"
        return
    try:
        MODULE = _build()
    except Exception as exc:  # noqa: BLE001 - any failure means fallback
        BUILD_ERROR = f"{type(exc).__name__}: {exc}"


_load()
