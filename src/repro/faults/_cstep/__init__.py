"""Loader for the compiled fused batch-step kernel.

Two ways the extension can be present:

* **Installed build** — ``pip install -e .`` compiles
  ``_cstepmodule.c`` via setuptools and drops ``_cstep.*.so`` next to
  this file; a plain relative import finds it.
* **In-tree auto-build** — the repo's dev/CI flow is ``PYTHONPATH=src``
  with no install step, so when the import misses we compile the one
  translation unit ourselves with the system C compiler into a
  per-user cache directory keyed by a hash of the source and the
  interpreter version, then load it with ``ExtensionFileLoader``.
  The cc invocation is a single command with no new Python deps, and
  the cache means every later process (including campaign pool
  workers) loads the ``.so`` without recompiling.

Both paths are best-effort: any failure (no compiler, sandboxed
filesystem, exotic platform) leaves :data:`MODULE` as ``None`` and
:data:`BUILD_ERROR` holding the reason, and the engine falls back to
the numpy kernel.  Set ``REPRO_CSTEP_BUILD=0`` to skip the auto-build
(used by the CI fallback leg to prove the pure-Python path).
"""

from __future__ import annotations

import contextlib
import hashlib
import importlib.machinery
import importlib.util
import os
import subprocess
import sys
import sysconfig
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX: fall back to racing
    fcntl = None  # type: ignore[assignment]

#: The loaded extension module, or None when unavailable.
MODULE = None
#: Human-readable reason MODULE is None (for `--kernel cext` errors).
BUILD_ERROR: str | None = None

_SOURCE = Path(__file__).with_name("_cstepmodule.c")


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_CSTEP_CACHE")
    if env:
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return Path(base) / "repro_cstep"


@contextlib.contextmanager
def _build_lock(built: Path):
    """Serialize the first-use compile across processes and threads.

    Without this, N pool workers (or N shard threads) that import before
    the artifact exists each spawn a full ``cc -O3`` — correct (the
    write-temp/rename publish is atomic) but N× the latency and disk
    churn.  An ``fcntl.flock`` on a sidecar lockfile makes one builder
    compile while the rest block, then find the artifact published and
    skip straight to loading.  On platforms without fcntl we keep the
    old racy-but-correct behaviour.
    """
    if fcntl is None:
        yield
        return
    lockfile = built.with_name(built.name + ".lock")
    fd = os.open(lockfile, os.O_CREAT | os.O_RDWR, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        # Unlock before close is implicit; the lockfile itself is left
        # in place (unlinking it would let a late-arriving process lock
        # a fresh inode and race the builder holding the old one).
        os.close(fd)


def _build() -> object:
    """Compile _cstepmodule.c with the system cc and import the result."""
    source = _SOURCE.read_bytes()
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    tag = hashlib.sha256(
        source + f"|py{sys.version_info[:2]}|{suffix}".encode()
    ).hexdigest()[:20]
    cache = _cache_dir()
    built = cache / f"_cstep_{tag}{suffix}"
    if not built.exists():
        cache.mkdir(parents=True, exist_ok=True)
        with _build_lock(built):
            if not built.exists():  # loser of the lock finds it built
                _compile(built)
    loader = importlib.machinery.ExtensionFileLoader("_cstep", str(built))
    spec = importlib.util.spec_from_file_location(
        "_cstep", str(built), loader=loader)
    mod = importlib.util.module_from_spec(spec)
    loader.exec_module(mod)
    return mod


def _compile(built: Path) -> None:
    """One cc invocation publishing `built` atomically (temp + rename)."""
    cc = os.environ.get("CC", "cc")
    include = sysconfig.get_paths()["include"]
    tmp = built.with_name(f".{built.name}.{os.getpid()}.tmp")
    # -pthread on both compile and link: the drive loop dispatches lane
    # slices to a persistent pthread worker pool.
    cmd = [cc, "-O3", "-shared", "-fPIC", "-pthread", f"-I{include}",
           "-o", str(tmp), str(_SOURCE)]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120)
        if proc.returncode != 0:
            raise RuntimeError(
                f"{' '.join(cmd)} failed:\n{proc.stderr.strip()}")
        # Atomic publish: a reader never sees a half-written .so.
        os.replace(tmp, built)
    finally:
        if tmp.exists():
            tmp.unlink()


def _load() -> None:
    global MODULE, BUILD_ERROR
    try:
        from . import _cstep as mod  # installed via setup.py build_ext
        MODULE = mod
        return
    except ImportError:
        pass
    if os.environ.get("REPRO_CSTEP_BUILD", "1") == "0":
        BUILD_ERROR = "auto-build disabled by REPRO_CSTEP_BUILD=0"
        return
    try:
        MODULE = _build()
    except Exception as exc:  # noqa: BLE001 - any failure means fallback
        BUILD_ERROR = f"{type(exc).__name__}: {exc}"


_load()
