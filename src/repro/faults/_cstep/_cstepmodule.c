/* Compiled fused batch-step kernel for the SoA fault-injection engine.
 *
 * The numpy kernel in repro/faults/batch.py advances every live lane
 * one cycle per ~150 numpy dispatches; below a few hundred lanes the
 * fixed dispatch cost dominates (DESIGN.md §5.14).  This module
 * removes that floor: `drive()` executes the batch driver's hot loop
 * — stuck-at force, golden port compare, full state step, and the
 * routine masking/re-convergence check bookkeeping — in plain C,
 * fusing as many cycles per call as possible and returning to Python
 * only for the rare-path events (lane retirement, equivalence-class
 * resolution, stuck-at fast-forward, divergence record construction),
 * which the Python driver then handles with exactly the same code the
 * pure-numpy path uses.  `step()` advances lanes one cycle with no
 * driver logic, so tests can compare the C state transition against
 * the numpy `_step` matrix-for-matrix.
 *
 * Semantics are a statement-by-statement mirror of
 * `BatchInjectionEngine._step` (itself a mirror of `Cpu.step`); the
 * per-cycle SoA parity test in tests/test_kernels.py holds the two
 * kernels bit-identical.  No numpy C API is used — all arrays arrive
 * through the buffer protocol, so the module builds against any
 * CPython 3.x with no third-party headers.
 *
 * Layout contract (enforced by itemsize/shape checks):
 *   S        uint32 (n_rows, B) C-contiguous, lane state columns
 *   M        uint32 (B, mem_words), per-lane memories
 *   sm       uint32 (n_cycles, n_regs), golden state rows per cycle
 *   pm       uint32 (n_cycles, 18), golden port rows per cycle
 *   stim     uint32 (stim_len,), replicated input stream
 *   t/end/next_chk/chk_iv  int64 (B,), per-lane driver bookkeeping
 *   is_hard  uint8/bool (B,)
 *   force_row int64 (B,), force_and/force_or uint32 (B,)
 *   tables   13-tuple, see TABLE_SPECS / repro.faults.batch._cext_tables
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <pthread.h>
#include <stdint.h>
#include <string.h>
#include <unistd.h>

typedef uint32_t u32;

/* Row-index map: filled by memcpy from tables[0] (int64[68]).  Field
 * order here MUST match _ROW_ORDER in repro/faults/batch.py. */
typedef struct {
    int64_t pc, btb_tag0, btb_tgt0, btb_v;
    int64_t imc_addr, imc_data, imc_valid, imc_pred, imc_ptgt;
    int64_t if_ir, if_pc, if_valid, if_pred, if_ptgt;
    int64_t mw_val, mw_pc, mw_rd, mw_wen, mw_valid, mw_isload;
    int64_t mul_a, mul_b, mul_pending;
    int64_t flags, sflags;
    int64_t br_target, br_taken, br_valid;
    int64_t ret_pc, ret_val, ret_rd, ret_valid;
    int64_t lsu_addr, lsu_wdata, lsu_op, lsu_valid;
    int64_t sb_addr, sb_data, sb_valid, sb_op;
    int64_t dmc_addr, dmc_wdata, dmc_rdata, dmc_ctrl, dmc_strb;
    int64_t mpu_base0, mpu_limit0, mpu_ctrl;
    int64_t bus_addr, bus_data, bus_ctrl;
    int64_t io_out, io_out_v, io_in, io_in_idx;
    int64_t status, cause, epc, cyc, halted;
    int64_t dbg_bkpt0, dbg_bkpt1, dbg_watch0, dbg_ctrl;
    int64_t irq_mask, irq_pending, cnt_branch, cnt_mem;
} RowMap;

#define N_ROWMAP 68

/* ISA/driver constants: filled from tables[1] (int64[28]).  Field
 * order MUST match _CONST_ORDER in repro/faults/batch.py. */
typedef struct {
    int64_t cls_alu, cls_mul, cls_lui, cls_mem, cls_branch;
    int64_t cls_jal, cls_jalr, cls_in, cls_out;
    int64_t cls_csrr, cls_csrw, cls_nop, cls_halt;
    int64_t cause_illegal, cause_bkpt, cause_irq;
    int64_t cause_mpu, cause_watch, cause_misaligned;
    int64_t exc_vector, status_cnt_en;
    int64_t op_mul, op_ld, op_ldb, op_st, op_stb, op_beq;
    int64_t n_regs;
} Consts;

#define N_CONSTS 28

#if defined(__STDC_VERSION__) && __STDC_VERSION__ >= 201112L
_Static_assert(sizeof(RowMap) == N_ROWMAP * sizeof(int64_t), "RowMap layout");
_Static_assert(sizeof(Consts) == N_CONSTS * sizeof(int64_t), "Consts layout");
#endif

typedef struct {
    u32 *S;
    Py_ssize_t n_rows, B;
    u32 *M;
    Py_ssize_t mem_words;
    const u32 *stim;
    Py_ssize_t stim_len;
    const int64_t *opc_cls;
    const uint8_t *opc_valid;
    const uint8_t *opc_imm;
    const int64_t *alu_sel;
    const u32 *lsu_op_of;
    const int64_t *rf_read;
    const int64_t *rf_write;
    const int64_t *csr_read;
    const int64_t *csr_write;
    const u32 *csr_wmask;
    const int64_t *port_rows;
    RowMap r;
    Consts c;
} Ctx;

#define S_(row, lane) x->S[(size_t)(row) * (size_t)x->B + (size_t)(lane)]

/* One lane, one cycle: the vectorised `_step` unrolled per lane. */
static void step_lane(Ctx *x, Py_ssize_t i)
{
    const RowMap *r = &x->r;
    const Consts *c = &x->c;
    u32 *M = x->M + (size_t)i * (size_t)x->mem_words;
    const u32 mem_words = (u32)x->mem_words;

    /* ---------------- MW stage ---------------- */
    u32 lsu_valid = S_(r->lsu_valid, i);
    u32 sb_valid = S_(r->sb_valid, i);
    u32 mw_valid = S_(r->mw_valid, i);
    u32 lsu_op = S_(r->lsu_op, i);
    u32 lsu_addr = S_(r->lsu_addr, i);
    u32 sb_addr = S_(r->sb_addr, i);
    u32 sb_data = S_(r->sb_data, i);
    u32 sb_op = S_(r->sb_op, i);

    int is_ld = lsu_valid && lsu_op == 1;
    int is_ldb = lsu_valid && lsu_op == 2;
    int is_load = is_ld || is_ldb;
    int is_st = lsu_valid && lsu_op == 3;
    int is_stb = lsu_valid && lsu_op == 4;
    int is_store = is_st || is_stb;
    int is_in = lsu_valid && lsu_op == 5;
    int is_out = lsu_valid && lsu_op == 6;

    int alias = ((sb_addr ^ lsu_addr) & 0xFFFFFFFCu) == 0;
    int drain_load = is_load && sb_valid && alias;
    int drain = drain_load || (is_store && sb_valid) || (sb_valid && !lsu_valid);

    if (drain) {
        u32 widx = (sb_addr >> 2) % mem_words;
        if (sb_op != 0) {
            u32 shift = (sb_addr & 3) * 8;
            u32 lane_mask = 0xFFu << shift;
            M[widx] = (M[widx] & ~lane_mask) | ((sb_data & 0xFF) << shift);
        } else {
            M[widx] = sb_data;
        }
    }

    u32 load_data = 0;
    if (is_load) {
        u32 word = M[(lsu_addr >> 2) % mem_words];
        u32 shift = (lsu_addr & 3) * 8;
        load_data = is_ldb ? (word >> shift) & 0xFF : word;
    }
    if (is_in) {
        u32 cursor = S_(r->io_in_idx, i);
        u32 val = x->stim[cursor % (u32)x->stim_len];
        load_data = val;
        S_(r->io_in, i) = val;
        S_(r->io_in_idx, i) = (cursor + 1) & 0xFFFF;
    }
    if (is_out) {
        S_(r->io_out, i) = S_(r->lsu_wdata, i);
        S_(r->io_out_v, i) ^= 1u;
    }

    if (drain_load || (sb_valid && !lsu_valid))
        S_(r->sb_valid, i) = 0;
    if (is_store) {
        S_(r->sb_addr, i) = lsu_addr;
        S_(r->sb_data, i) = S_(r->lsu_wdata, i);
        S_(r->sb_op, i) = (u32)is_stb;
        S_(r->sb_valid, i) = 1;
    }

    int d_read = is_load, d_write = drain;
    int d_any = d_read || d_write;
    u32 prim_addr = d_read ? lsu_addr : sb_addr;
    int prim_byte = d_read ? is_ldb : (sb_op != 0);
    if (d_any)
        S_(r->dmc_addr, i) = prim_addr;
    if (d_write)
        S_(r->dmc_wdata, i) = sb_data;
    if (d_read)
        S_(r->dmc_rdata, i) = load_data;
    S_(r->dmc_ctrl, i) = d_any ? ((u32)d_read | ((u32)d_write << 1) | 8) : 0;
    S_(r->dmc_strb, i) =
        d_any ? (prim_byte ? (1u << (prim_addr & 3)) : 0xFu) : 0;

    /* Writeback before DX reads the file (subsumes the bypass net). */
    u32 wb_value = S_(r->mw_isload, i) ? load_data : S_(r->mw_val, i);
    if (mw_valid && S_(r->mw_wen, i))
        S_(x->rf_write[S_(r->mw_rd, i) & 0xF], i) = wb_value;
    if (mw_valid) {
        S_(r->ret_pc, i) = S_(r->mw_pc, i);
        S_(r->ret_val, i) = wb_value;
        S_(r->ret_rd, i) = S_(r->mw_rd, i);
    }
    S_(r->ret_valid, i) = mw_valid ? 1 : 0;

    /* ---------------- DX stage ---------------- */
    u32 if_valid_raw = S_(r->if_valid, i);
    int if_valid = if_valid_raw != 0;
    u32 if_pc = S_(r->if_pc, i);
    u32 word = S_(r->if_ir, i);
    u32 opnum = (word >> 26) & 0x3F;
    int64_t cls = x->opc_cls[opnum];
    u32 seq_next = if_pc + 4;
    u32 fetched_next = S_(r->if_pred, i) ? S_(r->if_ptgt, i) : seq_next;

    int irq = ((S_(r->irq_pending, i) & S_(r->irq_mask, i)) != 0)
              && ((S_(r->status, i) & 1) == 0);
    u32 ctrl = S_(r->dbg_ctrl, i);
    int bk = !irq && ((ctrl & 3) != 0)
             && ((((ctrl & 1) != 0) && if_pc == S_(r->dbg_bkpt0, i))
                 || (((ctrl & 2) != 0) && if_pc == S_(r->dbg_bkpt1, i)));
    int ill = !irq && !bk && !x->opc_valid[opnum];
    int trap = (irq || bk || ill) && if_valid;
    u32 trap_code = 0;
    if (ill)
        trap_code = (u32)c->cause_illegal;
    if (bk)
        trap_code = (u32)c->cause_bkpt;
    if (irq)
        trap_code = (u32)c->cause_irq;
    int dispatch = if_valid && !trap;

    u32 ra_f = (word >> 18) & 0xF;
    u32 rb_f = (word >> 14) & 0xF;
    u32 rd_f = (word >> 22) & 0xF;
    u32 ra_val = S_(x->rf_read[ra_f], i);
    u32 rb_val = S_(x->rf_read[rb_f], i);
    u32 imm32 = (word & 0x2000) ? ((word & 0x1FFF) | 0xFFFFE000u)
                                : (word & 0x1FFF);

    u32 n_mw_valid = 0, n_mw_wen = 0, n_mw_isload = 0, n_mw_rd = 0,
        n_mw_val = 0;
    u32 n_lsu_valid = 0, n_lsu_op = 0, n_br_valid = 0;
    int stall = 0, halt_now = 0;
    u32 actual_next = seq_next;
    u32 bidx = (if_pc >> 2) & 3;

    if (dispatch && cls == c->cls_alu) {
        int64_t sel = x->alu_sel[opnum];
        u32 a32 = ra_val;
        u32 b32 = x->opc_imm[opnum] ? imm32 : rb_val;
        u32 add_res = a32 + b32;
        u32 sub_res = a32 - b32;
        u32 sh = b32 & 31;
        u32 res = 0, carry = 0, ovf = 0;
        switch (sel) {
        case 1:
            res = add_res;
            carry = add_res < a32;
            ovf = ((~(a32 ^ b32) & (a32 ^ add_res)) >> 31) & 1;
            break;
        case 2:
            res = sub_res;
            carry = a32 >= b32;
            ovf = (((a32 ^ b32) & (a32 ^ sub_res)) >> 31) & 1;
            break;
        case 3: res = a32 & b32; break;
        case 4: res = a32 | b32; break;
        case 5: res = a32 ^ b32; break;
        case 6: res = a32 << sh; break;
        case 7: res = a32 >> sh; break;
        case 8: res = (u32)((int32_t)a32 >> (int)sh); break;
        case 9: res = (int32_t)a32 < (int32_t)b32; break;
        case 10: res = a32 < b32; break;
        default: break;
        }
        u32 nf = (res >> 31) & 1;
        u32 zf = res == 0;
        S_(r->flags, i) = (nf << 3) | (zf << 2) | (carry << 1) | ovf;
        n_mw_valid = 1;
        n_mw_wen = 1;
        n_mw_rd = rd_f;
        n_mw_val = res;
    } else if (dispatch && cls == c->cls_mul) {
        if (!S_(r->mul_pending, i)) {
            S_(r->mul_a, i) = ra_val;
            S_(r->mul_b, i) = rb_val;
            S_(r->mul_pending, i) = 1;
            stall = 1;
        } else {
            uint64_t prod =
                (uint64_t)S_(r->mul_a, i) * (uint64_t)S_(r->mul_b, i);
            u32 mres = (opnum == (u32)c->op_mul) ? (u32)prod
                                                 : (u32)(prod >> 32);
            S_(r->flags, i) =
                ((mres >> 31) & 1) << 3 | ((u32)(mres == 0)) << 2;
            S_(r->mul_pending, i) = 0;
            n_mw_valid = 1;
            n_mw_wen = 1;
            n_mw_rd = rd_f;
            n_mw_val = mres;
        }
    } else if (dispatch && cls == c->cls_lui) {
        n_mw_valid = 1;
        n_mw_wen = 1;
        n_mw_rd = rd_f;
        n_mw_val = (word & 0xFFFF) << 16;
    } else if (dispatch && cls == c->cls_mem) {
        u32 addr = ra_val + imm32;
        int word_op = opnum == (u32)c->op_ld || opnum == (u32)c->op_st;
        int misal = word_op && (addr & 3) != 0;
        int watch = !misal && (ctrl & 4) != 0 && addr == S_(r->dbg_watch0, i);
        int mpu_hit = 0;
        u32 mc = S_(r->mpu_ctrl, i);
        if (mc != 0) {
            int reg;
            for (reg = 0; reg < 4; reg++) {
                if (((mc >> (2 * reg)) & 3) == 3
                    && S_(r->mpu_base0 + reg, i) <= addr
                    && addr < S_(r->mpu_limit0 + reg, i))
                    mpu_hit = 1;
            }
        }
        int mpu = !misal && !watch && mpu_hit;
        if (mpu)
            trap_code = (u32)c->cause_mpu;
        if (watch)
            trap_code = (u32)c->cause_watch;
        if (misal)
            trap_code = (u32)c->cause_misaligned;
        if (misal || watch || mpu) {
            trap = 1;
        } else {
            if (S_(r->status, i) & (u32)c->status_cnt_en)
                S_(r->cnt_mem, i) += 1;
            n_lsu_valid = 1;
            n_lsu_op = x->lsu_op_of[opnum];
            S_(r->lsu_addr, i) = addr;
            if (opnum == (u32)c->op_st || opnum == (u32)c->op_stb)
                S_(r->lsu_wdata, i) = rb_val;
            n_mw_valid = 1;
            if (opnum == (u32)c->op_ld || opnum == (u32)c->op_ldb) {
                n_mw_wen = 1;
                n_mw_isload = 1;
            }
            n_mw_rd = rd_f;
            n_mw_val = addr;
        }
    } else if (dispatch && cls == c->cls_branch) {
        if (S_(r->status, i) & (u32)c->status_cnt_en)
            S_(r->cnt_branch, i) += 1;
        int64_t bsel = (int64_t)opnum - c->op_beq;
        if (bsel < 0)
            bsel = 0;
        if (bsel > 5)
            bsel = 5;
        int taken = 0;
        switch (bsel) {
        case 0: taken = ra_val == rb_val; break;
        case 1: taken = ra_val != rb_val; break;
        case 2: taken = (int32_t)ra_val < (int32_t)rb_val; break;
        case 3: taken = (int32_t)ra_val >= (int32_t)rb_val; break;
        case 4: taken = ra_val < rb_val; break;
        case 5: taken = ra_val >= rb_val; break;
        }
        u32 target = seq_next + (imm32 << 2);
        S_(r->br_target, i) = target;
        S_(r->br_taken, i) = (u32)taken;
        n_br_valid = 1;
        if (taken) {
            actual_next = target;
            S_(r->btb_tag0 + bidx, i) = if_pc;
            S_(r->btb_tgt0 + bidx, i) = target;
            S_(r->btb_v, i) |= 1u << bidx;
        } else if (S_(r->if_pred, i)
                   && S_(r->btb_tag0 + bidx, i) == if_pc) {
            /* NOT4[bidx]: clears the way bit and any bits above 3. */
            S_(r->btb_v, i) &= (~(1u << bidx)) & 0xF;
        }
        n_mw_valid = 1;
    } else if (dispatch && (cls == c->cls_jal || cls == c->cls_jalr)) {
        u32 off32 = (word & 0x20000) ? ((word & 0x1FFFF) | 0xFFFE0000u)
                                     : (word & 0x3FFFF);
        u32 jt = (cls == c->cls_jal) ? seq_next + (off32 << 2)
                                     : (ra_val + imm32) & 0xFFFFFFFCu;
        actual_next = jt;
        S_(r->br_target, i) = jt;
        S_(r->br_taken, i) = 1;
        n_br_valid = 1;
        S_(r->btb_tag0 + bidx, i) = if_pc;
        S_(r->btb_tgt0 + bidx, i) = jt;
        S_(r->btb_v, i) |= 1u << bidx;
        n_mw_valid = 1;
        n_mw_wen = 1;
        n_mw_rd = rd_f;
        n_mw_val = seq_next;
    } else if (dispatch && cls == c->cls_in) {
        n_lsu_valid = 1;
        n_lsu_op = 5;
        S_(r->lsu_addr, i) = imm32;
        n_mw_valid = 1;
        n_mw_wen = 1;
        n_mw_isload = 1;
        n_mw_rd = rd_f;
    } else if (dispatch && cls == c->cls_out) {
        n_lsu_valid = 1;
        n_lsu_op = 6;
        S_(r->lsu_addr, i) = imm32;
        S_(r->lsu_wdata, i) = rb_val;
        n_mw_valid = 1;
    } else if (dispatch && cls == c->cls_csrr) {
        u32 csr_idx = word & 0x3FFF;
        n_mw_valid = 1;
        n_mw_wen = 1;
        n_mw_rd = rd_f;
        n_mw_val = S_(x->csr_read[csr_idx], i);
    } else if (dispatch && cls == c->cls_csrw) {
        u32 csr_idx = word & 0x3FFF;
        S_(x->csr_write[csr_idx], i) = rb_val & x->csr_wmask[csr_idx];
        n_mw_valid = 1;
    } else if (dispatch && cls == c->cls_nop) {
        n_mw_valid = 1;
    } else if (dispatch && cls == c->cls_halt) {
        halt_now = 1;
    }

    if (trap) {
        S_(r->cause, i) = trap_code;
        S_(r->epc, i) = if_pc;
        S_(r->status, i) |= 1;
        S_(r->sflags, i) = S_(r->flags, i);
    }

    int mispred = dispatch && !trap && !stall && !halt_now
                  && actual_next != fetched_next;
    int redirect = trap || mispred;
    u32 redirect_tgt = trap ? (u32)c->exc_vector : actual_next;

    /* DX -> MW latches (n_mw_pc reads mw_pc before the overwrite). */
    u32 n_mw_pc = if_valid ? if_pc : S_(r->mw_pc, i);
    S_(r->mw_valid, i) = stall ? 0 : n_mw_valid;
    if (!stall) {
        S_(r->mw_wen, i) = n_mw_wen;
        S_(r->mw_isload, i) = n_mw_isload;
        S_(r->mw_rd, i) = n_mw_rd;
        S_(r->mw_val, i) = n_mw_val;
        S_(r->mw_pc, i) = n_mw_pc;
    }
    S_(r->lsu_valid, i) = stall ? 0 : n_lsu_valid;
    S_(r->lsu_op, i) = stall ? 0 : n_lsu_op;
    S_(r->br_valid, i) = n_br_valid;

    /* ---------------- IF stages ---------------- */
    u32 fetch_addr = 0, fetch_word = 0;
    int fetched = 0;
    if (halt_now) {
        S_(r->halted, i) = 1;
        S_(r->if_valid, i) = 0;
        S_(r->imc_valid, i) = 0;
        S_(r->imc_pred, i) = 0;
    } else if (redirect) {
        S_(r->pc, i) = redirect_tgt;
        S_(r->if_valid, i) = 0;
        S_(r->if_pred, i) = 0;
        S_(r->imc_valid, i) = 0;
        S_(r->imc_pred, i) = 0;
    } else if (!stall) {
        u32 pc_old = S_(r->pc, i);
        /* IF2: prefetch buffer -> decode latch. */
        S_(r->if_ir, i) = S_(r->imc_data, i);
        S_(r->if_pc, i) = S_(r->imc_addr, i);
        S_(r->if_valid, i) = S_(r->imc_valid, i);
        S_(r->if_pred, i) = S_(r->imc_pred, i);
        S_(r->if_ptgt, i) = S_(r->imc_ptgt, i);
        /* IF1: fetch at pc with BTB next-fetch prediction. */
        u32 fw = M[(pc_old >> 2) % mem_words];
        S_(r->imc_addr, i) = pc_old;
        S_(r->imc_data, i) = fw;
        S_(r->imc_valid, i) = 1;
        u32 fb = (pc_old >> 2) & 3;
        if ((S_(r->btb_v, i) & (1u << fb)) != 0
            && S_(r->btb_tag0 + fb, i) == pc_old) {
            u32 tgt = S_(r->btb_tgt0 + fb, i);
            S_(r->pc, i) = tgt;
            S_(r->imc_pred, i) = 1;
            S_(r->imc_ptgt, i) = tgt;
        } else {
            S_(r->pc, i) = pc_old + 4;
            S_(r->imc_pred, i) = 0;
        }
        fetch_addr = pc_old;
        fetch_word = fw;
        fetched = 1;
    }

    /* ---------------- BIU external bus view ---------------- */
    if (d_any) {
        S_(r->bus_addr, i) = prim_addr;
        S_(r->bus_data, i) = d_read ? load_data : sb_data;
        S_(r->bus_ctrl, i) = d_write ? 3 : 2;
    } else if (fetched) {
        S_(r->bus_addr, i) = fetch_addr;
        S_(r->bus_data, i) = fetch_word;
        S_(r->bus_ctrl, i) = 1;
    } else {
        S_(r->bus_ctrl, i) = 0;
    }

    S_(r->cyc, i) += 1;
}

/* -- buffer plumbing -------------------------------------------------------- */

typedef struct {
    const char *name;
    int writable;
    Py_ssize_t itemsize;
} BufSpec;

static int get_buf(PyObject *obj, Py_buffer *view, const BufSpec *spec)
{
    int flags = PyBUF_C_CONTIGUOUS;
    if (spec->writable)
        flags |= PyBUF_WRITABLE;
    if (PyObject_GetBuffer(obj, view, flags) < 0)
        return -1;
    if (view->itemsize != spec->itemsize) {
        PyErr_Format(PyExc_ValueError, "%s: expected itemsize %zd, got %zd",
                     spec->name, spec->itemsize, view->itemsize);
        PyBuffer_Release(view);
        view->obj = NULL;
        return -1;
    }
    return 0;
}

static const BufSpec TABLE_SPECS[13] = {
    {"rowmap", 0, 8},     {"consts", 0, 8},        {"opc_cls", 0, 8},
    {"opc_valid", 0, 1},  {"opc_imm", 0, 1},       {"alu_sel", 0, 8},
    {"lsu_op_of", 0, 4},  {"rf_read_row", 0, 8},   {"rf_write_row", 0, 8},
    {"csr_read_row", 0, 8}, {"csr_write_row", 0, 8}, {"csr_write_mask", 0, 4},
    {"port_rows16", 0, 8},
};

/* Fill the Ctx tables from the 13-tuple; all buffers are recorded in
 * `views` for release by the caller. */
static int load_tables(PyObject *tables, Py_buffer views[13], Ctx *x)
{
    Py_ssize_t k;
    if (!PyTuple_Check(tables) || PyTuple_GET_SIZE(tables) != 13) {
        PyErr_SetString(PyExc_TypeError, "tables must be a 13-tuple");
        return -1;
    }
    for (k = 0; k < 13; k++)
        views[k].obj = NULL;
    for (k = 0; k < 13; k++) {
        if (get_buf(PyTuple_GET_ITEM(tables, k), &views[k],
                    &TABLE_SPECS[k]) < 0)
            return -1;
    }
    if (views[0].len != N_ROWMAP * 8 || views[1].len != N_CONSTS * 8) {
        PyErr_SetString(PyExc_ValueError, "rowmap/consts length mismatch");
        return -1;
    }
    memcpy(&x->r, views[0].buf, sizeof(RowMap));
    memcpy(&x->c, views[1].buf, sizeof(Consts));
    x->opc_cls = (const int64_t *)views[2].buf;
    x->opc_valid = (const uint8_t *)views[3].buf;
    x->opc_imm = (const uint8_t *)views[4].buf;
    x->alu_sel = (const int64_t *)views[5].buf;
    x->lsu_op_of = (const u32 *)views[6].buf;
    x->rf_read = (const int64_t *)views[7].buf;
    x->rf_write = (const int64_t *)views[8].buf;
    x->csr_read = (const int64_t *)views[9].buf;
    x->csr_write = (const int64_t *)views[10].buf;
    x->csr_wmask = (const u32 *)views[11].buf;
    x->port_rows = (const int64_t *)views[12].buf;
    return 0;
}

static void release_all(Py_buffer *views, Py_ssize_t count)
{
    Py_ssize_t k;
    for (k = 0; k < count; k++) {
        if (views[k].obj != NULL)
            PyBuffer_Release(&views[k]);
    }
}

/* -- step(S, M, stim, tables, n): one plain cycle, no driver logic --------- */

static PyObject *py_step(PyObject *self, PyObject *args)
{
    PyObject *s_obj, *m_obj, *stim_obj, *tables;
    Py_ssize_t n;
    if (!PyArg_ParseTuple(args, "OOOOn", &s_obj, &m_obj, &stim_obj,
                          &tables, &n))
        return NULL;

    Py_buffer sv = {0}, mv = {0}, stv = {0}, tv[13];
    Ctx x;
    PyObject *ret = NULL;
    static const BufSpec s_spec = {"S", 1, 4};
    static const BufSpec m_spec = {"M", 1, 4};
    static const BufSpec st_spec = {"stim", 0, 4};

    if (get_buf(s_obj, &sv, &s_spec) < 0)
        return NULL;
    if (get_buf(m_obj, &mv, &m_spec) < 0)
        goto done_s;
    if (get_buf(stim_obj, &stv, &st_spec) < 0)
        goto done_m;
    if (load_tables(tables, tv, &x) < 0)
        goto done_tables;
    if (sv.ndim != 2 || mv.ndim != 2) {
        PyErr_SetString(PyExc_ValueError, "S and M must be 2-D");
        goto done_tables;
    }
    x.S = (u32 *)sv.buf;
    x.n_rows = sv.shape[0];
    x.B = sv.shape[1];
    x.M = (u32 *)mv.buf;
    x.mem_words = mv.shape[1];
    x.stim = (const u32 *)stv.buf;
    x.stim_len = stv.len / 4;
    if (n < 0 || n > x.B || mv.shape[0] != x.B || x.stim_len <= 0
        || x.mem_words <= 0) {
        PyErr_SetString(PyExc_ValueError, "inconsistent lane shapes");
        goto done_tables;
    }

    {
        Py_ssize_t i;
        for (i = 0; i < n; i++)
            step_lane(&x, i);
    }
    ret = Py_None;
    Py_INCREF(ret);

done_tables:
    release_all(tv, 13);
    PyBuffer_Release(&stv);
done_m:
    PyBuffer_Release(&mv);
done_s:
    PyBuffer_Release(&sv);
    return ret;
}

/* -- drive(...): the fused driver hot loop ---------------------------------
 *
 * Runs every lane independently to its own next rare-path event
 * (lanes outer, cycles inner — one lane's SoA column is ~100 cache
 * lines, so the inner loop runs entirely out of L1 regardless of the
 * batch width).  Per cycle and per lane the order matches the numpy
 * driver exactly: horizon check, masking/re-convergence check (with
 * the routine bookkeeping — stride bumps, stuck-at interval backoff —
 * handled inline), force re-assert, golden port compare, step.  A lane
 * parks, without stepping further, when
 *
 *   - it reaches its observation horizon (t >= end),
 *   - its state goes bit-identical to golden at a check cycle (soft
 *     retire, or stuck-at fast-forward — the pre-force compare, as in
 *     the numpy driver), or
 *   - its ports differ from golden at its current cycle; the lane is
 *     left pre-step with the force applied, so the Python detection
 *     path sees exactly what the numpy kernel would have seen.
 *
 * Returns (cycles_run, diverged): cycles_run is the total number of
 * lane-cycles actually stepped (the caller charges it verbatim to
 * PruneStats.sim_cycles), diverged is 1 iff at least one lane parked
 * on a port divergence.  On return *every* lane is parked at one of
 * the three events above; the Python phases (a)/(b)/(d) re-derive
 * which from the lane state itself and retire/fast-forward/record
 * through the same code path as the numpy kernel.
 *
 * Threading: drive() drops the GIL for the whole loop and, for
 * n_threads > 1, statically partitions the lane range into contiguous
 * slices run by a persistent process-wide pthread pool (the caller
 * runs slice 0).  Lanes never share mutable state — S/M columns, t,
 * check bookkeeping are all per-lane, and the golden matrices and
 * decode tables are read-only — so the slices need no locks; each
 * slice accumulates its own (cycles_run, diverged, error) triple and
 * the caller sums them after the join, which keeps the return value
 * (and every lane's parked state) bit-identical to the single-thread
 * loop for any thread count.
 */

/* Everything one drive call's slices share, all borrowed from the
 * caller's Py_buffer views (valid for the call's lifetime). */
typedef struct {
    Ctx *x;
    const u32 *sm, *pm;
    Py_ssize_t sm_cols, sm_cycles, pm_cols, pm_cycles;
    int64_t *t;
    const int64_t *end;
    int64_t *next_chk, *chk_iv;
    const uint8_t *is_hard;
    const int64_t *force_row;
    const u32 *force_and, *force_or;
    Py_ssize_t n, stride, max_cycles, n_regs;
} DriveJob;

typedef struct {
    Py_ssize_t cycles_run;
    int diverged;
    int error;                  /* 0 ok, else a DRIVE_ERR_* code */
} SliceResult;

enum { DRIVE_ERR_STATE = 1, DRIVE_ERR_PORTS = 2 };

static const char *const DRIVE_ERR_MSG[] = {
    NULL,
    "lane cycle outside golden trace",
    "lane cycle outside golden ports",
};

/* One lane to its next park event.  Pure function of per-lane state:
 * no Python API, no shared writes — callable with the GIL released
 * from any pool thread. */
static int drive_lane(const DriveJob *d, Py_ssize_t i,
                      Py_ssize_t *cycles_run, int *diverged)
{
    Ctx *x = d->x;
    const RowMap *r = &x->r;
    int64_t *t = d->t;
    Py_ssize_t ran = 0;

    while (ran < d->max_cycles) {
        /* Rare-path events: observation horizon, or state equal to
         * golden at a check cycle (retire / fast-forward).  Routine
         * check outcomes (state differs) are handled inline exactly
         * as the numpy driver would: soft lanes re-check every
         * `stride` cycles, stuck-at lanes back off exponentially.
         * The checks run pre-force on purpose — the scalar engine's
         * snapshot at the same cycle is equally unforced. */
        if (t[i] >= d->end[i])
            break;
        if (t[i] == d->next_chk[i]) {
            if (t[i] < 0 || t[i] >= d->sm_cycles)
                return DRIVE_ERR_STATE;
            const u32 *g = d->sm + (size_t)t[i] * (size_t)d->sm_cols;
            int eq = 1;
            Py_ssize_t row;
            for (row = 0; row < d->n_regs; row++) {
                if (x->S[(size_t)row * (size_t)x->B + (size_t)i]
                    != g[row]) {
                    eq = 0;
                    break;
                }
            }
            if (eq)
                break;
            if (d->is_hard[i]) {
                d->chk_iv[i] *= 2;
                d->next_chk[i] = t[i] + d->chk_iv[i];
            } else {
                d->next_chk[i] += d->stride;
            }
        }

        /* Re-assert the stuck-at force (soft lanes force the sink
         * row). */
        u32 *fp = &x->S[(size_t)d->force_row[i] * (size_t)x->B
                        + (size_t)i];
        *fp = (*fp & d->force_and[i]) | d->force_or[i];

        /* Golden port compare at the lane's own cycle. */
        if (t[i] < 0 || t[i] >= d->pm_cycles)
            return DRIVE_ERR_PORTS;
        const u32 *g = d->pm + (size_t)t[i] * (size_t)d->pm_cols;
        int div = 0;
        Py_ssize_t pk;
        for (pk = 0; pk < 16; pk++) {
            if (x->S[(size_t)x->port_rows[pk] * (size_t)x->B
                     + (size_t)i] != g[pk]) {
                div = 1;
                break;
            }
        }
        if (!div) {
            u32 evs = (S_(r->status, i) & 1) | (S_(r->halted, i) << 1);
            u32 evb = S_(r->br_taken, i) | (S_(r->br_valid, i) << 1);
            if (evs != g[16] || evb != g[17])
                div = 1;
        }
        if (div) {
            *diverged = 1;
            break;
        }

        step_lane(x, i);
        t[i] += 1;
        ran++;
    }
    *cycles_run += ran;
    return 0;
}

/* Slice k of n_slices: the contiguous lane range
 * [k*floor + min(k, rem), ...) so widths differ by at most one lane
 * and each thread walks adjacent SoA columns (L1-friendly, no false
 * sharing except at the two slice-boundary cache lines). */
static void run_slice(const DriveJob *d, int k, int n_slices,
                      SliceResult *res)
{
    Py_ssize_t lo, hi, i;
    Py_ssize_t width = d->n / n_slices, rem = d->n % n_slices;
    lo = (Py_ssize_t)k * width + (k < rem ? k : rem);
    hi = lo + width + (k < rem ? 1 : 0);
    res->cycles_run = 0;
    res->diverged = 0;
    res->error = 0;
    for (i = lo; i < hi; i++) {
        int err = drive_lane(d, i, &res->cycles_run, &res->diverged);
        if (err) {
            res->error = err;
            return;
        }
    }
}

/* -- persistent worker-thread pool ------------------------------------------
 *
 * Created lazily on the first multithreaded drive() and reused for the
 * life of the process (workers are detached and park in
 * pthread_cond_wait between jobs, so an idle pool costs nothing).  One
 * job slot: the dispatching thread holds `busy` for the whole
 * dispatch/join, and a concurrent drive() that finds the pool busy
 * (threaded shard executor running several engines at once) simply
 * runs its own call single-threaded inline — never blocked, never
 * deadlocked.  A fork invalidates inherited workers; the owner-pid
 * check reinitialises the (then thread-free) child's pool state from
 * scratch on its first drive.
 */
#define MAX_DRIVE_THREADS 64

static struct {
    pthread_mutex_t busy;       /* held across one job's dispatch+join */
    pthread_mutex_t lock;       /* protects everything below */
    pthread_cond_t work_cv;     /* a new job generation is available */
    pthread_cond_t done_cv;     /* pending hit zero */
    pid_t owner;                /* pid the pool threads belong to */
    int spawned;                /* worker threads created (caller excluded) */
    int ready;                  /* workers parked in their loop (<= spawned) */
    unsigned long gen;          /* job generation counter */
    int pending;                /* workers still to finish current gen */
    const DriveJob *job;
    int n_slices;
    SliceResult results[MAX_DRIVE_THREADS];   /* worker w -> slice w+1 */
} pool = {
    PTHREAD_MUTEX_INITIALIZER, PTHREAD_MUTEX_INITIALIZER,
    PTHREAD_COND_INITIALIZER, PTHREAD_COND_INITIALIZER,
    0, 0, 0, 0, 0, NULL, 0, {{0, 0, 0}},
};

static void *drive_worker(void *arg)
{
    int id = (int)(intptr_t)arg;
    unsigned long seen;
    pthread_mutex_lock(&pool.lock);
    /* A worker spawned while a job is in flight (ensure_pool growing
     * the pool for a different caller) must not join that job — its
     * dispatcher counted only the workers ready at dispatch time. */
    seen = pool.gen;
    pool.ready += 1;
    for (;;) {
        while (pool.gen == seen)
            pthread_cond_wait(&pool.work_cv, &pool.lock);
        seen = pool.gen;
        {
            const DriveJob *job = pool.job;
            int n_slices = pool.n_slices;
            pthread_mutex_unlock(&pool.lock);
            if (job != NULL && id + 1 < n_slices)
                run_slice(job, id + 1, n_slices, &pool.results[id]);
            pthread_mutex_lock(&pool.lock);
        }
        if (--pool.pending == 0)
            pthread_cond_signal(&pool.done_cv);
    }
    return NULL;                /* unreachable: workers live forever */
}

/* Grow the pool to `want` workers.  Called with the GIL held, so calls
 * are serialised; returns the worker count actually available (spawn
 * failure degrades the call, it never fails it). */
static int ensure_pool(int want)
{
    if (pool.owner != getpid()) {
        /* First use in this process — or a fork, which copies the
         * bookkeeping but none of the threads.  No pool thread of ours
         * can exist yet, so reinitialising the primitives is safe. */
        pthread_mutex_init(&pool.busy, NULL);
        pthread_mutex_init(&pool.lock, NULL);
        pthread_cond_init(&pool.work_cv, NULL);
        pthread_cond_init(&pool.done_cv, NULL);
        pool.spawned = 0;
        pool.ready = 0;
        pool.gen = 0;
        pool.pending = 0;
        pool.owner = getpid();
    }
    while (pool.spawned < want && pool.spawned < MAX_DRIVE_THREADS) {
        pthread_t tid;
        pthread_attr_t attr;
        if (pthread_attr_init(&attr) != 0)
            break;
        pthread_attr_setdetachstate(&attr, PTHREAD_CREATE_DETACHED);
        if (pthread_create(&tid, &attr, drive_worker,
                           (void *)(intptr_t)pool.spawned) != 0) {
            pthread_attr_destroy(&attr);
            break;              /* degrade to the threads we have */
        }
        pthread_attr_destroy(&attr);
        pool.spawned += 1;
    }
    return pool.spawned;
}

/* Run one job across at most want_slices slices (slice 0 always on
 * the calling thread), merging the per-slice triples.  The live slice
 * count is clamped, under the lock, to the workers actually parked in
 * their loop — a freshly spawned worker that hasn't reached its wait
 * yet must not be assigned a slice it would never run.  Every ready
 * worker joins the generation barrier even when it has no slice.
 * Called with the GIL released and pool.busy held. */
static void run_job(const DriveJob *job, int want_slices,
                    SliceResult *out)
{
    SliceResult mine;
    int n_slices, dispatched = 0, k;

    pthread_mutex_lock(&pool.lock);
    n_slices = pool.ready + 1;
    if (n_slices > want_slices)
        n_slices = want_slices;
    if (n_slices > 1) {
        pool.job = job;
        pool.n_slices = n_slices;
        pool.pending = pool.ready;
        pool.gen += 1;
        dispatched = 1;
        pthread_cond_broadcast(&pool.work_cv);
    }
    pthread_mutex_unlock(&pool.lock);

    run_slice(job, 0, n_slices, &mine);

    if (dispatched) {
        pthread_mutex_lock(&pool.lock);
        while (pool.pending != 0)
            pthread_cond_wait(&pool.done_cv, &pool.lock);
        pool.job = NULL;
        pthread_mutex_unlock(&pool.lock);
    }
    *out = mine;
    for (k = 1; k < n_slices; k++) {
        out->cycles_run += pool.results[k - 1].cycles_run;
        out->diverged |= pool.results[k - 1].diverged;
        if (out->error == 0)
            out->error = pool.results[k - 1].error;
    }
}

static PyObject *py_drive(PyObject *self, PyObject *args)
{
    PyObject *s_obj, *m_obj, *sm_obj, *pm_obj, *stim_obj;
    PyObject *t_obj, *end_obj, *chk_obj, *iv_obj, *hard_obj;
    PyObject *frow_obj, *fand_obj, *for_obj, *tables;
    Py_ssize_t n, stride, max_cycles, n_threads;

    if (!PyArg_ParseTuple(args, "OOOOOOOOOOOOOOnnnn", &s_obj, &m_obj,
                          &sm_obj, &pm_obj, &stim_obj, &t_obj, &end_obj,
                          &chk_obj, &iv_obj, &hard_obj, &frow_obj,
                          &fand_obj, &for_obj, &tables, &n, &stride,
                          &max_cycles, &n_threads))
        return NULL;

    enum { B_S, B_M, B_SM, B_PM, B_STIM, B_T, B_END, B_CHK, B_IV,
           B_HARD, B_FROW, B_FAND, B_FOR, NBUF };
    static const BufSpec specs[NBUF] = {
        {"S", 1, 4},        {"M", 1, 4},         {"sm", 0, 4},
        {"pm", 0, 4},       {"stim", 0, 4},      {"t", 1, 8},
        {"end", 0, 8},      {"next_chk", 1, 8},  {"chk_iv", 1, 8},
        {"is_hard", 0, 1},  {"force_row", 0, 8}, {"force_and", 0, 4},
        {"force_or", 0, 4},
    };
    PyObject *objs[NBUF];
    objs[B_S] = s_obj; objs[B_M] = m_obj; objs[B_SM] = sm_obj;
    objs[B_PM] = pm_obj; objs[B_STIM] = stim_obj; objs[B_T] = t_obj;
    objs[B_END] = end_obj; objs[B_CHK] = chk_obj; objs[B_IV] = iv_obj;
    objs[B_HARD] = hard_obj; objs[B_FROW] = frow_obj;
    objs[B_FAND] = fand_obj; objs[B_FOR] = for_obj;

    Py_buffer views[NBUF], tv[13];
    Py_ssize_t k;
    PyObject *ret = NULL;
    int tables_held = 0;
    Ctx ctx;
    Ctx *x = &ctx;

    for (k = 0; k < NBUF; k++)
        views[k].obj = NULL;
    for (k = 0; k < NBUF; k++) {
        if (get_buf(objs[k], &views[k], &specs[k]) < 0)
            goto cleanup;
    }
    if (load_tables(tables, tv, x) < 0) {
        tables_held = 1;
        goto cleanup;
    }
    tables_held = 1;

    if (views[B_S].ndim != 2 || views[B_M].ndim != 2
        || views[B_SM].ndim != 2 || views[B_PM].ndim != 2) {
        PyErr_SetString(PyExc_ValueError, "S/M/sm/pm must be 2-D");
        goto cleanup;
    }
    x->S = (u32 *)views[B_S].buf;
    x->n_rows = views[B_S].shape[0];
    x->B = views[B_S].shape[1];
    x->M = (u32 *)views[B_M].buf;
    x->mem_words = views[B_M].shape[1];
    x->stim = (const u32 *)views[B_STIM].buf;
    x->stim_len = views[B_STIM].len / 4;

    const u32 *sm = (const u32 *)views[B_SM].buf;
    const Py_ssize_t sm_cols = views[B_SM].shape[1];
    const Py_ssize_t sm_cycles = views[B_SM].shape[0];
    const u32 *pm = (const u32 *)views[B_PM].buf;
    const Py_ssize_t pm_cols = views[B_PM].shape[1];
    const Py_ssize_t pm_cycles = views[B_PM].shape[0];
    int64_t *t = (int64_t *)views[B_T].buf;
    const int64_t *end = (const int64_t *)views[B_END].buf;
    int64_t *next_chk = (int64_t *)views[B_CHK].buf;
    int64_t *chk_iv = (int64_t *)views[B_IV].buf;
    const uint8_t *is_hard = (const uint8_t *)views[B_HARD].buf;
    const int64_t *force_row = (const int64_t *)views[B_FROW].buf;
    const u32 *force_and = (const u32 *)views[B_FAND].buf;
    const u32 *force_or = (const u32 *)views[B_FOR].buf;
    const Py_ssize_t n_regs = (Py_ssize_t)x->c.n_regs;

    if (n < 0 || n > x->B || views[B_M].shape[0] != x->B
        || views[B_T].len / 8 < n || views[B_END].len / 8 < n
        || views[B_CHK].len / 8 < n || views[B_IV].len / 8 < n
        || views[B_HARD].len < n || views[B_FROW].len / 8 < n
        || views[B_FAND].len / 4 < n || views[B_FOR].len / 4 < n
        || sm_cols < n_regs || pm_cols < 18 || n_regs > x->n_rows
        || x->stim_len <= 0 || x->mem_words <= 0) {
        PyErr_SetString(PyExc_ValueError, "inconsistent drive shapes");
        goto cleanup;
    }

    DriveJob job = {
        x, sm, pm, sm_cols, sm_cycles, pm_cols, pm_cycles,
        t, end, next_chk, chk_iv, is_hard, force_row, force_and,
        force_or, n, stride, max_cycles, n_regs,
    };
    SliceResult total;
    int n_slices = 1;

    if (n_threads > (Py_ssize_t)(MAX_DRIVE_THREADS + 1))
        n_threads = MAX_DRIVE_THREADS + 1;
    if (n_threads > n)
        n_threads = n;          /* never hand a thread an empty slice */
    if (n_threads > 1) {
        /* GIL still held: serialised pool growth, then claim the job
         * slot.  A concurrent drive() (threaded shard executor) that
         * loses the trylock runs inline single-threaded instead of
         * blocking on the pool. */
        int avail = ensure_pool((int)n_threads - 1);
        if (avail > (int)n_threads - 1)
            avail = (int)n_threads - 1;  /* pool may have grown larger */
        if (avail > 0 && pthread_mutex_trylock(&pool.busy) == 0)
            n_slices = avail + 1;
    }

    if (n_slices > 1) {
        Py_BEGIN_ALLOW_THREADS
        run_job(&job, n_slices, &total);
        Py_END_ALLOW_THREADS
        pthread_mutex_unlock(&pool.busy);
    } else {
        Py_BEGIN_ALLOW_THREADS
        run_slice(&job, 0, 1, &total);
        Py_END_ALLOW_THREADS
    }

    if (total.error != 0) {
        PyErr_SetString(PyExc_ValueError, DRIVE_ERR_MSG[total.error]);
        goto cleanup;
    }
    ret = Py_BuildValue("(ni)", total.cycles_run, total.diverged);

cleanup:
    if (tables_held)
        release_all(tv, 13);
    release_all(views, NBUF);
    return ret;
}

/* Worker threads created in this process so far (0 after a fork until
 * the next multithreaded drive).  Introspection for tests/benchmarks. */
static PyObject *py_pool_size(PyObject *self, PyObject *args)
{
    (void)self;
    (void)args;
    if (pool.owner != getpid())
        return PyLong_FromLong(0);
    return PyLong_FromLong((long)pool.spawned);
}

static PyMethodDef methods[] = {
    {"step", py_step, METH_VARARGS,
     "step(S, M, stim, tables, n): advance lanes 0..n-1 one cycle."},
    {"drive", py_drive, METH_VARARGS,
     "drive(S, M, sm, pm, stim, t, end, next_chk, chk_iv, is_hard, "
     "force_row, force_and, force_or, tables, n, stride, max_cycles, "
     "n_threads) -> (cycles_run, diverged): fused force/compare/step "
     "loop; lanes are sliced across a persistent thread pool (GIL "
     "released) when n_threads > 1."},
    {"pool_size", py_pool_size, METH_NOARGS,
     "pool_size() -> worker threads alive in this process's pool."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef moduledef = {
    PyModuleDef_HEAD_INIT, "_cstep",
    "Compiled fused batch-step kernel (see repro.faults.batch).",
    -1, methods,
};

PyMODINIT_FUNC PyInit__cstep(void)
{
    return PyModule_Create(&moduledef);
}
