"""Two-tier golden traces: architectural tier + flop-accurate tier.

The flop-accurate :class:`~repro.faults.golden.GoldenTrace` is the
single source of truth for injection outcomes, but it is expensive to
produce: the full pipeline is simulated with def/use access tracing
attached and every cycle's flop snapshot is recorded.  This module adds
a *cheap* architectural tier on top of it:

* :class:`ArchTrace` replays the same workload on the single-step ISA
  reference model (:class:`repro.verify.refmodel.RefModel`) — no
  pipeline, no snapshots, no liveness tracing.  Producing it is roughly
  an order of magnitude cheaper than the flop-accurate trace (measured
  ~6-12x across the kernel suite, see ``bench_engine_throughput.py``).
  Besides the architectural OUT/retire streams it records triage
  metadata: the executed-word footprint and which architectural
  registers the program can ever read or write.

* :class:`TieredGolden` wires the two tiers together for the campaign:
  tier 1 is built eagerly (cheap), tier 2 — the flop-accurate trace —
  is built or mmap-loaded lazily, only when a fault actually needs flop
  data.  Fault *scheduling* needs nothing but ``n_cycles``, which is
  peeked from the trace-cache header (:func:`peek_cached_n_cycles`)
  without touching the matrices, so a warm-cache worker defers the full
  trace until the first injection.

* :meth:`ArchTrace.cross_check` validates a flop-accurate trace against
  the architectural tier (OUT stream equality, retire/cycle-count
  sanity).  Every tier-2 trace a :class:`TieredGolden` hands out is
  cross-checked first, so a corrupt cache file or a pipeline/trace
  regression is caught for ~a tenth of the cost of re-simulating it —
  the paper's safety-critical setting makes "trust the golden core"
  exactly the assumption worth guarding.

Why the architectural tier does **not** prune faults
----------------------------------------------------

An obvious-looking optimisation is to skip register-file faults whose
architectural register is never read by any executed instruction.  It
is unsound at flop level: the pipeline fetches down wrong paths and the
register file is indexed by whatever bits the speculatively fetched
word carries in its ra/rb fields, so a flop can be *read by the
pipeline* (and reach a port) in cycles where no architecturally
executed instruction reads it.  The flop-level liveness masks recorded
in the golden trace capture exactly those reads; the architectural
read-set is an under-approximation and must not gate outcomes.  Tier 1
therefore only schedules, validates and annotates — every outcome
decision stays with tier-2 data, which is what keeps batch/scalar
digests bit-identical.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import numpy as np

from ..cpu import isa
from ..cpu.assembler import assemble
from ..cpu.memory import InputStream, Memory
from ..verify.refmodel import RefModel
from ..workloads.kernels import DEFAULT_SEED, Workload
from .campaign import CAMPAIGN_SCHEMA_VERSION
from .golden import CAMPAIGN_MEM_WORDS, GoldenTrace, golden_cache_dir

#: ``port_matrix`` column indices of the OUT port pair (see
#: ``Cpu.step``'s return tuple): the latched OUT value and the toggle
#: strobe an external actuator latch samples.
_IO_OUT_COL = 10
_IO_OUT_V_COL = 11

#: OUT values whose strobe toggle may fall past the end of the recorded
#: trace (in-flight when HALT committed) — bounds the allowed prefix gap
#: in :meth:`ArchTrace.cross_check`.
_PIPELINE_DEPTH = 4


class ArchTrace:
    """Architectural (ISA-level) golden record of one workload kernel.

    Attributes:
        workload / seed / mem_words: identity, matching
            :class:`~repro.faults.golden.GoldenTrace`.
        n_steps: architecturally executed instructions until HALT.
        outputs: the OUT-port value stream.
        retires: ordered ``(pc, value, rd, wen)`` retire records.
        executed_words: set of executed memory word indices (the
            instruction footprint, wrong-path fetches excluded).
        reg_reads / reg_writes: 16-bit masks of architectural registers
            any executed instruction *names* in a source / destination
            field (r0 excluded from reads — it is hardwired zero).
        model: the finished :class:`RefModel` (final state, counters).
    """

    def __init__(self, workload: Workload, seed: int = DEFAULT_SEED,
                 max_steps: int = 1_000_000,
                 mem_words: int = CAMPAIGN_MEM_WORDS):
        self.workload = workload
        self.seed = seed
        self.mem_words = mem_words
        program = assemble(workload.source)
        mem = Memory(mem_words)
        mem.words[: len(program.words)] = program.words
        ref = RefModel(mem, InputStream(workload.stimulus(seed)),
                       entry=program.entry)

        executed: set[int] = set()
        # word -> (ra|rb read mask, rd write mask); kernels execute the
        # same few hundred words many times, so decode each word once.
        fields: dict[int, tuple[int, int]] = {}
        reads = writes = 0
        step = ref.step
        while not ref.halted and ref.n_steps < max_steps:
            pc = ref.pc
            idx = (pc >> 2) % mem_words
            executed.add(idx)
            word = mem.words[idx]
            masks = fields.get(word)
            if masks is None:
                if isa.is_legal(word):
                    ins = isa.decode(word)
                    masks = ((1 << ins.ra) | (1 << ins.rb),
                             (1 << ins.rd) if ins.rd else 0)
                else:
                    masks = (0, 0)
                fields[word] = masks
            reads |= masks[0]
            writes |= masks[1]
            if not step():
                break
        if not ref.halted:
            raise RuntimeError(
                f"architectural run of {workload.name!r} did not halt "
                f"in {max_steps} steps")

        self.model = ref
        self.n_steps = ref.n_steps
        self.outputs: list[int] = list(ref.outputs)
        self.retires = list(ref.retires)
        self.executed_words = executed
        self.reg_reads = reads & ~1
        self.reg_writes = writes

    # -- validation ----------------------------------------------------------

    def cross_check(self, golden: GoldenTrace) -> list[str]:
        """Validate a flop-accurate trace against this architectural one.

        Returns a list of human-readable problems (empty = consistent).
        Checks are chosen to be strong against the realistic failure
        modes — a corrupt/stale cache file, a pipeline regression, a
        trace recorded under different stimulus — while staying
        independent of micro-architectural timing:

        * the strobe-sampled OUT stream recovered from the port matrix
          must equal the architectural OUT stream value-for-value;
        * the pipeline cannot retire more instructions than cycles
          (``n_steps <= n_cycles``);
        * identity fields (workload, seed, memory size) must agree.
        """
        problems: list[str] = []
        if golden.workload.name != self.workload.name:
            problems.append(f"workload mismatch: golden traced "
                            f"{golden.workload.name!r}, arch traced "
                            f"{self.workload.name!r}")
        if golden.seed != self.seed or golden.mem_words != self.mem_words:
            problems.append(
                f"identity mismatch: golden (seed={golden.seed}, "
                f"mem={golden.mem_words}) vs arch (seed={self.seed}, "
                f"mem={self.mem_words})")
        if problems:  # streams of different runs are incomparable
            return problems

        if self.n_steps > golden.n_cycles:
            problems.append(
                f"{self.n_steps} architectural steps exceed "
                f"{golden.n_cycles} pipeline cycles")

        # Port rows hold pre-step state, so an OUT executed in cycle t
        # shows as a strobe toggle between rows t and t+1.  The trace
        # ends at the cycle HALT commits, so OUTs still in flight during
        # the final cycles toggle after the last recorded row: the
        # recovered stream may be short by up to a pipeline's worth of
        # trailing values, and is compared as a prefix.
        strobe = golden.port_matrix[:, _IO_OUT_V_COL]
        toggles = np.nonzero(strobe[1:] != strobe[:-1])[0] + 1
        pipeline_out = [int(v) for v in
                        golden.port_matrix[toggles, _IO_OUT_COL]]
        missing = len(self.outputs) - len(pipeline_out)
        if not 0 <= missing <= _PIPELINE_DEPTH:
            problems.append(
                f"OUT stream length mismatch: pipeline trace recovered "
                f"{len(pipeline_out)} values, arch produced "
                f"{len(self.outputs)}")
        else:
            for i, (p, a) in enumerate(zip(pipeline_out, self.outputs)):
                if p != a:
                    problems.append(f"OUT stream mismatch (first diff at "
                                    f"#{i}: pipeline {p} != arch {a})")
                    break
        return problems


def peek_cached_n_cycles(workload: Workload, seed: int = DEFAULT_SEED,
                         mem_words: int = CAMPAIGN_MEM_WORDS,
                         cache_dir: Path | str | None = None) -> int | None:
    """Read ``n_cycles`` from a cached trace header without the matrices.

    Loads only the tiny ``meta`` array of the npz (the matrix entries
    stay untouched on disk), validating the same identity fields as
    :meth:`GoldenTrace._load_cached`.  Returns None when there is no
    usable cache entry — callers then fall back to building tier 2.
    """
    directory = Path(cache_dir) if cache_dir is not None else golden_cache_dir()
    if directory is None:
        return None
    path = directory / (
        f"{workload.name}_s{seed}_m{mem_words}_v{CAMPAIGN_SCHEMA_VERSION}.npz")
    if not path.exists():
        return None
    try:
        with np.load(path, mmap_mode="r", allow_pickle=False) as data:
            meta = data["meta"]
            if meta.shape != (6,):
                raise ValueError(f"bad meta shape {meta.shape}")
            schema, n_cycles, cached_mem, _, _, cached_seed = (
                int(v) for v in meta)
            if (schema != CAMPAIGN_SCHEMA_VERSION or cached_mem != mem_words
                    or cached_seed != seed or n_cycles <= 0):
                return None
            return n_cycles
    except Exception as exc:
        warnings.warn(f"could not peek golden-trace cache {path}: {exc}",
                      RuntimeWarning, stacklevel=2)
        return None


class TieredGolden:
    """Two-tier golden-trace handle for one (workload, seed).

    Tier 1 (:attr:`arch`) is cheap and built on first use; tier 2
    (:attr:`full`) is the flop-accurate trace, built or cache-loaded
    lazily and cross-checked against tier 1 before it is handed out.
    ``n_cycles`` — all that fault *scheduling* needs — is answered from
    the cache header when possible, so a shard defers the full trace
    until its first injection.

    ``tier_loads`` counts how often each tier was materialised; the
    campaign surfaces it in ``CampaignResult.meta`` (it is bookkeeping,
    never part of the digest).
    """

    def __init__(self, workload: Workload, seed: int = DEFAULT_SEED,
                 mem_words: int = CAMPAIGN_MEM_WORDS,
                 cross_check: bool = True,
                 cache_dir: Path | str | None = None):
        self.workload = workload
        self.seed = seed
        self.mem_words = mem_words
        self.cache_dir = cache_dir
        self._cross_check = cross_check
        self._arch: ArchTrace | None = None
        self._full: GoldenTrace | None = None
        self.tier_loads = {"arch": 0, "full": 0, "n_cycles_peeks": 0}

    @property
    def arch(self) -> ArchTrace:
        """The architectural tier (built on first access)."""
        if self._arch is None:
            self._arch = ArchTrace(self.workload, self.seed,
                                   mem_words=self.mem_words)
            self.tier_loads["arch"] += 1
        return self._arch

    @property
    def full(self) -> GoldenTrace:
        """The flop-accurate tier, cross-checked against tier 1."""
        if self._full is None:
            trace = GoldenTrace.cached(self.workload, self.seed,
                                       mem_words=self.mem_words,
                                       cache_dir=self.cache_dir)
            if self._cross_check:
                problems = self.arch.cross_check(trace)
                if problems:
                    raise RuntimeError(
                        f"golden trace for {self.workload.name!r} failed "
                        f"architectural cross-check: " + "; ".join(problems))
            self._full = trace
            self.tier_loads["full"] += 1
        return self._full

    @property
    def n_cycles(self) -> int:
        """Trace length, answered without tier 2 when the cache allows."""
        if self._full is not None:
            return self._full.n_cycles
        hint = peek_cached_n_cycles(self.workload, self.seed,
                                    self.mem_words, self.cache_dir)
        if hint is not None:
            self.tier_loads["n_cycles_peeks"] += 1
            return hint
        return self.full.n_cycles
