"""Batch-vectorized fault injection: N scenarios per numpy operation.

The scalar :class:`~repro.faults.injector.InjectionEngine` advances one
faulty core per Python ``Cpu.step()`` call.  This module keeps the
*same algorithm* — deferred starts, masking checks, stuck-at
re-convergence fast-forward, dynamic equivalence classes — but lays the
microarchitectural state of many in-flight fault scenarios out as a
structure-of-arrays matrix and advances all of them with one vectorized
``step`` per cycle:

* ``S`` is a ``(n_regs + 2, B)`` uint32 matrix (the datapath is 32 bits
  wide, so wrap-around replaces explicit truncation masks): one column
  per live lane (scenario), one row per
  :data:`~repro.cpu.units.REGISTRY` flop register, plus a
  hardwired-zero read row and a write-sink row so that every decode
  gather/scatter is total (``r0`` reads, ``rd=0`` writes and unmapped
  CSR accesses index those rows instead of branching);
* ``M`` is a ``(B, mem_words)`` uint32 matrix of per-lane memories;
* decode is a gather through dense opcode tables from
  :mod:`repro.cpu.isa` (the same tables ``core.py`` dispatches on), and
  every DX/MW/IF update is a masked elementwise operation over lanes;
  irregular paths (store-buffer drains, BTB scatter, CSR file, traps)
  extract the few affected lanes with ``nonzero`` and re-merge;
* divergence and masking are whole-lane vectorized compares against the
  packed golden ``port_matrix``/``state_matrix`` columns;
* retired lanes (detected, masked, or fast-forward-pruned) are
  compacted out by moving the last live column into the hole, so the
  batch stays dense and refills from the pending fault queue.

Lanes run at *independent* cycle indices: a per-lane time vector ``t``
addresses the golden matrices column-wise, so a freshly seeded lane and
a lane deep into its observation window share the same kernel call.

Equivalence with the scalar engine (digest parity) is by construction:

* the scalar loop compares the port tuple *returned by* ``step()`` —
  i.e. the port view of the pre-step state at cycle ``t``.  The batch
  driver compares the state's port rows at ``t`` *before* stepping,
  which is the same value; a detection therefore fires at the same
  cycle with the same port tuple (one extra ``sim_cycles`` is charged
  at detection to mirror the scalar step that produced the tuple);
* the scalar soft masking check runs after stepping cycle ``t`` when
  ``(t - start) % stride == 0``, against golden state ``t + 1`` — the
  batch check runs pre-step at ``t'`` for ``t'`` in ``start + 1``,
  ``start + 1 + stride``, ...: the same cycles, same states;
* the scalar stuck-at re-convergence check runs post-step at
  ``t == next_check`` on the unforced snapshot — the batch check runs
  pre-step at ``t == next_chk`` *before* the per-cycle force is
  re-applied: the same unforced state.  Fast-forward reseeds the lane
  from the golden state/memory at the next (observed) activation;
* a halted lane never needs stepping: the golden trace ends at HALT and
  never shows ``halted`` on its ``ev_sys`` port, so a lane that halts
  is caught by the port compare (divergence) or runs out of window
  (masked) before its halted state could matter — there is no frozen
  state to preserve, hence no run-mask in the kernel.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..cpu import isa
from ..cpu.core import Cpu
from ..cpu.memory import Memory
from ..cpu.units import REG_INDEX, REGISTRY
from ..lockstep.categories import diverged_ports
from . import kernels as _kernels
from .golden import GoldenTrace
from .injector import _CONVERGE_CHECK_START, PruneStats
from .models import ErrorRecord, Fault, FaultKind

_U64 = np.uint64
#: The datapath is 32 bits wide (no REGISTRY flop exceeds 32 bits), so
#: lane state runs in uint32: half the memory traffic of the packed
#: uint64 golden matrices, and 32-bit wrap-around makes every
#: ``& 0xFFFFFFFF`` truncation free.
_U32 = np.uint32
_M32 = 0xFFFFFFFF

#: Number of genuine flop registers (rows 0 .. N_REGS-1 of ``S``).
N_REGS = len(REGISTRY)
#: Hardwired-zero read row: ``r0`` operand reads and unmapped CSRR.
ZERO_ROW = N_REGS
#: Write-sink row: ``rd=0`` writebacks, unmapped CSRW, soft-lane force.
TRASH_ROW = N_REGS + 1
N_ROWS = N_REGS + 2

# -- register rows ------------------------------------------------------------

_R = REG_INDEX
PC = _R["pc"]
BTB_TAG0 = _R["btb_tag0"]
BTB_TGT0 = _R["btb_tgt0"]
BTB_V = _R["btb_v"]
IMC_ADDR = _R["imc_addr"]; IMC_DATA = _R["imc_data"]
IMC_VALID = _R["imc_valid"]; IMC_PRED = _R["imc_pred"]; IMC_PTGT = _R["imc_ptgt"]
IF_IR = _R["if_ir"]; IF_PC = _R["if_pc"]; IF_VALID = _R["if_valid"]
IF_PRED = _R["if_pred"]; IF_PTGT = _R["if_ptgt"]
MW_VAL = _R["mw_val"]; MW_PC = _R["mw_pc"]; MW_RD = _R["mw_rd"]
MW_WEN = _R["mw_wen"]; MW_VALID = _R["mw_valid"]; MW_ISLOAD = _R["mw_isload"]
MUL_A = _R["mul_a"]; MUL_B = _R["mul_b"]; MUL_PENDING = _R["mul_pending"]
FLAGS = _R["flags"]; SFLAGS = _R["sflags"]
BR_TARGET = _R["br_target"]; BR_TAKEN = _R["br_taken"]; BR_VALID = _R["br_valid"]
RET_PC = _R["ret_pc"]; RET_VAL = _R["ret_val"]
RET_RD = _R["ret_rd"]; RET_VALID = _R["ret_valid"]
LSU_ADDR = _R["lsu_addr"]; LSU_WDATA = _R["lsu_wdata"]
LSU_OP = _R["lsu_op"]; LSU_VALID = _R["lsu_valid"]
SB_ADDR = _R["sb_addr"]; SB_DATA = _R["sb_data"]
SB_VALID = _R["sb_valid"]; SB_OP = _R["sb_op"]
DMC_ADDR = _R["dmc_addr"]; DMC_WDATA = _R["dmc_wdata"]; DMC_RDATA = _R["dmc_rdata"]
DMC_CTRL = _R["dmc_ctrl"]; DMC_STRB = _R["dmc_strb"]
MPU_BASE0 = _R["mpu_base0"]; MPU_LIMIT0 = _R["mpu_limit0"]; MPU_CTRL = _R["mpu_ctrl"]
BUS_ADDR = _R["bus_addr"]; BUS_DATA = _R["bus_data"]; BUS_CTRL = _R["bus_ctrl"]
IO_OUT = _R["io_out"]; IO_OUT_V = _R["io_out_v"]
IO_IN = _R["io_in"]; IO_IN_IDX = _R["io_in_idx"]
STATUS = _R["status"]; CAUSE = _R["cause"]; EPC = _R["epc"]
CYC = _R["cyc"]; HALTED = _R["halted"]
DBG_BKPT0 = _R["dbg_bkpt0"]; DBG_BKPT1 = _R["dbg_bkpt1"]
DBG_WATCH0 = _R["dbg_watch0"]; DBG_CTRL = _R["dbg_ctrl"]
IRQ_MASK = _R["irq_mask"]; IRQ_PENDING = _R["irq_pending"]
CNT_BRANCH = _R["cnt_branch"]; CNT_MEM = _R["cnt_mem"]

# -- decode gather tables (shared semantics with core.py) ---------------------

#: opcode -> execution class (CLS_*), dense intp for lane gathers.
OPC_CLS = np.array(isa.OPCODE_CLASS, dtype=np.intp)
OPC_VALID = np.array(isa.OPCODE_VALID, dtype=bool)
OPC_IMM = np.array(isa.OPCODE_ALU_IMM, dtype=bool)

#: opcode -> ALU selector: index into the stacked single-cycle ALU
#: results (0 = none, 1 = ADD .. 10 = SLTU; immediate forms alias their
#: register-register op).
ALU_SEL = np.zeros(64, dtype=np.intp)
for _n in range(1, 11):
    ALU_SEL[_n] = _n
for _n, _rr in ((16, 1), (17, 3), (18, 4), (19, 5), (20, 6), (21, 7), (22, 8), (23, 9)):
    ALU_SEL[_n] = _rr

#: opcode -> next lsu_op for the CLS_MEM opcodes.
LSU_OP_OF = np.zeros(64, dtype=_U32)
LSU_OP_OF[int(isa.Op.LD)] = 1
LSU_OP_OF[int(isa.Op.LDB)] = 2
LSU_OP_OF[int(isa.Op.ST)] = 3
LSU_OP_OF[int(isa.Op.STB)] = 4

#: register-file field value -> S row (field 0 reads zero, writes sink).
RF_READ_ROW = np.array(
    [ZERO_ROW] + [_R[f"rf{i}"] for i in range(1, 16)], dtype=np.intp)
RF_WRITE_ROW = np.array(
    [TRASH_ROW] + [_R[f"rf{i}"] for i in range(1, 16)], dtype=np.intp)

#: CSR number (14-bit imm field, unsigned) -> S row / write mask.  A
#: negative imm has bit 13 set, indexing the unmapped upper half —
#: exactly the scalar dict-miss behaviour (read 0 / write dropped).
CSR_READ_ROW = np.full(1 << 14, ZERO_ROW, dtype=np.intp)
for _num, _reg in isa.CSR_READ_REG.items():
    CSR_READ_ROW[_num] = _R[_reg]
CSR_WRITE_ROW = np.full(1 << 14, TRASH_ROW, dtype=np.intp)
CSR_WRITE_MASK = np.zeros(1 << 14, dtype=_U32)
for _num, (_reg, _mask) in isa.CSR_WRITE_REG.items():
    CSR_WRITE_ROW[_num] = _R[_reg]
    CSR_WRITE_MASK[_num] = _mask

#: S rows of the 16 register-valued entries of the compact port tuple
#: (ev_sys / ev_br, entries 16 and 17, are derived bit combines).
PORT_ROWS16 = np.array([_R[name] for name in (
    "imc_addr", "imc_valid", "imc_pred",
    "dmc_addr", "dmc_wdata", "dmc_ctrl", "dmc_strb",
    "bus_addr", "bus_data", "bus_ctrl",
    "io_out", "io_out_v",
    "ret_pc", "ret_val", "ret_rd", "ret_valid")], dtype=np.intp)

#: BTB way index -> valid bit / clear mask (avoids per-lane 1<<idx).
BIT4 = np.array([1, 2, 4, 8], dtype=_U32)
NOT4 = np.array([0xE, 0xD, 0xB, 0x7], dtype=_U32)

_FULL32 = _U32(0xFFFFFFFF)

# The scalar-drain breakeven lives in kernels.KERNEL_BREAKEVEN_LANES:
# it is a property of the backend (numpy's ~150-dispatch fixed cost vs
# one C call), not of this engine.

# -- compiled kernel tables ---------------------------------------------------

#: S-row names in the exact order of the C kernel's RowMap struct
#: (_cstepmodule.c).  The per-cycle SoA parity test catches any drift.
_ROW_ORDER = (
    "pc", "btb_tag0", "btb_tgt0", "btb_v",
    "imc_addr", "imc_data", "imc_valid", "imc_pred", "imc_ptgt",
    "if_ir", "if_pc", "if_valid", "if_pred", "if_ptgt",
    "mw_val", "mw_pc", "mw_rd", "mw_wen", "mw_valid", "mw_isload",
    "mul_a", "mul_b", "mul_pending",
    "flags", "sflags",
    "br_target", "br_taken", "br_valid",
    "ret_pc", "ret_val", "ret_rd", "ret_valid",
    "lsu_addr", "lsu_wdata", "lsu_op", "lsu_valid",
    "sb_addr", "sb_data", "sb_valid", "sb_op",
    "dmc_addr", "dmc_wdata", "dmc_rdata", "dmc_ctrl", "dmc_strb",
    "mpu_base0", "mpu_limit0", "mpu_ctrl",
    "bus_addr", "bus_data", "bus_ctrl",
    "io_out", "io_out_v", "io_in", "io_in_idx",
    "status", "cause", "epc", "cyc", "halted",
    "dbg_bkpt0", "dbg_bkpt1", "dbg_watch0", "dbg_ctrl",
    "irq_mask", "irq_pending", "cnt_branch", "cnt_mem",
)

_CEXT_TABLES: tuple | None = None


def _cext_tables() -> tuple:
    """The 13 lookup buffers the C kernel gathers through.

    Order and dtypes match ``TABLE_SPECS`` in ``_cstepmodule.c``; the
    first two entries fill the RowMap/Consts structs by memcpy in the
    declaration order above.  Built once per process — the arrays are
    immutable shared tables.
    """
    global _CEXT_TABLES
    if _CEXT_TABLES is None:
        rowmap = np.array([_R[name] for name in _ROW_ORDER], dtype=np.int64)
        consts = np.array([
            isa.CLS_ALU, isa.CLS_MUL, isa.CLS_LUI, isa.CLS_MEM,
            isa.CLS_BRANCH, isa.CLS_JAL, isa.CLS_JALR, isa.CLS_IN,
            isa.CLS_OUT, isa.CLS_CSRR, isa.CLS_CSRW, isa.CLS_NOP,
            isa.CLS_HALT,
            isa.CAUSE_ILLEGAL, isa.CAUSE_BKPT, isa.CAUSE_IRQ,
            isa.CAUSE_MPU, isa.CAUSE_WATCH, isa.CAUSE_MISALIGNED,
            isa.EXC_VECTOR, isa.STATUS_CNT_EN,
            int(isa.Op.MUL), int(isa.Op.LD), int(isa.Op.LDB),
            int(isa.Op.ST), int(isa.Op.STB), int(isa.Op.BEQ),
            N_REGS,
        ], dtype=np.int64)
        _CEXT_TABLES = (
            rowmap, consts,
            OPC_CLS.astype(np.int64), OPC_VALID, OPC_IMM,
            ALU_SEL.astype(np.int64), LSU_OP_OF,
            RF_READ_ROW.astype(np.int64), RF_WRITE_ROW.astype(np.int64),
            CSR_READ_ROW.astype(np.int64), CSR_WRITE_ROW.astype(np.int64),
            CSR_WRITE_MASK, PORT_ROWS16.astype(np.int64),
        )
    return _CEXT_TABLES


def _golden_c_matrices(golden: GoldenTrace) -> tuple[np.ndarray, np.ndarray]:
    """Row-major uint32 views of the golden matrices for the C kernel.

    The numpy kernel gathers cycle *columns* and wants the transposed
    copies (``_smT``/``_pmT``); the C kernel walks one cycle row at a
    time and wants plain C order.  Cached on the trace so every engine
    (and every shard in a worker process) shares one copy.
    """
    sm32 = getattr(golden, "_cstep_sm32", None)
    if sm32 is None:
        sm32 = np.ascontiguousarray(golden.state_matrix, dtype=_U32)
        pm32 = np.ascontiguousarray(golden.port_matrix, dtype=_U32)
        golden._cstep_sm32 = sm32
        golden._cstep_pm32 = pm32
    return sm32, golden._cstep_pm32


_CLS_ALU = isa.CLS_ALU
_CLS_MUL = isa.CLS_MUL
_CLS_LUI = isa.CLS_LUI
_CLS_MEM = isa.CLS_MEM
_CLS_BRANCH = isa.CLS_BRANCH
_CLS_JAL = isa.CLS_JAL
_CLS_JALR = isa.CLS_JALR
_CLS_IN = isa.CLS_IN
_CLS_OUT = isa.CLS_OUT
_CLS_CSRR = isa.CLS_CSRR
_CLS_CSRW = isa.CLS_CSRW
_CLS_NOP = isa.CLS_NOP
_CLS_HALT = isa.CLS_HALT


def _sign32(a: np.ndarray) -> np.ndarray:
    """uint32 array -> int32 two's-complement reinterpretation."""
    return a.astype(np.int32)


class BatchInjectionEngine:
    """Structure-of-arrays fault-injection engine (digest parity with scalar).

    Drop-in algorithmic twin of
    :class:`~repro.faults.injector.InjectionEngine`: identical records,
    identical :class:`~repro.faults.injector.PruneStats`, batched
    execution.  Use :meth:`inject_all` with the full per-shard fault
    list (equivalence classes and the convergence caches live across
    the whole list, as they do across sequential ``inject`` calls).
    """

    def __init__(self, golden: GoldenTrace, max_observe: int | None = None,
                 mask_check_stride: int = 4, prune: bool = True,
                 batch: int = 256, tail_lanes: int | None = None,
                 kernel: str | None = None, threads: int | None = None):
        self.golden = golden
        self.max_observe = max_observe
        self.mask_check_stride = max(1, mask_check_stride)
        self.prune = prune
        self.batch = max(1, batch)
        #: Resolved step-kernel backend ("cext" or "numpy"); see
        #: :mod:`repro.faults.kernels` for the selection rules.
        self.kernel = _kernels.resolve_kernel(kernel)
        self._cext = _kernels.cext_module() if self.kernel == "cext" else None
        #: Drive-loop thread count for the compiled kernel (the numpy
        #: kernel ignores it).  Any value is digest-identical — lane
        #: slices merge in lane order — so this is purely a wall-clock
        #: knob; see DESIGN §5.17 for the slice-width math.
        self.threads = _kernels.resolve_threads(threads, lanes=self.batch)
        # Below this many live lanes the batch kernel's fixed per-call
        # cost exceeds per-lane Python stepping, so such lanes are
        # finished scalar: as the straggler tail once the queue is
        # empty, or — when the batch size itself is at or below the
        # breakeven — for the entire run (the engine then degrades
        # gracefully to scalar speed instead of paying the dispatch
        # cost at hopeless occupancy).  The breakeven is per-backend
        # (kernels.KERNEL_BREAKEVEN_LANES): ~192 lanes for numpy's
        # ~150-dispatch step, a handful for the compiled kernel whose
        # only fixed cost is one C call.  Any value yields identical
        # digests (the drain replays the exact per-lane decision
        # sequence); 0 disables the fallback.
        if tail_lanes is None:
            tail_lanes = min(self.batch,
                             _kernels.breakeven_lanes(self.kernel))
        self._tail_lanes = tail_lanes
        self._tail_cpu: Cpu | None = None
        self.stats = PruneStats()

        B = self.batch
        #: SoA state: one uint32 column per live lane.
        self.S = np.zeros((N_ROWS, B), dtype=_U32)
        #: Per-lane memory images.
        self.M = np.zeros((B, golden.mem_words), dtype=_U32)
        # Column-major golden matrices: per-lane gathers address one
        # cycle column each, so transposed-contiguous wins; narrowed to
        # the lane dtype (all values are 32-bit) so compares stay cheap.
        self._smT = golden.state_matrix.T.astype(_U32)
        self._pmT = golden.port_matrix.T.astype(_U32)
        self._g_ports = golden.port_tuples()
        self._stim = np.array(golden.stimulus.values, dtype=_U32)
        self._stim_len = len(golden.stimulus.values)
        if self._cext is not None:
            self._sm32, self._pm32 = _golden_c_matrices(golden)
            self._tables = _cext_tables()

        # Per-lane bookkeeping.
        self.t = np.zeros(B, dtype=np.int64)          # current cycle
        self.end = np.zeros(B, dtype=np.int64)        # observation horizon
        self.start = np.zeros(B, dtype=np.int64)      # simulation start
        self.next_chk = np.zeros(B, dtype=np.int64)   # next masking/convergence check
        self.chk_iv = np.zeros(B, dtype=np.int64)     # stuck-at check interval
        self.seq = np.zeros(B, dtype=np.int64)        # index into the outcome list
        # int64 (not intp): the C kernel reads this buffer as 8-byte rows.
        self.force_row = np.full(B, TRASH_ROW, dtype=np.int64)
        self.force_and = np.full(B, _FULL32, dtype=_U32)
        self.force_or = np.zeros(B, dtype=_U32)
        self.is_hard = np.zeros(B, dtype=bool)
        self.info: list[tuple[Fault, tuple[str, int, int] | None] | None] = [None] * B
        self._n = 0
        self._lanes = np.arange(B, dtype=np.intp)

        #: (reg, bit, start) -> (outcome, span); shared across inject_all calls.
        self._soft_classes: dict[
            tuple[str, int, int],
            tuple[tuple[int, frozenset[int]] | None, int]] = {}
        self._parked: dict[tuple[str, int, int], list[tuple[int, int]]] = {}
        self._outcomes: list[ErrorRecord | None] = []

    # -- public API ----------------------------------------------------------

    def inject_all(self, faults) -> list[ErrorRecord | None]:
        """Run every fault; returns outcomes aligned with the input order.

        ``None`` entries are masked faults, exactly as the scalar
        engine's ``inject`` returns.
        """
        faults = list(faults)
        outcomes: list[ErrorRecord | None] = [None] * len(faults)
        self._outcomes = outcomes
        pending = self._triage(faults)
        # Longest observation windows first (LPT) so stragglers overlap
        # the bulk instead of trailing it with a near-empty batch.
        # Order cannot affect results: equivalence representatives are
        # fixed at triage (input order), each lane's outcome depends
        # only on its own seed state, and stats are order-independent
        # sums — so the digest is unchanged.
        pending = deque(sorted(pending, key=lambda s: s[3] - s[2], reverse=True))
        self._drive(pending)
        # Any key still parked had its representative retired in this
        # call (the queue drained), so _finish resolved it; leftover
        # parked entries would be a driver bug.
        assert not self._parked, "unresolved equivalence classes"
        return outcomes

    # -- triage (pure Python, mirrors scalar inject()) -----------------------

    def _triage(self, faults: list[Fault]) -> deque:
        golden = self.golden
        n = golden.n_cycles
        stats = self.stats
        prune = self.prune
        pending: deque = deque()
        for seq, fault in enumerate(faults):
            t0 = fault.cycle
            if not 0 <= t0 < n:
                continue
            if fault.kind is FaultKind.SOFT:
                if not prune:
                    pending.append((seq, fault, t0, n, None))
                    continue
                start = golden.soft_start(fault.flop.reg, t0)
                if start is None:
                    stats.soft_pruned += 1
                    stats.cycles_saved += n - t0
                    continue
                if start > t0:
                    stats.soft_deferred += 1
                    stats.cycles_saved += start - t0
                key = (fault.flop.reg, fault.flop.bit, start)
                cached = self._soft_classes.get(key)
                if cached is not None:
                    stats.equiv_hits += 1
                    outcome, span = cached
                    stats.cycles_saved += span
                    outcomes = self._outcomes
                    outcomes[seq] = self._replay(fault, t0, outcome)
                    continue
                lst = self._parked.get(key)
                if lst is not None:
                    # Representative already queued: replay at resolution.
                    lst.append((seq, t0))
                    continue
                self._parked[key] = []
                pending.append((seq, fault, start, n, key))
            else:
                value = 1 if fault.kind is FaultKind.STUCK1 else 0
                t_act = golden.activation_cycle(
                    fault.flop.reg, fault.flop.bit, value, t0)
                if t_act is None:
                    continue
                end = n if self.max_observe is None else min(n, t_act + self.max_observe)
                if prune:
                    t_start = golden.first_active_use(
                        fault.flop.reg, fault.flop.bit, value, t_act)
                    if t_start is None or t_start >= end:
                        stats.hard_pruned += 1
                        stats.cycles_saved += end - t_act
                        continue
                    if t_start > t_act:
                        stats.hard_deferred += 1
                        stats.cycles_saved += t_start - t_act
                else:
                    t_start = t_act
                pending.append((seq, fault, t_start, end, None))
        return pending

    def _replay(self, fault: Fault, t0: int,
                outcome: tuple[int, frozenset[int]] | None) -> ErrorRecord | None:
        if outcome is None:
            return None
        detect_cycle, diverged = outcome
        return ErrorRecord(
            benchmark=self.golden.workload.name, flop=fault.flop,
            kind=fault.kind, inject_cycle=t0, detect_cycle=detect_cycle,
            diverged=diverged,
        )

    # -- lane lifecycle ------------------------------------------------------

    def _seed_many(self, pending: deque) -> None:
        """Seed up to ``batch - n`` lanes from the fault queue in bulk.

        Vectorised counterpart of :meth:`_seed`: under the compiled
        kernel whole generations of lanes retire at once, so refills
        arrive hundreds at a time and per-lane numpy dispatch dominated
        the seeding phase.  Same lane state, one fancy-indexed
        assignment per array (only the per-start memory reconstruction
        stays a loop — each start replays a different write-log span).
        """
        take = min(self.batch - self._n, len(pending))
        if take <= 0:
            return
        specs = [pending.popleft() for _ in range(take)]
        i0 = self._n
        self._n = i0 + take
        sl = slice(i0, i0 + take)
        starts = np.fromiter((s[2] for s in specs), np.int64, count=take)
        self.S[:N_REGS, sl] = self._smT[:, starts]
        self.S[ZERO_ROW, sl] = 0
        self.S[TRASH_ROW, sl] = 0
        info = self.info
        mem = self.golden.memory_words_at
        for j, (seq, fault, start, end, key) in enumerate(specs):
            mem(start, out=self.M[i0 + j])
            info[i0 + j] = (fault, key)
        self.t[sl] = starts
        self.start[sl] = starts
        self.end[sl] = np.fromiter((s[3] for s in specs), np.int64,
                                   count=take)
        self.seq[sl] = np.fromiter((s[0] for s in specs), np.int64,
                                   count=take)
        reg_rows = np.fromiter(
            (REG_INDEX[s[1].flop.reg] for s in specs), np.int64, count=take)
        masks = np.fromiter(
            ((1 << s[1].flop.bit) & _M32 for s in specs), _U32, count=take)
        soft = np.fromiter(
            (s[1].kind is FaultKind.SOFT for s in specs), bool, count=take)
        stuck1 = np.fromiter(
            (s[1].kind is FaultKind.STUCK1 for s in specs), bool, count=take)
        self.is_hard[sl] = ~soft
        flip_cols = np.arange(i0, i0 + take)[soft]
        self.S[reg_rows[soft], flip_cols] ^= masks[soft]
        self.force_row[sl] = np.where(soft, TRASH_ROW, reg_rows)
        self.force_and[sl] = np.where(soft | stuck1, _FULL32, ~masks)
        self.force_or[sl] = np.where(stuck1, masks, _U32(0))
        self.next_chk[sl] = starts + np.where(soft, 1, _CONVERGE_CHECK_START)
        self.chk_iv[sl] = np.where(soft, self.mask_check_stride,
                                   _CONVERGE_CHECK_START)

    def _seed(self, spec) -> None:
        """Scalar reference for :meth:`_seed_many` (pinned by tests)."""
        seq, fault, start, end, key = spec
        i = self._n
        self._n = i + 1
        self.S[:N_REGS, i] = self._smT[:, start]
        self.S[ZERO_ROW, i] = 0
        self.S[TRASH_ROW, i] = 0
        self.golden.memory_words_at(start, out=self.M[i])
        self.t[i] = start
        self.end[i] = end
        self.start[i] = start
        self.seq[i] = seq
        self.info[i] = (fault, key)
        reg_row = REG_INDEX[fault.flop.reg]
        mask = 1 << fault.flop.bit
        if fault.kind is FaultKind.SOFT:
            self.is_hard[i] = False
            self.S[reg_row, i] ^= _U32(mask)
            self.force_row[i] = TRASH_ROW
            self.force_and[i] = _FULL32
            self.force_or[i] = 0
            self.next_chk[i] = start + 1
            self.chk_iv[i] = self.mask_check_stride
        else:
            self.is_hard[i] = True
            self.force_row[i] = reg_row
            if fault.kind is FaultKind.STUCK1:
                self.force_and[i] = _FULL32
                self.force_or[i] = mask
            else:
                self.force_and[i] = _U32(~mask & _M32)
                self.force_or[i] = 0
            self.next_chk[i] = start + _CONVERGE_CHECK_START
            self.chk_iv[i] = _CONVERGE_CHECK_START

    def _finish(self, i: int, record: ErrorRecord | None) -> None:
        """Record lane ``i``'s outcome and resolve its equivalence class."""
        outcomes = self._outcomes
        outcomes[self.seq[i]] = record
        fault, key = self.info[i]
        if key is None:
            return
        span = int(self.t[i] - self.start[i]) + (1 if record is not None else 0)
        outcome = None if record is None else (record.detect_cycle, record.diverged)
        self._soft_classes[key] = (outcome, span)
        self.stats.equiv_classes += 1
        stats = self.stats
        name = self.golden.workload.name
        for pseq, pt0 in self._parked.pop(key, ()):
            stats.equiv_hits += 1
            stats.cycles_saved += span
            if outcome is not None:
                detect_cycle, diverged = outcome
                outcomes[pseq] = ErrorRecord(
                    benchmark=name, flop=fault.flop, kind=fault.kind,
                    inject_cycle=pt0, detect_cycle=detect_cycle,
                    diverged=diverged)

    def _compact(self, dead) -> None:
        """Remove retired lanes by moving live tail columns into the holes.

        One fancy-indexed copy per array instead of a per-lane scalar
        shuffle: retirements arrive hundreds at a time under the
        compiled kernel, and lane order is immaterial (every decision
        is lane-local and outcomes are keyed by ``seq``).
        """
        dead_set = set(dead)
        n = self._n
        new_n = n - len(dead_set)
        self._n = new_n
        # Surviving tail lanes drop into the holes below the new count,
        # in order; |holes| == |movers| by construction.
        holes = sorted(i for i in dead_set if i < new_n)
        movers = [i for i in range(new_n, n) if i not in dead_set]
        info = self.info
        for hole, mover in zip(holes, movers):
            info[hole] = info[mover]
        for i in range(new_n, n):
            info[i] = None
        if not holes:
            return
        self.S[:, holes] = self.S[:, movers]
        self.M[holes] = self.M[movers]
        for arr in (self.t, self.end, self.start, self.next_chk,
                    self.chk_iv, self.seq, self.force_row, self.force_and,
                    self.force_or, self.is_hard):
            arr[holes] = arr[movers]

    # -- main driver ---------------------------------------------------------

    def _drive(self, pending: deque) -> None:
        golden = self.golden
        stats = self.stats
        name = golden.workload.name
        g_ports = self._g_ports
        B = self.batch
        t = self.t
        # A batch at or below the breakeven can never amortize the
        # kernel dispatch cost: drain scalar even while faults are
        # still pending (the outer loop refills and drains again).
        all_scalar = B <= self._tail_lanes
        while self._n or pending:
            self._seed_many(pending)
            n = self._n
            if n <= self._tail_lanes and (all_scalar or not pending):
                self._drain_scalar()
                continue

            # Compiled kernel: one C call runs *every* lane to its own
            # next rare-path event (lanes outer, cycles inner — each
            # lane's column stays L1-resident however wide the batch
            # is), fusing phases (c)/(d)/(e) and the routine phase-(b)
            # check-interval bumps inline.  On return every lane is
            # parked at a horizon, state-equality or port-divergence
            # event, pre-step with forces applied where the numpy
            # driver would have them — so the phases below re-derive
            # the event kind from the lane state itself and handle
            # retirement, fast-forward, detection and record
            # construction through the numpy code path unchanged.
            # Parked lanes re-entering the call park again instantly
            # (zero cycles), so each driver iteration still strictly
            # progresses: it retires, records, or fast-forwards at
            # least one lane.
            if self._cext is not None:
                ran, _hit = self._cext.drive(
                    self.S, self.M, self._sm32, self._pm32, self._stim,
                    t, self.end, self.next_chk, self.chk_iv,
                    self.is_hard, self.force_row, self.force_and,
                    self.force_or, self._tables, n,
                    self.mask_check_stride, 1 << 30, self.threads)
                stats.sim_cycles += ran

            # (a) lanes past their observation horizon: masked.
            done = np.nonzero(t[:n] >= self.end[:n])[0]
            if done.size:
                for i in done:
                    self._finish(int(i), None)
                self._compact(done.tolist())
                continue

            # (b) masking / re-convergence checks (pre-step, pre-force:
            # the scalar snapshot at the same cycle is equally unforced).
            chk = np.nonzero(t[:n] == self.next_chk[:n])[0]
            if chk.size:
                eq = (self.S[:N_REGS, chk] == self._smT[:, t[chk]]).all(axis=0)
                retire = []
                for j, idx in enumerate(chk):
                    i = int(idx)
                    if not self.is_hard[i]:
                        if eq[j]:
                            retire.append(i)  # re-converged: masked
                        else:
                            self.next_chk[i] += self.mask_check_stride
                        continue
                    if not eq[j]:
                        self.chk_iv[i] *= 2
                        self.next_chk[i] = int(t[i]) + self.chk_iv[i]
                        continue
                    # Stuck-at lane bit-identical to golden: fast-forward
                    # to the next (observed) activation, as the scalar
                    # engine does post-step.
                    fault, _key = self.info[i]
                    value = 1 if fault.kind is FaultKind.STUCK1 else 0
                    tcur = int(t[i])
                    if self.prune:
                        t_next = golden.first_active_use(
                            fault.flop.reg, fault.flop.bit, value, tcur)
                    else:
                        t_next = golden.activation_cycle(
                            fault.flop.reg, fault.flop.bit, value, tcur)
                    if t_next is None or t_next >= self.end[i]:
                        retire.append(i)  # force is a no-op henceforth
                    elif t_next > tcur:
                        self.S[:N_REGS, i] = self._smT[:, t_next]
                        golden.memory_words_at(t_next, out=self.M[i])
                        t[i] = t_next
                        self.chk_iv[i] = _CONVERGE_CHECK_START
                        self.next_chk[i] = t_next + _CONVERGE_CHECK_START
                    else:
                        self.next_chk[i] = tcur + self.chk_iv[i]
                if retire:
                    for i in retire:
                        self._finish(i, None)
                    self._compact(retire)
                    continue

            # (c) re-assert stuck-at forces (soft lanes force TRASH_ROW).
            lanes = self._lanes[:n]
            rows = self.force_row[:n]
            self.S[rows, lanes] = (
                (self.S[rows, lanes] & self.force_and[:n]) | self.force_or[:n])

            # (d) port compare at each lane's own cycle.
            tt = t[:n]
            gp = self._pmT[:, tt]
            Sa = self.S[:, :n]
            P16 = Sa[PORT_ROWS16]
            evs = (Sa[STATUS] & 1) | (Sa[HALTED] << 1)
            evb = Sa[BR_TAKEN] | (Sa[BR_VALID] << 1)
            div = (P16 != gp[:16]).any(axis=0)
            div |= evs != gp[16]
            div |= evb != gp[17]
            det = np.nonzero(div)[0]
            if det.size:
                # One bulk extraction instead of 18 scalar conversions
                # per detection — detections arrive hundreds at a time
                # under the compiled kernel.
                det_l = det.tolist()
                ports16 = P16[:, det].T.tolist()
                ev_l = np.stack((evs[det], evb[det]), axis=1).tolist()
                t_l = tt[det].tolist()
                for i, tcur, p16, ev in zip(det_l, t_l, ports16, ev_l):
                    out = tuple(p16) + tuple(ev)
                    fault, _key = self.info[i]
                    record = ErrorRecord(
                        benchmark=name, flop=fault.flop, kind=fault.kind,
                        inject_cycle=fault.cycle, detect_cycle=tcur,
                        diverged=diverged_ports(out, g_ports[tcur]))
                    stats.sim_cycles += 1  # the scalar step that showed this tuple
                    self._finish(i, record)
                self._compact(det_l)
                continue

            # (e) advance every live lane one cycle.
            self._step(n)
            stats.sim_cycles += n
            t[:n] += 1

    # -- scalar straggler drain ----------------------------------------------

    def _drain_scalar(self) -> None:
        """Finish the last few lanes with per-lane Python stepping.

        The kernel's fixed cost per call (~hundreds of numpy
        dispatches) amortizes over live lanes; once the pending queue
        is empty and only a handful of long-window stragglers remain,
        per-lane ``Cpu.step()`` is cheaper.  The loop below replays the
        driver's per-lane decision sequence exactly — same check
        cycles, same pre-step port compare, same fast-forward — so
        records and stats are bit-identical to staying vectorized.
        """
        golden = self.golden
        stats = self.stats
        name = golden.workload.name
        g_ports = self._g_ports
        g_hashes = golden.state_hash_list()
        state_at = golden.state_at
        stride = self.mask_check_stride
        prune = self.prune
        cpu = self._tail_cpu
        if cpu is None:
            cpu = self._tail_cpu = Cpu(Memory(golden.mem_words), golden.stimulus)
        for i in range(self._n):
            fault, _key = self.info[i]
            cpu.restore(tuple(int(v) for v in self.S[:N_REGS, i]))
            cpu.mem.words[:] = self.M[i].tolist()
            t = int(self.t[i])
            end = int(self.end[i])
            next_chk = int(self.next_chk[i])
            chk_iv = int(self.chk_iv[i])
            hard = bool(self.is_hard[i])
            reg = fault.flop.reg
            mask = 1 << fault.flop.bit
            value = 1 if fault.kind is FaultKind.STUCK1 else 0
            reg_idx = REG_INDEX[reg]
            d = cpu.__dict__
            record = None
            while True:
                if t >= end:
                    break  # window exhausted: masked
                if t == next_chk:
                    snap = cpu.snapshot()
                    if hash(snap) == g_hashes[t] and snap == state_at(t):
                        if not hard:
                            break  # re-converged: masked
                        if prune:
                            t_next = golden.first_active_use(
                                reg, fault.flop.bit, value, t)
                        else:
                            t_next = golden.activation_cycle(
                                reg, fault.flop.bit, value, t)
                        if t_next is None or t_next >= end:
                            break  # force is a no-op henceforth
                        if t_next > t:
                            cpu.restore(state_at(t_next))
                            golden.memory_at(t_next, out=cpu.mem)
                            t = t_next
                            chk_iv = _CONVERGE_CHECK_START
                            next_chk = t_next + _CONVERGE_CHECK_START
                        else:
                            next_chk = t + chk_iv
                    elif hard:
                        chk_iv *= 2
                        next_chk = t + chk_iv
                    else:
                        next_chk += stride
                if hard:
                    if value:
                        d[reg] |= mask
                    else:
                        d[reg] &= ~mask
                out = cpu.step()
                stats.sim_cycles += 1
                if out != g_ports[t]:
                    record = ErrorRecord(
                        benchmark=name, flop=fault.flop, kind=fault.kind,
                        inject_cycle=fault.cycle, detect_cycle=t,
                        diverged=diverged_ports(out, g_ports[t]))
                    break
                t += 1
            self.t[i] = t  # _finish derives the equivalence span from t
            self._finish(i, record)
            self.info[i] = None
        self._n = 0

    # -- the vectorized Cpu.step() kernel ------------------------------------

    def _step(self, n: int) -> None:
        """Advance lanes ``0..n-1`` one cycle (vectorized ``Cpu.step``).

        Stage order, masking and within-cycle read/write ordering
        mirror ``Cpu.step()`` statement by statement; see that method
        for the semantics.  All row accesses below are basic-index
        views into ``S`` so writes land in place; lane extractions use
        ``nonzero`` index vectors (always duplicate-free, so fancy
        read-modify-writes are safe).
        """
        S = self.S[:, :n]
        M = self.M[:n]
        lanes = self._lanes[:n]
        mem_words = M.shape[1]

        # ---------------- MW stage ----------------
        lsu_valid = S[LSU_VALID] != 0
        sb_valid = S[SB_VALID] != 0
        mw_valid = S[MW_VALID] != 0
        lsu_op = S[LSU_OP]
        lsu_addr = S[LSU_ADDR].copy()
        # Old store-buffer contents: refills below overwrite the rows.
        sb_addr = S[SB_ADDR].copy()
        sb_data = S[SB_DATA].copy()
        sb_op = S[SB_OP].copy()

        is_ld = lsu_valid & (lsu_op == 1)
        is_ldb = lsu_valid & (lsu_op == 2)
        is_load = is_ld | is_ldb
        is_st = lsu_valid & (lsu_op == 3)
        is_stb = lsu_valid & (lsu_op == 4)
        is_store = is_st | is_stb
        is_in = lsu_valid & (lsu_op == 5)
        is_out = lsu_valid & (lsu_op == 6)

        alias = ((sb_addr ^ lsu_addr) & 0xFFFFFFFC) == 0
        drain_load = is_load & sb_valid & alias
        drain = drain_load | (is_store & sb_valid) | (sb_valid & ~lsu_valid)

        # Commit drained stores to the lane memories.
        dw = np.nonzero(drain)[0]
        if dw.size:
            widx = ((sb_addr[dw] >> 2) % mem_words).astype(np.intp)
            byte = sb_op[dw] != 0
            ww = dw[~byte]
            if ww.size:
                M[ww, widx[~byte]] = sb_data[ww]
            bw = dw[byte]
            if bw.size:
                shift = (sb_addr[bw] & 3) * 8
                bidx = widx[byte]
                old = M[bw, bidx]
                lane_mask = 0xFF << shift
                M[bw, bidx] = (old & ~lane_mask) | ((sb_data[bw] & 0xFF) << shift)

        # Loads observe the just-drained memory, as in the scalar core.
        load_data = np.zeros(n, dtype=_U32)
        lw = np.nonzero(is_load)[0]
        if lw.size:
            ridx = ((lsu_addr[lw] >> 2) % mem_words).astype(np.intp)
            words = M[lw, ridx]
            shift = (lsu_addr[lw] & 3) * 8
            load_data[lw] = np.where(
                is_ldb[lw], (words >> shift) & 0xFF, words)

        # IN: replicated stimulus sample + cursor advance.
        iw = np.nonzero(is_in)[0]
        if iw.size:
            cursor = S[IO_IN_IDX, iw]
            vals = self._stim[(cursor % self._stim_len).astype(np.intp)]
            load_data[iw] = vals
            S[IO_IN, iw] = vals
            S[IO_IN_IDX, iw] = (cursor + 1) & 0xFFFF

        # OUT: port write with toggling strobe.
        ow = np.nonzero(is_out)[0]
        if ow.size:
            S[IO_OUT, ow] = S[LSU_WDATA, ow]
            S[IO_OUT_V, ow] ^= _U32(1)

        # Store-buffer next state: clear on pure drain / drained-load,
        # then refill from a new store (refill wins, as in the scalar).
        S[SB_VALID][drain_load | (sb_valid & ~lsu_valid)] = 0
        st = np.nonzero(is_store)[0]
        if st.size:
            S[SB_ADDR, st] = lsu_addr[st]
            S[SB_DATA, st] = S[LSU_WDATA, st]
            S[SB_OP, st] = is_stb[st]
            S[SB_VALID, st] = 1

        # DMC interface registers.
        d_read = is_load
        d_write = drain
        d_any = d_read | d_write
        prim_addr = np.where(d_read, lsu_addr, sb_addr)
        prim_byte = np.where(d_read, is_ldb, sb_op != 0)
        S[DMC_ADDR][d_any] = prim_addr[d_any]
        S[DMC_WDATA][d_write] = sb_data[d_write]
        S[DMC_RDATA][d_read] = load_data[d_read]
        S[DMC_CTRL][:] = np.where(
            d_any,
            d_read.astype(_U32) | (d_write.astype(_U32) << 1) | 8,
            0)
        strb = np.where(
            prim_byte, BIT4[(prim_addr & 3).astype(np.intp)], 0xF)
        S[DMC_STRB][:] = np.where(d_any, strb, 0)

        # Writeback and retire/trace port.  The register file is written
        # before DX reads it, which subsumes the scalar bypass network.
        wb_value = np.where(S[MW_ISLOAD] != 0, load_data, S[MW_VAL])
        wen = mw_valid & (S[MW_WEN] != 0)
        wl = np.nonzero(wen)[0]
        if wl.size:
            rd_rows = RF_WRITE_ROW[S[MW_RD, wl].astype(np.intp)]
            S[rd_rows, wl] = wb_value[wl]
        rv = np.nonzero(mw_valid)[0]
        if rv.size:
            S[RET_PC, rv] = S[MW_PC, rv]
            S[RET_VAL, rv] = wb_value[rv]
            S[RET_RD, rv] = S[MW_RD, rv]
        S[RET_VALID][:] = mw_valid

        # ---------------- DX stage ----------------
        if_valid = S[IF_VALID] != 0
        if_pc = S[IF_PC].copy()          # IF2 overwrites these rows below
        word = S[IF_IR].copy()
        opnum = ((word >> 26) & 0x3F).astype(np.intp)
        cls = OPC_CLS[opnum]
        seq_next = if_pc + _U32(4)  # 32-bit wrap == & _M32
        fetched_next = np.where(S[IF_PRED] != 0, S[IF_PTGT], seq_next)

        # Exceptions: IRQ > BKPT > ILLEGAL (BKPT only when a breakpoint
        # is armed *and* matches; ILLEGAL is still checked otherwise).
        irq = ((S[IRQ_PENDING] & S[IRQ_MASK]) != 0) & ((S[STATUS] & 1) == 0)
        ctrl = S[DBG_CTRL]
        bk = (~irq & ((ctrl & 3) != 0)
              & ((((ctrl & 1) != 0) & (if_pc == S[DBG_BKPT0]))
                 | (((ctrl & 2) != 0) & (if_pc == S[DBG_BKPT1]))))
        ill = ~irq & ~bk & ~OPC_VALID[opnum]
        trap = (irq | bk | ill) & if_valid
        trap_code = np.zeros(n, dtype=_U32)
        trap_code[ill] = isa.CAUSE_ILLEGAL
        trap_code[bk] = isa.CAUSE_BKPT
        trap_code[irq] = isa.CAUSE_IRQ
        dispatch = if_valid & ~trap

        # Operand gathers (field 0 reads the hardwired-zero row).
        ra_f = ((word >> 18) & 0xF).astype(np.intp)
        rb_f = ((word >> 14) & 0xF).astype(np.intp)
        rd_f = (word >> 22) & 0xF
        ra_val = S[RF_READ_ROW[ra_f], lanes]
        rb_val = S[RF_READ_ROW[rb_f], lanes]
        imm32 = np.where(
            (word & 0x2000) != 0,
            (word & 0x1FFF) | 0xFFFFE000,
            word & 0x1FFF)

        # Next-latch accumulators (scalar locals n_mw_* / n_lsu_* / ...).
        n_mw_valid = np.zeros(n, dtype=_U32)
        n_mw_wen = np.zeros(n, dtype=_U32)
        n_mw_isload = np.zeros(n, dtype=_U32)
        n_mw_rd = np.zeros(n, dtype=_U32)
        n_mw_val = np.zeros(n, dtype=_U32)
        n_lsu_valid = np.zeros(n, dtype=_U32)
        n_lsu_op = np.zeros(n, dtype=_U32)
        n_br_valid = np.zeros(n, dtype=_U32)
        stall = np.zeros(n, dtype=bool)
        actual_next = seq_next.copy()

        # --- single-cycle ALU ---
        alu = dispatch & (cls == _CLS_ALU)
        sel = ALU_SEL[opnum]
        a32 = ra_val
        b32 = np.where(OPC_IMM[opnum], imm32, rb_val)
        add_res = a32 + b32        # 32-bit wrap == & _M32
        sub_res = a32 - b32
        sh_u = b32 & 31
        a_s = _sign32(a32)
        b_s = _sign32(b32)
        res_stack = np.stack([
            np.zeros(n, dtype=_U32),
            add_res,
            sub_res,
            a32 & b32,
            a32 | b32,
            a32 ^ b32,
            a32 << sh_u,
            a32 >> sh_u,
            (a_s >> sh_u.astype(np.int32)).astype(_U32),
            (a_s < b_s).astype(_U32),
            (a32 < b32).astype(_U32),
        ])
        res = res_stack[sel, lanes]
        zero_u = np.zeros(n, dtype=_U32)
        carry = np.where(
            sel == 1, (add_res < a32).astype(_U32),  # unsigned carry-out
            np.where(sel == 2, (a32 >= b32).astype(_U32), zero_u))
        ovf = np.where(
            sel == 1,
            ((~(a32 ^ b32) & (a32 ^ add_res)) >> 31) & 1,
            np.where(
                sel == 2,
                (((a32 ^ b32) & (a32 ^ sub_res)) >> 31) & 1,
                zero_u))
        nf = (res >> 31) & 1
        zf = (res == 0).astype(_U32)
        flags_alu = (nf << 3) | (zf << 2) | (carry << 1) | ovf
        S[FLAGS][alu] = flags_alu[alu]
        n_mw_valid[alu] = 1
        n_mw_wen[alu] = 1
        n_mw_rd[alu] = rd_f[alu]
        n_mw_val[alu] = res[alu]

        # --- two-cycle multiplier ---
        mul = dispatch & (cls == _CLS_MUL)
        if mul.any():
            pend = S[MUL_PENDING] != 0
            m1 = mul & ~pend
            S[MUL_A][m1] = ra_val[m1]
            S[MUL_B][m1] = rb_val[m1]
            S[MUL_PENDING][m1] = 1
            stall |= m1
            m2 = mul & pend
            if m2.any():
                # The 64-bit product needs a wider lane: extract.
                mi = np.nonzero(m2)[0]
                prod = (S[MUL_A, mi].astype(_U64)
                        * S[MUL_B, mi].astype(_U64))
                mres = np.where(
                    opnum[mi] == int(isa.Op.MUL),
                    prod & _M32, prod >> 32).astype(_U32)
                mn = (mres >> 31) & 1
                mz = (mres == 0).astype(_U32)
                S[FLAGS, mi] = (mn << 3) | (mz << 2)
                S[MUL_PENDING, mi] = 0
                n_mw_valid[mi] = 1
                n_mw_wen[mi] = 1
                n_mw_rd[mi] = rd_f[mi]
                n_mw_val[mi] = mres

        # --- LUI ---
        lui = dispatch & (cls == _CLS_LUI)
        n_mw_valid[lui] = 1
        n_mw_wen[lui] = 1
        n_mw_rd[lui] = rd_f[lui]
        n_mw_val[lui] = ((word & 0xFFFF) << 16)[lui]

        # --- memory ops (with MISALIGNED > WATCH > MPU fault checks) ---
        memc = dispatch & (cls == _CLS_MEM)
        addr = ra_val + imm32      # 32-bit wrap
        cnten = (S[STATUS] & isa.STATUS_CNT_EN) != 0
        if memc.any():
            word_op = (opnum == int(isa.Op.LD)) | (opnum == int(isa.Op.ST))
            misal = memc & word_op & ((addr & 3) != 0)
            watch = (memc & ~misal & ((ctrl & 4) != 0)
                     & (addr == S[DBG_WATCH0]))
            mpu_hit = np.zeros(n, dtype=bool)
            mc = S[MPU_CTRL]
            if (mc != 0).any():
                for r in range(4):
                    en = ((mc >> (2 * r)) & 3) == 3
                    mpu_hit |= (en & (S[MPU_BASE0 + r] <= addr)
                                & (addr < S[MPU_LIMIT0 + r]))
            mpu = memc & ~misal & ~watch & mpu_hit
            trap_code[mpu] = isa.CAUSE_MPU
            trap_code[watch] = isa.CAUSE_WATCH
            trap_code[misal] = isa.CAUSE_MISALIGNED
            trap |= misal | watch | mpu
            mem_ok = memc & ~misal & ~watch & ~mpu
            cm = mem_ok & cnten
            S[CNT_MEM][cm] = S[CNT_MEM][cm] + _U32(1)
            n_lsu_valid[mem_ok] = 1
            n_lsu_op[mem_ok] = LSU_OP_OF[opnum[mem_ok]]
            S[LSU_ADDR][mem_ok] = addr[mem_ok]
            st_l = mem_ok & ((opnum == int(isa.Op.ST)) | (opnum == int(isa.Op.STB)))
            S[LSU_WDATA][st_l] = rb_val[st_l]
            ld_l = mem_ok & ((opnum == int(isa.Op.LD)) | (opnum == int(isa.Op.LDB)))
            n_mw_valid[mem_ok] = 1
            n_mw_wen[ld_l] = 1
            n_mw_isload[ld_l] = 1
            n_mw_rd[mem_ok] = rd_f[mem_ok]
            n_mw_val[mem_ok] = addr[mem_ok]

        # --- conditional branches ---
        br = dispatch & (cls == _CLS_BRANCH)
        bidx = ((if_pc >> 2) & 3).astype(np.intp)
        if br.any():
            cb = br & cnten
            S[CNT_BRANCH][cb] = S[CNT_BRANCH][cb] + _U32(1)
            ras = _sign32(ra_val)
            rbs = _sign32(rb_val)
            tk_stack = np.stack([
                ra_val == rb_val, ra_val != rb_val,
                ras < rbs, ras >= rbs,
                ra_val < rb_val, ra_val >= rb_val,
            ])
            bsel = np.clip(opnum - int(isa.Op.BEQ), 0, 5)
            taken = tk_stack[bsel, lanes]
            target = seq_next + (imm32 << 2)  # 32-bit wrap
            tk = br & taken
            S[BR_TARGET][br] = target[br]
            S[BR_TAKEN][br] = tk[br]
            n_br_valid[br] = 1
            actual_next[tk] = target[tk]
            tki = np.nonzero(tk)[0]
            if tki.size:
                S[BTB_TAG0 + bidx[tki], tki] = if_pc[tki]
                S[BTB_TGT0 + bidx[tki], tki] = target[tki]
                S[BTB_V, tki] |= BIT4[bidx[tki]]
            nt = br & ~taken & (S[IF_PRED] != 0)
            nti = np.nonzero(nt)[0]
            if nti.size:
                tag_hit = S[BTB_TAG0 + bidx[nti], nti] == if_pc[nti]
                ci = nti[tag_hit]
                if ci.size:
                    S[BTB_V, ci] &= NOT4[bidx[ci]]
            n_mw_valid[br] = 1

        # --- JAL / JALR ---
        jal = dispatch & (cls == _CLS_JAL)
        jalr = dispatch & (cls == _CLS_JALR)
        j = jal | jalr
        if j.any():
            off32 = np.where(
                (word & 0x20000) != 0,
                (word & 0x1FFFF) | 0xFFFE0000,
                word & 0x3FFFF)
            jal_tgt = seq_next + (off32 << 2)  # 32-bit wrap
            jalr_tgt = (ra_val + imm32) & 0xFFFFFFFC
            jt = np.where(jal, jal_tgt, jalr_tgt)
            actual_next[j] = jt[j]
            S[BR_TARGET][j] = jt[j]
            S[BR_TAKEN][j] = 1
            n_br_valid[j] = 1
            ji = np.nonzero(j)[0]
            S[BTB_TAG0 + bidx[ji], ji] = if_pc[ji]
            S[BTB_TGT0 + bidx[ji], ji] = jt[ji]
            S[BTB_V, ji] |= BIT4[bidx[ji]]
            n_mw_valid[j] = 1
            n_mw_wen[j] = 1
            n_mw_rd[j] = rd_f[j]
            n_mw_val[j] = seq_next[j]

        # --- IN / OUT ---
        inn = dispatch & (cls == _CLS_IN)
        n_lsu_valid[inn] = 1
        n_lsu_op[inn] = 5
        S[LSU_ADDR][inn] = imm32[inn]
        n_mw_valid[inn] = 1
        n_mw_wen[inn] = 1
        n_mw_isload[inn] = 1
        n_mw_rd[inn] = rd_f[inn]
        outc = dispatch & (cls == _CLS_OUT)
        n_lsu_valid[outc] = 1
        n_lsu_op[outc] = 6
        S[LSU_ADDR][outc] = imm32[outc]
        S[LSU_WDATA][outc] = rb_val[outc]
        n_mw_valid[outc] = 1

        # --- CSRR / CSRW (unmapped numbers read zero / write the sink) ---
        csr_idx = (word & 0x3FFF).astype(np.intp)
        cr = np.nonzero(dispatch & (cls == _CLS_CSRR))[0]
        if cr.size:
            n_mw_valid[cr] = 1
            n_mw_wen[cr] = 1
            n_mw_rd[cr] = rd_f[cr]
            n_mw_val[cr] = S[CSR_READ_ROW[csr_idx[cr]], cr]
        cw = np.nonzero(dispatch & (cls == _CLS_CSRW))[0]
        if cw.size:
            S[CSR_WRITE_ROW[csr_idx[cw]], cw] = (
                rb_val[cw] & CSR_WRITE_MASK[csr_idx[cw]])
            n_mw_valid[cw] = 1

        # --- NOP / HALT ---
        n_mw_valid[dispatch & (cls == _CLS_NOP)] = 1
        halt_now = dispatch & (cls == _CLS_HALT)

        # --- trap effects ---
        ti = np.nonzero(trap)[0]
        if ti.size:
            S[CAUSE, ti] = trap_code[ti]
            S[EPC, ti] = if_pc[ti]
            S[STATUS, ti] |= _U32(1)
            S[SFLAGS, ti] = S[FLAGS, ti]

        # --- redirect decision ---
        mispred = (dispatch & ~trap & ~stall & ~halt_now
                   & (actual_next != fetched_next))
        redirect = trap | mispred
        redirect_tgt = np.where(trap, isa.EXC_VECTOR, actual_next)

        # --- DX -> MW latches ---
        n_mw_pc = np.where(if_valid, if_pc, S[MW_PC])
        ns = ~stall
        S[MW_VALID][:] = np.where(stall, 0, n_mw_valid)
        S[MW_WEN][ns] = n_mw_wen[ns]
        S[MW_ISLOAD][ns] = n_mw_isload[ns]
        S[MW_RD][ns] = n_mw_rd[ns]
        S[MW_VAL][ns] = n_mw_val[ns]
        S[MW_PC][ns] = n_mw_pc[ns]
        S[LSU_VALID][:] = np.where(stall, 0, n_lsu_valid)
        S[LSU_OP][:] = np.where(stall, 0, n_lsu_op)
        S[BR_VALID][:] = n_br_valid

        # ---------------- IF stages ----------------
        S[HALTED][halt_now] = 1
        S[IF_VALID][halt_now] = 0
        S[IMC_VALID][halt_now] = 0
        S[IMC_PRED][halt_now] = 0
        rd_l = redirect & ~halt_now
        S[PC][rd_l] = redirect_tgt[rd_l]
        S[IF_VALID][rd_l] = 0
        S[IF_PRED][rd_l] = 0
        S[IMC_VALID][rd_l] = 0
        S[IMC_PRED][rd_l] = 0

        fm = ~halt_now & ~redirect & ~stall
        fi = np.nonzero(fm)[0]
        fetch_addr = np.zeros(n, dtype=_U32)
        fetch_word = np.zeros(n, dtype=_U32)
        if fi.size:
            pc_old = S[PC, fi].copy()
            # IF2: prefetch buffer -> decode latch.
            S[IF_IR, fi] = S[IMC_DATA, fi]
            S[IF_PC, fi] = S[IMC_ADDR, fi]
            S[IF_VALID, fi] = S[IMC_VALID, fi]
            S[IF_PRED, fi] = S[IMC_PRED, fi]
            S[IF_PTGT, fi] = S[IMC_PTGT, fi]
            # IF1: fetch at pc with BTB next-fetch prediction.
            fw = M[fi, ((pc_old >> 2) % mem_words).astype(np.intp)]
            S[IMC_ADDR, fi] = pc_old
            S[IMC_DATA, fi] = fw
            S[IMC_VALID, fi] = 1
            fbidx = ((pc_old >> 2) & 3).astype(np.intp)
            pred = (((S[BTB_V, fi] & BIT4[fbidx]) != 0)
                    & (S[BTB_TAG0 + fbidx, fi] == pc_old))
            pi = fi[pred]
            if pi.size:
                tgt = S[BTB_TGT0 + fbidx[pred], pi]
                S[PC, pi] = tgt
                S[IMC_PRED, pi] = 1
                S[IMC_PTGT, pi] = tgt
            npi = fi[~pred]
            if npi.size:
                S[PC, npi] = pc_old[~pred] + _U32(4)
                S[IMC_PRED, npi] = 0
            fetch_addr[fi] = pc_old
            fetch_word[fi] = fw

        # ---------------- BIU external bus view ----------------
        bus_f = fm & ~d_any
        S[BUS_ADDR][d_any] = prim_addr[d_any]
        S[BUS_DATA][d_any] = np.where(d_read, load_data, sb_data)[d_any]
        S[BUS_ADDR][bus_f] = fetch_addr[bus_f]
        S[BUS_DATA][bus_f] = fetch_word[bus_f]
        S[BUS_CTRL][:] = np.where(
            d_any, np.where(d_write, 3, 2),
            np.where(bus_f, 1, 0))

        S[CYC][:] = S[CYC] + _U32(1)
