"""Fault-injection campaign controller.

The paper's methodology (Section IV-A): each benchmark's run time is
divided into 64 equal intervals; one experiment injects a single
random fault (soft flip, stuck-at-0 or stuck-at-1) into one flip-flop
in one interval and runs the benchmark to completion; this repeats
over every flip-flop, fault type and benchmark.

The exhaustive product is ~10M injections on a server cluster; this
controller reproduces the same stratified structure at a configurable
scale: per-unit stratified flip-flop sampling and a configurable
number of injection intervals per flop and fault type.  The soft:hard
injection ratio is configurable so the resulting *error* dataset can
be balanced like the paper's (see DESIGN.md §5.4).
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..cpu.units import FINE_UNITS, FlopRef, all_flops
from ..workloads.kernels import DEFAULT_SEED, KERNELS
from .golden import GoldenTrace
from .injector import InjectionEngine
from .models import ErrorRecord, Fault, FaultKind

#: Bump when the CPU model, SC layout or record schema changes.
CAMPAIGN_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of a fault-injection campaign."""

    benchmarks: tuple[str, ...] = tuple(KERNELS)
    seed: int = DEFAULT_SEED
    intervals: int = 64
    #: soft injections per sampled flop per benchmark.
    soft_per_flop: int = 2
    #: injections per stuck-at polarity per sampled flop per benchmark.
    hard_per_flop: int = 1
    #: fraction of each unit's flops to sample (stratified, >=1 per unit).
    flop_fraction: float = 1.0
    #: cap on post-activation observation for hard faults (None: to end).
    max_observe: int | None = 2000
    mask_check_stride: int = 4

    @classmethod
    def quick(cls) -> "CampaignConfig":
        """A seconds-scale configuration for unit tests."""
        return cls(benchmarks=("ttsprk",), soft_per_flop=1, hard_per_flop=1,
                   flop_fraction=0.05, max_observe=600)

    @classmethod
    def default(cls) -> "CampaignConfig":
        """The benchmark-harness scale (minutes on one machine)."""
        return cls(soft_per_flop=2, hard_per_flop=1, flop_fraction=0.35)

    @classmethod
    def full(cls) -> "CampaignConfig":
        """Exhaustive enumeration of every flop (hours-scale)."""
        return cls(soft_per_flop=4, hard_per_flop=1, flop_fraction=1.0,
                   max_observe=None)

    def cache_key(self) -> str:
        """Stable hash identifying this configuration.

        The schema version is folded in so cached results from older
        library versions (different record layout or CPU behaviour)
        are never reused.
        """
        text = f"{CAMPAIGN_SCHEMA_VERSION}:{self!r}"
        return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass
class CampaignResult:
    """Everything the downstream analyses need from a campaign."""

    config: CampaignConfig
    records: list[ErrorRecord]
    #: injections per (fine unit, FaultKind.value) -> count.
    injected: dict[tuple[str, str], int]
    #: golden run length per benchmark (the task restart cost basis).
    golden_cycles: dict[str, int]
    #: sampled flops per fine unit.
    sampled_flops: dict[str, int]
    wall_seconds: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def n_injected(self) -> int:
        """Total number of fault injections performed."""
        return sum(self.injected.values())

    @property
    def n_errors(self) -> int:
        """Total number of manifested errors."""
        return len(self.records)

    def save(self, path: str | Path) -> None:
        """Persist to disk (pickle)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as fh:
            pickle.dump(self, fh, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def load(path: str | Path) -> "CampaignResult":
        """Load a previously saved campaign."""
        with open(path, "rb") as fh:
            result = pickle.load(fh)
        if not isinstance(result, CampaignResult):
            raise TypeError(f"{path} does not contain a CampaignResult")
        return result


def sample_flops(config: CampaignConfig, rng: np.random.Generator) -> list[FlopRef]:
    """Stratified per-unit flop sample.

    Sampling is stratified over the *fine* taxonomy so that every unit
    (including small ones like DPU.FLAGS) contributes experiments even
    at low sampling fractions.
    """
    flops = all_flops()
    chosen: list[FlopRef] = []
    for unit in FINE_UNITS:
        unit_flops = [f for f in flops if f.unit == unit]
        k = max(1, round(config.flop_fraction * len(unit_flops)))
        k = min(k, len(unit_flops))
        idxs = rng.choice(len(unit_flops), size=k, replace=False)
        chosen.extend(unit_flops[i] for i in sorted(int(i) for i in idxs))
    return chosen


def schedule_faults(flop: FlopRef, n_cycles: int, config: CampaignConfig,
                    rng: np.random.Generator) -> list[Fault]:
    """Build the fault list for one flop on one benchmark.

    Soft faults land in ``soft_per_flop`` distinct random intervals;
    each stuck-at polarity lands in ``hard_per_flop`` random intervals.
    Within an interval the injection cycle is uniform.
    """
    interval_len = max(1, n_cycles // config.intervals)
    n_intervals = max(1, n_cycles // interval_len)

    def pick_cycles(count: int) -> list[int]:
        count = min(count, n_intervals)
        intervals = rng.choice(n_intervals, size=count, replace=False)
        return [
            min(n_cycles - 1, int(iv) * interval_len + int(rng.integers(interval_len)))
            for iv in intervals
        ]

    faults = [Fault(flop, FaultKind.SOFT, c) for c in pick_cycles(config.soft_per_flop)]
    for kind in (FaultKind.STUCK0, FaultKind.STUCK1):
        faults.extend(Fault(flop, kind, c) for c in pick_cycles(config.hard_per_flop))
    return faults


def run_campaign(config: CampaignConfig | None = None,
                 progress: bool = False) -> CampaignResult:
    """Execute a campaign and return its result."""
    config = config or CampaignConfig.default()
    rng = np.random.default_rng(config.seed)
    flops = sample_flops(config, rng)

    records: list[ErrorRecord] = []
    injected: dict[tuple[str, str], int] = {}
    golden_cycles: dict[str, int] = {}
    sampled: dict[str, int] = {}
    for flop in flops:
        sampled[flop.unit] = sampled.get(flop.unit, 0) + 1

    start = time.perf_counter()
    for bench in config.benchmarks:
        golden = GoldenTrace(KERNELS[bench], seed=config.seed)
        golden_cycles[bench] = golden.n_cycles
        engine = InjectionEngine(golden, max_observe=config.max_observe,
                                 mask_check_stride=config.mask_check_stride)
        for i, flop in enumerate(flops):
            for fault in schedule_faults(flop, golden.n_cycles, config, rng):
                key = (flop.unit, fault.kind.value)
                injected[key] = injected.get(key, 0) + 1
                record = engine.inject(fault)
                if record is not None:
                    records.append(record)
            if progress and i % 200 == 0:
                elapsed = time.perf_counter() - start
                print(f"[campaign] {bench}: flop {i}/{len(flops)} "
                      f"errors={len(records)} t={elapsed:.0f}s", flush=True)

    return CampaignResult(
        config=config,
        records=records,
        injected=injected,
        golden_cycles=golden_cycles,
        sampled_flops=sampled,
        wall_seconds=time.perf_counter() - start,
    )


def cached_campaign(config: CampaignConfig | None = None,
                    cache_dir: str | Path = ".campaign_cache",
                    progress: bool = False) -> CampaignResult:
    """Run a campaign, or load it from the on-disk cache if present.

    All benchmark-harness figures share one campaign run through this
    cache, keyed by the configuration hash.
    """
    config = config or CampaignConfig.default()
    path = Path(cache_dir) / f"campaign_{config.cache_key()}.pkl"
    if path.exists():
        return CampaignResult.load(path)
    result = run_campaign(config, progress=progress)
    result.save(path)
    return result
