"""Fault-injection campaign controller.

The paper's methodology (Section IV-A): each benchmark's run time is
divided into 64 equal intervals; one experiment injects a single
random fault (soft flip, stuck-at-0 or stuck-at-1) into one flip-flop
in one interval and runs the benchmark to completion; this repeats
over every flip-flop, fault type and benchmark.

The exhaustive product is ~10M injections on a server cluster; this
controller reproduces the same stratified structure at a configurable
scale: per-unit stratified flip-flop sampling and a configurable
number of injection intervals per flop and fault type.  The soft:hard
injection ratio is configurable so the resulting *error* dataset can
be balanced like the paper's (see DESIGN.md §5.4).
"""

from __future__ import annotations

import hashlib
import pickle
import warnings
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..cpu.units import FINE_UNITS, FlopRef, all_flops
from ..workloads.kernels import DEFAULT_SEED, KERNELS
from .models import ErrorRecord, Fault, FaultKind

#: Bump when the CPU model, SC layout, record schema or fault-schedule
#: derivation changes.  v3: keyed SeedSequence substreams per
#: (benchmark, flop) replaced the single sequential generator.
#: v4: golden traces carry def/use liveness masks (liveness pruning)
#: and `schedule_faults` clamps the interval count to the configured
#: value, spreading the remainder cycles over the leading intervals.
CAMPAIGN_SCHEMA_VERSION = 4


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of a fault-injection campaign."""

    benchmarks: tuple[str, ...] = tuple(KERNELS)
    seed: int = DEFAULT_SEED
    intervals: int = 64
    #: soft injections per sampled flop per benchmark.
    soft_per_flop: int = 2
    #: injections per stuck-at polarity per sampled flop per benchmark.
    hard_per_flop: int = 1
    #: fraction of each unit's flops to sample (stratified, >=1 per unit).
    flop_fraction: float = 1.0
    #: cap on post-activation observation for hard faults (None: to end).
    max_observe: int | None = 2000
    mask_check_stride: int = 4
    #: liveness pruning (zero-sim masking, deferred starts, dynamic
    #: equivalence).  Records are bit-identical either way — off is an
    #: escape hatch / baseline for benchmarking (``--no-prune``).
    prune: bool = True

    @classmethod
    def quick(cls) -> "CampaignConfig":
        """A seconds-scale configuration for unit tests."""
        return cls(benchmarks=("ttsprk",), soft_per_flop=1, hard_per_flop=1,
                   flop_fraction=0.05, max_observe=600)

    @classmethod
    def default(cls) -> "CampaignConfig":
        """The benchmark-harness scale (minutes on one machine)."""
        return cls(soft_per_flop=2, hard_per_flop=1, flop_fraction=0.35)

    @classmethod
    def full(cls) -> "CampaignConfig":
        """Exhaustive enumeration of every flop (hours-scale)."""
        return cls(soft_per_flop=4, hard_per_flop=1, flop_fraction=1.0,
                   max_observe=None)

    def cache_key(self) -> str:
        """Stable hash identifying this configuration.

        The schema version is folded in so cached results from older
        library versions (different record layout or CPU behaviour)
        are never reused.
        """
        text = f"{CAMPAIGN_SCHEMA_VERSION}:{self!r}"
        return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass
class CampaignResult:
    """Everything the downstream analyses need from a campaign."""

    config: CampaignConfig
    records: list[ErrorRecord]
    #: injections per (fine unit, FaultKind.value) -> count.
    injected: dict[tuple[str, str], int]
    #: golden run length per benchmark (the task restart cost basis).
    golden_cycles: dict[str, int]
    #: sampled flops per fine unit.
    sampled_flops: dict[str, int]
    wall_seconds: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def n_injected(self) -> int:
        """Total number of fault injections performed."""
        return sum(self.injected.values())

    @property
    def n_errors(self) -> int:
        """Total number of manifested errors."""
        return len(self.records)

    def digest(self) -> str:
        """Canonical digest of the record list (see :func:`records_digest`)."""
        return records_digest(self.records)

    def save(self, path: str | Path) -> None:
        """Persist to disk (pickle)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as fh:
            pickle.dump(self, fh, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def load(path: str | Path) -> "CampaignResult":
        """Load a previously saved campaign."""
        with open(path, "rb") as fh:
            result = pickle.load(fh)
        if not isinstance(result, CampaignResult):
            raise TypeError(f"{path} does not contain a CampaignResult")
        return result


def records_digest(records: list[ErrorRecord]) -> str:
    """Order-sensitive canonical sha256 over a record list.

    Used to assert bit-identical campaign behaviour across worker
    counts and pruning on/off.  Fields are serialised explicitly —
    ``repr`` of a frozenset is iteration-order dependent, so the
    diverged set is sorted first.
    """
    h = hashlib.sha256()
    for r in records:
        h.update(repr((r.benchmark, r.flop.reg, r.flop.bit, r.kind.value,
                       r.inject_cycle, r.detect_cycle,
                       sorted(r.diverged))).encode())
    return h.hexdigest()


def sample_flops(config: CampaignConfig, rng: np.random.Generator) -> list[FlopRef]:
    """Stratified per-unit flop sample.

    Sampling is stratified over the *fine* taxonomy so that every unit
    (including small ones like DPU.FLAGS) contributes experiments even
    at low sampling fractions.
    """
    by_unit: dict[str, list[FlopRef]] = {}
    for flop in all_flops():
        by_unit.setdefault(flop.unit, []).append(flop)
    chosen: list[FlopRef] = []
    for unit in FINE_UNITS:
        unit_flops = by_unit.get(unit, [])
        k = max(1, round(config.flop_fraction * len(unit_flops)))
        k = min(k, len(unit_flops))
        idxs = rng.choice(len(unit_flops), size=k, replace=False)
        chosen.extend(unit_flops[i] for i in sorted(int(i) for i in idxs))
    return chosen


def schedule_faults(flop: FlopRef, n_cycles: int, config: CampaignConfig,
                    rng: np.random.Generator) -> list[Fault]:
    """Build the fault list for one flop on one benchmark.

    Soft faults land in ``soft_per_flop`` distinct random intervals;
    each stuck-at polarity lands in ``hard_per_flop`` random intervals.
    Within an interval the injection cycle is uniform.

    There are never more than ``config.intervals`` intervals: when
    ``n_cycles`` does not divide evenly the remainder cycles are spread
    one-per-interval over the leading intervals, so every interval is
    within one cycle of the same length and late intervals carry the
    same injection probability as early ones.
    """
    n_intervals = max(1, min(config.intervals, n_cycles))
    base, extra = divmod(n_cycles, n_intervals)

    def pick_cycles(count: int) -> list[int]:
        count = min(count, n_intervals)
        iv = rng.choice(n_intervals, size=count, replace=False).astype(np.int64)
        lo = iv * base + np.minimum(iv, extra)
        lengths = np.where(iv < extra, base + 1, base)
        # One vectorised bounded draw per interval batch: numpy's
        # Generator consumes the bitstream per element exactly as the
        # equivalent sequence of scalar ``integers(length)`` calls
        # (tested property), so schedules — and digests — are unchanged.
        return (lo + rng.integers(lengths)).tolist()

    faults = [Fault(flop, FaultKind.SOFT, c) for c in pick_cycles(config.soft_per_flop)]
    for kind in (FaultKind.STUCK0, FaultKind.STUCK1):
        faults.extend(Fault(flop, kind, c) for c in pick_cycles(config.hard_per_flop))
    return faults


def run_campaign(config: CampaignConfig | None = None,
                 progress: bool = False, workers: int | None = 1,
                 chunk_flops: int | None = None,
                 batch: int | None = None,
                 kernel: str | None = None,
                 executor: str | None = None,
                 threads: int | None = None) -> CampaignResult:
    """Execute a campaign and return its result.

    Args:
        config: campaign parameters (default: :meth:`CampaignConfig.default`).
        progress: print per-shard progress lines.
        workers: worker processes for the sharded engine; ``1`` runs the
            shards inline in this process, ``None``/``0`` uses every
            core.  Results are bit-identical for any value (see
            :mod:`repro.faults.parallel`).
        chunk_flops: flops per shard (default: auto, ~4 shards per
            worker per benchmark).  Affects only scheduling granularity,
            never results.
        batch: lane count for the vectorised injection engine
            (:mod:`repro.faults.batch`); ``None``/``0`` runs the scalar
            engine.  Like ``workers``, an execution knob only — records
            and pruning stats are bit-identical for any value.
        kernel: step backend for the vectorised engine — ``"cext"``,
            ``"numpy"`` or ``"auto"``/``None`` (compiled when
            available; see :mod:`repro.faults.kernels`).  Also purely
            an execution knob.
        executor: shard fan-out backend — ``"process"`` (default) or
            ``"thread"`` (in-process workers sharing one golden cache;
            effective with the GIL-releasing compiled kernel).  Also
            purely an execution knob.
        threads: compiled kernel drive-loop thread count (``None``
            auto-sizes; see :func:`repro.faults.kernels.resolve_threads`).
            Also purely an execution knob.
    """
    from .parallel import execute_campaign

    config = config or CampaignConfig.default()
    return execute_campaign(config, progress=progress, workers=workers,
                            chunk_flops=chunk_flops, batch=batch,
                            kernel=kernel, executor=executor,
                            threads=threads)


def _load_cached(path: Path, config: CampaignConfig) -> CampaignResult | None:
    """Load and validate a cached campaign; None if unusable.

    Guards against both corrupt pickles and stale files whose embedded
    config no longer hashes to the requested key (e.g. a cache dir
    carried across a schema change, or a hand-renamed file).
    """
    try:
        result = CampaignResult.load(path)
    except Exception as exc:  # unpicklable, truncated, wrong type ...
        warnings.warn(f"discarding unreadable campaign cache {path}: {exc}",
                      RuntimeWarning, stacklevel=3)
        return None
    if result.config.cache_key() != config.cache_key():
        warnings.warn(
            f"campaign cache {path} was produced by a different "
            f"configuration (key {result.config.cache_key()}, expected "
            f"{config.cache_key()}); re-running", RuntimeWarning, stacklevel=3)
        return None
    return result


def cached_campaign(config: CampaignConfig | None = None,
                    cache_dir: str | Path = ".campaign_cache",
                    progress: bool = False,
                    workers: int | None = 1,
                    batch: int | None = None,
                    kernel: str | None = None,
                    executor: str | None = None,
                    threads: int | None = None) -> CampaignResult:
    """Run a campaign, or load it from the on-disk cache if present.

    All benchmark-harness figures share one campaign run through this
    cache, keyed by the configuration hash.  The key is independent of
    ``workers``, ``batch``, ``kernel``, ``executor`` and ``threads`` —
    a result computed with any worker count, engine (scalar /
    vectorised), step backend, shard executor or thread count is
    identical, so it is shared by all of them.
    """
    config = config or CampaignConfig.default()
    path = Path(cache_dir) / f"campaign_{config.cache_key()}.pkl"
    if path.exists():
        result = _load_cached(path, config)
        if result is not None:
            return result
    result = run_campaign(config, progress=progress, workers=workers,
                          batch=batch, kernel=kernel, executor=executor,
                          threads=threads)
    result.save(path)
    return result
