"""Golden (fault-free) reference traces.

The fault-injection engine exploits lockstep symmetry: simulating the
redundant *fault-free* core is equivalent to replaying a recorded
fault-free trace.  A golden trace therefore records, for every cycle,
the output-port vector and the full flip-flop snapshot, plus a memory
write log — enough to (a) start a faulty core at any cycle, (b) detect
divergence against the virtual fault-free partner, and (c) detect when
a transient's effects have been fully masked.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from ..cpu.assembler import Program, assemble
from ..cpu.core import Cpu
from ..cpu.memory import InputStream, Memory
from ..cpu.units import REG_INDEX
from ..workloads.kernels import DEFAULT_SEED, Workload

#: Memory size used throughout the injection study.  Small enough that
#: per-experiment memory reconstruction is cheap; large enough for
#: every kernel's code, tables and data buffers.
CAMPAIGN_MEM_WORDS = 2048

#: Write-log entries between memory checkpoints.  Reconstruction cost
#: is one full-image copy plus at most this many replayed writes, so a
#: smaller stride trades checkpoint memory for faster ``memory_at``.
MEMORY_CHECKPOINT_EVERY = 512


class LoggingMemory(Memory):
    """Memory that logs committed word values with their cycle stamp."""

    __slots__ = ("log", "now")

    def __init__(self, size_words: int):
        super().__init__(size_words)
        self.log: list[tuple[int, int, int]] = []  # (cycle, word index, value after)
        self.now = 0

    def write_word(self, byte_addr: int, value: int) -> None:
        idx = (byte_addr >> 2) % self.size
        value &= 0xFFFFFFFF
        self.words[idx] = value
        self.log.append((self.now, idx, value))

    def write_byte(self, byte_addr: int, value: int) -> None:
        idx = (byte_addr >> 2) % self.size
        shift = (byte_addr & 3) * 8
        word = (self.words[idx] & ~(0xFF << shift)) | ((value & 0xFF) << shift)
        self.words[idx] = word
        self.log.append((self.now, idx, word))


class GoldenTrace:
    """Fault-free execution record of one workload kernel.

    Attributes:
        workload: the kernel that was traced.
        program: its assembled image.
        stimulus: the replicated input stream.
        n_cycles: trace length (cycles until HALT).
        outputs: per-cycle 62-SC output port vectors.
        states: per-cycle flip-flop snapshots; ``states[t]`` is the
            state at the *start* of cycle ``t``.
    """

    def __init__(self, workload: Workload, seed: int = DEFAULT_SEED,
                 max_cycles: int = 100_000, mem_words: int = CAMPAIGN_MEM_WORDS):
        self.workload = workload
        self.seed = seed
        self.mem_words = mem_words
        self.program: Program = assemble(workload.source)
        self.stimulus = InputStream(workload.stimulus(seed))
        self._initial_words = [0] * mem_words
        self._initial_words[: len(self.program.words)] = self.program.words

        mem = LoggingMemory(mem_words)
        mem.words[: len(self.program.words)] = self.program.words
        cpu = Cpu(mem, self.stimulus, entry=self.program.entry)
        outputs: list[tuple[int, ...]] = []
        states: list[tuple[int, ...]] = []
        t = 0
        while not cpu.halted and t < max_cycles:
            mem.now = t
            states.append(cpu.snapshot())
            outputs.append(cpu.step())
            t += 1
        if not cpu.halted:
            raise RuntimeError(
                f"golden run of {workload.name!r} did not halt in {max_cycles} cycles")
        self.n_cycles = t
        self.outputs = outputs
        self.states = states
        self.reindex_write_log(mem.log)
        #: (n_cycles, n_registers) matrix of register values, used for
        #: vectorised stuck-at activation search.
        self.state_matrix = np.array(states, dtype=np.uint64)

    def reindex_write_log(self, log: list[tuple[int, int, int]]) -> None:
        """Attach ``log`` and rebuild the reconstruction index.

        The log must be cycle-sorted (which a recorded trace is by
        construction).  Checkpoints are rebuilt lazily on the next
        :meth:`memory_at` call.
        """
        self.write_log = log
        self._log_cycles = [entry[0] for entry in log]
        self._mem_checkpoints: list[list[int]] | None = None

    def _checkpoints(self) -> list[list[int]]:
        """Memory images after each ``MEMORY_CHECKPOINT_EVERY`` writes.

        ``_checkpoints()[k]`` is the word array after applying
        ``write_log[:(k + 1) * MEMORY_CHECKPOINT_EVERY]``.  Built once,
        on first use, in a single pass over the log.
        """
        ckpts = self._mem_checkpoints
        if ckpts is None:
            ckpts = []
            words = list(self._initial_words)
            log = self.write_log
            stride = MEMORY_CHECKPOINT_EVERY
            for k in range(stride, len(log) + 1, stride):
                for _, idx, value in log[k - stride:k]:
                    words[idx] = value
                ckpts.append(list(words))
            self._mem_checkpoints = ckpts
        return ckpts

    def memory_at(self, cycle: int) -> Memory:
        """Reconstruct the memory image as of the start of ``cycle``.

        Starts from the nearest preceding checkpoint and replays only
        the delta, so reconstruction is O(image + stride) instead of
        O(image + whole log).
        """
        # Entries with when < cycle are committed before `cycle` starts.
        j = bisect_left(self._log_cycles, cycle)
        k = j // MEMORY_CHECKPOINT_EVERY
        if k:
            words = list(self._checkpoints()[k - 1])
            base = k * MEMORY_CHECKPOINT_EVERY
        else:
            words = list(self._initial_words)
            base = 0
        for _, idx, value in self.write_log[base:j]:
            words[idx] = value
        mem = Memory.__new__(Memory)
        mem.size = self.mem_words
        mem.words = words
        return mem

    def activation_cycle(self, reg: str, bit: int, value: int, start: int) -> int | None:
        """First cycle >= ``start`` where the golden flop differs from ``value``.

        A stuck-at fault is inert while the flop happens to hold the
        stuck value; until this cycle the faulty core is bit-identical
        to the golden core, so simulation can start here.  Returns None
        when the fault is never activated (fully masked).
        """
        col = self.state_matrix[start:, REG_INDEX[reg]]
        bits = (col >> np.uint64(bit)) & np.uint64(1)
        hits = np.nonzero(bits != value)[0]
        if hits.size == 0:
            return None
        return start + int(hits[0])
