"""Golden (fault-free) reference traces.

The fault-injection engine exploits lockstep symmetry: simulating the
redundant *fault-free* core is equivalent to replaying a recorded
fault-free trace.  A golden trace therefore records, for every cycle,
the compact output-port tuple and the full flip-flop snapshot, plus a
memory write log — enough to (a) start a faulty core at any cycle,
(b) detect divergence against the virtual fault-free partner, and
(c) detect when a transient's effects have been fully masked.

Storage is packed: two numpy matrices (``port_matrix`` and
``state_matrix``) are the single source of truth; per-cycle Python
tuple lists are not retained.  ``ports``/``states``/``outputs`` are
on-demand row accessors that materialise tuples only when indexed.
``state_hashes`` caches each snapshot tuple's hash so the injection
engine can gate exact state comparisons behind an integer check.

Traces are also cacheable on disk (``.golden_cache/`` by default, see
:func:`golden_cache_dir`): an uncompressed ``.npz`` keyed by benchmark,
stimulus seed, memory size and the campaign schema version, loaded with
``mmap_mode="r"`` so pool workers share pages instead of re-simulating
the kernel.  Any validation failure falls back to a fresh simulation.
"""

from __future__ import annotations

import os
import warnings
from bisect import bisect_left
from pathlib import Path

import numpy as np

from ..cpu.assembler import Program, assemble
from ..cpu.core import NUM_PORTS, Cpu
from ..cpu.memory import InputStream, Memory
from ..cpu.units import (
    FULL_WRITE_MASK,
    MASK_WORDS,
    REG_INDEX,
    REGISTRY,
    pack_register_mask,
)
from ..lockstep.categories import expand_ports
from ..workloads.kernels import DEFAULT_SEED, Workload
from .campaign import CAMPAIGN_SCHEMA_VERSION

_WORD_MASK = (1 << 64) - 1


def _pack_mask_rows(rows: list[int], n: int) -> np.ndarray:
    """Python-int bitmask rows -> (n, MASK_WORDS) uint64 matrix."""
    matrix = np.empty((n, MASK_WORDS), dtype=np.uint64)
    for t, bits in enumerate(rows):
        for w in range(MASK_WORDS):
            matrix[t, w] = (bits >> (64 * w)) & _WORD_MASK
    return matrix

#: Memory size used throughout the injection study.  Small enough that
#: per-experiment memory reconstruction is cheap; large enough for
#: every kernel's code, tables and data buffers.
CAMPAIGN_MEM_WORDS = 2048

#: Write-log entries between memory checkpoints.  Reconstruction cost
#: is one full-image copy plus at most this many replayed writes, so a
#: smaller stride trades checkpoint memory for faster ``memory_at``.
MEMORY_CHECKPOINT_EVERY = 512

#: Environment variable overriding the golden-trace cache directory.
#: Unset -> ``.golden_cache``; empty / ``0`` / ``off`` / ``none`` ->
#: caching disabled.
GOLDEN_CACHE_ENV = "REPRO_GOLDEN_CACHE"

DEFAULT_GOLDEN_CACHE_DIR = ".golden_cache"


def golden_cache_dir() -> Path | None:
    """Resolve the on-disk golden-trace cache directory (None = off)."""
    value = os.environ.get(GOLDEN_CACHE_ENV)
    if value is None:
        return Path(DEFAULT_GOLDEN_CACHE_DIR)
    if value.strip().lower() in ("", "0", "off", "none"):
        return None
    return Path(value)


class LoggingMemory(Memory):
    """Memory that logs committed word values with their cycle stamp."""

    __slots__ = ("log", "now")

    def __init__(self, size_words: int):
        super().__init__(size_words)
        self.log: list[tuple[int, int, int]] = []  # (cycle, word index, value after)
        self.now = 0

    def write_word(self, byte_addr: int, value: int) -> None:
        idx = (byte_addr >> 2) % self.size
        value &= 0xFFFFFFFF
        self.words[idx] = value
        self.log.append((self.now, idx, value))

    def write_byte(self, byte_addr: int, value: int) -> None:
        idx = (byte_addr >> 2) % self.size
        shift = (byte_addr & 3) * 8
        word = (self.words[idx] & ~(0xFF << shift)) | ((value & 0xFF) << shift)
        self.words[idx] = word
        self.log.append((self.now, idx, word))


class _Rows:
    """Lazy per-cycle view of a packed trace matrix.

    Rows are materialised as tuples of Python ints only when indexed,
    so holding a trace costs two flat uint64 matrices instead of tens
    of thousands of tuple objects.  Supports ``len``, integer indexing
    (including negative) and slicing, like the lists it replaced.
    """

    __slots__ = ("_matrix",)

    def __init__(self, matrix: np.ndarray):
        self._matrix = matrix

    def __len__(self) -> int:
        return len(self._matrix)

    def __getitem__(self, key):
        if isinstance(key, slice):
            return [tuple(row) for row in self._matrix[key].tolist()]
        return tuple(self._matrix[key].tolist())

    def __iter__(self):
        return iter(self[:])


class _ExpandedRows(_Rows):
    """62-SC view of the packed port matrix, expanded per access."""

    def __getitem__(self, key):
        if isinstance(key, slice):
            return [expand_ports(tuple(row)) for row in self._matrix[key].tolist()]
        return expand_ports(tuple(self._matrix[key].tolist()))


class GoldenTrace:
    """Fault-free execution record of one workload kernel.

    Attributes:
        workload: the kernel that was traced.
        program: its assembled image.
        stimulus: the replicated input stream.
        n_cycles: trace length (cycles until HALT).
        port_matrix: (n_cycles, NUM_PORTS) uint64 matrix of compact
            output-port tuples (what ``Cpu.step()`` returns).
        state_matrix: (n_cycles, n_registers) uint64 matrix of flip-flop
            snapshots; row ``t`` is the state at the *start* of cycle
            ``t``.  Also used for vectorised stuck-at activation search.
        state_hashes: per-cycle ``hash()`` of the snapshot tuple, for
            cheap re-convergence prechecks.
        ports: lazy per-cycle compact port tuples (rows of
            ``port_matrix``).
        states: lazy per-cycle snapshot tuples (rows of
            ``state_matrix``).
        outputs: lazy per-cycle 62-SC vectors (``ports`` through
            :func:`expand_ports`); kept for analysis-side consumers —
            the per-cycle comparison path never materialises these.
    """

    def __init__(self, workload: Workload, seed: int = DEFAULT_SEED,
                 max_cycles: int = 100_000, mem_words: int = CAMPAIGN_MEM_WORDS):
        self.workload = workload
        self.seed = seed
        self.mem_words = mem_words
        self.program: Program = assemble(workload.source)
        self.stimulus = InputStream(workload.stimulus(seed))
        self._initial_words = [0] * mem_words
        self._initial_words[: len(self.program.words)] = self.program.words

        mem = LoggingMemory(mem_words)
        mem.words[: len(self.program.words)] = self.program.words
        cpu = Cpu(mem, self.stimulus, entry=self.program.entry)
        # Golden generation runs with def/use access tracing attached:
        # per cycle we record which REGISTRY flops the next-state logic
        # read (stale reads only) and wrote.  The injection hot path
        # never traces — plain-dict cores are untouched.
        tracer = cpu.start_access_trace()
        ports: list[tuple[int, ...]] = []
        states: list[tuple[int, ...]] = []
        read_rows: list[int] = []
        write_rows: list[int] = []
        t = 0
        while not cpu.halted and t < max_cycles:
            mem.now = t
            states.append(cpu.snapshot())
            tracer.arm()  # snapshot's reads above are not uses
            ports.append(cpu.step())
            read_rows.append(pack_register_mask(tracer.reads))
            write_rows.append(pack_register_mask(tracer.writes))
            t += 1
        cpu.stop_access_trace()
        if not cpu.halted:
            raise RuntimeError(
                f"golden run of {workload.name!r} did not halt in {max_cycles} cycles")
        self.n_cycles = t
        self.port_matrix = np.array(ports, dtype=np.uint64).reshape(t, NUM_PORTS)
        self.state_matrix = np.array(states, dtype=np.uint64).reshape(t, len(REGISTRY))
        self.state_hashes = np.fromiter(
            (hash(s) for s in states), dtype=np.int64, count=t)
        self.read_mask = _pack_mask_rows(read_rows, t)
        self.write_mask = _pack_mask_rows(write_rows, t)
        self._port_tuples: list[tuple[int, ...]] | None = ports
        self._state_hash_list: list[int] | None = None
        self._liveness_cache: dict[str, tuple[np.ndarray, list[int], list[int]]] = {}
        self._active_cache: dict[tuple[str, int, int, bool], np.ndarray] = {}
        self.reindex_write_log(mem.log)

    # -- row access ----------------------------------------------------------

    @property
    def ports(self) -> _Rows:
        """Lazy per-cycle compact port tuples."""
        return _Rows(self.port_matrix)

    @property
    def states(self) -> _Rows:
        """Lazy per-cycle flip-flop snapshot tuples."""
        return _Rows(self.state_matrix)

    @property
    def outputs(self) -> _ExpandedRows:
        """Lazy per-cycle 62-SC output vectors (expanded on access)."""
        return _ExpandedRows(self.port_matrix)

    def state_at(self, t: int) -> tuple[int, ...]:
        """The snapshot tuple at the start of cycle ``t``."""
        return tuple(self.state_matrix[t].tolist())

    def port_tuples(self) -> list[tuple[int, ...]]:
        """All compact port tuples, materialised once and cached.

        The injection engine's per-cycle compare indexes this list —
        one upfront materialisation amortised over thousands of
        experiments beats per-access row conversion.
        """
        tuples = self._port_tuples
        if tuples is None:
            tuples = [tuple(row) for row in self.port_matrix.tolist()]
            self._port_tuples = tuples
        return tuples

    def state_hash_list(self) -> list[int]:
        """``state_hashes`` as a plain Python list (cached)."""
        hashes = self._state_hash_list
        if hashes is None:
            hashes = self.state_hashes.tolist()
            self._state_hash_list = hashes
        return hashes

    # -- disk cache ----------------------------------------------------------

    @classmethod
    def cached(cls, workload: Workload, seed: int = DEFAULT_SEED,
               max_cycles: int = 100_000, mem_words: int = CAMPAIGN_MEM_WORDS,
               cache_dir: Path | str | None = None) -> "GoldenTrace":
        """Load the trace from the on-disk cache, simulating on miss.

        ``cache_dir=None`` uses :func:`golden_cache_dir` (which honours
        ``REPRO_GOLDEN_CACHE``); if caching is disabled this is exactly
        ``GoldenTrace(workload, seed, ...)``.  Unreadable, stale or
        mismatching cache files are discarded with a warning and the
        trace is re-simulated (and the file rewritten).
        """
        directory = Path(cache_dir) if cache_dir is not None else golden_cache_dir()
        if directory is None:
            return cls(workload, seed, max_cycles, mem_words)
        path = directory / (
            f"{workload.name}_s{seed}_m{mem_words}_v{CAMPAIGN_SCHEMA_VERSION}.npz")
        if path.exists():
            trace = cls._load_cached(path, workload, seed, mem_words)
            if trace is not None:
                return trace
        trace = cls(workload, seed, max_cycles, mem_words)
        try:
            trace.save_cache(path)
        except OSError as exc:  # e.g. read-only checkout: cache is best-effort
            warnings.warn(f"could not write golden-trace cache {path}: {exc}",
                          RuntimeWarning, stacklevel=2)
        return trace

    def save_cache(self, path: Path) -> None:
        """Write this trace to ``path`` atomically (uncompressed npz)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = np.array(
            [CAMPAIGN_SCHEMA_VERSION, self.n_cycles, self.mem_words,
             len(REGISTRY), NUM_PORTS, self.seed],
            dtype=np.int64)
        write_log = np.array(self.write_log, dtype=np.uint64).reshape(-1, 3)
        stimulus = np.array(self.stimulus.values, dtype=np.uint64)
        # pid-unique temp + rename: concurrent pool workers may race to
        # populate the same entry, and a crash must not leave a torn file.
        tmp = path.with_name(f"{path.stem}.tmp{os.getpid()}.npz")
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, meta=meta, port_matrix=self.port_matrix,
                         state_matrix=self.state_matrix,
                         state_hashes=self.state_hashes,
                         read_mask=self.read_mask,
                         write_mask=self.write_mask,
                         write_log=write_log, stimulus=stimulus)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()

    @classmethod
    def _load_cached(cls, path: Path, workload: Workload, seed: int,
                     mem_words: int) -> "GoldenTrace | None":
        """Load and validate a cached trace; None (plus warning) on failure."""
        program = assemble(workload.source)
        stimulus_values = workload.stimulus(seed)
        try:
            data = np.load(path, mmap_mode="r", allow_pickle=False)
            meta = data["meta"]
            if meta.shape != (6,):
                raise ValueError(f"bad meta shape {meta.shape}")
            schema, n_cycles, cached_mem, n_regs, n_ports, cached_seed = (
                int(v) for v in meta)
            if schema != CAMPAIGN_SCHEMA_VERSION:
                raise ValueError(f"schema v{schema} != v{CAMPAIGN_SCHEMA_VERSION}")
            if cached_mem != mem_words or cached_seed != seed:
                raise ValueError("mem_words/seed mismatch")
            if n_regs != len(REGISTRY) or n_ports != NUM_PORTS:
                raise ValueError("register/port schema mismatch")
            port_matrix = data["port_matrix"]
            state_matrix = data["state_matrix"]
            state_hashes = data["state_hashes"]
            write_log = data["write_log"]
            stimulus = data["stimulus"]
            if n_cycles <= 0 or port_matrix.shape != (n_cycles, NUM_PORTS):
                raise ValueError(f"bad port matrix shape {port_matrix.shape}")
            if state_matrix.shape != (n_cycles, len(REGISTRY)):
                raise ValueError(f"bad state matrix shape {state_matrix.shape}")
            if state_hashes.shape != (n_cycles,):
                raise ValueError(f"bad hash vector shape {state_hashes.shape}")
            if write_log.ndim != 2 or write_log.shape[1] != 3:
                raise ValueError(f"bad write log shape {write_log.shape}")
            # v4: per-cycle def/use masks.  Older cache files simply lack
            # the keys (KeyError lands in the same discard path).
            read_mask = data["read_mask"]
            write_mask = data["write_mask"]
            if read_mask.shape != (n_cycles, MASK_WORDS):
                raise ValueError(f"bad read mask shape {read_mask.shape}")
            if write_mask.shape != (n_cycles, MASK_WORDS):
                raise ValueError(f"bad write mask shape {write_mask.shape}")
            if stimulus.tolist() != list(stimulus_values):
                raise ValueError("stimulus stream mismatch")
            trace = cls.__new__(cls)
            trace.workload = workload
            trace.seed = seed
            trace.mem_words = mem_words
            trace.program = program
            trace.stimulus = InputStream(stimulus_values)
            trace._initial_words = [0] * mem_words
            trace._initial_words[: len(program.words)] = program.words
            trace.n_cycles = n_cycles
            trace.port_matrix = port_matrix
            trace.state_matrix = state_matrix
            trace.state_hashes = state_hashes
            trace.read_mask = read_mask
            trace.write_mask = write_mask
            trace._port_tuples = None
            trace._state_hash_list = None
            trace._liveness_cache = {}
            trace._active_cache = {}
            trace.reindex_write_log(
                [tuple(entry) for entry in write_log.tolist()])
            reset = Cpu(Memory(16), trace.stimulus,
                        entry=program.entry).snapshot()
            if trace.state_at(0) != reset:
                raise ValueError("reset-state row mismatch")
            # Tuple hashes are process-deterministic but not guaranteed
            # stable across interpreter builds; stale hashes only cost
            # performance (exact compares gate every decision), yet a
            # cheap row-0 probe lets us restore the fast path anyway.
            if hash(reset) != int(trace.state_hashes[0]):
                trace.state_hashes = np.fromiter(
                    (hash(s) for s in trace.states), dtype=np.int64,
                    count=n_cycles)
            return trace
        except Exception as exc:
            warnings.warn(
                f"discarding unusable golden-trace cache {path}: {exc}",
                RuntimeWarning, stacklevel=2)
            return None

    # -- memory reconstruction & activation search ---------------------------

    def reindex_write_log(self, log: list[tuple[int, int, int]]) -> None:
        """Attach ``log`` and rebuild the reconstruction index.

        The log must be cycle-sorted (which a recorded trace is by
        construction).  Checkpoints are rebuilt lazily on the next
        :meth:`memory_at` call.
        """
        self.write_log = log
        self._log_cycles = [entry[0] for entry in log]
        self._mem_checkpoints: list[list[int]] | None = None
        self._np_mem: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None

    def _checkpoints(self) -> list[list[int]]:
        """Memory images after each ``MEMORY_CHECKPOINT_EVERY`` writes.

        ``_checkpoints()[k]`` is the word array after applying
        ``write_log[:(k + 1) * MEMORY_CHECKPOINT_EVERY]``.  Built once,
        on first use, in a single pass over the log.
        """
        ckpts = self._mem_checkpoints
        if ckpts is None:
            ckpts = []
            words = list(self._initial_words)
            log = self.write_log
            stride = MEMORY_CHECKPOINT_EVERY
            for k in range(stride, len(log) + 1, stride):
                for _, idx, value in log[k - stride:k]:
                    words[idx] = value
                ckpts.append(list(words))
            self._mem_checkpoints = ckpts
        return ckpts

    def memory_at(self, cycle: int, out: Memory | None = None) -> Memory:
        """Reconstruct the memory image as of the start of ``cycle``.

        Starts from the nearest preceding checkpoint and replays only
        the delta, so reconstruction is O(image + stride) instead of
        O(image + whole log).

        Args:
            out: optional scratch :class:`Memory` of ``mem_words`` size
                to overwrite in place and return, saving the per-call
                word-list allocation (the injection engine reuses one
                scratch buffer across all experiments).
        """
        # Entries with when < cycle are committed before `cycle` starts.
        j = bisect_left(self._log_cycles, cycle)
        k = j // MEMORY_CHECKPOINT_EVERY
        if k:
            src = self._checkpoints()[k - 1]
            base = k * MEMORY_CHECKPOINT_EVERY
        else:
            src = self._initial_words
            base = 0
        if out is None:
            mem = Memory.__new__(Memory)
            mem.size = self.mem_words
            mem.words = list(src)
        else:
            mem = out
            mem.words[:] = src
        words = mem.words
        for _, idx, value in self.write_log[base:j]:
            words[idx] = value
        return mem

    def _np_mem_index(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Numpy mirror of the reconstruction index (built lazily once).

        Returns ``(initial, checkpoints, idxs, vals)``: the initial word
        image, the ``(k, mem_words)`` checkpoint matrix, and the write
        log split into index/value columns, all ``int64``.  Backs
        :meth:`memory_words_at` so the batch engine can seed lane
        memories without materialising a :class:`Memory` object.
        """
        cached = self._np_mem
        if cached is None:
            if self.write_log:
                log = np.asarray(self.write_log, dtype=np.int64).reshape(-1, 3)
                idxs = np.ascontiguousarray(log[:, 1])
                vals = np.ascontiguousarray(log[:, 2])
            else:
                idxs = np.empty(0, dtype=np.int64)
                vals = np.empty(0, dtype=np.int64)
            initial = np.array(self._initial_words, dtype=np.int64)
            ckpts = np.array(self._checkpoints(), dtype=np.int64).reshape(
                -1, self.mem_words)
            cached = (initial, ckpts, idxs, vals)
            self._np_mem = cached
        return cached

    def memory_words_at(self, cycle: int, out: np.ndarray | None = None) -> np.ndarray:
        """Memory image at the start of ``cycle`` as an ``int64`` vector.

        Same reconstruction as :meth:`memory_at` (nearest checkpoint
        plus a scatter-replayed delta) but the copy and the replay are
        single numpy operations, so per-experiment seeding in the batch
        engine costs microseconds.  ``out`` may supply a reusable
        ``(mem_words,)`` buffer (a matrix row works) to overwrite.
        """
        initial, ckpts, idxs, vals = self._np_mem_index()
        j = bisect_left(self._log_cycles, cycle)
        k = j // MEMORY_CHECKPOINT_EVERY
        src = ckpts[k - 1] if k else initial
        if out is None:
            out = src.copy()
        else:
            out[:] = src
        base = k * MEMORY_CHECKPOINT_EVERY
        if base < j:
            # Fancy assignment applies entries in order: later writes to
            # the same word win, matching sequential replay.
            out[idxs[base:j]] = vals[base:j]
        return out

    def _active_cycles(self, reg: str, bit: int, value: int,
                       used_only: bool) -> np.ndarray:
        """Sorted cycles where flop ``(reg, bit)`` differs from ``value``.

        With ``used_only`` the cycles are additionally restricted to
        the register's liveness use mask.  Cached: the campaign probes
        the same flop with a handful of start cycles (one per scheduled
        stuck-at fault), so one linear scan per key turns every later
        query into a binary search.
        """
        key = (reg, bit, value, used_only)
        arr = self._active_cache.get(key)
        if arr is None:
            col = self.state_matrix[:, REG_INDEX[reg]]
            active = ((col >> np.uint64(bit)) & np.uint64(1)) != value
            if used_only:
                active &= self._liveness(reg)[0]
            arr = np.nonzero(active)[0].astype(np.int32)
            self._active_cache[key] = arr
        return arr

    def activation_cycle(self, reg: str, bit: int, value: int, start: int) -> int | None:
        """First cycle >= ``start`` where the golden flop differs from ``value``.

        A stuck-at fault is inert while the flop happens to hold the
        stuck value; until this cycle the faulty core is bit-identical
        to the golden core, so simulation can start here.  Returns None
        when the fault is never activated (fully masked).
        """
        hits = self._active_cycles(reg, bit, value, used_only=False)
        i = int(np.searchsorted(hits, start))
        if i == len(hits):
            return None
        return int(hits[i])

    # -- liveness queries -----------------------------------------------------

    def _liveness(self, reg: str) -> tuple[np.ndarray, list[int], list[int]]:
        """Per-cycle (use mask, use cycles, kill cycles) for ``reg``.

        ``use[t]`` is True when cycle ``t``'s next-state logic observes
        the register's start-of-cycle value: a stale read, or — for
        registers without the ``full_write`` guarantee — any write,
        since a read-modify-write merges old bits.  ``kill`` cycles are
        full writes with no stale read: the old value is dead there.
        Cached per register (the campaign revisits the same registers
        for thousands of faults).
        """
        entry = self._liveness_cache.get(reg)
        if entry is None:
            idx = REG_INDEX[reg]
            word, bitpos = divmod(idx, 64)
            one = np.uint64(1)
            shift = np.uint64(bitpos)
            reads = ((self.read_mask[:, word] >> shift) & one).astype(bool)
            writes = ((self.write_mask[:, word] >> shift) & one).astype(bool)
            if (FULL_WRITE_MASK >> idx) & 1:
                use = reads
                kill = writes & ~reads
            else:
                use = reads | writes
                kill = np.zeros(len(reads), dtype=bool)
            # Plain int lists: soft_start probes these once per fault
            # with scalar keys, where bisect beats the ~µs dispatch
            # cost of a 0-d np.searchsorted by an order of magnitude.
            entry = (use, np.nonzero(use)[0].tolist(),
                     np.nonzero(kill)[0].tolist())
            self._liveness_cache[reg] = entry
        return entry

    def soft_start(self, reg: str, start: int) -> int | None:
        """Deferred simulation start for a soft flip injected at ``start``.

        Returns the first cycle >= ``start`` at which the flipped value
        is observed, or None when the fault is provably masked — the
        register is fully overwritten before any read, or never touched
        again.  Starting the faulty core at the returned cycle (flip
        applied to the golden snapshot) is exact: in the skipped window
        the register is neither read nor written, so the real faulty
        run's state there is golden XOR flip — precisely the state we
        construct.
        """
        use, use_cycles, kill_cycles = self._liveness(reg)
        i = bisect_left(use_cycles, start)
        if i == len(use_cycles):
            return None  # never observed again: masked
        first_use = use_cycles[i]
        j = bisect_left(kill_cycles, start)
        if j < len(kill_cycles) and kill_cycles[j] < first_use:
            return None  # fully overwritten before first read: masked
        return first_use

    def first_active_use(self, reg: str, bit: int, value: int,
                         start: int) -> int | None:
        """First cycle >= ``start`` where a stuck-at fault is *observed*.

        Composes :meth:`activation_cycle` with liveness: the forced bit
        must both differ from the golden value (active) and be used that
        cycle.  Forced-but-unread stretches cannot influence anything —
        ports are registers too, and reading one counts as a use — so
        simulation can start at the returned cycle.  None when the
        stuck-at is never observed while active.
        """
        hits = self._active_cycles(reg, bit, value, used_only=True)
        i = int(np.searchsorted(hits, start))
        if i == len(hits):
            return None
        return int(hits[i])
