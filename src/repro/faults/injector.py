"""Differential fault-injection engine.

For every injection the engine simulates only the *faulty* core,
starting from the golden snapshot at (or after) the injection point,
and compares its output ports against the golden trace every cycle —
behaviourally identical to running a dual-core lockstep pair with the
fault in one core, at a fraction of the cost:

* a transient whose architectural effects re-converge to the golden
  state is declared masked the moment states match (outputs-equal up
  to that point implies memory-equal, because any differing store
  manifests on the data/bus port SCs in its commit cycle);
* a stuck-at fault is simulated only from its *activation cycle* — the
  first cycle the golden flop value differs from the stuck value — and
  is masked outright if never activated.
"""

from __future__ import annotations

from ..cpu.core import Cpu
from ..cpu.memory import Memory
from ..cpu.units import REG_INDEX
from ..lockstep.categories import diverged_set
from .golden import GoldenTrace
from .models import ErrorRecord, Fault, FaultKind


class InjectionEngine:
    """Runs fault-injection experiments against one golden trace."""

    def __init__(self, golden: GoldenTrace, max_observe: int | None = None,
                 mask_check_stride: int = 4):
        """Args:
            golden: the fault-free reference trace.
            max_observe: cap on simulated cycles after a hard fault's
                activation (None = until the benchmark completes).  The
                paper's detection latencies are heavy-tailed; the cap
                trades the extreme tail for campaign throughput.
            mask_check_stride: how often (in cycles) the transient
                masking check compares full states.
        """
        self.golden = golden
        self.max_observe = max_observe
        self.mask_check_stride = max(1, mask_check_stride)
        self._cpu = Cpu(Memory(16), golden.stimulus)

    def inject(self, fault: Fault) -> ErrorRecord | None:
        """Run one experiment; returns the error record or None if masked."""
        if fault.kind is FaultKind.SOFT:
            return self._inject_soft(fault)
        return self._inject_hard(fault)

    # -- transient -----------------------------------------------------------

    def _inject_soft(self, fault: Fault) -> ErrorRecord | None:
        golden = self.golden
        t0 = fault.cycle
        if not 0 <= t0 < golden.n_cycles:
            return None
        reg_idx = REG_INDEX[fault.flop.reg]
        state = list(golden.states[t0])
        state[reg_idx] ^= 1 << fault.flop.bit

        cpu = self._cpu
        cpu.restore(tuple(state))
        cpu.mem = golden.memory_at(t0)
        g_outputs = golden.outputs
        g_states = golden.states
        n = golden.n_cycles
        stride = self.mask_check_stride
        step = cpu.step
        snapshot = cpu.snapshot
        for t in range(t0, n):
            out = step()
            if out != g_outputs[t]:
                return ErrorRecord(
                    benchmark=golden.workload.name,
                    flop=fault.flop,
                    kind=fault.kind,
                    inject_cycle=t0,
                    detect_cycle=t,
                    diverged=diverged_set(out, g_outputs[t]),
                )
            if t + 1 < n and (t - t0) % stride == 0 and snapshot() == g_states[t + 1]:
                return None  # fully re-converged: masked
        return None  # ran to completion without divergence: masked

    # -- permanent -----------------------------------------------------------

    def _inject_hard(self, fault: Fault) -> ErrorRecord | None:
        golden = self.golden
        t0 = fault.cycle
        if not 0 <= t0 < golden.n_cycles:
            return None
        reg = fault.flop.reg
        bit = fault.flop.bit
        value = 1 if fault.kind is FaultKind.STUCK1 else 0
        t_act = golden.activation_cycle(reg, bit, value, t0)
        if t_act is None:
            return None  # the flop never holds the complementary value

        reg_idx = REG_INDEX[reg]
        mask = 1 << bit
        state = list(golden.states[t_act])
        state[reg_idx] = (state[reg_idx] | mask) if value else (state[reg_idx] & ~mask)

        cpu = self._cpu
        cpu.restore(tuple(state))
        cpu.mem = golden.memory_at(t_act)
        g_outputs = golden.outputs
        n = golden.n_cycles
        end = n if self.max_observe is None else min(n, t_act + self.max_observe)
        d = cpu.__dict__
        step = cpu.step
        for t in range(t_act, end):
            # Re-assert the stuck-at before the cycle evaluates.
            if value:
                d[reg] |= mask
            else:
                d[reg] &= ~mask
            out = step()
            if out != g_outputs[t]:
                return ErrorRecord(
                    benchmark=golden.workload.name,
                    flop=fault.flop,
                    kind=fault.kind,
                    inject_cycle=t0,
                    detect_cycle=t,
                    diverged=diverged_set(out, g_outputs[t]),
                )
        return None
