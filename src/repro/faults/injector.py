"""Differential fault-injection engine.

For every injection the engine simulates only the *faulty* core,
starting from the golden snapshot at (or after) the injection point,
and compares its compact output-port tuple against the golden trace
every cycle — behaviourally identical to running a dual-core lockstep
pair with the fault in one core, at a fraction of the cost:

* per-cycle comparison happens on the compact port tuples ``step()``
  returns; the 62-SC divergence set is expanded lazily, only on the
  detection cycle (compact equality is equivalent to SC equality);
* a transient whose architectural effects re-converge to the golden
  state is declared masked the moment states match (outputs-equal up
  to that point implies memory-equal, because any differing store
  manifests on the data/bus port SCs in its commit cycle); the exact
  state comparison is gated behind a precomputed snapshot-hash check;
* a stuck-at fault is simulated only from its *activation cycle* — the
  first cycle the golden flop value differs from the stuck value — and
  is masked outright if never activated.  While active, periodic
  re-convergence checks (exponentially backed off) let the engine
  fast-forward over stretches where the forced core is bit-identical
  to the golden core, jumping straight to the next activation cycle.
"""

from __future__ import annotations

from ..cpu.core import Cpu
from ..cpu.memory import Memory
from ..cpu.units import REG_INDEX
from ..lockstep.categories import diverged_ports
from .golden import GoldenTrace
from .models import ErrorRecord, Fault, FaultKind

#: Cycles after a stuck-at activation before the first re-convergence
#: check; the interval doubles after every failed check so persistently
#: diverged-but-undetected runs pay O(log) checks, not O(n).
_CONVERGE_CHECK_START = 8


class InjectionEngine:
    """Runs fault-injection experiments against one golden trace."""

    def __init__(self, golden: GoldenTrace, max_observe: int | None = None,
                 mask_check_stride: int = 4):
        """Args:
            golden: the fault-free reference trace.
            max_observe: cap on simulated cycles after a hard fault's
                activation (None = until the benchmark completes).  The
                paper's detection latencies are heavy-tailed; the cap
                trades the extreme tail for campaign throughput.
            mask_check_stride: how often (in cycles) the transient
                masking check compares full states.
        """
        self.golden = golden
        self.max_observe = max_observe
        self.mask_check_stride = max(1, mask_check_stride)
        self._cpu = Cpu(Memory(16), golden.stimulus)
        self._g_ports = golden.port_tuples()
        self._g_hashes = golden.state_hash_list()

    def inject(self, fault: Fault) -> ErrorRecord | None:
        """Run one experiment; returns the error record or None if masked."""
        if fault.kind is FaultKind.SOFT:
            return self._inject_soft(fault)
        return self._inject_hard(fault)

    # -- transient -----------------------------------------------------------

    def _inject_soft(self, fault: Fault) -> ErrorRecord | None:
        golden = self.golden
        t0 = fault.cycle
        if not 0 <= t0 < golden.n_cycles:
            return None
        reg_idx = REG_INDEX[fault.flop.reg]
        state = list(golden.state_at(t0))
        state[reg_idx] ^= 1 << fault.flop.bit

        cpu = self._cpu
        cpu.restore(tuple(state))
        cpu.mem = golden.memory_at(t0)
        g_ports = self._g_ports
        g_hashes = self._g_hashes
        state_at = golden.state_at
        n = golden.n_cycles
        stride = self.mask_check_stride
        step = cpu.step
        snapshot = cpu.snapshot
        for t in range(t0, n):
            out = step()
            if out != g_ports[t]:
                return ErrorRecord(
                    benchmark=golden.workload.name,
                    flop=fault.flop,
                    kind=fault.kind,
                    inject_cycle=t0,
                    detect_cycle=t,
                    diverged=diverged_ports(out, g_ports[t]),
                )
            if t + 1 < n and (t - t0) % stride == 0:
                snap = snapshot()
                # Hash precheck: equality requires equal hashes, so the
                # exact tuple compare (the semantic decision) runs only
                # on a hash hit — same verdict, ~90x cheaper per miss.
                if hash(snap) == g_hashes[t + 1] and snap == state_at(t + 1):
                    return None  # fully re-converged: masked
        return None  # ran to completion without divergence: masked

    # -- permanent -----------------------------------------------------------

    def _inject_hard(self, fault: Fault) -> ErrorRecord | None:
        golden = self.golden
        t0 = fault.cycle
        if not 0 <= t0 < golden.n_cycles:
            return None
        reg = fault.flop.reg
        bit = fault.flop.bit
        value = 1 if fault.kind is FaultKind.STUCK1 else 0
        t_act = golden.activation_cycle(reg, bit, value, t0)
        if t_act is None:
            return None  # the flop never holds the complementary value

        reg_idx = REG_INDEX[reg]
        mask = 1 << bit
        g_ports = self._g_ports
        g_hashes = self._g_hashes
        state_at = golden.state_at
        n = golden.n_cycles
        end = n if self.max_observe is None else min(n, t_act + self.max_observe)

        cpu = self._cpu
        state = list(state_at(t_act))
        state[reg_idx] = (state[reg_idx] | mask) if value else (state[reg_idx] & ~mask)
        cpu.restore(tuple(state))
        cpu.mem = golden.memory_at(t_act)
        d = cpu.__dict__
        step = cpu.step
        snapshot = cpu.snapshot

        t = t_act
        interval = _CONVERGE_CHECK_START
        next_check = t_act + interval
        while t < end:
            # Re-assert the stuck-at before the cycle evaluates.
            if value:
                d[reg] |= mask
            else:
                d[reg] &= ~mask
            out = step()
            if out != g_ports[t]:
                return ErrorRecord(
                    benchmark=golden.workload.name,
                    flop=fault.flop,
                    kind=fault.kind,
                    inject_cycle=t0,
                    detect_cycle=t,
                    diverged=diverged_ports(out, g_ports[t]),
                )
            t += 1
            if t == next_check and t < end:
                # Re-convergence fast-forward.  All outputs since t_act
                # matched golden, so memory matches golden (differing
                # stores surface on port SCs in their commit cycle); if
                # the flop state matches too, the forced core is
                # bit-identical to golden until the flop next needs to
                # hold the complementary value — skip straight there.
                snap = snapshot()
                if hash(snap) == g_hashes[t] and snap == state_at(t):
                    t_next = golden.activation_cycle(reg, bit, value, t)
                    if t_next is None or t_next >= end:
                        return None  # force is a no-op for the rest of the window
                    if t_next > t:
                        state = list(state_at(t_next))
                        state[reg_idx] = ((state[reg_idx] | mask) if value
                                          else (state[reg_idx] & ~mask))
                        cpu.restore(tuple(state))
                        cpu.mem = golden.memory_at(t_next)
                        t = t_next
                        interval = _CONVERGE_CHECK_START
                else:
                    interval *= 2
                next_check = t + interval
        return None
