"""Differential fault-injection engine.

For every injection the engine simulates only the *faulty* core,
starting from the golden snapshot at (or after) the injection point,
and compares its compact output-port tuple against the golden trace
every cycle — behaviourally identical to running a dual-core lockstep
pair with the fault in one core, at a fraction of the cost:

* per-cycle comparison happens on the compact port tuples ``step()``
  returns; the 62-SC divergence set is expanded lazily, only on the
  detection cycle (compact equality is equivalent to SC equality);
* a transient whose architectural effects re-converge to the golden
  state is declared masked the moment states match (outputs-equal up
  to that point implies memory-equal, because any differing store
  manifests on the data/bus port SCs in its commit cycle); the exact
  state comparison is gated behind a precomputed snapshot-hash check;
* a stuck-at fault is simulated only from its *activation cycle* — the
  first cycle the golden flop value differs from the stuck value — and
  is masked outright if never activated.  While active, periodic
  re-convergence checks (exponentially backed off) let the engine
  fast-forward over stretches where the forced core is bit-identical
  to the golden core, jumping straight to the next activation cycle.

Liveness pruning (schema v4, default on) adds three further levers on
top, all provably behaviour-preserving — the campaign digest is
bit-identical with pruning on or off:

* a soft flip into a register that is fully overwritten before its
  next read (or never touched again) is **masked with zero simulated
  cycles** (:meth:`GoldenTrace.soft_start` returns None);
* otherwise the simulation is **deferred**: in the window between the
  injection and the first cycle the flipped value is observed, the
  register is neither read nor written, so the real faulty core's
  state there is exactly golden XOR flip — the engine constructs that
  state directly and starts at the first-use cycle;
* soft faults on the same ``(reg, bit)`` whose deferred start cycles
  coincide are **dynamically equivalent**: the shared start state
  determines the whole future, so one representative is simulated and
  its ``(detect_cycle, diverged)`` outcome is replayed for the rest of
  the class, each record keeping its own ``inject_cycle``.  Stuck-at
  activation search composes with liveness the same way
  (:meth:`GoldenTrace.first_active_use` skips forced-but-unread
  stretches).  ``PruneStats`` counts what was avoided.
"""

from __future__ import annotations

from ..cpu.core import Cpu
from ..cpu.memory import Memory
from ..cpu.units import REG_INDEX
from ..lockstep.categories import diverged_ports
from .golden import GoldenTrace
from .models import ErrorRecord, Fault, FaultKind

#: Cycles after a stuck-at activation before the first re-convergence
#: check; the interval doubles after every failed check so persistently
#: diverged-but-undetected runs pay O(log) checks, not O(n).
_CONVERGE_CHECK_START = 8


# -- reusable single-fault perturbation (non-campaign callers) ---------------

def flip_bit(cpu: Cpu, reg: str, bit: int) -> None:
    """Invert one flip-flop bit of a live core (a soft-error event)."""
    cpu.__dict__[reg] ^= 1 << bit


def force_bit(cpu: Cpu, reg: str, bit: int, value: int) -> None:
    """Force one flip-flop bit of a live core to ``value`` (stuck-at)."""
    if value:
        cpu.__dict__[reg] |= 1 << bit
    else:
        cpu.__dict__[reg] &= ~(1 << bit)


class FaultDriver:
    """Applies one :class:`~repro.faults.models.Fault` to a live core.

    The campaign engine (:class:`InjectionEngine`) never simulates the
    fault-free prefix, so it bakes the perturbation into a restored
    snapshot.  Callers that *do* step a core cycle-by-cycle from reset
    — the fault-fuzz harness, examples, ad-hoc experiments — need the
    time-domain semantics instead: call :meth:`before_step` once per
    cycle, immediately before ``cpu.step()``.

    * ``SOFT``: the bit is inverted exactly once, before the cycle
      ``fault.cycle`` evaluates;
    * ``STUCK0``/``STUCK1``: the bit is forced before every cycle from
      ``fault.cycle`` on, mirroring the engine's per-cycle re-assert.
    """

    __slots__ = ("fault", "_value")

    def __init__(self, fault: Fault):
        self.fault = fault
        self._value = 1 if fault.kind is FaultKind.STUCK1 else 0

    def before_step(self, cpu: Cpu, cycle: int) -> None:
        """Perturb ``cpu`` for the cycle about to evaluate."""
        fault = self.fault
        if fault.kind is FaultKind.SOFT:
            if cycle == fault.cycle:
                flip_bit(cpu, fault.flop.reg, fault.flop.bit)
        elif cycle >= fault.cycle:
            force_bit(cpu, fault.flop.reg, fault.flop.bit, self._value)


class PruneStats:
    """Counters describing how much work liveness pruning avoided.

    ``cycles_saved`` aggregates golden-window cycles the engine skipped
    without simulating (masked windows, deferral windows, and the
    representative spans replayed for equivalence-class hits);
    ``sim_cycles`` is what it actually simulated.  All counters are
    per-engine, i.e. per shard in a parallel campaign; the campaign
    layer sums them.
    """

    __slots__ = ("soft_pruned", "soft_deferred", "hard_pruned",
                 "hard_deferred", "equiv_classes", "equiv_hits",
                 "cycles_saved", "sim_cycles")

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (picklable, mergeable by key-wise sum)."""
        return {name: getattr(self, name) for name in self.__slots__}


class InjectionEngine:
    """Runs fault-injection experiments against one golden trace."""

    def __init__(self, golden: GoldenTrace, max_observe: int | None = None,
                 mask_check_stride: int = 4, prune: bool = True):
        """Args:
            golden: the fault-free reference trace.
            max_observe: cap on simulated cycles after a hard fault's
                activation (None = until the benchmark completes).  The
                paper's detection latencies are heavy-tailed; the cap
                trades the extreme tail for campaign throughput.
            mask_check_stride: how often (in cycles) the transient
                masking check compares full states.
            prune: exploit the golden trace's def/use liveness masks
                (masking without simulation, deferred starts, dynamic
                equivalence classes).  Off = the plain v3 algorithm;
                records are bit-identical either way.
        """
        self.golden = golden
        self.max_observe = max_observe
        self.mask_check_stride = max(1, mask_check_stride)
        self.prune = prune
        # One scratch memory reused across all experiments: memory_at
        # overwrites it in place instead of allocating a fresh word
        # list per injection.
        self._scratch_mem = Memory(golden.mem_words)
        self._cpu = Cpu(self._scratch_mem, golden.stimulus)
        self._g_ports = golden.port_tuples()
        self._g_hashes = golden.state_hash_list()
        #: (reg, bit, deferred start) -> (outcome, simulated span) where
        #: outcome is None (masked) or (detect_cycle, diverged).
        self._soft_classes: dict[
            tuple[str, int, int],
            tuple[tuple[int, frozenset[int]] | None, int]] = {}
        self.stats = PruneStats()

    def inject(self, fault: Fault) -> ErrorRecord | None:
        """Run one experiment; returns the error record or None if masked."""
        if fault.kind is FaultKind.SOFT:
            return self._inject_soft(fault)
        return self._inject_hard(fault)

    # -- transient -----------------------------------------------------------

    def _inject_soft(self, fault: Fault) -> ErrorRecord | None:
        golden = self.golden
        t0 = fault.cycle
        if not 0 <= t0 < golden.n_cycles:
            return None
        if not self.prune:
            return self._run_soft(fault, t0, t0)[0]

        stats = self.stats
        start = golden.soft_start(fault.flop.reg, t0)
        if start is None:
            # Fully overwritten before any read, or never touched
            # again: masked with zero simulated cycles.
            stats.soft_pruned += 1
            stats.cycles_saved += golden.n_cycles - t0
            return None
        if start > t0:
            stats.soft_deferred += 1
            stats.cycles_saved += start - t0

        # Dynamic equivalence: the state at `start` (golden XOR flip)
        # is the same for every fault in the class, so the outcome is
        # too — only inject_cycle differs per record.
        key = (fault.flop.reg, fault.flop.bit, start)
        cached = self._soft_classes.get(key)
        if cached is not None:
            stats.equiv_hits += 1
            outcome, sim_span = cached
            stats.cycles_saved += sim_span
            if outcome is None:
                return None
            detect_cycle, diverged = outcome
            return ErrorRecord(
                benchmark=golden.workload.name,
                flop=fault.flop,
                kind=fault.kind,
                inject_cycle=t0,
                detect_cycle=detect_cycle,
                diverged=diverged,
            )
        record, span = self._run_soft(fault, t0, start)
        outcome = None if record is None else (record.detect_cycle, record.diverged)
        self._soft_classes[key] = (outcome, span)
        stats.equiv_classes += 1
        return record

    def _run_soft(self, fault: Fault, t0: int,
                  start: int) -> tuple[ErrorRecord | None, int]:
        """Simulate a soft flip from ``start`` (= ``t0`` unless deferred).

        Returns the record (inject_cycle stays ``t0``) and the number
        of cycles actually simulated.  The masking-check stride is
        anchored at ``start``; check placement cannot change the
        verdict — an early masked return requires exact state equality
        with golden, after which divergence is impossible.
        """
        golden = self.golden
        reg_idx = REG_INDEX[fault.flop.reg]
        state = list(golden.state_at(start))
        state[reg_idx] ^= 1 << fault.flop.bit

        cpu = self._cpu
        cpu.restore(tuple(state))
        cpu.mem = golden.memory_at(start, out=self._scratch_mem)
        g_ports = self._g_ports
        g_hashes = self._g_hashes
        state_at = golden.state_at
        n = golden.n_cycles
        stride = self.mask_check_stride
        step = cpu.step
        snapshot = cpu.snapshot
        stats = self.stats
        for t in range(start, n):
            out = step()
            if out != g_ports[t]:
                span = t + 1 - start
                stats.sim_cycles += span
                return ErrorRecord(
                    benchmark=golden.workload.name,
                    flop=fault.flop,
                    kind=fault.kind,
                    inject_cycle=t0,
                    detect_cycle=t,
                    diverged=diverged_ports(out, g_ports[t]),
                ), span
            if t + 1 < n and (t - start) % stride == 0:
                snap = snapshot()
                # Hash precheck: equality requires equal hashes, so the
                # exact tuple compare (the semantic decision) runs only
                # on a hash hit — same verdict, ~90x cheaper per miss.
                if hash(snap) == g_hashes[t + 1] and snap == state_at(t + 1):
                    span = t + 1 - start
                    stats.sim_cycles += span
                    return None, span  # fully re-converged: masked
        span = n - start
        stats.sim_cycles += span
        return None, span  # ran to completion without divergence: masked

    # -- permanent -----------------------------------------------------------

    def _inject_hard(self, fault: Fault) -> ErrorRecord | None:
        golden = self.golden
        t0 = fault.cycle
        if not 0 <= t0 < golden.n_cycles:
            return None
        reg = fault.flop.reg
        bit = fault.flop.bit
        value = 1 if fault.kind is FaultKind.STUCK1 else 0
        t_act = golden.activation_cycle(reg, bit, value, t0)
        if t_act is None:
            return None  # the flop never holds the complementary value

        n = golden.n_cycles
        # The observation window stays anchored at the plain activation
        # cycle even when the start is deferred — same absolute horizon
        # as the un-pruned path, so verdicts (and digests) match.
        end = n if self.max_observe is None else min(n, t_act + self.max_observe)
        stats = self.stats
        prune = self.prune
        if prune:
            # Compose activation with liveness: forced-but-unread
            # stretches cannot influence anything (ports are registers
            # too, and reading one counts as a use), so start at the
            # first cycle the active stuck bit is actually observed.
            t_start = golden.first_active_use(reg, bit, value, t_act)
            if t_start is None or t_start >= end:
                stats.hard_pruned += 1
                stats.cycles_saved += end - t_act
                return None  # never observed while active: masked
            if t_start > t_act:
                stats.hard_deferred += 1
                stats.cycles_saved += t_start - t_act
        else:
            t_start = t_act

        reg_idx = REG_INDEX[reg]
        mask = 1 << bit
        g_ports = self._g_ports
        g_hashes = self._g_hashes
        state_at = golden.state_at

        cpu = self._cpu
        state = list(state_at(t_start))
        state[reg_idx] = (state[reg_idx] | mask) if value else (state[reg_idx] & ~mask)
        cpu.restore(tuple(state))
        cpu.mem = golden.memory_at(t_start, out=self._scratch_mem)
        d = cpu.__dict__
        step = cpu.step
        snapshot = cpu.snapshot

        t = t_start
        seg_start = t_start
        interval = _CONVERGE_CHECK_START
        next_check = t_start + interval
        while t < end:
            # Re-assert the stuck-at before the cycle evaluates.
            if value:
                d[reg] |= mask
            else:
                d[reg] &= ~mask
            out = step()
            if out != g_ports[t]:
                stats.sim_cycles += t + 1 - seg_start
                return ErrorRecord(
                    benchmark=golden.workload.name,
                    flop=fault.flop,
                    kind=fault.kind,
                    inject_cycle=t0,
                    detect_cycle=t,
                    diverged=diverged_ports(out, g_ports[t]),
                )
            t += 1
            if t == next_check and t < end:
                # Re-convergence fast-forward.  All outputs since the
                # start matched golden, so memory matches golden
                # (differing stores surface on port SCs in their commit
                # cycle); if the flop state matches too, the forced
                # core is bit-identical to golden until the flop next
                # needs to hold the complementary value — skip straight
                # there (to the next *observed* active cycle when
                # pruning).
                snap = snapshot()
                if hash(snap) == g_hashes[t] and snap == state_at(t):
                    if prune:
                        t_next = golden.first_active_use(reg, bit, value, t)
                    else:
                        t_next = golden.activation_cycle(reg, bit, value, t)
                    if t_next is None or t_next >= end:
                        stats.sim_cycles += t - seg_start
                        return None  # force is a no-op for the rest of the window
                    if t_next > t:
                        state = list(state_at(t_next))
                        state[reg_idx] = ((state[reg_idx] | mask) if value
                                          else (state[reg_idx] & ~mask))
                        cpu.restore(tuple(state))
                        cpu.mem = golden.memory_at(t_next, out=self._scratch_mem)
                        stats.sim_cycles += t - seg_start
                        seg_start = t_next
                        t = t_next
                        interval = _CONVERGE_CHECK_START
                else:
                    interval *= 2
                next_check = t + interval
        stats.sim_cycles += t - seg_start
        return None
