"""Kernel backend registry for the batch fault-injection engine.

The :class:`~repro.faults.batch.BatchInjectionEngine` steps its
structure-of-arrays lane state with one of two interchangeable
kernels:

* ``"numpy"`` — the vectorized python kernel in ``batch.py`` (~150
  numpy dispatches per cycle; dispatch-bound below a few hundred
  lanes, see DESIGN §5.14);
* ``"cext"`` — the compiled fused kernel in ``_cstep`` (one C call
  runs force / golden compare / step for *many* cycles, returning to
  Python only on rare-path events, see DESIGN §5.15);
* ``"auto"`` (default) — ``cext`` when the extension is importable or
  buildable, silently ``numpy`` otherwise.

Both kernels are digest-identical by construction and by test
(tests/test_kernels.py holds them equal per cycle, matrix-for-matrix),
so choosing a backend is purely a speed decision and the choice never
enters campaign cache keys.  The ``REPRO_KERNEL`` environment variable
overrides the default for processes that take no explicit argument
(e.g. campaign pool workers inherit it).
"""

from __future__ import annotations

import os

KERNEL_CHOICES = ("auto", "cext", "numpy")
KERNEL_ENV = "REPRO_KERNEL"
THREADS_ENV = "REPRO_CSTEP_THREADS"

#: Lane count below which the *scalar* engine beats the batch kernel,
#: per backend.  The numpy kernel pays ~150 python dispatches per cycle
#: regardless of width, so narrow tails (campaign remainders, final
#: partial batches) are cheaper to drain scalar up to ~192 lanes
#: (measured, DESIGN §5.14).  The compiled kernel's per-call overhead
#: is a single C call, so its breakeven is essentially the cost of
#: re-packing lane state — a handful of lanes.  `BatchInjectionEngine`
#: reads this instead of hard-coding the numpy constant, which used to
#: throw away the cext kernel's advantage on every tail.
KERNEL_BREAKEVEN_LANES = {"numpy": 192, "cext": 8}


def breakeven_lanes(kernel: str) -> int:
    """Scalar-drain breakeven for a concrete backend name."""
    try:
        return KERNEL_BREAKEVEN_LANES[kernel]
    except KeyError:
        raise ValueError(
            f"unknown kernel {kernel!r} "
            f"(choose from {tuple(KERNEL_BREAKEVEN_LANES)})") from None


def resolve_threads(threads: int | None = None,
                    lanes: int | None = None) -> int:
    """Resolve a drive-loop thread-count request to a concrete count.

    ``None`` falls back to ``$REPRO_CSTEP_THREADS``, then to the
    auto-size ``min(cores, lanes // 16)`` — one thread per core, but
    never slicing below 16 lanes/thread (a slice narrower than that is
    dominated by dispatch, see DESIGN §5.17).  Always >= 1.  The
    result only affects wall-clock: lane slices are merged in lane
    order, so any value is digest-identical.
    """
    if threads is None:
        env = os.environ.get(THREADS_ENV)
        if env:
            threads = int(env)
    if threads is None:
        cores = os.cpu_count() or 1
        threads = min(cores, (lanes or 0) // 16) if lanes else cores
    if threads < 1:
        threads = 1
    return threads


def cext_module():
    """The compiled kernel module, or None when unavailable."""
    from . import _cstep
    return _cstep.MODULE


def cext_available() -> bool:
    return cext_module() is not None


def cext_build_error() -> str | None:
    """Why the compiled kernel is unavailable (None when it loaded)."""
    from . import _cstep
    return _cstep.BUILD_ERROR


def resolve_kernel(name: str | None = None) -> str:
    """Resolve a kernel request to a concrete backend name.

    ``None`` falls back to ``$REPRO_KERNEL``, then ``"auto"``.
    Requesting ``"cext"`` explicitly when the extension cannot load is
    an error (with the build failure attached) rather than a silent
    downgrade; ``"auto"`` downgrades silently.
    """
    requested = name or os.environ.get(KERNEL_ENV) or "auto"
    if requested not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {requested!r} (choose from {KERNEL_CHOICES})")
    if requested == "auto":
        return "cext" if cext_available() else "numpy"
    if requested == "cext" and not cext_available():
        raise RuntimeError(
            "kernel 'cext' requested but the compiled extension is "
            f"unavailable: {cext_build_error() or 'import failed'}")
    return requested
