"""Fault and error models.

Following the paper's terminology: a *fault* is the physical event (a
transient bit flip or a permanent stuck-at); an *error* is the fault's
manifestation at the lockstep checker.  Not every fault becomes an
error — most are masked.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..cpu.units import FlopRef


class FaultKind(enum.Enum):
    """Physical fault classes injected into flip-flops."""

    SOFT = "soft"        # one-cycle bit inversion (transient)
    STUCK0 = "stuck0"    # permanent stuck-at-0
    STUCK1 = "stuck1"    # permanent stuck-at-1

    @property
    def is_hard(self) -> bool:
        """True for permanent (stuck-at) faults."""
        return self is not FaultKind.SOFT


class ErrorType(enum.Enum):
    """Error classes as seen by the system controller."""

    SOFT = "soft"
    HARD = "hard"


def error_type_of(kind: FaultKind) -> ErrorType:
    """The error type a fault of ``kind`` produces when it manifests."""
    return ErrorType.HARD if kind.is_hard else ErrorType.SOFT


@dataclass(frozen=True)
class Fault:
    """One fault injection: a flip-flop, a kind, and an injection cycle."""

    flop: FlopRef
    kind: FaultKind
    cycle: int


@dataclass(frozen=True)
class ErrorRecord:
    """A manifested lockstep error, as logged by the evaluation framework.

    This captures what the paper's framework logs per error: where and
    when the fault was injected, when the checker detected divergence,
    and the diverged signal category set (the DSR contents).
    """

    benchmark: str
    flop: FlopRef
    kind: FaultKind
    inject_cycle: int
    detect_cycle: int
    diverged: frozenset[int]

    @property
    def unit(self) -> str:
        """Originating fine (13-taxonomy) unit."""
        return self.flop.unit

    @property
    def coarse_unit(self) -> str:
        """Originating coarse (7-taxonomy) unit."""
        return self.flop.coarse

    @property
    def error_type(self) -> ErrorType:
        """Ground-truth error type."""
        return error_type_of(self.kind)

    @property
    def latency(self) -> int:
        """Error manifestation time (fault occurrence to detection)."""
        return self.detect_cycle - self.inject_cycle

    def unit_for(self, fine: bool) -> str:
        """Unit label under the chosen taxonomy."""
        return self.unit if fine else self.coarse_unit
