"""Parallel fault-injection campaign execution engine.

The paper's ~10M-experiment campaign ran on a server cluster; this
module reproduces that fan-out on one machine by sharding the
(benchmark × flop-chunk) work grid across a ``ProcessPoolExecutor``.
Each worker process builds its benchmark's :class:`GoldenTrace` once
(per-process cache) and runs its shard through a private
:class:`InjectionEngine`, so the only cross-process traffic is the
shard descriptions going out and the (records, counts) coming back.

Determinism
-----------

Campaign results are **bit-identical for any worker count, chunk size
or shard completion order**.  Two mechanisms guarantee this:

1.  *Keyed random substreams.*  Instead of one sequential generator
    whose draw order would depend on the execution schedule, every
    random decision is drawn from a ``numpy.random.SeedSequence``
    derived from the campaign seed and a structural key::

        sampling stream        SeedSequence(seed, spawn_key=(0,))
        schedule of (b, f)     SeedSequence(seed, spawn_key=(1, b, f))

    where ``b`` is the benchmark index and ``f`` the global index of
    the flop in the sampled list.  A flop's fault schedule therefore
    depends only on *which* flop it is, never on which worker runs it
    or what ran before it.

2.  *Deterministic merge.*  Shards may complete in any order, but the
    merge walks them in (benchmark index, flop base) order, so the
    merged record list equals the serial nested-loop order exactly.

The serial path (``workers=1``) runs the very same shards inline, so
``run_campaign`` is one code path with the pool as the only variable.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                ThreadPoolExecutor, wait)
from dataclasses import dataclass

import numpy as np

from ..cpu.units import FlopRef
from ..workloads.kernels import KERNELS
from .arch import TieredGolden
from .golden import GoldenTrace
from .injector import InjectionEngine
from .models import ErrorRecord

#: spawn_key stream tags (first element of every derived key); minted
#: centrally in :mod:`repro.faults.streams`, re-exported here for the
#: historical import path.
from .streams import SAMPLING_STREAM, SCHEDULE_STREAM  # noqa: E402


def sampling_rng(seed: int) -> np.random.Generator:
    """The campaign's flop-sampling random stream."""
    return np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(SAMPLING_STREAM,)))


def schedule_rng(seed: int, bench_idx: int, flop_idx: int) -> np.random.Generator:
    """The fault-schedule stream for one (benchmark, flop) cell.

    Keyed, not spawned sequentially: any worker can derive the stream
    for its cells without coordinating with the others.
    """
    return np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(SCHEDULE_STREAM, bench_idx, flop_idx)))


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count request (``None``/``0`` = all cores)."""
    if not workers:
        return os.cpu_count() or 1
    return max(1, int(workers))


#: Shard executor backends.  ``process`` (the default) fans shards out
#: to a ``ProcessPoolExecutor`` — fully general, required for the
#: GIL-bound pure-Python kernels.  ``thread`` runs shard workers as
#: threads in this process: with the compiled kernel's ``drive()``
#: releasing the GIL, shard runners genuinely overlap while sharing
#: one golden cache and one import of everything — no process spawn,
#: no pickling, no per-worker re-derived goldens.
EXECUTOR_CHOICES = ("process", "thread")


def resolve_executor(executor: str | None) -> str:
    """Normalise an executor request (``None`` = ``process``)."""
    resolved = executor or "process"
    if resolved not in EXECUTOR_CHOICES:
        raise ValueError(
            f"unknown executor {resolved!r} "
            f"(choose from {EXECUTOR_CHOICES})")
    return resolved


@dataclass(frozen=True)
class Shard:
    """One unit of campaign work: a slice of flops on one benchmark."""

    bench_idx: int
    benchmark: str
    #: global index (into the sampled flop list) of ``flops[0]``.
    flop_base: int
    flops: tuple[FlopRef, ...]

    @property
    def order_key(self) -> tuple[int, int]:
        """Merge position; shards are combined in this order."""
        return (self.bench_idx, self.flop_base)


def resolve_chunk(n_flops: int, workers: int, chunk_flops: int | None) -> int:
    """The planned flops-per-shard chunk size.

    The default aims at ~4 chunks per worker per benchmark for load
    balancing; because schedules are keyed per (benchmark, flop), the
    chunking never affects results, only wall-clock.
    """
    if chunk_flops is None:
        chunk_flops = max(1, -(-n_flops // max(1, 4 * workers)))
    return max(1, int(chunk_flops))


def plan_shards(benchmarks: tuple[str, ...], flops: list[FlopRef],
                workers: int, chunk_flops: int | None = None) -> list[Shard]:
    """Split the (benchmark × flop) grid into ordered shards."""
    chunk_flops = resolve_chunk(len(flops), workers, chunk_flops)
    return [
        Shard(b, bench, start, tuple(flops[start:start + chunk_flops]))
        for b, bench in enumerate(benchmarks)
        for start in range(0, len(flops), chunk_flops)
    ]


# -- worker side -------------------------------------------------------------

#: Per-process GoldenTrace cache: (benchmark, seed) -> trace.  Worker
#: processes are reused across shards, so each benchmark's golden run
#: is simulated at most once per process.  Under the thread executor
#: *all* shard runners share these dicts, which is the point — one
#: golden per process, not one per worker; the lock only serialises
#: construction (a miss), never a hit.
_GOLDEN_CACHE: dict[tuple[str, int], GoldenTrace] = {}
_CACHE_LOCK = threading.Lock()


def _golden_for(benchmark: str, seed: int) -> GoldenTrace:
    key = (benchmark, seed)
    golden = _GOLDEN_CACHE.get(key)
    if golden is None:
        with _CACHE_LOCK:
            golden = _GOLDEN_CACHE.get(key)
            if golden is None:
                # The on-disk cache (see repro.faults.golden) makes a
                # worker's first shard a trace *load*, not a simulation.
                golden = GoldenTrace.cached(KERNELS[benchmark], seed=seed)
                _GOLDEN_CACHE[key] = golden
    return golden


#: Per-process TieredGolden cache (batch path): (benchmark, seed) ->
#: handle.  Kept separate from _GOLDEN_CACHE so the tiers' lazy-load
#: bookkeeping survives across shards.
_TIERED_CACHE: dict[tuple[str, int], TieredGolden] = {}


def _tiered_for(benchmark: str, seed: int) -> TieredGolden:
    key = (benchmark, seed)
    tiered = _TIERED_CACHE.get(key)
    if tiered is None:
        with _CACHE_LOCK:
            tiered = _TIERED_CACHE.get(key)
            if tiered is None:
                tiered = TieredGolden(KERNELS[benchmark], seed=seed)
                _TIERED_CACHE[key] = tiered
    return tiered


def run_shard(config, shard: Shard, batch: int | None = None,
              kernel: str | None = None,
              threads: int | None = None) -> tuple[
        list[ErrorRecord], dict[tuple[str, str], int], int, dict[str, int]]:
    """Execute one shard.

    Returns (records, injected counts, golden cycles, pruning stats).
    Top-level so it pickles into pool workers; also called inline by
    the ``workers=1`` path.  The engine's dynamic-equivalence cache is
    per shard, which only affects how often the cache hits (a pure
    performance matter) — outcomes, and therefore the merged record
    list, are identical for any sharding.

    ``batch`` selects the vectorised engine with that many lanes (see
    :mod:`repro.faults.batch`); None/0 runs the scalar engine.
    ``kernel`` picks the batch engine's step backend (see
    :mod:`repro.faults.kernels`); records and pruning stats are
    bit-identical for any engine/kernel.  ``threads`` sets the
    compiled kernel's drive-loop thread count (wall-clock only, same
    contract).  The batch path goes through
    :class:`~repro.faults.arch.TieredGolden`: scheduling uses the
    cheap ``n_cycles`` peek and the flop-accurate trace is loaded —
    architecturally cross-checked — only when the shard has faults to
    simulate.
    """
    from .campaign import schedule_faults

    if batch:
        from .batch import BatchInjectionEngine

        tiered = _tiered_for(shard.benchmark, config.seed)
        n_cycles = tiered.n_cycles
        faults = []
        injected: dict[tuple[str, str], int] = {}
        for offset, flop in enumerate(shard.flops):
            rng = schedule_rng(config.seed, shard.bench_idx,
                               shard.flop_base + offset)
            for fault in schedule_faults(flop, n_cycles, config, rng):
                key = (flop.unit, fault.kind.value)
                injected[key] = injected.get(key, 0) + 1
                faults.append(fault)
        if not faults:
            return [], injected, n_cycles, {}
        engine = BatchInjectionEngine(
            tiered.full, max_observe=config.max_observe,
            mask_check_stride=config.mask_check_stride,
            prune=config.prune, batch=batch, kernel=kernel,
            threads=threads)
        outcomes = engine.inject_all(faults)
        records = [r for r in outcomes if r is not None]
        return records, injected, n_cycles, engine.stats.as_dict()

    golden = _golden_for(shard.benchmark, config.seed)
    engine = InjectionEngine(golden, max_observe=config.max_observe,
                             mask_check_stride=config.mask_check_stride,
                             prune=config.prune)
    records: list[ErrorRecord] = []
    injected = {}
    for offset, flop in enumerate(shard.flops):
        rng = schedule_rng(config.seed, shard.bench_idx, shard.flop_base + offset)
        for fault in schedule_faults(flop, golden.n_cycles, config, rng):
            key = (flop.unit, fault.kind.value)
            injected[key] = injected.get(key, 0) + 1
            record = engine.inject(fault)
            if record is not None:
                records.append(record)
    return records, injected, golden.n_cycles, engine.stats.as_dict()


# -- controller side ---------------------------------------------------------

def execute_campaign(config, progress: bool = False, workers: int | None = 1,
                     chunk_flops: int | None = None,
                     batch: int | None = None,
                     kernel: str | None = None,
                     executor: str | None = None,
                     threads: int | None = None):
    """Run a campaign across ``workers`` shard runners; merge deterministically.

    This is the engine behind :func:`repro.faults.run_campaign`; see
    that wrapper for the public contract.  ``batch``, ``kernel``,
    ``executor`` and ``threads`` (like ``workers`` and
    ``chunk_flops``) are execution knobs, not part of the
    configuration: they select the vectorised engine, its step
    backend, the shard fan-out (``process`` pool vs in-process
    ``thread`` pool — the latter shares one golden cache and relies on
    the compiled kernel releasing the GIL) and the drive-loop thread
    count, without entering the cache key, because results are
    bit-identical for any value.
    """
    from .campaign import CampaignResult, sample_flops
    from .kernels import resolve_kernel

    workers = resolve_workers(workers)
    executor = resolve_executor(executor)
    flops = sample_flops(config, sampling_rng(config.seed))
    sampled: dict[str, int] = {}
    for flop in flops:
        sampled[flop.unit] = sampled.get(flop.unit, 0) + 1

    if batch is not None and chunk_flops is None:
        # The vectorised engine amortizes its per-call dispatch cost
        # over lane occupancy, so it wants the deepest fault pool it
        # can get: one shard per worker instead of the scalar default
        # of four (which trades pool depth for load balancing).
        chunk_flops = max(1, -(-len(flops) // workers))
    chunk = resolve_chunk(len(flops), workers, chunk_flops)
    shards = plan_shards(config.benchmarks, flops, workers, chunk)
    start = time.perf_counter()
    outcomes: dict[tuple[int, int], tuple] = {}
    # Running totals for progress lines — re-summing every shard's
    # record list on each completion would be O(shards^2).
    error_count = 0
    pruning: dict[str, int] = {}

    def _absorb(outcome) -> None:
        nonlocal error_count
        error_count += len(outcome[0])
        for key, count in outcome[3].items():
            pruning[key] = pruning.get(key, 0) + count

    # Resolve the kernel once on the controller: an explicit "cext"
    # request fails fast here (with the build error) instead of inside
    # N pool workers, and the resolved name lands in result meta.
    resolved_kernel = resolve_kernel(kernel) if batch else None

    if workers == 1 or len(shards) == 1:
        for i, shard in enumerate(shards):
            outcome = run_shard(config, shard, batch, resolved_kernel,
                                threads)
            outcomes[shard.order_key] = outcome
            _absorb(outcome)
            if progress:
                _print_progress(i + 1, len(shards), error_count, start,
                                pruning)
    else:
        pool_cls = (ThreadPoolExecutor if executor == "thread"
                    else ProcessPoolExecutor)
        with pool_cls(max_workers=workers) as pool:
            pending = {pool.submit(run_shard, config, shard, batch,
                                   resolved_kernel, threads): shard
                       for shard in shards}
            done_count = 0
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    shard = pending.pop(future)
                    outcome = future.result()
                    outcomes[shard.order_key] = outcome
                    _absorb(outcome)
                    done_count += 1
                    if progress:
                        _print_progress(done_count, len(shards), error_count,
                                        start, pruning)

    records: list[ErrorRecord] = []
    injected: dict[tuple[str, str], int] = {}
    golden_cycles: dict[str, int] = {}
    for shard in shards:  # already in order_key order
        recs, inj, n_cycles = outcomes[shard.order_key][:3]
        records.extend(recs)
        for key, count in inj.items():
            injected[key] = injected.get(key, 0) + count
        golden_cycles[shard.benchmark] = n_cycles

    return CampaignResult(
        config=config,
        records=records,
        injected=injected,
        golden_cycles=golden_cycles,
        sampled_flops=sampled,
        wall_seconds=time.perf_counter() - start,
        meta={"workers": workers, "n_shards": len(shards),
              "chunk_flops": chunk, "batch": batch,
              "kernel": resolved_kernel, "executor": executor,
              "threads": threads, "pruning": pruning},
    )


def _print_progress(done: int, n_shards: int, errors: int, start: float,
                    pruning: dict[str, int] | None = None) -> None:
    elapsed = time.perf_counter() - start
    extra = ""
    if pruning:
        pruned = pruning.get("soft_pruned", 0) + pruning.get("hard_pruned", 0)
        extra = (f" pruned={pruned}"
                 f" equiv={pruning.get('equiv_hits', 0)}"
                 f" saved={pruning.get('cycles_saved', 0)}cyc")
    print(f"[campaign] shard {done}/{n_shards} "
          f"errors={errors}{extra} t={elapsed:.0f}s", flush=True)
