"""Resumable campaign service: durable ledger, incremental merge, HTTP API.

The campaign layer (PR 1) made results bit-identical for any worker
split by keying every random decision off structural
``SeedSequence`` keys; this package adds the two missing pieces for
running the paper's millions-of-injections campaign as a long-lived
backend:

* **durability** — :mod:`.ledger` persists the shard plan and every
  committed shard outcome with atomic write-temp + rename commits, so
  a killed runner (or server) resumes exactly where it stopped and the
  finished digest is bit-identical to an uninterrupted run;
* **service** — :mod:`.http` serves campaign status, shard leases for
  remote workers and low-latency prediction-table lookups (DSR
  signature -> fault type/unit posterior + Top-K SBIST order) over a
  dependency-free asyncio HTTP API, with 503 + Retry-After while the
  table is still training and lease-expiry reclamation for dead
  workers.

See DESIGN.md §5.16 for the ledger format and the lease state machine.
"""

from .http import CampaignService, ServiceHandle, start_service
from .ledger import CampaignLedger, LeaseGrant, LedgerError
from .client import ServiceClient, run_worker
from .runner import run_resumable_campaign
from .store import IncrementalResultStore
from .wire import (
    WIRE_SCHEMA,
    config_from_wire,
    config_to_wire,
    outcome_from_wire,
    outcome_to_wire,
    record_from_wire,
    record_to_wire,
    shard_from_wire,
    shard_to_wire,
)

__all__ = [
    "CampaignLedger", "LeaseGrant", "LedgerError",
    "CampaignService", "ServiceHandle", "start_service",
    "ServiceClient", "run_worker",
    "run_resumable_campaign",
    "IncrementalResultStore",
    "WIRE_SCHEMA",
    "config_from_wire", "config_to_wire",
    "outcome_from_wire", "outcome_to_wire",
    "record_from_wire", "record_to_wire",
    "shard_from_wire", "shard_to_wire",
]
