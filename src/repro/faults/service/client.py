"""HTTP client for the campaign service: remote workers and lookups.

``run_worker`` is the distribution story's worker half: point any
number of hosts at one server URL and each loops lease -> execute ->
commit until the campaign completes.  The worker derives everything it
needs from the server — the campaign config comes from ``GET /config``
(cache-key-checked), the shard's flop list rides in the lease — so a
worker needs zero local state and can be killed at any time; its lease
simply expires and another worker picks the shard up.
"""

from __future__ import annotations

import http.client
import json
import time

from ..campaign import CampaignConfig
from ..parallel import run_shard
from .wire import config_from_wire, outcome_to_wire, shard_from_wire


class ServiceError(RuntimeError):
    """A non-2xx answer from the campaign service."""

    def __init__(self, status: int, message: str, retry_after: float | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServiceClient:
    """Minimal synchronous JSON client for one service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        if "://" in base_url:
            base_url = base_url.split("://", 1)[1]
        self.netloc = base_url.rstrip("/")
        self.timeout = timeout

    def request(self, method: str, path: str, body: dict | None = None) -> dict:
        conn = http.client.HTTPConnection(self.netloc, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            data = json.loads(raw) if raw else {}
            if response.status >= 300:
                retry_after = response.getheader("Retry-After")
                raise ServiceError(
                    response.status, data.get("error", raw.decode("latin-1")),
                    retry_after=float(retry_after) if retry_after else None)
            return data
        finally:
            conn.close()

    # -- typed endpoints ----------------------------------------------------

    def status(self) -> dict:
        return self.request("GET", "/status")

    def config(self) -> CampaignConfig:
        payload = self.request("GET", "/config")
        config = config_from_wire(payload["config"])
        if config.cache_key() != payload["cache_key"]:
            raise ServiceError(
                500, "server config does not hash to its own cache key — "
                "library version mismatch between worker and server")
        return config

    def lease(self, worker: str, ttl: float | None = None) -> dict:
        body = {"worker": worker}
        if ttl is not None:
            body["ttl"] = ttl
        return self.request("POST", "/lease", body)

    def commit(self, shard_id: int, outcome: tuple) -> dict:
        return self.request("POST", "/commit", {
            "shard_id": shard_id, "outcome": outcome_to_wire(outcome)})

    def predict(self, diverged) -> dict:
        dsr = ",".join(str(sc) for sc in sorted(diverged))
        return self.request("GET", f"/predict?dsr={dsr}")

    def table(self) -> dict:
        return self.request("GET", "/table")


def run_worker(base_url: str, worker_id: str = "worker",
               batch: int | None = None, kernel: str | None = None,
               threads: int | None = None,
               ttl: float | None = None, poll_seconds: float = 0.5,
               max_shards: int | None = None, progress: bool = False) -> int:
    """Lease-execute-commit loop against a campaign service.

    Runs until the server reports the campaign complete (or until
    ``max_shards`` commits, for tests that stage partial progress).
    Returns the number of shards this worker committed.
    """
    from ..kernels import resolve_kernel

    client = ServiceClient(base_url)
    config = client.config()
    resolved_kernel = resolve_kernel(kernel) if batch else None
    done = 0
    while max_shards is None or done < max_shards:
        grant = client.lease(worker_id, ttl=ttl)
        if grant.get("shard") is None:
            if grant["progress"]["complete"]:
                break
            # Everything left is leased to someone else; wait for
            # either their commits or their lease expiries.
            time.sleep(poll_seconds)
            continue
        shard = shard_from_wire(grant["shard"])
        outcome = run_shard(config, shard, batch, resolved_kernel, threads)
        client.commit(grant["shard_id"], outcome)
        done += 1
        if progress:
            state = client.status()["progress"]
            print(f"[worker {worker_id}] shard {grant['shard_id']} committed "
                  f"({state['committed']}/{state['n_shards']})", flush=True)
    return done
