"""Asyncio HTTP API: campaign status, shard leasing, prediction lookups.

Dependency-free: a small HTTP/1.1 request loop over
``asyncio.start_server`` (one connection per request, ``Connection:
close``), serving JSON.  Endpoints:

====================  ======================================================
``GET  /status``      queue progress, campaign config, digest when complete
``GET  /config``      the campaign configuration (for remote workers)
``POST /lease``       lease the next shard  ``{"worker": id, "ttl": s}``
``POST /commit``      commit a shard outcome ``{"shard_id", "outcome"}``
``GET  /predict``     DSR lookup ``?dsr=3,17,42`` -> type/unit posterior
                      + Top-K SBIST order; **503 + Retry-After** until
                      the campaign is complete and the table trained
``GET  /table``       the trained table as a portable payload
                      (:func:`repro.core.table.table_to_payload`)
====================  ======================================================

The prediction path is the fleet-facing hot path: a lookup is a dict
probe against the trained table plus two small posterior dicts, no
I/O, so thousands of concurrent ECU queries are served at asyncio
dispatch speed.  Training happens once, lazily, the first time a
complete campaign is asked for a prediction; while shards are still
outstanding every ``/predict`` degrades gracefully to 503 with a
``Retry-After`` hint instead of blocking or answering from a partial
table (a half-trained predictor would silently mis-rank units — the
fail-safe is to keep the client on its default full-diagnostic order,
exactly like the paper's catch-all entry).
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass

from ...core.predictor import train_predictor
from ...core.signatures import SignatureStats
from ...core.table import table_to_payload
from ..campaign import CampaignConfig
from .ledger import DEFAULT_LEASE_TTL, CampaignLedger
from .runner import hydrate_store, ledger_digest
from .store import IncrementalResultStore
from .wire import config_to_wire, outcome_from_wire, shard_to_wire

#: Retry-After seconds advertised while the table is still training.
RETRY_AFTER_TRAINING = 5

#: Hard cap on request body size (a commit for a deep shard is well
#: under this; anything larger is a broken or hostile client).
MAX_BODY_BYTES = 64 * 1024 * 1024


class HttpError(Exception):
    """An error that maps straight to an HTTP status response."""

    def __init__(self, status: int, message: str, headers: dict | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            413: "Payload Too Large", 500: "Internal Server Error",
            503: "Service Unavailable"}


class CampaignService:
    """Serves one campaign ledger over HTTP.

    Args:
        ledger: the durable shard queue (opened or created by the
            caller; the service only ever touches it from the event
            loop thread, so no extra locking is needed).
        fine: taxonomy for the trained prediction table.
        top_k: truncate served predictions to the K most likely units
            (None serves the full order).
        lease_ttl: default lease TTL when a worker does not ask for one.
    """

    def __init__(self, ledger: CampaignLedger, fine: bool = False,
                 top_k: int | None = None,
                 lease_ttl: float = DEFAULT_LEASE_TTL):
        self.ledger = ledger
        self.fine = fine
        self.top_k = top_k
        self.lease_ttl = lease_ttl
        #: aggregates only; records stream from the ledger at training.
        self.store: IncrementalResultStore = hydrate_store(
            ledger, keep_records=False)
        self._predictor = None
        self._stats: SignatureStats | None = None
        self._digest: str | None = None

    # -- training -----------------------------------------------------------

    @property
    def training(self) -> bool:
        """True while the campaign is incomplete (table not servable)."""
        return not self.ledger.complete

    def _ensure_trained(self):
        if self._predictor is None:
            records = [r for _sid, outcome in self.ledger.iter_committed()
                       for r in outcome[0]]
            self._stats = SignatureStats.from_records(records, self.fine)
            self._predictor = train_predictor(
                records, fine=self.fine, top_k=self.top_k, stats=self._stats)
        return self._predictor

    def digest(self) -> str:
        """Digest of the completed campaign (cached after first use)."""
        if self._digest is None:
            self._digest = ledger_digest(self.ledger)
        return self._digest

    # -- endpoint handlers --------------------------------------------------

    def handle_status(self) -> dict:
        payload = {
            "schema": 1,
            "cache_key": self.ledger.config.cache_key(),
            "progress": self.ledger.progress(),
            "errors": self.store.n_errors,
            "training": self.training,
        }
        if not self.training:
            payload["digest"] = self.digest()
        return payload

    def handle_config(self) -> dict:
        return {"cache_key": self.ledger.config.cache_key(),
                "config": config_to_wire(self.ledger.config)}

    def handle_lease(self, body: dict) -> dict:
        worker = str(body.get("worker", "anonymous"))
        ttl = float(body.get("ttl", self.lease_ttl))
        if ttl <= 0:
            raise HttpError(400, f"lease ttl must be positive, got {ttl}")
        grant = self.ledger.lease(worker, ttl=ttl)
        if grant is None:
            return {"shard": None, "progress": self.ledger.progress()}
        return {
            "shard_id": grant.shard_id,
            "shard": shard_to_wire(grant.shard),
            "deadline_in": ttl,
            "progress": self.ledger.progress(),
        }

    def handle_commit(self, body: dict) -> dict:
        try:
            shard_id = int(body["shard_id"])
            outcome = outcome_from_wire(body["outcome"])
        except HttpError:
            raise
        except Exception as exc:
            raise HttpError(400, f"malformed commit: {exc}") from exc
        if not 0 <= shard_id < self.ledger.n_shards:
            raise HttpError(409, f"shard id {shard_id} out of range")
        fresh = self.ledger.commit(shard_id, outcome)
        if fresh:
            self.store.add(shard_id, self.ledger.shards[shard_id].benchmark,
                           outcome)
        return {"status": "committed" if fresh else "duplicate",
                "progress": self.ledger.progress()}

    def _parse_dsr(self, query: dict) -> frozenset:
        if "dsr" not in query:
            raise HttpError(400, "missing dsr query parameter "
                            "(comma-separated SC indices, e.g. dsr=3,17)")
        raw = query["dsr"].strip()
        if raw == "":
            return frozenset()
        try:
            return frozenset(int(part) for part in raw.split(","))
        except ValueError as exc:
            raise HttpError(400, f"malformed dsr signature {raw!r}: "
                            f"{exc}") from exc

    def handle_predict(self, query: dict) -> dict:
        diverged = self._parse_dsr(query)
        if self.training:
            raise HttpError(
                503, "prediction table still training "
                f"({self.ledger.n_committed}/{self.ledger.n_shards} shards)",
                headers={"Retry-After": str(RETRY_AFTER_TRAINING)})
        predictor = self._ensure_trained()
        prediction = predictor.predict(diverged)
        return {
            "dsr": sorted(diverged),
            "units": list(prediction.units),
            "error_type": prediction.error_type.value,
            "from_default": prediction.from_default,
            "unit_posterior": dict(sorted(
                self._stats.set_probabilities(diverged).items())),
            "type_posterior": {
                etype.value: p for etype, p in sorted(
                    self._stats.type_probabilities(diverged).items(),
                    key=lambda kv: kv[0].value)},
            "access_cycles": predictor.access_cycles,
        }

    def handle_table(self) -> dict:
        if self.training:
            raise HttpError(
                503, "prediction table still training",
                headers={"Retry-After": str(RETRY_AFTER_TRAINING)})
        predictor = self._ensure_trained()
        return table_to_payload(predictor.table, self.fine)

    # -- HTTP plumbing ------------------------------------------------------

    def dispatch(self, method: str, path: str, query: dict, body: dict) -> dict:
        routes = {
            ("GET", "/status"): lambda: self.handle_status(),
            ("GET", "/config"): lambda: self.handle_config(),
            ("POST", "/lease"): lambda: self.handle_lease(body),
            ("POST", "/commit"): lambda: self.handle_commit(body),
            ("GET", "/predict"): lambda: self.handle_predict(query),
            ("GET", "/table"): lambda: self.handle_table(),
        }
        handler = routes.get((method, path))
        if handler is None:
            known = {route_path for _m, route_path in routes}
            if path in known:
                raise HttpError(405, f"{method} not allowed on {path}")
            raise HttpError(404, f"no such endpoint: {path}")
        return handler()

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        status, headers, payload = 500, {}, {"error": "internal error"}
        try:
            method, path, query, body = await _read_request(reader)
            payload = self.dispatch(method, path, query, body)
            status = 200
        except HttpError as exc:
            status, headers = exc.status, exc.headers
            payload = {"error": exc.message}
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as exc:  # pragma: no cover - defensive
            payload = {"error": f"{type(exc).__name__}: {exc}"}
        try:
            _write_response(writer, status, payload, headers)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def serve(self, host: str = "127.0.0.1", port: int = 0):
        """Bind and return the ``asyncio.Server`` (caller drives the loop)."""
        return await asyncio.start_server(self._serve_connection, host, port)


async def _read_request(reader: asyncio.StreamReader):
    request_line = (await reader.readline()).decode("latin-1").strip()
    parts = request_line.split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, target, _version = parts
    content_length = 0
    while True:
        line = (await reader.readline()).decode("latin-1").strip()
        if not line:
            break
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError as exc:
                raise HttpError(400, f"bad Content-Length: {value!r}") from exc
    if content_length > MAX_BODY_BYTES:
        raise HttpError(413, f"body of {content_length} bytes exceeds "
                        f"{MAX_BODY_BYTES}")
    raw_body = await reader.readexactly(content_length) if content_length else b""
    body: dict = {}
    if raw_body:
        try:
            body = json.loads(raw_body)
        except ValueError as exc:
            raise HttpError(400, f"request body is not JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
    path, _, raw_query = target.partition("?")
    query: dict[str, str] = {}
    for pair in raw_query.split("&"):
        if pair:
            key, _, value = pair.partition("=")
            query[key] = value
    return method.upper(), path, query, body


def _write_response(writer: asyncio.StreamWriter, status: int, payload: dict,
                    extra_headers: dict | None = None) -> None:
    body = json.dumps(payload, separators=(",", ":")).encode()
    headers = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        "Connection": "close",
        **(extra_headers or {}),
    }
    head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
    head += [f"{name}: {value}" for name, value in headers.items()]
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)


# -- threaded host (for the CLI, tests and benchmarks) -----------------------

@dataclass
class ServiceHandle:
    """A running service: base URL plus a stop switch."""

    host: str
    port: int
    _loop: asyncio.AbstractEventLoop
    _thread: threading.Thread

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Stop the event loop and join the server thread."""
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)


def start_service(service: CampaignService, host: str = "127.0.0.1",
                  port: int = 0) -> ServiceHandle:
    """Run a :class:`CampaignService` on a daemon thread.

    Returns once the socket is bound (the reported port is final, so
    ``port=0`` gives a free ephemeral port — the tests' default).
    """
    loop = asyncio.new_event_loop()
    server = loop.run_until_complete(service.serve(host, port))
    bound_port = server.sockets[0].getsockname()[1]
    thread = threading.Thread(target=_run_loop, args=(loop, server),
                              name="campaign-service", daemon=True)
    thread.start()
    return ServiceHandle(host=host, port=bound_port, _loop=loop,
                         _thread=thread)


def _run_loop(loop: asyncio.AbstractEventLoop, server) -> None:
    asyncio.set_event_loop(loop)
    try:
        loop.run_forever()
    finally:
        server.close()
        with_suppress = loop.run_until_complete
        try:
            with_suppress(server.wait_closed())
        except Exception:
            pass
        loop.close()


def serve_forever(service: CampaignService, host: str, port: int,
                  announce=print) -> None:
    """Blocking entry point for ``python -m repro serve``."""
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    server = loop.run_until_complete(service.serve(host, port))
    bound = server.sockets[0].getsockname()
    announce(f"[serve] campaign {service.ledger.config.cache_key()} on "
             f"http://{bound[0]}:{bound[1]}  "
             f"({service.ledger.n_committed}/{service.ledger.n_shards} "
             f"shards committed)")
    try:
        loop.run_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        loop.run_until_complete(server.wait_closed())
        loop.close()
