"""Durable campaign ledger: the crash-safe work queue behind resume.

One ledger directory per campaign, keyed by the campaign's cache key::

    <root>/ledger_<cache_key>/
        manifest.json      # shard plan, written once at creation
        shard_00004.json   # one committed outcome per shard (atomic)

Crash consistency comes from two rules:

1.  **Commit = rename.**  A shard outcome is written to a temp file in
    the same directory, flushed, then ``os.replace``-d into place.  A
    crash at any point leaves either no shard file (the shard is
    simply re-run on resume) or a complete one — never a torn file.
    Stray temp files from killed writers are swept on open.
2.  **The shard files are the only truth.**  There is no mutable state
    file to corrupt: progress is the set of ``shard_*.json`` files,
    rebuilt by a directory scan on open.  Leases live in memory only —
    after a crash every uncommitted shard is pending again, which is
    exactly the correct recovery semantics.

Leases follow a small state machine (DESIGN.md §5.16)::

    pending --lease--> leased --commit--> committed   (terminal)
       ^                  |
       +---- expiry ------+        (dead worker: TTL passes, any
                                    later lease call reclaims it)

Because campaign results are bit-identical for any shard split and
completion order (SeedSequence-keyed schedules + order-keyed merge),
re-running a shard that a dead worker half-finished is always safe:
the second execution produces byte-identical records.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from ..campaign import CampaignConfig
from ..parallel import Shard, plan_shards, resolve_chunk, sampling_rng
from .wire import (
    WIRE_SCHEMA,
    config_from_wire,
    config_to_wire,
    outcome_from_wire,
    outcome_to_wire,
)

#: Manifest schema tag; bump on incompatible ledger layout changes.
LEDGER_SCHEMA = 1

#: Default lease time-to-live in seconds.
DEFAULT_LEASE_TTL = 60.0


class LedgerError(RuntimeError):
    """A ledger directory is unusable for the requested campaign."""


def atomic_write_json(path: Path, payload: dict) -> None:
    """Write ``payload`` as JSON via write-temp + fsync + rename.

    The temp file lives in the target directory so the rename never
    crosses a filesystem boundary (rename atomicity only holds within
    one filesystem).
    """
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    with open(tmp, "w") as fh:
        json.dump(payload, fh, separators=(",", ":"))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


@dataclass(frozen=True)
class LeaseGrant:
    """A shard handed to a worker, valid until ``deadline``."""

    shard_id: int
    shard: Shard
    worker: str
    deadline: float


class CampaignLedger:
    """The durable shard queue for one campaign configuration.

    Args:
        root: directory under which the per-campaign ledger dir lives.
        config: the campaign; the ledger dir is keyed by its cache key,
            so different configurations never collide.
        workers: planned worker count — only the chunking default
            depends on it, and only at creation time (an existing
            manifest's plan always wins).
        chunk_flops: flops per shard; fixed in the manifest at creation
            so every resume sees the identical shard plan.
        batch: whether the plan targets the vectorised engine (deeper
            default chunks, mirroring ``execute_campaign``).
        clock: monotonic time source, injectable for lease-expiry tests.
    """

    def __init__(self, root: str | Path, config: CampaignConfig,
                 workers: int = 1, chunk_flops: int | None = None,
                 batch: int | None = None, clock=time.monotonic):
        self.config = config
        self.clock = clock
        self.path = Path(root) / f"ledger_{config.cache_key()}"
        self.path.mkdir(parents=True, exist_ok=True)
        self._sweep_temp_files()
        flops = self._sampled_flops()
        manifest_path = self.path / "manifest.json"
        if manifest_path.exists():
            manifest = self._load_manifest(manifest_path, len(flops))
            chunk = int(manifest["chunk_flops"])
        else:
            if batch is not None and chunk_flops is None:
                # Mirror execute_campaign's batch default: one deep
                # shard per worker keeps the vectorised lanes full.
                chunk_flops = max(1, -(-len(flops) // max(1, workers)))
            chunk = resolve_chunk(len(flops), max(1, workers), chunk_flops)
            manifest = {
                "schema": LEDGER_SCHEMA,
                "wire_schema": WIRE_SCHEMA,
                "cache_key": config.cache_key(),
                "config": config_to_wire(config),
                "chunk_flops": chunk,
                "n_flops": len(flops),
            }
            atomic_write_json(manifest_path, manifest)
        self.manifest = manifest
        self.shards: list[Shard] = plan_shards(
            config.benchmarks, flops, workers=1, chunk_flops=chunk)
        self._leases: dict[int, LeaseGrant] = {}
        self._committed: set[int] = {
            shard_id for shard_id in range(len(self.shards))
            if self._shard_path(shard_id).exists()
        }

    # -- creation helpers ---------------------------------------------------

    def _sampled_flops(self):
        from ..campaign import sample_flops
        return sample_flops(self.config, sampling_rng(self.config.seed))

    def _load_manifest(self, path: Path, n_flops: int) -> dict:
        try:
            manifest = json.loads(path.read_text())
        except ValueError as exc:
            raise LedgerError(f"corrupt ledger manifest {path}: {exc}") from exc
        if manifest.get("schema") != LEDGER_SCHEMA:
            raise LedgerError(
                f"ledger {path.parent} has schema "
                f"{manifest.get('schema')!r}, expected {LEDGER_SCHEMA}")
        if manifest.get("cache_key") != self.config.cache_key():
            raise LedgerError(
                f"ledger {path.parent} belongs to campaign "
                f"{manifest.get('cache_key')!r}, not "
                f"{self.config.cache_key()!r}")
        # Belt and braces: the key already pins the config, but the
        # embedded copy must agree with what we recomputed from it.
        if (config_from_wire(manifest["config"]) != self.config
                or manifest.get("n_flops") != n_flops):
            raise LedgerError(
                f"ledger {path.parent} manifest disagrees with the "
                f"recomputed campaign plan")
        return manifest

    def _sweep_temp_files(self) -> None:
        for stray in self.path.glob(".*.tmp-*"):
            stray.unlink(missing_ok=True)

    def _shard_path(self, shard_id: int) -> Path:
        return self.path / f"shard_{shard_id:05d}.json"

    # -- queue state --------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def committed_ids(self) -> list[int]:
        """Committed shard ids, ascending."""
        return sorted(self._committed)

    @property
    def n_committed(self) -> int:
        return len(self._committed)

    @property
    def complete(self) -> bool:
        """True once every shard has a committed outcome."""
        return len(self._committed) == len(self.shards)

    def progress(self) -> dict:
        """A JSON-able snapshot of the queue state."""
        now = self.clock()
        active = sum(1 for grant in self._leases.values()
                     if grant.deadline > now)
        return {
            "n_shards": len(self.shards),
            "committed": len(self._committed),
            "leased": active,
            "pending": len(self.shards) - len(self._committed) - active,
            "complete": self.complete,
        }

    # -- lease state machine ------------------------------------------------

    def lease(self, worker: str, ttl: float = DEFAULT_LEASE_TTL) -> LeaseGrant | None:
        """Lease the next available shard to ``worker``.

        Expired leases are reclaimed here: a shard whose lease deadline
        has passed without a commit goes back to pending and is handed
        out again.  Returns None when nothing is available — either the
        campaign is complete or every remaining shard is under an
        active lease.
        """
        now = self.clock()
        for shard_id, grant in list(self._leases.items()):
            if grant.deadline <= now:
                del self._leases[shard_id]
        for shard_id in range(len(self.shards)):
            if shard_id in self._committed or shard_id in self._leases:
                continue
            grant = LeaseGrant(shard_id=shard_id, shard=self.shards[shard_id],
                               worker=worker, deadline=now + ttl)
            self._leases[shard_id] = grant
            return grant
        return None

    def release(self, shard_id: int) -> None:
        """Voluntarily return a lease (worker shutting down cleanly)."""
        self._leases.pop(shard_id, None)

    # -- commits ------------------------------------------------------------

    def commit(self, shard_id: int, outcome: tuple) -> bool:
        """Durably record one shard outcome; returns False on duplicate.

        Commits are idempotent: a late commit from a worker whose lease
        expired (and whose shard was re-run by someone else) is simply
        dropped — both executions produced byte-identical outcomes, so
        first-writer-wins loses nothing.
        """
        if not 0 <= shard_id < len(self.shards):
            raise LedgerError(f"shard id {shard_id} out of range "
                              f"(0..{len(self.shards) - 1})")
        self._leases.pop(shard_id, None)
        if shard_id in self._committed:
            return False
        payload = outcome_to_wire(outcome)
        payload["shard_id"] = shard_id
        atomic_write_json(self._shard_path(shard_id), payload)
        self._committed.add(shard_id)
        return True

    def load_outcome(self, shard_id: int) -> tuple:
        """Read one committed outcome back from disk."""
        payload = json.loads(self._shard_path(shard_id).read_text())
        if payload.get("shard_id") != shard_id:
            raise LedgerError(
                f"shard file {self._shard_path(shard_id)} carries id "
                f"{payload.get('shard_id')!r}")
        return outcome_from_wire(payload)

    def iter_committed(self):
        """Yield ``(shard_id, outcome)`` in merge (order-key) order.

        Shard ids ascend in ``plan_shards`` order, which is exactly the
        (bench_idx, flop_base) merge order — so streaming the committed
        files by id reproduces the serial record order without holding
        more than one shard's records in memory.
        """
        for shard_id in self.committed_ids:
            yield shard_id, self.load_outcome(shard_id)
