"""Checkpointed campaign execution over a durable ledger.

``run_resumable_campaign`` is ``execute_campaign`` with a crash seam:
every shard is leased from the :class:`~.ledger.CampaignLedger`,
executed through the ordinary ``run_shard`` path (scalar, batch or
compiled kernel — all the same engines), and committed atomically.
Kill the process at *any* point — between shards, mid-shard, even
mid-commit — and a later call with the same config resumes from the
committed set and finishes with a :meth:`CampaignResult.digest` that
is bit-identical to an uninterrupted (or monolithic
``execute_campaign``) run.  That guarantee is inherited, not rebuilt:
per-(benchmark, flop) SeedSequence keys make a shard's outcome a pure
function of the campaign config, so re-running work a crash threw away
reproduces it byte for byte.
"""

from __future__ import annotations

import time
from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                ThreadPoolExecutor, wait)

from ..campaign import CampaignConfig, CampaignResult
from ..parallel import resolve_executor, resolve_workers, run_shard
from .ledger import DEFAULT_LEASE_TTL, CampaignLedger
from .store import IncrementalResultStore, streaming_digest


def hydrate_store(ledger: CampaignLedger,
                  keep_records: bool = True) -> IncrementalResultStore:
    """Build a result store pre-loaded with a ledger's committed shards."""
    store = IncrementalResultStore(ledger.config, keep_records=keep_records)
    for shard_id, outcome in ledger.iter_committed():
        store.add(shard_id, ledger.shards[shard_id].benchmark, outcome)
    return store


def result_from_ledger(ledger: CampaignLedger, wall_seconds: float = 0.0,
                       meta: dict | None = None) -> CampaignResult:
    """Assemble the full result of a complete ledger.

    Streams every committed shard file once; raises if shards are
    still outstanding (a partial dataset would silently bias every
    downstream statistic).
    """
    if not ledger.complete:
        done = ledger.n_committed
        raise RuntimeError(
            f"campaign incomplete: {done}/{ledger.n_shards} shards committed")
    store = hydrate_store(ledger, keep_records=True)
    return store.result(wall_seconds=wall_seconds, meta=meta)


def ledger_digest(ledger: CampaignLedger) -> str:
    """Digest of a complete ledger, streamed off the shard files."""
    if not ledger.complete:
        raise RuntimeError("campaign incomplete; digest undefined")

    def _stream():
        for _shard_id, outcome in ledger.iter_committed():
            yield from outcome[0]

    return streaming_digest(_stream())


def run_resumable_campaign(config: CampaignConfig | None = None,
                           ledger_dir: str = ".campaign_ledger",
                           progress: bool = False,
                           workers: int | None = 1,
                           chunk_flops: int | None = None,
                           batch: int | None = None,
                           kernel: str | None = None,
                           executor: str | None = None,
                           threads: int | None = None,
                           lease_ttl: float = DEFAULT_LEASE_TTL,
                           on_commit=None) -> CampaignResult:
    """Run (or resume) a campaign through the durable ledger.

    Args:
        config: campaign parameters (default:
            :meth:`CampaignConfig.default`).
        ledger_dir: root directory for per-campaign ledgers; the same
            directory + config always resumes the same ledger.
        workers / chunk_flops / batch / kernel / executor / threads:
            execution knobs exactly as in
            :func:`repro.faults.run_campaign` — none of them affects
            results, and none is pinned by the ledger except the shard
            chunking (fixed in the manifest at creation so every
            resume sees one shard plan).
        lease_ttl: seconds before an uncommitted lease is reclaimed.
        on_commit: optional ``callback(shard_id, n_committed)`` fired
            after each durable commit — the crash-recovery tests use it
            to kill the runner at exact shard boundaries.

    Returns the merged result, with ``meta["resumed_shards"]`` counting
    how many shards a previous (killed) run had already committed.
    """
    from ..kernels import resolve_kernel

    config = config or CampaignConfig.default()
    workers = resolve_workers(workers)
    executor = resolve_executor(executor)
    ledger = CampaignLedger(ledger_dir, config, workers=workers,
                            chunk_flops=chunk_flops, batch=batch)
    resumed = ledger.n_committed
    resolved_kernel = resolve_kernel(kernel) if batch else None
    start = time.perf_counter()
    store = hydrate_store(ledger)

    def _commit(shard_id: int, outcome: tuple) -> None:
        ledger.commit(shard_id, outcome)
        store.add(shard_id, ledger.shards[shard_id].benchmark, outcome)
        if progress:
            _print_progress(ledger, store, start)
        if on_commit is not None:
            on_commit(shard_id, ledger.n_committed)

    if workers == 1:
        while True:
            grant = ledger.lease("local", ttl=lease_ttl)
            if grant is None:
                break
            outcome = run_shard(config, grant.shard, batch, resolved_kernel,
                                threads)
            _commit(grant.shard_id, outcome)
    else:
        pool_cls = (ThreadPoolExecutor if executor == "thread"
                    else ProcessPoolExecutor)
        with pool_cls(max_workers=workers) as pool:
            pending: dict = {}
            def _refill() -> None:
                while len(pending) < workers:
                    grant = ledger.lease("local-pool", ttl=lease_ttl)
                    if grant is None:
                        return
                    future = pool.submit(run_shard, config, grant.shard,
                                         batch, resolved_kernel, threads)
                    pending[future] = grant
            _refill()
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    grant = pending.pop(future)
                    _commit(grant.shard_id, future.result())
                _refill()

    if not ledger.complete:
        # Only reachable when another process holds active leases on
        # the remaining shards (shared ledger dir); surface it rather
        # than returning a partial dataset.
        raise RuntimeError(
            f"ledger still has uncommitted shards "
            f"({ledger.n_committed}/{ledger.n_shards}) under foreign leases")
    return store.result(
        wall_seconds=time.perf_counter() - start,
        meta={"workers": workers, "n_shards": ledger.n_shards,
              "chunk_flops": int(ledger.manifest["chunk_flops"]),
              "batch": batch, "kernel": resolved_kernel,
              "executor": executor, "threads": threads,
              "resumed_shards": resumed,
              "ledger": str(ledger.path)},
    )


def _print_progress(ledger: CampaignLedger, store: IncrementalResultStore,
                    start: float) -> None:
    state = ledger.progress()
    print(f"[ledger] shard {state['committed']}/{state['n_shards']} "
          f"errors={store.n_errors} "
          f"t={time.perf_counter() - start:.0f}s", flush=True)
