"""Incremental campaign-result merging.

``execute_campaign`` holds every shard's record list in memory and
concatenates at the end; at the 10M-injection scale that is the wrong
shape for a long-lived service.  :class:`IncrementalResultStore`
absorbs committed shard outcomes *as they land, in any order*, keeping
only running aggregates (injected counts, pruning sums, golden cycles,
error totals) plus the per-shard record lists it was explicitly asked
to retain.  The merge is commutative and associative — any commit
permutation yields the identical :class:`CampaignResult` and digest
(property-tested in ``tests/test_service.py``) — because assembly
sorts by the shard order key, exactly like the parallel engine's
deterministic merge.

When backed by a :class:`~.ledger.CampaignLedger` the store drops
record lists entirely and streams them from the committed shard files
at finalisation, so server memory stays flat while a campaign runs.
"""

from __future__ import annotations

import hashlib

from ..campaign import CampaignConfig, CampaignResult
from ..models import ErrorRecord


class IncrementalResultStore:
    """Merge shard outcomes incrementally into a campaign result.

    Args:
        config: the campaign the outcomes belong to.
        keep_records: retain record lists in memory (the default, for
            in-process runs).  ``False`` keeps aggregates only; callers
            then stream records from their ledger for finalisation.
    """

    def __init__(self, config: CampaignConfig, keep_records: bool = True):
        self.config = config
        self.keep_records = keep_records
        self._records: dict[int, list[ErrorRecord]] = {}
        self._seen: set[int] = set()
        self.injected: dict[tuple[str, str], int] = {}
        self.pruning: dict[str, int] = {}
        #: benchmark -> golden run length (same value from every shard
        #: of that benchmark, so last-writer-wins merging is exact).
        self.golden_cycles: dict[str, int] = {}
        self.n_errors = 0

    @property
    def n_shards_merged(self) -> int:
        return len(self._seen)

    def add(self, shard_id: int, benchmark: str, outcome: tuple) -> bool:
        """Fold one shard outcome in; returns False on duplicate.

        ``outcome`` is the ``run_shard`` tuple ``(records, injected,
        n_cycles, pruning)``.  Duplicate shard ids are ignored rather
        than double-counted, so replaying a ledger into a live store is
        harmless.
        """
        if shard_id in self._seen:
            return False
        self._seen.add(shard_id)
        records, injected, n_cycles, pruning = outcome
        self.n_errors += len(records)
        if self.keep_records:
            self._records[shard_id] = list(records)
        for key, count in injected.items():
            self.injected[key] = self.injected.get(key, 0) + count
        for key, count in (pruning or {}).items():
            self.pruning[key] = self.pruning.get(key, 0) + count
        self.golden_cycles[benchmark] = int(n_cycles)
        return True

    def iter_records(self):
        """Yield merged records in the canonical (shard id) order."""
        for shard_id in sorted(self._records):
            yield from self._records[shard_id]

    def result(self, wall_seconds: float = 0.0,
               meta: dict | None = None) -> CampaignResult:
        """Assemble the merged :class:`CampaignResult`.

        Requires ``keep_records=True``; ledger-backed callers use
        :func:`result_from_ledger` instead.
        """
        if not self.keep_records:
            raise RuntimeError(
                "store was built with keep_records=False; assemble via "
                "result_from_ledger")
        return CampaignResult(
            config=self.config,
            records=list(self.iter_records()),
            injected=dict(self.injected),
            golden_cycles=dict(self.golden_cycles),
            sampled_flops=sampled_flop_counts(self.config),
            wall_seconds=wall_seconds,
            meta={**{"pruning": dict(self.pruning)}, **(meta or {})},
        )


def sampled_flop_counts(config: CampaignConfig) -> dict[str, int]:
    """Per-unit sampled-flop counts, recomputed from the config.

    Deterministic (keyed sampling stream), so a resumed campaign
    reports the same counts as an uninterrupted one without persisting
    them.
    """
    from ..campaign import sample_flops
    from ..parallel import sampling_rng

    counts: dict[str, int] = {}
    for flop in sample_flops(config, sampling_rng(config.seed)):
        counts[flop.unit] = counts.get(flop.unit, 0) + 1
    return counts


def streaming_digest(records_iter) -> str:
    """The campaign record digest, computed from a record stream.

    Byte-identical to :func:`repro.faults.campaign.records_digest`
    without materialising the list — the server computes a finished
    campaign's digest straight off the ledger files.
    """
    h = hashlib.sha256()
    for r in records_iter:
        h.update(repr((r.benchmark, r.flop.reg, r.flop.bit, r.kind.value,
                       r.inject_cycle, r.detect_cycle,
                       sorted(r.diverged))).encode())
    return h.hexdigest()
