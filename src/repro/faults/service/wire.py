"""JSON wire format for campaign shards, outcomes and configurations.

Everything the ledger persists or the HTTP API ships is JSON built
from these converters, so the on-disk format and the on-the-wire
format are the same thing and round-trip tests cover both.  The format
is deliberately explicit (no pickle): a ledger written by one library
version is either readable or *visibly* rejected by its schema tag,
never silently misinterpreted.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ...cpu.units import FlopRef
from ..campaign import CampaignConfig
from ..models import ErrorRecord, FaultKind
from ..parallel import Shard

#: Bump when any wire payload changes shape incompatibly.
WIRE_SCHEMA = 1


# -- error records -----------------------------------------------------------

def record_to_wire(record: ErrorRecord) -> list:
    """One error record as a compact JSON row.

    A row, not an object: a full campaign carries millions of records
    and the field names would dominate the ledger size.
    """
    return [record.benchmark, record.flop.reg, record.flop.bit,
            record.kind.value, record.inject_cycle, record.detect_cycle,
            sorted(record.diverged)]


def record_from_wire(row: list) -> ErrorRecord:
    """Rebuild an :class:`ErrorRecord` from its wire row."""
    benchmark, reg, bit, kind, inject, detect, diverged = row
    return ErrorRecord(
        benchmark=benchmark,
        flop=FlopRef(reg, int(bit)),
        kind=FaultKind(kind),
        inject_cycle=int(inject),
        detect_cycle=int(detect),
        diverged=frozenset(int(sc) for sc in diverged),
    )


# -- shard outcomes ----------------------------------------------------------

def outcome_to_wire(outcome: tuple) -> dict:
    """Serialise one ``run_shard`` outcome tuple.

    ``outcome`` is ``(records, injected, n_cycles, pruning)`` exactly
    as :func:`repro.faults.parallel.run_shard` returns it.
    """
    records, injected, n_cycles, pruning = outcome
    return {
        "schema": WIRE_SCHEMA,
        "records": [record_to_wire(r) for r in records],
        "injected": sorted([unit, kind, count]
                           for (unit, kind), count in injected.items()),
        "n_cycles": int(n_cycles),
        "pruning": {key: int(value) for key, value in (pruning or {}).items()},
    }


def outcome_from_wire(payload: dict) -> tuple:
    """Rebuild a ``run_shard`` outcome tuple from its wire form."""
    if payload.get("schema") != WIRE_SCHEMA:
        raise ValueError(
            f"unsupported outcome schema {payload.get('schema')!r} "
            f"(expected {WIRE_SCHEMA})")
    records = [record_from_wire(row) for row in payload["records"]]
    injected = {(unit, kind): int(count)
                for unit, kind, count in payload["injected"]}
    return records, injected, int(payload["n_cycles"]), dict(payload["pruning"])


# -- shards ------------------------------------------------------------------

def shard_to_wire(shard: Shard) -> dict:
    """A shard descriptor as shipped in a lease response."""
    return {
        "bench_idx": shard.bench_idx,
        "benchmark": shard.benchmark,
        "flop_base": shard.flop_base,
        "flops": [[flop.reg, flop.bit] for flop in shard.flops],
    }


def shard_from_wire(payload: dict) -> Shard:
    """Rebuild a :class:`Shard` a remote worker can execute."""
    return Shard(
        bench_idx=int(payload["bench_idx"]),
        benchmark=payload["benchmark"],
        flop_base=int(payload["flop_base"]),
        flops=tuple(FlopRef(reg, int(bit)) for reg, bit in payload["flops"]),
    )


# -- campaign configuration --------------------------------------------------

def config_to_wire(config: CampaignConfig) -> dict:
    """A campaign configuration as a plain JSON object."""
    payload = dataclasses.asdict(config)
    payload["benchmarks"] = list(payload["benchmarks"])
    return payload


def config_from_wire(payload: dict) -> CampaignConfig:
    """Rebuild a :class:`CampaignConfig`; unknown fields are rejected.

    Rejecting (rather than dropping) unknown fields means a worker
    built from an older library version fails loudly against a newer
    server instead of silently running a different campaign.
    """
    known = {f.name for f in dataclasses.fields(CampaignConfig)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown campaign config fields: {sorted(unknown)}")
    kwargs: dict[str, Any] = dict(payload)
    if "benchmarks" in kwargs:
        kwargs["benchmarks"] = tuple(kwargs["benchmarks"])
    return CampaignConfig(**kwargs)
