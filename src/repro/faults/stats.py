"""Campaign statistics: the material of the paper's Table I.

Manifestation *rate* of a unit = manifested errors / injected faults
in that unit; manifestation *time* = cycles from fault occurrence to
lockstep detection.  Both are reported per fault class with the
[min, mean, max] spread over units, exactly like Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.units import COARSE_UNITS, FINE_UNITS, coarse_unit
from .campaign import CampaignResult
from .models import ErrorType


@dataclass(frozen=True)
class Spread:
    """A [min, mean, max] summary over units."""

    minimum: float
    mean: float
    maximum: float

    def as_row(self, fmt: str = "{:.1f}") -> str:
        """Render like the paper's Table I cells."""
        return (f"[{fmt.format(self.minimum)}, {fmt.format(self.mean)}, "
                f"{fmt.format(self.maximum)}]")


def _spread(values: list[float]) -> Spread:
    if not values:
        return Spread(0.0, 0.0, 0.0)
    return Spread(min(values), sum(values) / len(values), max(values))


def manifestation_rates(result: CampaignResult, error_type: ErrorType,
                        fine: bool = False) -> dict[str, float]:
    """Per-unit manifestation rate (errors / injections) for a class."""
    units = FINE_UNITS if fine else COARSE_UNITS
    injected = {u: 0 for u in units}
    for (unit, kind), count in result.injected.items():
        is_hard = kind != "soft"
        if (error_type is ErrorType.HARD) != is_hard:
            continue
        key = unit if fine else coarse_unit(unit)
        injected[key] += count
    manifested = {u: 0 for u in units}
    for record in result.records:
        if record.error_type is not error_type:
            continue
        manifested[record.unit_for(fine)] += 1
    return {u: (manifested[u] / injected[u] if injected[u] else 0.0) for u in units}


def manifestation_times(result: CampaignResult, error_type: ErrorType,
                        fine: bool = False) -> dict[str, float]:
    """Per-unit mean manifestation time in cycles for a class."""
    units = FINE_UNITS if fine else COARSE_UNITS
    sums = {u: 0 for u in units}
    counts = {u: 0 for u in units}
    for record in result.records:
        if record.error_type is not error_type:
            continue
        unit = record.unit_for(fine)
        sums[unit] += record.latency
        counts[unit] += 1
    return {u: (sums[u] / counts[u] if counts[u] else 0.0) for u in units}


def rate_spread(result: CampaignResult, error_type: ErrorType,
                fine: bool = False) -> Spread:
    """[min, mean, max] manifestation rate across units."""
    rates = manifestation_rates(result, error_type, fine)
    return _spread([r for r in rates.values() if r > 0] or list(rates.values()))


def time_spread(result: CampaignResult, error_type: ErrorType) -> Spread:
    """[min, mean, max] manifestation time across all errors of a class."""
    latencies = [float(r.latency) for r in result.records if r.error_type is error_type]
    return _spread(latencies)


def overall_manifestation_rate(result: CampaignResult) -> float:
    """Fraction of all injected faults that manifested as errors."""
    total = result.n_injected
    return result.n_errors / total if total else 0.0


def mean_detection_time(result: CampaignResult) -> float:
    """Average manifestation time over every error (paper: ~1300 cycles)."""
    if not result.records:
        return 0.0
    return sum(r.latency for r in result.records) / len(result.records)


def diverged_set_size_ratio(result: CampaignResult) -> float:
    """Mean diverged-SC count of hard errors over that of soft errors.

    The paper reports 54% more diverged SCs for hard errors than soft
    errors at detection time (Section III-B); this is that measurement.
    """
    hard = [len(r.diverged) for r in result.records if r.error_type is ErrorType.HARD]
    soft = [len(r.diverged) for r in result.records if r.error_type is ErrorType.SOFT]
    if not hard or not soft:
        return 0.0
    return (sum(hard) / len(hard)) / (sum(soft) / len(soft))


def table1(result: CampaignResult) -> dict[str, Spread]:
    """The four rows of the paper's Table I."""
    return {
        "Soft Error Manifestation Rate": rate_spread(result, ErrorType.SOFT),
        "Hard Error Manifestation Rate": rate_spread(result, ErrorType.HARD),
        "Soft Error Manifestation Time": time_spread(result, ErrorType.SOFT),
        "Hard Error Manifestation Time": time_spread(result, ErrorType.HARD),
    }
