"""SeedSequence spawn-key stream registry.

Every derived random stream in the project keys itself with
``SeedSequence(seed, spawn_key=(TAG, ...))`` so any worker — process,
thread, or remote host — can reconstruct exactly the stream it needs
without coordinating with the others.  The tags must stay globally
unique per seed: two harnesses that ever share a session seed (the
campaign engine and the fault-fuzz harness already do in tests) would
otherwise draw correlated schedules.  This module is the single place
new tags are minted.

==================  ===========================================
tag                 stream
==================  ===========================================
SAMPLING_STREAM     campaign flop sampling
SCHEDULE_STREAM     campaign per-(benchmark, flop) fault schedule
FAULT_STREAM        fault-fuzz per-program fault schedule
TMR_SLOT_STREAM     fault-fuzz per-program erring-core placement
MODE_STREAM         dynamic-lockstep per-program window schedule
==================  ===========================================
"""

from __future__ import annotations

#: Campaign flop-sampling stream (owned by :mod:`repro.faults.parallel`).
SAMPLING_STREAM = 0
#: Campaign per-(benchmark, flop) schedule stream (ditto).
SCHEDULE_STREAM = 1
#: Fault-fuzz per-program fault schedule (:mod:`repro.verify.faultfuzz`).
FAULT_STREAM = 2
#: Fault-fuzz per-program faulty-core slot rotation (3+ core voted mode):
#: which core of the redundant group carries the perturbation, so the
#: voter's erring-CPU attribution is exercised at every position.
TMR_SLOT_STREAM = 3
#: Dynamic-lockstep per-program mode schedule: the split/locked window
#: sequence (plus embedded on-demand check windows) a scenario runs
#: under.  Depends only on ``(seed, program)`` and the duty parameters,
#: never on the worker that draws it.
MODE_STREAM = 4

ALL_STREAMS = (SAMPLING_STREAM, SCHEDULE_STREAM, FAULT_STREAM,
               TMR_SLOT_STREAM, MODE_STREAM)

assert len(set(ALL_STREAMS)) == len(ALL_STREAMS), "stream tags must be unique"
