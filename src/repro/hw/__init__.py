"""Gate-level area/power model of the predictor hardware."""

from .costs import OverheadRow, table4
from .gates import (
    GE_AREA,
    CostSummary,
    Netlist,
    or_tree,
    summarize,
    xor_tree,
)
from .predictor_rtl import (
    R5_CLASS_CORE_GE,
    checker_netlist,
    dual_lockstep_summary,
    predictor_netlist,
    r5_class_core_summary,
    sr5_core_netlist,
)

__all__ = [
    "OverheadRow", "table4",
    "GE_AREA", "CostSummary", "Netlist", "or_tree", "summarize", "xor_tree",
    "R5_CLASS_CORE_GE", "checker_netlist", "dual_lockstep_summary",
    "predictor_netlist", "r5_class_core_summary", "sr5_core_netlist",
]
