"""Table IV roll-up: predictor area/power overhead ratios."""

from __future__ import annotations

from dataclasses import dataclass

from .gates import summarize
from .predictor_rtl import (
    dual_lockstep_summary,
    predictor_netlist,
    r5_class_core_summary,
    sr5_core_netlist,
)


@dataclass(frozen=True)
class OverheadRow:
    """One row of Table IV: predictor overhead vs. a reference design."""

    reference: str
    area_overhead: float
    power_overhead: float


def table4(n_entries: int = 1200, ptar_bits: int = 11,
           core: str = "r5") -> list[OverheadRow]:
    """Compute the paper's Table IV for the chosen core basis.

    Args:
        n_entries: prediction table entry count sizing the mapper.
        ptar_bits: PTAR width.
        core: "r5" prices cores at the R5-class gate budget (the
            paper's reporting basis); "sr5" uses this repo's simulated
            core's own gate estimate (an honest small-core ratio —
            necessarily larger, since the predictor is fixed-size).
    """
    if core == "r5":
        single = r5_class_core_summary()
    elif core == "sr5":
        single = summarize(sr5_core_netlist())
    else:
        raise ValueError(f"unknown core basis {core!r}")
    dual = dual_lockstep_summary(single, n_cores=2)
    predictor = summarize(predictor_netlist(n_entries, ptar_bits))
    return [
        OverheadRow(
            reference=f"Dual-CPU {single.name} lockstep",
            area_overhead=predictor.area_overhead_vs(dual),
            power_overhead=predictor.power_overhead_vs(dual),
        ),
        OverheadRow(
            reference=f"A single {single.name} CPU",
            area_overhead=predictor.area_overhead_vs(single),
            power_overhead=predictor.power_overhead_vs(single),
        ),
    ]
