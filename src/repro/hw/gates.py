"""Gate-level cost model (the Synopsys DC/ICC/PrimeTime substitute).

The paper synthesises the predictor in a 32 nm commercial library and
reports *relative* area and power (Table IV).  We replace the EDA flow
with a standard gate-equivalent (GE) model: every primitive is priced
in NAND2-equivalents for area, and power combines per-GE leakage with
activity-weighted dynamic energy.  The constants are ordinary 32nm-
class planning numbers; since Table IV reports ratios, only their
relative magnitudes matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Gate-equivalent (NAND2 = 1.0) areas of the primitive cells.
GE_AREA: dict[str, float] = {
    "nand2": 1.0,
    "nor2": 1.0,
    "and2": 1.5,
    "or2": 1.5,
    "xor2": 2.5,
    "mux2": 2.5,
    "dff": 7.0,
}

#: NAND2 cell area in um^2 for a 32nm-class library (absolute area
#: reporting only; all Table IV numbers are ratios).
NAND2_UM2 = 0.8

#: Relative leakage power per GE (arbitrary units).
LEAKAGE_PER_GE = 0.10
#: Relative dynamic power per GE at activity factor 1.0.
DYNAMIC_PER_GE = 1.00


@dataclass
class Netlist:
    """A bag of primitive cells with an aggregate activity factor."""

    name: str
    cells: dict[str, int] = field(default_factory=dict)
    #: fraction of cells switching per cycle (for dynamic power).
    activity: float = 0.15

    def add(self, cell: str, count: int) -> None:
        """Add ``count`` primitives of type ``cell``."""
        if cell not in GE_AREA:
            raise KeyError(f"unknown cell {cell!r}")
        if count < 0:
            raise ValueError("cell count must be non-negative")
        self.cells[cell] = self.cells.get(cell, 0) + count

    def merge(self, other: "Netlist") -> None:
        """Fold another netlist's cells into this one (keeps activity)."""
        for cell, count in other.cells.items():
            self.add(cell, count)

    @property
    def gate_equivalents(self) -> float:
        """Total area in NAND2-equivalents."""
        return sum(GE_AREA[cell] * count for cell, count in self.cells.items())

    @property
    def area_um2(self) -> float:
        """Absolute area estimate."""
        return self.gate_equivalents * NAND2_UM2

    @property
    def power(self) -> float:
        """Relative worst-case total power (leakage + dynamic)."""
        ge = self.gate_equivalents
        return ge * (LEAKAGE_PER_GE + self.activity * DYNAMIC_PER_GE)


def or_tree(n_inputs: int) -> int:
    """OR2 gates needed to reduce ``n_inputs`` signals to one."""
    return max(0, n_inputs - 1)


def xor_tree(n_inputs: int) -> int:
    """XOR2 gates needed to reduce ``n_inputs`` signals to one."""
    return max(0, n_inputs - 1)


@dataclass(frozen=True)
class CostSummary:
    """Area/power of one block plus ratios against references."""

    name: str
    gate_equivalents: float
    area_um2: float
    power: float

    def area_overhead_vs(self, other: "CostSummary") -> float:
        """Fractional area overhead relative to ``other``."""
        return self.gate_equivalents / other.gate_equivalents

    def power_overhead_vs(self, other: "CostSummary") -> float:
        """Fractional power overhead relative to ``other``."""
        return self.power / other.power


def summarize(netlist: Netlist) -> CostSummary:
    """Roll a netlist up into a :class:`CostSummary`."""
    return CostSummary(
        name=netlist.name,
        gate_equivalents=netlist.gate_equivalents,
        area_um2=netlist.area_um2,
        power=netlist.power,
    )
