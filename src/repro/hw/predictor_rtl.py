"""Structural models of the checker, the predictor and the CPUs.

These mirror the paper's Figure 6 partitioning:

* the **error checker** (baseline hardware, present in any lockstep
  design) holds one XOR comparator per compared output signal, the
  per-SC OR-reduction trees and the final error OR tree;
* the **error correlation predictor** adds only the Divergence Status
  Register (one sticky bit per SC), the address-mapping logic and the
  Prediction Table Address Register — the table itself lives in ECC
  memory and costs no dedicated silicon;
* CPU cores are priced at a documented gate budget: the R5-class
  figure reproduces the paper's reporting basis, and the SR5 figure
  (derived from this repo's actual flip-flop inventory) gives the
  honest small-core ratio.
"""

from __future__ import annotations

from ..cpu.units import TOTAL_FLOPS
from ..lockstep.categories import SIGNAL_CATEGORIES, TOTAL_PORT_SIGNALS
from .gates import CostSummary, Netlist, or_tree, summarize, xor_tree

#: Gate budget of one Cortex-R5-class core in NAND2-equivalents.  The
#: R5 is an ~8-stage dual-issue real-time core; public planning
#: figures put cores of this class at the low hundreds of kGE.
R5_CLASS_CORE_GE = 125_000.0

#: Combinational gates per flip-flop for the SR5's simple datapath
#: (logic depth of a compact in-order core).
SR5_LOGIC_PER_FLOP = 12.0

#: Activity factors: core logic vs. checker/predictor front-end, which
#: toggles with raw bus signals every cycle.
CORE_ACTIVITY = 0.15
CHECKER_ACTIVITY = 0.40


def checker_netlist(n_cores: int = 2) -> Netlist:
    """The lockstep error checker for ``n_cores`` cores.

    Each redundant core beyond the first adds a full rank of per-bit
    comparators feeding the shared SC OR-reduction trees.
    """
    net = Netlist("lockstep-checker", activity=CHECKER_ACTIVITY)
    comparator_ranks = n_cores - 1
    net.add("xor2", TOTAL_PORT_SIGNALS * comparator_ranks)
    for sc in SIGNAL_CATEGORIES:
        net.add("or2", or_tree(sc.width * comparator_ranks))
    net.add("or2", or_tree(len(SIGNAL_CATEGORIES)))  # final error signal
    net.add("dff", 2)  # latched error flag + stop request
    return net


def predictor_netlist(n_entries: int = 1200, ptar_bits: int = 11) -> Netlist:
    """The error correlation prediction logic (paper Fig. 6, red box).

    Args:
        n_entries: observed diverged SC sets (sizes the mapping logic).
        ptar_bits: PTAR register width (11 bits for ~1200 sets).

    The address mapping is modelled as a pipelined hash network: one
    XOR reduction tree per PTAR bit over half the DSR bits, plus a
    sticky-set OR gate per DSR bit.  The prediction *table* is not
    included — it resides in existing ECC-protected memory.
    """
    if n_entries < 1:
        raise ValueError("mapping needs at least one entry")
    n_scs = len(SIGNAL_CATEGORIES)
    net = Netlist("error-correlation-predictor", activity=CHECKER_ACTIVITY)
    net.add("dff", n_scs)            # DSR
    net.add("or2", n_scs)            # sticky-set per DSR bit
    for _ in range(ptar_bits):       # hash network
        net.add("xor2", xor_tree(n_scs // 2))
    net.add("dff", ptar_bits)        # PTAR
    net.add("and2", ptar_bits)       # load-enable gating
    return net


def sr5_core_netlist() -> Netlist:
    """Gate estimate of one SR5 core from its real flop inventory."""
    net = Netlist("sr5-core", activity=CORE_ACTIVITY)
    net.add("dff", TOTAL_FLOPS)
    net.add("nand2", int(TOTAL_FLOPS * SR5_LOGIC_PER_FLOP))
    return net


def r5_class_core_summary() -> CostSummary:
    """Cost summary of one R5-class core at the documented budget."""
    return CostSummary(
        name="r5-class-core",
        gate_equivalents=R5_CLASS_CORE_GE,
        area_um2=R5_CLASS_CORE_GE * 0.8,
        power=R5_CLASS_CORE_GE * (0.10 + CORE_ACTIVITY * 1.00),
    )


def dual_lockstep_summary(core: CostSummary, n_cores: int = 2) -> CostSummary:
    """``n_cores`` lockstepped cores plus the error checker."""
    checker = summarize(checker_netlist(n_cores))
    return CostSummary(
        name=f"{n_cores}x-{core.name}-lockstep",
        gate_equivalents=n_cores * core.gate_equivalents + checker.gate_equivalents,
        area_um2=n_cores * core.area_um2 + checker.area_um2,
        power=n_cores * core.power + checker.power,
    )
