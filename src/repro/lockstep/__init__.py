"""Lockstep substrate: signal categories, checkers, DMR/TMR wrappers."""

from .categories import (
    SC_INDEX,
    SIGNAL_CATEGORIES,
    TOTAL_PORT_SIGNALS,
    SignalCategory,
    diverged_set,
    dsr_to_set,
    dsr_value,
)
from .checker import CheckerState, LockstepChecker, VotingChecker
from .dmr import DmrLockstep
from .tmr import TmrLockstep

__all__ = [
    "SC_INDEX", "SIGNAL_CATEGORIES", "TOTAL_PORT_SIGNALS", "SignalCategory",
    "diverged_set", "dsr_to_set", "dsr_value",
    "CheckerState", "LockstepChecker", "VotingChecker",
    "DmrLockstep", "TmrLockstep",
]
