"""Lockstep substrate: signal categories, checkers, DMR/TMR wrappers."""

from .categories import (
    PORT_FIELDS,
    SC_INDEX,
    SIGNAL_CATEGORIES,
    TOTAL_PORT_SIGNALS,
    PortField,
    SignalCategory,
    diverged_ports,
    diverged_set,
    dsr_to_set,
    dsr_value,
    expand_ports,
)
from .checker import CheckerState, LockstepChecker, VotingChecker
from .dmr import DmrLockstep
from .dynamic import (
    DynamicDmrLockstep,
    ModeSchedule,
    ModeWindow,
    sample_schedule,
)
from .tmr import TmrLockstep

__all__ = [
    "PORT_FIELDS", "SC_INDEX", "SIGNAL_CATEGORIES", "TOTAL_PORT_SIGNALS",
    "PortField", "SignalCategory",
    "diverged_ports", "diverged_set", "dsr_to_set", "dsr_value", "expand_ports",
    "CheckerState", "LockstepChecker", "VotingChecker",
    "DmrLockstep", "TmrLockstep",
    "DynamicDmrLockstep", "ModeSchedule", "ModeWindow", "sample_schedule",
]
