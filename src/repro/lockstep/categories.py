"""Signal categories (SCs) on the CPU output port boundary.

A *signal category* is a group of related output port signals (paper
Fig. 3a): e.g. the low byte of the data address bus.  The checker
OR-reduces the per-bit comparison of each SC into one divergence bit,
and the concatenation of those bits is the Divergence Status Register
(DSR).  The SR5 core exposes exactly 62 SCs, matching the Cortex-R5
categorisation used in the paper.

The order of :data:`SIGNAL_CATEGORIES` matches the tuple returned by
:meth:`repro.cpu.core.Cpu.outputs`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.core import NUM_SCS


@dataclass(frozen=True)
class SignalCategory:
    """A named group of output port signals.

    Attributes:
        name: human-readable identifier.
        width: number of signals (bits) in the category.
        group: coarse port group ("iside", "dside", "bus", "io",
            "trace", "wb", "branch", "status", "pfu", "sbuf").
    """

    name: str
    width: int
    group: str


def _bus_bytes(prefix: str, group: str) -> list[SignalCategory]:
    return [SignalCategory(f"{prefix}[{8 * i + 7}:{8 * i}]", 8, group) for i in range(4)]


def _bus_nibbles(prefix: str, group: str) -> list[SignalCategory]:
    return [SignalCategory(f"{prefix}[{4 * i + 3}:{4 * i}]", 4, group) for i in range(8)]


#: The 62 signal categories, in output-tuple order.
SIGNAL_CATEGORIES: tuple[SignalCategory, ...] = tuple(
    _bus_bytes("iaddr", "iside")
    + [SignalCategory("ivalid", 1, "iside"), SignalCategory("ipred", 1, "iside")]
    + _bus_nibbles("daddr", "dside")
    + _bus_nibbles("dwdata", "dside")
    + [SignalCategory("dctrl", 4, "dside"), SignalCategory("dstrb", 4, "dside")]
    + _bus_bytes("busaddr", "bus")
    + _bus_nibbles("busdata", "bus")
    + [SignalCategory("busctrl", 4, "bus")]
    + _bus_nibbles("ioout", "io")
    + [SignalCategory("iostrobe", 1, "io")]
    + _bus_bytes("retpc", "trace")
    + _bus_nibbles("retval", "trace")
    + [
        SignalCategory("retrd", 4, "trace"),
        SignalCategory("retvalid", 1, "trace"),
        SignalCategory("ev_sys", 2, "event"),
        SignalCategory("ev_br", 2, "event"),
    ]
)

assert len(SIGNAL_CATEGORIES) == NUM_SCS, "SC table must match CPU output tuple"

#: SC name -> index in the output tuple / DSR bit position.
SC_INDEX: dict[str, int] = {sc.name: i for i, sc in enumerate(SIGNAL_CATEGORIES)}

#: Total number of compared output port signals per CPU.
TOTAL_PORT_SIGNALS: int = sum(sc.width for sc in SIGNAL_CATEGORIES)


def diverged_set(outputs_a: tuple[int, ...], outputs_b: tuple[int, ...]) -> frozenset[int]:
    """SC indices where two output port vectors disagree.

    This is the diverged SC set of paper Fig. 3c; an empty set means
    the cores are in lockstep this cycle.
    """
    return frozenset(i for i, (a, b) in enumerate(zip(outputs_a, outputs_b)) if a != b)


def dsr_value(diverged: frozenset[int]) -> int:
    """Pack a diverged SC set into the DSR's bit representation."""
    value = 0
    for idx in diverged:
        value |= 1 << idx
    return value


def dsr_to_set(value: int) -> frozenset[int]:
    """Unpack a DSR bit value back into a diverged SC set."""
    return frozenset(i for i in range(NUM_SCS) if (value >> i) & 1)
