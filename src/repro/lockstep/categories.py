"""Signal categories (SCs) on the CPU output port boundary.

A *signal category* is a group of related output port signals (paper
Fig. 3a): e.g. the low byte of the data address bus.  The checker
OR-reduces the per-bit comparison of each SC into one divergence bit,
and the concatenation of those bits is the Divergence Status Register
(DSR).  The SR5 core exposes exactly 62 SCs, matching the Cortex-R5
categorisation used in the paper.

The order of :data:`SIGNAL_CATEGORIES` matches the tuple returned by
:meth:`repro.cpu.core.Cpu.outputs`.

Fast path: ``Cpu.step()`` returns the *compact* port tuple (the
:data:`~repro.cpu.core.NUM_PORTS` underlying interface registers with
only their SC-visible bits kept).  :func:`expand_ports` maps a compact
tuple to the canonical 62-SC vector.  Because every signal category is
a fixed bit field of exactly one compact entry, the expansion is
injective per entry, so compact-tuple equality is equivalent to
SC-tuple equality — per-cycle lockstep comparison runs on the compact
tuples and only a divergence pays for the expansion.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..cpu.core import NUM_PORTS, NUM_SCS


@dataclass(frozen=True)
class SignalCategory:
    """A named group of output port signals.

    Attributes:
        name: human-readable identifier.
        width: number of signals (bits) in the category.
        group: coarse port group ("iside", "dside", "bus", "io",
            "trace", "wb", "branch", "status", "pfu", "sbuf").
    """

    name: str
    width: int
    group: str


def _bus_bytes(prefix: str, group: str) -> list[SignalCategory]:
    return [SignalCategory(f"{prefix}[{8 * i + 7}:{8 * i}]", 8, group) for i in range(4)]


def _bus_nibbles(prefix: str, group: str) -> list[SignalCategory]:
    return [SignalCategory(f"{prefix}[{4 * i + 3}:{4 * i}]", 4, group) for i in range(8)]


#: The 62 signal categories, in output-tuple order.
SIGNAL_CATEGORIES: tuple[SignalCategory, ...] = tuple(
    _bus_bytes("iaddr", "iside")
    + [SignalCategory("ivalid", 1, "iside"), SignalCategory("ipred", 1, "iside")]
    + _bus_nibbles("daddr", "dside")
    + _bus_nibbles("dwdata", "dside")
    + [SignalCategory("dctrl", 4, "dside"), SignalCategory("dstrb", 4, "dside")]
    + _bus_bytes("busaddr", "bus")
    + _bus_nibbles("busdata", "bus")
    + [SignalCategory("busctrl", 4, "bus")]
    + _bus_nibbles("ioout", "io")
    + [SignalCategory("iostrobe", 1, "io")]
    + _bus_bytes("retpc", "trace")
    + _bus_nibbles("retval", "trace")
    + [
        SignalCategory("retrd", 4, "trace"),
        SignalCategory("retvalid", 1, "trace"),
        SignalCategory("ev_sys", 2, "event"),
        SignalCategory("ev_br", 2, "event"),
    ]
)

assert len(SIGNAL_CATEGORIES) == NUM_SCS, "SC table must match CPU output tuple"

#: SC name -> index in the output tuple / DSR bit position.
SC_INDEX: dict[str, int] = {sc.name: i for i, sc in enumerate(SIGNAL_CATEGORIES)}

#: Total number of compared output port signals per CPU.
TOTAL_PORT_SIGNALS: int = sum(sc.width for sc in SIGNAL_CATEGORIES)


@dataclass(frozen=True)
class PortField:
    """One entry of the compact port tuple (:meth:`Cpu.port_state`).

    Attributes:
        name: the underlying interface register (or composite event).
        width: SC-visible bits of the entry.
        split: bits per signal category the entry expands into (equal
            to ``width`` when the entry is a single SC).
    """

    name: str
    width: int
    split: int

    @property
    def n_scs(self) -> int:
        """Signal categories this entry expands into."""
        return self.width // self.split


#: Layout of the compact port tuple, in tuple order.  Expanding each
#: entry into ``width // split`` little-endian ``split``-bit fields, in
#: order, reproduces :data:`SIGNAL_CATEGORIES` exactly.
PORT_FIELDS: tuple[PortField, ...] = (
    PortField("imc_addr", 32, 8),
    PortField("imc_valid", 1, 1),
    PortField("imc_pred", 1, 1),
    PortField("dmc_addr", 32, 4),
    PortField("dmc_wdata", 32, 4),
    PortField("dmc_ctrl", 4, 4),
    PortField("dmc_strb", 4, 4),
    PortField("bus_addr", 32, 8),
    PortField("bus_data", 32, 4),
    PortField("bus_ctrl", 4, 4),
    PortField("io_out", 32, 4),
    PortField("io_out_v", 1, 1),
    PortField("ret_pc", 32, 8),
    PortField("ret_val", 32, 4),
    PortField("ret_rd", 4, 4),
    PortField("ret_valid", 1, 1),
    PortField("ev_sys", 2, 2),   # (status & 1) | (halted << 1)
    PortField("ev_br", 2, 2),    # br_taken | (br_valid << 1)
)

assert len(PORT_FIELDS) == NUM_PORTS, "port layout must match CPU port tuple"
assert sum(f.n_scs for f in PORT_FIELDS) == NUM_SCS, \
    "port expansion must cover every signal category"


def expand_ports(ports: tuple[int, ...]) -> tuple[int, ...]:
    """Expand a compact port tuple into the canonical 62-SC vector.

    Bit-for-bit identical to :meth:`repro.cpu.core.Cpu.outputs` on the
    same state (tested property), and injective per entry, so two
    compact tuples are equal iff their expansions are.  This runs once
    per detected divergence, not once per cycle.
    """
    (ia, iv, ip, da, dw, dc, ds, ba, bd, bc, io, iov,
     rp, rv, rr, rvld, evs, evb) = ports
    return (
        ia & 0xFF, (ia >> 8) & 0xFF, (ia >> 16) & 0xFF, (ia >> 24) & 0xFF,
        iv,
        ip,
        da & 0xF, (da >> 4) & 0xF, (da >> 8) & 0xF, (da >> 12) & 0xF,
        (da >> 16) & 0xF, (da >> 20) & 0xF, (da >> 24) & 0xF, (da >> 28) & 0xF,
        dw & 0xF, (dw >> 4) & 0xF, (dw >> 8) & 0xF, (dw >> 12) & 0xF,
        (dw >> 16) & 0xF, (dw >> 20) & 0xF, (dw >> 24) & 0xF, (dw >> 28) & 0xF,
        dc,
        ds,
        ba & 0xFF, (ba >> 8) & 0xFF, (ba >> 16) & 0xFF, (ba >> 24) & 0xFF,
        bd & 0xF, (bd >> 4) & 0xF, (bd >> 8) & 0xF, (bd >> 12) & 0xF,
        (bd >> 16) & 0xF, (bd >> 20) & 0xF, (bd >> 24) & 0xF, (bd >> 28) & 0xF,
        bc,
        io & 0xF, (io >> 4) & 0xF, (io >> 8) & 0xF, (io >> 12) & 0xF,
        (io >> 16) & 0xF, (io >> 20) & 0xF, (io >> 24) & 0xF, (io >> 28) & 0xF,
        iov,
        rp & 0xFF, (rp >> 8) & 0xFF, (rp >> 16) & 0xFF, (rp >> 24) & 0xFF,
        rv & 0xF, (rv >> 4) & 0xF, (rv >> 8) & 0xF, (rv >> 12) & 0xF,
        (rv >> 16) & 0xF, (rv >> 20) & 0xF, (rv >> 24) & 0xF, (rv >> 28) & 0xF,
        rr,
        rvld,
        evs,
        evb,
    )


#: Compact-entry -> (first SC index, bits per SC, SC count), derived
#: from PORT_FIELDS: every entry expands into a contiguous run of
#: little-endian ``split``-bit signal categories.
_FIELD_SC_RUNS: tuple[tuple[int, int, int], ...] = tuple(
    (base, f.split, f.n_scs)
    for base, f in zip(
        [sum(g.n_scs for g in PORT_FIELDS[:k]) for k in range(NUM_PORTS)],
        PORT_FIELDS)
)


@lru_cache(maxsize=1 << 16)
def diverged_ports(ports_a: tuple[int, ...], ports_b: tuple[int, ...]) -> frozenset[int]:
    """Diverged SC set of two *compact* port tuples.

    Equivalent to ``diverged_set(expand_ports(a), expand_ports(b))``
    (tested property) — the lazy-expansion entry point the injection
    engine and checkers use at the detection event.  Entries that
    compare equal are skipped without expansion: a detection typically
    differs in one or two of the 18 compact entries, so only their SC
    runs are field-tested (via XOR — a ``split``-bit field diverges iff
    its XOR field is nonzero).  Memoized: a campaign detects the same
    handful of divergence patterns thousands of times, and the result
    is an immutable frozenset, safe to share.
    """
    diverged = []
    for (a, b), (base, split, n_scs) in zip(
            zip(ports_a, ports_b), _FIELD_SC_RUNS):
        delta = a ^ b
        if not delta:
            continue
        mask = (1 << split) - 1
        for j in range(n_scs):
            if (delta >> (j * split)) & mask:
                diverged.append(base + j)
    return frozenset(diverged)


def diverged_set(outputs_a: tuple[int, ...], outputs_b: tuple[int, ...]) -> frozenset[int]:
    """SC indices where two output port vectors disagree.

    This is the diverged SC set of paper Fig. 3c; an empty set means
    the cores are in lockstep this cycle.
    """
    return frozenset(i for i, (a, b) in enumerate(zip(outputs_a, outputs_b)) if a != b)


def dsr_value(diverged: frozenset[int]) -> int:
    """Pack a diverged SC set into the DSR's bit representation."""
    value = 0
    for idx in diverged:
        value |= 1 << idx
    return value


def dsr_to_set(value: int) -> frozenset[int]:
    """Unpack a DSR bit value back into a diverged SC set."""
    return frozenset(i for i in range(NUM_SCS) if (value >> i) & 1)
