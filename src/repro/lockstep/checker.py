"""The lockstep error checker.

The checker sits at the sphere-of-replication boundary: it compares the
output ports of the redundant CPUs every cycle, OR-reduces each signal
category and raises the error signal on the first divergence.  When the
error fires it freezes the Divergence Status Register (DSR) with the
diverged-SC bitmap of the detection cycle — the raw material of the
error correlation predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cpu.core import NUM_SCS
from .categories import diverged_ports, diverged_set, dsr_value, expand_ports


def port_equal(outputs_a: tuple[int, ...], outputs_b: tuple[int, ...]) -> bool:
    """The checker's per-cycle comparison: are the two port vectors equal?

    A module-level hook on purpose: both checkers resolve it at call
    time through this module's globals, so the mutation-testing harness
    (:mod:`repro.verify.mutation`) can plant a broken comparator — a
    dropped port comparison, a masked bit — and measure whether the
    fault-fuzz flow notices.  Production semantics are exact tuple
    equality over whatever representation arrived (compact port tuples
    or 62-SC vectors; both sides must match).
    """
    return outputs_a == outputs_b


def checker_diverged(outputs_a: tuple[int, ...],
                     outputs_b: tuple[int, ...]) -> frozenset[int]:
    """Diverged SC set the checker freezes into the DSR on detection.

    Like :func:`port_equal`, a late-bound mutation hook: ``diverged_set``
    is looked up in this module's globals so a planted off-by-one in the
    SC extraction is observable through every checker-driven flow.
    """
    return diverged_set(_as_sc_vector(outputs_a), _as_sc_vector(outputs_b))


def vote_value(values: tuple[int, ...]) -> int:
    """Majority vote over one signal's per-core values.

    The voter's value-resolution kernel — per signal category on the
    expanded path, per compact entry on the fast path.  Like
    :func:`port_equal`, a module-level mutation hook: both voting paths
    resolve it through this module's globals at call time, so a planted
    broken majority (picking the minimum, say) is observable through
    every voter-driven flow regardless of which representation the
    error cycle happened to use.
    """
    return max(set(values), key=values.count)


def _as_sc_vector(outputs: tuple[int, ...]) -> tuple[int, ...]:
    """Normalise checker input to the 62-SC vector.

    ``Cpu.step()`` hands the checkers compact port tuples; legacy
    callers (and the DSR tests) pass 62-SC vectors directly.  Only the
    divergence path pays for this — the per-cycle equality fast path
    compares whatever representation arrived, which is sound because
    compact-tuple equality is equivalent to SC-tuple equality.
    """
    if len(outputs) != NUM_SCS:
        return expand_ports(outputs)
    return outputs


@dataclass
class CheckerState:
    """Latched result of a lockstep comparison."""

    error: bool = False
    error_cycle: int | None = None
    dsr: int = 0
    diverged: frozenset[int] = field(default_factory=frozenset)
    #: In MMR configurations, the ID of the erring CPU (None in DMR).
    erring_cpu: int | None = None
    #: In MMR configurations, the voter's resolved output of the error
    #: cycle — a compact port tuple when the cores handed the checker
    #: compact tuples, a 62-SC vector otherwise (None in DMR).  This is
    #: the value forward recovery would drive into the erring core's
    #: boundary, held for the error handler like the DSR.
    voted: tuple[int, ...] | None = None


class LockstepChecker:
    """Cycle-by-cycle comparator for two output port vectors (DMR).

    Once an error is latched, further comparisons are ignored until
    :meth:`reset` — exactly like hardware, where the checker stops the
    CPUs and holds the DSR for the error handler to read.
    """

    def __init__(self) -> None:
        self.state = CheckerState()
        self._cycle = 0

    def reset(self) -> None:
        """Clear the latched error and the DSR."""
        self.state = CheckerState()
        self._cycle = 0

    def compare(self, outputs_a: tuple[int, ...], outputs_b: tuple[int, ...]) -> bool:
        """Compare one cycle's outputs; returns True if an error latched.

        Accepts either compact port tuples (what ``Cpu.step()`` returns)
        or expanded 62-SC vectors; both sides must use the same
        representation.  Signal categories are only materialised on the
        cycle the error latches.
        """
        if self.state.error:
            return True
        if not port_equal(outputs_a, outputs_b):
            diverged = checker_diverged(outputs_a, outputs_b)
            self.state = CheckerState(
                error=True,
                error_cycle=self._cycle,
                dsr=dsr_value(diverged),
                diverged=diverged,
            )
            self._cycle += 1
            return True
        self._cycle += 1
        return False


class VotingChecker:
    """Majority-voting comparator for three or more cores (MMR/TMR).

    Unlike the DMR checker, the voter identifies the erring CPU: the
    core whose outputs disagree with the per-SC majority.  The diverged
    SC set is taken between the erring core and the voted value.
    """

    def __init__(self, n_cores: int = 3) -> None:
        if n_cores < 3:
            raise ValueError("voting requires at least three cores")
        self.n_cores = n_cores
        self.state = CheckerState()
        self._cycle = 0

    def reset(self) -> None:
        """Clear the latched error."""
        self.state = CheckerState()
        self._cycle = 0

    def vote(self, outputs: list[tuple[int, ...]]) -> tuple[int, ...]:
        """Per-SC majority value across cores (62-SC vectors)."""
        voted = []
        for sc in range(NUM_SCS):
            values = tuple(o[sc] for o in outputs)
            voted.append(vote_value(values))
        return tuple(voted)

    def vote_ports(self, outputs: list[tuple[int, ...]]) -> tuple[int, ...] | None:
        """Per-entry majority over *compact* port tuples.

        Returns None unless every entry has a strict majority (more
        than half the cores agree on the whole entry).  When it exists,
        the per-entry majority expands bit-for-bit to the per-SC
        majority — an entry whose value ``v`` holds a strict majority
        holds that majority in every one of its SC bit fields — so the
        compact vote is exact, not an approximation.  The resolved
        value itself still flows through the :func:`vote_value` hook so
        a mutated majority is observable on this path too.
        """
        n = len(outputs[0])
        voted = []
        for i in range(n):
            values = tuple(o[i] for o in outputs)
            majority = None
            for v in values:
                if 2 * values.count(v) > len(values):
                    majority = v
                    break
            if majority is None:
                return None
            voted.append(vote_value(values))
        return tuple(voted)

    def compare(self, outputs: list[tuple[int, ...]]) -> bool:
        """Compare one cycle across all cores; returns True on error.

        Accepts compact port tuples or expanded 62-SC vectors (uniform
        across cores).  The all-agree fast path never expands.  On the
        error cycle, compact inputs vote at compact-entry granularity
        (exact whenever a strict per-entry majority exists — always the
        case for a single erring core) and only the diverged entries'
        SC runs are materialised; the full 62-SC expansion runs solely
        for legacy expanded inputs or a no-majority (multi-core
        Byzantine) cycle.  Both paths latch identical state
        (equivalence pinned by tests).
        """
        if self.state.error:
            return True
        if len(outputs) != self.n_cores:
            raise ValueError(f"expected {self.n_cores} output vectors")
        if all(port_equal(o, outputs[0]) for o in outputs[1:]):
            self._cycle += 1
            return False
        voted = None
        if len(outputs[0]) != NUM_SCS:
            voted = self.vote_ports(outputs)
        if voted is not None:
            # Erring core = most diverged SCs vs the vote; the memoized
            # XOR field test counts SCs without expanding equal entries.
            diffs_of = [len(diverged_ports(o, voted)) for o in outputs]
            diverged_from = checker_diverged
        else:
            outputs = [_as_sc_vector(o) for o in outputs]
            voted = self.vote(outputs)
            diffs_of = [sum(1 for a, b in zip(o, voted) if a != b)
                        for o in outputs]
            diverged_from = diverged_set
        erring = None
        worst = -1
        for cpu_id, diffs in enumerate(diffs_of):
            if diffs > worst:
                worst = diffs
                erring = cpu_id if diffs else erring
        diverged = diverged_from(outputs[erring], voted)
        self.state = CheckerState(
            error=True,
            error_cycle=self._cycle,
            dsr=dsr_value(diverged),
            diverged=diverged,
            erring_cpu=erring,
            voted=voted,
        )
        self._cycle += 1
        return True
