"""Dual-modular-redundant (DMR) CPU-level lockstep processor.

Two SR5 cores execute the same program from identically initialised
state.  The caches/memory sit outside the sphere of replication, so
each core owns a private copy of the memory image (in silicon a single
ECC-protected memory is driven by the checked outputs; private copies
are behaviourally equivalent because any differing store manifests on
the output ports in the same cycle it would reach memory, which latches
the error and stops both cores).  Inputs are replicated: both cores
sample the same deterministic stimulus stream.
"""

from __future__ import annotations

from ..cpu.assembler import Program
from ..cpu.core import Cpu
from ..cpu.memory import InputStream, Memory
from .categories import expand_ports
from .checker import CheckerState, LockstepChecker


class DmrLockstep:
    """A dual-core lockstep processor with a cycle-level error checker."""

    def __init__(self, program: Program, stimulus: InputStream | None = None,
                 mem_words: int | None = None):
        kwargs = {} if mem_words is None else {"size_words": mem_words}
        stimulus = stimulus if stimulus is not None else InputStream()
        mem_a = Memory.from_program(program, **kwargs)
        mem_b = Memory.from_program(program, **kwargs)
        self.core_a = Cpu(mem_a, stimulus, entry=program.entry)
        self.core_b = Cpu(mem_b, stimulus, entry=program.entry)
        self.checker = LockstepChecker()
        self.cycle = 0
        self.stopped = False
        #: The 62-SC output vectors of the error cycle (held for the
        #: error handler, like frozen checker inputs; expanded from the
        #: compact port tuples only when the error latches).
        self.error_outputs: tuple[tuple[int, ...], tuple[int, ...]] | None = None

    @property
    def cores(self) -> tuple[Cpu, Cpu]:
        """Both cores (main, redundant)."""
        return (self.core_a, self.core_b)

    @property
    def error(self) -> CheckerState:
        """The checker's latched state."""
        return self.checker.state

    def step(self) -> bool:
        """Advance one lockstep cycle; returns True once an error latches.

        After an error the cores are stopped (the system controller
        must reset them), so further steps are no-ops.
        """
        if self.stopped:
            return self.checker.state.error
        out_a = self.core_a.step()
        out_b = self.core_b.step()
        self.cycle += 1
        if self.checker.compare(out_a, out_b):
            self.stopped = True
            self.error_outputs = (expand_ports(out_a), expand_ports(out_b))
            return True
        return False

    def run(self, max_cycles: int = 1_000_000) -> CheckerState:
        """Run until an error, both cores halt, or the cycle bound."""
        for _ in range(max_cycles):
            if self.stopped:
                break
            if self.core_a.halted and self.core_b.halted:
                break
            self.step()
        return self.checker.state

    def reset(self, program: Program) -> None:
        """System-controller reset: reload and restart both cores.

        This models the paper's soft error handling path: both cores
        are brought back to the identical reset state and the real-time
        task restarts from its outer loop.
        """
        for core in self.cores:
            core.mem.words[: len(program.words)] = program.words
            core.reset(program.entry)
        self.checker.reset()
        self.cycle = 0
        self.stopped = False
        self.error_outputs = None
