"""Dynamic lockstep: seeded split/locked mode schedules.

Real deployments do not run the comparator continuously.  Doran's
"Dynamic Lockstep Processors" switches a core pair between a *split*
performance mode (no comparison — the cores run independent work or
save energy) and a *locked* safety mode (cycle-by-cycle comparison),
and FlexStep-style designs add *on-demand check windows*: short locked
bursts requested by software inside an otherwise split region (e.g.
around a critical store).  Divergence that manifests inside a split
window is invisible until the next locked cycle — the fault-fuzz
harness uses this module as a scenario axis to measure how detection,
latency and escapes degrade with the comparison duty cycle.

The schedule is a pure function of its inputs (an explicit window list
or a seeded RNG draw), so scenario results stay bit-identical for any
worker count, exactly like the fault schedules.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from ..cpu.assembler import Program
from ..cpu.core import Cpu
from ..cpu.memory import InputStream, Memory
from .checker import CheckerState, LockstepChecker

#: Window kinds.  ``check`` windows are locked windows that exist
#: because software asked for one (FlexStep on-demand checking); the
#: checker treats them identically to scheduled locked windows, the
#: distinction only matters for reporting.
LOCKED, SPLIT, CHECK = "locked", "split", "check"


@dataclass(frozen=True)
class ModeWindow:
    """One contiguous run of cycles in a single comparison mode."""

    start: int
    length: int
    kind: str           #: "locked" | "split" | "check"

    @property
    def end(self) -> int:
        """First cycle after the window."""
        return self.start + self.length

    @property
    def locked(self) -> bool:
        return self.kind != SPLIT


class ModeSchedule:
    """An immutable split/locked window sequence over a cycle horizon.

    Cycles at or beyond the horizon are **locked**: a core pair that
    overruns its schedule (e.g. a faulty core running past the golden
    halt) falls back to the safe mode rather than escaping comparison
    forever.
    """

    def __init__(self, windows: list[ModeWindow] | tuple[ModeWindow, ...]):
        windows = tuple(w for w in windows if w.length > 0)
        cursor = 0
        for w in windows:
            if w.start != cursor:
                raise ValueError(f"window at {w.start} leaves a gap/overlap "
                                 f"(expected start {cursor})")
            cursor = w.end
        self.windows = windows
        self.horizon = cursor
        self._starts = [w.start for w in windows]

    @classmethod
    def always_locked(cls) -> "ModeSchedule":
        """The degenerate 100%-duty schedule (classic static lockstep)."""
        return cls(())

    def window_at(self, cycle: int) -> ModeWindow | None:
        """The window covering ``cycle``; None beyond the horizon."""
        if cycle < 0:
            raise ValueError("cycle must be non-negative")
        if cycle >= self.horizon:
            return None
        return self.windows[bisect_right(self._starts, cycle) - 1]

    def locked_at(self, cycle: int) -> bool:
        """Is the comparator active on ``cycle``?"""
        window = self.window_at(cycle)
        return True if window is None else window.locked

    def next_locked(self, cycle: int) -> int:
        """First cycle >= ``cycle`` on which the comparator is active."""
        window = self.window_at(cycle)
        while window is not None and not window.locked:
            cycle = window.end
            window = self.window_at(cycle)
        return cycle

    def with_check(self, cycle: int, length: int) -> "ModeSchedule":
        """FlexStep on-demand request: a locked check window at ``cycle``.

        Returns a new schedule with ``[cycle, cycle + length)`` forced
        to ``check`` mode; locked spans already covering part of the
        range stay locked.  Requests beyond the horizon are no-ops
        (post-horizon cycles are locked anyway).
        """
        if length <= 0 or cycle >= self.horizon:
            return self
        lo, hi = cycle, min(cycle + length, self.horizon)
        out: list[ModeWindow] = []
        for w in self.windows:
            if w.end <= lo or w.start >= hi or w.locked:
                out.append(w)
                continue
            # A split window intersecting the request: carve it up.
            if w.start < lo:
                out.append(ModeWindow(w.start, lo - w.start, SPLIT))
            out.append(ModeWindow(max(w.start, lo),
                                  min(w.end, hi) - max(w.start, lo), CHECK))
            if w.end > hi:
                out.append(ModeWindow(hi, w.end - hi, SPLIT))
        return ModeSchedule(out)

    def locked_cycles(self) -> int:
        """Locked (comparing) cycles within the horizon."""
        return sum(w.length for w in self.windows if w.locked)

    @property
    def duty(self) -> float:
        """Fraction of in-horizon cycles the comparator is active."""
        if not self.horizon:
            return 1.0
        return self.locked_cycles() / self.horizon

    def __repr__(self) -> str:
        return (f"ModeSchedule({len(self.windows)} windows, "
                f"horizon={self.horizon}, duty={self.duty:.2f})")


def sample_schedule(rng, n_cycles: int, duty: float, *,
                    min_window: int = 8, max_window: int = 64,
                    check_rate: float = 0.25,
                    check_length: int = 4) -> ModeSchedule:
    """Draw a seeded split/locked schedule targeting a duty cycle.

    Alternating locked/split windows: each locked window's length is
    uniform in ``[min_window, max_window]`` and the following split
    window is sized so the local ratio matches ``duty``.  With
    probability ``check_rate`` a split window carries an embedded
    on-demand check window of ``check_length`` cycles at a uniform
    offset — the FlexStep pattern of software requesting a comparison
    burst mid-split.  ``duty=1.0`` degenerates to always-locked.

    ``rng`` is any ``numpy.random.Generator``; callers key it per
    scenario (see :data:`repro.faults.streams.MODE_STREAM`).
    """
    if not 0.0 < duty <= 1.0:
        raise ValueError(f"duty must be in (0, 1], got {duty}")
    if duty >= 1.0 or n_cycles <= 0:
        return ModeSchedule.always_locked()
    windows: list[ModeWindow] = []
    cursor = 0
    while cursor < n_cycles:
        locked_len = int(rng.integers(min_window, max_window + 1))
        windows.append(ModeWindow(cursor, locked_len, LOCKED))
        cursor += locked_len
        if cursor >= n_cycles:
            break
        split_len = max(1, round(locked_len * (1.0 - duty) / duty))
        if float(rng.random()) < check_rate and split_len > 2 * check_length:
            # Embed the on-demand check window inside the split span.
            offset = int(rng.integers(1, split_len - check_length))
            windows.append(ModeWindow(cursor, offset, SPLIT))
            windows.append(ModeWindow(cursor + offset, check_length, CHECK))
            windows.append(ModeWindow(cursor + offset + check_length,
                                      split_len - offset - check_length,
                                      SPLIT))
        else:
            windows.append(ModeWindow(cursor, split_len, SPLIT))
        cursor += split_len
    # Trim the tail to the horizon so duty stays honest.
    trimmed: list[ModeWindow] = []
    for w in windows:
        if w.start >= n_cycles:
            break
        trimmed.append(ModeWindow(w.start, min(w.end, n_cycles) - w.start,
                                  w.kind))
    return ModeSchedule(trimmed)


class DynamicDmrLockstep:
    """A DMR pair whose checker only runs during locked windows.

    Behaviourally identical to :class:`~repro.lockstep.dmr.DmrLockstep`
    under :meth:`ModeSchedule.always_locked`; under a partial-duty
    schedule, divergence during split windows goes unobserved until the
    next locked (or on-demand check) cycle.  ``error_cycle`` of the
    latched state is the *wall* cycle of detection, not the count of
    compared cycles.
    """

    def __init__(self, program: Program, schedule: ModeSchedule,
                 stimulus: InputStream | None = None):
        stimulus = stimulus if stimulus is not None else InputStream()
        self.schedule = schedule
        self.core_a = Cpu(Memory.from_program(program), stimulus,
                          entry=program.entry)
        self.core_b = Cpu(Memory.from_program(program), stimulus,
                          entry=program.entry)
        self.checker = LockstepChecker()
        self.cycle = 0
        self.stopped = False

    @property
    def cores(self) -> tuple[Cpu, Cpu]:
        return (self.core_a, self.core_b)

    @property
    def error(self) -> CheckerState:
        return self.checker.state

    def step(self) -> bool:
        """Advance one cycle; compare only when the schedule says so."""
        if self.stopped:
            return self.checker.state.error
        out_a = self.core_a.step()
        out_b = self.core_b.step()
        compared = self.schedule.locked_at(self.cycle)
        self.cycle += 1
        if compared and self.checker.compare(out_a, out_b):
            # Re-latch with the wall-clock detection cycle: the checker
            # counted only the cycles it actually compared.
            self.checker.state.error_cycle = self.cycle - 1
            self.stopped = True
            return True
        return False

    def run(self, max_cycles: int = 1_000_000) -> CheckerState:
        """Run until an error, both cores halt, or the cycle bound."""
        for _ in range(max_cycles):
            if self.stopped:
                break
            if self.core_a.halted and self.core_b.halted:
                break
            self.step()
        return self.checker.state
