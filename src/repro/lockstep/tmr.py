"""Triple-modular-redundant (TMR) CPU-level lockstep processor.

Three cores vote per signal category.  Unlike DMR the voter identifies
the erring core, and — if the error is known (or predicted) to be soft
— the system can *forward-recover*: the two agreeing cores keep the
correct architectural state, the erring core is reset and re-synced,
and execution continues without a full task restart (paper Section II
and the TCLS reference [16]).
"""

from __future__ import annotations

from ..cpu.assembler import Program
from ..cpu.core import Cpu
from ..cpu.memory import InputStream, Memory
from .checker import CheckerState, VotingChecker


class TmrLockstep:
    """A triple-core lockstep processor with a majority-voting checker."""

    def __init__(self, program: Program, stimulus: InputStream | None = None):
        stimulus = stimulus if stimulus is not None else InputStream()
        self.program = program
        self.cores = tuple(
            Cpu(Memory.from_program(program), stimulus, entry=program.entry)
            for _ in range(3)
        )
        self.checker = VotingChecker(3)
        self.cycle = 0
        self.stopped = False

    @property
    def error(self) -> CheckerState:
        """The voter's latched state (includes the erring CPU id)."""
        return self.checker.state

    def step(self) -> bool:
        """Advance one lockstep cycle; returns True once an error latches.

        The voter's agreement fast path runs on the compact port tuples
        ``step()`` returns; per-SC majority voting happens only on the
        error cycle, after lazy expansion inside the checker.
        """
        if self.stopped:
            return self.checker.state.error
        outs = [core.step() for core in self.cores]
        self.cycle += 1
        if self.checker.compare(outs):
            self.stopped = True
            return True
        return False

    def run(self, max_cycles: int = 1_000_000) -> CheckerState:
        """Run until an error, all cores halt, or the cycle bound."""
        for _ in range(max_cycles):
            if self.stopped:
                break
            if all(core.halted for core in self.cores):
                break
            self.step()
        return self.checker.state

    def forward_recover(self) -> int:
        """Re-sync the erring core from an agreeing core and continue.

        Returns the id of the recovered core.  This models the paper's
        MMR forward recovery: the correct architectural state is saved
        by majority vote and restored into the erring core, bringing
        all three back into lockstep without restarting the task.
        """
        state = self.checker.state
        if not state.error or state.erring_cpu is None:
            raise RuntimeError("no latched error to recover from")
        erring = state.erring_cpu
        donor = (erring + 1) % 3
        self.cores[erring].restore(self.cores[donor].snapshot())
        self.cores[erring].mem.words[:] = self.cores[donor].mem.words
        self.checker.reset()
        self.stopped = False
        return erring
