"""Error reaction: strategies, context, and LERT evaluation."""

from .context import (
    RESET_PENALTY_CYCLES,
    ReactionContext,
    build_context,
    manifestation_order,
)
from .lert import StrategyResult, evaluate_strategies, evaluate_strategy, merge_results
from .system_controller import (
    AvailabilityModel,
    DeadlineViolation,
    ReactionLogEntry,
    SystemController,
    SystemState,
)
from .strategies import (
    BaseAscending,
    BaseManifest,
    BaseRandom,
    PredCombined,
    PredLocationOnly,
    Reaction,
    ReactionStrategy,
    baseline_strategies,
)

__all__ = [
    "RESET_PENALTY_CYCLES", "ReactionContext", "build_context", "manifestation_order",
    "StrategyResult", "evaluate_strategies", "evaluate_strategy", "merge_results",
    "BaseAscending", "BaseManifest", "BaseRandom", "PredCombined",
    "PredLocationOnly", "Reaction", "ReactionStrategy", "baseline_strategies",
    "AvailabilityModel", "DeadlineViolation", "ReactionLogEntry",
    "SystemController", "SystemState",
]
