"""Shared context for error reaction strategies."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bist.stl import StlModel
from ..faults.campaign import CampaignResult
from ..faults.models import ErrorRecord

#: Cycles to reset the lockstep CPUs and re-synchronise their state
#: before the real-time task restarts.
RESET_PENALTY_CYCLES = 500


@dataclass
class ReactionContext:
    """Everything a reaction strategy needs besides the error itself.

    Attributes:
        stl: the STL latency model for the active taxonomy.
        fine: taxonomy selector (must match the STL model).
        restart_cycles: per-benchmark restart latency — CPU reset plus
            re-running the task's outer loop (paper Table II, from
            measurement).
        manifest_order: units in descending error manifestation rate,
            for the base-manifest strategy.
        rng: randomness source for base-random and truncated-order
            completion.
    """

    stl: StlModel
    fine: bool
    restart_cycles: dict[str, int]
    manifest_order: tuple[str, ...]
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def restart(self, record: ErrorRecord) -> int:
        """Restart latency for the benchmark the error occurred in."""
        return self.restart_cycles[record.benchmark]


def manifestation_order(result: CampaignResult, fine: bool) -> tuple[str, ...]:
    """Units sorted by descending error manifestation rate.

    The rate is a design-time property of the CPU (measured over the
    whole campaign), which is exactly what the paper's base-manifest
    strategy assumes is known.
    """
    from ..cpu.units import COARSE_UNITS, FINE_UNITS, coarse_unit

    units = FINE_UNITS if fine else COARSE_UNITS
    injected = {u: 0 for u in units}
    for (unit, _kind), count in result.injected.items():
        injected[unit if fine else coarse_unit(unit)] += count
    manifested = {u: 0 for u in units}
    for record in result.records:
        manifested[record.unit_for(fine)] += 1
    rates = {u: (manifested[u] / injected[u] if injected[u] else 0.0) for u in units}
    return tuple(sorted(units, key=lambda u: -rates[u]))


def build_context(result: CampaignResult, fine: bool = False,
                  seed: int = 0, coverage: float = 1.0) -> ReactionContext:
    """Construct the standard reaction context from a campaign."""
    return ReactionContext(
        stl=StlModel(fine=fine, coverage=coverage),
        fine=fine,
        restart_cycles={
            bench: RESET_PENALTY_CYCLES + cycles
            for bench, cycles in result.golden_cycles.items()
        },
        manifest_order=manifestation_order(result, fine),
        rng=np.random.default_rng(seed),
    )
