"""LERT evaluation: average reaction time per error, per strategy."""

from __future__ import annotations

from dataclasses import dataclass

from ..faults.models import ErrorRecord
from .context import ReactionContext
from .strategies import ReactionStrategy


@dataclass(frozen=True)
class StrategyResult:
    """Aggregate performance of one strategy over a test error set.

    These are the quantities annotated on the paper's Figures 11/14:
    the average LERT per error (bar height and parenthesised number)
    and the average number of tested units (first red number).
    """

    name: str
    mean_lert: float
    mean_tested_units: float
    sbist_invocation_rate: float
    n_errors: int

    def speedup_vs(self, other: "StrategyResult") -> float:
        """Fractional LERT reduction relative to ``other`` (paper's %)."""
        if other.mean_lert == 0:
            return 0.0
        return 1.0 - self.mean_lert / other.mean_lert


def evaluate_strategy(strategy: ReactionStrategy, records: list[ErrorRecord],
                      ctx: ReactionContext) -> StrategyResult:
    """Average a strategy's reaction over a test error dataset."""
    if not records:
        return StrategyResult(strategy.name, 0.0, 0.0, 0.0, 0)
    total_lert = 0
    total_tested = 0
    invoked = 0
    for record in records:
        reaction = strategy.react(record, ctx)
        total_lert += reaction.lert
        total_tested += reaction.tested_units
        invoked += reaction.sbist_invoked
    n = len(records)
    return StrategyResult(
        name=strategy.name,
        mean_lert=total_lert / n,
        mean_tested_units=total_tested / n,
        sbist_invocation_rate=invoked / n,
        n_errors=n,
    )


def evaluate_strategies(strategies: list[ReactionStrategy],
                        records: list[ErrorRecord],
                        ctx: ReactionContext) -> dict[str, StrategyResult]:
    """Evaluate several strategies over the same test errors."""
    return {s.name: evaluate_strategy(s, records, ctx) for s in strategies}


def merge_results(parts: list[StrategyResult]) -> StrategyResult:
    """Error-count-weighted merge across cross-validation folds."""
    parts = [p for p in parts if p.n_errors]
    if not parts:
        return StrategyResult("empty", 0.0, 0.0, 0.0, 0)
    n = sum(p.n_errors for p in parts)
    return StrategyResult(
        name=parts[0].name,
        mean_lert=sum(p.mean_lert * p.n_errors for p in parts) / n,
        mean_tested_units=sum(p.mean_tested_units * p.n_errors for p in parts) / n,
        sbist_invocation_rate=sum(p.sbist_invocation_rate * p.n_errors for p in parts) / n,
        n_errors=n,
    )
