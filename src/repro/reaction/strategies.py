"""Error reaction strategies: the paper's three baselines and two
prediction models (Figure 9).

Every strategy consumes one detected lockstep error and returns the
lockstep error reaction time (LERT) it would incur: the cycles from
error detection to the safe state.  The safe state is reached either
when SBIST locates a hard fault (the system reports an unrecoverable
failure) or when the error is treated as soft and the CPUs have been
reset and the task restarted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bist.sbist import SbistEngine
from ..core.predictor import ErrorCorrelationPredictor
from ..faults.models import ErrorRecord, ErrorType
from .context import ReactionContext


@dataclass(frozen=True)
class Reaction:
    """Outcome of handling one error.

    Attributes:
        lert: cycles from detection to safe state.
        tested_units: STLs executed before reaching the safe state.
        sbist_invoked: whether the SBIST process ran at all.
        diagnosed_hard: whether the system concluded the error was hard.
    """

    lert: int
    tested_units: int
    sbist_invoked: bool
    diagnosed_hard: bool


class ReactionStrategy:
    """Base class: subclasses provide the SBIST unit order policy."""

    name: str = "abstract"

    def react(self, record: ErrorRecord, ctx: ReactionContext) -> Reaction:
        """Handle one error; see Figure 9a for the baseline flow."""
        order = self.order(record, ctx)
        return self._run_sbist(record, ctx, order, extra=0)

    def order(self, record: ErrorRecord, ctx: ReactionContext) -> tuple[str, ...]:
        """The SBIST unit test order for this error."""
        raise NotImplementedError

    @staticmethod
    def _run_sbist(record: ErrorRecord, ctx: ReactionContext,
                   order: tuple[str, ...], extra: int) -> Reaction:
        engine = SbistEngine(ctx.stl, ctx.rng)
        faulty = record.unit_for(ctx.fine) if record.error_type is ErrorType.HARD else None
        outcome = engine.run(order, faulty)
        lert = extra + outcome.cycles
        if not outcome.found:
            # No hard fault found: the error was soft; reset and restart.
            lert += ctx.restart(record)
        return Reaction(lert=lert, tested_units=outcome.tested_units,
                        sbist_invoked=True, diagnosed_hard=outcome.found)


class BaseRandom(ReactionStrategy):
    """Baseline: a fresh pseudo-random unit order per detected error."""

    name = "base-random"

    def order(self, record: ErrorRecord, ctx: ReactionContext) -> tuple[str, ...]:
        units = ctx.stl.units
        perm = ctx.rng.permutation(len(units))
        return tuple(units[i] for i in perm)


class BaseAscending(ReactionStrategy):
    """Baseline: units in ascending order of STL latency."""

    name = "base-ascending"

    def order(self, record: ErrorRecord, ctx: ReactionContext) -> tuple[str, ...]:
        return ctx.stl.ascending_order()


class BaseManifest(ReactionStrategy):
    """Baseline: units in descending order of manifestation rate."""

    name = "base-manifest"

    def order(self, record: ErrorRecord, ctx: ReactionContext) -> tuple[str, ...]:
        return ctx.manifest_order


class PredLocationOnly(ReactionStrategy):
    """Location-only prediction model (Figure 9b).

    Identical flow to the baselines, but the SBIST starts from the
    most likely faulty unit according to the prediction table.  The
    table access latency is added to the LERT.
    """

    name = "pred-location-only"

    def __init__(self, predictor: ErrorCorrelationPredictor):
        self.predictor = predictor

    def order(self, record: ErrorRecord, ctx: ReactionContext) -> tuple[str, ...]:
        predicted = self.predictor.predict(record.diverged).units
        return SbistEngine(ctx.stl, ctx.rng).complete_order(predicted)

    def react(self, record: ErrorRecord, ctx: ReactionContext) -> Reaction:
        order = self.order(record, ctx)
        return self._run_sbist(record, ctx, order,
                               extra=self.predictor.access_cycles)


class PredCombined(ReactionStrategy):
    """Combined location and type prediction model (Figure 9c).

    A predicted-soft error skips SBIST entirely: reset and restart.
    If the error was actually hard it recurs after the restart; the
    second error is *always* treated as hard (ignoring its type
    prediction), and SBIST runs in the predicted order — so safety is
    never compromised, only a bounded extra delay is paid.
    """

    name = "pred-comb"

    def __init__(self, predictor: ErrorCorrelationPredictor):
        self.predictor = predictor

    def order(self, record: ErrorRecord, ctx: ReactionContext) -> tuple[str, ...]:
        predicted = self.predictor.predict(record.diverged).units
        return SbistEngine(ctx.stl, ctx.rng).complete_order(predicted)

    def react(self, record: ErrorRecord, ctx: ReactionContext) -> Reaction:
        access = self.predictor.access_cycles
        prediction = self.predictor.predict(record.diverged)
        if prediction.error_type is ErrorType.SOFT:
            lert = access + ctx.restart(record)
            if record.error_type is ErrorType.SOFT:
                # Correct prediction: safe state reached by restart alone.
                return Reaction(lert=lert, tested_units=0,
                                sbist_invoked=False, diagnosed_hard=False)
            # Misprediction: the stuck-at recurs after the restart; the
            # re-manifestation costs the error's detection latency again,
            # then SBIST runs in the predicted order.
            lert += record.latency + access
            sbist = self._run_sbist(record, ctx, self.order(record, ctx), extra=0)
            return Reaction(lert=lert + sbist.lert,
                            tested_units=sbist.tested_units,
                            sbist_invoked=True,
                            diagnosed_hard=sbist.diagnosed_hard)
        return self._run_sbist(record, ctx, self.order(record, ctx), extra=access)


def baseline_strategies() -> list[ReactionStrategy]:
    """The paper's three baselines, in presentation order."""
    return [BaseRandom(), BaseAscending(), BaseManifest()]
