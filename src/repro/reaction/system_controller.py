"""The safety-critical system controller: the safe-state machine.

Models the paper's Figure 2 timeline end to end.  The controller owns
a lockstep processor and walks the states::

    RUNNING --error--> DETECTED --read PTAR--> PREDICTED
        --type=soft--> RESTARTING --ok--> RUNNING
        --type=hard--> DIAGNOSING --fault found--> FAILED (safe state)
                                  --nothing found--> RESTARTING

Error *reaction* time (detection to safe state) is statically
provisioned for the worst case; any run-time reduction is banked as
availability.  :class:`AvailabilityModel` turns per-error LERT into
the paper's headline metric (a 42-65% availability increase).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..bist.sbist import SbistEngine
from ..bist.stl import StlModel
from ..core.predictor import ErrorCorrelationPredictor
from ..cpu.memory import InputStream
from ..faults.models import ErrorType
from ..lockstep.dmr import DmrLockstep
from ..workloads.kernels import Workload
from ..workloads.runner import build
from .context import RESET_PENALTY_CYCLES


class SystemState(enum.Enum):
    """States of the safe-state machine."""

    RUNNING = "running"
    DETECTED = "detected"
    PREDICTED = "predicted"
    DIAGNOSING = "diagnosing"
    RESTARTING = "restarting"
    FAILED = "failed"          # hard fault confirmed: terminal safe state


@dataclass
class ReactionLogEntry:
    """One handled error, as logged by the controller."""

    cycle: int
    dsr: frozenset
    predicted_type: ErrorType
    predicted_units: tuple[str, ...]
    diagnosed_hard: bool
    reaction_cycles: int


@dataclass
class SystemController:
    """Drives a DMR lockstep processor through error handling.

    Args:
        workload: the real-time task.
        predictor: a trained error correlation predictor (None runs
            the worst-case baseline flow: always diagnose, ascending
            STL order).
        deadline_cycles: the hard deadline budget for reaching a safe
            state; exceeding it is a safety violation (asserted).
        seed: randomness for SBIST order completion.
    """

    workload: Workload
    predictor: ErrorCorrelationPredictor | None = None
    deadline_cycles: int | None = None
    seed: int = 0
    state: SystemState = SystemState.RUNNING
    log: list[ReactionLogEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._program, stimulus = build(self.workload)
        self.processor = DmrLockstep(self._program, InputStream(stimulus.values))
        fine = self.predictor.fine if self.predictor is not None else False
        self._stl = StlModel(fine=fine)
        self._sbist = SbistEngine(self._stl, np.random.default_rng(self.seed))
        self._was_soft_retry = False

    # -- the machine ---------------------------------------------------------

    def run_until_error_or_done(self, max_cycles: int = 1_000_000) -> SystemState:
        """Advance the task until an error latches or it completes."""
        if self.state is SystemState.FAILED:
            return self.state
        self.state = SystemState.RUNNING
        for _ in range(max_cycles):
            if self.processor.step():
                self.state = SystemState.DETECTED
                return self.state
            cores = self.processor.cores
            if cores[0].halted and cores[1].halted:
                return self.state
        return self.state

    def handle_error(self, true_fault_unit: str | None) -> ReactionLogEntry:
        """Run the full reaction flow for the latched error.

        ``true_fault_unit`` is the ground truth the SBIST model needs
        (None for a transient): which unit's STL would actually catch
        the fault.
        """
        if self.state is not SystemState.DETECTED:
            raise RuntimeError("no latched error to handle")
        error = self.processor.error
        reaction = 0

        if self.predictor is not None:
            prediction = self.predictor.predict(error.diverged)
            reaction += self.predictor.access_cycles
            order = self._sbist.complete_order(prediction.units)
            predicted_type = prediction.error_type
            self.state = SystemState.PREDICTED
        else:
            order = self._stl.ascending_order()
            predicted_type = ErrorType.HARD  # worst-case scenario flow
            prediction = None

        diagnosed_hard = False
        treat_as_hard = predicted_type is ErrorType.HARD or self._was_soft_retry
        if treat_as_hard:
            self.state = SystemState.DIAGNOSING
            outcome = self._sbist.run(order, true_fault_unit)
            reaction += outcome.cycles
            diagnosed_hard = outcome.found
        if diagnosed_hard:
            self.state = SystemState.FAILED
        else:
            self.state = SystemState.RESTARTING
            reaction += RESET_PENALTY_CYCLES
            self._was_soft_retry = predicted_type is ErrorType.SOFT
            self.processor.reset(self._program)

        entry = ReactionLogEntry(
            cycle=self.processor.checker.state.error_cycle or 0,
            dsr=error.diverged,
            predicted_type=predicted_type,
            predicted_units=prediction.units if prediction else order,
            diagnosed_hard=diagnosed_hard,
            reaction_cycles=reaction,
        )
        self.log.append(entry)
        if self.deadline_cycles is not None and reaction > self.deadline_cycles:
            raise DeadlineViolation(
                f"reaction took {reaction} cycles, deadline {self.deadline_cycles}")
        return entry


class DeadlineViolation(RuntimeError):
    """Raised when a reaction misses the provisioned hard deadline."""


@dataclass(frozen=True)
class AvailabilityModel:
    """System availability from error rates and reaction times.

    The system is *unavailable* from error detection until the safe
    state is reached (the LERT), so with an error arrival rate
    ``errors_per_gigacycle`` and a mean LERT the unavailable fraction
    is ``rate * LERT``.  The paper reports the predictor's benefit as
    the relative reduction of that unavailability — equivalently, the
    relative LERT reduction (its 42-65% headline).
    """

    errors_per_gigacycle: float = 10.0

    def unavailability(self, mean_lert_cycles: float) -> float:
        """Fraction of time spent reacting to errors."""
        rate_per_cycle = self.errors_per_gigacycle / 1e9
        return min(1.0, rate_per_cycle * mean_lert_cycles)

    def availability(self, mean_lert_cycles: float) -> float:
        """1 - unavailability."""
        return 1.0 - self.unavailability(mean_lert_cycles)

    def improvement(self, baseline_lert: float, predicted_lert: float) -> float:
        """Relative reduction in unavailability (the paper's headline)."""
        base = self.unavailability(baseline_lert)
        if base == 0.0:
            return 0.0
        return 1.0 - self.unavailability(predicted_lert) / base

    def nines(self, mean_lert_cycles: float) -> float:
        """Availability expressed as a number of nines."""
        unavailable = self.unavailability(mean_lert_cycles)
        if unavailable <= 0.0:
            return float("inf")
        return -np.log10(unavailable)
