"""Differential verification of the SR5 pipeline against an ISA model.

The correctness safety net under every campaign number: a single-step
architectural reference model (:mod:`refmodel`), a constrained-random
hazard-stressing program generator (:mod:`progen`), a co-simulation
driver with a delta-debugging shrinker (:mod:`diff`), session coverage
accounting (:mod:`coverage`), fuzz-under-fault-injection
(:mod:`faultfuzz`) and mutation testing of the whole stack
(:mod:`mutation`).  Entry points::

    python -m repro fuzz --programs 2000 --seed 0
    python -m repro fuzz --inject --programs 200 --seed 0
    python -m repro mutate

    from repro.verify import cosim, generate_program
    assert cosim(generate_program(42)).ok
"""

from .coverage import REQUIRED_EVENT_BINS, Coverage
from .diff import (
    ARTIFACTS_ENV,
    DEFAULT_MAX_CYCLES,
    CosimResult,
    FuzzFailure,
    FuzzReport,
    Mismatch,
    cosim,
    effective_memory,
    load_repro,
    resolve_artifacts_dir,
    run_fuzz,
    shrink,
)
from .faultfuzz import FaultFuzzReport, FaultOutcome, run_faultfuzz
from .mutation import (
    Mutant,
    MutationReport,
    default_mutants,
    run_mutation,
    write_report,
)
from .progen import (
    DATA_BASE,
    FUZZ_MEM_WORDS,
    Block,
    FuzzProgram,
    Line,
    adaptive_weights,
    generate_program,
    program_strategy,
)
from .refmodel import RefModel, cause_name

__all__ = [
    "REQUIRED_EVENT_BINS", "Coverage",
    "ARTIFACTS_ENV", "DEFAULT_MAX_CYCLES", "CosimResult", "FuzzFailure",
    "FuzzReport", "Mismatch", "cosim", "effective_memory", "load_repro",
    "resolve_artifacts_dir", "run_fuzz", "shrink",
    "FaultFuzzReport", "FaultOutcome", "run_faultfuzz",
    "Mutant", "MutationReport", "default_mutants", "run_mutation",
    "write_report",
    "DATA_BASE", "FUZZ_MEM_WORDS", "Block", "FuzzProgram", "Line",
    "adaptive_weights", "generate_program", "program_strategy",
    "RefModel", "cause_name",
]
