"""Differential verification of the SR5 pipeline against an ISA model.

The correctness safety net under every campaign number: a single-step
architectural reference model (:mod:`refmodel`), a constrained-random
hazard-stressing program generator (:mod:`progen`), a co-simulation
driver with a delta-debugging shrinker (:mod:`diff`) and session
coverage accounting (:mod:`coverage`).  Entry points::

    python -m repro fuzz --programs 2000 --seed 0

    from repro.verify import cosim, generate_program
    assert cosim(generate_program(42)).ok
"""

from .coverage import REQUIRED_EVENT_BINS, Coverage
from .diff import (
    DEFAULT_MAX_CYCLES,
    CosimResult,
    FuzzFailure,
    FuzzReport,
    Mismatch,
    cosim,
    run_fuzz,
    shrink,
)
from .progen import (
    DATA_BASE,
    FUZZ_MEM_WORDS,
    Block,
    FuzzProgram,
    Line,
    generate_program,
    program_strategy,
)
from .refmodel import RefModel, cause_name

__all__ = [
    "REQUIRED_EVENT_BINS", "Coverage",
    "DEFAULT_MAX_CYCLES", "CosimResult", "FuzzFailure", "FuzzReport",
    "Mismatch", "cosim", "run_fuzz", "shrink",
    "DATA_BASE", "FUZZ_MEM_WORDS", "Block", "FuzzProgram", "Line",
    "generate_program", "program_strategy",
    "RefModel", "cause_name",
]
