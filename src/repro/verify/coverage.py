"""Fuzz-session coverage: opcodes, pipeline events, flop toggles.

Three complementary coverage taxonomies accumulate across a session:

* **Opcode coverage** — which of the ISA's opcodes were architecturally
  executed (from the reference model's retire stream, so wrong-path and
  squashed instructions don't count);
* **Pipeline-event coverage** — microarchitectural mechanisms observed
  on the pipeline itself: redirect flushes, MUL stall cycles,
  store-buffer drains, BTB-predicted vs plain fetches, taken/not-taken
  branch outcomes and each exception cause the generator can provoke;
* **Flop-toggle coverage** — per-unit fraction of flip-flop bits seen
  at both 0 and 1.  State snapshots are sampled every
  ``toggle_stride`` cycles (exact per-cycle XOR would double simulator
  cost for a metric that saturates anyway), folding each sample into
  running OR/AND accumulators: a bit toggles iff ``or & ~and``.
"""

from __future__ import annotations

from collections import Counter

from ..cpu.isa import Op
from ..cpu.units import REGISTRY, coarse_unit
from .refmodel import RefModel, cause_name

#: Event bins the constrained-random generator is designed to hit; a
#: healthy fuzz session of a couple hundred programs fills every one.
REQUIRED_EVENT_BINS: tuple[str, ...] = (
    "flush", "stall", "sb_drain", "btb_hit", "btb_miss",
    "branch_taken", "branch_not_taken",
    "exc_IRQ", "exc_BKPT", "exc_WATCH", "exc_MPU",
)


class Coverage:
    """Accumulates coverage across co-simulated programs."""

    def __init__(self, toggle_stride: int = 8):
        self.opcodes: Counter = Counter()
        self.events: Counter = Counter()
        self.programs = 0
        self.cycles = 0
        self.steps = 0
        self._stride = max(1, toggle_stride)
        self._tick = 0
        self._or: list[int] | None = None
        self._and: list[int] | None = None

    # -- per-cycle pipeline observation ----------------------------------

    def note_cycle(self, cpu) -> None:
        """Observe one post-``step()`` pipeline state (hot path)."""
        d = cpu.__dict__
        ev = self.events
        if d["mul_pending"]:
            ev["stall"] += 1
        if d["dmc_ctrl"] & 2:
            ev["sb_drain"] += 1
        if d["imc_valid"]:
            if d["imc_pred"]:
                ev["btb_hit"] += 1
            else:
                ev["btb_miss"] += 1
        elif not d["halted"]:
            # Fetch is only ever invalid mid-run on a redirect: branch
            # mispredict, stale-BTB correction or exception vectoring.
            ev["flush"] += 1
        self._tick += 1
        if not self._tick % self._stride:
            self._fold(cpu.snapshot())

    def _fold(self, snap: tuple[int, ...]) -> None:
        acc_or = self._or
        if acc_or is None:
            self._or = list(snap)
            self._and = list(snap)
            return
        acc_and = self._and
        for i, value in enumerate(snap):
            acc_or[i] |= value
            acc_and[i] &= value

    # -- per-program architectural observation ---------------------------

    def note_program(self, ref: RefModel, cycles: int) -> None:
        """Fold one finished program's reference-model statistics in."""
        self.programs += 1
        self.cycles += cycles
        self.steps += ref.n_steps
        self.opcodes.update(ref.executed)
        self.events["branch_taken"] += ref.branches_taken
        self.events["branch_not_taken"] += ref.branches_not_taken
        for code, count in ref.traps.items():
            self.events[f"exc_{cause_name(code)}"] += count

    # -- queries ---------------------------------------------------------

    def opcode_coverage(self) -> tuple[set[Op], set[Op], float]:
        """``(covered, missing, fraction)`` over the full opcode space."""
        covered = {op for op in Op if self.opcodes.get(int(op))}
        missing = set(Op) - covered
        return covered, missing, len(covered) / len(Op)

    def event_bins(self) -> dict[str, int]:
        """Counts for every required pipeline-event bin (zeros kept)."""
        return {name: self.events.get(name, 0) for name in REQUIRED_EVENT_BINS}

    def toggle_by_unit(self) -> dict[str, tuple[int, int]]:
        """Coarse unit -> ``(toggled_flops, total_flops)``."""
        out: dict[str, list[int]] = {}
        acc_or, acc_and = self._or, self._and
        for i, spec in enumerate(REGISTRY):
            unit = coarse_unit(spec.unit)
            entry = out.setdefault(unit, [0, 0])
            entry[1] += spec.width
            if acc_or is not None:
                mask = (1 << spec.width) - 1
                entry[0] += ((acc_or[i] & ~acc_and[i]) & mask).bit_count()
        return {unit: (t, n) for unit, (t, n) in out.items()}

    # -- reporting -------------------------------------------------------

    def report(self) -> str:
        """Human-readable end-of-session coverage summary."""
        covered, missing, frac = self.opcode_coverage()
        lines = [
            "== fuzz coverage ==",
            f"programs: {self.programs}  pipeline cycles: {self.cycles}  "
            f"instructions: {self.steps}",
            f"opcodes: {len(covered)}/{len(Op)} ({100 * frac:.1f}%)"
            + (f"  missing: {sorted(op.name for op in missing)}" if missing else ""),
            "pipeline events:",
        ]
        bins = self.event_bins()
        lines.append("  " + "  ".join(
            f"{name}={bins[name]}"
            for name in ("flush", "stall", "sb_drain", "btb_hit", "btb_miss")))
        lines.append("  " + "  ".join(
            f"{name}={bins[name]}"
            for name in ("branch_taken", "branch_not_taken")))
        lines.append("  " + "  ".join(
            f"{name}={bins[name]}"
            for name in ("exc_IRQ", "exc_BKPT", "exc_WATCH", "exc_MPU")))
        toggles = self.toggle_by_unit()
        total_t = sum(t for t, _ in toggles.values())
        total_n = sum(n for _, n in toggles.values())
        per_unit = "  ".join(f"{unit}={t}/{n}"
                             for unit, (t, n) in sorted(toggles.items()))
        lines.append(f"flop toggles (sampled /{self._stride} cycles): "
                     f"{total_t}/{total_n} "
                     f"({100 * total_t / max(total_n, 1):.1f}%)")
        lines.append("  " + per_unit)
        return "\n".join(lines)
