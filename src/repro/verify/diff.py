"""Differential co-simulation of the pipeline against the ISA model.

:func:`cosim` runs the flip-flop-accurate :class:`repro.cpu.core.Cpu`
and the architectural :class:`repro.verify.refmodel.RefModel` on an
identical program + replicated stimulus and compares everything the
ISA contract defines:

* termination (both halt, or both exceed the cycle budget);
* the ordered OUT-port value stream (strobe-sampled on the pipeline);
* the retire stream ``(pc, value, rd, wen)`` — instruction-by-
  instruction, so a divergence is pinned to the *first* architectural
  commit that differs, not discovered thousands of cycles later;
* the final architectural state (registers, flags, CSRs);
* the final memory image (the pipeline side is viewed through its
  undrained store-buffer entry, the one architectural commit HALT can
  strand in flight).

:func:`shrink` is a delta-debugging (ddmin) minimizer over the
generator's removable structure: whole blocks first, then individual
lines, then a trap-handler stub substitution — yielding a minimal
``.s`` repro for any mismatch.  :func:`run_fuzz` drives a whole
session and dumps shrunken artifacts to disk.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..cpu.assembler import AssemblerError, assemble
from ..cpu.core import Cpu
from ..cpu.isa import EncodingError
from ..cpu.memory import InputStream, Memory
from .coverage import Coverage
from .progen import (FUZZ_MEM_WORDS, FuzzProgram, adaptive_weights,
                     generate_program)
from .refmodel import RefModel

#: Default pipeline cycle budget per program.  Generated programs
#: retire well under a quarter of this, so a pipeline that reaches the
#: budget while the reference model halts is a genuine liveness bug.
DEFAULT_MAX_CYCLES = 30_000

#: Environment override for where fuzz repro artifacts land; the CLI
#: and the test suite's conftest plumb explicit directories through it
#: so nothing ever writes into an arbitrary caller cwd.
ARTIFACTS_ENV = "REPRO_FUZZ_ARTIFACTS"

#: Sentinel: "caller gave no directory — resolve env var, else default".
_UNSET = object()


def resolve_artifacts_dir(value=_UNSET) -> Path | None:
    """Resolve where repro artifacts go.

    Explicit ``value`` wins (``None`` disables dumping); otherwise the
    ``REPRO_FUZZ_ARTIFACTS`` environment variable (empty string
    disables); otherwise the historical ``fuzz_artifacts/`` relative to
    the current directory.
    """
    if value is not _UNSET:
        return None if value is None else Path(value)
    env = os.environ.get(ARTIFACTS_ENV)
    if env is not None:
        return Path(env) if env else None
    return Path("fuzz_artifacts")


@dataclass(frozen=True)
class Mismatch:
    """One pipeline-vs-reference divergence."""

    kind: str      # "halt" | "out-stream" | "retire" | "arch-state" | "memory"
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


@dataclass
class CosimResult:
    """Outcome of one differential run."""

    cycles: int
    steps: int
    mismatches: list[Mismatch] = field(default_factory=list)
    hung_both: bool = False
    #: The program read the timing-dependent cycle CSR, which the
    #: reference model cannot predict; comparison was skipped.
    unsupported: bool = False

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _first_diff(a, b) -> int:
    """Index of the first differing element (or the shorter length)."""
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return i
    return min(len(a), len(b))


def cosim(prog: FuzzProgram | str, stimulus: list[int] | None = None, *,
          max_cycles: int = DEFAULT_MAX_CYCLES,
          mem_words: int = FUZZ_MEM_WORDS,
          coverage: Coverage | None = None,
          excluded: frozenset = frozenset()) -> CosimResult:
    """Co-simulate one program; returns the comparison verdict.

    ``prog`` is a :class:`FuzzProgram` (its stimulus is used unless one
    is passed explicitly) or raw assembly source plus ``stimulus``.
    Raises :class:`repro.cpu.assembler.AssemblerError` on bad source.
    """
    if isinstance(prog, FuzzProgram):
        source = prog.source(excluded)
        if stimulus is None:
            stimulus = prog.stimulus
    else:
        source = prog
    program = assemble(source)
    stim = InputStream(stimulus or [0])

    cpu = Cpu(Memory.from_program(program, size_words=mem_words), stim,
              entry=program.entry)
    ref = RefModel(Memory.from_program(program, size_words=mem_words), stim,
                   entry=program.entry)

    pipe_retires: list[tuple[int, int, int, int]] = []
    cpu.retire_hook = lambda pc, val, rd, wen: \
        pipe_retires.append((pc, val, rd, wen))

    pipe_outputs: list[int] = []
    prev_strobe = cpu.io_out_v
    cycles = 0
    step = cpu.step
    if coverage is not None:
        note = coverage.note_cycle
        while not cpu.halted and cycles < max_cycles:
            step()
            cycles += 1
            note(cpu)
            if cpu.io_out_v != prev_strobe:
                pipe_outputs.append(cpu.io_out)
                prev_strobe = cpu.io_out_v
    else:
        while not cpu.halted and cycles < max_cycles:
            step()
            cycles += 1
            if cpu.io_out_v != prev_strobe:
                pipe_outputs.append(cpu.io_out)
                prev_strobe = cpu.io_out_v

    # Every architectural step occupies >= 1 pipeline cycle, so the
    # same budget can never starve the reference model first.
    ref.run(max_steps=max_cycles)
    if coverage is not None:
        coverage.note_program(ref, cycles)

    result = CosimResult(cycles=cycles, steps=ref.n_steps)
    if ref.timing_csr_reads:
        result.unsupported = True
        return result

    if not cpu.halted or not ref.halted:
        if not cpu.halted and not ref.halted:
            result.hung_both = True     # same non-termination: no verdict
            return result
        result.mismatches.append(Mismatch(
            "halt",
            f"pipeline halted={bool(cpu.halted)} after {cycles} cycles, "
            f"reference halted={ref.halted} after {ref.n_steps} steps"))
        return result

    mm = result.mismatches
    if pipe_outputs != ref.outputs:
        i = _first_diff(pipe_outputs, ref.outputs)
        mm.append(Mismatch(
            "out-stream",
            f"OUT #{i}: pipeline {pipe_outputs[i:i + 3]}... vs "
            f"reference {ref.outputs[i:i + 3]}... "
            f"(lengths {len(pipe_outputs)}/{len(ref.outputs)})"))
    if pipe_retires != ref.retires:
        i = _first_diff(pipe_retires, ref.retires)
        pipe_at = pipe_retires[i] if i < len(pipe_retires) else None
        ref_at = ref.retires[i] if i < len(ref.retires) else None
        mm.append(Mismatch(
            "retire",
            f"retire #{i} (pc, val, rd, wen): pipeline "
            f"{_fmt_retire(pipe_at)} vs reference {_fmt_retire(ref_at)}"))
    cpu_state = cpu.arch_state()
    ref_state = ref.arch_state()
    bad = [k for k in ref_state if cpu_state[k] != ref_state[k]]
    if bad:
        detail = ", ".join(
            f"{k}: {cpu_state[k]:#x}!={ref_state[k]:#x}" for k in bad[:6])
        mm.append(Mismatch("arch-state", detail))

    pipe_words = effective_memory(cpu)
    if pipe_words != ref.mem.words:
        i = _first_diff(pipe_words, ref.mem.words)
        mm.append(Mismatch(
            "memory",
            f"word {i:#x} (byte {4 * i:#x}): pipeline "
            f"{pipe_words[i]:#010x} vs reference {ref.mem.words[i]:#010x}"))
    return result


def effective_memory(cpu: Cpu) -> list[int]:
    """The architecturally-committed memory image of a halted core.

    ``HALT`` can strand one committed store in the store buffer; the
    ISA contract includes it, so fold it into the raw word array before
    comparing against the reference model.
    """
    words = cpu.mem.words
    pending = cpu.pending_store()
    if pending is None:
        return words
    addr, data, is_byte = pending
    words = list(words)
    idx = (addr >> 2) % len(words)
    if is_byte:
        shift = (addr & 3) * 8
        words[idx] = (words[idx] & ~(0xFF << shift)) \
            | ((data & 0xFF) << shift)
    else:
        words[idx] = data & 0xFFFFFFFF
    return words


def _fmt_retire(rec) -> str:
    if rec is None:
        return "<end of stream>"
    pc, val, rd, wen = rec
    return f"(pc={pc:#x}, val={val:#x}, rd={rd}, wen={wen})"


# -- delta-debugging shrinker -------------------------------------------------

#: Block kinds the shrinker may drop wholesale.  The prologue carries
#: the exception vector, init pins the data base pointer and the
#: epilogue owns HALT — those shrink line-by-line instead.
_DROPPABLE_KINDS = frozenset((
    "alu", "mem", "loop", "mul", "fwd", "io", "csr", "call", "sub",
    "bkpt", "watch", "irq", "mpu",
))


def _ddmin(units: list, still_fails) -> list:
    """Classic ddmin: minimize ``units`` such that ``still_fails(kept)``.

    ``still_fails`` receives the kept subset (as a list) and reports
    whether the failure reproduces without the removed complement.
    """
    kept = list(units)
    granularity = 2
    while kept:
        chunk = max(1, len(kept) // granularity)
        reduced = False
        for start in range(0, len(kept), chunk):
            trial = kept[:start] + kept[start + chunk:]
            if still_fails(trial):
                kept = trial
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(kept):
                break
            granularity = min(len(kept), granularity * 2)
    return kept


def shrink(prog: FuzzProgram, *,
           max_cycles: int = DEFAULT_MAX_CYCLES) -> FuzzProgram:
    """Reduce a failing program to a minimal still-failing repro.

    Requires ``cosim(prog)`` to report a mismatch; returns a new
    :class:`FuzzProgram` whose rendered source still fails.  Candidate
    reductions that no longer assemble (e.g. a dropped label) or no
    longer fail are simply rejected.
    """

    def fails(excluded: frozenset, stub: bool) -> bool:
        candidate = replace(prog, stub_handler=stub)
        try:
            result = cosim(candidate, max_cycles=max_cycles,
                           excluded=excluded)
        except (AssemblerError, EncodingError):
            return False
        return bool(result.mismatches)

    if not fails(frozenset(), prog.stub_handler):
        raise ValueError("shrink() requires a failing program")

    # Stage 1: drop whole blocks (ddmin over droppable block indices).
    all_keys = {bi: frozenset((bi, li) for li in range(len(block.lines)))
                for bi, block in enumerate(prog.blocks)}
    droppable = [bi for bi, block in enumerate(prog.blocks)
                 if block.kind in _DROPPABLE_KINDS]

    def block_excluded(kept_blocks: list[int]) -> frozenset:
        removed = set(droppable) - set(kept_blocks)
        gone: set = set()
        for bi in removed:
            gone |= all_keys[bi]
        return frozenset(gone)

    kept_blocks = _ddmin(
        droppable,
        lambda kept: fails(block_excluded(kept), prog.stub_handler))
    excluded = block_excluded(kept_blocks)

    # Stage 2: drop individual removable lines from what's left.
    lines = [key for key in prog.removable_keys() if key not in excluded]
    kept_lines = _ddmin(
        lines,
        lambda kept: fails(excluded | (set(lines) - set(kept)),
                           prog.stub_handler))
    excluded = excluded | (set(lines) - set(kept_lines))

    # Stage 3: swap the full trap handler for the halt stub.
    stub = prog.stub_handler
    if not stub and fails(excluded, True):
        stub = True

    # Materialize the reduced program with the exclusions applied.
    from .progen import Block, Line
    blocks: list[Block] = []
    for bi, block in enumerate(prog.blocks):
        keep = [Line(line.text, line.removable)
                for li, line in enumerate(block.lines)
                if (bi, li) not in excluded]
        if keep:
            blocks.append(Block(block.kind, keep))
    return FuzzProgram(seed=prog.seed, blocks=blocks,
                       stimulus=list(prog.stimulus), stub_handler=stub)


# -- fuzz session driver ------------------------------------------------------

@dataclass
class FuzzFailure:
    """One mismatching program (shrunk when shrinking is enabled)."""

    seed: object
    mismatches: list[Mismatch]
    source: str
    instructions: int
    artifact: Path | None = None


@dataclass
class FuzzReport:
    """Summary of a fuzz session."""

    programs: int
    failures: list[FuzzFailure]
    coverage: Coverage
    hung_both: int
    unsupported: int
    wall_seconds: float

    @property
    def ok(self) -> bool:
        return not self.failures


def run_fuzz(programs: int = 200, seed: int = 0, *,
             max_cycles: int = DEFAULT_MAX_CYCLES,
             do_shrink: bool = True,
             artifacts_dir: str | Path | None = _UNSET,
             coverage: Coverage | None = None,
             min_blocks: int = 4, max_blocks: int = 10,
             adapt: bool = False, adapt_batch: int = 50,
             progress: bool = False) -> FuzzReport:
    """Run a differential fuzz session of ``programs`` random programs.

    Every mismatch is delta-debugged to a minimal repro and dumped as
    an annotated ``.s`` artifact under ``artifacts_dir`` — explicit
    path wins, else the ``REPRO_FUZZ_ARTIFACTS`` environment variable,
    else ``fuzz_artifacts/`` (``None`` / empty env disables the dump).
    Program ``i`` derives its generator stream from ``f"{seed}:{i}"``,
    so any failure reproduces standalone.

    ``adapt=True`` turns on coverage-directed generation: after every
    ``adapt_batch`` programs the template weights are re-derived from
    the session's event-bin deficits (:func:`adaptive_weights`), so
    rare mechanisms — MPU faults, IRQ-in-shadow — attract probability
    as common bins saturate.  Still deterministic for a fixed
    ``(programs, seed, adapt_batch)``, but a program's shape then
    depends on the batch history, so reproduce failures via the dumped
    artifact rather than the bare seed.
    """
    cov = coverage if coverage is not None else Coverage()
    art_dir = resolve_artifacts_dir(artifacts_dir)
    failures: list[FuzzFailure] = []
    hung = unsupported = 0
    weights = None
    t0 = time.perf_counter()
    for i in range(programs):
        if adapt and i and not i % adapt_batch:
            weights = adaptive_weights(cov.event_bins())
        prog = generate_program(f"{seed}:{i}", min_blocks=min_blocks,
                                max_blocks=max_blocks, weights=weights)
        result = cosim(prog, max_cycles=max_cycles, coverage=cov)
        hung += result.hung_both
        unsupported += result.unsupported
        if not result.ok:
            final = shrink(prog, max_cycles=max_cycles) if do_shrink else prog
            check = cosim(final, max_cycles=max_cycles)
            failure = FuzzFailure(
                seed=prog.seed,
                mismatches=check.mismatches or result.mismatches,
                source=final.source(),
                instructions=final.instruction_count(),
            )
            if art_dir is not None:
                failure.artifact = _dump_artifact(
                    art_dir, seed, i, prog, failure)
            failures.append(failure)
        if progress and not (i + 1) % 200:
            print(f"[fuzz] {i + 1}/{programs} programs, "
                  f"{len(failures)} mismatches", flush=True)
    return FuzzReport(programs=programs, failures=failures, coverage=cov,
                      hung_both=hung, unsupported=unsupported,
                      wall_seconds=time.perf_counter() - t0)


def load_repro(path: str | Path) -> tuple[str, list[int]]:
    """Parse a dumped repro artifact back into ``(source, stimulus)``.

    The corpus replay tests use this to run checked-in ``.s`` artifacts
    straight back through :func:`cosim` — the ``; stimulus:`` header
    line written by :func:`_dump_artifact` carries the input stream.
    """
    text = Path(path).read_text()
    stimulus = [0]
    for line in text.splitlines():
        if line.startswith("; stimulus:"):
            stimulus = [int(tok, 0) for tok in line.split(":", 1)[1].split()]
            break
    return text, stimulus


def _dump_artifact(directory: Path, seed: int, index: int,
                   original: FuzzProgram, failure: FuzzFailure) -> Path:
    """Write an annotated minimal-repro ``.s`` file; returns its path."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"fail_s{seed}_p{index}.s"
    header = [
        f"; differential fuzz failure (program seed {failure.seed!r})",
        f"; reproduce: cosim(generate_program({failure.seed!r}))",
        f"; shrunk to {failure.instructions} instructions",
    ]
    header += [f"; {m}" for m in failure.mismatches]
    header.append("; stimulus: " + " ".join(f"{v:#x}" for v in original.stimulus))
    path.write_text("\n".join(header) + "\n" + failure.source)
    return path
