"""Fuzz under fault injection: lockstep detection strength on random programs.

The campaign layer (:mod:`repro.faults`) characterises the lockstep
checker on ten fixed AutoBench-style kernels.  This module drives the
same compact-port detection path with the PR 3 constrained-random
program generator, so detection latency, masking and — critically —
*escapes* are measured over a far wider behavioural space:

* one fault-free **golden run** per program records the compact port
  tuple of every cycle plus the final architectural state;
* each sampled fault re-runs only the *faulty* core from reset, with a
  :class:`repro.faults.injector.FaultDriver` perturbing it in the time
  domain, while the real :class:`repro.lockstep.checker.LockstepChecker`
  compares it against the recorded golden ports cycle by cycle —
  behaviourally a DMR pair with the fault in one core (after the golden
  core halts its ports freeze, exactly like a halted core's
  ``step()``);
* every fault is classified: **detected** (checker latched; the
  observable-divergence latency and diverged-SC set are recorded),
  **masked** (both halt, no error, and the faulty core's final
  architectural state + effective memory equal the
  :class:`~repro.verify.refmodel.RefModel`'s), **escape** (no error but
  the final state differs from the reference — silent architectural
  corruption the compact-port checker never flags), or **hung** (the
  faulty core missed the cycle budget without ever diverging at the
  ports).

Escapes are judged against the *reference model*, not the golden
pipeline, so a latent pipeline bug cannot silently re-baseline the
corruption check; programs whose fault-free run itself mismatches the
reference (a genuine cosim bug) are excluded from injection and
surfaced in the report.

Beyond the DMR pair, two scenario axes cover the deployment regimes
the paper's predictor claims must survive:

* **Voted triples** (``cores=3``, MMR/TMR): the perturbed core is
  planted at a seeded slot of a 3-core group whose other slots replay
  the golden recording, and every cycle flows through the real
  :class:`~repro.lockstep.checker.VotingChecker` — each detection
  additionally records the voter's erring-CPU attribution (and whether
  it named the planted core) and whether the voted value matched the
  golden ports (the forward-recovery correctness signal).
* **Dynamic lockstep** (``lockstep_mode="dynamic"``): a seeded
  :class:`~repro.lockstep.dynamic.ModeSchedule` switches the group
  between split (no comparison) and locked windows, with FlexStep-style
  on-demand check windows embedded in split spans.  A shadow comparison
  records the first observable divergence, so every detection carries
  its masked-window delay (detection minus first divergence) and
  escapes grow as the comparison duty cycle drops — the measurement
  the harness exists to make.

Determinism: program ``i`` derives its generator stream from
``f"{seed}:{i}"`` (identical to plain ``run_fuzz``), its fault
schedule from ``SeedSequence(seed, spawn_key=(FAULT_STREAM, i))``, the
faulty-core slots from ``TMR_SLOT_STREAM`` and the mode schedule from
``MODE_STREAM`` (see :mod:`repro.faults.streams`) — keyed, not
sequential, so results are bit-identical for any worker count or shard
size in every (cores, mode) configuration
(:func:`FaultFuzzReport.digest` asserts it in CI).
Fault sampling is stratified per fine unit: consecutive faults of a
program walk the 13-unit taxonomy round-robin from a random offset, so
every unit attracts injections even in short sessions.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..cpu.core import NUM_SCS, Cpu
from ..cpu.memory import InputStream, Memory
from ..cpu.units import FINE_UNITS, FlopRef, flops_of_unit
from ..faults.injector import FaultDriver
from ..faults.models import Fault, FaultKind
from ..faults.streams import FAULT_STREAM, MODE_STREAM, TMR_SLOT_STREAM
from ..lockstep.categories import expand_ports
from ..lockstep.checker import LockstepChecker, VotingChecker
from ..lockstep.dynamic import CHECK, ModeSchedule, sample_schedule
from .diff import DEFAULT_MAX_CYCLES, effective_memory
from .progen import FUZZ_MEM_WORDS, generate_program
from .refmodel import RefModel

#: Supported lockstep comparison regimes.
LOCKSTEP_MODES = ("locked", "dynamic")

#: Per-unit flop lists, precomputed once (FlopRef construction is
#: validation-heavy and the sampler only needs indexable pools).
_UNIT_FLOPS: dict[str, tuple[FlopRef, ...]] = {
    unit: tuple(flops_of_unit(unit, fine=True)) for unit in FINE_UNITS
}

_KIND_BY_ROLL = (FaultKind.SOFT, FaultKind.SOFT, FaultKind.STUCK0,
                 FaultKind.STUCK1)


@dataclass(frozen=True)
class FaultOutcome:
    """Verdict of one fault injected into one fuzzed program."""

    program: int                #: program index within the session
    flop: FlopRef
    kind: FaultKind
    inject_cycle: int
    #: "detected" | "masked" | "escape" | "hung"
    classification: str
    detect_cycle: int | None = None
    diverged: frozenset[int] = frozenset()
    #: first architectural key (or memory word) that differs on escape.
    escape_detail: str = ""
    #: slot of the perturbed core within the redundant group (1 in DMR).
    faulty_core: int = 1
    #: the voter's erring-CPU verdict (voted mode, detected faults only).
    erring_cpu: int | None = None
    #: did the voter's resolved value equal the golden ports on the
    #: error cycle?  (voted mode, detected faults only — the value
    #: forward recovery would restore.)
    vote_golden: bool | None = None
    #: first cycle the faulty core's raw ports diverged from golden
    #: (dynamic mode: shadow comparison; locked mode: == detect_cycle
    #: for detected faults, None otherwise).
    first_divergence: int | None = None
    #: window kind of the detection cycle in dynamic mode
    #: ("locked" | "check"; "" outside dynamic mode / undetected).
    detect_window: str = ""

    @property
    def latency(self) -> int | None:
        """Observable-divergence latency (detected faults only)."""
        if self.detect_cycle is None:
            return None
        return self.detect_cycle - self.inject_cycle

    @property
    def attribution_ok(self) -> bool | None:
        """Did the voter blame the planted core?  (None outside voted
        detections.)"""
        if self.erring_cpu is None:
            return None
        return self.erring_cpu == self.faulty_core

    @property
    def window_delay(self) -> int | None:
        """Extra cycles a split window hid the divergence (dynamic
        detections only: detection minus first observable divergence)."""
        if (not self.detect_window or self.detect_cycle is None
                or self.first_divergence is None):
            return None
        return self.detect_cycle - self.first_divergence


@dataclass
class FaultFuzzReport:
    """Summary of a fuzz-under-fault-injection session."""

    programs: int
    seed: int
    outcomes: list[FaultOutcome]
    #: program index -> golden run length in cycles.
    golden_cycles: dict[int, int]
    #: programs whose fault-free run mismatched the reference model —
    #: genuine cosim bugs; their faults are skipped, not classified.
    ref_mismatches: list[int] = field(default_factory=list)
    #: program index -> realised comparison duty cycle (dynamic mode).
    mode_duty: dict[int, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    meta: dict = field(default_factory=dict)

    def count(self, classification: str) -> int:
        """Number of outcomes with the given classification."""
        return sum(1 for o in self.outcomes
                   if o.classification == classification)

    @property
    def n_faults(self) -> int:
        return len(self.outcomes)

    @property
    def escape_rate(self) -> float:
        """Escapes (incl. hangs) over all injected faults."""
        if not self.outcomes:
            return 0.0
        return (self.count("escape") + self.count("hung")) / len(self.outcomes)

    def latencies(self, kind: FaultKind | None = None) -> list[int]:
        """Detection latencies, optionally filtered by fault kind."""
        return [o.latency for o in self.outcomes
                if o.latency is not None and (kind is None or o.kind is kind)]

    def latency_summary(self) -> dict[str, dict[str, float]]:
        """Per-kind latency distribution: count/mean/p50/p95/max."""
        out: dict[str, dict[str, float]] = {}
        for kind in FaultKind:
            lat = self.latencies(kind)
            if not lat:
                continue
            arr = np.asarray(lat, dtype=np.int64)
            out[kind.value] = {
                "count": int(arr.size),
                "mean": float(arr.mean()),
                "p50": float(np.percentile(arr, 50)),
                "p95": float(np.percentile(arr, 95)),
                "max": int(arr.max()),
            }
        return out

    def by_unit(self) -> dict[str, dict[str, int]]:
        """Coarse unit -> classification counts."""
        table: dict[str, dict[str, int]] = {}
        for o in self.outcomes:
            row = table.setdefault(o.flop.coarse, {})
            row[o.classification] = row.get(o.classification, 0) + 1
        return table

    def attribution(self) -> dict[str, int] | None:
        """Voter erring-CPU attribution tally (voted sessions only)."""
        verdicts = [o.attribution_ok for o in self.outcomes
                    if o.attribution_ok is not None]
        if not verdicts:
            return None
        return {"correct": sum(verdicts),
                "wrong": len(verdicts) - sum(verdicts)}

    def window_delays(self) -> list[int]:
        """Masked-window delays of dynamic-mode detections (cycles a
        split window hid an already-divergent core)."""
        return [o.window_delay for o in self.outcomes
                if o.window_delay is not None]

    def digest(self) -> str:
        """Order-sensitive canonical sha256 over all outcomes.

        Identical for any worker count; the frozenset is sorted first
        (its repr is iteration-order dependent).  Covers the voted-mode
        attribution fields and the dynamic-mode shadow fields, so a
        nondeterministic voter or schedule cannot hide.
        """
        h = hashlib.sha256()
        for o in self.outcomes:
            h.update(repr((o.program, o.flop.reg, o.flop.bit, o.kind.value,
                           o.inject_cycle, o.classification, o.detect_cycle,
                           sorted(o.diverged), o.escape_detail,
                           o.faulty_core, o.erring_cpu, o.vote_golden,
                           o.first_divergence, o.detect_window)).encode())
        return h.hexdigest()

    def report(self) -> str:
        """Human-readable end-of-session summary."""
        n = max(self.n_faults, 1)
        cores = self.meta.get("cores", 2)
        mode = self.meta.get("lockstep_mode", "locked")
        regime = f"{cores}-core {'voted' if cores > 2 else 'DMR'}, {mode}"
        if mode == "dynamic" and self.mode_duty:
            realised = sum(self.mode_duty.values()) / len(self.mode_duty)
            regime += (f" duty={self.meta.get('duty', 1.0):.2f}"
                       f" (realised {realised:.2f})")
        lines = [
            f"== fault-fuzz ({regime}) ==",
            f"programs: {self.programs}  faults injected: {self.n_faults}  "
            f"golden cycles: {sum(self.golden_cycles.values())}",
            f"detected: {self.count('detected')} "
            f"({100 * self.count('detected') / n:.1f}%)  "
            f"masked: {self.count('masked')} "
            f"({100 * self.count('masked') / n:.1f}%)  "
            f"escapes: {self.count('escape')}  hung: {self.count('hung')}  "
            f"(escape rate {100 * self.escape_rate:.1f}%)",
        ]
        for kind, stats in self.latency_summary().items():
            lines.append(
                f"latency[{kind}]: n={stats['count']}  "
                f"mean={stats['mean']:.1f}  p50={stats['p50']:.0f}  "
                f"p95={stats['p95']:.0f}  max={stats['max']}")
        attribution = self.attribution()
        if attribution is not None:
            total = max(attribution["correct"] + attribution["wrong"], 1)
            lines.append(
                f"erring-CPU attribution: {attribution['correct']}/{total} "
                f"correct ({100 * attribution['correct'] / total:.1f}%)  "
                f"vote==golden: "
                f"{sum(1 for o in self.outcomes if o.vote_golden)}/{total}")
        delays = self.window_delays()
        if delays:
            arr = np.asarray(delays, dtype=np.int64)
            checks = sum(1 for o in self.outcomes if o.detect_window == CHECK)
            lines.append(
                f"masked-window delay: n={arr.size}  mean={arr.mean():.1f}  "
                f"p95={np.percentile(arr, 95):.0f}  max={arr.max()}  "
                f"(detections in on-demand check windows: {checks})")
        table = self.by_unit()
        if table:
            lines.append("per coarse unit (detected/masked/escape+hung):")
            lines.append("  " + "  ".join(
                f"{unit}={row.get('detected', 0)}/{row.get('masked', 0)}"
                f"/{row.get('escape', 0) + row.get('hung', 0)}"
                for unit, row in sorted(table.items())))
        if self.ref_mismatches:
            lines.append(f"!! {len(self.ref_mismatches)} program(s) "
                         f"mismatched the reference model fault-free: "
                         f"{self.ref_mismatches[:8]} — run `repro fuzz` to "
                         f"shrink (their faults were skipped)")
        lines.append(f"digest: {self.digest()}")
        return "\n".join(lines)


# -- fault sampling -----------------------------------------------------------

def sample_faults(seed: int, program: int, n_cycles: int,
                  faults_per_program: int) -> list[Fault]:
    """The keyed fault schedule for one program.

    Units are walked round-robin from a random offset (per-unit
    stratification); the flop, kind (soft:stuck = 2:1:1) and injection
    cycle are uniform.  Depends only on ``(seed, program, n_cycles)``,
    never on which worker draws it.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(FAULT_STREAM, program)))
    offset = int(rng.integers(len(FINE_UNITS)))
    faults = []
    for j in range(faults_per_program):
        unit = FINE_UNITS[(offset + j) % len(FINE_UNITS)]
        pool = _UNIT_FLOPS[unit]
        flop = pool[int(rng.integers(len(pool)))]
        kind = _KIND_BY_ROLL[int(rng.integers(4))]
        cycle = int(rng.integers(max(n_cycles, 1)))
        faults.append(Fault(flop, kind, cycle))
    return faults


def sample_slots(seed: int, program: int, faults_per_program: int,
                 cores: int) -> list[int]:
    """Which core of the redundant group carries each fault.

    A separate keyed stream (:data:`TMR_SLOT_STREAM`) so the fault
    schedule itself stays bit-identical to the DMR session's — the
    voted session injects *the same faults*, only the placement within
    the group varies.  DMR keeps the fixed historical slot 1.
    """
    if cores == 2:
        return [1] * faults_per_program
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(TMR_SLOT_STREAM, program)))
    return [int(rng.integers(cores)) for _ in range(faults_per_program)]


def sample_mode_schedule(seed: int, program: int, n_cycles: int,
                         duty: float) -> ModeSchedule:
    """The keyed dynamic-lockstep window schedule for one program.

    Depends only on ``(seed, program, n_cycles, duty)`` — worker-count
    invariant like every other stream.  ``duty=1.0`` degenerates to the
    always-locked schedule, making the 100%-duty dynamic session
    record-identical to the static one (tested property).
    """
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(MODE_STREAM, program)))
    return sample_schedule(rng, n_cycles, duty)


# -- one program's work -------------------------------------------------------

def _golden_run(program, stimulus: list[int], max_cycles: int):
    """Fault-free pipeline run: per-cycle ports + final state.

    Returns ``(ports, frozen, cpu, cycles)`` where ``frozen`` is the
    port tuple a halted core holds forever (what the golden side of a
    DMR pair presents once it stops while the faulty side runs on).
    """
    cpu = Cpu(Memory.from_program(program, size_words=FUZZ_MEM_WORDS),
              InputStream(stimulus), entry=program.entry)
    ports: list[tuple[int, ...]] = []
    append = ports.append
    step = cpu.step
    cycles = 0
    while not cpu.halted and cycles < max_cycles:
        append(step())
        cycles += 1
    return ports, cpu.port_state(), cpu, cycles


def run_one_fault(program, stimulus: list[int], fault: Fault,
                  g_ports: list[tuple[int, ...]],
                  g_frozen: tuple[int, ...],
                  ref_state: dict[str, int], ref_words: list[int],
                  program_index: int = 0, *,
                  budget: int | None = None,
                  cores: int = 2, faulty_slot: int | None = None,
                  schedule: ModeSchedule | None = None) -> FaultOutcome:
    """One fault against a recorded golden trace, through a real checker.

    The faulty core steps from reset with ``fault`` applied in the time
    domain; the golden side of the redundant group is the recording —
    bit-identical to stepping fault-free cores (after the golden core
    halts its ports freeze, like a halted core's ``step()``).

    * ``cores=2`` (default): a :class:`LockstepChecker` DMR pair,
      exactly the historical behaviour.
    * ``cores>=3``: a :class:`VotingChecker` group with the perturbed
      core planted at ``faulty_slot`` and the golden recording in every
      other slot; detections record the voter's erring-CPU attribution
      and whether the voted value matched golden.
    * ``schedule``: a dynamic-lockstep window schedule — the checker
      only compares on locked cycles, and a shadow raw comparison
      records the first observable divergence so detections carry
      their masked-window delay.  ``None`` = always locked.
    """
    cpu = Cpu(Memory.from_program(program, size_words=FUZZ_MEM_WORDS),
              InputStream(stimulus), entry=program.entry)
    if faulty_slot is None:
        faulty_slot = 1 if cores == 2 else cores - 1
    voted_mode = cores > 2
    checker = VotingChecker(cores) if voted_mode else LockstepChecker()
    driver = FaultDriver(fault)
    n_g = len(g_ports)
    if budget is None:
        # The faulty core may run past the golden halt (e.g. a corrupted
        # loop counter); ev_sys diverges there, so a thin margin beyond
        # the golden length is enough for detection — anything still
        # undetected *and* unhalted by then has genuinely hung.
        budget = n_g + max(n_g // 2, 256)
    before = driver.before_step
    step = cpu.step
    compare = checker.compare
    # A horizon-0 schedule (duty=1.0 degenerate) IS static lockstep:
    # treating it as non-dynamic makes the 100%-duty dynamic session
    # record-identical to the locked one, field for field.
    dynamic = schedule is not None and schedule.horizon > 0
    first_div: int | None = None
    t = 0
    while t < budget:
        before(cpu, t)
        out = step()
        golden = g_ports[t] if t < n_g else g_frozen
        if dynamic and first_div is None and out != golden:
            # Shadow ground truth — harness instrumentation, NOT the
            # checker hook: it must see divergence even under a
            # mutation-blinded comparator.
            first_div = t
        if not dynamic or schedule.locked_at(t):
            if voted_mode:
                group = [golden] * cores
                group[faulty_slot] = out
                latched = compare(group)
            else:
                latched = compare(golden, out)
            if latched:
                state = checker.state
                vote_golden = None
                if voted_mode and state.voted is not None:
                    want = (expand_ports(golden)
                            if len(state.voted) == NUM_SCS else golden)
                    vote_golden = state.voted == want
                window = ""
                if dynamic:
                    w = schedule.window_at(t)
                    window = w.kind if w is not None else "locked"
                return FaultOutcome(
                    program=program_index, flop=fault.flop, kind=fault.kind,
                    inject_cycle=fault.cycle, classification="detected",
                    detect_cycle=t, diverged=state.diverged,
                    faulty_core=faulty_slot, erring_cpu=state.erring_cpu,
                    vote_golden=vote_golden,
                    first_divergence=first_div if dynamic else t,
                    detect_window=window)
        t += 1
        if cpu.halted and t >= n_g:
            break
    if not cpu.halted:
        return FaultOutcome(
            program=program_index, flop=fault.flop, kind=fault.kind,
            inject_cycle=fault.cycle, classification="hung",
            faulty_core=faulty_slot, first_divergence=first_div)
    detail = _state_diff(cpu, ref_state, ref_words)
    return FaultOutcome(
        program=program_index, flop=fault.flop, kind=fault.kind,
        inject_cycle=fault.cycle,
        classification="escape" if detail else "masked",
        escape_detail=detail,
        faulty_core=faulty_slot, first_divergence=first_div)


def _state_diff(cpu: Cpu, ref_state: dict[str, int],
                ref_words: list[int]) -> str:
    """First divergence of a halted core vs the reference final state.

    Empty string when the architectural state and the effective memory
    image (undrained store-buffer entry folded in) both match — the
    fault was truly masked.
    """
    cpu_state = cpu.arch_state()
    for key, want in ref_state.items():
        if cpu_state[key] != want:
            return f"{key}: {cpu_state[key]:#x}!={want:#x}"
    words = effective_memory(cpu)
    if words != ref_words:
        for i, (have, want) in enumerate(zip(words, ref_words)):
            if have != want:
                return f"mem[{i:#x}]: {have:#010x}!={want:#010x}"
        return "mem: length mismatch"
    return ""


def _run_shard(seed: int, start: int, count: int, faults_per_program: int,
               max_cycles: int, min_blocks: int, max_blocks: int,
               cores: int = 2, lockstep_mode: str = "locked",
               duty: float = 1.0):
    """Fault-fuzz programs ``start .. start+count-1`` (one work shard)."""
    from ..cpu.assembler import assemble

    outcomes: list[FaultOutcome] = []
    golden_cycles: dict[int, int] = {}
    mismatched: list[int] = []
    mode_duty: dict[int, float] = {}
    for i in range(start, start + count):
        prog = generate_program(f"{seed}:{i}", min_blocks=min_blocks,
                                max_blocks=max_blocks)
        program = assemble(prog.source())
        g_ports, g_frozen, g_cpu, cycles = _golden_run(
            program, prog.stimulus, max_cycles)
        golden_cycles[i] = cycles

        ref = RefModel(Memory.from_program(program, size_words=FUZZ_MEM_WORDS),
                       InputStream(prog.stimulus), entry=program.entry)
        ref.run(max_steps=max_cycles)
        ref_state = ref.arch_state()
        ref_words = ref.mem.words
        if (not g_cpu.halted or not ref.halted
                or _state_diff(g_cpu, ref_state, ref_words)):
            # Fault-free pipeline disagrees with the ISA model: that is
            # a cosim finding, not fault-injection material.
            mismatched.append(i)
            continue

        schedule = None
        if lockstep_mode == "dynamic":
            schedule = sample_mode_schedule(seed, i, cycles, duty)
            mode_duty[i] = (schedule.duty if schedule.horizon else 1.0)
        slots = sample_slots(seed, i, faults_per_program, cores)
        for fault, slot in zip(
                sample_faults(seed, i, cycles, faults_per_program), slots):
            outcomes.append(run_one_fault(
                program, prog.stimulus, fault, g_ports, g_frozen,
                ref_state, ref_words, program_index=i,
                cores=cores, faulty_slot=slot, schedule=schedule))
    return start, outcomes, golden_cycles, mismatched, mode_duty


# -- session driver -----------------------------------------------------------

def run_faultfuzz(programs: int = 200, seed: int = 0, *,
                  faults_per_program: int = 3,
                  max_cycles: int = DEFAULT_MAX_CYCLES,
                  min_blocks: int = 4, max_blocks: int = 10,
                  workers: int = 1,
                  progress: bool = False,
                  cores: int = 2,
                  lockstep_mode: str = "locked",
                  duty: float = 1.0) -> FaultFuzzReport:
    """Run a fuzz-under-fault-injection session.

    ``workers > 1`` shards the program range over a process pool; the
    keyed schedules and ordered merge make results bit-identical for
    any worker count (``workers=0`` = all cores).  ``cores=3`` runs
    voted triples through the :class:`VotingChecker`;
    ``lockstep_mode="dynamic"`` gates comparison on a seeded window
    schedule targeting ``duty`` (fraction of cycles compared).
    """
    t0 = time.perf_counter()
    if cores < 2:
        raise ValueError(f"cores must be >= 2, got {cores}")
    if lockstep_mode not in LOCKSTEP_MODES:
        raise ValueError(f"lockstep_mode must be one of {LOCKSTEP_MODES}, "
                         f"got {lockstep_mode!r}")
    if not 0.0 < duty <= 1.0:
        raise ValueError(f"duty must be in (0, 1], got {duty}")
    if not workers:
        import os
        workers = os.cpu_count() or 1
    workers = max(1, min(int(workers), max(programs, 1)))
    chunk = max(1, -(-programs // max(1, 4 * workers)))
    shards = [(start, min(chunk, programs - start))
              for start in range(0, programs, chunk)]
    args = [(seed, start, count, faults_per_program, max_cycles,
             min_blocks, max_blocks, cores, lockstep_mode, duty)
            for start, count in shards]

    if workers == 1:
        results = [_run_shard(*a) for a in args]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_run_shard, *zip(*args)))

    outcomes: list[FaultOutcome] = []
    golden_cycles: dict[int, int] = {}
    mismatched: list[int] = []
    mode_duty: dict[int, float] = {}
    done = 0
    for start, shard_outcomes, shard_cycles, shard_mm, shard_duty \
            in sorted(results, key=lambda r: r[0]):
        outcomes.extend(shard_outcomes)
        golden_cycles.update(shard_cycles)
        mismatched.extend(shard_mm)
        mode_duty.update(shard_duty)
        done += len(shard_cycles)
        if progress:
            print(f"[faultfuzz] {done}/{programs} programs, "
                  f"{len(outcomes)} faults", flush=True)
    return FaultFuzzReport(
        programs=programs, seed=seed, outcomes=outcomes,
        golden_cycles=golden_cycles, ref_mismatches=sorted(mismatched),
        mode_duty=mode_duty,
        wall_seconds=time.perf_counter() - t0,
        meta={"faults_per_program": faults_per_program, "workers": workers,
              "max_cycles": max_cycles, "cores": cores,
              "lockstep_mode": lockstep_mode, "duty": duty})
