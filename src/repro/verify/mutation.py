"""Mutation testing of the verification stack itself.

Fuzzers and checkers rot silently: a comparison that stops comparing
still passes every test that assumes bugs are absent.  This module
measures *detection strength* directly by planting known bugs
(**mutants**) and counting how many fuzz programs each needs to die:

* **ALU / branch mutants** corrupt one opcode in the reference model's
  monkeypatchable dispatch tables (:data:`repro.verify.refmodel.ALU_EVAL`
  / :data:`BRANCH_EVAL`) — a stand-in for a semantic bug on either side
  of the differential fence.  A mutant is *killed* when plain
  :func:`repro.verify.diff.cosim` fuzzing reports its first mismatch.
* **Checker mutants** break the lockstep comparator itself through the
  late-bound hooks in :mod:`repro.lockstep.checker` — a dropped port
  comparison, a masked bit, an off-by-one in the diverged-SC
  extraction, a broken voter majority.  Plain fuzzing can never see
  these (both cores are fault-free), so each is judged under
  fuzz-with-fault-injection (:mod:`repro.verify.faultfuzz`) driving a
  **voted TMR triple** through the real
  :class:`~repro.lockstep.checker.VotingChecker`: the mutant is killed
  by the first program whose per-fault outcomes (classification,
  detection cycle, diverged-SC set, erring-CPU attribution,
  voted-value correctness) differ from the unmutated baseline.  The
  TMR engine subsumes the DMR one — the voter's agree fast path is the
  same ``port_equal`` hook — while additionally exercising the
  majority kernel (``vote_value``) and the erring-core attribution
  that a two-core pair never touches.

The session produces a **detection-strength curve** — fraction of
mutants killed within N programs — written to ``BENCH_mutation.json``
so verification strength is a tracked trajectory alongside the
campaign perf benchmarks.  Mutants expected to survive carry an
``escape_rationale`` and are reported as *documented escapes*; a
survivor without one fails the session (that is the mutation-testing
alarm going off).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..cpu.isa import Op
from ..lockstep import checker as checker_mod
from . import refmodel as rm
from .diff import DEFAULT_MAX_CYCLES, cosim
from .faultfuzz import (
    _golden_run,
    _state_diff,
    run_one_fault,
    sample_faults,
    sample_slots,
)
from .progen import FUZZ_MEM_WORDS, generate_program
from .refmodel import MASK32, RefModel, _sx

#: Program counts at which the detection-strength curve is sampled.
CURVE_POINTS = (1, 2, 5, 10, 20, 50, 100, 150, 200)


@dataclass(frozen=True)
class Mutant:
    """One plantable bug.

    ``target``/``key`` name the patch point: an ``ALU_EVAL`` /
    ``BRANCH_EVAL`` dict entry (``key`` = opcode int) or an attribute
    of :mod:`repro.lockstep.checker` (``key`` = attribute name).
    ``escape_rationale`` marks a mutant we *expect* the harness cannot
    kill, with the justification that makes the escape acceptable.
    """

    name: str
    kind: str               #: "alu" | "branch" | "checker"
    description: str
    key: object
    fn: object
    escape_rationale: str = ""

    def apply(self):
        """Plant the bug; returns a zero-arg revert callable."""
        if self.kind == "checker":
            target = checker_mod
            attr = self.key
            if "." in attr:                 # e.g. "VotingChecker.vote"
                cls, attr = attr.split(".", 1)
                target = getattr(checker_mod, cls)
            original = getattr(target, attr)
            setattr(target, attr, self.fn)
            return lambda: setattr(target, attr, original)
        table = rm.ALU_EVAL if self.kind == "alu" else rm.BRANCH_EVAL
        original = table[self.key]
        table[self.key] = self.fn
        def revert(table=table, key=self.key, original=original):
            table[key] = original
        return revert


# -- the mutant pool ----------------------------------------------------------

def _drop_port(index: int):
    """A ``port_equal`` that never compares compact port ``index``."""
    def unequal_except(a, b, _i=index):
        for j, (x, y) in enumerate(zip(a, b)):
            if x != y and j != _i:
                return False
        return True
    return unequal_except


def _mask_ev_sys_low(a, b):
    """``port_equal`` blind to ev_sys bit 0 (the in-exception flag)."""
    return a[:16] + (a[16] & ~1,) + a[17:] == b[:16] + (b[16] & ~1,) + b[17:]


def _diverged_off_by_one(vec_a, vec_b):
    """``diverged_set`` whose SC indices are shifted up by one."""
    from ..lockstep.categories import NUM_SCS
    return frozenset(min(sc + 1, NUM_SCS - 1)
                     for sc in range(NUM_SCS) if vec_a[sc] != vec_b[sc])


def _vote_value_min(values):
    """A broken majority kernel: always resolves to the smallest value."""
    return min(values)


def default_mutants() -> tuple[Mutant, ...]:
    """The standard pool: 8 ALU, 4 branch, 6 checker mutants."""
    return (
        # -- ALU: single-opcode semantic bugs in the dispatch table --
        Mutant("alu_xor_flip", "alu", "XOR result low bit inverted",
               int(Op.XOR), lambda a, b: ((a ^ b) ^ 1, 0, 0)),
        Mutant("alu_sub_swapped", "alu", "SUB computes b - a",
               int(Op.SUB), lambda a, b: rm._ev_sub(b, a)),
        Mutant("alu_and_to_or", "alu", "AND computes a | b",
               int(Op.AND), lambda a, b: (a | b, 0, 0)),
        Mutant("alu_shl_amount", "alu", "SHL shifts by (b + 1) & 31",
               int(Op.SHL), lambda a, b: ((a << ((b + 1) & 31)) & MASK32, 0, 0)),
        Mutant("alu_sra_logical", "alu", "SRA loses the sign extension",
               int(Op.SRA), lambda a, b: (a >> (b & 31), 0, 0)),
        Mutant("alu_slt_unsigned", "alu", "SLT compares unsigned",
               int(Op.SLT), lambda a, b: ((1 if a < b else 0), 0, 0)),
        Mutant("alu_ori_drop_low", "alu", "ORI clears result bit 0",
               int(Op.ORI), lambda a, b: ((a | b) & ~1 & MASK32, 0, 0)),
        Mutant("alu_add_carry_stuck", "alu",
               "ADD carry flag stuck at 0 (result intact)",
               int(Op.ADD), lambda a, b: (rm._ev_add(a, b)[0], 0,
                                          rm._ev_add(a, b)[2])),
        # -- branch: comparator bugs --
        Mutant("br_beq_inverted", "branch", "BEQ takes on inequality",
               int(Op.BEQ), lambda a, b: a != b),
        Mutant("br_blt_unsigned", "branch", "BLT compares unsigned",
               int(Op.BLT), lambda a, b: a < b),
        Mutant("br_bge_strict", "branch", "BGE drops the equality case",
               int(Op.BGE), lambda a, b: _sx(a) > _sx(b)),
        Mutant("br_bgeu_swapped", "branch", "BGEU compares b >= a",
               int(Op.BGEU), lambda a, b: b >= a),
        # -- checker: broken comparator / DSR extraction --
        Mutant("chk_drop_ret_val", "checker",
               "checker never compares the retire-value port",
               "port_equal", _drop_port(13)),
        Mutant("chk_drop_io_out", "checker",
               "checker never compares the OUT-data port",
               "port_equal", _drop_port(10)),
        Mutant("chk_drop_imc_pred", "checker",
               "checker never compares the BTB-prediction bit",
               "port_equal", _drop_port(2)),
        Mutant("chk_mask_ev_sys_low", "checker",
               "checker blind to the in-exception status bit",
               "port_equal", _mask_ev_sys_low),
        Mutant("chk_dsr_off_by_one", "checker",
               "DSR diverged-SC indices shifted up by one",
               "diverged_set", _diverged_off_by_one),
        Mutant("chk_voter_min_majority", "checker",
               "TMR voter resolves the minimum instead of the majority",
               "vote_value", _vote_value_min),
    )


# -- kill engines -------------------------------------------------------------

def kill_by_cosim(mutant: Mutant, seed: int, max_programs: int, *,
                  max_cycles: int = DEFAULT_MAX_CYCLES) -> int | None:
    """Fuzz until plain co-simulation flags the mutant; None = survived.

    Returns the 1-based count of programs consumed (the kill cost).
    """
    revert = mutant.apply()
    try:
        for i in range(max_programs):
            prog = generate_program(f"{seed}:{i}")
            if not cosim(prog, max_cycles=max_cycles).ok:
                return i + 1
        return None
    finally:
        revert()


class _FaultSession:
    """Shared per-program fault-fuzz contexts for checker mutants.

    The golden trace, reference final state and the *unmutated*
    baseline outcomes of each program are computed once and reused by
    every checker mutant — only the mutated re-run is per-mutant.
    ``cores=3`` runs each fault as a voted triple through the
    :class:`~repro.lockstep.checker.VotingChecker` (the engine checker
    mutants are judged under); ``cores=2`` keeps the historical DMR
    pair.
    """

    def __init__(self, seed: int, *, faults_per_program: int = 4,
                 max_cycles: int = DEFAULT_MAX_CYCLES, cores: int = 2):
        self.seed = seed
        self.faults_per_program = faults_per_program
        self.max_cycles = max_cycles
        self.cores = cores
        self._ctx: dict[int, tuple | None] = {}
        self._baseline: dict[int, tuple] = {}

    def _context(self, i: int):
        if i in self._ctx:
            return self._ctx[i]
        from ..cpu.assembler import assemble
        from ..cpu.memory import InputStream, Memory

        prog = generate_program(f"{self.seed}:{i}")
        program = assemble(prog.source())
        g_ports, g_frozen, g_cpu, cycles = _golden_run(
            program, prog.stimulus, self.max_cycles)
        ref = RefModel(Memory.from_program(program, size_words=FUZZ_MEM_WORDS),
                       InputStream(prog.stimulus), entry=program.entry)
        ref.run(max_steps=self.max_cycles)
        ref_state = ref.arch_state()
        ref_words = ref.mem.words
        ctx = None
        if (g_cpu.halted and ref.halted
                and not _state_diff(g_cpu, ref_state, ref_words)):
            faults = sample_faults(self.seed, i, cycles,
                                   self.faults_per_program)
            ctx = (program, prog.stimulus, faults, g_ports, g_frozen,
                   ref_state, ref_words)
        self._ctx[i] = ctx
        return ctx

    def outcomes(self, i: int) -> tuple | None:
        """Outcome fingerprints of program ``i`` under the *current*
        (possibly mutated) checker; None for unusable programs."""
        ctx = self._context(i)
        if ctx is None:
            return None
        program, stimulus, faults, g_ports, g_frozen, ref_state, ref_words = ctx
        slots = sample_slots(self.seed, i, self.faults_per_program, self.cores)
        fps = []
        for fault, slot in zip(faults, slots):
            o = run_one_fault(program, stimulus, fault, g_ports, g_frozen,
                              ref_state, ref_words, program_index=i,
                              cores=self.cores, faulty_slot=slot)
            fps.append((o.classification, o.detect_cycle,
                        tuple(sorted(o.diverged)), o.erring_cpu,
                        o.vote_golden))
        return tuple(fps)

    def baseline(self, i: int) -> tuple | None:
        """Unmutated fingerprints (must be called with no mutant live)."""
        if i not in self._baseline:
            self._baseline[i] = self.outcomes(i)
        return self._baseline[i]


def kill_by_faultfuzz(mutant: Mutant, session: _FaultSession,
                      max_programs: int) -> int | None:
    """Fault-fuzz until the mutated checker's outcomes diverge from the
    baseline; None = survived ``max_programs`` programs."""
    for i in range(max_programs):
        base = session.baseline(i)     # computed unmutated
        if base is None:
            continue
        revert = mutant.apply()
        try:
            mutated = session.outcomes(i)
        finally:
            revert()
        if mutated != base:
            return i + 1
    return None


# -- session driver -----------------------------------------------------------

@dataclass
class MutationReport:
    """Result of one mutation-testing session."""

    seed: int
    max_programs: int
    checker_programs: int
    results: list[dict]
    wall_seconds: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def killed(self) -> list[dict]:
        return [r for r in self.results if r["killed_at"] is not None]

    @property
    def survivors(self) -> list[dict]:
        return [r for r in self.results if r["killed_at"] is None]

    @property
    def undocumented_survivors(self) -> list[dict]:
        """Survivors with no escape rationale — the failure signal."""
        return [r for r in self.survivors if not r["escape_rationale"]]

    def kill_rate(self, kinds: tuple[str, ...] = ("alu", "branch", "checker")
                  ) -> float:
        pool = [r for r in self.results if r["kind"] in kinds]
        if not pool:
            return 1.0
        return sum(r["killed_at"] is not None for r in pool) / len(pool)

    def curve(self, kinds: tuple[str, ...] | None = None
              ) -> list[tuple[int, float]]:
        """Detection strength: fraction of mutants killed within N.

        ``kinds`` restricts the pool (e.g. ``("checker",)`` gives the
        TMR fault-fuzz detection-strength curve); the horizon is the
        matching program budget.
        """
        pool = [r for r in self.results
                if kinds is None or r["kind"] in kinds]
        n = max(len(pool), 1)
        horizon = (self.checker_programs if kinds == ("checker",)
                   else self.max_programs)
        return [(p, sum(1 for r in pool
                        if r["killed_at"] is not None and r["killed_at"] <= p) / n)
                for p in CURVE_POINTS if p <= horizon]

    def to_json(self) -> dict:
        return {
            "schema": 2,
            "seed": self.seed,
            "max_programs": self.max_programs,
            "checker_programs": self.checker_programs,
            "mutants": self.results,
            "curve": [[p, round(f, 4)] for p, f in self.curve()],
            #: checker mutants only, killed through the voted TMR
            #: fault-fuzz engine — the voter-path detection strength.
            "checker_tmr_curve": [[p, round(f, 4)]
                                  for p, f in self.curve(("checker",))],
            "kill_rate": round(self.kill_rate(), 4),
            "alu_branch_kill_rate": round(self.kill_rate(("alu", "branch")), 4),
            "checker_kill_rate": round(self.kill_rate(("checker",)), 4),
            "documented_escapes": [
                {"name": r["name"], "rationale": r["escape_rationale"]}
                for r in self.survivors if r["escape_rationale"]],
            "undocumented_survivors": [r["name"]
                                       for r in self.undocumented_survivors],
            "wall_seconds": round(self.wall_seconds, 3),
            "meta": self.meta,
        }

    def report(self) -> str:
        lines = ["== mutation testing =="]
        for r in self.results:
            if r["killed_at"] is not None:
                verdict = f"killed at program {r['killed_at']}"
            elif r["escape_rationale"]:
                verdict = f"documented escape ({r['escape_rationale']})"
            else:
                verdict = "SURVIVED — undocumented!"
            lines.append(f"  {r['name']:24s} [{r['kind']:7s}] {verdict}")
        lines.append(
            f"kill rate: {100 * self.kill_rate():.1f}% overall, "
            f"{100 * self.kill_rate(('alu', 'branch')):.1f}% alu/branch, "
            f"{100 * self.kill_rate(('checker',)):.1f}% checker")
        lines.append("curve (N programs -> fraction killed): " + "  ".join(
            f"{p}:{f:.2f}" for p, f in self.curve()))
        return "\n".join(lines)


def run_mutation(seed: int = 0, *, max_programs: int = 200,
                 checker_programs: int = 200,
                 faults_per_program: int = 4,
                 mutants: tuple[Mutant, ...] | None = None,
                 max_cycles: int = DEFAULT_MAX_CYCLES,
                 checker_cores: int = 3,
                 progress: bool = False) -> MutationReport:
    """Run the full mutation-testing session.

    ALU/branch mutants fuzz up to ``max_programs`` plain cosim
    programs; checker mutants fault-fuzz up to ``checker_programs``
    voted ``checker_cores``-way triples (each costs a golden run plus
    ``faults_per_program`` fault runs, shared across mutants via one
    :class:`_FaultSession`).  The TMR engine is the default because it
    is strictly stronger: it keeps the ``port_equal`` fast path on the
    detection path *and* exercises the voter majority / attribution
    hooks a DMR pair never reaches.
    """
    pool = mutants if mutants is not None else default_mutants()
    session = _FaultSession(seed, faults_per_program=faults_per_program,
                            max_cycles=max_cycles, cores=checker_cores)
    engine_name = (f"faultfuzz-tmr{checker_cores}" if checker_cores > 2
                   else "faultfuzz-dmr")
    results: list[dict] = []
    t0 = time.perf_counter()
    for mutant in pool:
        if mutant.kind == "checker":
            killed_at = kill_by_faultfuzz(mutant, session, checker_programs)
            engine = engine_name
        else:
            killed_at = kill_by_cosim(mutant, seed, max_programs,
                                      max_cycles=max_cycles)
            engine = "cosim"
        results.append({
            "name": mutant.name, "kind": mutant.kind,
            "description": mutant.description,
            "killed_at": killed_at,
            "engine": engine,
            "escape_rationale": mutant.escape_rationale,
        })
        if progress:
            state = (f"killed@{killed_at}" if killed_at is not None
                     else "survived")
            print(f"[mutate] {mutant.name}: {state}", flush=True)
    return MutationReport(
        seed=seed, max_programs=max_programs,
        checker_programs=checker_programs, results=results,
        wall_seconds=time.perf_counter() - t0,
        meta={"faults_per_program": faults_per_program,
              "n_mutants": len(pool), "checker_cores": checker_cores})


def write_report(report: MutationReport,
                 path: str | Path = "BENCH_mutation.json") -> Path:
    """Serialise the session to its tracked JSON artifact."""
    path = Path(path)
    path.write_text(json.dumps(report.to_json(), indent=2) + "\n")
    return path
