"""Seeded constrained-random SR5 program generator.

Programs are built from weighted *blocks*, each a template that
deliberately stresses one pipeline mechanism:

* ``alu``     — back-to-back RAW chains over a small register window
  (forwarding / bypass network);
* ``mul``     — MUL/MULH with immediately-dependent consumers
  (two-cycle stall adjacency);
* ``mem``     — aliasing and non-aliasing LD/LDB/ST/STB bursts
  (store-buffer fill, drain-before-load);
* ``loop``    — counted loops with an alternating taken/not-taken
  inner branch (BTB learn/mispredict storms);
* ``fwd``     — data-dependent forward branches;
* ``call``    — JAL/JALR subroutine call and return (BTB on indirect
  targets);
* ``io``      — IN/OUT bursts against the replicated stimulus stream;
* ``csr``     — scratch/flags/counter CSR traffic;
* ``bkpt`` / ``watch`` / ``irq`` / ``mpu`` — arm a debug breakpoint,
  data watchpoint, software interrupt or MPU region so the exception
  path (precise trap, handler, resume) is exercised.

Termination is guaranteed by construction: every backward branch is a
counted loop over the reserved counter registers, every trap source is
cleared by the shared handler before resuming, and generated code
never stores into the code region (all data traffic goes through the
reserved ``r14`` base pointer into a disjoint data segment), so the
core cannot wander into self-modifying code — whose behaviour is
*micro*architectural (fetch-ahead) and therefore out of the reference
model's contract.

Register convention (the generator's constraint set):

====  =======================================================
r1-r10  free pool: random blocks read anywhere, write only here
r11     inner loop counter (written only by loop headers)
r12     inner loop limit   (written only by loop headers)
r13     trap-handler scratch
r14     data-segment base pointer (set once in init)
r15     link register for call blocks
====  =======================================================

Each emitted :class:`Line` is an atomic chunk of assembly marked
``removable`` when deleting it cannot break assembly or termination —
the exact structure the delta-debugging shrinker
(:func:`repro.verify.diff.shrink`) operates on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: Byte address where the data segment starts (code must stay below).
DATA_BASE = 4096
#: Size of the data segment in bytes (word-aligned offsets 0..1020).
DATA_SIZE = 1024
#: Memory size (words) used for fuzzing: 16 KiB covers code + data.
FUZZ_MEM_WORDS = 4096

#: Free register pool the random blocks may write.
_POOL = tuple(range(1, 11))

#: Shared exception prologue: the handler reports the cause on port 7,
#: disarms every trap source it could have come from, clears the
#: in-exception status bit and resumes at the faulting pc.
PROLOGUE_LINES = (
    "_start:",
    "    jal  r0, main",
    ".org 0x8",
    "handler:",
    "    csrr r13, 4        ; cause",
    "    out  r13, 7",
    "    csrw r0, 11        ; dbg_ctrl  <- 0 (disarm bkpt/watch)",
    "    csrw r0, 13        ; irq_pending <- 0",
    "    csrw r0, 22        ; mpu_ctrl  <- 0",
    "    csrw r0, 1         ; status    <- 0 (leave exception state)",
    "    csrr r13, 5        ; epc",
    "    jalr r0, r13, 0    ; resume at the faulting instruction",
    "main:",
)

#: Trap-free prologue variant the shrinker may substitute when the
#: minimal repro no longer needs the resume path (a trap then simply
#: halts, which both simulators model identically).
STUB_PROLOGUE_LINES = (
    "_start:",
    "    jal  r0, main",
    ".org 0x8",
    "handler:",
    "    halt",
    "main:",
)


@dataclass
class Line:
    """One atomic chunk of assembly (possibly several physical lines)."""

    text: str
    removable: bool = True


@dataclass
class Block:
    """A generated template instance; ``kind`` names the template."""

    kind: str
    lines: list[Line] = field(default_factory=list)


@dataclass
class FuzzProgram:
    """A generated program plus its replicated input stimulus."""

    seed: object
    blocks: list[Block]
    stimulus: list[int]
    #: True once the shrinker swapped in the stub prologue.
    stub_handler: bool = False

    def source(self, excluded: frozenset[tuple[int, int]] = frozenset()) -> str:
        """Render assembly, skipping ``(block_idx, line_idx)`` pairs."""
        parts: list[str] = []
        for bi, block in enumerate(self.blocks):
            if block.kind == "prologue" and self.stub_handler:
                parts.extend(STUB_PROLOGUE_LINES)
                continue
            for li, line in enumerate(block.lines):
                if (bi, li) not in excluded:
                    parts.append(line.text)
        return "\n".join(parts) + "\n"

    def instruction_count(self) -> int:
        """Instructions in the rendered source (directives/labels excluded)."""
        count = 0
        for raw in self.source().splitlines():
            stripped = raw.split(";")[0].strip()
            while ":" in stripped:
                stripped = stripped.partition(":")[2].strip()
            if stripped and not stripped.startswith("."):
                count += 1
        return count

    def removable_keys(self) -> list[tuple[int, int]]:
        """All ``(block_idx, line_idx)`` pairs the shrinker may drop."""
        return [(bi, li)
                for bi, block in enumerate(self.blocks)
                for li, line in enumerate(block.lines) if line.removable]


class _Gen:
    """One generation session over a seeded ``random.Random``."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.label = 0

    def fresh(self, stem: str) -> str:
        self.label += 1
        return f"{stem}_{self.label}"

    def reg(self) -> int:
        return self.rng.choice(_POOL)

    def src(self) -> int:
        """A source register: the pool plus the hardwired zero."""
        return self.rng.choice((0,) + _POOL)

    def data_off(self, align: int = 4) -> int:
        """A random in-segment byte offset with the given alignment."""
        return self.rng.randrange(0, DATA_SIZE, align)

    # -- leaf instruction makers -----------------------------------------

    def alu_line(self, window: list[int] | None = None) -> str:
        """One random ALU instruction; ``window`` biases RAW chains."""
        rng = self.rng
        rd = rng.choice(window) if window and rng.random() < 0.7 else self.reg()
        ra = rng.choice(window) if window and rng.random() < 0.7 else self.src()
        if rng.random() < 0.55:
            op = rng.choice(("add", "sub", "and", "or", "xor", "shl", "shr",
                             "sra", "slt", "sltu"))
            return f"    {op:4s} r{rd}, r{ra}, r{self.src()}"
        op = rng.choice(("addi", "andi", "ori", "xori", "slti",
                         "shli", "shri", "srai"))
        if op in ("shli", "shri", "srai"):
            imm = rng.randrange(0, 32)
        else:
            imm = rng.randrange(-8192, 8192)
        return f"    {op:4s} r{rd}, r{ra}, {imm}"

    def body_line(self) -> str:
        """A loop/branch body instruction (ALU, memory or I/O)."""
        roll = self.rng.random()
        if roll < 0.6:
            return self.alu_line()
        if roll < 0.75:
            return f"    ld   r{self.reg()}, {self.data_off()}(r14)"
        if roll < 0.9:
            return f"    st   r{self.src()}, {self.data_off()}(r14)"
        if roll < 0.95:
            return f"    in   r{self.reg()}, 0"
        return f"    out  r{self.src()}, {self.rng.randrange(8)}"

    # -- block templates -------------------------------------------------

    def block_alu(self) -> Block:
        window = self.rng.sample(_POOL, k=self.rng.randrange(2, 4))
        lines = [Line(self.alu_line(window))
                 for _ in range(self.rng.randrange(3, 9))]
        return Block("alu", lines)

    def block_mul(self) -> Block:
        rng = self.rng
        lines = []
        for _ in range(rng.randrange(1, 4)):
            rd = self.reg()
            op = rng.choice(("mul", "mulh"))
            lines.append(Line(f"    {op:4s} r{rd}, r{self.src()}, r{self.src()}"))
            # Immediate consumer: forwarding right after the stall.
            lines.append(Line(f"    add  r{self.reg()}, r{rd}, r{self.src()}"))
        return Block("mul", lines)

    def block_mem(self) -> Block:
        rng = self.rng
        lines = []
        base_off = self.data_off()
        for _ in range(rng.randrange(3, 8)):
            roll = rng.random()
            # Half the traffic aliases one hot word: store->load drain,
            # store->store overwrite, byte/word mixing on one address.
            off = base_off if roll < 0.5 else self.data_off()
            kind = rng.random()
            if kind < 0.35:
                lines.append(Line(f"    st   r{self.src()}, {off}(r14)"))
            elif kind < 0.5:
                lines.append(Line(f"    stb  r{self.src()}, {off + rng.randrange(4)}(r14)"))
            elif kind < 0.85:
                lines.append(Line(f"    ld   r{self.reg()}, {off}(r14)"))
            else:
                lines.append(Line(f"    ldb  r{self.reg()}, {off + rng.randrange(4)}(r14)"))
        return Block("mem", lines)

    def block_loop(self) -> Block:
        rng = self.rng
        loop = self.fresh("loop")
        skip = self.fresh("skip")
        iters = rng.randrange(3, 11)
        toggler = self.reg()
        lines = [
            Line("    addi r11, r0, 0", removable=False),
            Line(f"    addi r12, r0, {iters}", removable=False),
            Line(f"{loop}:", removable=False),
        ]
        lines += [Line(self.body_line()) for _ in range(rng.randrange(1, 5))]
        lines += [
            Line(f"    andi r{toggler}, r11, 1", removable=False),
            Line(f"    beq  r{toggler}, r0, {skip}", removable=False),
        ]
        lines += [Line(self.body_line()) for _ in range(rng.randrange(1, 3))]
        lines += [
            Line(f"{skip}:", removable=False),
            Line("    addi r11, r11, 1", removable=False),
            Line(f"    bne  r11, r12, {loop}", removable=False),
        ]
        return Block("loop", lines)

    def block_fwd(self) -> Block:
        rng = self.rng
        label = self.fresh("fwd")
        cond = rng.choice(("beq", "bne", "blt", "bge", "bltu", "bgeu"))
        lines = [
            Line(f"    {cond:4s} r{self.src()}, r{self.src()}, {label}",
                 removable=False),
        ]
        lines += [Line(self.body_line()) for _ in range(rng.randrange(1, 4))]
        lines.append(Line(f"{label}:", removable=False))
        return Block("fwd", lines)

    def block_call(self) -> tuple[Block, Block]:
        sub = self.fresh("sub")
        call = Block("call", [Line(f"    jal  r15, {sub}", removable=False)])
        body = [Line(f"{sub}:", removable=False)]
        body += [Line(self.alu_line()) for _ in range(self.rng.randrange(1, 4))]
        body.append(Line("    jalr r0, r15, 0", removable=False))
        return call, Block("sub", body)

    def block_io(self) -> Block:
        lines = []
        for _ in range(self.rng.randrange(2, 6)):
            if self.rng.random() < 0.55:
                lines.append(Line(f"    in   r{self.reg()}, {self.rng.randrange(8)}"))
            else:
                lines.append(Line(f"    out  r{self.src()}, {self.rng.randrange(8)}"))
        return Block("io", lines)

    def block_csr(self) -> Block:
        rng = self.rng
        lines = []
        for _ in range(rng.randrange(2, 5)):
            roll = rng.random()
            if roll < 0.3:
                lines.append(Line(f"    csrw r{self.src()}, 2   ; scratch"))
            elif roll < 0.5:
                lines.append(Line(f"    csrr r{self.reg()}, 2   ; scratch"))
            elif roll < 0.65:
                lines.append(Line(f"    csrr r{self.reg()}, 3   ; flags"))
            elif roll < 0.8:
                reg = self.reg()
                lines.append(Line(f"    addi r{reg}, r0, 128\n"
                                  f"    csrw r{reg}, 1   ; enable perf counters"))
            else:
                csr = rng.choice((4, 5, 6, 7))   # cause/epc/cnt_branch/cnt_mem
                lines.append(Line(f"    csrr r{self.reg()}, {csr}"))
        return Block("csr", lines)

    def block_bkpt(self) -> Block:
        target = self.fresh("bkpt")
        reg = self.reg()
        slot = self.rng.choice((0, 1))          # bkpt0 or bkpt1
        arm = (f"    addi r{reg}, r0, {target}\n"
               f"    csrw r{reg}, {8 + slot}   ; dbg_bkpt{slot}\n"
               f"    addi r{reg}, r0, {1 + slot}\n"
               f"    csrw r{reg}, 11  ; arm breakpoint")
        return Block("bkpt", [
            Line(arm),
            Line(self.alu_line()),
            Line(f"{target}:\n    nop", removable=False),
        ])

    def block_watch(self) -> Block:
        reg = self.reg()
        off = self.data_off()
        arm = (f"    addi r{reg}, r0, {DATA_BASE + off}\n"
               f"    csrw r{reg}, 10  ; dbg_watch0\n"
               f"    addi r{reg}, r0, 4\n"
               f"    csrw r{reg}, 11  ; arm watchpoint")
        hit = (f"    st   r{self.src()}, {off}(r14)"
               if self.rng.random() < 0.5 else
               f"    ld   r{self.reg()}, {off}(r14)")
        return Block("watch", [Line(arm), Line(hit)])

    def block_irq(self) -> Block:
        rng = self.rng
        reg = self.reg()
        mask = rng.randrange(1, 256)
        # Pending bits overlap the mask so the interrupt actually fires.
        pending = mask | rng.randrange(0, 256)
        arm = (f"    addi r{reg}, r0, {mask}\n"
               f"    csrw r{reg}, 12  ; irq_mask\n"
               f"    addi r{reg}, r0, {pending}\n"
               f"    csrw r{reg}, 13  ; irq_pending -> trap next boundary")
        return Block("irq", [Line(arm), Line("    nop")])

    def block_mpu(self) -> Block:
        reg = self.reg()
        lo = self.data_off()
        hi = min(lo + self.rng.randrange(4, 128, 4), DATA_SIZE)
        inside = lo + self.rng.randrange(0, max(hi - lo, 4), 4)
        arm = (f"    addi r{reg}, r0, {DATA_BASE + lo}\n"
               f"    csrw r{reg}, 14  ; mpu_base0\n"
               f"    addi r{reg}, r0, {DATA_BASE + hi}\n"
               f"    csrw r{reg}, 18  ; mpu_limit0\n"
               f"    addi r{reg}, r0, 3\n"
               f"    csrw r{reg}, 22  ; mpu_ctrl: trap region 0")
        return Block("mpu", [
            Line(arm),
            Line(f"    st   r{self.src()}, {inside}(r14)"),
        ])


#: Template weights: the hazard-heavy templates dominate; each trap
#: template still appears in a few percent of programs so every
#: exception coverage bin fills within a couple hundred programs.
_TEMPLATE_WEIGHTS = (
    ("alu", 24), ("mem", 16), ("loop", 14), ("mul", 10), ("fwd", 8),
    ("io", 7), ("csr", 6), ("call", 5),
    ("bkpt", 3), ("watch", 3), ("irq", 2), ("mpu", 2),
)


#: Pipeline-event bin -> templates engineered to hit it.  The mapping
#: drives :func:`adaptive_weights`: a bin the session under-hits boosts
#: exactly the templates that can fill it.
_BIN_TEMPLATES: dict[str, tuple[str, ...]] = {
    "flush": ("loop", "fwd"),
    "stall": ("mul",),
    "sb_drain": ("mem",),
    "btb_hit": ("loop", "call"),
    "btb_miss": ("loop", "fwd", "call"),
    "branch_taken": ("loop", "fwd"),
    "branch_not_taken": ("loop", "fwd"),
    "exc_IRQ": ("irq",),
    "exc_BKPT": ("bkpt",),
    "exc_WATCH": ("watch",),
    "exc_MPU": ("mpu",),
}


def adaptive_weights(bins: dict[str, int],
                     base: tuple[tuple[str, float], ...] = _TEMPLATE_WEIGHTS,
                     *, boost: float = 4.0) -> tuple[tuple[str, float], ...]:
    """Coverage-directed template reweighting.

    ``bins`` is :meth:`repro.verify.coverage.Coverage.event_bins` —
    counts per required pipeline-event bin.  Each template's weight is
    multiplied by ``1 + boost * rarity`` where *rarity* is the worst
    (largest) relative deficit across the bins it feeds: ``1 -
    count/median`` clamped to ``[0, 1]``.  A bin at or above the median
    contributes nothing; an empty bin pulls its templates up by the
    full ``1 + boost``.  Templates feeding no tracked bin keep their
    base weight.

    The result is always a valid sampling distribution: same template
    names in the same order, every weight finite and strictly positive
    (property-tested over adversarial bin counts).
    """
    counts = sorted(bins.get(name, 0) for name in _BIN_TEMPLATES)
    median = counts[len(counts) // 2] if counts else 0
    rarity: dict[str, float] = {}
    for bin_name, templates in _BIN_TEMPLATES.items():
        count = bins.get(bin_name, 0)
        deficit = 1.0 - count / median if median > 0 else (1.0 if not count else 0.0)
        deficit = min(max(deficit, 0.0), 1.0)
        for t in templates:
            rarity[t] = max(rarity.get(t, 0.0), deficit)
    return tuple((name, float(w) * (1.0 + boost * rarity.get(name, 0.0)))
                 for name, w in base)


def generate_program(seed: object, min_blocks: int = 4,
                     max_blocks: int = 10, *,
                     weights: tuple[tuple[str, float], ...] | None = None
                     ) -> FuzzProgram:
    """Generate one terminating random program for the given seed.

    ``weights`` overrides the static template distribution (same names,
    any positive weights) — the hook coverage-directed generation uses
    to steer later batches toward under-covered event bins.
    """
    rng = random.Random(str(seed))
    gen = _Gen(rng)

    prologue = Block("prologue", [Line(t, removable=False)
                                  for t in PROLOGUE_LINES])
    init_lines = [Line("    addi r14, r0, %d" % DATA_BASE, removable=False)]
    for reg in rng.sample(_POOL, k=rng.randrange(4, 9)):
        if rng.random() < 0.5:
            hi = rng.randrange(0, 1 << 16)
            init_lines.append(Line(f"    lui  r{reg}, {hi:#x}\n"
                                   f"    addi r{reg}, r{reg}, {rng.randrange(-8192, 8192)}"))
        else:
            init_lines.append(Line(f"    addi r{reg}, r0, {rng.randrange(-8192, 8192)}"))
    init = Block("init", init_lines)

    table = _TEMPLATE_WEIGHTS if weights is None else weights
    names = [name for name, _ in table]
    dist = [w for _, w in table]
    body: list[Block] = []
    subs: list[Block] = []
    for _ in range(rng.randrange(min_blocks, max_blocks + 1)):
        kind = rng.choices(names, weights=dist, k=1)[0]
        if kind == "call":
            call, sub = gen.block_call()
            body.append(call)
            subs.append(sub)
        else:
            body.append(getattr(gen, f"block_{kind}")())

    epilogue_lines = [Line(f"    out  r{reg}, 0")
                      for reg in rng.sample(_POOL, k=3)]
    epilogue_lines.append(Line("    halt", removable=False))
    epilogue = Block("epilogue", epilogue_lines)

    stimulus = [rng.randrange(0, 1 << 32) for _ in range(64)]
    blocks = [prologue, init, *body, epilogue, *subs]
    return FuzzProgram(seed=seed, blocks=blocks, stimulus=stimulus)


def program_strategy(min_blocks: int = 4, max_blocks: int = 8):
    """A Hypothesis strategy drawing random :class:`FuzzProgram` values.

    Lets property tests fuzz the pipeline directly::

        @given(program_strategy())
        def test_pipeline_matches_reference(prog):
            assert cosim(prog).ok

    Hypothesis shrinks over the integer seed; for a minimal *program*
    apply :func:`repro.verify.diff.shrink` to the failing value.
    """
    from hypothesis import strategies as st

    return st.integers(min_value=0, max_value=2**63 - 1).map(
        lambda s: generate_program(s, min_blocks=min_blocks,
                                   max_blocks=max_blocks))
