"""Single-step ISA-level architectural reference model of the SR5 core.

:class:`RefModel` executes one *instruction* per :meth:`RefModel.step`
with no pipeline, no branch prediction, no store buffer and no
interface registers — just the architectural contract of the ISA:
sixteen registers, NZCV flags, the CSR file, flat memory, the
replicated input stream and the OUT port stream.  It reuses
:mod:`repro.cpu.isa` for decoding but implements execution
independently of :mod:`repro.cpu.core`, so a pipeline bug (broken
forwarding, missed flush, store-buffer aliasing, MUL-stall corruption)
and a reference bug would have to coincide exactly to go unnoticed by
the differential fuzzer (:mod:`repro.verify.diff`).

Semantics intentionally mirrored from the pipeline's DX stage, which
is the core's precise architectural commit point:

* exception priority: IRQ > breakpoint > illegal opcode, and for
  memory operations misaligned > watchpoint > MPU;
* a trap saves ``cause``/``epc``/``sflags``, sets ``status`` bit 0 and
  vectors to :data:`repro.cpu.isa.EXC_VECTOR` *without* retiring the
  faulting instruction (or bumping performance counters);
* ``cnt_branch`` counts conditional branches only, ``cnt_mem`` counts
  non-faulting LD/LDB/ST/STB, both gated on ``STATUS_CNT_EN``.

Out of scope (and deliberately so): ``CSRR`` of the cycle counter
(CSR 0) is timing-dependent and unpredictable at ISA level; the model
returns 0 and records the read in :attr:`RefModel.timing_csr_reads` so
callers can refuse to compare such programs.  The program generator
never emits it.

The ALU and branch comparators live in module-level dispatch tables
(:data:`ALU_EVAL`, :data:`BRANCH_EVAL`) so tests can monkeypatch a
single opcode to demonstrate that the differential fuzzer detects and
shrinks a seeded semantic divergence.
"""

from __future__ import annotations

from collections import Counter

from ..cpu.isa import (
    CAUSE_BKPT,
    CAUSE_ILLEGAL,
    CAUSE_IRQ,
    CAUSE_MISALIGNED,
    CAUSE_MPU,
    CAUSE_WATCH,
    CSR_CAUSE,
    CSR_CNT_BRANCH,
    CSR_CNT_MEM,
    CSR_CYCLE,
    CSR_DBG_BKPT0,
    CSR_DBG_BKPT1,
    CSR_DBG_CTRL,
    CSR_DBG_WATCH0,
    CSR_EPC,
    CSR_FLAGS,
    CSR_IRQ_MASK,
    CSR_IRQ_PENDING,
    CSR_MPU_BASE0,
    CSR_MPU_CTRL,
    CSR_MPU_LIMIT0,
    CSR_SCRATCH,
    CSR_STATUS,
    EXC_VECTOR,
    STATUS_CNT_EN,
    Op,
    decode,
    is_legal,
)
from ..cpu.memory import InputStream, Memory

MASK32 = 0xFFFFFFFF


def _sx(value: int) -> int:
    """32-bit unsigned to Python signed."""
    return value - 0x100000000 if value & 0x80000000 else value


# -- ALU dispatch: opcode -> (a, b) -> (result, carry, overflow) -------------

def _ev_add(a: int, b: int) -> tuple[int, int, int]:
    full = a + b
    res = full & MASK32
    carry = 1 if full > MASK32 else 0
    ovf = 1 if (~(a ^ b) & (a ^ res)) & 0x80000000 else 0
    return res, carry, ovf


def _ev_sub(a: int, b: int) -> tuple[int, int, int]:
    res = (a - b) & MASK32
    carry = 1 if a >= b else 0
    ovf = 1 if ((a ^ b) & (a ^ res)) & 0x80000000 else 0
    return res, carry, ovf


#: ALU evaluation table; monkeypatch an entry to seed a semantic bug
#: for shrinker demos (see ``tests/test_fuzz.py``).
ALU_EVAL: dict[int, object] = {
    int(Op.ADD): _ev_add,
    int(Op.ADDI): _ev_add,
    int(Op.SUB): _ev_sub,
    int(Op.AND): lambda a, b: (a & b, 0, 0),
    int(Op.ANDI): lambda a, b: (a & b, 0, 0),
    int(Op.OR): lambda a, b: (a | b, 0, 0),
    int(Op.ORI): lambda a, b: (a | b, 0, 0),
    int(Op.XOR): lambda a, b: (a ^ b, 0, 0),
    int(Op.XORI): lambda a, b: (a ^ b, 0, 0),
    int(Op.SHL): lambda a, b: ((a << (b & 31)) & MASK32, 0, 0),
    int(Op.SHLI): lambda a, b: ((a << (b & 31)) & MASK32, 0, 0),
    int(Op.SHR): lambda a, b: (a >> (b & 31), 0, 0),
    int(Op.SHRI): lambda a, b: (a >> (b & 31), 0, 0),
    int(Op.SRA): lambda a, b: ((_sx(a) >> (b & 31)) & MASK32, 0, 0),
    int(Op.SRAI): lambda a, b: ((_sx(a) >> (b & 31)) & MASK32, 0, 0),
    int(Op.SLT): lambda a, b: ((1 if _sx(a) < _sx(b) else 0), 0, 0),
    int(Op.SLTI): lambda a, b: ((1 if _sx(a) < _sx(b) else 0), 0, 0),
    int(Op.SLTU): lambda a, b: ((1 if a < b else 0), 0, 0),
}

#: Branch comparator table (conditional branches only).
BRANCH_EVAL: dict[int, object] = {
    int(Op.BEQ): lambda a, b: a == b,
    int(Op.BNE): lambda a, b: a != b,
    int(Op.BLT): lambda a, b: _sx(a) < _sx(b),
    int(Op.BGE): lambda a, b: _sx(a) >= _sx(b),
    int(Op.BLTU): lambda a, b: a < b,
    int(Op.BGEU): lambda a, b: a >= b,
}

#: CSRW-writable registers beyond STATUS/SCRATCH: number -> (attr, mask).
_CSR_ATTR: dict[int, tuple[str, int]] = {
    CSR_DBG_BKPT0: ("dbg_bkpt0", MASK32),
    CSR_DBG_BKPT1: ("dbg_bkpt1", MASK32),
    CSR_DBG_WATCH0: ("dbg_watch0", MASK32),
    CSR_DBG_CTRL: ("dbg_ctrl", 0xF),
    CSR_IRQ_MASK: ("irq_mask", 0xFF),
    CSR_IRQ_PENDING: ("irq_pending", 0xFF),
    CSR_MPU_CTRL: ("mpu_ctrl", 0xFF),
}

_MEM_OPNUMS = frozenset((int(Op.LD), int(Op.LDB), int(Op.ST), int(Op.STB)))
_CAUSE_NAMES = {
    CAUSE_ILLEGAL: "ILLEGAL", CAUSE_MISALIGNED: "MISALIGNED",
    CAUSE_MPU: "MPU", CAUSE_BKPT: "BKPT", CAUSE_WATCH: "WATCH",
    CAUSE_IRQ: "IRQ",
}


class RefModel:
    """Architectural single-step simulator for one SR5 core."""

    def __init__(self, memory: Memory, stimulus: InputStream | None = None,
                 entry: int = 0):
        self.mem = memory
        self.stim = stimulus if stimulus is not None else InputStream()
        self.regs = [0] * 16
        self.pc = entry & MASK32
        self.flags = 0
        self.sflags = 0
        self.status = 0
        self.cause = 0
        self.epc = 0
        self.scratch = 0
        self.cnt_branch = 0
        self.cnt_mem = 0
        self.dbg_bkpt0 = 0
        self.dbg_bkpt1 = 0
        self.dbg_watch0 = 0
        self.dbg_ctrl = 0
        self.irq_mask = 0
        self.irq_pending = 0
        self.mpu_base = [0] * 4
        self.mpu_limit = [0] * 4
        self.mpu_ctrl = 0
        self.io_in = 0
        self.io_in_idx = 0
        self.halted = False
        #: Ordered OUT-port value stream (mirrors the strobe-sampled
        #: ``io_out`` sequence of the pipeline).
        self.outputs: list[int] = []
        #: Ordered retire records ``(pc, value, rd, wen)`` matching the
        #: pipeline's ret_* trace port / retire hook.
        self.retires: list[tuple[int, int, int, int]] = []
        self.n_steps = 0
        #: Opcode -> architecturally-executed count (traps excluded).
        self.executed: Counter = Counter()
        #: Cause code -> taken-trap count.
        self.traps: Counter = Counter()
        self.branches_taken = 0
        self.branches_not_taken = 0
        #: Reads of the (timing-dependent, unmodelled) cycle CSR.
        self.timing_csr_reads = 0

    # -- helpers ---------------------------------------------------------

    def _trap(self, code: int, pc: int) -> None:
        self.cause = code
        self.epc = pc
        self.status |= 1
        self.sflags = self.flags
        self.pc = EXC_VECTOR
        self.traps[code] += 1

    def _csr_read(self, num: int) -> int:
        if num == CSR_CYCLE:
            self.timing_csr_reads += 1
            return 0
        if num == CSR_STATUS:
            return self.status
        if num == CSR_SCRATCH:
            return self.scratch
        if num == CSR_FLAGS:
            return self.flags
        if num == CSR_CAUSE:
            return self.cause
        if num == CSR_EPC:
            return self.epc
        if num == CSR_CNT_BRANCH:
            return self.cnt_branch
        if num == CSR_CNT_MEM:
            return self.cnt_mem
        if CSR_MPU_BASE0 <= num < CSR_MPU_BASE0 + 4:
            return self.mpu_base[num - CSR_MPU_BASE0]
        if CSR_MPU_LIMIT0 <= num < CSR_MPU_LIMIT0 + 4:
            return self.mpu_limit[num - CSR_MPU_LIMIT0]
        target = _CSR_ATTR.get(num)
        if target is not None:
            return getattr(self, target[0])
        return 0

    def _csr_write(self, num: int, value: int) -> None:
        if num == CSR_STATUS:
            self.status = value & 0xFF
        elif num == CSR_SCRATCH:
            self.scratch = value
        elif CSR_MPU_BASE0 <= num < CSR_MPU_BASE0 + 4:
            self.mpu_base[num - CSR_MPU_BASE0] = value
        elif CSR_MPU_LIMIT0 <= num < CSR_MPU_LIMIT0 + 4:
            self.mpu_limit[num - CSR_MPU_LIMIT0] = value
        else:
            target = _CSR_ATTR.get(num)
            if target is not None:
                setattr(self, target[0], value & target[1])

    # -- one architectural instruction -----------------------------------

    def step(self) -> bool:
        """Execute (or trap) one instruction; False once halted."""
        if self.halted:
            return False
        self.n_steps += 1
        pc = self.pc
        regs = self.regs

        # Instruction-boundary exceptions, highest priority first.
        if self.irq_pending & self.irq_mask and not self.status & 1:
            self._trap(CAUSE_IRQ, pc)
            return True
        ctrl = self.dbg_ctrl
        if ctrl & 3 and ((ctrl & 1 and pc == self.dbg_bkpt0)
                         or (ctrl & 2 and pc == self.dbg_bkpt1)):
            self._trap(CAUSE_BKPT, pc)
            return True
        word = self.mem.read_word(pc)
        if not is_legal(word):
            self._trap(CAUSE_ILLEGAL, pc)
            return True

        ins = decode(word)
        opnum = int(ins.op)
        rd = ins.rd
        imm = ins.imm
        seq = (pc + 4) & MASK32
        next_pc = seq
        ra_val = regs[ins.ra]
        rb_val = regs[ins.rb]
        retire_val = 0
        retire_rd = 0
        retire_wen = 0

        alu = ALU_EVAL.get(opnum)
        if alu is not None:
            if 16 <= opnum:                     # register-immediate form
                rb_val = imm & MASK32
            res, carry, ovf = alu(ra_val, rb_val)
            self.flags = (((res >> 31) & 1) << 3) | ((res == 0) << 2) \
                | (carry << 1) | ovf
            if rd:
                regs[rd] = res
            retire_val, retire_rd, retire_wen = res, rd, 1
        elif opnum == Op.MUL or opnum == Op.MULH:
            prod = ra_val * rb_val
            res = (prod & MASK32) if opnum == Op.MUL else ((prod >> 32) & MASK32)
            self.flags = (((res >> 31) & 1) << 3) | ((res == 0) << 2)
            if rd:
                regs[rd] = res
            retire_val, retire_rd, retire_wen = res, rd, 1
        elif opnum == Op.LUI:
            res = (imm << 16) & MASK32
            if rd:
                regs[rd] = res
            retire_val, retire_rd, retire_wen = res, rd, 1
        elif opnum in _MEM_OPNUMS:
            addr = (ra_val + imm) & MASK32
            fault = -1
            if (opnum == Op.LD or opnum == Op.ST) and addr & 3:
                fault = CAUSE_MISALIGNED
            elif ctrl & 4 and addr == self.dbg_watch0:
                fault = CAUSE_WATCH
            elif self.mpu_ctrl:
                mc = self.mpu_ctrl
                for region in range(4):
                    if ((mc >> (2 * region)) & 3) == 3 and \
                            self.mpu_base[region] <= addr < self.mpu_limit[region]:
                        fault = CAUSE_MPU
                        break
            if fault >= 0:
                self._trap(fault, pc)
                return True
            if self.status & STATUS_CNT_EN:
                self.cnt_mem = (self.cnt_mem + 1) & MASK32
            if opnum == Op.LD:
                value = self.mem.read_word(addr)
                if rd:
                    regs[rd] = value
                retire_val, retire_rd, retire_wen = value, rd, 1
            elif opnum == Op.LDB:
                value = self.mem.read_byte(addr)
                if rd:
                    regs[rd] = value
                retire_val, retire_rd, retire_wen = value, rd, 1
            elif opnum == Op.ST:
                self.mem.write_word(addr, rb_val)
                retire_val, retire_rd = addr, rd
            else:
                self.mem.write_byte(addr, rb_val)
                retire_val, retire_rd = addr, rd
        elif opnum in BRANCH_EVAL:
            if self.status & STATUS_CNT_EN:
                self.cnt_branch = (self.cnt_branch + 1) & MASK32
            if BRANCH_EVAL[opnum](ra_val, rb_val):
                next_pc = (seq + ((imm << 2) & MASK32)) & MASK32
                self.branches_taken += 1
            else:
                self.branches_not_taken += 1
        elif opnum == Op.JAL or opnum == Op.JALR:
            if opnum == Op.JAL:
                next_pc = (seq + ((imm << 2) & MASK32)) & MASK32
            else:
                next_pc = (ra_val + imm) & MASK32 & ~3
            if rd:
                regs[rd] = seq
            retire_val, retire_rd, retire_wen = seq, rd, 1
        elif opnum == Op.IN:
            value = self.stim.sample(self.io_in_idx)
            self.io_in = value
            self.io_in_idx = (self.io_in_idx + 1) & 0xFFFF
            if rd:
                regs[rd] = value
            retire_val, retire_rd, retire_wen = value, rd, 1
        elif opnum == Op.OUT:
            self.outputs.append(rb_val)
        elif opnum == Op.CSRR:
            value = self._csr_read(imm)
            if rd:
                regs[rd] = value
            retire_val, retire_rd, retire_wen = value, rd, 1
        elif opnum == Op.CSRW:
            self._csr_write(imm, rb_val)
        elif opnum == Op.HALT:
            self.halted = True
            self.executed[opnum] += 1
            return False        # HALT does not retire on the pipeline either

        self.executed[opnum] += 1
        self.retires.append((pc, retire_val, retire_rd, retire_wen))
        self.pc = next_pc
        return True

    def run(self, max_steps: int = 1_000_000) -> int:
        """Execute until HALT or the step bound; returns steps used."""
        step = self.step
        for _ in range(max_steps):
            if not step():
                break
        return self.n_steps

    # -- state capture ---------------------------------------------------

    def arch_state(self) -> dict[str, int]:
        """Architectural state, key-compatible with ``Cpu.arch_state``."""
        state = {f"r{i}": self.regs[i] for i in range(1, 16)}
        state.update(
            flags=self.flags, sflags=self.sflags, status=self.status,
            cause=self.cause, epc=self.epc, scratch=self.scratch,
            cnt_branch=self.cnt_branch, cnt_mem=self.cnt_mem,
            dbg_bkpt0=self.dbg_bkpt0, dbg_bkpt1=self.dbg_bkpt1,
            dbg_watch0=self.dbg_watch0, dbg_ctrl=self.dbg_ctrl,
            irq_mask=self.irq_mask, irq_pending=self.irq_pending,
            mpu_ctrl=self.mpu_ctrl, io_in=self.io_in,
            io_in_idx=self.io_in_idx, halted=int(self.halted),
        )
        for i in range(4):
            state[f"mpu_base{i}"] = self.mpu_base[i]
            state[f"mpu_limit{i}"] = self.mpu_limit[i]
        return state


def cause_name(code: int) -> str:
    """Human-readable exception cause name."""
    return _CAUSE_NAMES.get(code, f"cause{code}")
