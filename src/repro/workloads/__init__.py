"""AutoBench-style workload kernels and the kernel runner."""

from .kernels import DEFAULT_SEED, KERNELS, Workload, get_workload, workload_names
from .runner import KernelRun, build, run_kernel

__all__ = [
    "DEFAULT_SEED", "KERNELS", "Workload", "get_workload", "workload_names",
    "KernelRun", "build", "run_kernel",
]
