"""AutoBench-style automotive workload kernels for the SR5 core.

The paper drives its fault-injection study with the EEMBC AutoBench
suite.  AutoBench is licensed, so this module provides eight kernels
written from AutoBench's published descriptions: each one reads sensor
inputs from the replicated input stream (``IN``), computes an
automotive control quantity, and writes actuator outputs (``OUT``) in
a continuously repeating outer loop — the structure the paper
describes for tooth-to-spark.

Every kernel ships with a bit-exact Python reference model, so the
test suite can verify that the flip-flop-level core computes the same
ordered sequence of output values as the reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

MASK32 = 0xFFFFFFFF

#: Common program prologue: jump over the exception vector; the handler
#: reports the cause on port 7 and halts (a fault-corrupted core that
#: traps diverges visibly, like a real core signalling an abort).
_PROLOGUE = """
_start:
    jal  r0, main
.org 0x8
handler:
    csrr r1, 4
    out  r1, 7
    halt
"""


@dataclass(frozen=True)
class Workload:
    """One benchmark kernel.

    Attributes:
        name: short kernel identifier (AutoBench-style).
        description: what the kernel models.
        source: SR5 assembly text.
        stimulus: seed -> input stream values.
        reference: stimulus values -> ordered expected OUT values.
    """

    name: str
    description: str
    source: str
    stimulus: Callable[[int], list[int]]
    reference: Callable[[list[int]], list[int]]


# ---------------------------------------------------------------------------
# ttsprk: tooth-to-spark (ignition timing from tooth period and load)
# ---------------------------------------------------------------------------

_TTSPRK_N = 100
_TTSPRK_ADV = [12, 18, 25, 33, 42, 52, 63, 75, 88, 102, 117, 133, 150, 168, 187, 207]

_TTSPRK_SRC = _PROLOGUE + f"""
main:
    addi r10, r0, 0
    addi r11, r0, {_TTSPRK_N}
    addi r12, r0, 0
outer:
    in   r1, 0            ; tooth period
    in   r2, 0            ; engine load
    andi r3, r2, 15
    shli r3, r3, 2
    ld   r4, advtab(r3)   ; spark advance
    mul  r5, r4, r1
    shri r5, r5, 8        ; dwell
    sub  r6, r1, r5       ; ignition timing
    out  r6, 0
    add  r12, r12, r6
    andi r12, r12, 0x1FFF
    addi r10, r10, 1
    bne  r10, r11, outer
    out  r12, 1
    halt
advtab:
    .word {", ".join(str(v) for v in _TTSPRK_ADV)}
"""


def _ttsprk_stimulus(seed: int) -> list[int]:
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(_TTSPRK_N):
        out.append(int(rng.integers(256, 4096)))   # period
        out.append(int(rng.integers(0, 256)))      # load
    return out


def _ttsprk_reference(stim: list[int]) -> list[int]:
    outs = []
    chk = 0
    it = iter(stim)
    for _ in range(_TTSPRK_N):
        period = next(it)
        load = next(it)
        adv = _TTSPRK_ADV[load & 15]
        timing = (period - ((adv * period) >> 8)) & MASK32
        outs.append(timing)
        chk = (chk + timing) & 0x1FFF
    outs.append(chk)
    return outs


# ---------------------------------------------------------------------------
# a2time: angle-to-time conversion for ignition scheduling
# ---------------------------------------------------------------------------

_A2TIME_N = 120

_A2TIME_SRC = _PROLOGUE + f"""
main:
    addi r10, r0, 0
    addi r11, r0, {_A2TIME_N}
    addi r12, r0, 0
outer:
    in   r1, 0            ; crank angle
    in   r2, 0            ; rotation period
    mul  r3, r1, r2
    shri r3, r3, 12       ; delay ticks
    addi r4, r0, 4096
    blt  r3, r4, inrange
    sub  r3, r3, r4       ; fold into timer range
inrange:
    out  r3, 0
    xor  r12, r12, r3
    csrw r12, 2           ; mirror running signature into SCU scratch
    addi r10, r10, 1
    bne  r10, r11, outer
    csrr r5, 2
    out  r5, 1
    halt
"""


def _a2time_stimulus(seed: int) -> list[int]:
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(_A2TIME_N):
        out.append(int(rng.integers(0, 720)))      # angle (half-degrees)
        out.append(int(rng.integers(200, 4096)))   # period
    return out


def _a2time_reference(stim: list[int]) -> list[int]:
    outs = []
    sig = 0
    it = iter(stim)
    for _ in range(_A2TIME_N):
        angle = next(it)
        period = next(it)
        ticks = (angle * period) >> 12
        if ticks >= 4096:
            ticks -= 4096
        outs.append(ticks)
        sig ^= ticks
    outs.append(sig)
    return outs


# ---------------------------------------------------------------------------
# rspeed: road speed calculation with reciprocal table and IIR smoothing
# ---------------------------------------------------------------------------

_RSPEED_N = 100
_RSPEED_RCP = [240, 220, 180, 140, 110, 88, 72, 60, 50, 43, 37, 32, 28, 25, 22, 20]

_RSPEED_SRC = _PROLOGUE + f"""
main:
    addi r10, r0, 0
    addi r11, r0, {_RSPEED_N}
    addi r12, r0, 0
    addi r13, r0, 0       ; smoothed speed
outer:
    in   r1, 0            ; wheel pulse period
    shri r2, r1, 8
    andi r2, r2, 15
    shli r2, r2, 2
    ld   r3, rcptab(r2)   ; raw speed
    addi r5, r0, 3
    mul  r4, r13, r5
    add  r4, r4, r3
    shri r13, r4, 2       ; avg = (3*avg + raw) / 4
    out  r13, 0
    add  r12, r12, r13
    andi r12, r12, 0x1FFF
    addi r10, r10, 1
    bne  r10, r11, outer
    out  r12, 1
    halt
rcptab:
    .word {", ".join(str(v) for v in _RSPEED_RCP)}
"""


def _rspeed_stimulus(seed: int) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(rng.integers(256, 4096)) for _ in range(_RSPEED_N)]


def _rspeed_reference(stim: list[int]) -> list[int]:
    outs = []
    chk = 0
    avg = 0
    for period in stim[:_RSPEED_N]:
        raw = _RSPEED_RCP[(period >> 8) & 15]
        avg = (3 * avg + raw) >> 2
        outs.append(avg)
        chk = (chk + avg) & 0x1FFF
    outs.append(chk)
    return outs


# ---------------------------------------------------------------------------
# canrdr: CAN remote data request filtering and payload checksum
# ---------------------------------------------------------------------------

_CANRDR_N = 150
_CANRDR_FILTER = 0x2A5

_CANRDR_SRC = _PROLOGUE + f"""
main:
    addi r10, r0, 0
    addi r11, r0, {_CANRDR_N}
    addi r12, r0, 0
    addi r9, r0, 0        ; accepted message buffer offset
outer:
    in   r1, 0            ; CAN frame word
    shri r2, r1, 21
    addi r3, r0, {_CANRDR_FILTER}
    bne  r2, r3, skip
    andi r4, r1, 0xFF     ; payload byte 0
    shri r5, r1, 8
    andi r5, r5, 0xFF     ; payload byte 1
    xor  r4, r4, r5
    shri r5, r1, 16
    andi r5, r5, 0x1F     ; payload bits 20:16
    xor  r4, r4, r5
    st   r4, 0x1200(r9)
    addi r9, r9, 4
    out  r4, 0
    add  r12, r12, r4
skip:
    addi r10, r10, 1
    bne  r10, r11, outer
    out  r12, 1
    shri r9, r9, 2
    out  r9, 2            ; number of accepted frames
    halt
"""


def _canrdr_stimulus(seed: int) -> list[int]:
    rng = np.random.default_rng(seed)
    frames = []
    for _ in range(_CANRDR_N):
        payload = int(rng.integers(0, 1 << 21))
        if rng.random() < 0.4:
            frames.append((_CANRDR_FILTER << 21) | payload)
        else:
            bad_id = int(rng.integers(0, 0x7FF))
            if bad_id == _CANRDR_FILTER:
                bad_id ^= 1
            frames.append((bad_id << 21) | payload)
    return frames


def _canrdr_reference(stim: list[int]) -> list[int]:
    outs = []
    chk = 0
    accepted = 0
    for frame in stim[:_CANRDR_N]:
        if (frame >> 21) & 0x7FF == _CANRDR_FILTER:
            val = (frame & 0xFF) ^ ((frame >> 8) & 0xFF) ^ ((frame >> 16) & 0x1F)
            outs.append(val)
            chk = (chk + val) & MASK32
            accepted += 1
    outs.append(chk)
    outs.append(accepted)
    return outs


# ---------------------------------------------------------------------------
# tblook: table lookup with linear interpolation (sensor linearisation)
# ---------------------------------------------------------------------------

_TBLOOK_N = 100
_TBLOOK_TAB = [0, 60, 130, 210, 300, 400, 510, 630, 760, 900, 1050, 1210,
               1380, 1560, 1750, 1950, 2160]

_TBLOOK_SRC = _PROLOGUE + f"""
main:
    addi r10, r0, 0
    addi r11, r0, {_TBLOOK_N}
    addi r12, r0, 0
outer:
    in   r1, 0            ; raw sensor value
    shri r2, r1, 8        ; segment index
    shli r3, r2, 2
    ld   r4, lintab(r3)   ; y0
    addi r3, r3, 4
    ld   r5, lintab(r3)   ; y1
    andi r6, r1, 255      ; fraction
    sub  r7, r5, r4
    mul  r7, r7, r6
    shri r7, r7, 8
    add  r7, r7, r4       ; interpolated value
    out  r7, 0
    add  r12, r12, r7
    andi r12, r12, 0x1FFF
    addi r10, r10, 1
    bne  r10, r11, outer
    out  r12, 1
    halt
lintab:
    .word {", ".join(str(v) for v in _TBLOOK_TAB)}
"""


def _tblook_stimulus(seed: int) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(rng.integers(0, 4096)) for _ in range(_TBLOOK_N)]


def _tblook_reference(stim: list[int]) -> list[int]:
    outs = []
    chk = 0
    for x in stim[:_TBLOOK_N]:
        seg = x >> 8
        y0 = _TBLOOK_TAB[seg]
        y1 = _TBLOOK_TAB[seg + 1]
        y = y0 + (((y1 - y0) * (x & 255)) >> 8)
        outs.append(y)
        chk = (chk + y) & 0x1FFF
    outs.append(chk)
    return outs


# ---------------------------------------------------------------------------
# aifirf: 8-tap FIR filter (knock sensor conditioning)
# ---------------------------------------------------------------------------

_AIFIRF_N = 26
_AIFIRF_CO = [9, 28, 60, 98, 98, 60, 28, 9]

_AIFIRF_SRC = _PROLOGUE + f"""
main:
    addi r10, r0, 0
    addi r11, r0, {_AIFIRF_N}
    addi r12, r0, 0
    addi r13, r0, 0       ; circular buffer index
outer:
    in   r1, 0            ; sample
    shli r2, r13, 2
    st   r1, 0x1100(r2)
    addi r3, r0, 0        ; tap
    addi r4, r0, 0        ; accumulator
floop:
    add  r5, r3, r13
    andi r5, r5, 7
    shli r5, r5, 2
    ld   r6, 0x1100(r5)
    shli r7, r3, 2
    ld   r8, firco(r7)
    mul  r6, r6, r8
    add  r4, r4, r6
    addi r3, r3, 1
    addi r5, r0, 8
    bne  r3, r5, floop
    shri r4, r4, 8
    out  r4, 0
    addi r13, r13, 1
    andi r13, r13, 7
    add  r12, r12, r4
    andi r12, r12, 0x1FFF
    addi r10, r10, 1
    bne  r10, r11, outer
    out  r12, 1
    halt
firco:
    .word {", ".join(str(v) for v in _AIFIRF_CO)}
"""


def _aifirf_stimulus(seed: int) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(rng.integers(0, 4096)) for _ in range(_AIFIRF_N)]


def _aifirf_reference(stim: list[int]) -> list[int]:
    outs = []
    chk = 0
    buf = [0] * 8
    idx = 0
    for sample in stim[:_AIFIRF_N]:
        buf[idx] = sample
        acc = 0
        for tap in range(8):
            acc += buf[(tap + idx) & 7] * _AIFIRF_CO[tap]
        acc >>= 8
        outs.append(acc)
        idx = (idx + 1) & 7
        chk = (chk + acc) & 0x1FFF
    outs.append(chk)
    return outs


# ---------------------------------------------------------------------------
# matrix: 3x3 matrix-vector product (vehicle stability transform)
# ---------------------------------------------------------------------------

_MATRIX_N = 30
_MATRIX_M = [19, 3, 7, 2, 23, 5, 11, 6, 17]

_MATRIX_SRC = _PROLOGUE + f"""
main:
    addi r10, r0, 0
    addi r11, r0, {_MATRIX_N}
    addi r12, r0, 0
outer:
    in   r1, 0            ; vx
    in   r2, 0            ; vy
    in   r3, 0            ; vz
    addi r4, r0, 0        ; row
mrow:
    shli r5, r4, 1
    add  r5, r5, r4       ; row*3
    shli r5, r5, 2
    ld   r6, mat(r5)
    mul  r6, r6, r1
    addi r5, r5, 4
    ld   r7, mat(r5)
    mul  r7, r7, r2
    add  r6, r6, r7
    addi r5, r5, 4
    ld   r7, mat(r5)
    mul  r7, r7, r3
    add  r6, r6, r7
    shri r6, r6, 4
    out  r6, 0
    add  r12, r12, r6
    andi r12, r12, 0x1FFF
    addi r4, r4, 1
    addi r7, r0, 3
    bne  r4, r7, mrow
    addi r10, r10, 1
    bne  r10, r11, outer
    out  r12, 1
    halt
mat:
    .word {", ".join(str(v) for v in _MATRIX_M)}
"""


def _matrix_stimulus(seed: int) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(rng.integers(0, 2048)) for _ in range(3 * _MATRIX_N)]


def _matrix_reference(stim: list[int]) -> list[int]:
    outs = []
    chk = 0
    it = iter(stim)
    for _ in range(_MATRIX_N):
        v = [next(it), next(it), next(it)]
        for row in range(3):
            acc = sum(_MATRIX_M[3 * row + c] * v[c] for c in range(3)) >> 4
            outs.append(acc)
            chk = (chk + acc) & 0x1FFF
    outs.append(chk)
    return outs


# ---------------------------------------------------------------------------
# puwmod: pulse-width modulation duty generation
# ---------------------------------------------------------------------------

_PUWMOD_N = 40

_PUWMOD_SRC = _PROLOGUE + f"""
main:
    addi r10, r0, 0
    addi r11, r0, {_PUWMOD_N}
    addi r12, r0, 0
outer:
    in   r1, 0            ; duty request (0..15)
    addi r2, r0, 0        ; tick
    addi r3, r0, 16
    addi r4, r0, 0        ; high ticks
ploop:
    bge  r2, r1, low
    addi r4, r4, 1
low:
    addi r2, r2, 1
    bne  r2, r3, ploop
    out  r4, 0
    add  r12, r12, r4
    addi r10, r10, 1
    bne  r10, r11, outer
    out  r12, 1
    halt
"""


def _puwmod_stimulus(seed: int) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(rng.integers(0, 16)) for _ in range(_PUWMOD_N)]


def _puwmod_reference(stim: list[int]) -> list[int]:
    outs = []
    chk = 0
    for duty in stim[:_PUWMOD_N]:
        high = sum(1 for tick in range(16) if tick < duty)
        outs.append(high)
        chk = (chk + high) & MASK32
    outs.append(chk)
    return outs


# ---------------------------------------------------------------------------
# iirflt: low-pass IIR filter (sensor signal conditioning)
# ---------------------------------------------------------------------------

_IIRFLT_N = 80

_IIRFLT_SRC = _PROLOGUE + f"""
main:
    addi r10, r0, 0
    addi r11, r0, {_IIRFLT_N}
    addi r12, r0, 0
    addi r7, r0, 0        ; x[n-1]
    addi r8, r0, 0        ; x[n-2]
    addi r9, r0, 0        ; y[n-1]
outer:
    in   r1, 0            ; x[n]
    shli r2, r1, 1        ; 2*x
    addi r4, r0, 3
    mul  r3, r7, r4       ; 3*x1
    add  r2, r2, r3
    shli r3, r8, 1        ; 2*x2
    add  r2, r2, r3
    shli r3, r9, 2        ; 4*y1
    add  r2, r2, r3
    shri r2, r2, 4        ; y[n]
    out  r2, 0
    add  r8, r7, r0
    add  r7, r1, r0
    add  r9, r2, r0
    add  r12, r12, r2
    andi r12, r12, 0x1FFF
    addi r10, r10, 1
    bne  r10, r11, outer
    out  r12, 1
    halt
"""


def _iirflt_stimulus(seed: int) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(rng.integers(0, 4096)) for _ in range(_IIRFLT_N)]


def _iirflt_reference(stim: list[int]) -> list[int]:
    outs = []
    chk = 0
    x1 = x2 = y1 = 0
    for x in stim[:_IIRFLT_N]:
        y = (2 * x + 3 * x1 + 2 * x2 + 4 * y1) >> 4
        outs.append(y)
        x2, x1, y1 = x1, x, y
        chk = (chk + y) & 0x1FFF
    outs.append(chk)
    return outs


# ---------------------------------------------------------------------------
# idctrn: 4-point inverse-DCT-style butterfly (image/knock spectral path)
# ---------------------------------------------------------------------------

_IDCTRN_N = 40

_IDCTRN_SRC = _PROLOGUE + f"""
main:
    addi r10, r0, 0
    addi r11, r0, {_IDCTRN_N}
    addi r12, r0, 0
outer:
    in   r1, 0            ; a
    in   r2, 0            ; b
    in   r3, 0            ; c
    in   r4, 0            ; d
    bge  r1, r4, noswap1  ; order so the differences stay non-negative
    add  r5, r1, r0
    add  r1, r4, r0
    add  r4, r5, r0
noswap1:
    bge  r2, r3, noswap2
    add  r5, r2, r0
    add  r2, r3, r0
    add  r3, r5, r0
noswap2:
    add  r5, r1, r4       ; s0
    sub  r6, r1, r4       ; s1
    add  r7, r2, r3       ; s2
    sub  r8, r2, r3       ; s3
    addi r9, r0, 3
    mul  r13, r5, r9      ; 3*s0
    shli r1, r7, 1        ; 2*s2
    add  r13, r13, r1
    shri r13, r13, 2      ; o0
    out  r13, 0
    add  r12, r12, r13
    mul  r1, r6, r9       ; 3*s1
    add  r1, r1, r8
    shri r1, r1, 2        ; o1
    out  r1, 0
    add  r12, r12, r1
    andi r12, r12, 0x1FFF
    addi r10, r10, 1
    bne  r10, r11, outer
    out  r12, 1
    halt
"""


def _idctrn_stimulus(seed: int) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(rng.integers(0, 256)) for _ in range(4 * _IDCTRN_N)]


def _idctrn_reference(stim: list[int]) -> list[int]:
    outs = []
    chk = 0
    it = iter(stim)
    for _ in range(_IDCTRN_N):
        a, b, c, d = next(it), next(it), next(it), next(it)
        if a < d:
            a, d = d, a
        if b < c:
            b, c = c, b
        s0, s1, s2, s3 = a + d, a - d, b + c, b - c
        o0 = (3 * s0 + 2 * s2) >> 2
        o1 = (3 * s1 + s3) >> 2
        outs.append(o0)
        chk = (chk + o0) & 0x1FFF
        outs.append(o1)
        chk = (chk + o1) & 0x1FFF
    outs.append(chk)
    return outs


# ---------------------------------------------------------------------------

KERNELS: dict[str, Workload] = {
    w.name: w
    for w in (
        Workload("ttsprk", "tooth-to-spark ignition timing",
                 _TTSPRK_SRC, _ttsprk_stimulus, _ttsprk_reference),
        Workload("a2time", "crank angle to time conversion",
                 _A2TIME_SRC, _a2time_stimulus, _a2time_reference),
        Workload("rspeed", "road speed calculation",
                 _RSPEED_SRC, _rspeed_stimulus, _rspeed_reference),
        Workload("canrdr", "CAN remote data request handling",
                 _CANRDR_SRC, _canrdr_stimulus, _canrdr_reference),
        Workload("tblook", "table lookup and interpolation",
                 _TBLOOK_SRC, _tblook_stimulus, _tblook_reference),
        Workload("aifirf", "FIR filter for knock sensing",
                 _AIFIRF_SRC, _aifirf_stimulus, _aifirf_reference),
        Workload("matrix", "matrix arithmetic for stability control",
                 _MATRIX_SRC, _matrix_stimulus, _matrix_reference),
        Workload("puwmod", "pulse width modulation",
                 _PUWMOD_SRC, _puwmod_stimulus, _puwmod_reference),
        Workload("iirflt", "IIR low-pass filter",
                 _IIRFLT_SRC, _iirflt_stimulus, _iirflt_reference),
        Workload("idctrn", "inverse-DCT butterfly transform",
                 _IDCTRN_SRC, _idctrn_stimulus, _idctrn_reference),
    )
}

DEFAULT_SEED = 20180615  # MICRO 2018 submission-era date, fixed for reproducibility


def workload_names() -> list[str]:
    """Names of all kernels in registry order."""
    return list(KERNELS)


def get_workload(name: str) -> Workload:
    """Look up a kernel by name."""
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(KERNELS)}") from None
