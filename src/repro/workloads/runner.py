"""Assembling and running workload kernels on a single core."""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.assembler import Program, assemble
from ..cpu.core import Cpu
from ..cpu.memory import InputStream, Memory
from .kernels import DEFAULT_SEED, Workload


@dataclass
class KernelRun:
    """Result of running one kernel to completion on one core."""

    name: str
    cycles: int
    outputs: list[int]
    halted: bool
    exception: bool


def build(workload: Workload, seed: int = DEFAULT_SEED) -> tuple[Program, InputStream]:
    """Assemble a workload and build its replicated input stream."""
    program = assemble(workload.source)
    stimulus = InputStream(workload.stimulus(seed))
    return program, stimulus


def run_kernel(workload: Workload, seed: int = DEFAULT_SEED,
               max_cycles: int = 200_000) -> KernelRun:
    """Run a kernel on a fault-free core, capturing the OUT sequence.

    OUT events are detected by the toggle of the core's I/O strobe
    register, exactly as an external actuator latch would sample them.
    """
    program, stimulus = build(workload, seed)
    cpu = Cpu(Memory.from_program(program), stimulus, entry=program.entry)
    outputs: list[int] = []
    prev_strobe = cpu.io_out_v
    cycles = 0
    while not cpu.halted and cycles < max_cycles:
        cpu.step()
        cycles += 1
        if cpu.io_out_v != prev_strobe:
            outputs.append(cpu.io_out)
            prev_strobe = cpu.io_out_v
    return KernelRun(
        name=workload.name,
        cycles=cycles,
        outputs=outputs,
        halted=bool(cpu.halted),
        exception=bool(cpu.status & 1),
    )
