"""Shared fixtures: small programs, golden traces and a quick campaign.

Also owns the test-harness policy knobs:

* **Hypothesis profiles** — ``dev`` (default: few examples, fast edit
  loop) and ``ci`` (thorough, ``derandomize=True`` so CI draws a fixed
  deterministic example sequence).  Select with
  ``HYPOTHESIS_PROFILE=ci``; the GitHub workflow does.
* **Golden-trace cache isolation** — an autouse session fixture points
  ``REPRO_GOLDEN_CACHE`` at a per-session tmp dir, so running the test
  suite never writes (or reads) the repo-level ``.golden_cache/``.
* **Fuzz-artifact isolation** — likewise ``REPRO_FUZZ_ARTIFACTS`` is
  pointed at a tmp dir so shrunken repros never land in the checkout.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.cpu import Cpu, InputStream, Memory, assemble
from repro.faults import CampaignConfig, GoldenTrace, run_campaign
from repro.faults.golden import GOLDEN_CACHE_ENV
from repro.workloads import KERNELS

settings.register_profile("dev", max_examples=25, deadline=None)
settings.register_profile("ci", max_examples=150, deadline=None,
                          derandomize=True, print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(autouse=True, scope="session")
def _isolated_golden_cache(tmp_path_factory: pytest.TempPathFactory):
    """Keep golden-trace caching on but out of the repo checkout."""
    previous = os.environ.get(GOLDEN_CACHE_ENV)
    os.environ[GOLDEN_CACHE_ENV] = str(tmp_path_factory.mktemp("golden_cache"))
    yield
    if previous is None:
        os.environ.pop(GOLDEN_CACHE_ENV, None)
    else:
        os.environ[GOLDEN_CACHE_ENV] = previous


@pytest.fixture(autouse=True, scope="session")
def _isolated_fuzz_artifacts(tmp_path_factory: pytest.TempPathFactory):
    """Point fuzz repro dumps at a tmp dir, never the caller's cwd."""
    from repro.verify.diff import ARTIFACTS_ENV

    previous = os.environ.get(ARTIFACTS_ENV)
    os.environ[ARTIFACTS_ENV] = str(tmp_path_factory.mktemp("fuzz_artifacts"))
    yield
    if previous is None:
        os.environ.pop(ARTIFACTS_ENV, None)
    else:
        os.environ[ARTIFACTS_ENV] = previous

#: A minimal exception-safe program skeleton used across tests.
PROLOGUE = """
_start:
    jal  r0, main
.org 0x8
handler:
    csrr r1, 4
    out  r1, 7
    halt
"""

SUM_LOOP = PROLOGUE + """
main:
    addi r1, r0, 0
    addi r2, r0, 1
    addi r3, r0, 51
loop:
    add  r1, r1, r2
    addi r2, r2, 1
    bne  r2, r3, loop
    out  r1, 0
    st   r1, 0x400(r0)
    halt
"""


def make_cpu(source: str, stimulus: list[int] | None = None,
             mem_words: int = 2048) -> Cpu:
    """Assemble a program and wrap it in a ready-to-run core."""
    program = assemble(source)
    mem = Memory.from_program(program, size_words=mem_words)
    return Cpu(mem, InputStream(stimulus or [0]), entry=program.entry)


@pytest.fixture
def sum_cpu() -> Cpu:
    """A core loaded with the 1..50 summing loop."""
    return make_cpu(SUM_LOOP)


@pytest.fixture(scope="session")
def ttsprk_golden() -> GoldenTrace:
    """Golden trace of the tooth-to-spark kernel (session-cached)."""
    return GoldenTrace(KERNELS["ttsprk"])


@pytest.fixture(scope="session")
def quick_campaign():
    """A seconds-scale fault-injection campaign (session-cached)."""
    return run_campaign(CampaignConfig.quick())


@pytest.fixture(scope="session")
def medium_campaign():
    """A slightly larger campaign for evaluation-level tests."""
    config = CampaignConfig(
        benchmarks=("ttsprk", "puwmod"),
        soft_per_flop=1,
        hard_per_flop=1,
        flop_fraction=0.12,
        max_observe=800,
    )
    return run_campaign(config)
