; fault-fuzz scenario corpus: dynamic-lockstep replay 'dyn_split_window_delay'
; a stuck-at-1 register fault diverges at cycle 18 inside a split
; window (no comparison): the shadow records first_divergence=18 and
; the checker must re-detect at the first locked cycle (38), i.e. a
; 20-cycle masked-window delay
; scenario: cores=2 mode=dynamic
; windows: locked:0:8 split:8:30 locked:38:62
; fault: reg=rf1 bit=3 kind=stuck1 cycle=10
; expect: classification=detected detect_cycle=38 first_divergence=18 window_delay=20 window=locked
; stimulus: 0x0
_start:
    jal  r0, main
.org 0x8
handler:
    csrr r1, 4
    out  r1, 7
    halt
main:
    addi r1, r0, 0
    addi r2, r0, 1
    addi r3, r0, 25
    addi r4, r0, 1024
loop:
    add  r1, r1, r2
    st   r1, 0(r4)
    addi r4, r4, 4
    addi r2, r2, 1
    bne  r2, r3, loop
    out  r1, 0
    halt
