; fault-fuzz scenario corpus: voted-triple replay 'tmr_pc_soft_attrib'
; a PC-bit soft flip in core 2 of a TMR group: the VotingChecker must
; latch on the first divergent fetch, blame the planted core and
; resolve the vote to the golden value (forward recovery would be exact)
; scenario: cores=3 slot=2
; fault: reg=pc bit=2 kind=soft cycle=12
; expect: classification=detected detect_cycle=13 erring_cpu=2 vote_golden=1 diverged=0
; stimulus: 0x0
_start:
    jal  r0, main
.org 0x8
handler:
    csrr r1, 4
    out  r1, 7
    halt
main:
    addi r1, r0, 0
    addi r2, r0, 1
    addi r3, r0, 25
    addi r4, r0, 1024
loop:
    add  r1, r1, r2
    st   r1, 0(r4)
    addi r4, r4, 4
    addi r2, r2, 1
    bne  r2, r3, loop
    out  r1, 0
    halt
