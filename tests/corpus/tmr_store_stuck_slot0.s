; fault-fuzz scenario corpus: voted-triple replay 'tmr_store_stuck_slot0'
; a stuck-at-1 on a store-data flop with the faulty core at slot 0:
; attribution must name slot 0 (the voter may not default to "not the
; reference core") and the diverged SC is the store-data nibble
; scenario: cores=3 slot=0
; fault: reg=dmc_wdata bit=1 kind=stuck1 cycle=10
; expect: classification=detected detect_cycle=10 erring_cpu=0 vote_golden=1 diverged=14
; stimulus: 0x0
_start:
    jal  r0, main
.org 0x8
handler:
    csrr r1, 4
    out  r1, 7
    halt
main:
    addi r1, r0, 0
    addi r2, r0, 1
    addi r3, r0, 17
    addi r4, r0, 1024
loop:
    add  r1, r1, r2
    st   r1, 0(r4)
    addi r4, r4, 4
    addi r2, r2, 1
    bne  r2, r3, loop
    out  r1, 0
    halt
