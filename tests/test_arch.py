"""Two-tier golden traces: ArchTrace, cross-check, TieredGolden."""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.faults import GoldenTrace
from repro.faults.arch import ArchTrace, TieredGolden, peek_cached_n_cycles
from repro.workloads import KERNELS
from repro.workloads.kernels import DEFAULT_SEED


@pytest.fixture(scope="module")
def ttsprk_arch() -> ArchTrace:
    return ArchTrace(KERNELS["ttsprk"])


@pytest.mark.parametrize("name", ("ttsprk", "puwmod"))
def test_arch_trace_matches_reference(name):
    """The architectural OUT stream equals the workload's reference model."""
    workload = KERNELS[name]
    arch = ArchTrace(workload)
    assert arch.outputs == workload.reference(workload.stimulus(DEFAULT_SEED))
    assert arch.n_steps > 0
    assert arch.retires and arch.executed_words
    # r0 is hardwired zero: never a meaningful read, never a write.
    assert not arch.reg_reads & 1
    assert not arch.reg_writes & 1


def test_cross_check_clean(ttsprk_arch, ttsprk_golden):
    assert ttsprk_arch.cross_check(ttsprk_golden) == []
    # Retiring one instruction takes at least one pipeline cycle.
    assert ttsprk_arch.n_steps <= ttsprk_golden.n_cycles


def test_cross_check_detects_out_corruption(ttsprk_arch, ttsprk_golden):
    """A flipped OUT value in the port matrix is reported."""
    bad = copy.copy(ttsprk_golden)
    pm = np.array(ttsprk_golden.port_matrix)
    strobe = pm[:, 11]
    toggle = int(np.nonzero(strobe[1:] != strobe[:-1])[0][3]) + 1
    pm[toggle, 10] ^= 1
    bad.port_matrix = pm
    problems = ttsprk_arch.cross_check(bad)
    assert problems and "OUT stream" in problems[0]


def test_cross_check_detects_truncation(ttsprk_arch, ttsprk_golden):
    """A truncated trace loses OUT values beyond the prefix allowance."""
    bad = copy.copy(ttsprk_golden)
    half = ttsprk_golden.n_cycles // 2
    bad.port_matrix = np.array(ttsprk_golden.port_matrix[:half])
    bad.n_cycles = half
    assert ttsprk_arch.cross_check(bad)


def test_cross_check_rejects_identity_mismatch(ttsprk_golden):
    """Traces of different runs are incomparable, not 'mismatched'."""
    other = ArchTrace(KERNELS["ttsprk"], seed=DEFAULT_SEED + 1)
    problems = other.cross_check(ttsprk_golden)
    assert problems and "identity" in problems[0]


def test_tiered_lazy_and_cross_checked(tmp_path):
    """Tier 2 is built lazily and handed out only after cross-check."""
    workload = KERNELS["ttsprk"]
    tiered = TieredGolden(workload, cache_dir=tmp_path)
    assert tiered.tier_loads == {"arch": 0, "full": 0, "n_cycles_peeks": 0}
    # Cold cache: n_cycles has to build tier 2 (which pulls tier 1 in
    # for the cross-check) and populates the on-disk cache.
    n = tiered.n_cycles
    assert tiered.tier_loads["full"] == 1
    assert tiered.tier_loads["arch"] == 1
    # Warm cache, fresh handle: scheduling peeks the header only.
    warm = TieredGolden(workload, cache_dir=tmp_path)
    assert warm.n_cycles == n
    assert warm.tier_loads["n_cycles_peeks"] == 1
    assert warm.tier_loads["full"] == 0
    assert warm.full.n_cycles == n
    assert warm.tier_loads["full"] == 1


def test_tiered_rejects_corrupt_trace(tmp_path, monkeypatch):
    """A trace failing the architectural cross-check never escapes."""
    workload = KERNELS["ttsprk"]
    good = GoldenTrace.cached(workload, cache_dir=tmp_path)
    bad = copy.copy(good)
    pm = np.array(good.port_matrix)
    strobe = pm[:, 11]
    toggle = int(np.nonzero(strobe[1:] != strobe[:-1])[0][0]) + 1
    pm[toggle, 10] ^= 2
    bad.port_matrix = pm
    monkeypatch.setattr(GoldenTrace, "cached",
                        classmethod(lambda cls, *a, **k: bad))
    tiered = TieredGolden(workload, cache_dir=tmp_path)
    with pytest.raises(RuntimeError, match="cross-check"):
        tiered.full


def test_peek_cached_n_cycles(tmp_path):
    workload = KERNELS["ttsprk"]
    assert peek_cached_n_cycles(workload, cache_dir=tmp_path) is None  # cold
    golden = GoldenTrace.cached(workload, cache_dir=tmp_path)
    assert peek_cached_n_cycles(workload, cache_dir=tmp_path) == golden.n_cycles
    # Identity fields gate the peek exactly like the full loader.
    assert peek_cached_n_cycles(workload, seed=DEFAULT_SEED + 1,
                                cache_dir=tmp_path) is None
    assert peek_cached_n_cycles(workload, mem_words=4096,
                                cache_dir=tmp_path) is None
