"""Assembler unit tests."""

import pytest

from repro.cpu.assembler import AssemblerError, assemble
from repro.cpu.isa import Op, decode


class TestBasics:
    def test_single_instruction(self):
        prog = assemble("addi r1, r0, 42")
        assert len(prog.words) == 1
        instr = decode(prog.words[0])
        assert (instr.op, instr.rd, instr.imm) == (Op.ADDI, 1, 42)

    def test_comments_and_blank_lines(self):
        prog = assemble("""
        ; full line comment
        addi r1, r0, 1   ; trailing
        # hash comment

        addi r2, r0, 2
        """)
        assert len(prog.words) == 2

    def test_register_aliases(self):
        prog = assemble("add sp, zero, lr")
        instr = decode(prog.words[0])
        assert (instr.rd, instr.ra, instr.rb) == (14, 0, 15)

    def test_hex_immediates(self):
        instr = decode(assemble("andi r1, r2, 0xFF").words[0])
        assert instr.imm == 0xFF

    def test_negative_immediates(self):
        instr = decode(assemble("addi r1, r2, -5").words[0])
        assert instr.imm == -5


class TestLabels:
    def test_forward_branch_offset(self):
        prog = assemble("""
            beq r1, r2, done
            nop
        done:
            halt
        """)
        instr = decode(prog.words[0])
        assert instr.imm == 1  # skip one word relative to next pc

    def test_backward_branch_offset(self):
        prog = assemble("""
        loop:
            nop
            bne r1, r2, loop
        """)
        instr = decode(prog.words[1])
        assert instr.imm == -2

    def test_jal_to_label(self):
        prog = assemble("""
            jal lr, sub
            halt
        sub:
            halt
        """)
        instr = decode(prog.words[0])
        assert instr.rd == 15
        assert instr.imm == 1

    def test_entry_from_start_label(self):
        prog = assemble("""
            nop
        _start:
            halt
        """)
        assert prog.entry == 4

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a:\nnop\na:\nnop")

    def test_label_as_immediate_value(self):
        prog = assemble("""
            addi r1, r0, data
        data:
            .word 7
        """)
        assert decode(prog.words[0]).imm == 4
        assert prog.words[1] == 7


class TestDirectives:
    def test_org_pads_with_zeros(self):
        prog = assemble("""
            nop
        .org 0x10
            halt
        """)
        assert len(prog.words) == 5
        assert prog.words[1] == prog.words[2] == prog.words[3] == 0

    def test_org_backwards_rejected(self):
        with pytest.raises(AssemblerError, match="backwards"):
            assemble("nop\nnop\n.org 0x0\nnop")

    def test_org_unaligned_rejected(self):
        with pytest.raises(AssemblerError, match="aligned"):
            assemble(".org 0x2\nnop")

    def test_word_list(self):
        prog = assemble(".word 1, 2, 0x30")
        assert prog.words == [1, 2, 0x30]

    def test_word_wraps_to_32_bits(self):
        prog = assemble(".word 0x1FFFFFFFF")
        assert prog.words == [0xFFFFFFFF]

    def test_space_reserves_zeroed_words(self):
        prog = assemble(".space 3\n.word 9")
        assert prog.words == [0, 0, 0, 9]


class TestMemoryOperands:
    def test_load_offset_base(self):
        instr = decode(assemble("ld r1, 8(r2)").words[0])
        assert (instr.op, instr.rd, instr.ra, instr.imm) == (Op.LD, 1, 2, 8)

    def test_store_source_in_rb(self):
        instr = decode(assemble("st r3, -4(r5)").words[0])
        assert (instr.op, instr.rb, instr.ra, instr.imm) == (Op.ST, 3, 5, -4)

    def test_label_offset(self):
        prog = assemble("""
            ld r1, tab(r2)
        tab:
            .word 5
        """)
        assert decode(prog.words[0]).imm == 4

    def test_malformed_memory_operand(self):
        with pytest.raises(AssemblerError, match="memory operand"):
            assemble("ld r1, r2")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frob r1, r2, r3")

    def test_bad_register(self):
        with pytest.raises(AssemblerError, match="bad register"):
            assemble("add r1, r2, r16")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="operands"):
            assemble("add r1, r2")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as err:
            assemble("nop\nnop\nbogus r1")
        assert err.value.lineno == 3

    def test_bad_integer(self):
        with pytest.raises(AssemblerError, match="bad integer"):
            assemble("addi r1, r0, twelve")


class TestIoAndSystem:
    def test_in_out(self):
        prog = assemble("in r1, 3\nout r2, 5")
        in_i = decode(prog.words[0])
        out_i = decode(prog.words[1])
        assert (in_i.op, in_i.rd, in_i.imm) == (Op.IN, 1, 3)
        assert (out_i.op, out_i.rb, out_i.imm) == (Op.OUT, 2, 5)

    def test_csr_ops(self):
        prog = assemble("csrr r1, 0\ncsrw r2, 2")
        assert decode(prog.words[0]).op == Op.CSRR
        assert decode(prog.words[1]).op == Op.CSRW
