"""Batch-vectorised injection engine: parity, compaction, wiring.

The contract under test is absolute: for any batch size, worker count
and shard composition, the batch engine must reproduce the scalar
pruned engine's records *and* pruning statistics bit for bit
(``CampaignResult.digest()`` equality is the campaign-level corollary).
"""

from __future__ import annotations

import random

import pytest

from repro.cli import main as cli_main
from repro.cpu.units import REGISTRY, FlopRef
from repro.faults import (
    BatchInjectionEngine,
    CampaignConfig,
    CampaignResult,
    Fault,
    FaultKind,
    InjectionEngine,
    run_campaign,
    sample_flops,
    schedule_faults,
)
from repro.faults.parallel import sampling_rng, schedule_rng

QUICK = CampaignConfig.quick()


# -- campaign-level digest parity --------------------------------------------

@pytest.mark.parametrize("workers", (1, 2))
@pytest.mark.parametrize("batch", (1, 7, 64))
def test_campaign_digest_parity(quick_campaign, batch, workers):
    """digest() is identical for every (batch size, worker count)."""
    result = run_campaign(QUICK, workers=workers, batch=batch)
    assert result.digest() == quick_campaign.digest()
    assert result.injected == quick_campaign.injected
    assert result.golden_cycles == quick_campaign.golden_cycles
    # Stronger than the digest: pruning stats match the scalar engine's.
    assert result.meta["pruning"] == quick_campaign.meta["pruning"]
    assert result.meta["batch"] == batch


# -- engine-level parity on random shards ------------------------------------

def _shard_faults(golden, flop_idxs, cfg):
    flops = sample_flops(cfg, sampling_rng(cfg.seed))
    faults = []
    for idx in flop_idxs:
        faults.extend(schedule_faults(
            flops[idx], golden.n_cycles, cfg,
            schedule_rng(cfg.seed, 0, idx)))
    return faults


def _assert_engine_parity(golden, faults, cfg, prune=True, **batch_kwargs):
    scalar = InjectionEngine(golden, max_observe=cfg.max_observe,
                             mask_check_stride=cfg.mask_check_stride,
                             prune=prune)
    expected = [scalar.inject(f) for f in faults]
    engine = BatchInjectionEngine(golden, max_observe=cfg.max_observe,
                                  mask_check_stride=cfg.mask_check_stride,
                                  prune=prune, **batch_kwargs)
    assert engine.inject_all(faults) == expected
    assert engine.stats.as_dict() == scalar.stats.as_dict()


@pytest.mark.parametrize("trial,batch", ((0, 3), (1, 17), (2, 128)))
def test_random_shard_parity(ttsprk_golden, trial, batch):
    """Random flop subsets through both engines: records + stats equal."""
    cfg = QUICK
    n_flops = len(sample_flops(cfg, sampling_rng(cfg.seed)))
    rnd = random.Random(20180615 + trial)
    idxs = sorted(rnd.sample(range(n_flops), k=min(12, n_flops)))
    faults = _shard_faults(ttsprk_golden, idxs, cfg)
    assert faults
    _assert_engine_parity(ttsprk_golden, faults, cfg, batch=batch)


def test_pure_kernel_parity(ttsprk_golden):
    """tail_lanes=0 disables the scalar drain: the vectorised kernel
    alone must carry every lane to retirement, bit-identically."""
    cfg = QUICK
    faults = _shard_faults(ttsprk_golden, range(10), cfg)
    _assert_engine_parity(ttsprk_golden, faults, cfg, batch=16, tail_lanes=0)


def test_unpruned_parity(ttsprk_golden):
    """prune=False is an escape hatch in both engines; still identical."""
    cfg = QUICK
    faults = _shard_faults(ttsprk_golden, range(6), cfg)
    _assert_engine_parity(ttsprk_golden, faults, cfg, prune=False, batch=8)


# -- dynamic equivalence collapsing ------------------------------------------

def test_equivalence_collapse_fires(ttsprk_golden):
    """Two soft faults on one (reg, bit) deferring to the same
    soft_start collapse into a single simulation, in both engines.

    Campaign-level quick-config runs always report ``equiv_hits: 0``
    — not a bug: ``soft_per_flop=1`` gives every (reg, bit) exactly
    one soft fault, so the class key (reg, bit, start) cannot collide
    (DESIGN §5.15).  This pins the mechanism itself alive with a
    constructed pair.
    """
    golden = ttsprk_golden
    pair = None
    for spec in REGISTRY:
        for t in range(0, golden.n_cycles - 2, 11):
            s1 = golden.soft_start(spec.name, t)
            if s1 is not None and golden.soft_start(spec.name, t + 1) == s1:
                pair = (spec.name, t)
                break
        if pair:
            break
    assert pair is not None, "no collapsible soft pair in the golden trace"
    reg, t = pair
    faults = [Fault(FlopRef(reg, 0), FaultKind.SOFT, t),
              Fault(FlopRef(reg, 0), FaultKind.SOFT, t + 1)]

    scalar = InjectionEngine(golden)
    expected = [scalar.inject(f) for f in faults]
    assert scalar.stats.equiv_hits == 1  # second fault replayed, not re-run
    for batch in (1, 4):
        engine = BatchInjectionEngine(golden, batch=batch)
        assert engine.inject_all(faults) == expected
        assert engine.stats.as_dict() == scalar.stats.as_dict()
        assert engine.stats.equiv_hits == 1


# -- lane compaction ---------------------------------------------------------

def test_lane_compaction(ttsprk_golden):
    """Retired columns are filled by live tail columns, one move each."""
    engine = BatchInjectionEngine(ttsprk_golden, batch=4)
    engine._n = 4
    for i in range(4):
        engine.S[:, i] = i + 1
        engine.M[i, :] = 10 * (i + 1)
        engine.t[i] = 100 + i
        engine.end[i] = 200 + i
        engine.start[i] = i
        engine.next_chk[i] = 50 + i
        engine.chk_iv[i] = 8 << i
        engine.force_and[i] = i
        engine.force_or[i] = i
        engine.force_row[i] = i
        engine.is_hard[i] = bool(i % 2)
        engine.seq[i] = i
        engine.info[i] = f"lane{i}"

    engine._compact([1, 3])

    assert engine._n == 2
    # Lane 0 untouched; old lane 2 moved into the hole at 1.
    assert int(engine.S[0, 0]) == 1 and int(engine.S[0, 1]) == 3
    assert int(engine.M[0, 0]) == 10 and int(engine.M[1, 0]) == 30
    assert engine.t[:2].tolist() == [100, 102]
    assert engine.end[:2].tolist() == [200, 202]
    assert engine.next_chk[:2].tolist() == [50, 52]
    assert engine.chk_iv[:2].tolist() == [8, 32]
    assert engine.force_and[:2].tolist() == [0, 2]
    assert engine.force_row[:2].tolist() == [0, 2]
    assert engine.is_hard[:2].tolist() == [False, False]
    assert engine.seq[:2].tolist() == [0, 2]
    assert engine.info[:2] == ["lane0", "lane2"]


def test_seed_many_matches_scalar_seed(ttsprk_golden):
    """Bulk lane seeding reproduces the scalar reference lane-for-lane."""
    from collections import deque

    import numpy as np

    golden = ttsprk_golden
    kinds = (FaultKind.SOFT, FaultKind.STUCK0, FaultKind.STUCK1)
    specs = []
    for seq in range(20):
        spec = REGISTRY[(seq * 5) % len(REGISTRY)]
        kind = kinds[seq % 3]
        bit = (seq * 3) % spec.width
        start = 5 + 7 * seq
        fault = Fault(FlopRef(spec.name, bit), kind, start)
        end = min(golden.n_cycles, start + 300)
        key = (spec.name, bit, start) if kind is FaultKind.SOFT else None
        specs.append((seq, fault, start, end, key))

    scalar = BatchInjectionEngine(golden, batch=32)
    for s in specs:
        scalar._seed(s)
    bulk = BatchInjectionEngine(golden, batch=32)
    bulk._seed_many(deque(specs))

    assert scalar._n == bulk._n == len(specs)
    np.testing.assert_array_equal(scalar.S, bulk.S)
    np.testing.assert_array_equal(scalar.M, bulk.M)
    for name in ("t", "end", "start", "next_chk", "chk_iv", "seq",
                 "force_row", "force_and", "force_or", "is_hard"):
        np.testing.assert_array_equal(
            getattr(scalar, name), getattr(bulk, name), err_msg=name)
    assert scalar.info == bulk.info


def test_seed_many_respects_batch_room(ttsprk_golden):
    """Refill takes exactly ``batch - n`` specs, leaving the rest queued."""
    from collections import deque

    golden = ttsprk_golden
    specs = deque(
        (seq, Fault(FlopRef("pc", seq % 32), FaultKind.SOFT, 10 + seq),
         10 + seq, golden.n_cycles, None)
        for seq in range(10))
    engine = BatchInjectionEngine(golden, batch=4)
    engine._seed_many(specs)
    assert engine._n == 4
    assert len(specs) == 6
    assert specs[0][0] == 4  # queue order preserved


def test_compact_last_lane_only():
    """Retiring the final live lane is a pure shrink, no column moves."""
    from repro.faults import GoldenTrace
    from repro.workloads import KERNELS

    engine = BatchInjectionEngine(GoldenTrace.cached(KERNELS["ttsprk"]),
                                  batch=2)
    engine._n = 2
    engine.S[:, 0] = 7
    engine.S[:, 1] = 9
    engine.info[:2] = ["keep", "drop"]
    engine._compact([1])
    assert engine._n == 1
    assert int(engine.S[0, 0]) == 7
    assert engine.info[0] == "keep"


# -- CLI wiring --------------------------------------------------------------

def test_cli_batch_flag(tmp_path, capsys, quick_campaign):
    """`repro campaign --batch N` runs the batch engine; result cached
    under the same key (and digest) as the scalar engine's."""
    rc = cli_main(["campaign", "--scale", "quick", "--cache", str(tmp_path),
                   "--workers", "1", "--batch", "16"])
    assert rc == 0
    capsys.readouterr()
    cached = CampaignResult.load(next(tmp_path.glob("campaign_*.pkl")))
    assert cached.digest() == quick_campaign.digest()
    assert cached.meta["batch"] == 16
