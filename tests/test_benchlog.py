"""Mixed-schema guard for the BENCH_campaign.json trajectory loader.

The history file is append-only across PRs, so it permanently holds
rows written before newer knobs existed (e.g. ``batch_sweep`` rows
without ``batch_cext``).  These tests pin the contract the CI
throughput gates rely on: skip-don't-crash on old rows, absorb the
legacy schema-1 single-payload file, refuse future schemas.
"""

import json

import pytest

from repro.benchlog import (
    CURRENT_SCHEMA,
    append_entry,
    has_keys,
    latest_entry,
    load_entries,
)


def write(path, payload):
    path.write_text(json.dumps(payload))


def test_missing_file_is_empty_history(tmp_path):
    assert load_entries(tmp_path / "nope.json") == []
    assert latest_entry(tmp_path / "nope.json", "batch_sweep") is None


def test_legacy_schema1_payload_absorbed_as_pruning_entry(tmp_path):
    path = tmp_path / "bench.json"
    write(path, {"total_faults": 324, "skipped": {"soft": 10}})
    entries = load_entries(path)
    assert len(entries) == 1
    assert entries[0]["kind"] == "pruning"
    assert entries[0]["timestamp"] is None
    assert entries[0]["total_faults"] == 324
    assert latest_entry(path, "pruning", require=("skipped.soft",)) \
        is entries[0] or latest_entry(path, "pruning")["total_faults"] == 324


def test_latest_entry_skips_rows_missing_required_keys(tmp_path):
    path = tmp_path / "bench.json"
    write(path, {"schema": 2, "entries": [
        # Old batch_sweep row from before the kernel knob existed:
        {"kind": "batch_sweep",
         "injections_per_s": {"scalar": 100.0, "batch": {"256": 900.0}}},
        {"kind": "pruning", "total_faults": 324},
        # Newest batch_sweep row carries the full shape:
        {"kind": "batch_sweep",
         "injections_per_s": {"scalar": 110.0, "batch": {"256": 950.0},
                              "batch_cext": {"256": 4000.0}}},
    ]})
    newest = latest_entry(path, "batch_sweep",
                          require=("injections_per_s.batch_cext.256",))
    assert newest["injections_per_s"]["batch_cext"]["256"] == 4000.0
    # Without the requirement, the same newest row wins.
    assert latest_entry(path, "batch_sweep") is not None
    # Requiring a key only the old row shape lacks falls back past it.
    old_ok = latest_entry(path, "batch_sweep",
                          require=("injections_per_s.batch.256",))
    assert old_ok["injections_per_s"]["batch"]["256"] == 950.0


def test_latest_entry_returns_none_when_no_row_qualifies(tmp_path):
    path = tmp_path / "bench.json"
    write(path, {"schema": 2, "entries": [
        {"kind": "batch_sweep", "injections_per_s": {"scalar": 100.0}},
    ]})
    assert latest_entry(path, "batch_sweep",
                        require=("injections_per_s.batch_cext.256",)) is None
    assert latest_entry(path, "service_bench") is None


def test_future_schema_raises(tmp_path):
    path = tmp_path / "bench.json"
    write(path, {"schema": 99, "entries": [{"kind": "pruning"}]})
    with pytest.raises(ValueError, match="unsupported schema"):
        load_entries(path)


def test_corrupt_or_non_object_file_warns_and_returns_empty(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text("{not json")
    with pytest.warns(RuntimeWarning, match="unreadable"):
        assert load_entries(path) == []
    write(path, [1, 2, 3])
    with pytest.warns(RuntimeWarning, match="not a JSON object"):
        assert load_entries(path) == []


def test_non_dict_entries_are_dropped(tmp_path):
    path = tmp_path / "bench.json"
    write(path, {"schema": 2, "entries": [
        "garbage", {"kind": "pruning", "total_faults": 1}, 7,
    ]})
    entries = load_entries(path)
    assert entries == [{"kind": "pruning", "total_faults": 1}]


def test_append_migrates_legacy_file_to_current_container(tmp_path):
    path = tmp_path / "bench.json"
    write(path, {"total_faults": 324})
    entry = append_entry(path, "batch_sweep",
                         {"injections_per_s": {"scalar": 1.0}})
    assert entry["kind"] == "batch_sweep"
    assert entry["timestamp"]
    payload = json.loads(path.read_text())
    assert payload["schema"] == CURRENT_SCHEMA
    kinds = [row["kind"] for row in payload["entries"]]
    assert kinds == ["pruning", "batch_sweep"]
    # The migrated legacy payload is preserved verbatim.
    assert payload["entries"][0]["total_faults"] == 324


def test_has_keys_dotted_paths():
    entry = {"a": {"b": {"c": 1}}, "flat": 2}
    assert has_keys(entry, ())
    assert has_keys(entry, ("a.b.c", "flat"))
    assert not has_keys(entry, ("a.b.missing",))
    assert not has_keys(entry, ("flat.deeper",))
