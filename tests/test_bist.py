"""STL latency model, SBIST and LBIST engine tests."""

import numpy as np
import pytest

from repro.bist import LbistEngine, SbistEngine, StlModel
from repro.cpu.units import COARSE_UNITS, DPU, FINE_UNITS, unit_flop_counts


class TestStlModel:
    def test_seven_unit_latencies(self):
        stl = StlModel()
        assert set(stl.latencies) == set(COARSE_UNITS)

    def test_thirteen_unit_latencies(self):
        stl = StlModel(fine=True)
        assert set(stl.latencies) == set(FINE_UNITS)

    def test_latency_grows_with_complexity(self):
        stl = StlModel()
        counts = unit_flop_counts()
        ordered = sorted(COARSE_UNITS, key=counts.get)
        latencies = [stl.latency(u) for u in ordered]
        assert latencies == sorted(latencies)

    def test_dpu_has_longest_stl(self):
        stl = StlModel()
        assert max(stl.latencies, key=stl.latency) == DPU

    def test_calibrated_to_paper_range(self):
        """Table II: [min, mean, max] ~ [25k, 170k, 700k] cycles."""
        lo, mean, hi = StlModel().spread()
        assert 20_000 <= lo <= 60_000
        assert 120_000 <= mean <= 250_000
        assert 400_000 <= hi <= 800_000

    def test_fine_sub_stls_shorter_than_parent(self):
        coarse = StlModel()
        fine = StlModel(fine=True)
        dpu_subs = [u for u in FINE_UNITS if u.startswith("DPU.")]
        for sub in dpu_subs:
            assert fine.latency(sub) < coarse.latency(DPU)

    def test_ascending_order_sorted(self):
        stl = StlModel()
        order = stl.ascending_order()
        assert [stl.latency(u) for u in order] == sorted(stl.latencies.values())

    def test_total_latency(self):
        stl = StlModel()
        assert stl.total_latency() == sum(stl.latencies.values())

    def test_invalid_coverage_rejected(self):
        with pytest.raises(ValueError):
            StlModel(coverage=0.0)
        with pytest.raises(ValueError):
            StlModel(coverage=1.5)


class TestSbist:
    @pytest.fixture
    def engine(self):
        return SbistEngine(StlModel(), np.random.default_rng(0))

    def test_finds_faulty_unit(self, engine):
        order = engine.stl.ascending_order()
        outcome = engine.run(order, order[2])
        assert outcome.found
        assert outcome.faulty_unit == order[2]
        assert outcome.tested_units == 3
        assert outcome.cycles == sum(engine.stl.latency(u) for u in order[:3])

    def test_soft_error_runs_to_completion(self, engine):
        order = engine.stl.ascending_order()
        outcome = engine.run(order, None)
        assert not outcome.found
        assert outcome.tested_units == len(order)
        assert outcome.cycles == engine.stl.total_latency()

    def test_first_unit_fault_cheapest(self, engine):
        order = engine.stl.ascending_order()
        outcome = engine.run(order, order[0])
        assert outcome.cycles == engine.stl.latency(order[0])

    def test_faulty_unit_not_in_order_is_missed(self, engine):
        order = engine.stl.ascending_order()[:2]
        outcome = engine.run(order, engine.stl.ascending_order()[-1])
        assert not outcome.found
        assert outcome.tested_units == 2

    def test_partial_coverage_can_miss(self):
        stl = StlModel(coverage=0.5)
        engine = SbistEngine(stl, np.random.default_rng(0))
        order = stl.ascending_order()
        outcomes = [engine.run(order, order[0]).found for _ in range(200)]
        assert 40 < sum(outcomes) < 160  # ~50% catch rate

    def test_complete_order_is_permutation(self, engine):
        prefix = ("DPU", "LSU")
        full = engine.complete_order(prefix)
        assert full[:2] == prefix
        assert sorted(full) == sorted(engine.stl.units)

    def test_complete_order_full_prefix_unchanged(self, engine):
        prefix = tuple(engine.stl.units)
        assert engine.complete_order(prefix) == prefix


class TestLbist:
    def test_latencies_scale_with_flops(self):
        engine = LbistEngine()
        counts = unit_flop_counts()
        assert engine.latency(DPU) == max(engine.latencies.values())
        ordered = sorted(COARSE_UNITS, key=counts.get)
        latencies = [engine.latency(u) for u in ordered]
        assert latencies == sorted(latencies)

    def test_run_semantics_match_sbist(self):
        engine = LbistEngine()
        order = tuple(sorted(engine.latencies, key=engine.latency))
        outcome = engine.run(order, order[1])
        assert outcome.found
        assert outcome.tested_units == 2

    def test_constrained_search_is_faster(self):
        """The paper's point: prediction constrains the scan search."""
        engine = LbistEngine()
        order = tuple(sorted(engine.latencies, key=engine.latency))
        faulty = order[-1]
        unconstrained = engine.run(order, faulty)
        constrained = engine.run((faulty,) + order[:-1], faulty)
        assert constrained.cycles < unconstrained.cycles

    def test_fine_taxonomy(self):
        engine = LbistEngine(fine=True)
        assert set(engine.latencies) == set(FINE_UNITS)
