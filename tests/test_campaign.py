"""Campaign controller and statistics tests."""

import numpy as np
import pytest

from repro.cpu import FlopRef
from repro.cpu.units import FINE_UNITS, unit_flop_counts
from repro.faults import (
    CampaignConfig,
    CampaignResult,
    ErrorType,
    FaultKind,
    cached_campaign,
    diverged_set_size_ratio,
    manifestation_rates,
    mean_detection_time,
    overall_manifestation_rate,
    rate_spread,
    sample_flops,
    schedule_faults,
    table1,
    time_spread,
)


class TestConfig:
    def test_cache_key_stable(self):
        assert CampaignConfig().cache_key() == CampaignConfig().cache_key()

    def test_cache_key_sensitive_to_fields(self):
        assert CampaignConfig(seed=1).cache_key() != CampaignConfig(seed=2).cache_key()

    def test_presets_distinct(self):
        keys = {CampaignConfig.quick().cache_key(),
                CampaignConfig.default().cache_key(),
                CampaignConfig.full().cache_key()}
        assert len(keys) == 3


class TestSampling:
    def test_full_fraction_selects_all(self):
        rng = np.random.default_rng(0)
        flops = sample_flops(CampaignConfig(flop_fraction=1.0), rng)
        assert len(flops) == sum(unit_flop_counts(fine=True).values())

    def test_stratified_minimum_one_per_unit(self):
        rng = np.random.default_rng(0)
        flops = sample_flops(CampaignConfig(flop_fraction=0.001), rng)
        units = {f.unit for f in flops}
        assert units == set(FINE_UNITS)

    def test_sample_reproducible_with_seed(self):
        cfg = CampaignConfig(flop_fraction=0.1)
        a = sample_flops(cfg, np.random.default_rng(5))
        b = sample_flops(cfg, np.random.default_rng(5))
        assert a == b

    def test_no_duplicates(self):
        flops = sample_flops(CampaignConfig(flop_fraction=0.5),
                             np.random.default_rng(1))
        assert len(set(flops)) == len(flops)


class TestSchedule:
    def test_fault_counts(self):
        cfg = CampaignConfig(soft_per_flop=3, hard_per_flop=2)
        faults = schedule_faults(FlopRef("pc", 0), 1280, cfg,
                                 np.random.default_rng(0))
        kinds = [f.kind for f in faults]
        assert kinds.count(FaultKind.SOFT) == 3
        assert kinds.count(FaultKind.STUCK0) == 2
        assert kinds.count(FaultKind.STUCK1) == 2

    def test_cycles_in_range(self):
        cfg = CampaignConfig()
        faults = schedule_faults(FlopRef("pc", 0), 999, cfg,
                                 np.random.default_rng(0))
        assert all(0 <= f.cycle < 999 for f in faults)

    def test_soft_intervals_distinct(self):
        cfg = CampaignConfig(soft_per_flop=8, intervals=64)
        n_cycles = 6400
        faults = schedule_faults(FlopRef("pc", 0), n_cycles, cfg,
                                 np.random.default_rng(0))
        soft = [f.cycle // 100 for f in faults if f.kind is FaultKind.SOFT]
        assert len(set(soft)) == len(soft)

    def test_short_run_does_not_crash(self):
        cfg = CampaignConfig(soft_per_flop=80)
        faults = schedule_faults(FlopRef("pc", 0), 10, cfg,
                                 np.random.default_rng(0))
        assert all(0 <= f.cycle < 10 for f in faults)

    def test_vectorised_draws_match_scalar_stream(self):
        """The property ``pick_cycles`` relies on: a single vectorised
        ``integers(highs)`` draw consumes the Generator bitstream
        element-for-element like the equivalent scalar call sequence,
        so the vectorised scheduler reproduces historical schedules."""
        for trial in range(8):
            highs = np.random.default_rng(100 + trial).integers(
                1, 23, size=64)
            scalar_rng = np.random.default_rng(trial)
            scalar = [int(scalar_rng.integers(int(h))) for h in highs]
            vector_rng = np.random.default_rng(trial)
            assert vector_rng.integers(highs).tolist() == scalar

    def test_schedule_matches_scalar_reference(self):
        """Pin the vectorised scheduler to the pre-vectorisation scalar
        algorithm (interval-by-interval draws) on mixed-length interval
        grids — schedules are part of the campaign digest contract."""
        cfg = CampaignConfig(soft_per_flop=16, hard_per_flop=2)

        def scalar_reference(n_cycles, rng):
            n_intervals = max(1, min(cfg.intervals, n_cycles))
            base, extra = divmod(n_cycles, n_intervals)

            def pick(count):
                count = min(count, n_intervals)
                out = []
                for iv in rng.choice(n_intervals, size=count,
                                     replace=False):
                    iv = int(iv)
                    lo = iv * base + min(iv, extra)
                    out.append(lo + int(rng.integers(
                        base + (1 if iv < extra else 0))))
                return out

            cycles = pick(cfg.soft_per_flop)
            cycles += pick(cfg.hard_per_flop) + pick(cfg.hard_per_flop)
            return cycles

        for n_cycles in (10, 63, 64, 65, 999, 1414):
            for seed in range(10):
                faults = schedule_faults(FlopRef("pc", 0), n_cycles, cfg,
                                         np.random.default_rng(seed))
                expected = scalar_reference(n_cycles,
                                            np.random.default_rng(seed))
                assert [f.cycle for f in faults] == expected


class TestCampaignRun:
    def test_quick_campaign_manifests_errors(self, quick_campaign):
        assert quick_campaign.n_errors > 20
        assert 0.0 < overall_manifestation_rate(quick_campaign) < 1.0

    def test_injection_accounting(self, quick_campaign):
        assert quick_campaign.n_injected == sum(quick_campaign.injected.values())
        assert quick_campaign.n_errors <= quick_campaign.n_injected

    def test_records_reference_config_benchmarks(self, quick_campaign):
        benches = set(quick_campaign.config.benchmarks)
        assert {r.benchmark for r in quick_campaign.records} <= benches

    def test_golden_cycles_recorded(self, quick_campaign):
        for bench in quick_campaign.config.benchmarks:
            assert quick_campaign.golden_cycles[bench] > 100

    def test_reproducible_with_seed(self, quick_campaign):
        from repro.faults import run_campaign
        again = run_campaign(CampaignConfig.quick())
        assert again.n_injected == quick_campaign.n_injected
        assert [r.diverged for r in again.records] == \
               [r.diverged for r in quick_campaign.records]


class TestPersistence:
    def test_save_load_roundtrip(self, quick_campaign, tmp_path):
        path = tmp_path / "campaign.pkl"
        quick_campaign.save(path)
        loaded = CampaignResult.load(path)
        assert loaded.n_injected == quick_campaign.n_injected
        assert loaded.records[0] == quick_campaign.records[0]

    def test_cached_campaign_uses_cache(self, tmp_path):
        cfg = CampaignConfig.quick()
        first = cached_campaign(cfg, cache_dir=tmp_path)
        second = cached_campaign(cfg, cache_dir=tmp_path)
        assert second.n_errors == first.n_errors

    def test_load_rejects_wrong_payload(self, tmp_path):
        import pickle
        path = tmp_path / "bogus.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"not": "a campaign"}, fh)
        with pytest.raises(TypeError):
            CampaignResult.load(path)


class TestStats:
    def test_rates_bounded(self, quick_campaign):
        for etype in (ErrorType.SOFT, ErrorType.HARD):
            for rate in manifestation_rates(quick_campaign, etype).values():
                assert 0.0 <= rate <= 1.0

    def test_rate_spread_ordered(self, quick_campaign):
        spread = rate_spread(quick_campaign, ErrorType.HARD)
        assert spread.minimum <= spread.mean <= spread.maximum

    def test_time_spread_ordered(self, quick_campaign):
        spread = time_spread(quick_campaign, ErrorType.SOFT)
        assert spread.minimum <= spread.mean <= spread.maximum

    def test_table1_has_four_rows(self, quick_campaign):
        assert len(table1(quick_campaign)) == 4

    def test_mean_detection_time_positive(self, quick_campaign):
        assert mean_detection_time(quick_campaign) >= 0.0

    def test_hard_errors_diverge_more_scs(self, medium_campaign):
        """The paper's Section III-B observation: stuck-at faults spread
        to more SCs by detection time than transients."""
        assert diverged_set_size_ratio(medium_campaign) > 1.0
