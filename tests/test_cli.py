"""CLI tests (fast commands only; campaign commands use the quick scale
against a temp cache)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonesuch"])


class TestCommands:
    def test_kernels_lists_all(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        for name in ("ttsprk", "idctrn", "iirflt"):
            assert name in out

    def test_run_kernel(self, capsys):
        assert main(["run", "puwmod"]) == 0
        out = capsys.readouterr().out
        assert "matches reference model: True" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "rspeed"]) == 0
        out = capsys.readouterr().out
        assert "halt" in out
        assert "0x0000:" in out

    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out

    def test_campaign_quick(self, capsys, tmp_path):
        assert main(["campaign", "--scale", "quick",
                     "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_evaluate_quick(self, capsys, tmp_path):
        assert main(["evaluate", "--scale", "quick",
                     "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Fig 11" in out
        assert "Table III" in out

    def test_evaluate_fine_topk(self, capsys, tmp_path):
        assert main(["evaluate", "--scale", "quick", "--cache", str(tmp_path),
                     "--fine", "--top-k", "4", "--off-chip"]) == 0
        out = capsys.readouterr().out
        assert "13 CPU units" in out
