"""Replay the checked-in repro corpus: every artifact must cosim clean.

Each ``tests/corpus/*.s`` file is a delta-debugged minimal repro of a
past verification finding (planted-mutant shrinks seed the corpus; any
future real fuzz find joins it).  Replaying them assembler → pipeline
→ reference model in tier-1 means the exact program shapes that once
exposed a divergence can never silently regress — if one fails here, a
previously-fixed bug is back.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cpu.assembler import assemble
from repro.verify import cosim
from repro.verify.diff import load_repro

CORPUS = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS.glob("*.s"))


def test_corpus_is_populated():
    assert len(ENTRIES) >= 6, "repro corpus went missing"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_program_cosimulates_clean(path: Path):
    source, stimulus = load_repro(path)
    # Artifacts carry their stimulus in the header comment; a corpus
    # entry without one would silently replay with the wrong inputs.
    assert "; stimulus:" in source, f"{path.name} lacks a stimulus header"
    result = cosim(source, stimulus)
    assert not result.hung_both, f"{path.name} no longer terminates"
    assert result.ok, f"{path.name} regressed: {result.mismatches}"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_program_is_minimal(path: Path):
    # Shrunken repros stay small; a bloated entry defeats the point of
    # a fast regression corpus.
    program = assemble(load_repro(path)[0])
    assert len(program.words) < 64, f"{path.name} is not a shrunken repro"
