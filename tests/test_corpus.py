"""Replay the checked-in repro corpus: every artifact must cosim clean.

Each ``tests/corpus/*.s`` file is a delta-debugged minimal repro of a
past verification finding (planted-mutant shrinks seed the corpus; any
future real fuzz find joins it).  Replaying them assembler → pipeline
→ reference model in tier-1 means the exact program shapes that once
exposed a divergence can never silently regress — if one fails here, a
previously-fixed bug is back.

Entries carrying ``; scenario:`` headers additionally replay through
the fault-fuzz harness: the headed fault is injected into the headed
core slot of a voted triple (or a DMR pair under the headed dynamic
window schedule) and the outcome — classification, detection cycle,
erring-CPU attribution, voted-value correctness, masked-window delay —
must match the headed expectations exactly.  These pin the voter path
and the dynamic-lockstep gating the same way the plain entries pin the
cosim fence.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cpu.assembler import assemble
from repro.cpu.memory import InputStream, Memory
from repro.cpu.units import FlopRef
from repro.faults.models import Fault, FaultKind
from repro.lockstep.dynamic import ModeSchedule, ModeWindow
from repro.verify import cosim
from repro.verify.diff import load_repro
from repro.verify.faultfuzz import (
    FUZZ_MEM_WORDS,
    _golden_run,
    _state_diff,
    run_one_fault,
)
from repro.verify.refmodel import RefModel

CORPUS = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS.glob("*.s"))


def _scenario_header(source: str) -> dict[str, str] | None:
    """Parse the ``; scenario:`` / ``; fault:`` / ... header block."""
    meta: dict[str, str] = {}
    for line in source.splitlines():
        if not line.startswith(";"):
            break
        body = line[1:].strip()
        for key in ("scenario", "windows", "fault", "expect"):
            prefix = key + ":"
            if body.startswith(prefix):
                meta[key] = body[len(prefix):].strip()
    return meta if "scenario" in meta else None


SCENARIOS = [p for p in ENTRIES
             if _scenario_header(load_repro(p)[0]) is not None]


def test_corpus_is_populated():
    assert len(ENTRIES) >= 9, "repro corpus went missing"
    assert len(SCENARIOS) >= 3, "scenario (TMR/dynamic) entries went missing"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_program_cosimulates_clean(path: Path):
    source, stimulus = load_repro(path)
    # Artifacts carry their stimulus in the header comment; a corpus
    # entry without one would silently replay with the wrong inputs.
    assert "; stimulus:" in source, f"{path.name} lacks a stimulus header"
    result = cosim(source, stimulus)
    assert not result.hung_both, f"{path.name} no longer terminates"
    assert result.ok, f"{path.name} regressed: {result.mismatches}"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_program_is_minimal(path: Path):
    # Shrunken repros stay small; a bloated entry defeats the point of
    # a fast regression corpus.
    program = assemble(load_repro(path)[0])
    assert len(program.words) < 64, f"{path.name} is not a shrunken repro"


def _kv(spec: str) -> dict[str, str]:
    return dict(token.split("=", 1) for token in spec.split())


@pytest.mark.parametrize("path", SCENARIOS, ids=lambda p: p.stem)
def test_scenario_replays_to_headed_outcome(path: Path):
    source, stimulus = load_repro(path)
    meta = _scenario_header(source)
    scenario = _kv(meta["scenario"])
    fault_spec = _kv(meta["fault"])
    expect = _kv(meta["expect"])

    fault = Fault(FlopRef(fault_spec["reg"], int(fault_spec["bit"])),
                  FaultKind(fault_spec["kind"]), int(fault_spec["cycle"]))
    schedule = None
    if "windows" in meta:
        windows = []
        for token in meta["windows"].split():
            kind, start, length = token.split(":")
            windows.append(ModeWindow(int(start), int(length), kind))
        schedule = ModeSchedule(windows)

    program = assemble(source)
    g_ports, g_frozen, g_cpu, _ = _golden_run(program, stimulus, 30_000)
    ref = RefModel(Memory.from_program(program, size_words=FUZZ_MEM_WORDS),
                   InputStream(stimulus), entry=program.entry)
    ref.run(max_steps=30_000)
    ref_state, ref_words = ref.arch_state(), ref.mem.words
    assert g_cpu.halted and ref.halted
    assert not _state_diff(g_cpu, ref_state, ref_words), \
        f"{path.name}: fault-free run no longer matches the reference"

    outcome = run_one_fault(
        program, stimulus, fault, g_ports, g_frozen, ref_state, ref_words,
        cores=int(scenario.get("cores", 2)),
        faulty_slot=(int(scenario["slot"]) if "slot" in scenario else None),
        schedule=schedule)

    assert outcome.classification == expect["classification"], path.name
    checks = {
        "detect_cycle": lambda v: outcome.detect_cycle == int(v),
        "erring_cpu": lambda v: outcome.erring_cpu == int(v),
        "vote_golden": lambda v: outcome.vote_golden is bool(int(v)),
        "diverged": lambda v: sorted(outcome.diverged)
        == [int(x) for x in v.split(",")],
        "first_divergence": lambda v: outcome.first_divergence == int(v),
        "window_delay": lambda v: outcome.window_delay == int(v),
        "window": lambda v: outcome.detect_window == v,
    }
    for key, check in checks.items():
        if key in expect:
            assert check(expect[key]), (path.name, key, expect[key], outcome)
