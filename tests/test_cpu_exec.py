"""Architectural execution tests for the SR5 core."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.core import _alu, _branch_taken
from tests.conftest import PROLOGUE, make_cpu

MASK32 = 0xFFFFFFFF


def run(source: str, stimulus=None, max_cycles: int = 20_000):
    cpu = make_cpu(PROLOGUE + source, stimulus)
    cycles = cpu.run(max_cycles)
    assert cpu.halted, "program did not halt"
    return cpu, cycles


class TestArithmetic:
    def test_add_sub(self):
        cpu, _ = run("""
        main:
            addi r1, r0, 100
            addi r2, r0, 58
            add  r3, r1, r2
            sub  r4, r1, r2
            halt
        """)
        assert cpu.reg(3) == 158
        assert cpu.reg(4) == 42

    def test_add_wraps_32_bits(self):
        cpu, _ = run("""
        main:
            addi r1, r0, -1     ; sign-extends to 0xFFFFFFFF
            addi r2, r1, 1
            halt
        """)
        assert cpu.reg(1) == 0xFFFFFFFF
        assert cpu.reg(2) == 0

    def test_logic_ops(self):
        cpu, _ = run("""
        main:
            addi r1, r0, 0xF0
            addi r2, r0, 0xFF
            and  r3, r1, r2
            or   r4, r1, r2
            xor  r5, r1, r2
            halt
        """)
        assert cpu.reg(3) == 0xF0
        assert cpu.reg(4) == 0xFF
        assert cpu.reg(5) == 0x0F

    def test_shifts(self):
        cpu, _ = run("""
        main:
            addi r1, r0, -8
            shli r2, r1, 1
            shri r3, r1, 1
            srai r4, r1, 1
            halt
        """)
        assert cpu.reg(2) == (-16) & MASK32
        assert cpu.reg(3) == ((-8) & MASK32) >> 1
        assert cpu.reg(4) == (-4) & MASK32

    def test_set_less_than(self):
        cpu, _ = run("""
        main:
            addi r1, r0, -1
            addi r2, r0, 1
            slt  r3, r1, r2
            sltu r4, r1, r2
            slti r5, r1, 0
            halt
        """)
        assert cpu.reg(3) == 1   # signed: -1 < 1
        assert cpu.reg(4) == 0   # unsigned: 0xFFFFFFFF > 1
        assert cpu.reg(5) == 1

    def test_mul_and_mulh(self):
        cpu, _ = run("""
        main:
            lui  r1, 4          ; 0x40000
            addi r2, r0, 0x400
            mul  r3, r1, r2     ; 0x10000000
            mul  r4, r1, r1     ; 0x40000^2 = 2^36 -> low 0, high 16
            mulh r5, r1, r1
            halt
        """)
        assert cpu.reg(3) == 0x10000000
        assert cpu.reg(4) == 0
        assert cpu.reg(5) == 16

    def test_mul_takes_two_cycles(self):
        _, fast = run("main:\n addi r1, r0, 3\n addi r2, r0, 4\n add r3, r1, r2\n halt")
        _, slow = run("main:\n addi r1, r0, 3\n addi r2, r0, 4\n mul r3, r1, r2\n halt")
        assert slow == fast + 1

    def test_lui(self):
        cpu, _ = run("main:\n lui r1, 0x1234\n halt")
        assert cpu.reg(1) == 0x12340000

    def test_r0_is_hardwired_zero(self):
        cpu, _ = run("main:\n addi r0, r0, 99\n add r1, r0, r0\n halt")
        assert cpu.reg(0) == 0
        assert cpu.reg(1) == 0


class TestMemoryOps:
    def test_word_store_load(self):
        cpu, _ = run("""
        main:
            lui  r1, 0xDEAD
            ori  r1, r1, 0x1EEF
            st   r1, 0x500(r0)
            ld   r2, 0x500(r0)
            halt
        """)
        assert cpu.reg(2) == 0xDEAD1EEF

    def test_byte_store_load(self):
        cpu, _ = run("""
        main:
            addi r1, r0, 0xAB
            stb  r1, 0x501(r0)
            ldb  r2, 0x501(r0)
            ld   r3, 0x500(r0)
            halt
        """)
        assert cpu.reg(2) == 0xAB
        assert cpu.reg(3) == 0xAB00

    def test_store_buffer_forwarding(self):
        """A load immediately after a store to the same word sees it."""
        cpu, _ = run("""
        main:
            addi r1, r0, 777
            st   r1, 0x600(r0)
            ld   r2, 0x600(r0)
            halt
        """)
        assert cpu.reg(2) == 777

    def test_load_use_bypass(self):
        cpu, _ = run("""
        main:
            addi r1, r0, 5
            st   r1, 0x700(r0)
            ld   r2, 0x700(r0)
            addi r3, r2, 1
            halt
        """)
        assert cpu.reg(3) == 6

    def test_negative_offset(self):
        cpu, _ = run("""
        main:
            addi r1, r0, 0x800
            addi r2, r0, 31
            st   r2, -4(r1)
            ld   r3, 0x7FC(r0)
            halt
        """)
        assert cpu.reg(3) == 31


class TestControlFlow:
    @pytest.mark.parametrize("op,a,b,taken", [
        ("beq", 5, 5, True), ("beq", 5, 6, False),
        ("bne", 5, 6, True), ("bne", 5, 5, False),
        ("blt", -1, 1, True), ("blt", 1, -1, False),
        ("bge", 1, -1, True), ("bge", -1, 1, False),
        ("bltu", 1, -1, True),   # unsigned: 1 < 0xFFFFFFFF
        ("bgeu", -1, 1, True),
    ])
    def test_branch_semantics(self, op, a, b, taken):
        cpu, _ = run(f"""
        main:
            addi r1, r0, {a}
            addi r2, r0, {b}
            {op}  r1, r2, took
            addi r3, r0, 1
            halt
        took:
            addi r3, r0, 2
            halt
        """)
        assert cpu.reg(3) == (2 if taken else 1)

    def test_jal_links_return_address(self):
        cpu, _ = run("""
        main:
            jal  lr, sub
            addi r2, r0, 9
            halt
        sub:
            addi r1, r0, 4
            jalr r0, lr, 0
        """)
        assert cpu.reg(1) == 4
        assert cpu.reg(2) == 9

    def test_nested_calls(self):
        cpu, _ = run("""
        main:
            jal  lr, outer
            halt
        outer:
            add  r13, lr, r0
            jal  lr, inner
            add  lr, r13, r0
            addi r2, r0, 20
            jalr r0, lr, 0
        inner:
            addi r1, r0, 10
            jalr r0, lr, 0
        """)
        assert cpu.reg(1) == 10
        assert cpu.reg(2) == 20

    def test_loop_with_btb_warmup(self):
        cpu, _ = run("""
        main:
            addi r1, r0, 0
            addi r2, r0, 0
            addi r3, r0, 200
        loop:
            addi r1, r1, 2
            addi r2, r2, 1
            bne  r2, r3, loop
            halt
        """)
        assert cpu.reg(1) == 400


class TestExceptions:
    def test_illegal_opcode_traps(self):
        cpu = make_cpu(PROLOGUE + "main:\n .word 0x7C000000\n halt")
        cpu.run(1000)
        assert cpu.halted
        assert cpu.cause == 1
        assert cpu.io_out == 1  # handler reports cause on port 7

    def test_misaligned_load_traps(self):
        cpu, _ = run("""
        main:
            addi r1, r0, 0x501
            ld   r2, 0(r1)
            halt
        """)
        assert cpu.cause == 2
        assert cpu.io_out == 2

    def test_misaligned_store_traps(self):
        cpu, _ = run("""
        main:
            addi r1, r0, 0x502
            st   r1, 0(r1)
            halt
        """)
        assert cpu.cause == 2

    def test_byte_access_never_misaligned(self):
        cpu, _ = run("""
        main:
            addi r1, r0, 0x503
            stb  r1, 0(r1)
            ldb  r2, 0(r1)
            halt
        """)
        assert cpu.cause == 0
        assert cpu.reg(2) == 0x03

    def test_epc_records_faulting_pc(self):
        cpu = make_cpu(PROLOGUE + "main:\n nop\n .word 0x7C000000\n halt")
        cpu.run(1000)
        symbols_main = 0x14  # prologue is 5 words
        assert cpu.epc == symbols_main + 4


class TestCsrAndIo:
    def test_cycle_counter_monotonic(self):
        cpu, _ = run("""
        main:
            csrr r1, 0
            nop
            nop
            csrr r2, 0
            halt
        """)
        assert cpu.reg(2) > cpu.reg(1)

    def test_scratch_roundtrip(self):
        cpu, _ = run("""
        main:
            addi r1, r0, 1234
            csrw r1, 2
            csrr r2, 2
            halt
        """)
        assert cpu.reg(2) == 1234

    def test_in_consumes_stream_in_order(self):
        cpu, _ = run("""
        main:
            in r1, 0
            in r2, 0
            in r3, 0
            halt
        """, stimulus=[11, 22, 33])
        assert (cpu.reg(1), cpu.reg(2), cpu.reg(3)) == (11, 22, 33)

    def test_in_wraps_stream(self):
        cpu, _ = run("main:\n in r1, 0\n in r2, 0\n in r3, 0\n halt", stimulus=[7, 8])
        assert cpu.reg(3) == 7

    def test_out_drives_port(self):
        cpu, _ = run("main:\n addi r1, r0, 55\n out r1, 0\n halt")
        assert cpu.io_out == 55
        assert cpu.io_out_v == 1

    def test_halt_freezes_state(self):
        cpu, _ = run("main:\n addi r1, r0, 1\n halt")
        snap = cpu.snapshot()
        for _ in range(10):
            cpu.step()
        assert cpu.snapshot() == snap


@given(a=st.integers(0, MASK32), b=st.integers(0, MASK32))
def test_alu_add_matches_python(a, b):
    res, carry, _ = _alu(1, a, b)
    assert res == (a + b) & MASK32
    assert carry == ((a + b) >> 32)


@given(a=st.integers(0, MASK32), b=st.integers(0, MASK32))
def test_alu_sub_matches_python(a, b):
    res, carry, _ = _alu(2, a, b)
    assert res == (a - b) & MASK32
    assert carry == (1 if a >= b else 0)


@given(a=st.integers(0, MASK32), b=st.integers(0, MASK32))
def test_branch_unsigned_consistency(a, b):
    assert _branch_taken(44, a, b) == (a < b)
    assert _branch_taken(45, a, b) == (a >= b)
    assert _branch_taken(40, a, b) == (a == b)


@given(a=st.integers(0, MASK32), shift=st.integers(0, 31))
def test_alu_shift_matches_python(a, shift):
    assert _alu(6, a, shift)[0] == (a << shift) & MASK32
    assert _alu(7, a, shift)[0] == a >> shift
