"""Tests for the configured-off safety/debug blocks (MPU, debug, IRQ,
performance counters) — the realistic low-liveness structures whose
faults rarely manifest."""

from repro.cpu.isa import (
    CAUSE_BKPT,
    CAUSE_IRQ,
    CAUSE_MPU,
    CAUSE_WATCH,
    CSR_CNT_BRANCH,
    CSR_CNT_MEM,
)
from tests.conftest import PROLOGUE, make_cpu


def run(source, max_cycles=2000):
    cpu = make_cpu(PROLOGUE + source)
    cpu.run(max_cycles)
    assert cpu.halted
    return cpu


class TestMpu:
    def test_disabled_mpu_allows_everything(self):
        cpu = run("""
        main:
            addi r1, r0, 9
            st   r1, 0x400(r0)
            ld   r2, 0x400(r0)
            halt
        """)
        assert cpu.cause == 0
        assert cpu.reg(2) == 9

    def test_deny_region_faults_on_load(self):
        cpu = run("""
        main:
            addi r1, r0, 0x100
            csrw r1, 14          ; mpu_base0
            addi r2, r0, 0x200
            csrw r2, 18          ; mpu_limit0
            addi r3, r0, 3       ; enable + deny
            csrw r3, 22
            ld   r4, 0x180(r0)
            halt
        """)
        assert cpu.cause == CAUSE_MPU

    def test_deny_region_faults_on_store(self):
        cpu = run("""
        main:
            addi r1, r0, 0x100
            csrw r1, 14
            addi r2, r0, 0x200
            csrw r2, 18
            addi r3, r0, 3
            csrw r3, 22
            st   r0, 0x1FC(r0)
            halt
        """)
        assert cpu.cause == CAUSE_MPU

    def test_access_outside_region_allowed(self):
        cpu = run("""
        main:
            addi r1, r0, 0x100
            csrw r1, 14
            addi r2, r0, 0x200
            csrw r2, 18
            addi r3, r0, 3
            csrw r3, 22
            addi r4, r0, 5
            st   r4, 0x240(r0)
            ld   r5, 0x240(r0)
            halt
        """)
        assert cpu.cause == 0
        assert cpu.reg(5) == 5

    def test_enabled_allow_region_is_transparent(self):
        cpu = run("""
        main:
            addi r1, r0, 0x100
            csrw r1, 14
            addi r2, r0, 0x200
            csrw r2, 18
            addi r3, r0, 1       ; enable only, no deny
            csrw r3, 22
            addi r4, r0, 6
            st   r4, 0x180(r0)
            ld   r5, 0x180(r0)
            halt
        """)
        assert cpu.cause == 0
        assert cpu.reg(5) == 6


class TestDebug:
    def test_breakpoint_fires_at_configured_pc(self):
        cpu = run("""
        main:
            addi r2, r0, target
            csrw r2, 8
            addi r3, r0, 1
            csrw r3, 11
            nop
        target:
            addi r5, r0, 99
            halt
        """)
        assert cpu.cause == CAUSE_BKPT
        assert cpu.reg(5) == 0  # breakpointed instruction never retires

    def test_second_breakpoint_register(self):
        cpu = run("""
        main:
            addi r2, r0, tgt
            csrw r2, 9           ; bkpt1
            addi r3, r0, 2       ; enable bkpt1
            csrw r3, 11
            nop
        tgt:
            addi r5, r0, 99
            halt
        """)
        assert cpu.cause == CAUSE_BKPT

    def test_watchpoint_fires_on_data_address(self):
        cpu = run("""
        main:
            addi r2, r0, 0x640
            csrw r2, 10          ; watch0
            addi r3, r0, 4       ; enable watchpoint
            csrw r3, 11
            st   r0, 0x640(r0)
            halt
        """)
        assert cpu.cause == CAUSE_WATCH

    def test_disabled_breakpoint_does_not_fire(self):
        cpu = run("""
        main:
            addi r2, r0, tgt
            csrw r2, 8
            nop
        tgt:
            addi r5, r0, 99
            halt
        """)
        assert cpu.cause == 0
        assert cpu.reg(5) == 99


class TestIrq:
    def test_pending_and_masked_interrupt_taken(self):
        cpu = run("""
        main:
            addi r1, r0, 0xFF
            csrw r1, 12
            addi r2, r0, 1
            csrw r2, 13
            addi r3, r0, 7
            halt
        """)
        assert cpu.cause == CAUSE_IRQ
        assert cpu.io_out == CAUSE_IRQ

    def test_unmasked_pending_ignored(self):
        cpu = run("""
        main:
            addi r2, r0, 1
            csrw r2, 13          ; pending, but mask is 0
            addi r3, r0, 7
            halt
        """)
        assert cpu.cause == 0
        assert cpu.reg(3) == 7

    def test_irq_masked_inside_handler(self):
        """The handler completes despite the still-pending interrupt."""
        cpu = run("""
        main:
            addi r1, r0, 0xFF
            csrw r1, 12
            csrw r1, 13
            halt
        """)
        assert cpu.halted
        assert cpu.io_out == CAUSE_IRQ


class TestPerfCounters:
    def test_counters_off_by_default(self):
        cpu = run("""
        main:
            addi r2, r0, 0
            addi r3, r0, 5
        loop:
            addi r2, r2, 1
            st   r2, 0x400(r0)
            bne  r2, r3, loop
            halt
        """)
        assert cpu.cnt_branch == 0
        assert cpu.cnt_mem == 0

    def test_counters_count_when_enabled(self):
        cpu = run(f"""
        main:
            addi r1, r0, 0x80
            csrw r1, 1           ; STATUS: counter enable
            addi r2, r0, 0
            addi r3, r0, 5
        loop:
            addi r2, r2, 1
            st   r2, 0x400(r0)
            bne  r2, r3, loop
            csrr r4, {CSR_CNT_BRANCH}
            csrr r5, {CSR_CNT_MEM}
            halt
        """)
        assert cpu.reg(4) == 5
        assert cpu.reg(5) == 5
