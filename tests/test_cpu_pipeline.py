"""Microarchitectural tests: pipeline, BTB, snapshots, determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import Cpu, InputStream, Memory, NUM_SCS, REGISTRY, assemble
from repro.cpu.units import REG_INDEX
from repro.lockstep.categories import expand_ports
from tests.conftest import PROLOGUE, SUM_LOOP, make_cpu


class TestSnapshot:
    def test_snapshot_covers_registry(self, sum_cpu):
        assert len(sum_cpu.snapshot()) == len(REGISTRY)

    def test_snapshot_restore_roundtrip(self, sum_cpu):
        sum_cpu.run(40)
        snap = sum_cpu.snapshot()
        other = make_cpu(SUM_LOOP)
        other.restore(snap)
        assert other.snapshot() == snap

    def test_restore_resumes_identically(self):
        a = make_cpu(SUM_LOOP)
        for _ in range(30):
            a.step()
        snap = a.snapshot()
        b = make_cpu(SUM_LOOP)
        b.mem.words[:] = a.mem.words
        b.restore(snap)
        for _ in range(50):
            assert a.step() == b.step()
        assert a.snapshot() == b.snapshot()

    def test_reset_reaches_identical_state(self):
        """Two freshly reset cores are bit-identical — the lockstep
        precondition the paper stresses in Section II."""
        a = make_cpu(SUM_LOOP)
        b = make_cpu(SUM_LOOP)
        assert a.snapshot() == b.snapshot()

    def test_reg_index_matches_snapshot_order(self, sum_cpu):
        sum_cpu.run(25)
        snap = sum_cpu.snapshot()
        assert snap[REG_INDEX["pc"]] == sum_cpu.pc
        assert snap[REG_INDEX["rf1"]] == sum_cpu.rf1
        assert snap[REG_INDEX["cyc"]] == sum_cpu.cyc


class TestDeterminism:
    def test_two_runs_produce_identical_output_traces(self):
        def trace():
            cpu = make_cpu(SUM_LOOP)
            return [cpu.step() for _ in range(150)]
        assert trace() == trace()

    def test_lockstep_cores_never_diverge(self):
        a = make_cpu(SUM_LOOP)
        b = make_cpu(SUM_LOOP)
        for _ in range(400):
            assert a.step() == b.step()


class TestOutputs:
    def test_output_tuple_width(self, sum_cpu):
        assert len(sum_cpu.outputs()) == NUM_SCS

    def test_outputs_change_with_execution(self, sum_cpu):
        first = sum_cpu.outputs()
        sum_cpu.run(10)
        assert sum_cpu.outputs() != first

    def test_step_returns_pre_step_outputs(self, sum_cpu):
        before_ports = sum_cpu.port_state()
        before_scs = sum_cpu.outputs()
        returned = sum_cpu.step()
        assert returned == before_ports
        assert expand_ports(returned) == before_scs


class TestBtb:
    def test_loop_speeds_up_after_btb_warmup(self):
        """A predicted taken branch saves the two redirect bubbles."""
        src = PROLOGUE + """
        main:
            addi r2, r0, 0
            addi r3, r0, 40
        loop:
            addi r2, r2, 1
            bne  r2, r3, loop
            halt
        """
        cpu = make_cpu(src)
        cycles_per_iter = []
        last_r2 = 0
        last_cycle = 0
        for cycle in range(2000):
            if cpu.halted:
                break
            cpu.step()
            if cpu.reg(2) != last_r2:
                cycles_per_iter.append(cycle - last_cycle)
                last_r2 = cpu.reg(2)
                last_cycle = cycle
        warm = cycles_per_iter[5:-1]
        cold = cycles_per_iter[1]
        assert warm and min(warm) < cold

    def test_btb_fills_on_taken_branch(self):
        cpu = make_cpu(PROLOGUE + """
        main:
            addi r2, r0, 0
            addi r3, r0, 10
        loop:
            addi r2, r2, 1
            bne  r2, r3, loop
            halt
        """)
        # Sample the BTB mid-loop: the final not-taken iteration correctly
        # invalidates the entry again, so check while the loop is hot.
        seen_valid = False
        for _ in range(200):
            if cpu.halted:
                break
            cpu.step()
            seen_valid = seen_valid or cpu.btb_v != 0
        assert seen_valid
        assert cpu.btb_v == 0  # invalidated by the loop-exit misprediction

    def test_wrong_btb_target_is_corrected(self):
        """Execution is architecturally correct even when the BTB aliases
        (a JALR returning to two different callers)."""
        cpu = make_cpu(PROLOGUE + """
        main:
            jal  lr, sub
            addi r2, r0, 1
            jal  lr, sub
            addi r3, r0, 1
            halt
        sub:
            addi r1, r1, 1
            jalr r0, lr, 0
        """)
        cpu.run(200)
        assert cpu.halted
        assert cpu.reg(1) == 2
        assert cpu.reg(2) == 1
        assert cpu.reg(3) == 1


class TestRetirePort:
    def test_retire_port_reports_writeback(self):
        cpu = make_cpu(PROLOGUE + "main:\n addi r5, r0, 123\n halt")
        seen = False
        for _ in range(30):
            cpu.step()
            if cpu.ret_valid and cpu.ret_rd == 5 and cpu.ret_val == 123:
                seen = True
            if cpu.halted:
                break
        assert seen


@settings(max_examples=30, deadline=None)
@given(words=st.lists(st.integers(0, 0xFFFFFFFF), min_size=4, max_size=60),
       cycles=st.integers(10, 300))
def test_random_code_lockstep_property(words, cycles):
    """Two identical cores stay in lockstep on *any* memory image —
    including illegal opcodes and wild control flow.  Determinism is
    the foundational property CPU-level lockstepping relies on."""
    def build():
        mem = Memory(1024)
        mem.words[: len(words)] = [w for w in words]
        return Cpu(mem, InputStream([3, 1, 4, 1, 5]))
    a, b = build(), build()
    for _ in range(cycles):
        assert a.step() == b.step()
    assert a.snapshot() == b.snapshot()


@settings(max_examples=30, deadline=None)
@given(split=st.integers(1, 120))
def test_snapshot_restore_any_cycle_property(split):
    """Restoring a mid-run snapshot reproduces the rest of the run."""
    a = make_cpu(SUM_LOOP)
    for _ in range(split):
        a.step()
    snap = a.snapshot()
    b = make_cpu(SUM_LOOP)
    b.mem.words[:] = a.mem.words
    b.restore(snap)
    for _ in range(40):
        assert a.step() == b.step()
