"""Cross-validation split tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import kfold, train_test_split


class TestKfold:
    def test_partition_covers_everything(self):
        items = list(range(23))
        seen = []
        for train, test in kfold(items, k=5, seed=0):
            seen.extend(test)
            assert sorted(train + test) == items
        assert sorted(seen) == items

    def test_no_leakage(self):
        items = list(range(40))
        for train, test in kfold(items, k=5, seed=1):
            assert not set(train) & set(test)

    def test_fold_sizes_balanced(self):
        sizes = [len(test) for _, test in kfold(list(range(23)), k=5, seed=0)]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic_with_seed(self):
        items = list(range(30))
        a = [test for _, test in kfold(items, k=5, seed=7)]
        b = [test for _, test in kfold(items, k=5, seed=7)]
        assert a == b

    def test_different_seed_shuffles(self):
        items = list(range(30))
        a = [test for _, test in kfold(items, k=5, seed=1)]
        b = [test for _, test in kfold(items, k=5, seed=2)]
        assert a != b

    def test_too_few_items_rejected(self):
        with pytest.raises(ValueError):
            list(kfold([1, 2], k=5))

    def test_k_below_two_rejected(self):
        with pytest.raises(ValueError):
            list(kfold([1, 2, 3], k=1))

    @given(n=st.integers(5, 60), k=st.integers(2, 5), seed=st.integers(0, 100))
    def test_partition_property(self, n, k, seed):
        items = list(range(n))
        tests = [test for _, test in kfold(items, k=k, seed=seed)]
        flat = sorted(x for fold in tests for x in fold)
        assert flat == items


class TestTrainTestSplit:
    def test_split_sizes(self):
        train, test = train_test_split(list(range(100)), test_fraction=0.2, seed=0)
        assert len(test) == 20
        assert len(train) == 80

    def test_disjoint(self):
        train, test = train_test_split(list(range(50)), seed=3)
        assert not set(train) & set(test)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            train_test_split([1, 2, 3], test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split([1, 2, 3], test_fraction=1.0)
