"""First-use auto-build of the compiled kernel: locking + atomicity.

The ``_cstep`` loader compiles its single translation unit with the
system cc on first import.  Campaign pool workers — and now shard
*threads* — can all hit that first use at once, so the build is
serialized with an ``fcntl`` lockfile and published with a
write-temp/rename.  These tests hammer that path: many concurrent
fresh imports against an empty cache must each end up with a working
module, exactly one published artifact, and (with the lock available)
exactly one actual compile.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.faults import _cstep

pytestmark = pytest.mark.skipif(
    _cstep.MODULE is None,
    reason=f"compiled kernel unavailable: {_cstep.BUILD_ERROR}")

_SRC = Path(__file__).resolve().parent.parent / "src"


def _import_probe(cache_dir: Path, extra_env: dict | None = None):
    """Import repro.faults._cstep in a fresh interpreter, empty module
    cache, and report whether the module loaded."""
    env = dict(os.environ)
    env["REPRO_CSTEP_CACHE"] = str(cache_dir)
    env["PYTHONPATH"] = f"{_SRC}{os.pathsep}" + env.get("PYTHONPATH", "")
    env.pop("REPRO_CSTEP_BUILD", None)
    env.update(extra_env or {})
    return subprocess.Popen(
        [sys.executable, "-c",
         "import repro.faults._cstep as m; "
         "import sys; sys.exit(0 if m.MODULE is not None else 3)"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def test_concurrent_first_use_builds(tmp_path):
    """N processes racing the first-use build all load the module and
    leave exactly one published artifact in the cache."""
    cache = tmp_path / "cstep_cache"
    procs = [_import_probe(cache) for _ in range(4)]
    for proc in procs:
        _out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, err.decode()
    artifacts = [p for p in cache.iterdir()
                 if p.suffix == ".so" and not p.name.startswith(".")]
    assert len(artifacts) == 1
    # No orphaned write-temps survive the publish.
    assert not [p for p in cache.iterdir() if p.name.endswith(".tmp")]


def test_build_lock_serializes_threads(tmp_path):
    """The flock context admits one holder at a time across threads."""
    target = tmp_path / "artifact.so"
    active = []
    overlaps = []
    lock = threading.Lock()

    def contender():
        with _cstep._build_lock(target):
            with lock:
                overlaps.append(len(active))
                active.append(1)
            # Widen the race window so a broken lock would overlap.
            threading.Event().wait(0.02)
            with lock:
                active.pop()

    threads = [threading.Thread(target=contender) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert overlaps == [0] * 6  # nobody ever saw another holder inside
    assert (tmp_path / "artifact.so.lock").exists()


def test_losing_builder_skips_compile(tmp_path):
    """A process that finds the artifact already published under the
    lock must not compile again (the double-check inside _build)."""
    cache = tmp_path / "cache"
    # First: a real build to populate the cache.
    proc = _import_probe(cache)
    _out, err = proc.communicate(timeout=300)
    assert proc.returncode == 0, err.decode()
    artifact = next(p for p in cache.iterdir() if p.suffix == ".so")
    stamp = artifact.stat().st_mtime_ns
    # Second import with a broken CC: it must *load*, never compile.
    proc = _import_probe(cache, extra_env={"CC": "/nonexistent-cc"})
    _out, err = proc.communicate(timeout=300)
    assert proc.returncode == 0, err.decode()
    assert artifact.stat().st_mtime_ns == stamp
