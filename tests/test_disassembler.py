"""Disassembler tests, including the reassembly round-trip oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.assembler import assemble
from repro.cpu.disassembler import disassemble, disassemble_word, format_instruction
from repro.cpu.isa import ALU_RI_OPS, ALU_RR_OPS, BRANCH_OPS, Instruction, Op, is_legal
from repro.verify.progen import program_strategy
from repro.workloads import KERNELS


class TestFormatting:
    @pytest.mark.parametrize("source,expected", [
        ("add r1, r2, r3", "add r1, r2, r3"),
        ("addi r1, r2, -5", "addi r1, r2, -5"),
        ("lui r4, 0x12", "lui r4, 0x12"),
        ("ld r1, 8(r2)", "ld r1, 8(r2)"),
        ("st r3, -4(r5)", "st r3, -4(r5)"),
        ("beq r1, r2, 3", "beq r1, r2, 3"),
        ("jal r15, 2", "jal r15, 2"),
        ("jalr r0, r15, 0", "jalr r0, r15, 0"),
        ("in r1, 3", "in r1, 3"),
        ("out r2, 5", "out r2, 5"),
        ("csrr r1, 0", "csrr r1, 0"),
        ("csrw r2, 2", "csrw r2, 2"),
        ("nop", "nop"),
        ("halt", "halt"),
    ])
    def test_roundtrip_text(self, source, expected):
        word = assemble(source).words[0]
        assert disassemble_word(word) == expected

    def test_illegal_word_rendered_as_data(self):
        assert disassemble_word(0x7C000000) == ".word 0x7c000000"

    def test_listing_has_addresses(self):
        text = disassemble([0, 0xFC000000], base_addr=0x10)
        lines = text.splitlines()
        assert lines[0].startswith("0x0010:")
        assert lines[1].startswith("0x0014:")
        assert "halt" in lines[1]


class TestReassemblyOracle:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_roundtrips(self, name):
        """disassemble(assemble(kernel)) reassembles to identical words."""
        original = assemble(KERNELS[name].source).words
        listing = [disassemble_word(w) for w in original]
        reassembled = assemble("\n".join(listing)).words
        assert reassembled == original


@given(st.sampled_from(sorted(ALU_RR_OPS | ALU_RI_OPS | BRANCH_OPS)),
       st.integers(0, 15), st.integers(0, 15), st.integers(0, 15),
       st.integers(-100, 100))
def test_format_reassembles_property(op, rd, ra, rb, imm):
    """Canonical instructions survive format -> assemble bit-exactly."""
    if op in ALU_RR_OPS:
        instr = Instruction(op, rd=rd, ra=ra, rb=rb)
    elif op in ALU_RI_OPS:
        instr = Instruction(op, rd=rd, ra=ra, imm=imm)
    else:
        instr = Instruction(op, ra=ra, rb=rb, imm=imm)
    word = instr.encode()
    line = format_instruction(instr)
    assert assemble(line).words[0] == word
    assert disassemble_word(word) == line


@given(st.integers(0, 0xFFFFFFFF))
def test_any_word_disassembles_property(word):
    text = disassemble_word(word)
    assert text
    if not is_legal(word):
        assert text.startswith(".word")


@given(program_strategy(min_blocks=2, max_blocks=5))
@settings(deadline=None)
def test_fuzz_programs_roundtrip_through_disassembler(prog):
    """disassemble(assemble(p)) reassembles bit-identically over the
    whole generated-program distribution.

    The fuzzer trusts assemble() as its ground truth; this closes the
    loop by checking the binary round-trips through the disassembler
    for every program shape the generator can emit (labels resolved,
    ``.org`` padding preserved as encoded words).
    """
    original = assemble(prog.source()).words
    listing = [disassemble_word(w) for w in original]
    reassembled = assemble("\n".join(listing)).words
    assert reassembled == original
