"""Dynamic lockstep: mode schedules, gated comparison, shadow replay.

The load-bearing assertions: a :class:`ModeSchedule` is a gapless
window cover whose beyond-horizon default is the *safe* mode (locked),
on-demand check windows carve split spans without moving any locked
cycle, the 100%-duty dynamic session is record-identical to classic
always-locked DMR (Hypothesis property over seeds), and — by replaying
the faulty core raw — every dynamic detection happens at exactly the
first *locked* cycle with divergent ports while masked/escaped faults
never showed divergence on a compared cycle (escapes only ever slip
through split windows).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import Cpu, InputStream, Memory, assemble
from repro.cpu.assembler import assemble as _assemble
from repro.faults.injector import FaultDriver
from repro.lockstep.dynamic import (
    CHECK,
    LOCKED,
    SPLIT,
    DynamicDmrLockstep,
    ModeSchedule,
    ModeWindow,
    sample_schedule,
)
from repro.verify.faultfuzz import (
    FUZZ_MEM_WORDS,
    run_faultfuzz,
    sample_faults,
    sample_mode_schedule,
)
from repro.verify.progen import generate_program
from tests.conftest import SUM_LOOP

DYN = dict(programs=10, seed=0, faults_per_program=3,
           lockstep_mode="dynamic", duty=0.4)


@pytest.fixture(scope="module")
def dyn_session():
    return run_faultfuzz(**DYN)


# ---------------------------------------------------------------------------
# ModeSchedule mechanics.
# ---------------------------------------------------------------------------

class TestModeSchedule:
    def test_rejects_gaps_and_overlaps(self):
        with pytest.raises(ValueError):
            ModeSchedule([ModeWindow(0, 10, LOCKED), ModeWindow(12, 5, SPLIT)])
        with pytest.raises(ValueError):
            ModeSchedule([ModeWindow(0, 10, LOCKED), ModeWindow(8, 5, SPLIT)])

    def test_window_lookup(self):
        s = ModeSchedule([ModeWindow(0, 10, LOCKED), ModeWindow(10, 20, SPLIT),
                          ModeWindow(30, 5, CHECK)])
        assert s.horizon == 35
        assert s.window_at(0).kind == LOCKED
        assert s.window_at(9).kind == LOCKED
        assert s.window_at(10).kind == SPLIT
        assert s.window_at(31).kind == CHECK
        assert s.window_at(35) is None

    def test_beyond_horizon_is_locked(self):
        # A core running past its schedule falls back to the safe mode.
        s = ModeSchedule([ModeWindow(0, 10, SPLIT)])
        assert not s.locked_at(5)
        assert s.locked_at(10)
        assert s.locked_at(10_000)
        assert s.next_locked(3) == 10

    def test_next_locked_skips_split_spans(self):
        s = ModeSchedule([ModeWindow(0, 4, LOCKED), ModeWindow(4, 6, SPLIT),
                          ModeWindow(10, 4, LOCKED)])
        assert s.next_locked(2) == 2
        assert s.next_locked(5) == 10
        assert s.next_locked(12) == 12

    def test_check_windows_count_as_locked(self):
        s = ModeSchedule([ModeWindow(0, 4, SPLIT), ModeWindow(4, 2, CHECK),
                          ModeWindow(6, 4, SPLIT)])
        assert s.locked_at(4) and s.locked_at(5)
        assert s.locked_cycles() == 2
        assert s.duty == pytest.approx(0.2)

    def test_with_check_carves_a_split_window(self):
        s = ModeSchedule([ModeWindow(0, 10, LOCKED), ModeWindow(10, 30, SPLIT)])
        carved = s.with_check(18, 4)
        assert [w.kind for w in carved.windows] \
            == [LOCKED, SPLIT, CHECK, SPLIT]
        assert carved.locked_at(18) and carved.locked_at(21)
        assert not carved.locked_at(17) and not carved.locked_at(22)
        # Every previously locked cycle stays locked.
        assert all(carved.locked_at(t) for t in range(10))
        assert carved.horizon == s.horizon

    def test_with_check_beyond_horizon_is_noop(self):
        s = ModeSchedule([ModeWindow(0, 10, SPLIT)])
        assert s.with_check(10, 4) is s
        assert s.with_check(5, 0) is s

    def test_always_locked_degenerate(self):
        s = ModeSchedule.always_locked()
        assert s.horizon == 0
        assert s.duty == 1.0
        assert s.locked_at(0) and s.locked_at(999)


# ---------------------------------------------------------------------------
# Seeded schedule sampling.
# ---------------------------------------------------------------------------

class TestSampleSchedule:
    @given(seed=st.integers(0, 2**32 - 1), n_cycles=st.integers(1, 600),
           duty=st.floats(0.05, 0.95))
    def test_structure_property(self, seed, n_cycles, duty):
        s = sample_schedule(np.random.default_rng(seed), n_cycles, duty)
        assert s.horizon == n_cycles
        assert s.windows[0].kind == LOCKED
        assert {w.kind for w in s.windows} <= {LOCKED, SPLIT, CHECK}
        # Contiguity is enforced by the constructor; duty is honest.
        assert 0.0 < s.duty <= 1.0

    def test_full_duty_degenerates_to_always_locked(self):
        s = sample_schedule(np.random.default_rng(0), 500, 1.0)
        assert s.horizon == 0 and s.duty == 1.0

    def test_rejects_bad_duty(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_schedule(rng, 100, 0.0)
        with pytest.raises(ValueError):
            sample_schedule(rng, 100, 1.5)

    def test_keyed_sampling_is_deterministic(self):
        a = sample_mode_schedule(3, 7, 400, 0.5)
        b = sample_mode_schedule(3, 7, 400, 0.5)
        assert [(w.start, w.length, w.kind) for w in a.windows] \
            == [(w.start, w.length, w.kind) for w in b.windows]
        c = sample_mode_schedule(3, 8, 400, 0.5)
        assert [(w.start, w.length, w.kind) for w in a.windows] \
            != [(w.start, w.length, w.kind) for w in c.windows]


# ---------------------------------------------------------------------------
# DynamicDmrLockstep wrapper.
# ---------------------------------------------------------------------------

class TestDynamicDmr:
    def test_split_window_defers_detection(self):
        program = _assemble(SUM_LOOP)
        schedule = ModeSchedule([ModeWindow(0, 10, LOCKED),
                                 ModeWindow(10, 40, SPLIT),
                                 ModeWindow(50, 150, LOCKED)])
        dmr = DynamicDmrLockstep(program, schedule, InputStream([0]))
        for _ in range(15):
            dmr.step()
        dmr.core_b.pc ^= 4     # upset inside the split window
        state = dmr.run(2000)
        assert state.error
        # Divergence started around cycle 15 but the comparator was
        # off: detection must wait for the next locked span.
        assert state.error_cycle >= 50
        assert schedule.locked_at(state.error_cycle)

    def test_on_demand_check_window_detects_earlier(self):
        program = _assemble(SUM_LOOP)
        base = ModeSchedule([ModeWindow(0, 10, LOCKED),
                             ModeWindow(10, 40, SPLIT),
                             ModeWindow(50, 150, LOCKED)])
        late, early = [], []
        for schedule, sink in ((base, late), (base.with_check(20, 8), early)):
            dmr = DynamicDmrLockstep(program, schedule, InputStream([0]))
            for _ in range(15):
                dmr.step()
            dmr.core_b.pc ^= 4
            state = dmr.run(2000)
            assert state.error
            assert schedule.locked_at(state.error_cycle)
            sink.append(state.error_cycle)
        assert early[0] <= late[0]

    def test_always_locked_matches_plain_dmr(self):
        from repro.lockstep import DmrLockstep

        program = _assemble(SUM_LOOP)
        dyn = DynamicDmrLockstep(program, ModeSchedule.always_locked(),
                                 InputStream([0]))
        plain = DmrLockstep(program, InputStream([0]))
        for _ in range(15):
            dyn.step(), plain.step()
        dyn.core_b.pc ^= 4
        plain.core_b.pc ^= 4
        a, b = dyn.run(2000), plain.run(2000)
        assert (a.error, a.error_cycle, a.diverged) \
            == (b.error, b.error_cycle, b.diverged)


# ---------------------------------------------------------------------------
# Fault-fuzz scenario axis.
# ---------------------------------------------------------------------------

def test_dynamic_digest_identical_for_any_worker_count(dyn_session):
    sharded = run_faultfuzz(**DYN, workers=2)
    assert sharded.digest() == dyn_session.digest()


def test_realised_duty_is_recorded(dyn_session):
    assert dyn_session.mode_duty, "dynamic session must record duties"
    assert all(0.0 < d <= 1.0 for d in dyn_session.mode_duty.values())
    assert dyn_session.meta["lockstep_mode"] == "dynamic"
    assert "dynamic duty=0.40" in dyn_session.report()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_full_duty_dynamic_is_record_identical_to_locked(seed):
    """The tested invariant behind ``duty=1.0``: switching the scenario
    axis on without lowering the duty must not move a single field of a
    single outcome."""
    base = dict(programs=2, seed=seed, faults_per_program=2)
    locked = run_faultfuzz(**base)
    dynamic = run_faultfuzz(**base, lockstep_mode="dynamic", duty=1.0)
    assert locked.outcomes == dynamic.outcomes
    assert locked.digest() == dynamic.digest()


def _replay_divergence(seed: int, program_index: int):
    """Re-run each fault of a program raw (no checker, no windows) and
    return ``{fault_index: [cycles where faulty ports != golden]}``,
    mirroring run_one_fault's loop bounds exactly."""
    from repro.verify.faultfuzz import _golden_run

    prog = generate_program(f"{seed}:{program_index}")
    program = _assemble(prog.source())
    g_ports, g_frozen, _, cycles = _golden_run(program, prog.stimulus, 30_000)
    n_g = len(g_ports)
    budget = n_g + max(n_g // 2, 256)
    out: dict[int, list[int]] = {}
    faults = sample_faults(seed, program_index, cycles,
                           DYN["faults_per_program"])
    for j, fault in enumerate(faults):
        cpu = Cpu(Memory.from_program(program, size_words=FUZZ_MEM_WORDS),
                  InputStream(prog.stimulus), entry=program.entry)
        driver = FaultDriver(fault)
        diverged = []
        t = 0
        while t < budget:
            driver.before_step(cpu, t)
            ports = cpu.step()
            if ports != (g_ports[t] if t < n_g else g_frozen):
                diverged.append(t)
            t += 1
            if cpu.halted and t >= n_g:
                break
        out[j] = diverged
    return out


def test_detection_lands_on_first_divergent_locked_cycle(dyn_session):
    """Replay ground truth: a dynamic detection fires at exactly the
    first locked cycle whose raw ports diverge, and the recorded
    first_divergence is the true first raw divergence."""
    by_program: dict[int, list] = {}
    for o in dyn_session.outcomes:
        by_program.setdefault(o.program, []).append(o)
    checked = 0
    for i, outcomes in by_program.items():
        replay = _replay_divergence(DYN["seed"], i)
        schedule = sample_mode_schedule(DYN["seed"], i,
                                        dyn_session.golden_cycles[i],
                                        DYN["duty"])
        for j, o in enumerate(outcomes):
            diverged = replay[j]
            if o.classification == "detected":
                assert o.first_divergence == diverged[0]
                expected = next(t for t in diverged if schedule.locked_at(t))
                assert o.detect_cycle == expected
                assert o.window_delay == expected - diverged[0] >= 0
                checked += 1
            else:
                # Escapes/masking under dynamic lockstep only happen
                # when no divergent cycle was ever compared.
                assert not any(schedule.locked_at(t) for t in diverged)
    assert checked, "session produced no dynamic detections to check"


def test_divergence_masked_by_split_window_is_redetected(dyn_session):
    """At least one detection must have been deferred by a split
    window (delay > 0) — otherwise the scenario axis isn't exercising
    the masked-window path at duty 0.4 — and the delay distribution is
    exposed by the report."""
    delays = dyn_session.window_delays()
    assert delays and max(delays) > 0
    assert "masked-window delay:" in dyn_session.report()
