"""End-to-end evaluation orchestration tests on real mini-campaigns."""

import pytest

from repro.analysis import MODEL_NAMES, evaluate_campaign, split_errors_by_benchmark, topk_sweep


@pytest.fixture(scope="module")
def evaluation(medium_campaign):
    return evaluate_campaign(medium_campaign, seed=0)


class TestEvaluationStructure:
    def test_all_five_models_present(self, evaluation):
        assert set(MODEL_NAMES) <= set(evaluation.strategies)

    def test_every_error_evaluated_once(self, medium_campaign, evaluation):
        for result in evaluation.strategies.values():
            assert result.n_errors == medium_campaign.n_errors

    def test_accuracies_bounded(self, evaluation):
        assert 0.0 <= evaluation.location_accuracy <= 1.0
        for value in evaluation.type_accuracy.values():
            assert 0.0 <= value <= 1.0

    def test_table_size_positive(self, evaluation):
        assert evaluation.table_bytes > 0
        assert evaluation.n_diverged_sets > 10


class TestPaperShape:
    """The qualitative results of Figure 11 must hold on any healthy
    campaign: the predictor models beat every baseline."""

    def test_pred_comb_is_best(self, evaluation):
        best = min(evaluation.strategies.values(), key=lambda s: s.mean_lert)
        assert best.name == "pred-comb"

    def test_pred_location_only_beats_baselines(self, evaluation):
        pred = evaluation.strategies["pred-location-only"].mean_lert
        for base in ("base-random", "base-ascending", "base-manifest"):
            assert pred < evaluation.strategies[base].mean_lert

    def test_pred_comb_tests_fewest_units(self, evaluation):
        tested = {name: s.mean_tested_units
                  for name, s in evaluation.strategies.items()}
        assert tested["pred-comb"] == min(tested.values())

    def test_pred_comb_skips_some_sbist(self, evaluation):
        assert evaluation.strategies["pred-comb"].sbist_invocation_rate < 1.0
        for base in ("base-random", "base-ascending", "base-manifest"):
            assert evaluation.strategies[base].sbist_invocation_rate == 1.0
        assert evaluation.sbist_reduction > 0.0

    def test_type_prediction_beats_chance(self, evaluation):
        assert evaluation.type_accuracy["overall"] > 0.5

    def test_full_order_location_accuracy_is_one(self, evaluation):
        assert evaluation.location_accuracy == 1.0


class TestPlacement:
    def test_off_chip_overhead_negligible(self, medium_campaign):
        """Section V-B: moving the table off-chip costs ~0.05% LERT."""
        on = evaluate_campaign(medium_campaign, seed=0)
        off = evaluate_campaign(medium_campaign, seed=0, off_chip=True)
        for model in ("pred-location-only", "pred-comb"):
            a = on.strategies[model].mean_lert
            b = off.strategies[model].mean_lert
            assert b >= a
            assert (b - a) / a < 0.005


class TestTopKSweep:
    @pytest.fixture(scope="class")
    def sweep(self, medium_campaign):
        return topk_sweep(medium_campaign, ks=[1, 3, 5, 7], seed=0)

    def test_accuracy_monotone_in_k(self, sweep):
        accs = [sweep[k].location_accuracy for k in sorted(sweep)]
        assert all(b >= a - 1e-9 for a, b in zip(accs, accs[1:]))

    def test_full_k_reaches_one(self, sweep):
        assert sweep[7].location_accuracy == 1.0

    def test_lert_improves_with_k(self, sweep):
        """More predicted units can only help until saturation."""
        lerts = [sweep[k].strategies["pred-comb"].mean_lert for k in sorted(sweep)]
        assert lerts[-1] <= lerts[0]


class TestFineTaxonomy:
    def test_fine_evaluation_runs(self, medium_campaign):
        ev = evaluate_campaign(medium_campaign, fine=True, seed=0)
        assert ev.strategies["pred-comb"].mean_lert > 0
        best = min(ev.strategies.values(), key=lambda s: s.mean_lert)
        assert best.name == "pred-comb"

    def test_fine_beats_coarse_for_prediction_models(self, medium_campaign):
        """Section V-D: finer granularity improves prediction-model LERT
        (shorter sub-STLs localise the fault more cheaply)."""
        coarse = evaluate_campaign(medium_campaign, seed=0)
        fine = evaluate_campaign(medium_campaign, fine=True, seed=0)
        assert (fine.strategies["pred-comb"].mean_lert
                < coarse.strategies["pred-comb"].mean_lert)


class TestCoverageAblation:
    def test_reduced_coverage_increases_lert(self, medium_campaign):
        """With <100% STL coverage some hard faults escape diagnosis,
        forcing restarts — LERT can only get worse."""
        full = evaluate_campaign(medium_campaign, seed=0)
        partial = evaluate_campaign(medium_campaign, seed=0, coverage=0.6)
        assert (partial.strategies["base-ascending"].mean_lert
                >= full.strategies["base-ascending"].mean_lert)


def test_split_errors_by_benchmark(medium_campaign):
    grouped = split_errors_by_benchmark(medium_campaign.records)
    assert set(grouped) <= set(medium_campaign.config.benchmarks)
    assert sum(len(v) for v in grouped.values()) == medium_campaign.n_errors
