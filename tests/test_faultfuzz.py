"""Fuzz under fault injection: driver semantics, determinism, classes.

The load-bearing assertions: the per-cycle fault driver matches the
campaign injector's fault semantics, a session digest is bit-identical
for any worker count, every classification is reachable and means what
it says (a detected fault has a latency and a diverged-SC set, a
masked fault's final state equals the reference, an escape's does
not), and the checker on the detection path is the *real* mutable one.
"""

from __future__ import annotations

import pytest

import repro.lockstep.checker as checker_mod
from repro.cpu import Cpu, InputStream, Memory, assemble
from repro.cpu.units import FINE_UNITS, FlopRef
from repro.faults.injector import FaultDriver, flip_bit, force_bit
from repro.faults.models import Fault, FaultKind
from repro.verify.faultfuzz import run_faultfuzz, sample_faults

SMALL = dict(programs=15, seed=0, faults_per_program=3)


@pytest.fixture(scope="module")
def small_session():
    return run_faultfuzz(**SMALL)


# ---------------------------------------------------------------------------
# Single-fault perturbation primitives.
# ---------------------------------------------------------------------------

def _fresh_cpu() -> Cpu:
    program = assemble("_start:\n    nop\n    nop\n    halt\n")
    return Cpu(Memory.from_program(program, size_words=64), InputStream([0]))


def test_flip_and_force_bit():
    cpu = _fresh_cpu()
    cpu.__dict__["rf5"] = 0b1010
    flip_bit(cpu, "rf5", 0)
    assert cpu.rf5 == 0b1011
    flip_bit(cpu, "rf5", 0)
    assert cpu.rf5 == 0b1010
    force_bit(cpu, "rf5", 3, 0)
    assert cpu.rf5 == 0b0010
    force_bit(cpu, "rf5", 6, 1)
    assert cpu.rf5 == 0b1000010


def test_fault_driver_soft_fires_once():
    flop = FlopRef("rf5", 2)
    driver = FaultDriver(Fault(flop, FaultKind.SOFT, cycle=3))
    cpu = _fresh_cpu()
    cpu.__dict__["rf5"] = 0
    for cycle in range(6):
        driver.before_step(cpu, cycle)
        # No step: isolate the driver's writes.
    # Exactly one flip, at cycle 3; later cycles must not re-flip.
    assert cpu.rf5 == 0b100


def test_fault_driver_stuck_holds_every_cycle():
    flop = FlopRef("rf5", 1)
    driver = FaultDriver(Fault(flop, FaultKind.STUCK0, cycle=2))
    cpu = _fresh_cpu()
    for cycle in range(5):
        cpu.__dict__["rf5"] = 0xF     # the core rewrites the flop...
        driver.before_step(cpu, cycle)
        if cycle >= 2:                    # ...the defect forces it back
            assert cpu.rf5 == 0xD
        else:
            assert cpu.rf5 == 0xF


# ---------------------------------------------------------------------------
# Schedule sampling.
# ---------------------------------------------------------------------------

def test_sample_faults_is_keyed_not_sequential():
    a = sample_faults(7, 3, 1000, 5)
    b = sample_faults(7, 3, 1000, 5)
    assert a == b
    assert sample_faults(7, 4, 1000, 5) != a
    assert sample_faults(8, 3, 1000, 5) != a


def test_sample_faults_stratifies_units():
    faults = sample_faults(0, 0, 500, len(FINE_UNITS))
    # One round of the round-robin touches every fine unit exactly once.
    units = {f.flop.unit for f in faults}
    assert units == set(FINE_UNITS)
    assert all(0 <= f.cycle < 500 for f in faults)


# ---------------------------------------------------------------------------
# Session-level behaviour.
# ---------------------------------------------------------------------------

def test_session_classifies_every_fault(small_session):
    r = small_session
    assert r.n_faults == 3 * (r.programs - len(r.ref_mismatches))
    kinds = {"detected", "masked", "escape", "hung"}
    assert {o.classification for o in r.outcomes} <= kinds
    total = sum(r.count(k) for k in kinds)
    assert total == r.n_faults
    # A healthy pipeline: no fault-free program mismatches the ISA model.
    assert r.ref_mismatches == []


def test_detected_faults_carry_latency_and_dsr(small_session):
    detected = [o for o in small_session.outcomes
                if o.classification == "detected"]
    assert detected, "session too small to detect anything?"
    for o in detected:
        assert o.detect_cycle is not None
        assert o.latency is not None and o.latency >= 0
        assert o.diverged, "detection must freeze a non-empty DSR"
    summary = small_session.latency_summary()
    assert summary, "no latency distribution recorded"
    for stats in summary.values():
        assert stats["p50"] <= stats["p95"] <= stats["max"]


def test_masked_and_escape_semantics(small_session):
    for o in small_session.outcomes:
        if o.classification == "masked":
            assert o.escape_detail == ""
            assert o.detect_cycle is None
        elif o.classification == "escape":
            assert o.escape_detail, "an escape names the corrupted state"
            assert o.detect_cycle is None


def test_report_renders(small_session):
    text = small_session.report()
    assert "escape rate" in text
    assert "digest:" in text


def test_digest_deterministic_across_runs_and_workers(small_session):
    again = run_faultfuzz(**SMALL)
    assert again.digest() == small_session.digest()
    sharded = run_faultfuzz(**SMALL, workers=2)
    assert sharded.digest() == small_session.digest()
    # And the merge preserved global program order.
    order = [o.program for o in sharded.outcomes]
    assert order == sorted(order)


def test_digest_covers_outcome_fields(small_session):
    import dataclasses

    from repro.verify.faultfuzz import FaultFuzzReport

    outcomes = list(small_session.outcomes)
    flipped = dataclasses.replace(outcomes[0],
                                  inject_cycle=outcomes[0].inject_cycle + 1)
    other = FaultFuzzReport(
        programs=small_session.programs, seed=small_session.seed,
        outcomes=[flipped] + outcomes[1:],
        golden_cycles=small_session.golden_cycles)
    assert other.digest() != small_session.digest()


# ---------------------------------------------------------------------------
# The detection path runs the real (mutable) checker.
# ---------------------------------------------------------------------------

def test_faultfuzz_goes_through_checker_hook(monkeypatch):
    """A blinded ``port_equal`` must change outcomes — proving the
    session's comparisons flow through the mutable checker hook rather
    than a private tuple compare."""
    baseline = run_faultfuzz(programs=8, seed=1, faults_per_program=3)
    monkeypatch.setattr(checker_mod, "port_equal", lambda a, b: True)
    blinded = run_faultfuzz(programs=8, seed=1, faults_per_program=3)
    assert blinded.count("detected") == 0
    assert baseline.count("detected") > 0
    assert blinded.digest() != baseline.digest()
