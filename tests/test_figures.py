"""ASCII figure renderer tests."""

import pytest

from repro.analysis import evaluate_campaign, topk_sweep
from repro.analysis.figures import (
    figure11_chart,
    hbar_chart,
    line_chart,
    signature_histogram,
    topk_chart,
)
from repro.faults.models import ErrorType


class TestHbar:
    def test_bars_scale_to_peak(self):
        text = hbar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_values_printed(self):
        text = hbar_chart([("model", 12345.0)])
        assert "12,345" in text

    def test_empty(self):
        assert hbar_chart([]) == "(no data)"

    def test_zero_values_no_crash(self):
        text = hbar_chart([("a", 0.0), ("b", 0.0)])
        assert "a" in text and "b" in text


class TestLineChart:
    def test_marks_every_point(self):
        text = line_chart([1, 2, 3, 4], [1.0, 2.0, 3.0, 4.0], height=4)
        assert text.count("*") == 4

    def test_monotone_series_renders_diagonal(self):
        text = line_chart([1, 2, 3], [1.0, 2.0, 3.0], height=3)
        rows = [line for line in text.splitlines() if line.startswith("  |")]
        assert rows[0][3 + 2] == "*"   # max at the right
        assert rows[-1][3 + 0] == "*"  # min at the left

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            line_chart([1], [1.0, 2.0])

    def test_flat_series_no_crash(self):
        assert "*" in line_chart([1, 2], [5.0, 5.0])


class TestPaperCharts:
    def test_figure11_chart(self, medium_campaign):
        ev = evaluate_campaign(medium_campaign, seed=0)
        text = figure11_chart(ev)
        assert "Fig 11" in text
        for model in ("base-random", "pred-comb"):
            assert model in text

    def test_topk_chart(self, medium_campaign):
        sweep = topk_sweep(medium_campaign, ks=[1, 4, 7], seed=0)
        text = topk_chart(sweep)
        assert "Figs 12/13" in text
        assert "location accuracy %" in text
        assert "avg LERT" in text

    def test_signature_histogram(self, medium_campaign):
        text = signature_histogram(medium_campaign.records, "DPU",
                                   ErrorType.HARD)
        assert "P(diverged SC set | hard fault in DPU)" in text
        assert "█" in text
