"""Differential fuzzer: generator, co-simulation, shrinking, coverage.

The shrinker test is the interesting one: it plants a bug in the
*reference model* (an off-by-one in XOR) so the pipeline-vs-reference
comparison genuinely fails, then checks delta debugging reduces the
mismatching program to a handful of instructions — the same workflow a
real pipeline bug would go through, without needing one.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

import repro.verify.refmodel as rm
from repro.cpu.isa import Op
from repro.verify import (
    REQUIRED_EVENT_BINS,
    Coverage,
    cosim,
    generate_program,
    program_strategy,
    run_fuzz,
    shrink,
)


# ---------------------------------------------------------------------------
# Property: every generated program terminates and matches the reference.
# ---------------------------------------------------------------------------

@given(program_strategy())
@settings(deadline=None)
def test_any_generated_program_cosimulates_clean(prog):
    result = cosim(prog)
    assert not result.hung_both, "generated program failed to terminate"
    assert result.ok, result.mismatches


def test_generation_is_deterministic():
    a = generate_program("det:7")
    b = generate_program("det:7")
    assert a.source() == b.source()
    assert a.stimulus == b.stimulus
    assert a.source() != generate_program("det:8").source()


def test_programs_are_assemblable_and_bounded():
    from repro.cpu import assemble

    for i in range(20):
        prog = generate_program(f"asm:{i}")
        program = assemble(prog.source())
        assert program.entry == 0
        assert prog.instruction_count() > 0


# ---------------------------------------------------------------------------
# Batch fuzz session + coverage accounting.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fuzz_report():
    # Module-scoped: one 60-program session feeds several assertions.
    return run_fuzz(programs=60, seed=0, artifacts_dir=None)


def test_fuzz_session_clean(fuzz_report):
    assert fuzz_report.ok, fuzz_report.failures
    assert fuzz_report.programs == 60
    assert fuzz_report.hung_both == 0


def test_fuzz_session_opcode_coverage(fuzz_report):
    covered, missing, frac = fuzz_report.coverage.opcode_coverage()
    # 60 programs already exercise nearly the full ISA; CI's 200-program
    # smoke run asserts the full 100%.
    assert frac >= 0.9, f"missing opcodes: {sorted(op.name for op in missing)}"


def test_fuzz_session_event_bins(fuzz_report):
    bins = fuzz_report.coverage.event_bins()
    assert set(bins) == set(REQUIRED_EVENT_BINS)
    for name in ("flush", "stall", "sb_drain", "btb_hit", "btb_miss",
                 "branch_taken", "branch_not_taken"):
        assert bins[name] > 0, f"event bin {name!r} never observed"


def test_fuzz_session_toggle_coverage(fuzz_report):
    toggles = fuzz_report.coverage.toggle_by_unit()
    assert toggles
    total_t = sum(t for t, _ in toggles.values())
    total_n = sum(n for _, n in toggles.values())
    # Close to half the state space toggles even in a short session
    # (memories and wide CSR banks keep the ceiling well below 100%).
    assert total_t > total_n // 3


def test_coverage_report_renders(fuzz_report):
    text = fuzz_report.coverage.report()
    assert "opcodes:" in text and "flop toggles" in text


def test_run_fuzz_is_deterministic():
    a = run_fuzz(programs=5, seed=3, artifacts_dir=None, coverage=Coverage())
    b = run_fuzz(programs=5, seed=3, artifacts_dir=None, coverage=Coverage())
    assert a.ok and b.ok
    assert a.coverage.opcodes == b.coverage.opcodes
    assert a.coverage.events == b.coverage.events


# ---------------------------------------------------------------------------
# Shrinking: a planted reference-model bug reduces to a tiny repro.
# ---------------------------------------------------------------------------

def test_shrinker_reduces_planted_bug_to_minimal_repro(monkeypatch, tmp_path):
    # Plant an off-by-one in the reference model's XOR evaluator.
    monkeypatch.setitem(
        rm.ALU_EVAL, int(Op.XOR),
        lambda a, b: ((a ^ b) ^ 1, 0, 0))

    failing = None
    for i in range(30):
        prog = generate_program(f"demo:{i}")
        if not cosim(prog).ok:
            failing = prog
            break
    assert failing is not None, "no generated program exercised XOR"
    assert failing.instruction_count() > 10  # starts genuinely large

    reduced = shrink(failing)
    assert reduced.instruction_count() <= 10
    result = cosim(reduced)
    assert not result.ok, "shrunk program must still reproduce the mismatch"
    # The minimal repro still contains the offending opcode.
    assert "xor" in reduced.source().lower()


def test_fuzz_dumps_shrunk_artifact(monkeypatch, tmp_path):
    monkeypatch.setitem(
        rm.ALU_EVAL, int(Op.XOR),
        lambda a, b: ((a ^ b) ^ 1, 0, 0))
    report = run_fuzz(programs=8, seed="demo", artifacts_dir=tmp_path)
    assert not report.ok
    failure = report.failures[0]
    assert failure.artifact is not None and failure.artifact.exists()
    text = failure.artifact.read_text()
    assert "xor" in text.lower()
    assert failure.instructions <= 10


def test_shrink_requires_a_failing_program():
    prog = generate_program("clean:0")
    assert cosim(prog).ok
    with pytest.raises(ValueError):
        shrink(prog)
