"""Differential fuzzer: generator, co-simulation, shrinking, coverage.

The shrinker test is the interesting one: it plants a bug in the
*reference model* (an off-by-one in XOR) so the pipeline-vs-reference
comparison genuinely fails, then checks delta debugging reduces the
mismatching program to a handful of instructions — the same workflow a
real pipeline bug would go through, without needing one.
"""

from __future__ import annotations

import math
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.verify.refmodel as rm
from repro.cpu.isa import Op
from repro.verify import (
    REQUIRED_EVENT_BINS,
    Coverage,
    adaptive_weights,
    cosim,
    generate_program,
    program_strategy,
    run_fuzz,
    shrink,
)
from repro.verify.progen import _TEMPLATE_WEIGHTS


# ---------------------------------------------------------------------------
# Property: every generated program terminates and matches the reference.
# ---------------------------------------------------------------------------

@given(program_strategy())
@settings(deadline=None)
def test_any_generated_program_cosimulates_clean(prog):
    result = cosim(prog)
    assert not result.hung_both, "generated program failed to terminate"
    assert result.ok, result.mismatches


def test_generation_is_deterministic():
    a = generate_program("det:7")
    b = generate_program("det:7")
    assert a.source() == b.source()
    assert a.stimulus == b.stimulus
    assert a.source() != generate_program("det:8").source()


def test_programs_are_assemblable_and_bounded():
    from repro.cpu import assemble

    for i in range(20):
        prog = generate_program(f"asm:{i}")
        program = assemble(prog.source())
        assert program.entry == 0
        assert prog.instruction_count() > 0


# ---------------------------------------------------------------------------
# Batch fuzz session + coverage accounting.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fuzz_report():
    # Module-scoped: one 60-program session feeds several assertions.
    return run_fuzz(programs=60, seed=0, artifacts_dir=None)


def test_fuzz_session_clean(fuzz_report):
    assert fuzz_report.ok, fuzz_report.failures
    assert fuzz_report.programs == 60
    assert fuzz_report.hung_both == 0


def test_fuzz_session_opcode_coverage(fuzz_report):
    covered, missing, frac = fuzz_report.coverage.opcode_coverage()
    # 60 programs already exercise nearly the full ISA; CI's 200-program
    # smoke run asserts the full 100%.
    assert frac >= 0.9, f"missing opcodes: {sorted(op.name for op in missing)}"


def test_fuzz_session_event_bins(fuzz_report):
    bins = fuzz_report.coverage.event_bins()
    assert set(bins) == set(REQUIRED_EVENT_BINS)
    for name in ("flush", "stall", "sb_drain", "btb_hit", "btb_miss",
                 "branch_taken", "branch_not_taken"):
        assert bins[name] > 0, f"event bin {name!r} never observed"


def test_fuzz_session_toggle_coverage(fuzz_report):
    toggles = fuzz_report.coverage.toggle_by_unit()
    assert toggles
    total_t = sum(t for t, _ in toggles.values())
    total_n = sum(n for _, n in toggles.values())
    # Close to half the state space toggles even in a short session
    # (memories and wide CSR banks keep the ceiling well below 100%).
    assert total_t > total_n // 3


def test_coverage_report_renders(fuzz_report):
    text = fuzz_report.coverage.report()
    assert "opcodes:" in text and "flop toggles" in text


def test_run_fuzz_is_deterministic():
    a = run_fuzz(programs=5, seed=3, artifacts_dir=None, coverage=Coverage())
    b = run_fuzz(programs=5, seed=3, artifacts_dir=None, coverage=Coverage())
    assert a.ok and b.ok
    assert a.coverage.opcodes == b.coverage.opcodes
    assert a.coverage.events == b.coverage.events


# ---------------------------------------------------------------------------
# Shrinking: a planted reference-model bug reduces to a tiny repro.
# ---------------------------------------------------------------------------

def test_shrinker_reduces_planted_bug_to_minimal_repro(monkeypatch, tmp_path):
    # Plant an off-by-one in the reference model's XOR evaluator.
    monkeypatch.setitem(
        rm.ALU_EVAL, int(Op.XOR),
        lambda a, b: ((a ^ b) ^ 1, 0, 0))

    failing = None
    for i in range(30):
        prog = generate_program(f"demo:{i}")
        if not cosim(prog).ok:
            failing = prog
            break
    assert failing is not None, "no generated program exercised XOR"
    assert failing.instruction_count() > 10  # starts genuinely large

    reduced = shrink(failing)
    assert reduced.instruction_count() <= 10
    result = cosim(reduced)
    assert not result.ok, "shrunk program must still reproduce the mismatch"
    # The minimal repro still contains the offending opcode.
    assert "xor" in reduced.source().lower()


def test_fuzz_dumps_shrunk_artifact(monkeypatch, tmp_path):
    monkeypatch.setitem(
        rm.ALU_EVAL, int(Op.XOR),
        lambda a, b: ((a ^ b) ^ 1, 0, 0))
    report = run_fuzz(programs=8, seed="demo", artifacts_dir=tmp_path)
    assert not report.ok
    failure = report.failures[0]
    assert failure.artifact is not None and failure.artifact.exists()
    text = failure.artifact.read_text()
    assert "xor" in text.lower()
    assert failure.instructions <= 10


def test_shrink_requires_a_failing_program():
    prog = generate_program("clean:0")
    assert cosim(prog).ok
    with pytest.raises(ValueError):
        shrink(prog)


# ---------------------------------------------------------------------------
# Coverage-directed generation (adaptive template weights).
# ---------------------------------------------------------------------------

_bins_strategy = st.fixed_dictionaries(
    {}, optional={name: st.integers(min_value=0, max_value=10**9)
                  for name in REQUIRED_EVENT_BINS})


@given(_bins_strategy)
def test_adaptive_weights_preserve_a_valid_distribution(bins):
    """For *any* event-bin histogram — empty, saturated, adversarially
    lopsided — the reweighting must stay a valid sampling distribution:
    same template names, same order, every weight finite and > 0."""
    base = _TEMPLATE_WEIGHTS
    reweighted = adaptive_weights(bins)
    assert [n for n, _ in reweighted] == [n for n, _ in base]
    for (_, w0), (_, w1) in zip(base, reweighted):
        assert w1 > 0 and math.isfinite(w1)
        assert w1 >= w0 - 1e-12          # boosts only, never suppresses


def test_adaptive_weights_boost_underfed_bins():
    # Everything saturated except MPU faults: only the mpu template
    # (the sole feeder of exc_MPU) may gain weight.
    bins = {name: 10_000 for name in REQUIRED_EVENT_BINS}
    bins["exc_MPU"] = 0
    base = dict(_TEMPLATE_WEIGHTS)
    boosted = dict(adaptive_weights(bins))
    assert boosted["mpu"] > base["mpu"]
    for name in ("alu", "mem", "loop", "mul", "io", "csr", "bkpt", "irq"):
        assert boosted[name] == pytest.approx(base[name])


def test_adaptive_weights_neutral_when_balanced():
    bins = {name: 500 for name in REQUIRED_EVENT_BINS}
    assert dict(adaptive_weights(bins)) == pytest.approx(
        {n: float(w) for n, w in _TEMPLATE_WEIGHTS})


def test_generate_program_accepts_custom_weights():
    heavy_mpu = tuple((n, 1000.0 if n == "mpu" else 0.001)
                      for n, _ in _TEMPLATE_WEIGHTS)
    prog = generate_program("w:1", weights=heavy_mpu)
    kinds = {b.kind for b in prog.blocks}
    assert "mpu" in kinds
    # And the default path is untouched by the new parameter.
    assert generate_program("w:1").source() == \
        generate_program("w:1", weights=None).source()


def test_run_fuzz_adapt_stays_clean_and_deterministic():
    a = run_fuzz(programs=12, seed=5, artifacts_dir=None, adapt=True,
                 adapt_batch=4, coverage=Coverage())
    b = run_fuzz(programs=12, seed=5, artifacts_dir=None, adapt=True,
                 adapt_batch=4, coverage=Coverage())
    assert a.ok and b.ok
    assert a.coverage.opcodes == b.coverage.opcodes
    assert a.coverage.events == b.coverage.events


# ---------------------------------------------------------------------------
# Artifact directory plumbing (no cwd-relative dumps).
# ---------------------------------------------------------------------------

def _plant_xor_bug(monkeypatch):
    monkeypatch.setitem(
        rm.ALU_EVAL, int(Op.XOR),
        lambda a, b: ((a ^ b) ^ 1, 0, 0))


def test_artifacts_env_var_directs_dumps(monkeypatch, tmp_path):
    _plant_xor_bug(monkeypatch)
    target = tmp_path / "nested" / "dumps"
    monkeypatch.setenv("REPRO_FUZZ_ARTIFACTS", str(target))
    report = run_fuzz(programs=8, seed="demo")     # no explicit dir
    assert not report.ok
    artifact = report.failures[0].artifact
    assert artifact is not None and artifact.parent == target
    assert artifact.exists()


def test_explicit_artifacts_dir_beats_env(monkeypatch, tmp_path):
    _plant_xor_bug(monkeypatch)
    monkeypatch.setenv("REPRO_FUZZ_ARTIFACTS", str(tmp_path / "env_dir"))
    explicit = tmp_path / "explicit"
    report = run_fuzz(programs=8, seed="demo", artifacts_dir=explicit)
    assert not report.ok
    assert report.failures[0].artifact.parent == explicit
    assert not (tmp_path / "env_dir").exists()


def test_empty_env_disables_dumps(monkeypatch):
    _plant_xor_bug(monkeypatch)
    monkeypatch.setenv("REPRO_FUZZ_ARTIFACTS", "")
    report = run_fuzz(programs=8, seed="demo")
    assert not report.ok
    assert report.failures[0].artifact is None


def test_resolve_artifacts_dir_precedence(monkeypatch, tmp_path):
    from repro.verify.diff import resolve_artifacts_dir

    monkeypatch.delenv("REPRO_FUZZ_ARTIFACTS", raising=False)
    assert resolve_artifacts_dir() == Path("fuzz_artifacts")
    monkeypatch.setenv("REPRO_FUZZ_ARTIFACTS", str(tmp_path))
    assert resolve_artifacts_dir() == tmp_path
    assert resolve_artifacts_dir(tmp_path / "x") == tmp_path / "x"
    assert resolve_artifacts_dir(None) is None
