"""Golden trace tests."""

import pytest

from repro.cpu import Cpu, Memory
from repro.cpu.units import REG_INDEX
from repro.faults import GoldenTrace
from repro.lockstep.categories import expand_ports
from repro.workloads import KERNELS


class TestTrace:
    def test_lengths_consistent(self, ttsprk_golden):
        g = ttsprk_golden
        assert g.n_cycles == len(g.outputs) == len(g.states) == len(g.ports)
        assert g.state_matrix.shape == (g.n_cycles, len(g.states[0]))
        assert g.port_matrix.shape == (g.n_cycles, len(g.ports[0]))
        assert g.state_hashes.shape == (g.n_cycles,)

    def test_states_record_pre_step_state(self, ttsprk_golden):
        g = ttsprk_golden
        cpu = Cpu(g.memory_at(0), g.stimulus, entry=g.program.entry)
        assert cpu.snapshot() == g.states[0]
        out = cpu.step()
        assert out == g.ports[0]
        assert expand_ports(out) == g.outputs[0]
        assert cpu.snapshot() == g.states[1]

    def test_row_accessors_match_matrices(self, ttsprk_golden):
        g = ttsprk_golden
        assert g.states[-1] == tuple(g.state_matrix[-1].tolist())
        assert g.ports[3:5] == [g.ports[3], g.ports[4]]
        assert g.port_tuples()[:10] == g.ports[:10]
        assert g.state_hash_list()[7] == hash(g.state_at(7))

    def test_replay_matches_trace_everywhere(self, ttsprk_golden):
        g = ttsprk_golden
        cpu = Cpu(g.memory_at(0), g.stimulus, entry=g.program.entry)
        for t in range(0, g.n_cycles, 97):
            # fast-forward to t
            while cpu.cyc < t:
                cpu.step()
            assert cpu.snapshot() == g.states[t]

    def test_non_halting_program_rejected(self):
        from repro.workloads.kernels import Workload
        spin = Workload("spin", "never halts", "loop:\n jal r0, loop",
                        lambda seed: [0], lambda stim: [])
        with pytest.raises(RuntimeError, match="did not halt"):
            GoldenTrace(spin, max_cycles=500)


class TestMemoryReconstruction:
    def test_memory_at_zero_is_initial_image(self, ttsprk_golden):
        g = ttsprk_golden
        mem = g.memory_at(0)
        assert mem.words[: len(g.program.words)] == g.program.words

    def test_memory_at_end_matches_replayed_run(self, ttsprk_golden):
        g = ttsprk_golden
        cpu = Cpu(g.memory_at(0), g.stimulus, entry=g.program.entry)
        cpu.run(g.n_cycles + 10)
        assert g.memory_at(g.n_cycles).words == cpu.mem.words

    def test_memory_at_midpoint_consistent(self, ttsprk_golden):
        g = ttsprk_golden
        mid = g.n_cycles // 2
        cpu = Cpu(g.memory_at(0), g.stimulus, entry=g.program.entry)
        for _ in range(mid):
            cpu.step()
        assert g.memory_at(mid).words == cpu.mem.words

    def test_memory_at_returns_fresh_objects(self, ttsprk_golden):
        a = ttsprk_golden.memory_at(5)
        b = ttsprk_golden.memory_at(5)
        assert a is not b
        a.write_word(0, 999)
        assert b.read_word(0) != 999 or b.words[0] == 999 and False

    def test_checkpointed_matches_naive_replay(self):
        """Checkpoint+bisect reconstruction equals full log replay at
        arbitrary cycles, including across checkpoint boundaries."""
        import random

        from repro.faults.golden import MEMORY_CHECKPOINT_EVERY

        g = GoldenTrace(KERNELS["canrdr"])

        def naive(cycle):
            words = list(g._initial_words)
            for when, idx, value in g.write_log:
                if when >= cycle:
                    break
                words[idx] = value
            return words

        # A dense synthetic log several checkpoint strides long, with
        # write bursts sharing a cycle stamp (as store-buffer drains do).
        rnd = random.Random(42)
        log = []
        cycle = 0
        while len(log) < 3 * MEMORY_CHECKPOINT_EVERY + 17:
            for _ in range(rnd.randrange(1, 4)):
                log.append((cycle, rnd.randrange(g.mem_words),
                            rnd.randrange(1 << 32)))
            cycle += rnd.randrange(1, 3)
        original = g.write_log
        try:
            g.reindex_write_log(log)
            probes = [0, 1, cycle // 3, cycle // 2, cycle - 1, cycle, cycle + 99]
            probes += [rnd.randrange(cycle) for _ in range(25)]
            for c in probes:
                assert g.memory_at(c).words == naive(c), c
        finally:
            g.reindex_write_log(original)
        # and on the real (sparse) kernel log
        for c in (0, 1, g.n_cycles // 2, g.n_cycles):
            assert g.memory_at(c).words == naive(c), c


class TestActivation:
    def test_toggling_flop_activates_immediately(self, ttsprk_golden):
        g = ttsprk_golden
        # cyc bit 0 toggles every cycle: a stuck-at-0 activates within 2.
        act = g.activation_cycle("cyc", 0, 0, 10)
        assert act is not None and act - 10 <= 1

    def test_constant_flop_never_activates(self, ttsprk_golden):
        g = ttsprk_golden
        # mpu_ctrl stays 0 for the whole run: stuck-at-0 never activates.
        assert g.activation_cycle("mpu_ctrl", 0, 0, 0) is None

    def test_constant_zero_flop_activates_for_stuck1(self, ttsprk_golden):
        g = ttsprk_golden
        assert g.activation_cycle("mpu_ctrl", 0, 1, 0) == 0

    def test_activation_respects_start(self, ttsprk_golden):
        g = ttsprk_golden
        start = g.n_cycles - 1
        act = g.activation_cycle("cyc", 0, 0, start)
        assert act is None or act >= start

    def test_activation_matches_state_matrix(self, ttsprk_golden):
        g = ttsprk_golden
        reg, bit, value = "pc", 2, 1
        act = g.activation_cycle(reg, bit, value, 0)
        col = g.state_matrix[:, REG_INDEX[reg]]
        manual = next(
            (t for t in range(g.n_cycles) if ((int(col[t]) >> bit) & 1) != value),
            None,
        )
        assert act == manual


class TestLoggingMemory:
    def test_log_records_writes_with_cycles(self):
        from repro.faults.golden import LoggingMemory
        mem = LoggingMemory(16)
        mem.now = 3
        mem.write_word(4, 42)
        mem.now = 7
        mem.write_byte(0, 0xAB)
        assert mem.log[0] == (3, 1, 42)
        assert mem.log[1][0] == 7
        assert mem.read_byte(0) == 0xAB

    def test_reads_do_not_log(self):
        from repro.faults.golden import LoggingMemory
        mem = LoggingMemory(16)
        mem.read_word(0)
        mem.read_byte(1)
        assert mem.log == []


def test_all_kernels_produce_traces():
    for name, workload in KERNELS.items():
        g = GoldenTrace(workload, max_cycles=20_000)
        assert g.n_cycles > 500, name
        assert len({len(o) for o in g.outputs[:50]}) == 1
