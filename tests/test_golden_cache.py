"""On-disk golden-trace cache tests.

The cache must be invisible: a loaded trace behaves identically to a
freshly simulated one (same matrices, write log, stimulus and injection
verdicts), and any unreadable / stale / mismatching file is discarded
with a warning and replaced by a fresh simulation — never propagated.
"""

import numpy as np
import pytest

from repro.cpu.units import FlopRef
from repro.faults.campaign import CAMPAIGN_SCHEMA_VERSION
from repro.faults.golden import (
    CAMPAIGN_MEM_WORDS,
    DEFAULT_GOLDEN_CACHE_DIR,
    GOLDEN_CACHE_ENV,
    GoldenTrace,
    golden_cache_dir,
)
from repro.faults.injector import InjectionEngine
from repro.faults.models import Fault, FaultKind
from repro.workloads import KERNELS


WORKLOAD = KERNELS["ttsprk"]


def _cache_path(tmp_path):
    files = sorted(tmp_path.glob("*.npz"))
    assert len(files) == 1
    return files[0]


class TestRoundTrip:
    def test_miss_then_hit_is_equal(self, tmp_path):
        fresh = GoldenTrace.cached(WORKLOAD, cache_dir=tmp_path)
        path = _cache_path(tmp_path)
        loaded = GoldenTrace.cached(WORKLOAD, cache_dir=tmp_path)
        assert loaded.n_cycles == fresh.n_cycles
        assert np.array_equal(loaded.port_matrix, fresh.port_matrix)
        assert np.array_equal(loaded.state_matrix, fresh.state_matrix)
        assert np.array_equal(loaded.read_mask, fresh.read_mask)
        assert np.array_equal(loaded.write_mask, fresh.write_mask)
        assert loaded.soft_start("rf5", 0) == fresh.soft_start("rf5", 0)
        assert loaded.first_active_use("scratch", 3, 1, 0) == \
            fresh.first_active_use("scratch", 3, 1, 0)
        assert loaded.port_tuples() == fresh.port_tuples()
        assert loaded.state_hash_list() == fresh.state_hash_list()
        assert loaded.write_log == fresh.write_log
        assert loaded.stimulus.values == fresh.stimulus.values
        assert loaded.program.words == fresh.program.words
        assert loaded.memory_at(fresh.n_cycles).words == \
            fresh.memory_at(fresh.n_cycles).words
        assert path.exists()

    def test_cached_trace_gives_identical_injection_verdicts(self, tmp_path):
        fresh = GoldenTrace(WORKLOAD)
        GoldenTrace.cached(WORKLOAD, cache_dir=tmp_path)  # populate
        loaded = GoldenTrace.cached(WORKLOAD, cache_dir=tmp_path)
        eng_a = InjectionEngine(fresh, max_observe=400)
        eng_b = InjectionEngine(loaded, max_observe=400)
        faults = [
            Fault(FlopRef("imc_addr", 3), FaultKind.SOFT, 100),
            Fault(FlopRef("pc", 2), FaultKind.STUCK1, 50),
            Fault(FlopRef("rf7", 31), FaultKind.SOFT, 700),
            Fault(FlopRef("cyc", 0), FaultKind.STUCK0, 10),
            Fault(FlopRef("mpu_ctrl", 0), FaultKind.STUCK0, 0),
        ]
        for fault in faults:
            assert eng_a.inject(fault) == eng_b.inject(fault), fault

    def test_seed_and_mem_words_key_separate_entries(self, tmp_path):
        GoldenTrace.cached(WORKLOAD, cache_dir=tmp_path)
        GoldenTrace.cached(WORKLOAD, seed=999, cache_dir=tmp_path)
        GoldenTrace.cached(WORKLOAD, mem_words=4096, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.npz"))) == 3


class TestFallback:
    def test_corrupt_file_warns_resimulates_and_replaces(self, tmp_path):
        fresh = GoldenTrace.cached(WORKLOAD, cache_dir=tmp_path)
        path = _cache_path(tmp_path)
        path.write_bytes(b"this is not an npz archive")
        with pytest.warns(RuntimeWarning, match="discarding unusable"):
            recovered = GoldenTrace.cached(WORKLOAD, cache_dir=tmp_path)
        assert np.array_equal(recovered.port_matrix, fresh.port_matrix)
        # the bad file was overwritten with a valid one
        reloaded = GoldenTrace._load_cached(path, WORKLOAD,
                                            fresh.seed, fresh.mem_words)
        assert reloaded is not None
        assert np.array_equal(reloaded.state_matrix, fresh.state_matrix)

    def test_stale_schema_version_is_discarded(self, tmp_path):
        GoldenTrace.cached(WORKLOAD, cache_dir=tmp_path)
        path = _cache_path(tmp_path)
        data = dict(np.load(path, allow_pickle=False))
        data["meta"] = data["meta"].copy()
        data["meta"][0] = CAMPAIGN_SCHEMA_VERSION + 1
        with open(path, "wb") as fh:
            np.savez(fh, **data)
        with pytest.warns(RuntimeWarning, match="schema"):
            trace = GoldenTrace._load_cached(path, WORKLOAD, 1234,
                                             CAMPAIGN_MEM_WORDS)
        assert trace is None

    def test_pre_v4_file_without_masks_is_discarded(self, tmp_path):
        """A schema-bump survivor missing the liveness masks is unusable.

        Simulates a v3-era cache that was hand-renamed (or a dir carried
        across the bump with the version forced): the mask keys simply
        do not exist in the archive, so the load must fall back to a
        fresh simulation rather than produce a trace that cannot answer
        liveness queries.
        """
        fresh = GoldenTrace.cached(WORKLOAD, cache_dir=tmp_path)
        path = _cache_path(tmp_path)
        data = dict(np.load(path, allow_pickle=False))
        del data["read_mask"]
        del data["write_mask"]
        with open(path, "wb") as fh:
            np.savez(fh, **data)
        with pytest.warns(RuntimeWarning, match="discarding unusable"):
            trace = GoldenTrace._load_cached(path, WORKLOAD, fresh.seed,
                                             fresh.mem_words)
        assert trace is None
        # the public entry point recovers by re-simulating (and rewrites
        # a usable file)
        with pytest.warns(RuntimeWarning, match="discarding unusable"):
            recovered = GoldenTrace.cached(WORKLOAD, cache_dir=tmp_path)
        assert np.array_equal(recovered.read_mask, fresh.read_mask)
        reloaded = GoldenTrace._load_cached(path, WORKLOAD, fresh.seed,
                                            fresh.mem_words)
        assert reloaded is not None

    def test_truncated_mask_matrix_is_discarded(self, tmp_path):
        fresh = GoldenTrace.cached(WORKLOAD, cache_dir=tmp_path)
        path = _cache_path(tmp_path)
        data = dict(np.load(path, allow_pickle=False))
        data["read_mask"] = data["read_mask"][:10]
        with open(path, "wb") as fh:
            np.savez(fh, **data)
        with pytest.warns(RuntimeWarning, match="discarding unusable"):
            trace = GoldenTrace._load_cached(path, WORKLOAD, fresh.seed,
                                             fresh.mem_words)
        assert trace is None

    def test_truncated_matrix_is_discarded(self, tmp_path):
        fresh = GoldenTrace.cached(WORKLOAD, cache_dir=tmp_path)
        path = _cache_path(tmp_path)
        data = dict(np.load(path, allow_pickle=False))
        data["state_matrix"] = data["state_matrix"][:10]
        with open(path, "wb") as fh:
            np.savez(fh, **data)
        with pytest.warns(RuntimeWarning, match="discarding unusable"):
            trace = GoldenTrace._load_cached(path, WORKLOAD, fresh.seed,
                                             fresh.mem_words)
        assert trace is None

    def test_stimulus_mismatch_is_discarded(self, tmp_path):
        fresh = GoldenTrace.cached(WORKLOAD, cache_dir=tmp_path)
        path = _cache_path(tmp_path)
        data = dict(np.load(path, allow_pickle=False))
        data["stimulus"] = data["stimulus"].copy()
        data["stimulus"][0] += 1
        with open(path, "wb") as fh:
            np.savez(fh, **data)
        with pytest.warns(RuntimeWarning, match="stimulus"):
            trace = GoldenTrace._load_cached(path, WORKLOAD, fresh.seed,
                                             fresh.mem_words)
        assert trace is None


class TestCacheDirResolution:
    def test_default_directory(self, monkeypatch):
        monkeypatch.delenv(GOLDEN_CACHE_ENV, raising=False)
        assert str(golden_cache_dir()) == DEFAULT_GOLDEN_CACHE_DIR

    @pytest.mark.parametrize("value", ["", "0", "off", "NONE"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(GOLDEN_CACHE_ENV, value)
        assert golden_cache_dir() is None

    def test_override_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv(GOLDEN_CACHE_ENV, str(tmp_path / "traces"))
        assert golden_cache_dir() == tmp_path / "traces"

    def test_disabled_cache_writes_nothing(self, monkeypatch, tmp_path):
        monkeypatch.setenv(GOLDEN_CACHE_ENV, "off")
        monkeypatch.chdir(tmp_path)
        trace = GoldenTrace.cached(WORKLOAD)
        assert trace.n_cycles > 0
        assert not (tmp_path / DEFAULT_GOLDEN_CACHE_DIR).exists()
