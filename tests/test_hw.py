"""Gate-level cost model tests."""

import pytest

from repro.hw import (
    CostSummary,
    Netlist,
    checker_netlist,
    dual_lockstep_summary,
    or_tree,
    predictor_netlist,
    r5_class_core_summary,
    sr5_core_netlist,
    summarize,
    table4,
    xor_tree,
)
from repro.lockstep import SIGNAL_CATEGORIES, TOTAL_PORT_SIGNALS


class TestPrimitives:
    def test_or_tree_counts(self):
        assert or_tree(1) == 0
        assert or_tree(2) == 1
        assert or_tree(8) == 7

    def test_xor_tree_counts(self):
        assert xor_tree(4) == 3

    def test_netlist_accumulates(self):
        net = Netlist("x")
        net.add("nand2", 10)
        net.add("nand2", 5)
        net.add("dff", 2)
        assert net.cells["nand2"] == 15
        assert net.gate_equivalents == 15 + 2 * 7.0

    def test_unknown_cell_rejected(self):
        with pytest.raises(KeyError):
            Netlist("x").add("nand97", 1)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Netlist("x").add("nand2", -1)

    def test_power_scales_with_activity(self):
        low = Netlist("a", activity=0.1)
        high = Netlist("b", activity=0.5)
        low.add("nand2", 100)
        high.add("nand2", 100)
        assert high.power > low.power

    def test_merge(self):
        a = Netlist("a")
        a.add("dff", 3)
        b = Netlist("b")
        b.add("dff", 4)
        a.merge(b)
        assert a.cells["dff"] == 7


class TestCheckerNetlist:
    def test_one_comparator_per_port_signal(self):
        net = checker_netlist(2)
        assert net.cells["xor2"] == TOTAL_PORT_SIGNALS

    def test_tmr_has_two_comparator_ranks(self):
        assert checker_netlist(3).cells["xor2"] == 2 * TOTAL_PORT_SIGNALS

    def test_or_trees_cover_every_sc(self):
        net = checker_netlist(2)
        expected = sum(or_tree(sc.width) for sc in SIGNAL_CATEGORIES)
        expected += or_tree(len(SIGNAL_CATEGORIES))
        assert net.cells["or2"] == expected


class TestPredictorNetlist:
    def test_dsr_flops(self):
        net = predictor_netlist()
        assert net.cells["dff"] == len(SIGNAL_CATEGORIES) + 11

    def test_mapping_scales_with_ptar_width(self):
        small = predictor_netlist(ptar_bits=4)
        large = predictor_netlist(ptar_bits=12)
        assert large.gate_equivalents > small.gate_equivalents

    def test_invalid_entry_count_rejected(self):
        with pytest.raises(ValueError):
            predictor_netlist(n_entries=0)

    def test_predictor_much_smaller_than_core(self):
        predictor = summarize(predictor_netlist())
        core = summarize(sr5_core_netlist())
        assert predictor.gate_equivalents < 0.1 * core.gate_equivalents


class TestTable4:
    def test_r5_basis_matches_paper_magnitudes(self):
        """Paper Table IV: 0.6%/1.8% vs dual lockstep, 1.4%/4.2% vs one CPU."""
        rows = table4(core="r5")
        dual, single = rows
        assert 0.002 < dual.area_overhead < 0.02
        assert 0.005 < dual.power_overhead < 0.03
        assert 0.005 < single.area_overhead < 0.04
        assert 0.01 < single.power_overhead < 0.06

    def test_single_overheads_double_dual(self):
        dual, single = table4(core="r5")
        assert single.area_overhead == pytest.approx(
            dual.area_overhead * 2, rel=0.1)

    def test_sr5_basis_larger_but_bounded(self):
        dual_r5 = table4(core="r5")[0]
        dual_sr5 = table4(core="sr5")[0]
        assert dual_sr5.area_overhead > dual_r5.area_overhead
        assert dual_sr5.area_overhead < 0.05

    def test_unknown_basis_rejected(self):
        with pytest.raises(ValueError):
            table4(core="m7")


class TestSummaries:
    def test_dual_lockstep_more_than_twice_core(self):
        core = r5_class_core_summary()
        dual = dual_lockstep_summary(core)
        assert dual.gate_equivalents > 2 * core.gate_equivalents

    def test_overhead_ratios(self):
        a = CostSummary("a", 100.0, 80.0, 10.0)
        b = CostSummary("b", 1000.0, 800.0, 100.0)
        assert a.area_overhead_vs(b) == pytest.approx(0.1)
        assert a.power_overhead_vs(b) == pytest.approx(0.1)
