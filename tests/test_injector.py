"""Differential injection engine tests, including the equivalence proof
against a real dual-core lockstep simulation."""

import numpy as np
import pytest

from repro.cpu import FlopRef
from repro.cpu.memory import InputStream
from repro.faults import ErrorType, Fault, FaultKind, InjectionEngine
from repro.lockstep import DmrLockstep


@pytest.fixture
def engine(ttsprk_golden):
    return InjectionEngine(ttsprk_golden, max_observe=None, mask_check_stride=1)


def dmr_inject(golden, fault: Fault, max_cycles: int):
    """Reference implementation: run a *real* DMR pair and inject the
    fault into the redundant core at the scheduled cycle."""
    dmr = DmrLockstep(golden.program, InputStream(golden.stimulus.values))
    core = dmr.core_b
    mask = 1 << fault.flop.bit
    value = 1 if fault.kind is FaultKind.STUCK1 else 0
    for t in range(max_cycles):
        if fault.kind is FaultKind.SOFT:
            if t == fault.cycle:
                setattr(core, fault.flop.reg,
                        getattr(core, fault.flop.reg) ^ mask)
        elif t >= fault.cycle:
            reg_val = getattr(core, fault.flop.reg)
            if value:
                setattr(core, fault.flop.reg, reg_val | mask)
            else:
                setattr(core, fault.flop.reg, reg_val & ~mask)
        if dmr.step():
            return dmr.checker.state
        if dmr.core_a.halted and dmr.core_b.halted:
            return None
    return None


class TestEquivalenceWithRealDmr:
    """The engine's golden-trace shortcut must agree with a genuine
    dual-core lockstep run — detection cycle and DSR included."""

    @pytest.mark.parametrize("reg,bit,kind,cycle", [
        ("pc", 2, FaultKind.SOFT, 50),
        ("imc_addr", 0, FaultKind.SOFT, 100),
        ("rf12", 3, FaultKind.SOFT, 200),
        ("if_ir", 10, FaultKind.SOFT, 333),
        ("flags", 1, FaultKind.SOFT, 75),
        ("pc", 2, FaultKind.STUCK1, 50),
        ("rf1", 0, FaultKind.STUCK0, 120),
        ("lsu_addr", 4, FaultKind.STUCK1, 80),
        ("mul_a", 7, FaultKind.STUCK1, 60),
        ("btb_tgt1", 5, FaultKind.STUCK1, 90),
    ])
    def test_matches_real_lockstep(self, ttsprk_golden, engine, reg, bit, kind, cycle):
        fault = Fault(FlopRef(reg, bit), kind, cycle)
        record = engine.inject(fault)
        reference = dmr_inject(ttsprk_golden, fault, ttsprk_golden.n_cycles)
        if record is None:
            assert reference is None
        else:
            assert reference is not None
            assert reference.error_cycle == record.detect_cycle
            assert reference.diverged == record.diverged

    def test_random_sample_equivalence(self, ttsprk_golden, engine):
        rng = np.random.default_rng(7)
        from repro.cpu.units import all_flops
        flops = all_flops()
        for _ in range(12):
            flop = flops[int(rng.integers(len(flops)))]
            kind = [FaultKind.SOFT, FaultKind.STUCK0, FaultKind.STUCK1][
                int(rng.integers(3))]
            cycle = int(rng.integers(ttsprk_golden.n_cycles - 1))
            fault = Fault(flop, kind, cycle)
            record = engine.inject(fault)
            reference = dmr_inject(ttsprk_golden, fault, ttsprk_golden.n_cycles)
            if record is None:
                assert reference is None, fault
            else:
                assert reference is not None, fault
                assert reference.error_cycle == record.detect_cycle, fault
                assert reference.diverged == record.diverged, fault

    def test_equivalence_on_branchy_kernel(self):
        """Same proof on the branch-heavy IDCT kernel (BTB churn and
        data-dependent control flow stress the redirect paths)."""
        from repro.faults import GoldenTrace
        from repro.workloads import KERNELS
        golden = GoldenTrace(KERNELS["idctrn"])
        engine = InjectionEngine(golden, max_observe=None, mask_check_stride=1)
        rng = np.random.default_rng(3)
        from repro.cpu.units import all_flops
        flops = all_flops()
        for _ in range(8):
            flop = flops[int(rng.integers(len(flops)))]
            kind = [FaultKind.SOFT, FaultKind.STUCK0, FaultKind.STUCK1][
                int(rng.integers(3))]
            cycle = int(rng.integers(golden.n_cycles - 1))
            fault = Fault(flop, kind, cycle)
            record = engine.inject(fault)
            reference = dmr_inject(golden, fault, golden.n_cycles)
            if record is None:
                assert reference is None, fault
            else:
                assert reference is not None, fault
                assert reference.error_cycle == record.detect_cycle, fault
                assert reference.diverged == record.diverged, fault


class TestSoftInjection:
    def test_ported_flop_detects_immediately(self, engine):
        record = engine.inject(Fault(FlopRef("imc_addr", 0), FaultKind.SOFT, 40))
        assert record is not None
        assert record.detect_cycle == 40
        assert record.latency == 0
        assert 0 in record.diverged  # iaddr low byte SC

    def test_record_metadata(self, engine):
        record = engine.inject(Fault(FlopRef("imc_addr", 9), FaultKind.SOFT, 41))
        assert record.benchmark == "ttsprk"
        assert record.kind is FaultKind.SOFT
        assert record.error_type is ErrorType.SOFT
        assert record.unit == "IMC"
        assert record.coarse_unit == "IMC"

    def test_dead_register_is_masked_or_undetected(self, engine):
        # scratch is never read by ttsprk: the flip cannot manifest.
        record = engine.inject(Fault(FlopRef("scratch", 5), FaultKind.SOFT, 40))
        assert record is None

    def test_out_of_range_cycle_is_noop(self, engine, ttsprk_golden):
        fault = Fault(FlopRef("pc", 0), FaultKind.SOFT, ttsprk_golden.n_cycles + 5)
        assert engine.inject(fault) is None


class TestHardInjection:
    def test_never_activated_stuck_is_masked(self, engine):
        # mpu_ctrl is always zero: stuck-at-0 can never activate.
        record = engine.inject(Fault(FlopRef("mpu_ctrl", 0), FaultKind.STUCK0, 0))
        assert record is None

    def test_stuck_on_ported_flop_detects_at_activation(self, engine, ttsprk_golden):
        act = ttsprk_golden.activation_cycle("imc_addr", 2, 1, 30)
        record = engine.inject(Fault(FlopRef("imc_addr", 2), FaultKind.STUCK1, 30))
        assert record is not None
        assert record.detect_cycle == act
        assert record.error_type is ErrorType.HARD

    def test_max_observe_caps_search(self, ttsprk_golden):
        short = InjectionEngine(ttsprk_golden, max_observe=1)
        # A stuck-at on a rarely-read register: one observed cycle is
        # almost never enough to catch a divergence from RF state.
        record = short.inject(Fault(FlopRef("rf9", 30), FaultKind.STUCK1, 5))
        full = InjectionEngine(ttsprk_golden, max_observe=None)
        record_full = full.inject(Fault(FlopRef("rf9", 30), FaultKind.STUCK1, 5))
        if record is not None:
            assert record_full is not None
        # capping can only lose detections, never invent them
        if record_full is None:
            assert record is None

    def test_stuck0_and_stuck1_differ(self, engine):
        r0 = engine.inject(Fault(FlopRef("pc", 3), FaultKind.STUCK0, 10))
        r1 = engine.inject(Fault(FlopRef("pc", 3), FaultKind.STUCK1, 10))
        # At least one polarity must manifest on an active pc bit.
        assert r0 is not None or r1 is not None


class TestMaskingCheckStride:
    @pytest.mark.parametrize("stride", [1, 2, 4, 16])
    def test_stride_does_not_change_detections(self, ttsprk_golden, stride):
        base = InjectionEngine(ttsprk_golden, mask_check_stride=1)
        other = InjectionEngine(ttsprk_golden, mask_check_stride=stride)
        for cycle in (33, 134, 587):
            fault = Fault(FlopRef("if_pc", 5), FaultKind.SOFT, cycle)
            a = base.inject(fault)
            b = other.inject(fault)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.detect_cycle == b.detect_cycle
