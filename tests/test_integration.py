"""Full-stack integration tests: detect -> predict -> diagnose."""

import numpy as np

from repro.bist import SbistEngine, StlModel
from repro.core import (
    DivergenceStatusRegister,
    PredictionTableAddressRegister,
    train_predictor,
)
from repro.cpu.memory import InputStream
from repro.faults import ErrorType
from repro.lockstep import DmrLockstep
from repro.workloads import KERNELS, build


def test_error_to_prediction_to_diagnosis(quick_campaign):
    """The complete paper flow on live hardware models: a DMR pair
    detects a divergence, the DSR/PTAR front-end addresses the trained
    table, and SBIST runs in the predicted order."""
    predictor = train_predictor(quick_campaign.records)

    program, stimulus = build(KERNELS["ttsprk"])
    dmr = DmrLockstep(program, InputStream(stimulus.values))
    for _ in range(60):
        dmr.step()
    dmr.core_b.imc_addr ^= 4  # upset in the redundant core's IMC
    state = dmr.run(5000)
    assert state.error

    # Hardware front-end: capture the DSR from the checker's latched
    # error-cycle inputs, map it through the PTAR.
    dsr = DivergenceStatusRegister()
    dsr.capture(*dmr.error_outputs)
    assert dsr.as_set == state.diverged
    ptar = PredictionTableAddressRegister(predictor.table.mapper)
    ptar.load(dsr)
    assert 0 <= ptar.value <= predictor.table.mapper.default_index

    # Error handler: read the prediction and drive the SBIST.
    prediction = predictor.predict(state.diverged)
    assert prediction.units
    engine = SbistEngine(StlModel(), np.random.default_rng(0))
    order = engine.complete_order(prediction.units)
    outcome = engine.run(order, None)  # transient: no hard fault to find
    assert not outcome.found


def test_prediction_guides_real_stuck_at_diagnosis(quick_campaign):
    """Inject a real stuck-at, detect it in lockstep, and verify the
    predicted order finds the right unit no slower than the default."""
    predictor = train_predictor(quick_campaign.records)
    program, stimulus = build(KERNELS["ttsprk"])
    dmr = DmrLockstep(program, InputStream(stimulus.values))

    # Stuck-at-1 on a PFU flop (pc bit 2) in the redundant core.
    for _ in range(2000):
        dmr.core_b.pc |= 4
        if dmr.step():
            break
        if dmr.core_a.halted and dmr.core_b.halted:
            break
    assert dmr.error.error

    prediction = predictor.predict(dmr.error.diverged)
    stl = StlModel()
    engine = SbistEngine(stl, np.random.default_rng(0))
    order = engine.complete_order(prediction.units)
    outcome = engine.run(order, "PFU")
    assert outcome.found
    assert outcome.faulty_unit == "PFU"


def test_type_prediction_consistency(quick_campaign):
    """Predicted types agree with the trained table's majority rule."""
    predictor = train_predictor(quick_campaign.records)
    agree = 0
    for record in quick_campaign.records:
        prediction = predictor.predict_record(record)
        if prediction.error_type is record.error_type:
            agree += 1
    # In-sample majority voting must beat chance comfortably.
    assert agree / len(quick_campaign.records) > 0.5


def test_campaign_types_cover_both_classes(quick_campaign):
    types = {r.error_type for r in quick_campaign.records}
    assert types == {ErrorType.SOFT, ErrorType.HARD}
