"""ISA encoding/decoding unit tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.isa import (
    ALU_RI_OPS,
    ALU_RR_OPS,
    BRANCH_OPS,
    NUM_REGS,
    VALID_OPCODES,
    EncodingError,
    Instruction,
    Op,
    decode,
    is_legal,
    to_signed,
    to_unsigned,
)


class TestFieldHelpers:
    def test_to_signed_positive(self):
        assert to_signed(5, 14) == 5

    def test_to_signed_negative(self):
        assert to_signed(0x3FFF, 14) == -1

    def test_to_signed_min(self):
        assert to_signed(0x2000, 14) == -8192

    def test_to_unsigned_roundtrip_negative(self):
        assert to_signed(to_unsigned(-123, 14), 14) == -123

    def test_to_unsigned_overflow_raises(self):
        with pytest.raises(EncodingError):
            to_unsigned(8192, 14)

    def test_to_unsigned_underflow_raises(self):
        with pytest.raises(EncodingError):
            to_unsigned(-8193, 14)


class TestEncodeDecode:
    @pytest.mark.parametrize("op", sorted(ALU_RR_OPS))
    def test_rr_roundtrip(self, op):
        instr = Instruction(op, rd=3, ra=7, rb=12)
        back = decode(instr.encode())
        assert (back.op, back.rd, back.ra, back.rb) == (op, 3, 7, 12)

    @pytest.mark.parametrize("op", sorted(ALU_RI_OPS))
    def test_ri_roundtrip(self, op):
        instr = Instruction(op, rd=1, ra=2, imm=-100)
        back = decode(instr.encode())
        assert (back.op, back.rd, back.ra, back.imm) == (op, 1, 2, -100)

    @pytest.mark.parametrize("op", sorted(BRANCH_OPS))
    def test_branch_roundtrip(self, op):
        instr = Instruction(op, ra=4, rb=5, imm=-42)
        back = decode(instr.encode())
        assert (back.op, back.ra, back.rb, back.imm) == (op, 4, 5, -42)

    def test_lui_keeps_16_bit_immediate(self):
        back = decode(Instruction(Op.LUI, rd=9, imm=0xBEEF).encode())
        assert (back.op, back.rd, back.imm) == (Op.LUI, 9, 0xBEEF)

    def test_lui_immediate_overflow(self):
        with pytest.raises(EncodingError):
            Instruction(Op.LUI, rd=1, imm=0x10000).encode()

    def test_jal_wide_offset(self):
        back = decode(Instruction(Op.JAL, rd=15, imm=-70000).encode())
        assert (back.op, back.rd, back.imm) == (Op.JAL, 15, -70000)

    def test_register_out_of_range(self):
        with pytest.raises(EncodingError):
            Instruction(Op.ADD, rd=16).encode()

    def test_halt_and_nop(self):
        assert decode(Instruction(Op.HALT).encode()).op == Op.HALT
        assert decode(Instruction(Op.NOP).encode()).op == Op.NOP


class TestLegality:
    def test_all_declared_opcodes_legal(self):
        for opnum in VALID_OPCODES:
            assert is_legal(opnum << 26)

    def test_undeclared_opcode_illegal(self):
        gaps = set(range(64)) - VALID_OPCODES
        assert gaps, "opcode space should have illegal gaps"
        for opnum in gaps:
            assert not is_legal(opnum << 26)


@given(
    op=st.sampled_from(sorted(ALU_RR_OPS | ALU_RI_OPS | BRANCH_OPS)),
    rd=st.integers(0, NUM_REGS - 1),
    ra=st.integers(0, NUM_REGS - 1),
    rb=st.integers(0, NUM_REGS - 1),
    imm=st.integers(-8192, 8191),
)
def test_roundtrip_property(op, rd, ra, rb, imm):
    """Any well-formed instruction survives encode/decode unchanged."""
    instr = Instruction(op, rd=rd, ra=ra, rb=rb, imm=imm)
    back = decode(instr.encode())
    assert back.op == op
    assert back.imm == imm
    assert (back.ra, back.rb) == (ra, rb)


@given(word=st.integers(0, 0xFFFFFFFF))
def test_decode_never_crashes_on_legal(word):
    """Decoding any word with a legal opcode yields in-range fields."""
    if not is_legal(word):
        return
    instr = decode(word)
    assert 0 <= instr.rd < NUM_REGS
    assert 0 <= instr.ra < NUM_REGS
    assert 0 <= instr.rb < NUM_REGS
