"""Kernel backend registry and compiled-kernel parity.

Two layers of guarantee around the C extension:

* **registry semantics** — ``auto`` silently downgrades, explicit
  ``cext`` fails loudly, ``REPRO_KERNEL`` steers defaults, and every
  backend produces byte-identical campaign results;
* **per-cycle state parity** — stronger than digest equality: a mirror
  engine steps the numpy and C kernels side by side on real fault
  workloads and holds the *entire* SoA state and memory matrices equal
  after every cycle, so a kernel bug cannot hide behind digest
  collisions or late masking.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.faults import (
    BatchInjectionEngine,
    CampaignConfig,
    InjectionEngine,
    KERNEL_CHOICES,
    cext_available,
    resolve_kernel,
    run_campaign,
    sample_flops,
    schedule_faults,
)
from repro.faults import _cstep, kernels
from repro.faults.batch import _cext_tables
from repro.faults.parallel import sampling_rng, schedule_rng

QUICK = CampaignConfig.quick()

needs_cext = pytest.mark.skipif(
    not cext_available(),
    reason=f"compiled kernel unavailable: {kernels.cext_build_error()}")


# -- registry ----------------------------------------------------------------

def test_kernel_choices_stable():
    assert KERNEL_CHOICES == ("auto", "cext", "numpy")


def test_resolve_auto_picks_a_backend():
    assert resolve_kernel("auto") == (
        "cext" if cext_available() else "numpy")
    assert resolve_kernel(None) == resolve_kernel("auto")


def test_resolve_numpy_always_works():
    assert resolve_kernel("numpy") == "numpy"


def test_resolve_rejects_unknown():
    with pytest.raises(ValueError, match="unknown kernel"):
        resolve_kernel("fortran")


def test_env_var_steers_default(monkeypatch):
    monkeypatch.setenv(kernels.KERNEL_ENV, "numpy")
    assert resolve_kernel(None) == "numpy"
    # An explicit argument wins over the environment.
    assert resolve_kernel("auto") == (
        "cext" if cext_available() else "numpy")


def test_explicit_cext_fails_loudly_when_unavailable(monkeypatch):
    monkeypatch.setattr(_cstep, "MODULE", None)
    monkeypatch.setattr(_cstep, "BUILD_ERROR", "no compiler on this host")
    assert resolve_kernel("auto") == "numpy"  # silent downgrade
    with pytest.raises(RuntimeError, match="no compiler on this host"):
        resolve_kernel("cext")


def test_engine_records_resolved_kernel(ttsprk_golden):
    engine = BatchInjectionEngine(ttsprk_golden, kernel="numpy")
    assert engine.kernel == "numpy"
    assert engine._cext is None
    auto = BatchInjectionEngine(ttsprk_golden)
    assert auto.kernel == ("cext" if cext_available() else "numpy")


# -- per-cycle SoA parity (stronger than digest) ------------------------------

class _MirrorEngine(BatchInjectionEngine):
    """numpy-kernel engine that replays every step through the C kernel.

    After each vectorized ``_step`` the C ``step`` runs on a snapshot
    of the pre-step state; the two resulting (state, memory) matrices
    must agree in every lane, every row, every cycle.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, kernel="numpy", **kwargs)
        self._mod = kernels.cext_module()
        self._ctables = _cext_tables()
        self.steps_checked = 0

    def _step(self, n: int) -> None:
        S2 = self.S.copy()
        M2 = self.M.copy()
        super()._step(n)
        self._mod.step(S2, M2, self._stim, self._ctables, n)
        np.testing.assert_array_equal(
            S2[:, :n], self.S[:, :n],
            err_msg=f"C step diverged from numpy step ({n} lanes)")
        np.testing.assert_array_equal(
            M2[:n], self.M[:n],
            err_msg=f"C step diverged from numpy step memory ({n} lanes)")
        self.steps_checked += 1


def _shard_faults(golden, flop_idxs, cfg):
    flops = sample_flops(cfg, sampling_rng(cfg.seed))
    faults = []
    for idx in flop_idxs:
        faults.extend(schedule_faults(
            flops[idx], golden.n_cycles, cfg,
            schedule_rng(cfg.seed, 0, idx)))
    return faults


@needs_cext
@pytest.mark.parametrize("trial,batch", ((0, 8), (1, 32)))
def test_per_cycle_state_parity(ttsprk_golden, trial, batch):
    """Full SoA matrix equality between kernels, every cycle, on a
    random shard of real faults (tail_lanes=0: no scalar drain)."""
    cfg = QUICK
    n_flops = len(sample_flops(cfg, sampling_rng(cfg.seed)))
    rnd = random.Random(5150 + trial)
    idxs = sorted(rnd.sample(range(n_flops), k=min(8, n_flops)))
    faults = _shard_faults(ttsprk_golden, idxs, cfg)
    assert faults
    engine = _MirrorEngine(ttsprk_golden, max_observe=cfg.max_observe,
                           mask_check_stride=cfg.mask_check_stride,
                           batch=batch, tail_lanes=0)
    engine.inject_all(faults)
    assert engine.steps_checked > 0  # the mirror actually ran


# -- engine-level parity through the fused drive loop ------------------------

def _assert_cext_parity(golden, faults, cfg, prune=True, **batch_kwargs):
    scalar = InjectionEngine(golden, max_observe=cfg.max_observe,
                             mask_check_stride=cfg.mask_check_stride,
                             prune=prune)
    expected = [scalar.inject(f) for f in faults]
    engine = BatchInjectionEngine(golden, max_observe=cfg.max_observe,
                                  mask_check_stride=cfg.mask_check_stride,
                                  prune=prune, kernel="cext", **batch_kwargs)
    assert engine.inject_all(faults) == expected
    assert engine.stats.as_dict() == scalar.stats.as_dict()


@needs_cext
@pytest.mark.parametrize("trial,batch", ((0, 3), (1, 17), (2, 128)))
def test_cext_random_shard_parity(ttsprk_golden, trial, batch):
    """Records + PruneStats parity scalar vs cext on random shards."""
    cfg = QUICK
    n_flops = len(sample_flops(cfg, sampling_rng(cfg.seed)))
    rnd = random.Random(20180615 + trial)  # same shards as test_batch
    idxs = sorted(rnd.sample(range(n_flops), k=min(12, n_flops)))
    faults = _shard_faults(ttsprk_golden, idxs, cfg)
    assert faults
    _assert_cext_parity(ttsprk_golden, faults, cfg, batch=batch)


@needs_cext
def test_cext_with_scalar_drain_parity(ttsprk_golden):
    """A nonzero tail_lanes hands stragglers to the scalar drain even
    under the C kernel; the handoff must stay digest-neutral."""
    cfg = QUICK
    faults = _shard_faults(ttsprk_golden, range(10), cfg)
    _assert_cext_parity(ttsprk_golden, faults, cfg, batch=16, tail_lanes=8)


@needs_cext
def test_cext_unpruned_parity(ttsprk_golden):
    cfg = QUICK
    faults = _shard_faults(ttsprk_golden, range(6), cfg)
    _assert_cext_parity(ttsprk_golden, faults, cfg, prune=False, batch=8)


# -- campaign-level wiring ----------------------------------------------------

@needs_cext
def test_campaign_kernel_digest_parity(quick_campaign):
    """digest() + pruning stats identical for both kernel backends."""
    for kernel in ("cext", "numpy"):
        result = run_campaign(QUICK, workers=1, batch=64, kernel=kernel)
        assert result.digest() == quick_campaign.digest()
        assert result.meta["pruning"] == quick_campaign.meta["pruning"]
        assert result.meta["kernel"] == kernel


def test_campaign_meta_kernel_none_for_scalar(quick_campaign):
    """The scalar engine has no step kernel; meta records that."""
    assert quick_campaign.meta.get("kernel") is None
