"""Kernel backend registry and compiled-kernel parity.

Two layers of guarantee around the C extension:

* **registry semantics** — ``auto`` silently downgrades, explicit
  ``cext`` fails loudly, ``REPRO_KERNEL`` steers defaults, and every
  backend produces byte-identical campaign results;
* **per-cycle state parity** — stronger than digest equality: a mirror
  engine steps the numpy and C kernels side by side on real fault
  workloads and holds the *entire* SoA state and memory matrices equal
  after every cycle, so a kernel bug cannot hide behind digest
  collisions or late masking.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    BatchInjectionEngine,
    CampaignConfig,
    InjectionEngine,
    KERNEL_BREAKEVEN_LANES,
    KERNEL_CHOICES,
    breakeven_lanes,
    cext_available,
    resolve_kernel,
    resolve_threads,
    run_campaign,
    sample_flops,
    schedule_faults,
)
from repro.faults import _cstep, kernels
from repro.faults.batch import _cext_tables
from repro.faults.parallel import sampling_rng, schedule_rng

QUICK = CampaignConfig.quick()

needs_cext = pytest.mark.skipif(
    not cext_available(),
    reason=f"compiled kernel unavailable: {kernels.cext_build_error()}")


# -- registry ----------------------------------------------------------------

def test_kernel_choices_stable():
    assert KERNEL_CHOICES == ("auto", "cext", "numpy")


def test_resolve_auto_picks_a_backend():
    assert resolve_kernel("auto") == (
        "cext" if cext_available() else "numpy")
    assert resolve_kernel(None) == resolve_kernel("auto")


def test_resolve_numpy_always_works():
    assert resolve_kernel("numpy") == "numpy"


def test_resolve_rejects_unknown():
    with pytest.raises(ValueError, match="unknown kernel"):
        resolve_kernel("fortran")


def test_env_var_steers_default(monkeypatch):
    monkeypatch.setenv(kernels.KERNEL_ENV, "numpy")
    assert resolve_kernel(None) == "numpy"
    # An explicit argument wins over the environment.
    assert resolve_kernel("auto") == (
        "cext" if cext_available() else "numpy")


def test_explicit_cext_fails_loudly_when_unavailable(monkeypatch):
    monkeypatch.setattr(_cstep, "MODULE", None)
    monkeypatch.setattr(_cstep, "BUILD_ERROR", "no compiler on this host")
    assert resolve_kernel("auto") == "numpy"  # silent downgrade
    with pytest.raises(RuntimeError, match="no compiler on this host"):
        resolve_kernel("cext")


def test_engine_records_resolved_kernel(ttsprk_golden):
    engine = BatchInjectionEngine(ttsprk_golden, kernel="numpy")
    assert engine.kernel == "numpy"
    assert engine._cext is None
    auto = BatchInjectionEngine(ttsprk_golden)
    assert auto.kernel == ("cext" if cext_available() else "numpy")


# -- per-cycle SoA parity (stronger than digest) ------------------------------

class _MirrorEngine(BatchInjectionEngine):
    """numpy-kernel engine that replays every step through the C kernel.

    After each vectorized ``_step`` the C ``step`` runs on a snapshot
    of the pre-step state; the two resulting (state, memory) matrices
    must agree in every lane, every row, every cycle.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, kernel="numpy", **kwargs)
        self._mod = kernels.cext_module()
        self._ctables = _cext_tables()
        self.steps_checked = 0

    def _step(self, n: int) -> None:
        S2 = self.S.copy()
        M2 = self.M.copy()
        super()._step(n)
        self._mod.step(S2, M2, self._stim, self._ctables, n)
        np.testing.assert_array_equal(
            S2[:, :n], self.S[:, :n],
            err_msg=f"C step diverged from numpy step ({n} lanes)")
        np.testing.assert_array_equal(
            M2[:n], self.M[:n],
            err_msg=f"C step diverged from numpy step memory ({n} lanes)")
        self.steps_checked += 1


def _shard_faults(golden, flop_idxs, cfg):
    flops = sample_flops(cfg, sampling_rng(cfg.seed))
    faults = []
    for idx in flop_idxs:
        faults.extend(schedule_faults(
            flops[idx], golden.n_cycles, cfg,
            schedule_rng(cfg.seed, 0, idx)))
    return faults


@needs_cext
@pytest.mark.parametrize("trial,batch", ((0, 8), (1, 32)))
def test_per_cycle_state_parity(ttsprk_golden, trial, batch):
    """Full SoA matrix equality between kernels, every cycle, on a
    random shard of real faults (tail_lanes=0: no scalar drain)."""
    cfg = QUICK
    n_flops = len(sample_flops(cfg, sampling_rng(cfg.seed)))
    rnd = random.Random(5150 + trial)
    idxs = sorted(rnd.sample(range(n_flops), k=min(8, n_flops)))
    faults = _shard_faults(ttsprk_golden, idxs, cfg)
    assert faults
    engine = _MirrorEngine(ttsprk_golden, max_observe=cfg.max_observe,
                           mask_check_stride=cfg.mask_check_stride,
                           batch=batch, tail_lanes=0)
    engine.inject_all(faults)
    assert engine.steps_checked > 0  # the mirror actually ran


# -- engine-level parity through the fused drive loop ------------------------

def _assert_cext_parity(golden, faults, cfg, prune=True, **batch_kwargs):
    scalar = InjectionEngine(golden, max_observe=cfg.max_observe,
                             mask_check_stride=cfg.mask_check_stride,
                             prune=prune)
    expected = [scalar.inject(f) for f in faults]
    engine = BatchInjectionEngine(golden, max_observe=cfg.max_observe,
                                  mask_check_stride=cfg.mask_check_stride,
                                  prune=prune, kernel="cext", **batch_kwargs)
    assert engine.inject_all(faults) == expected
    assert engine.stats.as_dict() == scalar.stats.as_dict()


@needs_cext
@pytest.mark.parametrize("trial,batch", ((0, 3), (1, 17), (2, 128)))
def test_cext_random_shard_parity(ttsprk_golden, trial, batch):
    """Records + PruneStats parity scalar vs cext on random shards."""
    cfg = QUICK
    n_flops = len(sample_flops(cfg, sampling_rng(cfg.seed)))
    rnd = random.Random(20180615 + trial)  # same shards as test_batch
    idxs = sorted(rnd.sample(range(n_flops), k=min(12, n_flops)))
    faults = _shard_faults(ttsprk_golden, idxs, cfg)
    assert faults
    _assert_cext_parity(ttsprk_golden, faults, cfg, batch=batch)


@needs_cext
def test_cext_with_scalar_drain_parity(ttsprk_golden):
    """A nonzero tail_lanes hands stragglers to the scalar drain even
    under the C kernel; the handoff must stay digest-neutral."""
    cfg = QUICK
    faults = _shard_faults(ttsprk_golden, range(10), cfg)
    _assert_cext_parity(ttsprk_golden, faults, cfg, batch=16, tail_lanes=8)


@needs_cext
def test_cext_unpruned_parity(ttsprk_golden):
    cfg = QUICK
    faults = _shard_faults(ttsprk_golden, range(6), cfg)
    _assert_cext_parity(ttsprk_golden, faults, cfg, prune=False, batch=8)


# -- campaign-level wiring ----------------------------------------------------

@needs_cext
def test_campaign_kernel_digest_parity(quick_campaign):
    """digest() + pruning stats identical for both kernel backends."""
    for kernel in ("cext", "numpy"):
        result = run_campaign(QUICK, workers=1, batch=64, kernel=kernel)
        assert result.digest() == quick_campaign.digest()
        assert result.meta["pruning"] == quick_campaign.meta["pruning"]
        assert result.meta["kernel"] == kernel


def test_campaign_meta_kernel_none_for_scalar(quick_campaign):
    """The scalar engine has no step kernel; meta records that."""
    assert quick_campaign.meta.get("kernel") is None


# -- per-kernel scalar-drain breakeven ----------------------------------------

def test_breakeven_is_per_kernel():
    """The numpy constant must not leak onto the cext path: the
    compiled kernel's only fixed cost is one C call, so its breakeven
    is a handful of lanes, not ~192."""
    assert KERNEL_BREAKEVEN_LANES["numpy"] == 192
    assert KERNEL_BREAKEVEN_LANES["cext"] <= 16
    assert breakeven_lanes("numpy") == 192
    assert breakeven_lanes("cext") == KERNEL_BREAKEVEN_LANES["cext"]
    with pytest.raises(ValueError, match="unknown kernel"):
        breakeven_lanes("auto")  # only concrete backends have one


def test_engine_tail_lanes_kernel_aware(ttsprk_golden):
    numpy_engine = BatchInjectionEngine(ttsprk_golden, kernel="numpy",
                                        batch=256)
    assert numpy_engine._tail_lanes == 192
    # Narrow batches cap at the batch size (whole run drains scalar).
    assert BatchInjectionEngine(ttsprk_golden, kernel="numpy",
                                batch=64)._tail_lanes == 64
    if cext_available():
        cext_engine = BatchInjectionEngine(ttsprk_golden, kernel="cext",
                                           batch=256)
        assert cext_engine._tail_lanes == breakeven_lanes("cext")
    # An explicit tail_lanes always wins.
    assert BatchInjectionEngine(ttsprk_golden, kernel="numpy",
                                tail_lanes=7)._tail_lanes == 7


# -- drive-loop thread resolution ---------------------------------------------

def test_resolve_threads_explicit_and_clamped():
    assert resolve_threads(4) == 4
    assert resolve_threads(1) == 1
    assert resolve_threads(0) == 1
    assert resolve_threads(-3) == 1


def test_resolve_threads_env(monkeypatch):
    monkeypatch.setenv(kernels.THREADS_ENV, "3")
    assert resolve_threads(None) == 3
    assert resolve_threads(2) == 2  # explicit beats env


def test_resolve_threads_autosize(monkeypatch):
    monkeypatch.delenv(kernels.THREADS_ENV, raising=False)
    cores = __import__("os").cpu_count() or 1
    # One thread per core, but never slices below 16 lanes/thread.
    assert resolve_threads(None, lanes=256) == max(1, min(cores, 16))
    assert resolve_threads(None, lanes=16) == 1
    assert resolve_threads(None, lanes=8) == 1


def test_engine_records_threads(ttsprk_golden, monkeypatch):
    monkeypatch.delenv(kernels.THREADS_ENV, raising=False)
    engine = BatchInjectionEngine(ttsprk_golden, kernel="numpy",
                                  batch=64, threads=5)
    assert engine.threads == 5
    auto = BatchInjectionEngine(ttsprk_golden, kernel="numpy", batch=32)
    assert auto.threads >= 1


# -- multithreaded drive parity ----------------------------------------------

@needs_cext
@pytest.mark.parametrize("threads,batch", (
    (1, 32),    # single-thread path: bit-identical to the PR 7 loop
    (4, 17),    # odd remainder: slices of 5/4/4/4 lanes
    (4, 3),     # threads > lanes: clamps to one slice per lane
    (8, 64),
))
def test_cext_threaded_parity(ttsprk_golden, threads, batch):
    """Records + PruneStats identical to the scalar engine for any
    (threads, batch) — lane slices merge in lane order, so the thread
    count is a pure wall-clock knob."""
    cfg = QUICK
    faults = _shard_faults(ttsprk_golden, range(12), cfg)
    assert faults
    _assert_cext_parity(ttsprk_golden, faults, cfg, batch=batch,
                        threads=threads)


@needs_cext
def test_cext_pool_spawns_workers(ttsprk_golden):
    """A multithreaded drive actually stands up pool workers."""
    cfg = QUICK
    faults = _shard_faults(ttsprk_golden, range(6), cfg)
    engine = BatchInjectionEngine(ttsprk_golden, max_observe=cfg.max_observe,
                                  mask_check_stride=cfg.mask_check_stride,
                                  kernel="cext", batch=32, threads=3,
                                  tail_lanes=0)
    engine.inject_all(faults)
    assert kernels.cext_module().pool_size() >= 2


_SERIAL_REFERENCE: dict = {}


def _serial_reference(golden, cfg):
    """Scalar-engine records+stats for the hypothesis shard, once."""
    if "ref" not in _SERIAL_REFERENCE:
        faults = _shard_faults(golden, range(8), cfg)
        scalar = InjectionEngine(golden, max_observe=cfg.max_observe,
                                 mask_check_stride=cfg.mask_check_stride)
        records = [scalar.inject(f) for f in faults]
        _SERIAL_REFERENCE["ref"] = (faults, records, scalar.stats.as_dict())
    return _SERIAL_REFERENCE["ref"]


@needs_cext
@settings(max_examples=12, deadline=None)
@given(threads=st.integers(min_value=1, max_value=9),
       batch=st.integers(min_value=1, max_value=48))
def test_any_threads_batch_reproduces_serial(ttsprk_golden, threads, batch):
    """Property: every (threads, batch) pair reproduces the serial
    outcome sequence and pruning stats exactly."""
    cfg = QUICK
    faults, records, stats = _serial_reference(ttsprk_golden, cfg)
    engine = BatchInjectionEngine(ttsprk_golden, max_observe=cfg.max_observe,
                                  mask_check_stride=cfg.mask_check_stride,
                                  kernel="cext", batch=batch, threads=threads)
    assert engine.inject_all(faults) == records
    assert engine.stats.as_dict() == stats
