"""Liveness-pruned injection tests (schema v4).

The pruning layer must be *provably invisible*: every record a pruned
engine emits — masked-without-simulation, deferred-start, equivalence-
class replay — must be identical to what the plain v3 algorithm
produces, and the campaign digest must be bit-identical with pruning on
or off for any worker count.  These tests check the tracer semantics,
the mask matrices, the query functions against brute force, and then
the end-to-end guarantees.
"""

import dataclasses
from bisect import bisect_left

import numpy as np
import pytest

import repro.faults.golden as golden_mod
from repro.cpu.core import AccessTracer, Cpu
from repro.cpu.memory import Memory
from repro.cpu.units import (
    FULL_WRITE_MASK,
    MASK_WORDS,
    REG_BY_NAME,
    REG_INDEX,
    FlopRef,
    all_flops,
)
from repro.faults import CampaignConfig, GoldenTrace, run_campaign
from repro.faults.campaign import schedule_faults
from repro.faults.injector import InjectionEngine
from repro.faults.models import Fault, FaultKind
from repro.faults.parallel import schedule_rng
from repro.workloads import KERNELS

#: Registers the compact port tuple reads at the top of every step().
PORT_REGS = ("imc_addr", "imc_valid", "imc_pred", "dmc_addr", "dmc_wdata",
             "dmc_ctrl", "dmc_strb", "bus_addr", "bus_data", "bus_ctrl",
             "io_out", "io_out_v", "ret_pc", "ret_val", "ret_rd",
             "ret_valid", "status", "halted", "br_taken", "br_valid")


def _mask_bit(matrix: np.ndarray, t: int, reg_idx: int) -> bool:
    word, bit = divmod(reg_idx, 64)
    return bool((int(matrix[t, word]) >> bit) & 1)


class TestAccessTracer:
    def test_stale_read_semantics(self):
        tracer = AccessTracer({"a": 1, "b": 2, "c": 3})
        tracer.arm()
        _ = tracer["a"]          # plain read: stale
        tracer["b"] = 5
        _ = tracer["b"]          # read after same-cycle write: fresh, not a use
        tracer["a"] = 9          # read-then-write (RMW shape): both recorded
        assert tracer.reads == {"a"}
        assert tracer.writes == {"b", "a"}
        tracer.arm()
        assert tracer.reads == set() and tracer.writes == set()

    def test_tracing_does_not_change_step_behaviour(self):
        def run(trace: bool):
            program = GoldenTrace(KERNELS["ttsprk"]).program
            mem = Memory(2048)
            mem.words[: len(program.words)] = program.words
            cpu = Cpu(mem, GoldenTrace(KERNELS["ttsprk"]).stimulus,
                      entry=program.entry)
            if trace:
                cpu.start_access_trace()
            out = [cpu.step() for _ in range(200)]
            if trace:
                cpu.stop_access_trace()
            assert type(cpu.__dict__) is dict
            return out, cpu.snapshot()

        assert run(False) == run(True)

    def test_stop_restores_plain_dict(self, sum_cpu):
        tracer = sum_cpu.start_access_trace()
        assert isinstance(sum_cpu.__dict__, AccessTracer)
        sum_cpu.step()
        assert tracer.reads and tracer.writes
        sum_cpu.stop_access_trace()
        assert type(sum_cpu.__dict__) is dict


class TestMaskMatrices:
    def test_shapes_and_cache_roundtrip(self, ttsprk_golden):
        g = ttsprk_golden
        assert g.read_mask.shape == (g.n_cycles, MASK_WORDS)
        assert g.write_mask.shape == (g.n_cycles, MASK_WORDS)
        assert g.read_mask.dtype == np.uint64

    def test_port_registers_read_every_cycle(self, ttsprk_golden):
        g = ttsprk_golden
        for reg in PORT_REGS:
            if reg not in REG_INDEX:
                continue
            idx = REG_INDEX[reg]
            word, bit = divmod(idx, 64)
            col = (g.read_mask[:, word] >> np.uint64(bit)) & np.uint64(1)
            assert col.all(), f"{reg} must be read (port tuple) every cycle"
            # ... which means a soft flip there is never deferred.
            assert g.soft_start(reg, 0) == 0

    def test_pc_read_every_cycle(self, ttsprk_golden):
        g = ttsprk_golden
        idx = REG_INDEX["pc"]
        word, bit = divmod(idx, 64)
        col = (g.read_mask[:, word] >> np.uint64(bit)) & np.uint64(1)
        # fetch consults the PC every cycle (it is *written* only on
        # non-stall cycles — which is exactly what the pruner exploits)
        assert col.all()
        assert g.soft_start("pc", 0) == 0


class TestLivenessQueries:
    def _brute_soft_start(self, g, reg, t0):
        idx = REG_INDEX[reg]
        full = bool((FULL_WRITE_MASK >> idx) & 1)
        for t in range(t0, g.n_cycles):
            read = _mask_bit(g.read_mask, t, idx)
            write = _mask_bit(g.write_mask, t, idx)
            if read or (write and not full):
                return t
            if full and write:
                return None  # killing overwrite before any use
        return None

    def test_soft_start_matches_bruteforce(self, ttsprk_golden):
        g = ttsprk_golden
        for reg in REG_BY_NAME:
            for t0 in (0, 1, 7, g.n_cycles // 2, g.n_cycles - 2,
                       g.n_cycles - 1):
                assert g.soft_start(reg, t0) == \
                    self._brute_soft_start(g, reg, t0), (reg, t0)

    def test_first_active_use_composes_activation_and_use(self, ttsprk_golden):
        g = ttsprk_golden
        for reg, bit in (("rf3", 5), ("pc", 0), ("scratch", 12),
                         ("mw_val", 31), ("cyc", 2)):
            for value in (0, 1):
                for t0 in (0, g.n_cycles // 3):
                    got = g.first_active_use(reg, bit, value, t0)
                    idx = REG_INDEX[reg]
                    use = g._liveness(reg)[0]
                    expected = None
                    for t in range(t0, g.n_cycles):
                        active = ((int(g.state_matrix[t, idx]) >> bit) & 1) \
                            != value
                        if active and use[t]:
                            expected = t
                            break
                    assert got == expected, (reg, bit, value, t0)
                    act = g.activation_cycle(reg, bit, value, t0)
                    if got is not None:
                        assert act is not None and act <= got


class TestPrunedInjectionSoundness:
    @pytest.fixture(scope="class")
    def engines(self, ttsprk_golden):
        return (InjectionEngine(ttsprk_golden, max_observe=600, prune=True),
                InjectionEngine(ttsprk_golden, max_observe=600, prune=False))

    def test_sampled_faults_identical_records(self, ttsprk_golden, engines):
        """N random faults: pruned records == full-from-t0 records."""
        g = ttsprk_golden
        pruned, plain = engines
        rng = np.random.default_rng(11)
        flops = all_flops()
        for i in rng.choice(len(flops), size=60, replace=False):
            flop = flops[int(i)]
            for kind in (FaultKind.SOFT, FaultKind.SOFT, FaultKind.STUCK0,
                         FaultKind.STUCK1):
                fault = Fault(flop, kind, int(rng.integers(0, g.n_cycles)))
                assert pruned.inject(fault) == plain.inject(fault), fault

    def test_pruning_actually_prunes(self, engines):
        pruned, plain = engines
        stats = pruned.stats
        assert stats.soft_pruned + stats.hard_pruned > 0
        assert stats.cycles_saved > 0
        assert stats.sim_cycles < plain.stats.sim_cycles

    def test_equivalence_class_collapsing(self, ttsprk_golden):
        g = ttsprk_golden
        # find a (reg, cycle) whose deferred start is shared by t0 and t0+1
        found = None
        for spec in REG_BY_NAME.values():
            for t0 in range(0, g.n_cycles - 1, 37):
                s0 = g.soft_start(spec.name, t0)
                if s0 is not None and s0 > t0 + 1 \
                        and g.soft_start(spec.name, t0 + 1) == s0:
                    found = (spec.name, t0)
                    break
            if found:
                break
        assert found, "no deferrable window in the trace?"
        reg, t0 = found
        engine = InjectionEngine(g, max_observe=600, prune=True)
        rec_a = engine.inject(Fault(FlopRef(reg, 0), FaultKind.SOFT, t0))
        rec_b = engine.inject(Fault(FlopRef(reg, 0), FaultKind.SOFT, t0 + 1))
        assert engine.stats.equiv_classes == 1
        assert engine.stats.equiv_hits == 1
        if rec_a is None:
            assert rec_b is None
        else:
            assert rec_b is not None
            assert rec_a.detect_cycle == rec_b.detect_cycle
            assert rec_a.diverged == rec_b.diverged
            assert rec_a.inject_cycle == t0
            assert rec_b.inject_cycle == t0 + 1


class TestDigestParity:
    def test_quick_campaign_digest_prune_vs_no_prune(self):
        cfg = CampaignConfig.quick()
        with_prune = run_campaign(cfg, workers=1)
        without = run_campaign(dataclasses.replace(cfg, prune=False),
                               workers=1)
        assert with_prune.digest() == without.digest()
        assert with_prune.records == without.records
        # only the pruned run reports pruning work
        assert sum(with_prune.meta["pruning"].values()) > 0
        pruning_off = without.meta["pruning"]
        assert pruning_off["soft_pruned"] == pruning_off["hard_pruned"] == 0

    def test_digest_independent_of_workers(self):
        cfg = CampaignConfig.quick()
        assert run_campaign(cfg, workers=1).digest() == \
            run_campaign(cfg, workers=2).digest()


class TestMemoryScratchReuse:
    def test_out_buffer_matches_fresh_allocation(self):
        g = GoldenTrace(KERNELS["canrdr"])
        scratch = Memory(g.mem_words)
        for cycle in (0, 1, g.n_cycles // 2, g.n_cycles):
            fresh = g.memory_at(cycle)
            reused = g.memory_at(cycle, out=scratch)
            assert reused is scratch
            assert reused.words == fresh.words

    def test_exact_checkpoint_boundary(self, monkeypatch):
        """Reconstruction at a cycle whose log index is exactly k*stride."""
        g = GoldenTrace(KERNELS["canrdr"])
        assert len(g.write_log) >= 32
        monkeypatch.setattr(golden_mod, "MEMORY_CHECKPOINT_EVERY", 16)
        g.reindex_write_log(g.write_log)  # rebuild checkpoints at new stride
        target = None
        for cycle in range(g.n_cycles + 1):
            j = bisect_left(g._log_cycles, cycle)
            if j and j % 16 == 0:
                target = cycle
                break
        assert target is not None, "no exact-boundary cycle in the log"
        words = list(g._initial_words)
        for when, idx, value in g.write_log:
            if when >= target:
                break
            words[idx] = value
        assert g.memory_at(target).words == words
        scratch = Memory(g.mem_words)
        assert g.memory_at(target, out=scratch).words == words


class TestScheduleClamp:
    def test_interval_count_clamped_and_remainder_spread(self):
        """n_cycles % intervals != 0 must not create extra intervals."""
        flop = all_flops()[0]
        cfg = CampaignConfig(intervals=8, soft_per_flop=8, hard_per_flop=0)
        n_cycles = 27  # 8 intervals of length 4,4,4,3,3,3,3,3
        rng = schedule_rng(cfg.seed, 0, 0)
        faults = schedule_faults(flop, n_cycles, cfg, rng)
        assert len(faults) == 8
        base, extra = divmod(n_cycles, 8)
        bounds = []
        lo = 0
        for iv in range(8):
            hi = lo + base + (1 if iv < extra else 0)
            bounds.append((lo, hi))
            lo = hi
        assert lo == n_cycles  # intervals partition the run exactly
        hit = [sum(lo <= f.cycle < hi for f in faults) for lo, hi in bounds]
        # soft_per_flop == intervals: every interval holds exactly one fault
        assert hit == [1] * 8

    def test_cycles_always_in_range(self):
        flop = all_flops()[3]
        cfg = CampaignConfig(intervals=64, soft_per_flop=4, hard_per_flop=2)
        for n_cycles in (1, 2, 63, 64, 65, 100, 1414, 2999):
            rng = schedule_rng(cfg.seed, 1, 5)
            for fault in schedule_faults(flop, n_cycles, cfg, rng):
                assert 0 <= fault.cycle < n_cycles
