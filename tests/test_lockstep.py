"""Lockstep checker, DMR and TMR tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu import NUM_SCS, assemble
from repro.cpu.memory import InputStream
from repro.lockstep import (
    PORT_FIELDS,
    SIGNAL_CATEGORIES,
    DmrLockstep,
    LockstepChecker,
    TmrLockstep,
    VotingChecker,
    diverged_set,
    dsr_to_set,
    dsr_value,
    expand_ports,
)
from tests.conftest import SUM_LOOP

#: Arbitrary-but-valid compact port tuples: each entry within its
#: SC-visible bit width (expand_ports is injective on these).
_port_tuple = st.tuples(
    *[st.integers(0, (1 << f.width) - 1) for f in PORT_FIELDS])


@pytest.fixture
def program():
    return assemble(SUM_LOOP)


class TestCategories:
    def test_exactly_62_categories(self):
        """The paper's Cortex-R5 categorisation count."""
        assert len(SIGNAL_CATEGORIES) == 62
        assert len(SIGNAL_CATEGORIES) == NUM_SCS

    def test_names_unique(self):
        names = [sc.name for sc in SIGNAL_CATEGORIES]
        assert len(set(names)) == len(names)

    def test_diverged_set_symmetric(self):
        a = tuple(range(NUM_SCS))
        b = tuple(0 if i == 5 else v for i, v in enumerate(a))
        assert diverged_set(a, b) == diverged_set(b, a) == frozenset({5})

    def test_no_divergence_on_equal(self):
        a = tuple(range(NUM_SCS))
        assert diverged_set(a, a) == frozenset()


class TestDsrPacking:
    def test_pack_unpack(self):
        s = frozenset({0, 13, 61})
        assert dsr_to_set(dsr_value(s)) == s

    @given(bits=st.sets(st.integers(0, NUM_SCS - 1), max_size=NUM_SCS))
    def test_roundtrip_property(self, bits):
        s = frozenset(bits)
        assert dsr_to_set(dsr_value(s)) == s


class TestChecker:
    def test_no_error_on_identical(self):
        checker = LockstepChecker()
        out = tuple(range(NUM_SCS))
        assert not checker.compare(out, out)
        assert not checker.state.error

    def test_error_latches_dsr(self):
        checker = LockstepChecker()
        a = tuple(range(NUM_SCS))
        b = tuple(v + (i == 7) for i, v in enumerate(a))
        assert checker.compare(a, b)
        assert checker.state.error
        assert checker.state.diverged == frozenset({7})
        assert checker.state.error_cycle == 0

    def test_error_cycle_counts_comparisons(self):
        checker = LockstepChecker()
        out = tuple(range(NUM_SCS))
        for _ in range(5):
            checker.compare(out, out)
        bad = tuple(v + (i == 0) for i, v in enumerate(out))
        checker.compare(out, bad)
        assert checker.state.error_cycle == 5

    def test_latched_error_ignores_later_compares(self):
        checker = LockstepChecker()
        a = tuple(range(NUM_SCS))
        b = tuple(v + (i == 3) for i, v in enumerate(a))
        checker.compare(a, b)
        state = checker.state
        checker.compare(a, a)
        assert checker.state is state

    def test_reset_clears(self):
        checker = LockstepChecker()
        a = tuple(range(NUM_SCS))
        b = tuple(v + 1 for v in a)
        checker.compare(a, b)
        checker.reset()
        assert not checker.state.error


class TestVoting:
    def test_identifies_erring_cpu(self):
        checker = VotingChecker(3)
        good = tuple(range(NUM_SCS))
        bad = tuple(v + (i == 11) for i, v in enumerate(good))
        assert checker.compare([good, bad, good])
        assert checker.state.erring_cpu == 1
        assert checker.state.diverged == frozenset({11})

    def test_no_error_when_all_agree(self):
        checker = VotingChecker(3)
        out = tuple(range(NUM_SCS))
        assert not checker.compare([out, out, out])

    def test_requires_three_cores(self):
        with pytest.raises(ValueError):
            VotingChecker(2)

    def test_wrong_core_count_rejected(self):
        checker = VotingChecker(3)
        out = tuple(range(NUM_SCS))
        with pytest.raises(ValueError):
            checker.compare([out, out])


class TestVoterCompactParity:
    """The compact-entry vote must latch *identical* state to the
    full 62-SC expansion — the equivalence that makes the fast path a
    fix and not a behaviour change."""

    @staticmethod
    def _latched_states(group):
        compact = VotingChecker(3)
        expanded = VotingChecker(3)
        latched_c = compact.compare(list(group))
        latched_e = expanded.compare([expand_ports(o) for o in group])
        assert latched_c == latched_e
        return compact.state, expanded.state

    @staticmethod
    def _assert_equivalent(cs, es):
        assert cs.error == es.error
        if not cs.error:
            return
        assert cs.diverged == es.diverged
        assert cs.dsr == es.dsr
        assert cs.erring_cpu == es.erring_cpu
        assert cs.error_cycle == es.error_cycle
        voted = (cs.voted if len(cs.voted) == NUM_SCS
                 else expand_ports(cs.voted))
        assert voted == es.voted

    @given(base=_port_tuple, other=_port_tuple, slot=st.integers(0, 2))
    def test_single_erring_core(self, base, other, slot):
        # The TMR case the fast path exists for: a strict per-entry
        # majority always exists with one deviating core.
        group = [base, base, base]
        group[slot] = other
        self._assert_equivalent(*self._latched_states(group))

    @given(a=_port_tuple, b=_port_tuple, c=_port_tuple)
    def test_arbitrary_triples_fall_back_equivalently(self, a, b, c):
        # Byzantine multi-core cycles may lack a per-entry majority;
        # the fallback to full expansion must agree too.
        self._assert_equivalent(*self._latched_states([a, b, c]))

    def test_compact_vote_ports_exactness(self):
        base = tuple((1 << f.width) - 1 for f in PORT_FIELDS)
        bad = (0,) + base[1:]
        voter = VotingChecker(3)
        assert voter.vote_ports([base, bad, base]) == base
        # Three distinct values on entry 0 -> no strict majority ->
        # no compact vote.
        assert voter.vote_ports([base, bad, (1,) + base[1:]]) is None

    def test_compact_detection_keeps_attribution_tiebreak(self):
        # Worst-diverged core wins even when several disagree with the
        # vote; ties resolve to the first (matching the expanded path).
        base = tuple(0 for _ in PORT_FIELDS)
        one_sc = (1,) + base[1:]               # 1 diverged SC (imc_addr run)
        many_sc = base[:3] + (0xFFFF,) + base[4:]   # 4 diverged dmc_addr SCs
        voter = VotingChecker(3)
        assert voter.compare([one_sc, base, many_sc])
        assert voter.state.erring_cpu == 2


class TestDmr:
    def test_fault_free_run_never_diverges(self, program):
        dmr = DmrLockstep(program, InputStream([0]))
        state = dmr.run(2000)
        assert not state.error
        assert dmr.core_a.halted and dmr.core_b.halted
        assert dmr.core_a.reg(1) == sum(range(1, 51))

    def test_injected_flip_detected(self, program):
        dmr = DmrLockstep(program, InputStream([0]))
        for _ in range(20):
            dmr.step()
        dmr.core_b.pc ^= 4  # control-flow upset in the redundant core
        state = dmr.run(2000)
        assert state.error
        assert state.diverged
        assert dmr.stopped

    def test_register_flip_may_be_architecturally_masked(self, program):
        """A flip in a register that is overwritten before being read
        leaves no trace: the cores reconverge (this is exactly the
        masking that makes soft manifestation rates low)."""
        dmr = DmrLockstep(program, InputStream([0]))
        for _ in range(20):
            dmr.step()
        dmr.core_b.rf1 ^= 1
        state = dmr.run(2000)
        if not state.error:
            assert dmr.core_a.reg(1) == dmr.core_b.reg(1)

    def test_stopped_dmr_ignores_steps(self, program):
        dmr = DmrLockstep(program, InputStream([0]))
        dmr.core_b.pc ^= 4
        dmr.run(100)
        cycle = dmr.cycle
        dmr.step()
        assert dmr.cycle == cycle

    def test_reset_restores_lockstep(self, program):
        dmr = DmrLockstep(program, InputStream([0]))
        for _ in range(15):
            dmr.step()
        dmr.core_b.pc ^= 4
        dmr.run(2000)
        assert dmr.error.error
        dmr.reset(program)
        state = dmr.run(2000)
        assert not state.error
        assert dmr.core_a.reg(1) == sum(range(1, 51))


class TestTmr:
    def test_fault_free_run(self, program):
        tmr = TmrLockstep(program, InputStream([0]))
        state = tmr.run(2000)
        assert not state.error

    def test_identifies_and_recovers_erring_core(self, program):
        tmr = TmrLockstep(program, InputStream([0]))
        for _ in range(10):
            tmr.step()
        # Flip a directly-ported register so detection is guaranteed
        # regardless of what the pipeline is doing this cycle.
        tmr.cores[2].imc_addr ^= 1
        state = tmr.run(2000)
        assert state.error
        assert state.erring_cpu == 2
        recovered = tmr.forward_recover()
        assert recovered == 2
        final = tmr.run(3000)
        assert not final.error
        assert all(c.halted for c in tmr.cores)
        assert tmr.cores[2].reg(1) == sum(range(1, 51))

    def test_recover_without_error_rejected(self, program):
        tmr = TmrLockstep(program, InputStream([0]))
        with pytest.raises(RuntimeError):
            tmr.forward_recover()
