"""Memory and input stream tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.assembler import assemble
from repro.cpu.memory import InputStream, Memory, MemoryError_


class TestWordAccess:
    def test_write_read(self):
        mem = Memory(64)
        mem.write_word(8, 0xCAFEBABE)
        assert mem.read_word(8) == 0xCAFEBABE

    def test_word_select_ignores_low_bits(self):
        mem = Memory(64)
        mem.write_word(8, 123)
        assert mem.read_word(9) == 123
        assert mem.read_word(11) == 123

    def test_wraps_address_space(self):
        mem = Memory(16)
        mem.write_word(16 * 4, 7)  # wraps to word 0
        assert mem.read_word(0) == 7

    def test_write_masks_to_32_bits(self):
        mem = Memory(16)
        mem.write_word(0, 0x1_0000_0005)
        assert mem.read_word(0) == 5


class TestByteAccess:
    def test_little_endian_lanes(self):
        mem = Memory(16)
        mem.write_word(0, 0x44332211)
        assert [mem.read_byte(i) for i in range(4)] == [0x11, 0x22, 0x33, 0x44]

    def test_byte_write_preserves_other_lanes(self):
        mem = Memory(16)
        mem.write_word(0, 0x44332211)
        mem.write_byte(2, 0xAA)
        assert mem.read_word(0) == 0x44AA2211

    def test_byte_write_masks_value(self):
        mem = Memory(16)
        mem.write_byte(0, 0x1FF)
        assert mem.read_byte(0) == 0xFF


class TestProgramLoading:
    def test_from_program(self):
        prog = assemble(".word 1, 2, 3")
        mem = Memory.from_program(prog, size_words=16)
        assert mem.words[:3] == [1, 2, 3]
        assert mem.words[3] == 0

    def test_program_too_large(self):
        prog = assemble(".space 32")
        with pytest.raises(MemoryError_):
            Memory.from_program(prog, size_words=16)

    def test_copy_is_independent(self):
        mem = Memory(16)
        mem.write_word(0, 1)
        clone = mem.copy()
        clone.write_word(0, 2)
        assert mem.read_word(0) == 1
        assert clone.read_word(0) == 2


class TestInputStream:
    def test_samples_in_order(self):
        stream = InputStream([10, 20, 30])
        assert [stream.sample(i) for i in range(3)] == [10, 20, 30]

    def test_wraps(self):
        stream = InputStream([10, 20])
        assert stream.sample(2) == 10
        assert stream.sample(5) == 20

    def test_empty_stream_defaults_to_zero(self):
        assert InputStream([]).sample(0) == 0
        assert InputStream().sample(99) == 0

    def test_values_masked_to_32_bits(self):
        assert InputStream([0x1_0000_0001]).sample(0) == 1


@given(addr=st.integers(0, 0xFFFFFFFF), value=st.integers(0, 0xFFFFFFFF))
def test_word_roundtrip_property(addr, value):
    mem = Memory(256)
    mem.write_word(addr, value)
    assert mem.read_word(addr) == value


@given(addr=st.integers(0, 1023), value=st.integers(0, 255))
def test_byte_roundtrip_property(addr, value):
    mem = Memory(256)
    mem.write_byte(addr, value)
    assert mem.read_byte(addr) == value


@given(addr=st.integers(0, 1020), word=st.integers(0, 0xFFFFFFFF))
def test_bytes_reassemble_word_property(addr, word):
    mem = Memory(256)
    base = addr & ~3
    mem.write_word(base, word)
    reassembled = sum(mem.read_byte(base + i) << (8 * i) for i in range(4))
    assert reassembled == word
