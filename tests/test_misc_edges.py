"""Edge-case coverage across small public surfaces."""

import pytest

from repro.cpu import FlopRef
from repro.faults import ErrorRecord, ErrorType, Fault, FaultKind, error_type_of
from repro.faults.stats import Spread


class TestFaultModels:
    def test_error_type_of(self):
        assert error_type_of(FaultKind.SOFT) is ErrorType.SOFT
        assert error_type_of(FaultKind.STUCK0) is ErrorType.HARD
        assert error_type_of(FaultKind.STUCK1) is ErrorType.HARD

    def test_kind_is_hard(self):
        assert not FaultKind.SOFT.is_hard
        assert FaultKind.STUCK0.is_hard and FaultKind.STUCK1.is_hard

    def test_record_latency_and_units(self):
        record = ErrorRecord(benchmark="x", flop=FlopRef("rf3", 7),
                             kind=FaultKind.STUCK1, inject_cycle=10,
                             detect_cycle=42, diverged=frozenset({1}))
        assert record.latency == 32
        assert record.unit == "DPU.RF"
        assert record.coarse_unit == "DPU"
        assert record.unit_for(fine=True) == "DPU.RF"
        assert record.unit_for(fine=False) == "DPU"

    def test_faults_hashable(self):
        a = Fault(FlopRef("pc", 0), FaultKind.SOFT, 5)
        b = Fault(FlopRef("pc", 0), FaultKind.SOFT, 5)
        assert a == b and len({a, b}) == 1


class TestSpread:
    def test_as_row_formats(self):
        spread = Spread(1.0, 2.5, 9.0)
        assert spread.as_row("{:.1f}") == "[1.0, 2.5, 9.0]"

    def test_percent_format(self):
        spread = Spread(0.01, 0.5, 0.99)
        assert spread.as_row("{:.0%}") == "[1%, 50%, 99%]"


class TestPredictorEdges:
    def test_empty_training_gives_pure_default(self):
        from repro.core import train_predictor
        predictor = train_predictor([])
        prediction = predictor.predict(frozenset({1, 2}))
        assert prediction.from_default
        assert prediction.error_type is ErrorType.HARD
        assert len(predictor.table) == 1

    def test_default_order_lengths(self):
        from repro.core import default_unit_order
        assert len(default_unit_order(False)) == 7
        assert len(default_unit_order(True)) == 13


class TestFiguresFine:
    def test_figure11_chart_fine_label(self, medium_campaign):
        from repro.analysis import evaluate_campaign
        from repro.analysis.figures import figure11_chart
        ev = evaluate_campaign(medium_campaign, fine=True, seed=0)
        assert "Fig 14" in figure11_chart(ev, fine=True)


class TestCampaignResultProps:
    def test_counters(self, quick_campaign):
        assert quick_campaign.n_injected > 0
        assert quick_campaign.n_errors == len(quick_campaign.records)
        assert quick_campaign.wall_seconds >= 0.0

    def test_sampled_flops_cover_units(self, quick_campaign):
        from repro.cpu.units import FINE_UNITS
        assert set(quick_campaign.sampled_flops) == set(FINE_UNITS)


class TestKernelRun:
    def test_run_kernel_respects_cycle_bound(self):
        from repro.workloads import KERNELS, run_kernel
        run = run_kernel(KERNELS["ttsprk"], max_cycles=50)
        assert run.cycles == 50
        assert not run.halted


class TestStlSpreadOrdering:
    @pytest.mark.parametrize("fine", [False, True])
    def test_spread_ordered(self, fine):
        from repro.bist import StlModel
        lo, mean, hi = StlModel(fine=fine).spread()
        assert lo <= mean <= hi
