"""Mutation testing: apply/revert hygiene, kill engines, the report.

The meta-level guarantee under test: planting a bug anywhere in the
verification stack (reference ALU, branch comparator, lockstep
checker) makes the fuzz flows fail fast — and un-planting it restores
bit-identical behaviour, so mutation sessions can never leak a broken
table into the rest of the suite.
"""

from __future__ import annotations

import json

import pytest

import repro.lockstep.checker as checker_mod
import repro.verify.refmodel as rm
from repro.cpu.isa import Op
from repro.verify import cosim, generate_program
from repro.verify.mutation import (
    _FaultSession,
    default_mutants,
    kill_by_cosim,
    kill_by_faultfuzz,
    run_mutation,
    write_report,
)


def _by_name(name: str):
    return next(m for m in default_mutants() if m.name == name)


# ---------------------------------------------------------------------------
# Apply / revert hygiene.
# ---------------------------------------------------------------------------

def test_alu_mutant_applies_and_reverts_cleanly():
    mutant = _by_name("alu_xor_flip")
    original = rm.ALU_EVAL[int(Op.XOR)]
    revert = mutant.apply()
    assert rm.ALU_EVAL[int(Op.XOR)] is mutant.fn
    assert rm.ALU_EVAL[int(Op.XOR)](5, 3) == ((5 ^ 3) ^ 1, 0, 0)
    revert()
    assert rm.ALU_EVAL[int(Op.XOR)] is original


def test_checker_mutant_applies_and_reverts_cleanly():
    mutant = _by_name("chk_drop_ret_val")
    original = checker_mod.port_equal
    revert = mutant.apply()
    a = tuple(range(18))
    b = a[:13] + (999,) + a[14:]       # differs only in ret_val (port 13)
    assert checker_mod.port_equal(a, b)         # the planted blindness
    assert not checker_mod.port_equal(a, a[:0] + (1,) + a[1:])
    revert()
    assert checker_mod.port_equal is original
    assert not checker_mod.port_equal(a, b)


def test_voter_mutant_patches_the_class():
    mutant = _by_name("chk_voter_min_majority")
    original = checker_mod.VotingChecker.vote
    revert = mutant.apply()
    try:
        voter = checker_mod.VotingChecker(3)
        voted = voter.vote([(5,) * 62, (5,) * 62, (1,) * 62])
        assert voted == (1,) * 62      # min, not the 5-majority
    finally:
        revert()
    assert checker_mod.VotingChecker.vote is original


def test_pool_shape():
    pool = default_mutants()
    kinds = {m.kind for m in pool}
    assert kinds == {"alu", "branch", "checker"}
    assert len({m.name for m in pool}) == len(pool)
    # Exactly one mutant is a pre-documented escape (the TMR voter,
    # which the DMR fault-fuzz harness structurally cannot reach).
    assert [m.name for m in pool if m.escape_rationale] \
        == ["chk_voter_min_majority"]


# ---------------------------------------------------------------------------
# Kill engines.
# ---------------------------------------------------------------------------

def test_cosim_kills_planted_alu_bug_fast():
    killed_at = kill_by_cosim(_by_name("alu_xor_flip"), seed=0,
                              max_programs=30)
    assert killed_at is not None and killed_at <= 30
    # The table is restored: the killing program now cosimulates clean.
    assert cosim(generate_program(f"0:{killed_at - 1}")).ok


def test_cosim_survivor_returns_none():
    from repro.verify.mutation import Mutant

    # An identity "mutant" is unkillable by construction.
    identity = Mutant("noop", "alu", "identity ADD patch",
                      int(Op.ADD), rm.ALU_EVAL[int(Op.ADD)])
    assert kill_by_cosim(identity, seed=0, max_programs=5) is None


def test_faultfuzz_kills_checker_mutants():
    session = _FaultSession(0, faults_per_program=4)
    for name in ("chk_drop_io_out", "chk_dsr_off_by_one"):
        killed_at = kill_by_faultfuzz(_by_name(name), session, 20)
        assert killed_at is not None and killed_at <= 20, name


def test_faultfuzz_cannot_kill_voter_mutant():
    session = _FaultSession(0, faults_per_program=4)
    assert kill_by_faultfuzz(_by_name("chk_voter_min_majority"),
                             session, 10) is None


# ---------------------------------------------------------------------------
# Session report.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_report():
    # A trimmed pool keeps the module fast: two ALU, one branch, two
    # checker mutants including the documented voter escape.
    names = ("alu_xor_flip", "alu_sub_swapped", "br_beq_inverted",
             "chk_drop_io_out", "chk_voter_min_majority")
    pool = tuple(m for m in default_mutants() if m.name in names)
    return run_mutation(seed=0, max_programs=40, checker_programs=10,
                        mutants=pool)


def test_report_accounts_for_every_mutant(small_report):
    assert len(small_report.results) == 5
    assert len(small_report.killed) == 4
    assert [r["name"] for r in small_report.survivors] \
        == ["chk_voter_min_majority"]
    assert small_report.undocumented_survivors == []
    assert small_report.kill_rate(("alu", "branch")) == 1.0


def test_detection_curve_is_monotone(small_report):
    curve = small_report.curve()
    assert curve, "curve must have at least one point"
    fractions = [f for _, f in curve]
    assert fractions == sorted(fractions)
    assert all(0.0 <= f <= 1.0 for f in fractions)
    # Everything killable in this pool dies within the budget.
    assert fractions[-1] == pytest.approx(4 / 5)


def test_report_json_round_trips(small_report, tmp_path):
    path = write_report(small_report, tmp_path / "BENCH_mutation.json")
    data = json.loads(path.read_text())
    assert data["schema"] == 1
    assert len(data["mutants"]) == 5
    assert data["alu_branch_kill_rate"] == 1.0
    assert data["undocumented_survivors"] == []
    assert data["documented_escapes"][0]["name"] == "chk_voter_min_majority"
    assert all(isinstance(p, int) and 0 <= f <= 1
               for p, f in data["curve"])


def test_session_leaves_tables_pristine(small_report):
    # After a whole session every dispatch entry and checker hook is
    # back to its original object.
    from repro.lockstep.categories import diverged_set

    assert checker_mod.diverged_set is diverged_set
    for op, fn in rm.ALU_EVAL.items():
        assert not getattr(fn, "__name__", "").startswith("mutant"), op
    prog = generate_program("pristine:0")
    assert cosim(prog).ok
