"""Mutation testing: apply/revert hygiene, kill engines, the report.

The meta-level guarantee under test: planting a bug anywhere in the
verification stack (reference ALU, branch comparator, lockstep
checker) makes the fuzz flows fail fast — and un-planting it restores
bit-identical behaviour, so mutation sessions can never leak a broken
table into the rest of the suite.
"""

from __future__ import annotations

import json

import pytest

import repro.lockstep.checker as checker_mod
import repro.verify.refmodel as rm
from repro.cpu.isa import Op
from repro.verify import cosim, generate_program
from repro.verify.mutation import (
    _FaultSession,
    default_mutants,
    kill_by_cosim,
    kill_by_faultfuzz,
    run_mutation,
    write_report,
)


def _by_name(name: str):
    return next(m for m in default_mutants() if m.name == name)


# ---------------------------------------------------------------------------
# Apply / revert hygiene.
# ---------------------------------------------------------------------------

def test_alu_mutant_applies_and_reverts_cleanly():
    mutant = _by_name("alu_xor_flip")
    original = rm.ALU_EVAL[int(Op.XOR)]
    revert = mutant.apply()
    assert rm.ALU_EVAL[int(Op.XOR)] is mutant.fn
    assert rm.ALU_EVAL[int(Op.XOR)](5, 3) == ((5 ^ 3) ^ 1, 0, 0)
    revert()
    assert rm.ALU_EVAL[int(Op.XOR)] is original


def test_checker_mutant_applies_and_reverts_cleanly():
    mutant = _by_name("chk_drop_ret_val")
    original = checker_mod.port_equal
    revert = mutant.apply()
    a = tuple(range(18))
    b = a[:13] + (999,) + a[14:]       # differs only in ret_val (port 13)
    assert checker_mod.port_equal(a, b)         # the planted blindness
    assert not checker_mod.port_equal(a, a[:0] + (1,) + a[1:])
    revert()
    assert checker_mod.port_equal is original
    assert not checker_mod.port_equal(a, b)


def test_voter_mutant_patches_the_majority_hook():
    mutant = _by_name("chk_voter_min_majority")
    original = checker_mod.vote_value
    revert = mutant.apply()
    try:
        assert checker_mod.vote_value((5, 5, 1)) == 1   # min, not majority
        voter = checker_mod.VotingChecker(3)
        voted = voter.vote([(5,) * 62, (5,) * 62, (1,) * 62])
        assert voted == (1,) * 62      # both voting paths resolve through it
        assert voter.vote_ports([(5,) * 18, (5,) * 18, (1,) * 18]) == (1,) * 18
    finally:
        revert()
    assert checker_mod.vote_value is original
    assert checker_mod.vote_value((5, 5, 1)) == 5


def test_pool_shape():
    pool = default_mutants()
    kinds = {m.kind for m in pool}
    assert kinds == {"alu", "branch", "checker"}
    assert len({m.name for m in pool}) == len(pool)
    # Since the TMR fault-fuzz engine, every mutant in the pool is
    # killable — documented escapes would be a regression.
    assert [m.name for m in pool if m.escape_rationale] == []


# ---------------------------------------------------------------------------
# Kill engines.
# ---------------------------------------------------------------------------

def test_cosim_kills_planted_alu_bug_fast():
    killed_at = kill_by_cosim(_by_name("alu_xor_flip"), seed=0,
                              max_programs=30)
    assert killed_at is not None and killed_at <= 30
    # The table is restored: the killing program now cosimulates clean.
    assert cosim(generate_program(f"0:{killed_at - 1}")).ok


def test_cosim_survivor_returns_none():
    from repro.verify.mutation import Mutant

    # An identity "mutant" is unkillable by construction.
    identity = Mutant("noop", "alu", "identity ADD patch",
                      int(Op.ADD), rm.ALU_EVAL[int(Op.ADD)])
    assert kill_by_cosim(identity, seed=0, max_programs=5) is None


def test_faultfuzz_kills_checker_mutants():
    session = _FaultSession(0, faults_per_program=4)
    for name in ("chk_drop_io_out", "chk_dsr_off_by_one"):
        killed_at = kill_by_faultfuzz(_by_name(name), session, 20)
        assert killed_at is not None and killed_at <= 20, name


def test_dmr_session_cannot_kill_voter_mutant():
    # The LockstepChecker never touches the majority kernel: a DMR
    # session is structurally blind to the voter mutant — exactly why
    # checker mutants are judged under TMR.
    session = _FaultSession(0, faults_per_program=4, cores=2)
    assert kill_by_faultfuzz(_by_name("chk_voter_min_majority"),
                             session, 10) is None


def test_tmr_session_kills_voter_mutant():
    session = _FaultSession(0, faults_per_program=4, cores=3)
    killed_at = kill_by_faultfuzz(_by_name("chk_voter_min_majority"),
                                  session, 20)
    assert killed_at is not None and killed_at <= 20


def test_tmr_session_kills_dmr_killable_mutants_too():
    # The voter's agree fast path is the same port_equal hook, so the
    # TMR engine subsumes the DMR one on the historical mutants.
    session = _FaultSession(0, faults_per_program=4, cores=3)
    for name in ("chk_drop_io_out", "chk_dsr_off_by_one"):
        killed_at = kill_by_faultfuzz(_by_name(name), session, 20)
        assert killed_at is not None and killed_at <= 20, name


# ---------------------------------------------------------------------------
# Session report.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_report():
    # A trimmed pool keeps the module fast: two ALU, one branch, two
    # checker mutants including the TMR-only voter one.
    names = ("alu_xor_flip", "alu_sub_swapped", "br_beq_inverted",
             "chk_drop_io_out", "chk_voter_min_majority")
    pool = tuple(m for m in default_mutants() if m.name in names)
    return run_mutation(seed=0, max_programs=40, checker_programs=10,
                        mutants=pool)


def test_report_accounts_for_every_mutant(small_report):
    assert len(small_report.results) == 5
    assert len(small_report.killed) == 5
    assert small_report.survivors == []
    assert small_report.undocumented_survivors == []
    assert small_report.kill_rate(("alu", "branch")) == 1.0
    assert small_report.kill_rate(("checker",)) == 1.0
    engines = {r["name"]: r["engine"] for r in small_report.results}
    assert engines["alu_xor_flip"] == "cosim"
    assert engines["chk_voter_min_majority"] == "faultfuzz-tmr3"


def test_detection_curve_is_monotone(small_report):
    curve = small_report.curve()
    assert curve, "curve must have at least one point"
    fractions = [f for _, f in curve]
    assert fractions == sorted(fractions)
    assert all(0.0 <= f <= 1.0 for f in fractions)
    # Everything in this pool dies within the budget.
    assert fractions[-1] == pytest.approx(1.0)


def test_checker_curve_tracks_checker_mutants_only(small_report):
    curve = small_report.curve(("checker",))
    assert curve
    # Horizon = checker_programs (10), so no points beyond it.
    assert all(p <= 10 for p, _ in curve)
    assert curve[-1][1] == pytest.approx(1.0)


def test_report_json_round_trips(small_report, tmp_path):
    path = write_report(small_report, tmp_path / "BENCH_mutation.json")
    data = json.loads(path.read_text())
    assert data["schema"] == 2
    assert len(data["mutants"]) == 5
    assert data["alu_branch_kill_rate"] == 1.0
    assert data["checker_kill_rate"] == 1.0
    assert data["undocumented_survivors"] == []
    assert data["documented_escapes"] == []
    assert all(isinstance(p, int) and 0 <= f <= 1
               for p, f in data["curve"])
    assert all(isinstance(p, int) and 0 <= f <= 1
               for p, f in data["checker_tmr_curve"])
    assert data["meta"]["checker_cores"] == 3


def test_session_leaves_tables_pristine(small_report):
    # After a whole session every dispatch entry and checker hook is
    # back to its original object.
    from repro.lockstep.categories import diverged_set

    assert checker_mod.diverged_set is diverged_set
    for op, fn in rm.ALU_EVAL.items():
        assert not getattr(fn, "__name__", "").startswith("mutant"), op
    prog = generate_program("pristine:0")
    assert cosim(prog).ok
