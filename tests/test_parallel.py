"""Parallel campaign engine tests: sharding, seeding, determinism."""

import pickle

import pytest

from repro.faults import (
    EXECUTOR_CHOICES,
    CampaignConfig,
    CampaignResult,
    cached_campaign,
    cext_available,
    plan_shards,
    resolve_executor,
    resolve_workers,
    run_campaign,
    sample_flops,
    sampling_rng,
    schedule_faults,
    schedule_rng,
)


class TestSeeding:
    def test_schedule_rng_keyed_not_sequential(self):
        """The same (benchmark, flop) cell always gets the same stream,
        regardless of how many other streams were derived before it."""
        a = schedule_rng(7, 2, 31).integers(1 << 30, size=8)
        schedule_rng(7, 0, 0).integers(1 << 30, size=100)  # unrelated draws
        b = schedule_rng(7, 2, 31).integers(1 << 30, size=8)
        assert list(a) == list(b)

    def test_schedule_rng_distinct_cells_distinct_streams(self):
        draws = {
            tuple(schedule_rng(7, b, f).integers(1 << 30, size=4))
            for b in range(3) for f in range(3)
        }
        assert len(draws) == 9

    def test_sampling_rng_independent_of_schedule_rng(self):
        a = sampling_rng(7).integers(1 << 30, size=4)
        b = schedule_rng(7, 0, 0).integers(1 << 30, size=4)
        assert list(a) != list(b)

    def test_schedule_faults_reproducible_per_cell(self):
        cfg = CampaignConfig.quick()
        flops = sample_flops(cfg, sampling_rng(cfg.seed))
        first = schedule_faults(flops[0], 1400, cfg, schedule_rng(cfg.seed, 0, 0))
        again = schedule_faults(flops[0], 1400, cfg, schedule_rng(cfg.seed, 0, 0))
        assert first == again


class TestSharding:
    def test_shards_cover_grid_exactly_once(self):
        cfg = CampaignConfig.quick()
        flops = sample_flops(cfg, sampling_rng(cfg.seed))
        shards = plan_shards(("a", "b"), flops, workers=3, chunk_flops=5)
        for bench in ("a", "b"):
            covered = [
                flop for shard in shards if shard.benchmark == bench
                for flop in shard.flops
            ]
            assert covered == flops

    def test_shards_ordered_by_bench_then_base(self):
        cfg = CampaignConfig.quick()
        flops = sample_flops(cfg, sampling_rng(cfg.seed))
        shards = plan_shards(("a", "b"), flops, workers=2, chunk_flops=4)
        assert [s.order_key for s in shards] == \
               sorted(s.order_key for s in shards)

    def test_flop_base_indexes_global_list(self):
        cfg = CampaignConfig.quick()
        flops = sample_flops(cfg, sampling_rng(cfg.seed))
        for shard in plan_shards(("a",), flops, workers=2, chunk_flops=3):
            for offset, flop in enumerate(shard.flops):
                assert flops[shard.flop_base + offset] == flop

    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1

    def test_resolve_executor(self):
        assert EXECUTOR_CHOICES == ("process", "thread")
        assert resolve_executor(None) == "process"
        assert resolve_executor("process") == "process"
        assert resolve_executor("thread") == "thread"
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("greenlet")


class TestDeterminism:
    def test_parallel_matches_serial(self, quick_campaign):
        """The acceptance property: 4 workers, same campaign, bit for bit."""
        parallel = run_campaign(CampaignConfig.quick(), workers=4)
        assert parallel.records == quick_campaign.records
        assert parallel.injected == quick_campaign.injected
        assert parallel.sampled_flops == quick_campaign.sampled_flops
        assert parallel.golden_cycles == quick_campaign.golden_cycles

    def test_chunk_size_does_not_change_results(self, quick_campaign):
        odd = run_campaign(CampaignConfig.quick(), workers=1, chunk_flops=3)
        assert odd.records == quick_campaign.records
        assert odd.injected == quick_campaign.injected

    def test_meta_records_execution_shape(self):
        result = run_campaign(CampaignConfig.quick(), workers=1, chunk_flops=50)
        assert result.meta["workers"] == 1
        assert result.meta["chunk_flops"] == 50
        assert result.meta["n_shards"] >= 1

    def test_thread_executor_matches_serial(self, quick_campaign):
        """The in-process shard executor is digest-identical to the
        serial run — shard merge order is by order_key, never by
        completion, whichever pool runs the shards."""
        threaded = run_campaign(CampaignConfig.quick(), workers=3,
                                chunk_flops=3, executor="thread")
        assert threaded.records == quick_campaign.records
        assert threaded.injected == quick_campaign.injected
        assert threaded.meta["executor"] == "thread"
        assert threaded.meta["pruning"] == quick_campaign.meta["pruning"]

    @pytest.mark.skipif(not cext_available(),
                        reason="compiled kernel unavailable")
    def test_thread_executor_batch_cext_matches_serial(self, quick_campaign):
        """Thread-pool shard runners × multithreaded compiled kernel:
        the full fan-out still reproduces the serial digest."""
        threaded = run_campaign(CampaignConfig.quick(), workers=2,
                                chunk_flops=3, executor="thread",
                                batch=32, kernel="cext", threads=2)
        assert threaded.digest() == quick_campaign.digest()
        assert threaded.meta["pruning"] == quick_campaign.meta["pruning"]

    def test_meta_records_planned_chunk_not_first_shard_len(self):
        """chunk_flops must report the planned chunk size even when the
        sampled flop list is shorter than (or not a multiple of) it."""
        result = run_campaign(CampaignConfig.quick(), workers=1,
                              chunk_flops=1000)
        assert result.meta["chunk_flops"] == 1000
        assert result.meta["n_shards"] == len(CampaignConfig.quick().benchmarks)


class TestCacheHardening:
    def test_corrupt_cache_falls_back_to_fresh_run(self, tmp_path):
        cfg = CampaignConfig.quick()
        path = tmp_path / f"campaign_{cfg.cache_key()}.pkl"
        path.write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            result = cached_campaign(cfg, cache_dir=tmp_path)
        assert isinstance(result, CampaignResult)
        assert result.n_injected > 0
        # the fresh result replaced the corrupt file
        assert cached_campaign(cfg, cache_dir=tmp_path).records == result.records

    def test_mismatched_config_falls_back_to_fresh_run(self, tmp_path, quick_campaign):
        cfg = CampaignConfig.quick()
        other = CampaignConfig(benchmarks=("ttsprk",), soft_per_flop=1,
                               hard_per_flop=1, flop_fraction=0.02,
                               max_observe=300)
        # a result for `other` filed under cfg's cache key
        path = tmp_path / f"campaign_{cfg.cache_key()}.pkl"
        stale = CampaignResult(config=other, records=[], injected={},
                               golden_cycles={}, sampled_flops={})
        stale.save(path)
        with pytest.warns(RuntimeWarning, match="different"):
            result = cached_campaign(cfg, cache_dir=tmp_path)
        assert result.config == cfg
        assert result.records == quick_campaign.records

    def test_wrong_payload_type_falls_back(self, tmp_path):
        cfg = CampaignConfig.quick()
        path = tmp_path / f"campaign_{cfg.cache_key()}.pkl"
        with open(path, "wb") as fh:
            pickle.dump(["not", "a", "campaign"], fh)
        with pytest.warns(RuntimeWarning, match="unreadable"):
            result = cached_campaign(cfg, cache_dir=tmp_path)
        assert isinstance(result, CampaignResult)


class TestCli:
    def test_workers_flag_parsed(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["campaign", "--workers", "4"])
        assert args.workers == 4

    def test_workers_default_serial(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["campaign"])
        assert args.workers == 1

    def test_executor_and_threads_flags_parsed(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["campaign", "--executor", "thread", "--cstep-threads", "4"])
        assert args.executor == "thread"
        assert args.cstep_threads == 4
        args = build_parser().parse_args(["campaign"])
        assert args.executor is None
        assert args.cstep_threads is None
