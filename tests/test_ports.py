"""Compact port tuple <-> 62-SC boundary equivalence.

The per-cycle lockstep fast path compares the compact port tuples that
``Cpu.step()`` returns; the refactor is sound only if (a) expanding the
compact tuple reproduces the eager 62-SC vector bit for bit, and
(b) compact-tuple equality is equivalent to SC-tuple equality.  These
properties are exercised over randomised flip-flop states constrained
to each register's declared width.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import Cpu, InputStream, Memory, NUM_PORTS, NUM_SCS, REGISTRY
from repro.lockstep.categories import (
    PORT_FIELDS,
    SIGNAL_CATEGORIES,
    diverged_ports,
    diverged_set,
    expand_ports,
)


def _fresh_cpu() -> Cpu:
    return Cpu(Memory(16), InputStream())


#: A full random flip-flop state, each register within its width.
state_strategy = st.tuples(
    *(st.integers(0, (1 << spec.width) - 1) for spec in REGISTRY))


class TestExpansionMatchesEagerOutputs:
    @given(state=state_strategy)
    @settings(max_examples=200, deadline=None)
    def test_expand_port_state_equals_outputs(self, state):
        cpu = _fresh_cpu()
        cpu.restore(state)
        assert expand_ports(cpu.port_state()) == cpu.outputs()

    def test_matches_along_a_real_execution(self, sum_cpu):
        for _ in range(300):
            before = sum_cpu.outputs()
            returned = sum_cpu.step()
            assert len(returned) == NUM_PORTS
            assert expand_ports(returned) == before

    def test_expanded_width_and_ranges(self):
        cpu = _fresh_cpu()
        cpu.restore(tuple((1 << spec.width) - 1 for spec in REGISTRY))
        expanded = expand_ports(cpu.port_state())
        assert len(expanded) == NUM_SCS
        for value, sc in zip(expanded, SIGNAL_CATEGORIES):
            assert 0 <= value < (1 << sc.width), sc.name


class TestEqualityEquivalence:
    @given(state_a=state_strategy, state_b=state_strategy)
    @settings(max_examples=100, deadline=None)
    def test_compact_equality_iff_sc_equality(self, state_a, state_b):
        cpu = _fresh_cpu()
        cpu.restore(state_a)
        ports_a, scs_a = cpu.port_state(), cpu.outputs()
        cpu.restore(state_b)
        ports_b, scs_b = cpu.port_state(), cpu.outputs()
        assert (ports_a == ports_b) == (scs_a == scs_b)
        assert diverged_ports(ports_a, ports_b) == diverged_set(scs_a, scs_b)

    def test_single_visible_bit_flips_diverge_both_ways(self):
        """Flipping any SC-visible flop diverges both representations."""
        rnd = random.Random(7)
        visible = {"imc_addr", "imc_valid", "imc_pred", "dmc_addr",
                   "dmc_wdata", "dmc_ctrl", "dmc_strb", "bus_addr",
                   "bus_data", "bus_ctrl", "io_out", "io_out_v", "ret_pc",
                   "ret_val", "ret_rd", "ret_valid", "halted", "br_taken",
                   "br_valid"} | {"status"}
        cpu = _fresh_cpu()
        for trial in range(200):
            state = tuple(rnd.randrange(1 << spec.width) for spec in REGISTRY)
            idx, spec = rnd.choice(
                [(i, s) for i, s in enumerate(REGISTRY) if s.name in visible])
            bit = 0 if spec.name == "status" else rnd.randrange(spec.width)
            flipped = list(state)
            flipped[idx] ^= 1 << bit
            cpu.restore(state)
            ports_a, scs_a = cpu.port_state(), cpu.outputs()
            cpu.restore(tuple(flipped))
            ports_b, scs_b = cpu.port_state(), cpu.outputs()
            assert ports_a != ports_b, spec.name
            assert scs_a != scs_b, spec.name


class TestPortFieldMetadata:
    def test_layout_covers_signal_categories(self):
        assert len(PORT_FIELDS) == NUM_PORTS
        widths = [f.split for f in PORT_FIELDS for _ in range(f.n_scs)]
        assert widths == [sc.width for sc in SIGNAL_CATEGORIES]

    def test_generic_expansion_matches_hand_unrolled(self):
        """expand_ports is a hand-unrolled copy of the PORT_FIELDS
        layout; a generic interpreter of the metadata must agree."""
        rnd = random.Random(11)
        for _ in range(50):
            ports = tuple(rnd.randrange(1 << f.width) for f in PORT_FIELDS)
            generic = tuple(
                (value >> (f.split * k)) & ((1 << f.split) - 1)
                for f, value in zip(PORT_FIELDS, ports)
                for k in range(f.n_scs)
            )
            assert expand_ports(ports) == generic
