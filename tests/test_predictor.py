"""Predictor training, table and accuracy tests."""

import pytest

from repro.core import (
    DynamicPredictor,
    default_unit_order,
    location_accuracy,
    rank_units,
    train_predictor,
    type_accuracy,
    type_bit,
)
from repro.cpu import FlopRef
from repro.faults import ErrorRecord, ErrorType, FaultKind


def rec(reg, kind, diverged, detect=20):
    return ErrorRecord(benchmark="ttsprk", flop=FlopRef(reg, 0), kind=kind,
                       inject_cycle=10, detect_cycle=detect,
                       diverged=frozenset(diverged))


@pytest.fixture
def training():
    return [
        # set {1}: PFU-dominated, mostly hard
        rec("pc", FaultKind.STUCK1, {1}),
        rec("pc", FaultKind.STUCK0, {1}),
        rec("imc_addr", FaultKind.SOFT, {1}),
        # set {6,7}: LSU soft errors
        rec("lsu_addr", FaultKind.SOFT, {6, 7}),
        rec("lsu_addr", FaultKind.SOFT, {6, 7}),
        rec("sb_addr", FaultKind.SOFT, {6, 7}),
    ]


class TestRankUnits:
    ORDER = ("A", "B", "C", "D")

    def test_descending_by_score(self):
        scores = {"B": 0.5, "A": 0.2, "C": 0.3}
        assert rank_units(scores, self.ORDER, None) == ("B", "C", "A", "D")

    def test_ties_broken_by_default_order(self):
        scores = {"C": 0.5, "B": 0.5}
        assert rank_units(scores, self.ORDER, None)[:2] == ("B", "C")

    def test_zero_scores_excluded_from_ranked_prefix(self):
        scores = {"A": 0.0, "D": 1.0}
        assert rank_units(scores, self.ORDER, None) == ("D", "A", "B", "C")

    def test_top_k_truncates(self):
        scores = {"B": 0.5, "A": 0.3, "C": 0.2}
        assert rank_units(scores, self.ORDER, 2) == ("B", "A")

    def test_top_k_pads_from_default_order(self):
        scores = {"B": 1.0}
        assert rank_units(scores, self.ORDER, 3) == ("B", "A", "C")

    def test_top_k_equal_to_unit_count_is_full_order(self):
        scores = {"B": 1.0, "C": 0.5}
        assert rank_units(scores, self.ORDER, 4) == rank_units(scores, self.ORDER, None)


class TestTypeBit:
    def test_hard_majority(self):
        assert type_bit({ErrorType.HARD: 0.7, ErrorType.SOFT: 0.3})

    def test_soft_majority(self):
        assert not type_bit({ErrorType.HARD: 0.2, ErrorType.SOFT: 0.8})

    def test_tie_predicts_hard(self):
        """Conservative: ties go to the safe (full diagnostic) side."""
        assert type_bit({ErrorType.HARD: 0.5, ErrorType.SOFT: 0.5})

    def test_empty_predicts_hard(self):
        assert type_bit({})


class TestTraining:
    def test_prediction_for_known_set(self, training):
        predictor = train_predictor(training)
        pred = predictor.predict(frozenset({1}))
        assert pred.units[0] == "PFU"
        assert pred.error_type is ErrorType.HARD
        assert not pred.from_default

    def test_soft_dominated_set(self, training):
        predictor = train_predictor(training)
        pred = predictor.predict(frozenset({6, 7}))
        assert pred.units[0] == "LSU"
        assert pred.error_type is ErrorType.SOFT

    def test_unseen_set_hits_default_entry(self, training):
        predictor = train_predictor(training)
        pred = predictor.predict(frozenset({42}))
        assert pred.from_default
        assert pred.error_type is ErrorType.HARD
        assert pred.units == default_unit_order(False)

    def test_full_order_contains_all_units(self, training):
        predictor = train_predictor(training)
        pred = predictor.predict(frozenset({1}))
        assert set(pred.units) == set(default_unit_order(False))

    def test_top_k_entries_truncated(self, training):
        predictor = train_predictor(training, top_k=1)
        assert len(predictor.predict(frozenset({1})).units) == 1

    def test_fine_taxonomy(self, training):
        predictor = train_predictor(training, fine=True)
        pred = predictor.predict(frozenset({6, 7}))
        assert pred.units[0] in ("LSU",)
        assert len(default_unit_order(True)) == 13

    def test_training_deterministic(self, training):
        a = train_predictor(training)
        b = train_predictor(training)
        for key in (frozenset({1}), frozenset({6, 7}), frozenset({9})):
            assert a.predict(key) == b.predict(key)

    def test_predict_record_uses_dsr(self, training):
        predictor = train_predictor(training)
        record = rec("rf1", FaultKind.SOFT, {6, 7})
        assert predictor.predict_record(record) == predictor.predict(frozenset({6, 7}))


class TestAccuracies:
    def test_location_accuracy_full_order_is_one(self, training):
        predictor = train_predictor(training)
        assert location_accuracy(predictor, training) == 1.0

    def test_location_accuracy_topk(self, training):
        predictor = train_predictor(training, top_k=1)
        # both hard errors are in set {1} whose top unit is PFU
        assert location_accuracy(predictor, training) == 1.0

    def test_location_accuracy_counts_misses(self, training):
        predictor = train_predictor(training, top_k=1)
        stray = rec("lsu_addr", FaultKind.STUCK1, {1})  # LSU fault, PFU-set DSR
        assert location_accuracy(predictor, [stray]) == 0.0

    def test_type_accuracy_on_training_set(self, training):
        predictor = train_predictor(training)
        acc = type_accuracy(predictor, training)
        assert acc["hard"] == 1.0
        assert acc["soft"] == pytest.approx(0.75)
        assert acc["overall"] == pytest.approx(5 / 6)

    def test_empty_dataset_accuracy_zero(self, training):
        predictor = train_predictor(training)
        assert location_accuracy(predictor, []) == 0.0
        acc = type_accuracy(predictor, [])
        assert acc == {"soft": 0.0, "hard": 0.0, "overall": 0.0}


class TestDynamicPredictor:
    def test_update_changes_prediction(self, training):
        predictor = DynamicPredictor.train(training)
        key = frozenset({6, 7})
        assert predictor.predict(key).error_type is ErrorType.SOFT
        for _ in range(5):
            predictor.update(rec("lsu_addr", FaultKind.STUCK1, key))
        assert predictor.predict(key).error_type is ErrorType.HARD

    def test_update_learns_new_set(self, training):
        predictor = DynamicPredictor.train(training)
        key = frozenset({40, 41})
        assert predictor.predict(key).from_default
        predictor.update(rec("dmc_addr", FaultKind.STUCK0, key))
        pred = predictor.predict(key)
        assert not pred.from_default
        assert pred.units[0] == "DMC"

    def test_static_predictor_unaffected_by_later_records(self, training):
        static = train_predictor(training)
        before = static.predict(frozenset({6, 7}))
        training.append(rec("lsu_addr", FaultKind.STUCK1, {6, 7}))
        assert static.predict(frozenset({6, 7})) == before


class TestCampaignTraining:
    def test_trained_on_real_campaign(self, medium_campaign):
        records = medium_campaign.records
        predictor = train_predictor(records)
        assert len(predictor.table) > 10
        assert location_accuracy(predictor, records) == 1.0
        acc = type_accuracy(predictor, records)
        # In-sample type accuracy must beat coin flipping.
        assert acc["overall"] > 0.5
