"""Reaction strategy LERT arithmetic tests (hand-computed expectations)."""

import numpy as np
import pytest

from repro.bist import StlModel
from repro.core import train_predictor
from repro.cpu import FlopRef
from repro.faults import ErrorRecord, FaultKind
from repro.reaction import (
    BaseAscending,
    BaseManifest,
    BaseRandom,
    PredCombined,
    PredLocationOnly,
    ReactionContext,
    baseline_strategies,
    evaluate_strategies,
    evaluate_strategy,
    merge_results,
)

RESTART = 2_000


def rec(reg, kind, diverged, detect=30):
    return ErrorRecord(benchmark="ttsprk", flop=FlopRef(reg, 0), kind=kind,
                       inject_cycle=10, detect_cycle=detect,
                       diverged=frozenset(diverged))


@pytest.fixture
def ctx():
    stl = StlModel()
    return ReactionContext(
        stl=stl,
        fine=False,
        restart_cycles={"ttsprk": RESTART},
        manifest_order=tuple(stl.units),
        rng=np.random.default_rng(0),
    )


@pytest.fixture
def predictor():
    # Set {1} is PFU + hard; set {6} is LSU + soft.
    training = [
        rec("pc", FaultKind.STUCK1, {1}),
        rec("pc", FaultKind.STUCK0, {1}),
        rec("lsu_addr", FaultKind.SOFT, {6}),
        rec("lsu_addr", FaultKind.SOFT, {6}),
    ]
    return train_predictor(training)


class TestBaselines:
    def test_ascending_hard_error_cost(self, ctx):
        stl = ctx.stl
        order = stl.ascending_order()
        faulty = order[1]
        reg = {"IMC": "imc_addr", "PFU": "pc", "LSU": "lsu_addr", "BIU": "bus_addr",
               "DMC": "dmc_addr", "SCU": "status", "DPU": "rf1"}[faulty]
        record = rec(reg, FaultKind.STUCK1, {1})
        reaction = BaseAscending().react(record, ctx)
        assert reaction.lert == stl.latency(order[0]) + stl.latency(order[1])
        assert reaction.tested_units == 2
        assert reaction.diagnosed_hard

    def test_soft_error_costs_full_sbist_plus_restart(self, ctx):
        record = rec("pc", FaultKind.SOFT, {1})
        for strategy in baseline_strategies():
            reaction = strategy.react(record, ctx)
            assert reaction.lert == ctx.stl.total_latency() + RESTART
            assert not reaction.diagnosed_hard

    def test_manifest_order_used(self, ctx):
        ctx = ReactionContext(ctx.stl, False, ctx.restart_cycles,
                              manifest_order=("DPU",) + tuple(
                                  u for u in ctx.stl.units if u != "DPU"),
                              rng=np.random.default_rng(0))
        record = rec("rf1", FaultKind.STUCK1, {1})  # DPU fault
        reaction = BaseManifest().react(record, ctx)
        assert reaction.tested_units == 1
        assert reaction.lert == ctx.stl.latency("DPU")

    def test_random_order_varies(self, ctx):
        record = rec("rf1", FaultKind.STUCK1, {1})
        tested = {BaseRandom().react(record, ctx).tested_units for _ in range(20)}
        assert len(tested) > 1


class TestPredLocationOnly:
    def test_hard_error_in_predicted_first_unit(self, ctx, predictor):
        record = rec("pc", FaultKind.STUCK1, {1})  # PFU fault, PFU-first entry
        reaction = PredLocationOnly(predictor).react(record, ctx)
        assert reaction.tested_units == 1
        assert reaction.lert == predictor.access_cycles + ctx.stl.latency("PFU")

    def test_soft_error_same_as_baseline_plus_access(self, ctx, predictor):
        record = rec("lsu_addr", FaultKind.SOFT, {1})
        reaction = PredLocationOnly(predictor).react(record, ctx)
        assert reaction.lert == (predictor.access_cycles
                                 + ctx.stl.total_latency() + RESTART)

    def test_unseen_dsr_degrades_to_default_order(self, ctx, predictor):
        record = rec("status", FaultKind.STUCK1, {50})  # SCU, unknown DSR
        reaction = PredLocationOnly(predictor).react(record, ctx)
        default = predictor.predict(frozenset({50})).units
        expected = sum(ctx.stl.latency(u)
                       for u in default[: default.index("SCU") + 1])
        assert reaction.lert == predictor.access_cycles + expected


class TestPredCombined:
    def test_correct_soft_prediction_skips_sbist(self, ctx, predictor):
        record = rec("lsu_addr", FaultKind.SOFT, {6})
        reaction = PredCombined(predictor).react(record, ctx)
        assert not reaction.sbist_invoked
        assert reaction.tested_units == 0
        assert reaction.lert == predictor.access_cycles + RESTART

    def test_hard_predicted_hard_runs_sbist(self, ctx, predictor):
        record = rec("pc", FaultKind.STUCK1, {1})
        reaction = PredCombined(predictor).react(record, ctx)
        assert reaction.sbist_invoked
        assert reaction.lert == predictor.access_cycles + ctx.stl.latency("PFU")

    def test_soft_predicted_hard_pays_sbist_then_restart(self, ctx, predictor):
        record = rec("pc", FaultKind.SOFT, {1})  # DSR says hard
        reaction = PredCombined(predictor).react(record, ctx)
        assert reaction.sbist_invoked
        assert reaction.lert == (predictor.access_cycles
                                 + ctx.stl.total_latency() + RESTART)

    def test_hard_predicted_soft_recurs_and_diagnoses(self, ctx, predictor):
        record = rec("lsu_addr", FaultKind.STUCK1, {6}, detect=40)
        reaction = PredCombined(predictor).react(record, ctx)
        assert reaction.sbist_invoked
        assert reaction.diagnosed_hard
        # restart + re-manifestation (latency=30) + two table reads +
        # SBIST finding LSU first in the predicted order.
        expected = (predictor.access_cycles + RESTART + 30
                    + predictor.access_cycles + ctx.stl.latency("LSU"))
        assert reaction.lert == expected

    def test_misprediction_never_worse_than_worst_case_baseline(self, ctx, predictor):
        """The paper's safety argument: even a mispredicted-soft hard
        error costs no more than the worst baseline unit order."""
        record = rec("lsu_addr", FaultKind.STUCK1, {6}, detect=40)
        reaction = PredCombined(predictor).react(record, ctx)
        worst_baseline = ctx.stl.total_latency()  # fault found in last unit
        assert reaction.lert <= worst_baseline


class TestEvaluation:
    def test_evaluate_strategy_averages(self, ctx, predictor):
        records = [rec("pc", FaultKind.STUCK1, {1}),
                   rec("lsu_addr", FaultKind.SOFT, {6})]
        result = evaluate_strategy(PredCombined(predictor), records, ctx)
        assert result.n_errors == 2
        assert result.sbist_invocation_rate == 0.5
        hard_lert = predictor.access_cycles + ctx.stl.latency("PFU")
        soft_lert = predictor.access_cycles + RESTART
        assert result.mean_lert == (hard_lert + soft_lert) / 2

    def test_speedup_vs(self, ctx, predictor):
        records = [rec("pc", FaultKind.STUCK1, {1})]
        results = evaluate_strategies(
            [BaseAscending(), PredLocationOnly(predictor)], records, ctx)
        speedup = results["pred-location-only"].speedup_vs(results["base-ascending"])
        assert 0.0 < speedup < 1.0

    def test_merge_results_weighted(self):
        from repro.reaction import StrategyResult
        a = StrategyResult("m", mean_lert=100.0, mean_tested_units=1.0,
                           sbist_invocation_rate=1.0, n_errors=1)
        b = StrategyResult("m", mean_lert=300.0, mean_tested_units=3.0,
                           sbist_invocation_rate=0.0, n_errors=3)
        merged = merge_results([a, b])
        assert merged.mean_lert == 250.0
        assert merged.mean_tested_units == 2.5
        assert merged.n_errors == 4

    def test_empty_records(self, ctx, predictor):
        result = evaluate_strategy(PredCombined(predictor), [], ctx)
        assert result.n_errors == 0
        assert result.mean_lert == 0.0
